module mdegst

go 1.24
