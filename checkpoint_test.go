package mdegst_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mdegst"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
)

// The checkpoint/resume differential corpus for the real protocols: an
// improvement run interrupted at EVERY round barrier and resumed must
// reproduce the uninterrupted run exactly — delivery trace (checkpoint-leg
// prefix + resume leg), Report and extracted spanning tree — in Single and
// Hybrid modes, with the checkpoint taken and resumed on both the
// unsharded round engine and the sharded one.
func TestMDSTCheckpointResumeEveryBarrier(t *testing.T) {
	g := mdegst.Gnm(48, 144, 7)
	c := mdegst.Compile(g)
	t0, _, err := mdegst.BuildSpanningTreeCompiled(c, mdegst.InitialFlood, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []mdegst.Mode{mdegst.ModeSingle, mdegst.ModeHybrid} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v-shards%d", mode, shards), func(t *testing.T) {
				opts := mdegst.Options{Mode: mode, Shards: shards}

				// The uninterrupted run, with its trace.
				var fullTrace []sim.TraceEvent
				full, err := mdegst.ImproveCompiled(c, t0, mdegst.Options{
					Mode:   mode,
					Engine: traceEngine(shards, func(e sim.TraceEvent) { fullTrace = append(fullTrace, e) }),
				})
				if err != nil {
					t.Fatal(err)
				}
				finalRound := int64(full.Improvement.VirtualTime)
				if finalRound < 3 {
					t.Fatalf("run too short for a barrier sweep: %d", finalRound)
				}

				// Sweep every barrier (bounded stride keeps long Hybrid runs
				// affordable while still crossing phase switches).
				stride := int64(1)
				if finalRound > 24 {
					stride = finalRound / 24
				}
				for r := int64(0); r <= finalRound; r += stride {
					var buf bytes.Buffer
					written, err := mdegst.CheckpointImprove(c, t0, opts, r, &buf)
					if err != nil {
						t.Fatalf("barrier %d: %v", r, err)
					}
					if !written {
						t.Fatalf("barrier %d not reached (finalRound %d)", r, finalRound)
					}
					res, err := mdegst.ResumeImprove(c, t0, opts, bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("barrier %d resume: %v", r, err)
					}
					if !res.Final.Equal(full.Final) {
						t.Fatalf("barrier %d: resumed tree differs", r)
					}
					if res.Rounds != full.Rounds || res.Swaps != full.Swaps ||
						res.InitialDegree != full.InitialDegree || res.FinalDegree != full.FinalDegree {
						t.Fatalf("barrier %d: result scalars diverge: %+v vs %+v", r, res, full)
					}
					assertSameReport(t, fmt.Sprintf("barrier %d", r), res.Improvement, full.Improvement)
				}

				// One deep trace check mid-run: prefix + resume == full.
				mid := finalRound / 2
				var buf bytes.Buffer
				var prefix []sim.TraceEvent
				_, err = mdegst.ImproveCompiled(c, t0, mdegst.Options{
					Mode:   mode,
					Engine: checkpointTraceEngine(shards, &sim.CheckpointSpec{Round: mid, W: &buf}, func(e sim.TraceEvent) { prefix = append(prefix, e) }),
				})
				if !errors.Is(err, sim.ErrCheckpointed) {
					t.Fatalf("checkpointing run: %v, want ErrCheckpointed", err)
				}
				ck, err := sim.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				var resumeTrace []sim.TraceEvent
				reng := checkpointTraceEngine(shards, nil, func(e sim.TraceEvent) { resumeTrace = append(resumeTrace, e) })
				if _, _, err := reng.ResumeSnapshot(c, improveFactory(mode, t0), ck); err != nil {
					t.Fatal(err)
				}
				whole := append(append([]sim.TraceEvent{}, prefix...), resumeTrace...)
				if !reflect.DeepEqual(whole, fullTrace) {
					t.Fatalf("stitched trace diverges at barrier %d: %d+%d vs %d events",
						mid, len(prefix), len(resumeTrace), len(fullTrace))
				}
			})
		}
	}
}

// TestFloodCheckpointResume exercises the second StateCodec protocol: the
// flooding spanning-tree construction interrupted at every barrier.
func TestFloodCheckpointResume(t *testing.T) {
	g := mdegst.Gnm(40, 120, 3)
	c := mdegst.Compile(g)
	factory := spanning.NewFloodFactory(g.Nodes()[0])

	fullT, fullRep, err := spanning.BuildCompiled(&sim.EventEngine{Delay: sim.UnitDelay, FIFO: true}, c, factory)
	if err != nil {
		t.Fatal(err)
	}
	finalRound := int64(fullRep.VirtualTime)
	for r := int64(0); r <= finalRound; r++ {
		var buf bytes.Buffer
		eng := &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Checkpoint: &sim.CheckpointSpec{Round: r, W: &buf}}
		if _, _, err := eng.RunSnapshot(c, factory); !errors.Is(err, sim.ErrCheckpointed) {
			t.Fatalf("barrier %d: %v, want ErrCheckpointed", r, err)
		}
		ck, err := sim.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("barrier %d: %v", r, err)
		}
		for _, shards := range []int{1, 3} {
			eng := &sim.ShardedEngine{Shards: shards, Delay: sim.UnitDelay, FIFO: true}
			protos, rep, err := eng.ResumeSnapshot(c, factory, ck)
			if err != nil {
				t.Fatalf("barrier %d shards %d: %v", r, shards, err)
			}
			tr, err := spanning.Extract(g, protos)
			if err != nil {
				t.Fatalf("barrier %d shards %d: %v", r, shards, err)
			}
			if !tr.Equal(fullT) {
				t.Fatalf("barrier %d shards %d: tree differs", r, shards)
			}
			assertSameReport(t, fmt.Sprintf("flood barrier %d shards %d", r, shards), rep, fullRep)
		}
	}
}

// improveFactory is the improvement protocol factory used for the raw
// engine-level resume leg.
func improveFactory(mode mdegst.Mode, t0 *mdegst.Tree) sim.Factory {
	return mdst.FactoryFromTree(mode, 0, t0)
}

// traceEngine builds the tracing unit-delay engine at the shard count.
func traceEngine(shards int, tr func(sim.TraceEvent)) mdegst.Engine {
	if shards > 1 {
		return &sim.ShardedEngine{Shards: shards, Delay: sim.UnitDelay, FIFO: true, Trace: tr}
	}
	return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Trace: tr}
}

// checkpointTraceEngine is traceEngine with an armed checkpoint spec,
// returned as the concrete resumable type.
func checkpointTraceEngine(shards int, spec *sim.CheckpointSpec, tr func(sim.TraceEvent)) sim.ResumableEngine {
	if shards > 1 {
		return &sim.ShardedEngine{Shards: shards, Delay: sim.UnitDelay, FIFO: true, Trace: tr, Checkpoint: spec}
	}
	return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Trace: tr, Checkpoint: spec}
}

// assertSameReport compares the deterministic fields of two finalized
// reports (Wall is host time, Shards is configuration; both excluded).
func assertSameReport(t *testing.T, label string, got, want *mdegst.Report) {
	t.Helper()
	if got.Messages != want.Messages || got.Words != want.Words || got.MaxWords != want.MaxWords ||
		got.CausalDepth != want.CausalDepth || got.VirtualTime != want.VirtualTime {
		t.Fatalf("%s: report scalars diverge", label)
	}
	if !reflect.DeepEqual(got.ByKind, want.ByKind) || !reflect.DeepEqual(got.ByRound, want.ByRound) ||
		!reflect.DeepEqual(got.ByKindRound, want.ByKindRound) || !reflect.DeepEqual(got.SentBy, want.SentBy) {
		t.Fatalf("%s: report breakdowns diverge", label)
	}
}
