package mdegst

import (
	"encoding/json"
	"fmt"
	"io"
)

// The shared trial-summary surface of the command-line tools. cmd/mdstrun
// (in-process simulator) and cmd/mdstd (networked deployment) both render
// runs through these helpers, so a loopback cluster's JSON output can be
// byte-diffed against the simulator's — which is exactly what the CI
// loopback smoke does.

// TrialSummary is the machine-readable summary of one pipeline run.
type TrialSummary struct {
	Seed           int64 `json:"seed"`
	N              int   `json:"n"`
	M              int   `json:"m"`
	GraphMaxDegree int   `json:"graph_max_degree"`
	InitialDegree  int   `json:"initial_degree"`
	FinalDegree    int   `json:"final_degree"`
	LowerBound     int   `json:"degree_lower_bound"`
	Rounds         int   `json:"rounds"`
	Swaps          int   `json:"swaps"`
	SetupMessages  int64 `json:"setup_messages"`
	TotalMessages  int64 `json:"total_messages"`
	TotalWords     int64 `json:"total_words"`
	MaxWords       int   `json:"max_message_words"`
	CausalDepth    int64 `json:"causal_depth"`
	Shards         int   `json:"shards"`
}

// NewTrialSummary condenses one pipeline result into the summary form.
func NewTrialSummary(seed int64, g *Graph, res *Result) TrialSummary {
	setup := int64(0)
	if res.Setup != nil {
		setup = res.Setup.Messages
	}
	return TrialSummary{
		Seed:           seed,
		N:              g.N(),
		M:              g.M(),
		GraphMaxDegree: g.MaxDegree(),
		InitialDegree:  res.InitialDegree,
		FinalDegree:    res.FinalDegree,
		LowerBound:     DegreeLowerBound(g),
		Rounds:         res.Rounds,
		Swaps:          res.Swaps,
		SetupMessages:  setup,
		TotalMessages:  res.Total.Messages,
		TotalWords:     res.Total.Words,
		MaxWords:       res.Total.MaxWords,
		CausalDepth:    res.Improvement.CausalDepth,
		Shards:         res.Total.Shards,
	}
}

// WriteTrialSummaries encodes summaries as indented JSON — deterministic
// for equal inputs, so equal runs produce equal bytes.
func WriteTrialSummaries(w io.Writer, ts []TrialSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// NamedGraph constructs a generator family by name — the single surface
// behind mdstrun's -graph flag and mdstd's topology config. The second
// result reports whether the construction consumed the seed: deterministic
// families return false, letting callers share one compiled snapshot
// across seeds. A zero m defaults to 3n for the families that take an
// edge budget.
func NamedGraph(family string, n, m int, p float64, k int, seed int64) (*Graph, bool, error) {
	if m == 0 {
		m = 3 * n
	}
	switch family {
	case "gnp":
		return Gnp(n, p, seed), true, nil
	case "gnm":
		return Gnm(n, m, seed), true, nil
	case "ba":
		return BarabasiAlbert(n, k, seed), true, nil
	case "geo":
		return RandomGeometric(n, 0.25, seed), true, nil
	case "wheel":
		return Wheel(n), false, nil
	case "ring":
		return Ring(n), false, nil
	case "star":
		return StarGraph(n), false, nil
	case "complete":
		return Complete(n), false, nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return Grid(side, side), false, nil
	case "hypercube":
		d := 1
		for 1<<(d+1) <= n {
			d++
		}
		return Hypercube(d), false, nil
	case "hamchords":
		return HamiltonianPlusChords(n, k*n, seed), true, nil
	default:
		return nil, false, fmt.Errorf("mdegst: unknown graph family %q", family)
	}
}
