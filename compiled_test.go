package mdegst_test

import (
	"testing"

	"mdegst"
)

// TestCompiledPipelineMatchesPlain pins the facade contract of the
// dense-index core: compiling once and running over the snapshot is
// exactly the plain pipeline, and one snapshot can back many runs.
func TestCompiledPipelineMatchesPlain(t *testing.T) {
	g := mdegst.Gnm(48, 144, 5)
	opts := mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialStar}

	plain, err := mdegst.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := mdegst.Compile(g)
	if c.N() != g.N() || c.M() != g.M() || c.Source() != g {
		t.Fatalf("snapshot mismatch: n=%d m=%d", c.N(), c.M())
	}
	for i := 0; i < 3; i++ {
		compiled, err := mdegst.RunCompiled(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !compiled.Final.Equal(plain.Final) {
			t.Fatalf("run %d: compiled pipeline produced a different tree", i)
		}
		if compiled.FinalDegree != plain.FinalDegree ||
			compiled.Rounds != plain.Rounds ||
			compiled.Total.Messages != plain.Total.Messages {
			t.Fatalf("run %d: compiled accounting diverged: %+v vs %+v", i, compiled, plain)
		}
	}

	// ImproveCompiled from a caller-built tree matches Improve.
	initial, _, err := mdegst.BuildSpanningTreeCompiled(c, mdegst.InitialFlood, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mdegst.Improve(g, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mdegst.ImproveCompiled(c, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Final.Equal(b.Final) || a.Total.Messages != b.Total.Messages {
		t.Fatal("ImproveCompiled diverged from Improve")
	}
}
