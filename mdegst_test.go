package mdegst_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"mdegst"
)

func TestRunPipelineDefaults(t *testing.T) {
	g := mdegst.Gnp(40, 0.15, 3)
	res, err := mdegst.Run(g, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Final.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.FinalDegree > res.InitialDegree {
		t.Errorf("degree rose %d -> %d", res.InitialDegree, res.FinalDegree)
	}
	if res.Setup == nil || res.Improvement == nil {
		t.Fatal("missing phase reports")
	}
	if res.Total.Messages != res.Setup.Messages+res.Improvement.Messages {
		t.Errorf("total = %d, want %d + %d", res.Total.Messages, res.Setup.Messages, res.Improvement.Messages)
	}
}

func TestRunAllInitialTreeMethods(t *testing.T) {
	g := mdegst.Gnp(30, 0.2, 5)
	methods := []mdegst.InitialTree{
		mdegst.InitialFlood, mdegst.InitialDFS, mdegst.InitialGHS,
		mdegst.InitialElection, mdegst.InitialStar, mdegst.InitialRandom,
	}
	for _, m := range methods {
		t.Run(m.String(), func(t *testing.T) {
			res, err := mdegst.Run(g, mdegst.Options{Initial: m, Mode: mdegst.ModeHybrid, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Final.Validate(g); err != nil {
				t.Fatal(err)
			}
			distributed := m != mdegst.InitialStar && m != mdegst.InitialRandom
			if distributed && res.Setup == nil {
				t.Error("distributed construction should report messages")
			}
			if !distributed && res.Setup != nil {
				t.Error("sequential construction should not report messages")
			}
		})
	}
}

func TestRunAllModesAllEngines(t *testing.T) {
	g := mdegst.BarabasiAlbert(24, 2, 7)
	for _, mode := range []mdegst.Mode{mdegst.ModeSingle, mdegst.ModeMulti, mdegst.ModeHybrid} {
		for name, eng := range map[string]mdegst.Engine{
			"unit":   mdegst.NewUnitEngine(),
			"random": mdegst.NewRandomDelayEngine(9),
			"async":  mdegst.NewAsyncEngine(),
		} {
			t.Run(fmt.Sprintf("%v/%s", mode, name), func(t *testing.T) {
				res, err := mdegst.Run(g, mdegst.Options{Mode: mode, Engine: eng, Initial: mdegst.InitialStar})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Final.Validate(g); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestImproveMatchesSequentialTwin(t *testing.T) {
	g := mdegst.Wheel(20)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mdegst.ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	seq, rounds, swaps, err := mdegst.ImproveSequential(g, t0, mdegst.ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Equal(seq) {
		t.Error("distributed and sequential twin disagree")
	}
	if res.Rounds != rounds || res.Swaps != swaps {
		t.Errorf("rounds/swaps %d/%d, twin %d/%d", res.Rounds, res.Swaps, rounds, swaps)
	}
}

func TestQualityAgainstExact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := mdegst.Gnm(10, 16, seed)
		opt, _, err := mdegst.ExactMinDegree(g)
		if err != nil {
			t.Fatal(err)
		}
		if lb := mdegst.DegreeLowerBound(g); lb > opt {
			t.Errorf("seed %d: lower bound %d exceeds optimum %d", seed, lb, opt)
		}
		res, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialStar})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDegree < opt {
			t.Errorf("seed %d: beat the optimum?! %d < %d", seed, res.FinalDegree, opt)
		}
	}
}

func TestFurerRaghavachariFacade(t *testing.T) {
	g := mdegst.Wheel(16)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	improved, swaps, err := mdegst.FurerRaghavachari(g, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := improved.Validate(g); err != nil {
		t.Fatal(err)
	}
	if swaps == 0 {
		t.Error("hub star of a wheel must be improvable")
	}
}

// Property: the end-to-end pipeline yields a valid spanning tree whose
// degree is bounded by the initial one, on random workloads.
func TestQuickPipelineInvariants(t *testing.T) {
	f := func(nRaw, extraRaw uint8, seed int64) bool {
		n := 5 + int(nRaw%40)
		m := n - 1 + int(extraRaw)%(2*n)
		g := mdegst.Gnm(n, m, seed)
		res, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialStar, Seed: seed})
		if err != nil {
			return false
		}
		if res.Final.Validate(g) != nil {
			return false
		}
		return res.FinalDegree <= res.InitialDegree && res.FinalDegree >= mdegst.DegreeLowerBound(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func ExampleRun() {
	g := mdegst.Wheel(10)
	res, _ := mdegst.Run(g, mdegst.Options{Initial: mdegst.InitialStar})
	fmt.Println("degree:", res.InitialDegree, "->", res.FinalDegree)
	// Output: degree: 9 -> 2
}
