package mdegst_test

import (
	"reflect"
	"testing"

	"mdegst"
)

// TestOptionsShards pins the facade contract of the shard-partitioned
// runtime: the full pipeline (flood setup + improvement protocol, with its
// pooled messages crossing shard boundaries) produces bit-identical trees
// and accounting at any shard count, and the report records the shard
// count it ran with.
func TestOptionsShards(t *testing.T) {
	g := mdegst.Gnm(96, 288, 7)
	base, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialFlood})
	if err != nil {
		t.Fatal(err)
	}
	if base.Total.Shards != 1 {
		t.Fatalf("unsharded run reports %d shards", base.Total.Shards)
	}
	for _, shards := range []int{2, 4, 7} {
		res, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialFlood, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Final.Equal(base.Final) || !res.Initial.Equal(base.Initial) {
			t.Fatalf("shards=%d: trees diverged from the unsharded run", shards)
		}
		if res.FinalDegree != base.FinalDegree || res.Rounds != base.Rounds || res.Swaps != base.Swaps {
			t.Fatalf("shards=%d: accounting diverged: %+v vs %+v", shards, res, base)
		}
		if res.Total.Messages != base.Total.Messages ||
			res.Total.Words != base.Total.Words ||
			res.Total.CausalDepth != base.Total.CausalDepth ||
			res.Total.VirtualTime != base.Total.VirtualTime {
			t.Fatalf("shards=%d: report scalars diverged", shards)
		}
		if !reflect.DeepEqual(res.Total.ByKindRound, base.Total.ByKindRound) {
			t.Fatalf("shards=%d: per-kind/round counts diverged", shards)
		}
		if !reflect.DeepEqual(res.Total.SentBy, base.Total.SentBy) {
			t.Fatalf("shards=%d: per-node send counts diverged", shards)
		}
		if res.Total.Shards != shards {
			t.Fatalf("shards=%d: report claims %d shards", shards, res.Total.Shards)
		}
	}

	// An explicit Engine wins over Shards (the option only fills the
	// default), and the compiled path plumbs shards identically.
	c := mdegst.Compile(g)
	res, err := mdegst.RunCompiled(c, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialFlood, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Equal(base.Final) || res.Total.Messages != base.Total.Messages {
		t.Fatal("RunCompiled with shards diverged")
	}
	over, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid, Initial: mdegst.InitialFlood,
		Shards: 4, Engine: mdegst.NewUnitEngine()})
	if err != nil {
		t.Fatal(err)
	}
	if over.Total.Shards != 1 {
		t.Fatalf("explicit engine overridden by Shards: %d", over.Total.Shards)
	}
}

// TestImproveCompiledSharded covers the Improve-only entry point: a
// caller-supplied initial tree improved on the sharded engine matches the
// default engine.
func TestImproveCompiledSharded(t *testing.T) {
	g := mdegst.BarabasiAlbert(80, 2, 3)
	c := mdegst.Compile(g)
	t0, _, err := mdegst.BuildSpanningTreeCompiled(c, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := mdegst.ImproveCompiled(c, t0, mdegst.Options{Mode: mdegst.ModeSingle})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := mdegst.ImproveCompiled(c, t0, mdegst.Options{Mode: mdegst.ModeSingle, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Final.Equal(base.Final) || sharded.Swaps != base.Swaps ||
		sharded.Improvement.Messages != base.Improvement.Messages {
		t.Fatal("sharded ImproveCompiled diverged from the default engine")
	}
}
