package mdegst

import (
	"errors"
	"fmt"
	"io"

	"mdegst/internal/exact"
	"mdegst/internal/exp"
	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// Re-exported fundamental types. Aliases (not definitions) so values move
// freely between the façade and the internal packages.
type (
	// Graph is an undirected graph of named nodes — the mutable builder
	// representation. Freeze it with Compile for the dense-index fast path.
	Graph = graph.Graph
	// CompiledGraph is an immutable dense-index (CSR) snapshot of a Graph:
	// adjacency in contiguous slices addressed by a NodeID<->int32 index.
	// Snapshots are safe to share across runs and goroutines; compile once
	// and reuse when executing many protocols over the same topology.
	CompiledGraph = graph.CSR
	// NodeID names a processor; identities are distinct but arbitrary.
	NodeID = graph.NodeID
	// Edge is an undirected edge in normalised (U < V) form.
	Edge = graph.Edge
	// Tree is a rooted spanning tree.
	Tree = tree.Tree
	// Mode selects the improvement protocol variant.
	Mode = mdst.Mode
	// Report is the message/time accounting of one protocol execution.
	Report = sim.Report
	// Engine executes protocols over a simulated network.
	Engine = sim.Engine
)

// Compile freezes g into an immutable dense-index snapshot (equivalent to
// g.Compile()). Use the *Compiled variants of Run, Improve and
// BuildSpanningTree to execute many pipelines over one snapshot without
// recompiling.
func Compile(g *Graph) *CompiledGraph { return g.Compile() }

// Protocol modes.
const (
	// ModeSingle is the paper's base algorithm: one exchange per round by
	// the minimum-identity maximum-degree node.
	ModeSingle = mdst.Single
	// ModeMulti is paper §3.2.6: every maximum-degree node exchanges
	// concurrently in each round.
	ModeMulti = mdst.Multi
	// ModeHybrid runs Multi rounds until they stall, then Single rounds to
	// full local optimality (recommended default).
	ModeHybrid = mdst.Hybrid
)

// InitialTree selects how the startup spanning tree is built.
type InitialTree int

const (
	// InitialFlood uses distributed flooding with echo termination from
	// the minimum-identity node (a BFS tree under unit delays).
	InitialFlood InitialTree = iota
	// InitialDFS uses the distributed token depth-first search.
	InitialDFS
	// InitialGHS uses the Gallager–Humblet–Spira protocol over
	// lexicographic edge weights.
	InitialGHS
	// InitialElection uses echo-wave extinction (no designated root).
	InitialElection
	// InitialStar uses the adversarial sequential builder rooting at a
	// maximum-degree hub — the paper's worst case (harness helper, not a
	// distributed protocol).
	InitialStar
	// InitialRandom uses a uniformly random spanning tree (Wilson's
	// algorithm; harness helper, not a distributed protocol).
	InitialRandom
)

func (it InitialTree) String() string {
	switch it {
	case InitialFlood:
		return "flood"
	case InitialDFS:
		return "dfs"
	case InitialGHS:
		return "ghs"
	case InitialElection:
		return "election"
	case InitialStar:
		return "star"
	case InitialRandom:
		return "random"
	default:
		return fmt.Sprintf("InitialTree(%d)", int(it))
	}
}

// Options configures Run and Improve. The zero value is a sensible default:
// flooding initial tree, Single mode, deterministic unit-delay engine.
type Options struct {
	// Mode is the improvement variant (default ModeSingle, the paper's
	// base algorithm).
	Mode Mode
	// Initial selects the startup spanning-tree construction (default
	// InitialFlood). Ignored by Improve.
	Initial InitialTree
	// Engine executes both phases (default deterministic event engine
	// with unit delays). Use NewAsyncEngine for true concurrency or
	// NewRandomDelayEngine for a seeded asynchrony adversary.
	Engine Engine
	// Shards, when above 1 and Engine is nil, runs both phases on the
	// shard-partitioned unit-delay engine: the run's per-node state plane
	// is split into that many shards executing rounds in parallel on
	// multi-core hosts. Results are identical to the default engine at
	// any shard count — sharding changes wall-clock time, nothing else.
	Shards int
	// Seed feeds the sequential helpers (InitialRandom) and defaults any
	// seeded engine construction.
	Seed int64
	// TargetDegree, when positive, stops the improvement as soon as the
	// tree's maximum degree is at most this value — the paper's "degree
	// cannot exceed a given value k" variant. Zero improves to local
	// optimality.
	TargetDegree int
}

func (o Options) engine() Engine {
	if o.Engine != nil {
		return o.Engine
	}
	if o.Shards > 1 {
		return NewShardedEngine(o.Shards)
	}
	return NewUnitEngine()
}

// NewUnitEngine returns the deterministic discrete-event engine with unit
// delays — the paper's time-complexity model.
func NewUnitEngine() Engine {
	return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true}
}

// NewShardedEngine returns the shard-partitioned unit-delay engine: one
// run's protocol instances, mailboxes and delivery queues are split into
// the given number of state shards, which execute each delivery window in
// parallel and
// exchange cross-shard messages at round barriers. Delivery traces,
// reports and resulting trees are bit-identical to NewUnitEngine at any
// shard count (DESIGN.md §7); only wall-clock time changes. Worthwhile for
// large single runs on multi-core hosts — for many small runs, parallelise
// across trials instead (RunExperiments, mdstrun -trials).
func NewShardedEngine(shards int) Engine {
	return &sim.ShardedEngine{Shards: shards, Delay: sim.UnitDelay, FIFO: true}
}

// NewRandomDelayEngine returns a seeded discrete-event engine whose delays
// are uniform in (0.05, 1] over FIFO links — a reproducible asynchrony
// adversary.
func NewRandomDelayEngine(seed int64) Engine {
	return &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: seed, FIFO: true}
}

// NewAsyncEngine returns the goroutine-per-node engine: real concurrency,
// scheduling decided by the Go runtime.
func NewAsyncEngine() Engine {
	return &sim.AsyncEngine{}
}

// TraceEvent describes one observable simulator step (a message delivery).
// Its Msg is a flat wire-format value record (no pointers), safe to retain.
type TraceEvent = sim.TraceEvent

// NewTracingEngine returns a unit-delay deterministic engine that reports
// every delivery to fn — the tool behind the Figure 2 wave visualisation.
// A nil fn disables tracing, making it equivalent to NewUnitEngine.
func NewTracingEngine(fn func(TraceEvent)) Engine {
	return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Trace: fn}
}

// NewTracingShardedEngine is NewShardedEngine with a trace callback
// observing every delivery in the exact global order (which forces the
// serial schedule; see DESIGN.md §7). A nil fn disables tracing.
func NewTracingShardedEngine(shards int, fn func(TraceEvent)) Engine {
	return &sim.ShardedEngine{Shards: shards, Delay: sim.UnitDelay, FIFO: true, Trace: fn}
}

// NewTracingRandomDelayEngine is NewRandomDelayEngine with a trace
// callback. A nil fn disables tracing.
func NewTracingRandomDelayEngine(seed int64, fn func(TraceEvent)) Engine {
	return &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: seed, FIFO: true, Trace: fn}
}

// BinaryTraceWriter encodes TraceEvents in the compact binary trace form
// (DESIGN.md §8); pair its Trace method with the tracing engine
// constructors and Close it when the run finished.
type BinaryTraceWriter = sim.BinaryTraceWriter

// NewBinaryTraceWriter starts a binary trace on w.
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	return sim.NewBinaryTraceWriter(w)
}

// Result reports a full pipeline run.
type Result struct {
	// Initial is the startup spanning tree, Final the improved one.
	Initial, Final *Tree
	// InitialDegree and FinalDegree are their maximum degrees (the paper's
	// k and k*).
	InitialDegree, FinalDegree int
	// Rounds and Swaps count improvement rounds and applied exchanges.
	Rounds, Swaps int
	// Setup accounts the spanning-tree construction (nil when the initial
	// tree was built sequentially or supplied by the caller); Improvement
	// accounts the improvement protocol; Total merges both.
	Setup, Improvement, Total *Report
}

// BuildSpanningTree constructs the startup spanning tree of g per the
// selected method. Distributed methods run on the engine and return their
// message report; sequential helpers return a nil report.
func BuildSpanningTree(g *Graph, method InitialTree, opts Options) (*Tree, *Report, error) {
	if g.N() == 0 {
		return nil, nil, fmt.Errorf("mdegst: empty graph")
	}
	return BuildSpanningTreeCompiled(g.Compile(), method, opts)
}

// BuildSpanningTreeCompiled is BuildSpanningTree over a pre-compiled
// snapshot.
func BuildSpanningTreeCompiled(c *CompiledGraph, method InitialTree, opts Options) (*Tree, *Report, error) {
	if c.N() == 0 {
		return nil, nil, fmt.Errorf("mdegst: empty graph")
	}
	g := c.Source()
	switch method {
	case InitialFlood:
		return spanning.BuildCompiled(opts.engine(), c, spanning.NewFloodFactory(g.Nodes()[0]))
	case InitialDFS:
		return spanning.BuildCompiled(opts.engine(), c, spanning.NewDFSFactory(g.Nodes()[0]))
	case InitialGHS:
		return spanning.BuildCompiled(opts.engine(), c, spanning.NewGHSFactory())
	case InitialElection:
		return spanning.BuildCompiled(opts.engine(), c, spanning.NewElectionFactory())
	case InitialStar:
		t, err := spanning.StarTree(g)
		return t, nil, err
	case InitialRandom:
		t, err := spanning.RandomST(g, opts.Seed)
		return t, nil, err
	default:
		return nil, nil, fmt.Errorf("mdegst: unknown initial tree method %v", method)
	}
}

// Run executes the full pipeline: build the startup spanning tree, then
// improve it with the paper's protocol. The graph is compiled once and the
// snapshot shared by both phases.
func Run(g *Graph, opts Options) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("mdegst: empty graph")
	}
	return RunCompiled(g.Compile(), opts)
}

// RunCompiled is Run over a pre-compiled snapshot.
func RunCompiled(c *CompiledGraph, opts Options) (*Result, error) {
	initial, setup, err := BuildSpanningTreeCompiled(c, opts.Initial, opts)
	if err != nil {
		return nil, err
	}
	res, err := ImproveCompiled(c, initial, opts)
	if err != nil {
		return nil, err
	}
	res.Setup = setup
	if setup != nil {
		res.Total.Add(setup)
	}
	return res, nil
}

// Improve runs the improvement protocol from the caller's spanning tree.
func Improve(g *Graph, initial *Tree, opts Options) (*Result, error) {
	return ImproveCompiled(g.Compile(), initial, opts)
}

// ImproveCompiled is Improve over a pre-compiled snapshot.
func ImproveCompiled(c *CompiledGraph, initial *Tree, opts Options) (*Result, error) {
	r, err := mdst.RunTargetSnapshot(opts.engine(), c, initial, opts.Mode, opts.TargetDegree)
	if err != nil {
		return nil, err
	}
	total := sim.NewReport()
	total.Add(r.Report)
	return &Result{
		Initial:       initial,
		Final:         r.Tree,
		InitialDegree: r.InitialDegree,
		FinalDegree:   r.FinalDegree,
		Rounds:        r.Rounds,
		Swaps:         r.Swaps,
		Improvement:   r.Report,
		Total:         total,
	}, nil
}

// Checkpoint is a run of the improvement protocol frozen at a round
// barrier (the serialisable form the flat wire-format message plane makes
// possible; see DESIGN.md §8).
type Checkpoint = sim.Checkpoint

// CheckpointImprove runs the improvement protocol like ImproveCompiled but
// arms a checkpoint at the barrier after `round` improvement rounds
// (0 freezes the state right after all Inits). If the run reaches the
// barrier, the frozen run — protocol states, pending messages, report
// counters — is written to w as a versioned byte-exact file and (true,
// nil) returns; if it quiesces earlier the run completes and (false, nil)
// returns with nothing written. Unit-delay engines only (the default and
// the sharded engine; Options.Engine must be nil).
func CheckpointImprove(c *CompiledGraph, initial *Tree, opts Options, round int64, w io.Writer) (bool, error) {
	if opts.Engine != nil {
		return false, fmt.Errorf("mdegst: checkpointing picks its own unit-delay engine; Options.Engine must be nil")
	}
	spec := &sim.CheckpointSpec{Round: round, W: w}
	_, err := mdst.RunTargetSnapshot(opts.checkpointEngine(spec), c, initial, opts.Mode, opts.TargetDegree)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, sim.ErrCheckpointed):
		return true, nil
	default:
		return false, err
	}
}

// ResumeImprove continues a checkpointed improvement run read from r. The
// graph, initial tree and options must match the checkpointing run; the
// returned Result (tree, report, rounds, swaps) is bitwise-identical to
// the run never having been interrupted. Resuming is engine-agnostic
// across shard counts: a sharded checkpoint resumes unsharded and vice
// versa.
func ResumeImprove(c *CompiledGraph, initial *Tree, opts Options, r io.Reader) (*Result, error) {
	if opts.Engine != nil {
		return nil, fmt.Errorf("mdegst: resuming picks its own unit-delay engine; Options.Engine must be nil")
	}
	ck, err := sim.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	res, err := mdst.ResumeTargetSnapshot(opts.checkpointEngine(nil), c, initial, opts.Mode, opts.TargetDegree, ck)
	if err != nil {
		return nil, err
	}
	total := sim.NewReport()
	total.Add(res.Report)
	return &Result{
		Initial:       initial,
		Final:         res.Tree,
		InitialDegree: res.InitialDegree,
		FinalDegree:   res.FinalDegree,
		Rounds:        res.Rounds,
		Swaps:         res.Swaps,
		Improvement:   res.Report,
		Total:         total,
	}, nil
}

// checkpointEngine builds the concrete unit-delay engine (sharded per
// Options.Shards) with an armed checkpoint spec (nil for resume).
func (o Options) checkpointEngine(spec *sim.CheckpointSpec) sim.ResumableEngine {
	if o.Shards > 1 {
		return &sim.ShardedEngine{Shards: o.Shards, Delay: sim.UnitDelay, FIFO: true, Checkpoint: spec}
	}
	return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Checkpoint: spec}
}

// ImproveSequential runs the sequential twin of the distributed protocol —
// identical result, no simulation — and returns the improved tree with its
// round/exchange counts. It is the fast path for large parameter sweeps and
// the oracle the distributed runs are tested against.
func ImproveSequential(g *Graph, initial *Tree, mode Mode) (*Tree, int, int, error) {
	t, stats, err := fr.Twin(g, initial, mode)
	if err != nil {
		return nil, 0, 0, err
	}
	return t, stats.Rounds, stats.Swaps, nil
}

// FurerRaghavachari runs the classic sequential local search (the paper's
// reference [3]) and returns the improved tree and its exchange count.
func FurerRaghavachari(g *Graph, initial *Tree) (*Tree, int, error) {
	t, stats, err := fr.FurerRaghavachari(g, initial)
	if err != nil {
		return nil, 0, err
	}
	return t, stats.Swaps, nil
}

// ExactMinDegree returns Δ*, the optimal spanning tree degree, with a
// witness tree. Exponential: limited to small graphs (see exact package).
func ExactMinDegree(g *Graph) (int, *Tree, error) {
	return exact.MinDegree(g)
}

// DegreeLowerBound returns a cheap lower bound on Δ* valid for any size.
func DegreeLowerBound(g *Graph) int {
	return exact.DegreeLowerBound(g)
}

// ExperimentTable is one rendered experiment table of the evaluation
// harness: header, formatted rows and footnotes, printable with Fprint and
// JSON-encodable.
type ExperimentTable = exp.Table

// ExperimentProgress reports trial completion while RunExperiments executes.
type ExperimentProgress = exp.ProgressEvent

// ExperimentOptions configures RunExperiments. The zero value runs the
// full-size evaluation on GOMAXPROCS workers.
type ExperimentOptions struct {
	// Seeds is the repetitions per table cell (0: the full-size default).
	Seeds int
	// Scale shrinks workload sizes by a factor in (0,1] (0: full size).
	Scale float64
	// Parallel is the worker count (<= 0: GOMAXPROCS). Tables are
	// bit-identical at any worker count for fixed Seeds and Scale.
	Parallel int
	// Progress, when non-nil, receives one serialised callback per
	// completed trial.
	Progress func(ExperimentProgress)
}

func (o ExperimentOptions) config() exp.Config {
	cfg := exp.Default()
	if o.Seeds > 0 {
		cfg.Seeds = o.Seeds
	}
	if o.Scale > 0 {
		cfg.Scale = o.Scale
	}
	return cfg
}

// ExperimentIDs returns the experiment table ids (E1..E10, A1..A3) in
// canonical order.
func ExperimentIDs() []string { return exp.IDs() }

// RunExperiments executes the named experiment tables of the paper's
// evaluation (nil or empty means all) by fanning their independent seeded
// trials across a worker pool. For a fixed configuration the returned
// tables are deterministic — bit-identical at any Parallel value.
func RunExperiments(ids []string, opts ExperimentOptions) ([]*ExperimentTable, error) {
	r := &exp.Runner{Config: opts.config(), Parallel: opts.Parallel, Progress: opts.Progress}
	return r.Run(ids)
}

// WriteExperimentsJSON encodes tables produced by RunExperiments, together
// with the configuration that produced them, as indented JSON — the same
// machine-readable surface as `mdstbench -json`.
func WriteExperimentsJSON(w io.Writer, tables []*ExperimentTable, opts ExperimentOptions) error {
	return exp.NewResultSet(opts.config(), tables).WriteJSON(w)
}
