// Package mdegst is a Go implementation of the first distributed
// approximation algorithm for the Minimum Degree Spanning Tree problem on
// general graphs (Lélia Blin & Franck Butelle, IPPS 2003 / IJFCS 2004),
// together with everything needed to run and evaluate it: an asynchronous
// message-passing network simulator with deterministic and true-concurrency
// engines, distributed spanning-tree construction substrates (flooding,
// token DFS, GHS, leader election), sequential baselines (a step-exact twin
// of the protocol and the Fürer–Raghavachari local search it builds on), an
// exact solver for ground truth, and an experiment harness reproducing the
// paper's complexity and quality claims.
//
// # Quick start
//
//	g := mdegst.Gnp(64, 0.1, 1)           // random connected network
//	res, err := mdegst.Run(g, mdegst.Options{})
//	if err != nil { ... }
//	fmt.Println(res.InitialDegree, "->", res.FinalDegree)
//
// Run builds an initial spanning tree with a distributed protocol, then
// improves it with the paper's algorithm; Result carries the trees and the
// message/time accounting of both phases. Use Improve to start from your
// own spanning tree, and Options to pick the protocol mode, the initial
// tree construction, and the simulation engine.
//
// Graph is the mutable builder representation; Compile freezes it into an
// immutable dense-index snapshot (CompiledGraph) that engines and
// algorithms execute over. When running many pipelines over one topology,
// compile once and use the *Compiled entry points (RunCompiled,
// ImproveCompiled, BuildSpanningTreeCompiled) — the plain functions are
// equivalent but recompile per call. See DESIGN.md §5.
//
// # Experiments
//
// RunExperiments executes the paper's evaluation tables (E1..E10 plus the
// A1..A3 ablations) by decomposing each table into independent seeded
// trials and fanning them across a worker pool:
//
//	tables, err := mdegst.RunExperiments(nil, mdegst.ExperimentOptions{Parallel: 8})
//	for _, t := range tables { t.Fprint(os.Stdout) }
//
// For a fixed ExperimentOptions configuration the tables are deterministic:
// bit-identical at any Parallel value. WriteExperimentsJSON emits the same
// tables on a machine-readable JSON surface, shared with the mdstbench
// -json flag; mdstbench -perf records engine and harness benchmarks on the
// repository's performance trajectory (BENCH_baseline.json,
// BENCH_csr.json), and mdstbench -perf -compare gates regressions against
// a recorded file.
//
// The packages under internal/ hold the implementations; this package is
// the stable surface: Graph and Tree are aliases of the internal types, so
// values flow freely between the façade and the internals.
package mdegst
