package mdegst

import (
	"testing"

	"mdegst/internal/sim"
)

// The Words()-accounting audit (wire schema satellite): every protocol's
// message sizes are pinned against the schema-derived word counts. Before
// the flat message plane each message hand-wrote its Words(); now the
// count is 1 (kind tag) + payload words of the record, and this table is
// the single place the paper-facing accounting is asserted. The facade
// links every protocol package, so all schemas are registered here.
//
// One historical asymmetry is preserved deliberately: the short (no
// report) form of mdst.bfsback counts round + improvement flag (3 words)
// while the long form also counts the explicit has-report flag (9 words)
// — the golden experiment tables (E6's maxWords = 9) pin both.
func TestWireWordsAudit(t *testing.T) {
	type bounds struct {
		minWords, maxWords int
		rounded            bool
	}
	want := map[string]bounds{
		// mdst: the paper's improvement protocol.
		"mdst.start":     {4, 4, true},
		"mdst.deg":       {4, 4, true},
		"mdst.move":      {4, 4, true},
		"mdst.cut":       {4, 4, true},
		"mdst.bfs":       {5, 5, true},
		"mdst.cousin":    {5, 5, true},
		"mdst.bfsback":   {3, 9, true},
		"mdst.update":    {5, 5, true},
		"mdst.child":     {2, 2, true},
		"mdst.rounddone": {2, 2, true},
		"mdst.term":      {2, 2, true},
		// spanning: flood (Chang's echo).
		"st.explore": {1, 1, false},
		"st.echo":    {1, 1, false},
		"st.done":    {1, 1, false},
		// spanning: token DFS.
		"st.discover": {1, 1, false},
		"st.return":   {2, 2, false},
		// spanning: election by echo-wave extinction.
		"el.explore": {2, 2, false},
		"el.echo":    {2, 2, false},
		"el.done":    {1, 1, false},
		// spanning: GHS.
		"ghs.connect":    {2, 2, false},
		"ghs.initiate":   {5, 5, false},
		"ghs.test":       {4, 4, false},
		"ghs.accept":     {1, 1, false},
		"ghs.reject":     {1, 1, false},
		"ghs.report":     {3, 3, false},
		"ghs.changeroot": {1, 1, false},
		"ghs.done":       {1, 1, false},
		// apps: broadcast/convergecast and the beta synchronizer.
		"app.payload": {2, 2, false},
		"app.ack":     {2, 2, false},
		"sync.alg":    {3, 3, true},
		"sync.ack":    {2, 2, true},
		"sync.safe":   {4, 4, true},
		"sync.pulse":  {2, 2, true},
		"sync.halt":   {2, 2, false},
	}
	covered := map[string]bool{}
	for _, s := range sim.Schemas() {
		for i := 0; i < s.Len(); i++ {
			sp := s.Spec(i)
			wb, ok := want[sp.Kind]
			if !ok {
				t.Errorf("kind %q (schema %q) not covered by the audit table — add it with its word accounting", sp.Kind, s.Proto())
				continue
			}
			covered[sp.Kind] = true
			if got := 1 + sp.MinPayload; got != wb.minWords {
				t.Errorf("%q min words = %d, want %d", sp.Kind, got, wb.minWords)
			}
			if got := 1 + sp.MaxPayload; got != wb.maxWords {
				t.Errorf("%q max words = %d, want %d", sp.Kind, got, wb.maxWords)
			}
			if sp.Rounded != wb.rounded {
				t.Errorf("%q rounded = %v, want %v", sp.Kind, sp.Rounded, wb.rounded)
			}
			if sp.MaxPayload > sim.MaxPayloadWords {
				t.Errorf("%q exceeds MaxPayloadWords", sp.Kind)
			}
		}
	}
	for kind := range want {
		if !covered[kind] {
			t.Errorf("audit table lists %q but no schema registers it", kind)
		}
	}
	// The paper's claim: at most four numbers or identities per message —
	// five words with the kind tag — holds for everything except the
	// BFSBack aggregate (DESIGN.md deviation; experiment E6 measures it).
	for _, s := range sim.Schemas() {
		for i := 0; i < s.Len(); i++ {
			sp := s.Spec(i)
			if sp.Kind == "mdst.bfsback" {
				continue
			}
			if 1+sp.MaxPayload > 5 {
				t.Errorf("%q carries %d words, beyond the paper's four-numbers bound", sp.Kind, 1+sp.MaxPayload)
			}
		}
	}
}
