// Command mdstrun executes the full pipeline — build an initial spanning
// tree, then improve it with the distributed MDegST protocol — and prints a
// run summary. With -trials it becomes a seeded sweep: independent trials
// (seed, seed+1, ...) run across a worker pool and are reported
// individually plus in aggregate.
//
// Usage:
//
//	mdstrun -graph gnp -n 64 -p 0.1 -seed 1 -initial flood -mode hybrid
//	mdstrun -graph wheel -n 32 -initial star -mode single -engine random
//	mdstrun -in network.edges -mode multi -verbose
//	mdstrun -graph ba -n 128 -trials 16 -parallel 8    # parallel seed sweep
//	mdstrun -graph gnp -n 64 -json -                   # machine-readable result
//
// The -in flag reads an edge list (see cmd/graphgen); otherwise a generator
// family is selected with -graph.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"mdegst"
	"mdegst/internal/graph"
)

func main() {
	var (
		family   = flag.String("graph", "gnp", "graph family: gnp|gnm|ba|geo|wheel|ring|star|complete|grid|hypercube|hamchords")
		n        = flag.Int("n", 64, "number of nodes")
		m        = flag.Int("m", 0, "number of edges (gnm; default 3n)")
		p        = flag.Float64("p", 0.1, "edge probability (gnp)")
		k        = flag.Int("k", 2, "attachment degree (ba) / chords (hamchords)")
		seed     = flag.Int64("seed", 1, "generator and engine seed (first seed of a sweep)")
		in       = flag.String("in", "", "read graph from edge-list file instead of generating")
		initial  = flag.String("initial", "flood", "initial tree: flood|dfs|ghs|election|star|random")
		mode     = flag.String("mode", "single", "improvement mode: single|multi|hybrid")
		engine   = flag.String("engine", "unit", "engine: unit|random|async")
		shards   = flag.Int("shards", 1, "state shards for one run (unit engine only): >1 executes each delivery window across shards in parallel, same results")
		target   = flag.Int("target", 0, "stop once the maximum degree is at most this (0: improve fully)")
		trials   = flag.Int("trials", 1, "number of independent seeded trials (seed, seed+1, ...)")
		parallel = flag.Int("parallel", 0, "workers for -trials > 1 (0: GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "write machine-readable results to this file (\"-\" for stdout)")
		ckptOut  = flag.String("checkpoint", "", "freeze the improvement phase at -checkpoint-round and write the checkpoint file here, then stop (single unit-engine trial)")
		ckptRnd  = flag.Int64("checkpoint-round", 2, "round barrier the -checkpoint freeze happens at (0: right after Init)")
		resumeIn = flag.String("resume", "", "resume an improvement run from this checkpoint file (same graph/flags as the checkpointing run) and finish it")
		traceBin = flag.String("tracebin", "", "write the single trial's delivery trace in the compact binary form to this file")
		dotOut   = flag.String("dot", "", "write the final tree (with non-tree edges dashed) as Graphviz DOT to this file (single trial only)")
		verbose  = flag.Bool("verbose", false, "print message breakdown by kind and round (single trial only)")
	)
	flag.Parse()

	if *trials < 1 {
		fatal(fmt.Errorf("-trials must be at least 1"))
	}

	// Validate the selector flags once, before any trial pays the
	// graph-construction cost.
	runMode, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	runInitial, err := parseInitial(*initial)
	if err != nil {
		fatal(err)
	}
	switch *engine {
	case "unit", "random", "async":
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be at least 1"))
	}
	if *shards > 1 && *engine != "unit" {
		// The sharded runtime's parallel window schedule exists under the
		// unit-delay model only (DESIGN.md §7).
		fatal(fmt.Errorf("-shards requires -engine unit"))
	}
	// A graph that does not depend on the trial seed — an -in file or a
	// deterministic family (buildGraph reports which) — is built and
	// compiled exactly once; the immutable snapshot is shared by every
	// trial and worker. Seeded families compile per trial.
	var shared *mdegst.CompiledGraph
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		g, err := graph.ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		shared = mdegst.Compile(g)
	} else {
		g, seeded, err := buildGraph(*family, *n, *m, *p, *k, *seed)
		if err != nil {
			fatal(err)
		}
		if !seeded {
			shared = mdegst.Compile(g)
		}
	}

	// Checkpoint/resume path: freeze the improvement phase at a round
	// barrier, or continue a frozen run — the kill/restart workflow of the
	// wire-format message plane (DESIGN.md §8). The startup spanning tree
	// is rebuilt deterministically from the flags, so the resumed pipeline
	// reports totals identical to the uninterrupted run.
	if *ckptOut != "" || *resumeIn != "" {
		if *ckptOut != "" && *resumeIn != "" {
			fatal(fmt.Errorf("-checkpoint and -resume are mutually exclusive"))
		}
		if *trials != 1 {
			fatal(fmt.Errorf("-checkpoint/-resume run a single trial"))
		}
		if *engine != "unit" {
			fatal(fmt.Errorf("-checkpoint/-resume require -engine unit (round barriers exist only there)"))
		}
		if *traceBin != "" {
			fatal(fmt.Errorf("-tracebin is not supported with -checkpoint/-resume"))
		}
		if *dotOut != "" && *ckptOut != "" {
			fatal(fmt.Errorf("-dot needs a finished run; use it with -resume, not -checkpoint"))
		}
		c := shared
		if c == nil {
			g, _, err := buildGraph(*family, *n, *m, *p, *k, *seed)
			if err != nil {
				fatal(err)
			}
			c = mdegst.Compile(g)
		}
		opts := mdegst.Options{Seed: *seed, TargetDegree: *target, Mode: runMode, Initial: runInitial, Shards: *shards}
		t0, setup, err := mdegst.BuildSpanningTreeCompiled(c, runInitial, opts)
		if err != nil {
			fatal(err)
		}
		if *ckptOut != "" {
			f, err := os.Create(*ckptOut)
			if err != nil {
				fatal(err)
			}
			written, err := mdegst.CheckpointImprove(c, t0, opts, *ckptRnd, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			if !written {
				os.Remove(*ckptOut)
				fatal(fmt.Errorf("improvement quiesced before round %d; no checkpoint written", *ckptRnd))
			}
			fmt.Printf("improvement frozen at round barrier %d -> %s (resume with -resume %s)\n", *ckptRnd, *ckptOut, *ckptOut)
			return
		}
		f, err := os.Open(*resumeIn)
		if err != nil {
			fatal(err)
		}
		res, err := mdegst.ResumeImprove(c, t0, opts, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		res.Setup = setup
		if setup != nil {
			res.Total.Add(setup)
		}
		printSingle(c.Source(), res, *initial, *verbose)
		if *dotOut != "" {
			writeDOT(*dotOut, c.Source(), res)
		}
		if *jsonOut != "" {
			if err := writeResults(*jsonOut, []mdegst.TrialSummary{mdegst.NewTrialSummary(*seed, c.Source(), res)}); err != nil {
				fatal(err)
			}
		}
		return
	}

	// An armed binary trace writer observes the single trial's deliveries
	// (validated below: -tracebin implies one trial on a tracing engine).
	var btw *mdegst.BinaryTraceWriter
	if *traceBin != "" {
		if *trials != 1 {
			fatal(fmt.Errorf("-tracebin records a single trial"))
		}
		if *engine == "async" {
			fatal(fmt.Errorf("-tracebin requires a deterministic engine (unit or random)"))
		}
		f, err := os.Create(*traceBin)
		if err != nil {
			fatal(err)
		}
		btw = mdegst.NewBinaryTraceWriter(f)
		defer func() {
			if err := btw.Close(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	runTrial := func(s int64) (*mdegst.Graph, *mdegst.Result, error) {
		c := shared
		if c == nil {
			g, _, err := buildGraph(*family, *n, *m, *p, *k, s)
			if err != nil {
				return nil, nil, err
			}
			c = mdegst.Compile(g)
		}
		var trace func(mdegst.TraceEvent)
		if btw != nil {
			trace = btw.Trace
		}
		opts := mdegst.Options{Seed: s, TargetDegree: *target, Mode: runMode, Initial: runInitial}
		switch *engine {
		case "unit":
			// The tracing constructors treat a nil callback as plain
			// engines, so one wiring covers -tracebin and ordinary runs.
			if *shards > 1 {
				opts.Engine = mdegst.NewTracingShardedEngine(*shards, trace)
			} else {
				opts.Engine = mdegst.NewTracingEngine(trace)
			}
		case "random":
			opts.Engine = mdegst.NewTracingRandomDelayEngine(s, trace)
		case "async":
			opts.Engine = mdegst.NewAsyncEngine()
		}
		res, err := mdegst.RunCompiled(c, opts)
		return c.Source(), res, err
	}

	if *trials == 1 {
		g, res, err := runTrial(*seed)
		if err != nil {
			fatal(err)
		}
		printSingle(g, res, *initial, *verbose)
		if *dotOut != "" {
			writeDOT(*dotOut, g, res)
		}
		if *jsonOut != "" {
			if err := writeResults(*jsonOut, []mdegst.TrialSummary{mdegst.NewTrialSummary(*seed, g, res)}); err != nil {
				fatal(err)
			}
		}
		return
	}

	// Seeded sweep: independent trials over a worker pool; output order is
	// by seed regardless of completion order.
	results := make([]mdegst.TrialSummary, *trials)
	errs := make([]error, *trials)
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > *trials {
		workers = *trials
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				s := *seed + int64(i)
				g, res, err := runTrial(s)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = mdegst.NewTrialSummary(s, g, res)
			}
		}()
	}
	for i := 0; i < *trials; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%-6s %5s %6s %4s %4s %7s %7s %10s %12s\n",
		"seed", "n", "m", "k", "k*", "rounds", "swaps", "messages", "causal depth")
	var ks, kstars, msgs, depths float64
	worst := 0
	for _, r := range results {
		fmt.Printf("%-6d %5d %6d %4d %4d %7d %7d %10d %12d\n",
			r.Seed, r.N, r.M, r.InitialDegree, r.FinalDegree, r.Rounds, r.Swaps, r.TotalMessages, r.CausalDepth)
		ks += float64(r.InitialDegree)
		kstars += float64(r.FinalDegree)
		msgs += float64(r.TotalMessages)
		depths += float64(r.CausalDepth)
		if r.FinalDegree > worst {
			worst = r.FinalDegree
		}
	}
	t := float64(*trials)
	fmt.Printf("mean over %d trials on %d workers: k=%.2f k*=%.2f (worst k*=%d) messages=%.0f causal depth=%.0f\n",
		*trials, workers, ks/t, kstars/t, worst, msgs/t, depths/t)

	if *jsonOut != "" {
		if err := writeResults(*jsonOut, results); err != nil {
			fatal(err)
		}
	}
}

// writeResults writes the shared machine-readable summary form (the same
// bytes cmd/mdstd emits for an equal run) to a file or stdout.
func writeResults(path string, results []mdegst.TrialSummary) error {
	if path == "-" {
		return mdegst.WriteTrialSummaries(os.Stdout, results)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mdegst.WriteTrialSummaries(f, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSingle(g *mdegst.Graph, res *mdegst.Result, initial string, verbose bool) {
	fmt.Printf("graph:        n=%d m=%d maxdeg=%d diameter=%d\n", g.N(), g.M(), g.MaxDegree(), g.Diameter())
	fmt.Printf("initial tree: %s, degree k=%d\n", initial, res.InitialDegree)
	fmt.Printf("final tree:   degree k*=%d (lower bound on Δ*: %d)\n", res.FinalDegree, mdegst.DegreeLowerBound(g))
	fmt.Printf("improvement:  %d rounds, %d exchanges, %d messages, causal depth %d\n",
		res.Rounds, res.Swaps, res.Improvement.Messages, res.Improvement.CausalDepth)
	if res.Setup != nil {
		fmt.Printf("setup:        %d messages, causal depth %d\n", res.Setup.Messages, res.Setup.CausalDepth)
	}
	fmt.Printf("total:        %d messages, %d words, max message %d words\n",
		res.Total.Messages, res.Total.Words, res.Total.MaxWords)
	if res.Total.Shards > 1 {
		fmt.Printf("sharding:     %d state shards (results identical to 1)\n", res.Total.Shards)
	}

	if verbose {
		fmt.Println("\nmessages by kind:")
		kinds := make([]string, 0, len(res.Total.ByKind))
		for kd := range res.Total.ByKind {
			kinds = append(kinds, kd)
		}
		sort.Strings(kinds)
		for _, kd := range kinds {
			fmt.Printf("  %-14s %8d\n", kd, res.Total.ByKind[kd])
		}
		fmt.Println("\nmessages by round:")
		rounds := make([]int, 0, len(res.Improvement.ByRound))
		for r := range res.Improvement.ByRound {
			rounds = append(rounds, r)
		}
		sort.Ints(rounds)
		for _, r := range rounds {
			fmt.Printf("  round %3d: %8d\n", r, res.Improvement.ByRound[r])
		}
		fmt.Println("\nfinal tree degree histogram:")
		hist := res.Final.DegreeHistogram()
		degs := make([]int, 0, len(hist))
		for d := range hist {
			degs = append(degs, d)
		}
		sort.Ints(degs)
		for _, d := range degs {
			fmt.Printf("  degree %2d: %5d nodes\n", d, hist[d])
		}
	}
}

func writeDOT(path string, g *mdegst.Graph, res *mdegst.Result) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := res.Final.WriteDOT(f, g); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("dot:          wrote %s\n", path)
}

// buildGraph constructs the selected family through the facade's shared
// generator surface (also behind mdstd's topology config). The second
// result reports whether the construction consumed the seed.
func buildGraph(family string, n, m int, p float64, k int, seed int64) (*mdegst.Graph, bool, error) {
	return mdegst.NamedGraph(family, n, m, p, k, seed)
}

func parseMode(s string) (mdegst.Mode, error) {
	switch s {
	case "single":
		return mdegst.ModeSingle, nil
	case "multi":
		return mdegst.ModeMulti, nil
	case "hybrid":
		return mdegst.ModeHybrid, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseInitial(s string) (mdegst.InitialTree, error) {
	switch s {
	case "flood":
		return mdegst.InitialFlood, nil
	case "dfs":
		return mdegst.InitialDFS, nil
	case "ghs":
		return mdegst.InitialGHS, nil
	case "election":
		return mdegst.InitialElection, nil
	case "star":
		return mdegst.InitialStar, nil
	case "random":
		return mdegst.InitialRandom, nil
	default:
		return 0, fmt.Errorf("unknown initial tree %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdstrun:", err)
	os.Exit(1)
}
