// Command mdstrun executes one full pipeline — build an initial spanning
// tree, then improve it with the distributed MDegST protocol — and prints a
// run summary.
//
// Usage:
//
//	mdstrun -graph gnp -n 64 -p 0.1 -seed 1 -initial flood -mode hybrid
//	mdstrun -graph wheel -n 32 -initial star -mode single -engine random
//	mdstrun -in network.edges -mode multi -verbose
//
// The -in flag reads an edge list (see cmd/graphgen); otherwise a generator
// family is selected with -graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mdegst"
	"mdegst/internal/graph"
)

func main() {
	var (
		family  = flag.String("graph", "gnp", "graph family: gnp|gnm|ba|geo|wheel|ring|star|complete|grid|hypercube|hamchords")
		n       = flag.Int("n", 64, "number of nodes")
		m       = flag.Int("m", 0, "number of edges (gnm; default 3n)")
		p       = flag.Float64("p", 0.1, "edge probability (gnp)")
		k       = flag.Int("k", 2, "attachment degree (ba) / chords (hamchords)")
		seed    = flag.Int64("seed", 1, "generator and engine seed")
		in      = flag.String("in", "", "read graph from edge-list file instead of generating")
		initial = flag.String("initial", "flood", "initial tree: flood|dfs|ghs|election|star|random")
		mode    = flag.String("mode", "single", "improvement mode: single|multi|hybrid")
		engine  = flag.String("engine", "unit", "engine: unit|random|async")
		target  = flag.Int("target", 0, "stop once the maximum degree is at most this (0: improve fully)")
		dotOut  = flag.String("dot", "", "write the final tree (with non-tree edges dashed) as Graphviz DOT to this file")
		verbose = flag.Bool("verbose", false, "print message breakdown by kind and round")
	)
	flag.Parse()

	g, err := buildGraph(*in, *family, *n, *m, *p, *k, *seed)
	if err != nil {
		fatal(err)
	}
	opts := mdegst.Options{Seed: *seed, TargetDegree: *target}
	if opts.Mode, err = parseMode(*mode); err != nil {
		fatal(err)
	}
	if opts.Initial, err = parseInitial(*initial); err != nil {
		fatal(err)
	}
	switch *engine {
	case "unit":
		opts.Engine = mdegst.NewUnitEngine()
	case "random":
		opts.Engine = mdegst.NewRandomDelayEngine(*seed)
	case "async":
		opts.Engine = mdegst.NewAsyncEngine()
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	res, err := mdegst.Run(g, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph:        n=%d m=%d maxdeg=%d diameter=%d\n", g.N(), g.M(), g.MaxDegree(), g.Diameter())
	fmt.Printf("initial tree: %s, degree k=%d\n", *initial, res.InitialDegree)
	fmt.Printf("final tree:   degree k*=%d (lower bound on Δ*: %d)\n", res.FinalDegree, mdegst.DegreeLowerBound(g))
	fmt.Printf("improvement:  %d rounds, %d exchanges, %d messages, causal depth %d\n",
		res.Rounds, res.Swaps, res.Improvement.Messages, res.Improvement.CausalDepth)
	if res.Setup != nil {
		fmt.Printf("setup:        %d messages, causal depth %d\n", res.Setup.Messages, res.Setup.CausalDepth)
	}
	fmt.Printf("total:        %d messages, %d words, max message %d words\n",
		res.Total.Messages, res.Total.Words, res.Total.MaxWords)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Final.WriteDOT(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("dot:          wrote %s\n", *dotOut)
	}

	if *verbose {
		fmt.Println("\nmessages by kind:")
		kinds := make([]string, 0, len(res.Total.ByKind))
		for kd := range res.Total.ByKind {
			kinds = append(kinds, kd)
		}
		sort.Strings(kinds)
		for _, kd := range kinds {
			fmt.Printf("  %-14s %8d\n", kd, res.Total.ByKind[kd])
		}
		fmt.Println("\nmessages by round:")
		rounds := make([]int, 0, len(res.Improvement.ByRound))
		for r := range res.Improvement.ByRound {
			rounds = append(rounds, r)
		}
		sort.Ints(rounds)
		for _, r := range rounds {
			fmt.Printf("  round %3d: %8d\n", r, res.Improvement.ByRound[r])
		}
		fmt.Println("\nfinal tree degree histogram:")
		hist := res.Final.DegreeHistogram()
		degs := make([]int, 0, len(hist))
		for d := range hist {
			degs = append(degs, d)
		}
		sort.Ints(degs)
		for _, d := range degs {
			fmt.Printf("  degree %2d: %5d nodes\n", d, hist[d])
		}
	}
}

func buildGraph(in, family string, n, m int, p float64, k int, seed int64) (*mdegst.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	if m == 0 {
		m = 3 * n
	}
	switch family {
	case "gnp":
		return mdegst.Gnp(n, p, seed), nil
	case "gnm":
		return mdegst.Gnm(n, m, seed), nil
	case "ba":
		return mdegst.BarabasiAlbert(n, k, seed), nil
	case "geo":
		return mdegst.RandomGeometric(n, 0.25, seed), nil
	case "wheel":
		return mdegst.Wheel(n), nil
	case "ring":
		return mdegst.Ring(n), nil
	case "star":
		return mdegst.StarGraph(n), nil
	case "complete":
		return mdegst.Complete(n), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return mdegst.Grid(side, side), nil
	case "hypercube":
		d := 1
		for 1<<(d+1) <= n {
			d++
		}
		return mdegst.Hypercube(d), nil
	case "hamchords":
		return mdegst.HamiltonianPlusChords(n, k*n, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func parseMode(s string) (mdegst.Mode, error) {
	switch s {
	case "single":
		return mdegst.ModeSingle, nil
	case "multi":
		return mdegst.ModeMulti, nil
	case "hybrid":
		return mdegst.ModeHybrid, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseInitial(s string) (mdegst.InitialTree, error) {
	switch s {
	case "flood":
		return mdegst.InitialFlood, nil
	case "dfs":
		return mdegst.InitialDFS, nil
	case "ghs":
		return mdegst.InitialGHS, nil
	case "election":
		return mdegst.InitialElection, nil
	case "star":
		return mdegst.InitialStar, nil
	case "random":
		return mdegst.InitialRandom, nil
	default:
		return 0, fmt.Errorf("unknown initial tree %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdstrun:", err)
	os.Exit(1)
}
