package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"mdegst/internal/exp"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	mdnet "mdegst/internal/net"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/workload"
)

// The perf suite behind `mdstbench -perf`: a fixed-seed set of
// micro-benchmarks run through testing.Benchmark, emitted as JSON. It
// maintains the repository's performance trajectory (BENCH_baseline.json ->
// BENCH_csr.json -> BENCH_queue.json): the EventEngine scheduler tiers
// (round engine under unit delays, calendar queue under random delays)
// measured against the unoptimised ReferenceEngine oracle, the parallel
// experiment harness measured against sequential execution, and — since the
// bounded-delay schedulers made them affordable — large-graph flood
// workloads up to a 100k-node grid that pin the scaling the README claims.

type perfEntry struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// Shards and Procs annotate the -scale suite's axis (0 on the classic
	// perf entries, whose names already carry any width that matters).
	Shards int `json:"shards,omitempty"`
	Procs  int `json:"procs,omitempty"`
}

type perfReport struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Workloads  []perfEntry       `json:"workloads"`
	Derived    map[string]string `json:"derived"`
	// Phases carries the -scaling suite's per-phase breakdown when recorded
	// with -phases: entry name -> PhaseStats accumulated over every measured
	// iteration of that cell (divide by Rounds for per-round costs). Absent
	// from the classic -perf suite and from baselines recorded without the
	// flag; the compare gate ignores it.
	Phases map[string]*sim.PhaseStats `json:"phases,omitempty"`
	// Net carries the -netbench suite's per-cell wire counters (entry name
	// -> NetStats accumulated over every measured iteration). Absent from
	// the other suites; the compare gate ignores it.
	Net map[string]*mdnet.NetStats `json:"net,omitempty"`
}

func benchToEntry(name string, r testing.BenchmarkResult) perfEntry {
	return perfEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchEngine runs the full improvement protocol (wheel-free Gnm workload,
// star start, hybrid mode) on the given engine construction.
func benchEngine(mk func() sim.Engine) testing.BenchmarkResult {
	g := graph.Gnm(96, 288, 1)
	t0, err := spanning.StarTree(g)
	if err != nil {
		panic(err)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mdst.Run(mk(), g, t0, mdst.Hybrid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchFlood runs the engine-bound spanning-tree flood on a denser graph,
// isolating simulator overhead from protocol logic. It recompiles the
// snapshot per iteration, deliberately: the entry predates the large-graph
// suite and stays methodologically identical to the recorded trajectory.
func benchFlood(mk func() sim.Engine) testing.BenchmarkResult {
	g := graph.Gnm(256, 1024, 1)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := spanning.Build(mk(), g, spanning.NewFloodFactory(g.Nodes()[0])); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchFloodSnap floods a pre-compiled workload. The snapshot (and, for
// the sharded entries, the partition inside the engine maker) is built
// once outside the timed loop — at 100k+ nodes recompiling the CSR per
// iteration would dominate the engine being measured.
func benchFloodSnap(c *graph.CSR, mk func() sim.Engine) testing.BenchmarkResult {
	root := c.Index().ID(0)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := spanning.BuildCompiled(mk(), c, spanning.NewFloodFactory(root)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchHarness runs a fixed-seed quick sweep through the experiment runner
// at the given worker count.
func benchHarness(parallel int) testing.BenchmarkResult {
	cfg := exp.Config{Seeds: 2, Scale: 0.25}
	ids := []string{"E1", "E3", "E5"}
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&exp.Runner{Config: cfg, Parallel: parallel}).Run(ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ratio(num, den int64) string {
	if num == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", float64(den)/float64(num))
}

// largeWorkloads are the scale tier the bounded-delay schedulers unlocked:
// flood (pure engine throughput) over the catalog's 4k–100k graphs, run on
// the unit-delay round engine. Generated lazily — they are the dominant
// setup cost of the suite.
func largeWorkloads() []struct {
	name string
	gen  func() *graph.Graph
} {
	out := make([]struct {
		name string
		gen  func() *graph.Graph
	}, 0, len(workload.Large()))
	for _, w := range workload.Large() {
		out = append(out, struct {
			name string
			gen  func() *graph.Graph
		}{"flood/" + w.Name + "/event-engine", w.Gen})
	}
	return out
}

func runPerf(path string, parallel, shards int) (*perfReport, error) {
	unit := func() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true} }
	ref := func() sim.Engine { return &sim.ReferenceEngine{Delay: sim.UnitDelay, FIFO: true} }
	uniform := func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.05), FIFO: true, Seed: 1} }
	refUniform := func() sim.Engine { return &sim.ReferenceEngine{Delay: sim.UniformDelay(0.05), FIFO: true, Seed: 1} }
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	fmt.Fprintln(os.Stderr, "mdstbench: running perf suite (scheduler tiers vs reference, harness parallel vs sequential, large graphs)...")
	event := benchEngine(unit)
	reference := benchEngine(ref)
	eventFlood := benchFlood(unit)
	referenceFlood := benchFlood(ref)
	wheelFlood := benchFlood(uniform)
	refUniformFlood := benchFlood(refUniform)
	seq := benchHarness(1)

	rep := perfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads: []perfEntry{
			benchToEntry("mdst-hybrid/gnm-96/event-engine", event),
			benchToEntry("mdst-hybrid/gnm-96/reference-engine", reference),
			benchToEntry("flood/gnm-256/event-engine", eventFlood),
			benchToEntry("flood/gnm-256/reference-engine", referenceFlood),
			benchToEntry("flood/gnm-256/event-uniform", wheelFlood),
			benchToEntry("flood/gnm-256/reference-uniform", refUniformFlood),
			benchToEntry("harness/E1,E3,E5-quick/parallel=1", seq),
		},
		Derived: map[string]string{
			"engine_allocs_reduction": ratio(event.AllocsPerOp(), reference.AllocsPerOp()),
			"engine_time_speedup":     ratio(event.NsPerOp(), reference.NsPerOp()),
			"flood_allocs_reduction":  ratio(eventFlood.AllocsPerOp(), referenceFlood.AllocsPerOp()),
			"flood_time_speedup":      ratio(eventFlood.NsPerOp(), referenceFlood.NsPerOp()),
			"wheel_time_speedup":      ratio(wheelFlood.NsPerOp(), refUniformFlood.NsPerOp()),
		},
	}
	large := make(map[string]testing.BenchmarkResult)
	for _, w := range largeWorkloads() {
		fmt.Fprintf(os.Stderr, "mdstbench: large workload %s...\n", w.name)
		res := benchFloodSnap(w.gen().Compile(), unit)
		large[w.name] = res
		rep.Workloads = append(rep.Workloads, benchToEntry(w.name, res))
	}

	// Shard-partitioned scaling tier (the BENCH_shard.json trajectory):
	// the grid-100k flood plus the grid-1M flood, single-shard vs the
	// sharded runtime on a precomputed contiguous partition. Entry names
	// carry the shard count so the -compare gate never diffs runs of
	// different widths; speedup is hardware-bound (min(shards, GOMAXPROCS)
	// cores drive the window phases — on one core the ratio measures pure
	// runtime overhead, and the report's gomaxprocs field says which it
	// was).
	shardTier := []struct {
		base string
		gen  func() *graph.Graph
	}{
		{"grid-100k", workload.Grid100k},
		{"grid-1M", workload.Grid1M},
	}
	for _, w := range shardTier {
		singleName := fmt.Sprintf("flood/%s/event-engine", w.base)
		shardedName := fmt.Sprintf("flood/%s/sharded-%d", w.base, shards)
		fmt.Fprintf(os.Stderr, "mdstbench: shard tier %s (%d shards)...\n", w.base, shards)
		c := w.gen().Compile()
		single, ok := large[singleName]
		if !ok {
			single = benchFloodSnap(c, unit)
			rep.Workloads = append(rep.Workloads, benchToEntry(singleName, single))
		}
		part := graph.PartitionContiguous(c, shards)
		sharded := benchFloodSnap(c, func() sim.Engine {
			return &sim.ShardedEngine{Partition: part, Delay: sim.UnitDelay, FIFO: true}
		})
		rep.Workloads = append(rep.Workloads, benchToEntry(shardedName, sharded))
		rep.Derived[fmt.Sprintf("shard_speedup_%s", w.base)] = ratio(sharded.NsPerOp(), single.NsPerOp())
		rep.Derived[fmt.Sprintf("shard_cut_fraction_%s", w.base)] = fmt.Sprintf("%.1f%%", 100*part.CutFraction())
	}
	if cores := runtime.GOMAXPROCS(0); cores < shards {
		rep.Derived["shard_note"] = fmt.Sprintf(
			"sharded entries recorded at GOMAXPROCS=%d < %d shards: the phases ran inline, so the ratios measure the sharded plane's overhead, not parallel speedup", cores, shards)
	}
	// The parallel-harness measurement only exists on multi-core machines;
	// on one core it would duplicate the sequential entry under a second
	// name. Its entry name carries the worker count, so the -compare gate
	// only diffs it against a baseline recorded at the same width.
	if workers > 1 {
		par := benchHarness(workers)
		rep.Workloads = append(rep.Workloads, benchToEntry(fmt.Sprintf("harness/E1,E3,E5-quick/parallel=%d", workers), par))
		rep.Derived["harness_parallel_speedup"] = ratio(par.NsPerOp(), seq.NsPerOp())
	} else {
		rep.Derived["harness_parallel_speedup"] = "n/a (1 worker)"
	}

	if err := writeTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return nil, err
	}
	for k, v := range rep.Derived {
		fmt.Fprintf(os.Stderr, "mdstbench: %-26s %s\n", k, v)
	}
	return &rep, nil
}
