package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/workload"
)

// The scaling suite behind `mdstbench -scaling out.json`: the shards ×
// GOMAXPROCS axis of the sharded round engine, recorded as BENCH_scale.json.
// Where the classic -perf suite asks "did any engine get slower", this suite
// asks the question PR 7 exists to answer and PR 9's scatter plane finally
// makes winnable: does adding shards on a multi-core host actually buy
// wall-clock time? Each workload floods on the dense build path (slab
// factory, dense extraction) at 1, 4 and 8 shards over a cut-minimizing
// refined partition, with GOMAXPROCS forced to -procs so the recorded axis
// is explicit rather than whatever the machine had.
//
// Every cell runs at least scaleMinIters timed iterations (and at least
// scaleMinWall of summed wall time) and records the *median* per-iteration
// time: the committed trajectory used to carry `iterations: 1` samples on
// grid-1M, which made the CI gate a coin-flip against scheduler noise.
// Allocation averages come from the allocator's monotonic counters over the
// whole cell, so they stay exact regardless of the iteration count.
//
// The suite carries its own acceptance gates:
//
//   - grid-1M at 8 shards must run >= minShardSpeedup faster than 1 shard
//     when at least 8 CPUs are present — the "sharding actually wins" gate.
//   - grid-1M at 4 shards must allocate <= maxShardByteFactor the bytes/op
//     of 1 shard, on ANY host: the single-copy scatter plane's contract is
//     that cross-shard traffic no longer doubles the traffic's footprint,
//     and bytes/op is deterministic, so narrow hosts enforce it too.
//   - grid-100k at 4 shards must stay within smallParityFactor of 1 shard
//     when at least 4 CPUs are present: on a workload this small the
//     sharded plane's overhead must already be paid for by parallelism.
//
// Wall-clock floors on narrower hosts are still recorded (they then measure
// the sharded plane's overhead, exactly like the -perf shard tier) but
// become a loud note instead of a failure; the byte gate always fails hard.
//
// With -phases each sharded cell additionally accumulates the engine's
// per-phase breakdown (PhaseStats: deliver / scan / scatter / barrier wait)
// across every measured iteration and records it in the report's "phases"
// map — the regression-archaeology artifact CI uploads from the scaling
// gate.

const (
	// minShardSpeedup is the wall-clock floor for grid-1M at 8 shards vs 1
	// shard with 8 procs: ISSUE 9's acceptance bar, conservative against the
	// ideal 8x because the barrier and the ~0.2% cut-edge scatter traffic
	// are real costs.
	minShardSpeedup = 2.5
	// maxShardByteFactor bounds grid-1M bytes/op at 4 shards relative to 1
	// shard. Enforced unconditionally: allocation volume does not depend on
	// how many CPUs executed the run.
	maxShardByteFactor = 1.3
	// smallParityFactor bounds the allowed 4-shard slowdown on grid-100k
	// with >=4 CPUs.
	smallParityFactor = 1.05
	// scaleMinIters / scaleMinWall set the per-cell measurement floor: at
	// least this many timed iterations AND at least this much summed wall
	// time, whichever demands more.
	scaleMinIters = 5
	scaleMinWall  = time.Second
)

// scaleShardCounts is the shard axis of the suite; 1 is the event-engine
// baseline the speedups are measured against.
var scaleShardCounts = []int{1, 4, 8}

// benchCell measures one (workload, shards) cell: fn runs at least
// scaleMinIters times and for at least scaleMinWall of summed wall time,
// every iteration timed individually. The reported ns/op is the median
// iteration — robust against a GC pause or scheduler hiccup landing in one
// sample — and allocs/bytes per op are exact averages from the allocator's
// monotonic counters (mallocs and total-alloc never decrease, so GC during
// the cell cannot skew them).
func benchCell(fn func() error) (iters int, medianNs, allocsPerOp, bytesPerOp int64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var times []time.Duration
	var total time.Duration
	for len(times) < scaleMinIters || total < scaleMinWall {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, 0, 0, 0, err
		}
		d := time.Since(t0)
		times = append(times, d)
		total += d
	}
	runtime.ReadMemStats(&after)
	iters = len(times)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	medianNs = int64(times[iters/2])
	if iters%2 == 0 {
		medianNs = int64(times[iters/2-1]+times[iters/2]) / 2
	}
	allocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(iters)
	bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
	return iters, medianNs, allocsPerOp, bytesPerOp, nil
}

func runScale(path string, procs int, phases bool) (*perfReport, error) {
	if procs <= 0 {
		procs = 8
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	cores := runtime.NumCPU()
	rep := &perfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: procs,
		Derived:    map[string]string{},
	}
	if phases {
		rep.Phases = map[string]*sim.PhaseStats{}
	}
	if cores < procs {
		fmt.Fprintf(os.Stderr,
			"mdstbench: WARNING: -scaling forced GOMAXPROCS=%d on a %d-CPU host; the sharded entries measure runtime overhead, not parallel speedup, and the wall-clock floors are not enforced\n",
			procs, cores)
		rep.Derived["scale_note"] = fmt.Sprintf(
			"recorded at GOMAXPROCS=%d on %d CPU(s): ratios measure the sharded plane's overhead, not parallel speedup", procs, cores)
	}

	speedup := map[string]float64{}    // "<workload>/s<S>" -> single-shard ns / S-shard ns
	byteFactor := map[string]float64{} // "<workload>/s<S>" -> S-shard bytes / single-shard bytes
	for _, w := range workload.Scale() {
		fmt.Fprintf(os.Stderr, "mdstbench: scale workload %s (shards %v, procs=%d)...\n", w.Name, scaleShardCounts, procs)
		c := w.Gen().Compile()
		root := c.Index().ID(0)
		var baseNs, baseBytes int64
		for _, S := range scaleShardCounts {
			var eng sim.Engine
			var sharded *sim.ShardedEngine
			if S <= 1 {
				eng = &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true}
			} else {
				part := graph.PartitionRefined(c, S)
				rep.Derived[fmt.Sprintf("scale_cut_%s_s%d", w.Name, S)] = fmt.Sprintf("%.2f%%", 100*part.CutFraction())
				sharded = &sim.ShardedEngine{Partition: part, Delay: sim.UnitDelay, FIFO: true}
				eng = sharded
			}
			// One engine and one slab factory per (workload, shards) cell,
			// built outside the timed loop like the snapshot: the steady
			// state being measured is "run the protocol again", not "set up
			// the world again". Reusing the engine instance is what a replay
			// loop or a daemon does, and it keeps the sharded engine's arena
			// cache alive across iterations — the untimed warm-up run grows
			// the arenas once so first-touch setup doesn't smear into the
			// steady-state numbers.
			f := spanning.NewFloodFactorySnap(c, root)
			if _, _, err := spanning.BuildCompiledDense(eng, c, f); err != nil {
				return nil, err
			}
			// Stats arm after the warm-up so the recorded breakdown covers
			// exactly the measured iterations.
			var st *sim.PhaseStats
			if phases && sharded != nil {
				st = &sim.PhaseStats{}
				sharded.Stats = st
			}
			iters, medianNs, allocsPerOp, bytesPerOp, err := benchCell(func() error {
				_, _, err := spanning.BuildCompiledDense(eng, c, f)
				return err
			})
			if err != nil {
				return nil, err
			}
			e := perfEntry{
				Name:        fmt.Sprintf("flood/%s/shards=%d/procs=%d", w.Name, S, procs),
				Iterations:  iters,
				NsPerOp:     medianNs,
				AllocsPerOp: allocsPerOp,
				BytesPerOp:  bytesPerOp,
				Shards:      S,
				Procs:       procs,
			}
			rep.Workloads = append(rep.Workloads, e)
			if st != nil {
				rep.Phases[e.Name] = st
			}
			if S <= 1 {
				baseNs, baseBytes = medianNs, bytesPerOp
			} else {
				key := fmt.Sprintf("%s/s%d", w.Name, S)
				if medianNs > 0 {
					sp := float64(baseNs) / float64(medianNs)
					speedup[key] = sp
					rep.Derived[fmt.Sprintf("scale_speedup_%s_s%d", w.Name, S)] = fmt.Sprintf("%.1fx", sp)
				}
				if baseBytes > 0 {
					bf := float64(bytesPerOp) / float64(baseBytes)
					byteFactor[key] = bf
					rep.Derived[fmt.Sprintf("scale_bytes_%s_s%d", w.Name, S)] = fmt.Sprintf("%.2fx", bf)
				}
			}
		}
	}

	var violations []string
	checkFloor := func(need int, key string, ok func(float64) bool, what string) {
		sp, have := speedup[key]
		if !have {
			return
		}
		if cores < need {
			fmt.Fprintf(os.Stderr, "mdstbench: scale floor %s skipped (%d CPU(s) < %d needed)\n", what, cores, need)
			return
		}
		if !ok(sp) {
			violations = append(violations, fmt.Sprintf("%s: got %.2fx", what, sp))
		}
	}
	checkFloor(8, "grid-1M/s8",
		func(sp float64) bool { return sp >= minShardSpeedup },
		fmt.Sprintf("grid-1M 8-shard speedup >= %.1fx", minShardSpeedup))
	checkFloor(4, "grid-100k/s4",
		func(sp float64) bool { return sp >= 1/smallParityFactor },
		fmt.Sprintf("grid-100k 4-shard parity (<= %.2fx slowdown)", smallParityFactor))
	// The byte gate is width-independent — allocation volume is a property
	// of the delivery plane, not of how many CPUs ran it — so unlike the
	// wall-clock floors it is enforced on every host.
	if bf, have := byteFactor["grid-1M/s4"]; have && bf > maxShardByteFactor {
		violations = append(violations,
			fmt.Sprintf("grid-1M 4-shard bytes/op <= %.1fx of 1-shard: got %.2fx", maxShardByteFactor, bf))
	}

	if err := writeTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return nil, err
	}
	for k, v := range rep.Derived {
		fmt.Fprintf(os.Stderr, "mdstbench: %-28s %s\n", k, v)
	}
	if len(violations) > 0 {
		// The report file is written either way — a failed gate should leave
		// the evidence behind, not just an exit code.
		return rep, fmt.Errorf("scaling gates violated: %s", strings.Join(violations, "; "))
	}
	return rep, nil
}
