package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/workload"
)

// The scaling suite behind `mdstbench -scaling out.json`: the shards ×
// GOMAXPROCS axis of the sharded round engine, recorded as BENCH_scale.json.
// Where the classic -perf suite asks "did any engine get slower", this suite
// asks the question PR 7 exists to answer: does adding shards on a
// multi-core host actually buy wall-clock time? Each workload floods on the
// dense build path (slab factory, dense extraction) at 1, 4 and 8 shards
// over a cut-minimizing refined partition, with GOMAXPROCS forced to -procs
// so the recorded axis is explicit rather than whatever the machine had.
//
// The suite carries its own acceptance floors, enforced only on hardware
// that can express them (runtime.NumCPU drives the decision, loudly):
//
//   - grid-1M at 8 shards must run >= minShardSpeedup faster than 1 shard
//     when at least 8 CPUs are present — the "sharding actually wins" gate.
//   - grid-100k at 4 shards must stay within smallParityFactor of 1 shard
//     when at least 4 CPUs are present: on a workload this small the
//     sharded plane's overhead must already be paid for by parallelism.
//
// On narrower hosts the entries are still recorded (they then measure the
// sharded plane's overhead, exactly like the -perf shard tier) and the
// floors become a loud note instead of a failure.

const (
	// minShardSpeedup is the wall-clock floor for grid-1M at 8 shards vs 1
	// shard with 8 procs: conservative against the ideal 8x because the
	// barrier and the ~0.2% cut-edge merge traffic are real costs.
	minShardSpeedup = 3.0
	// smallParityFactor bounds the allowed 4-shard slowdown on grid-100k
	// with >=4 CPUs.
	smallParityFactor = 1.05
)

// scaleShardCounts is the shard axis of the suite; 1 is the event-engine
// baseline the speedups are measured against.
var scaleShardCounts = []int{1, 4, 8}

func runScale(path string, procs int) (*perfReport, error) {
	if procs <= 0 {
		procs = 8
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	cores := runtime.NumCPU()
	rep := &perfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: procs,
		Derived:    map[string]string{},
	}
	if cores < procs {
		fmt.Fprintf(os.Stderr,
			"mdstbench: WARNING: -scaling forced GOMAXPROCS=%d on a %d-CPU host; the sharded entries measure runtime overhead, not parallel speedup, and the scaling floors are not enforced\n",
			procs, cores)
		rep.Derived["scale_note"] = fmt.Sprintf(
			"recorded at GOMAXPROCS=%d on %d CPU(s): ratios measure the sharded plane's overhead, not parallel speedup", procs, cores)
	}

	speedup := map[string]float64{} // "<workload>/s<S>" -> single-shard ns / S-shard ns
	for _, w := range workload.Scale() {
		fmt.Fprintf(os.Stderr, "mdstbench: scale workload %s (shards %v, procs=%d)...\n", w.Name, scaleShardCounts, procs)
		c := w.Gen().Compile()
		root := c.Index().ID(0)
		var baseNs int64
		for _, S := range scaleShardCounts {
			var mk func() sim.Engine
			if S <= 1 {
				mk = func() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true} }
			} else {
				part := graph.PartitionRefined(c, S)
				rep.Derived[fmt.Sprintf("scale_cut_%s_s%d", w.Name, S)] = fmt.Sprintf("%.2f%%", 100*part.CutFraction())
				mk = func() sim.Engine { return &sim.ShardedEngine{Partition: part, Delay: sim.UnitDelay, FIFO: true} }
			}
			// One slab factory per (workload, shards) cell, built outside the
			// timed loop like the snapshot: the steady state being measured is
			// "run the protocol again", not "set up the world again". The
			// untimed warm-up run fills the engine's pools so first-iteration
			// setup allocations don't smear into the steady-state numbers.
			f := spanning.NewFloodFactorySnap(c, root)
			if _, _, err := spanning.BuildCompiledDense(mk(), c, f); err != nil {
				return nil, err
			}
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := spanning.BuildCompiledDense(mk(), c, f); err != nil {
						b.Fatal(err)
					}
				}
			})
			e := benchToEntry(fmt.Sprintf("flood/%s/shards=%d/procs=%d", w.Name, S, procs), res)
			e.Shards, e.Procs = S, procs
			rep.Workloads = append(rep.Workloads, e)
			if S <= 1 {
				baseNs = res.NsPerOp()
			} else if res.NsPerOp() > 0 {
				sp := float64(baseNs) / float64(res.NsPerOp())
				speedup[fmt.Sprintf("%s/s%d", w.Name, S)] = sp
				rep.Derived[fmt.Sprintf("scale_speedup_%s_s%d", w.Name, S)] = fmt.Sprintf("%.1fx", sp)
			}
		}
	}

	var violations []string
	checkFloor := func(need int, key string, ok func(float64) bool, what string) {
		sp, have := speedup[key]
		if !have {
			return
		}
		if cores < need {
			fmt.Fprintf(os.Stderr, "mdstbench: scale floor %s skipped (%d CPU(s) < %d needed)\n", what, cores, need)
			return
		}
		if !ok(sp) {
			violations = append(violations, fmt.Sprintf("%s: got %.2fx", what, sp))
		}
	}
	checkFloor(8, "grid-1M/s8",
		func(sp float64) bool { return sp >= minShardSpeedup },
		fmt.Sprintf("grid-1M 8-shard speedup >= %.1fx", minShardSpeedup))
	checkFloor(4, "grid-100k/s4",
		func(sp float64) bool { return sp >= 1/smallParityFactor },
		fmt.Sprintf("grid-100k 4-shard parity (<= %.2fx slowdown)", smallParityFactor))

	if err := writeTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return nil, err
	}
	for k, v := range rep.Derived {
		fmt.Fprintf(os.Stderr, "mdstbench: %-28s %s\n", k, v)
	}
	if len(violations) > 0 {
		// The report file is written either way — a failed gate should leave
		// the evidence behind, not just an exit code.
		return rep, fmt.Errorf("scaling floors violated: %s", strings.Join(violations, "; "))
	}
	return rep, nil
}
