// Command mdstbench regenerates the evaluation tables of EXPERIMENTS.md:
// one table per experiment id defined in DESIGN.md §4. Trials are fanned
// across a worker pool; for a fixed -seeds/-scale the tables are
// bit-identical at any -parallel value.
//
// Usage:
//
//	mdstbench                   # run every experiment on GOMAXPROCS workers
//	mdstbench -exp E3,E4        # run selected experiments
//	mdstbench -quick            # reduced sizes and seeds (seconds, not minutes)
//	mdstbench -seeds 10         # more repetitions per cell
//	mdstbench -parallel 1       # sequential execution
//	mdstbench -progress         # live per-trial progress on stderr
//	mdstbench -json out.json    # machine-readable tables ("-" for stdout)
//	mdstbench -perf bench.json  # engine/harness micro-benchmarks instead of tables
//	mdstbench -perf bench.json -shards 8
//	                            # ... with the sharded scaling entries at 8 shards
//	mdstbench -perf bench.json -compare BENCH_shard.json
//	                            # ... and fail (exit 1) on regression vs the recorded trajectory
//	mdstbench -perf bench.json -cpuprofile cpu.pprof -memprofile mem.pprof
//	                            # ... with pprof evidence for perf work
//	mdstbench -scaling scale.json
//	                            # shards×GOMAXPROCS scaling suite (BENCH_scale.json trajectory)
//	mdstbench -scaling scale.json -procs 8 -compare BENCH_scale.json
//	                            # ... gated against the recorded scaling baseline
//	mdstbench -scaling scale.json -phases
//	                            # ... with the sharded engine's per-phase time breakdown
//	mdstbench -netbench net.json
//	                            # loopback distributed-engine suite (BENCH_net.json trajectory)
//	mdstbench -netbench net.json -compare BENCH_net.json
//	                            # ... gated against the recorded loopback baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mdegst/internal/exp"
)

func main() { os.Exit(mainE()) }

// options is the parsed flag set, passed as one value so call sites cannot
// transpose the many same-typed flags.
type options struct {
	which      string
	quick      bool
	seeds      int
	scale      float64
	parallel   int
	progress   bool
	jsonOut    string
	perfOut    string
	scaleOut   string
	netOut     string
	procs      int
	phases     bool
	compare    string
	nsThresh   float64
	shards     int
	cpuProfile string
	memProfile string
}

func parseFlags() options {
	var o options
	flag.StringVar(&o.which, "exp", "", "comma-separated experiment ids (default: all)")
	flag.BoolVar(&o.quick, "quick", false, "reduced scale for a fast pass")
	flag.IntVar(&o.seeds, "seeds", 0, "override repetitions per cell")
	flag.Float64Var(&o.scale, "scale", 0, "override size factor in (0,1]")
	flag.IntVar(&o.parallel, "parallel", 0, "worker count (0: GOMAXPROCS)")
	flag.BoolVar(&o.progress, "progress", false, "report per-trial progress on stderr")
	flag.StringVar(&o.jsonOut, "json", "", "also write tables as JSON to this file (\"-\" for stdout)")
	flag.StringVar(&o.perfOut, "perf", "", "run the perf suite instead of the tables and write JSON here (\"-\" for stdout)")
	flag.StringVar(&o.scaleOut, "scaling", "", "run the shards×GOMAXPROCS scaling suite instead of the tables and write JSON here (\"-\" for stdout)")
	flag.StringVar(&o.netOut, "netbench", "", "run the loopback distributed-engine suite instead of the tables and write JSON here (\"-\" for stdout)")
	flag.IntVar(&o.procs, "procs", 8, "with -scaling: GOMAXPROCS forced for the suite (the recorded axis)")
	flag.BoolVar(&o.phases, "phases", false, "with -scaling: record the sharded engine's per-phase time breakdown in the report")
	flag.StringVar(&o.compare, "compare", "", "with -perf or -scaling: diff the fresh suite against this recorded baseline (e.g. BENCH_wire.json, BENCH_scale.json) and exit non-zero on regression")
	flag.Float64Var(&o.nsThresh, "threshold", 1.25, "with -compare: allowed ns/op growth factor before the gate fails")
	flag.IntVar(&o.shards, "shards", 4, "with -perf: state shards for the sharded scaling entries (flood/grid-*/sharded-N)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the whole run (tables or -perf) to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()
	return o
}

// mainE is main behind an os.Exit-free frame so the CPU-profile defer runs
// on every exit path, including gate failures.
func mainE() int {
	o := parseFlags()

	// Profiling wraps the run so every exit path — including gate failures —
	// still flushes the profiles; perf PRs attach them as evidence instead
	// of guessing at hot spots.
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdstbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mdstbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mdstbench:", err)
			}
		}()
	}
	err := run(o)
	if o.memProfile != "" {
		if merr := writeHeapProfile(o.memProfile); merr != nil {
			if err == nil {
				err = merr
			} else {
				// The run error wins the exit path; still surface the
				// profile failure instead of silently dropping it.
				fmt.Fprintln(os.Stderr, "mdstbench:", merr)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdstbench:", err)
		return 1
	}
	return 0
}

func run(o options) error {
	if o.compare != "" && o.perfOut == "" && o.scaleOut == "" && o.netOut == "" {
		return fmt.Errorf("-compare requires -perf, -scaling or -netbench")
	}
	suites := 0
	for _, s := range []string{o.perfOut, o.scaleOut, o.netOut} {
		if s != "" {
			suites++
		}
	}
	if suites > 1 {
		return fmt.Errorf("-perf, -scaling and -netbench are separate suites; run them separately")
	}
	if o.perfOut == "" && o.shards != 4 {
		return fmt.Errorf("-shards configures the -perf suite's sharded entries")
	}
	if o.scaleOut == "" && o.procs != 8 {
		return fmt.Errorf("-procs configures the -scaling suite's GOMAXPROCS axis")
	}
	if o.scaleOut == "" && o.phases {
		return fmt.Errorf("-phases records the -scaling suite's phase breakdown")
	}
	if o.netOut != "" {
		if o.which != "" || o.quick || o.seeds > 0 || o.scale > 0 || o.jsonOut != "" || o.progress || o.parallel != 0 || o.phases {
			return fmt.Errorf("-netbench runs a fixed benchmark suite; it is incompatible with -exp, -quick, -seeds, -scale, -parallel, -json, -progress and -phases")
		}
		fresh, err := runNetbench(o.netOut)
		if err != nil {
			return err
		}
		if o.compare != "" {
			baseline, err := loadPerf(o.compare)
			if err != nil {
				return err
			}
			if comparePerf(baseline, fresh, o.nsThresh) {
				return fmt.Errorf("performance regressed against %s", o.compare)
			}
			fmt.Fprintf(os.Stderr, "mdstbench: no regression against %s\n", o.compare)
		}
		return nil
	}
	if o.scaleOut != "" {
		if o.which != "" || o.quick || o.seeds > 0 || o.scale > 0 || o.jsonOut != "" || o.progress || o.parallel != 0 {
			return fmt.Errorf("-scaling runs a fixed benchmark suite; it is incompatible with -exp, -quick, -seeds, -scale, -parallel, -json and -progress")
		}
		if o.procs < 1 {
			return fmt.Errorf("-procs must be at least 1")
		}
		fresh, err := runScale(o.scaleOut, o.procs, o.phases)
		if err != nil {
			return err
		}
		if o.compare != "" {
			baseline, err := loadPerf(o.compare)
			if err != nil {
				return err
			}
			if comparePerf(baseline, fresh, o.nsThresh) {
				return fmt.Errorf("performance regressed against %s", o.compare)
			}
			fmt.Fprintf(os.Stderr, "mdstbench: no regression against %s\n", o.compare)
		}
		return nil
	}
	if o.perfOut != "" {
		// The perf suite runs fixed workloads; only -parallel and -shards
		// feed into it.
		if o.which != "" || o.quick || o.seeds > 0 || o.scale > 0 || o.jsonOut != "" || o.progress {
			return fmt.Errorf("-perf runs a fixed benchmark suite; it is incompatible with -exp, -quick, -seeds, -scale, -json and -progress")
		}
		if o.shards < 2 {
			return fmt.Errorf("-shards must be at least 2 for the sharded perf entries")
		}
		fresh, err := runPerf(o.perfOut, o.parallel, o.shards)
		if err != nil {
			return err
		}
		if o.compare != "" {
			baseline, err := loadPerf(o.compare)
			if err != nil {
				return err
			}
			if comparePerf(baseline, fresh, o.nsThresh) {
				return fmt.Errorf("performance regressed against %s", o.compare)
			}
			fmt.Fprintf(os.Stderr, "mdstbench: no regression against %s\n", o.compare)
		}
		return nil
	}

	cfg := exp.Default()
	if o.quick {
		cfg = exp.Quick()
	}
	if o.seeds > 0 {
		cfg.Seeds = o.seeds
	}
	if o.scale > 0 {
		cfg.Scale = o.scale
	}

	var ids []string
	if o.which != "" {
		for _, id := range strings.Split(o.which, ",") {
			id = strings.TrimSpace(id)
			if _, ok := exp.All()[id]; !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(exp.IDs(), ", "))
			}
			ids = append(ids, id)
		}
	}

	runner := &exp.Runner{Config: cfg, Parallel: o.parallel}
	if o.progress {
		runner.Progress = func(ev exp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "mdstbench: %-4s %3d/%3d trials (%v)\n",
				ev.Experiment, ev.Done, ev.Total, ev.Elapsed.Round(time.Millisecond))
		}
	}
	start := time.Now()
	tables, err := runner.Run(ids)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		tbl.Fprint(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "mdstbench: %d tables on %d workers in %v\n", len(tables), runner.Workers(), time.Since(start).Round(time.Millisecond))

	if o.jsonOut != "" {
		return writeJSON(o.jsonOut, cfg, tables)
	}
	return nil
}

// writeHeapProfile forces a GC so the heap profile reflects live retention,
// then writes it.
func writeHeapProfile(path string) error {
	return writeTo(path, func(w io.Writer) error {
		runtime.GC()
		return pprof.WriteHeapProfile(w)
	})
}

func writeJSON(path string, cfg exp.Config, tables []*exp.Table) error {
	return writeTo(path, exp.NewResultSet(cfg, tables).WriteJSON)
}

// writeTo streams write to the named file ("-" for stdout), propagating
// close errors so a failed flush cannot pass for success.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
