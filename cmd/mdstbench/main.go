// Command mdstbench regenerates the evaluation tables of EXPERIMENTS.md:
// one table per experiment id defined in DESIGN.md §4. Trials are fanned
// across a worker pool; for a fixed -seeds/-scale the tables are
// bit-identical at any -parallel value.
//
// Usage:
//
//	mdstbench                   # run every experiment on GOMAXPROCS workers
//	mdstbench -exp E3,E4        # run selected experiments
//	mdstbench -quick            # reduced sizes and seeds (seconds, not minutes)
//	mdstbench -seeds 10         # more repetitions per cell
//	mdstbench -parallel 1       # sequential execution
//	mdstbench -progress         # live per-trial progress on stderr
//	mdstbench -json out.json    # machine-readable tables ("-" for stdout)
//	mdstbench -perf bench.json  # engine/harness micro-benchmarks instead of tables
//	mdstbench -perf bench.json -compare BENCH_baseline.json
//	                            # ... and fail (exit 1) on regression vs the recorded trajectory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mdegst/internal/exp"
)

func main() {
	var (
		which    = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		seeds    = flag.Int("seeds", 0, "override repetitions per cell")
		scale    = flag.Float64("scale", 0, "override size factor in (0,1]")
		parallel = flag.Int("parallel", 0, "worker count (0: GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-trial progress on stderr")
		jsonOut  = flag.String("json", "", "also write tables as JSON to this file (\"-\" for stdout)")
		perfOut  = flag.String("perf", "", "run the perf suite instead of the tables and write JSON here (\"-\" for stdout)")
		compare  = flag.String("compare", "", "with -perf: diff the fresh suite against this recorded baseline (e.g. BENCH_baseline.json) and exit non-zero on regression")
		nsThresh = flag.Float64("threshold", 1.25, "with -compare: allowed ns/op growth factor before the gate fails")
	)
	flag.Parse()

	if *compare != "" && *perfOut == "" {
		fatal(fmt.Errorf("-compare requires -perf"))
	}
	if *perfOut != "" {
		// The perf suite runs fixed workloads; only -parallel feeds into it.
		if *which != "" || *quick || *seeds > 0 || *scale > 0 || *jsonOut != "" || *progress {
			fatal(fmt.Errorf("-perf runs a fixed benchmark suite; it is incompatible with -exp, -quick, -seeds, -scale, -json and -progress"))
		}
		fresh, err := runPerf(*perfOut, *parallel)
		if err != nil {
			fatal(err)
		}
		if *compare != "" {
			baseline, err := loadPerf(*compare)
			if err != nil {
				fatal(err)
			}
			if comparePerf(baseline, fresh, *nsThresh) {
				fatal(fmt.Errorf("performance regressed against %s", *compare))
			}
			fmt.Fprintf(os.Stderr, "mdstbench: no regression against %s\n", *compare)
		}
		return
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}

	var ids []string
	if *which != "" {
		for _, id := range strings.Split(*which, ",") {
			id = strings.TrimSpace(id)
			if _, ok := exp.All()[id]; !ok {
				fmt.Fprintf(os.Stderr, "mdstbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(exp.IDs(), ", "))
				os.Exit(1)
			}
			ids = append(ids, id)
		}
	}

	runner := &exp.Runner{Config: cfg, Parallel: *parallel}
	if *progress {
		runner.Progress = func(ev exp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "mdstbench: %-4s %3d/%3d trials (%v)\n",
				ev.Experiment, ev.Done, ev.Total, ev.Elapsed.Round(time.Millisecond))
		}
	}
	start := time.Now()
	tables, err := runner.Run(ids)
	if err != nil {
		fatal(err)
	}
	for _, tbl := range tables {
		tbl.Fprint(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "mdstbench: %d tables on %d workers in %v\n", len(tables), runner.Workers(), time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cfg, tables); err != nil {
			fatal(err)
		}
	}
}

func writeJSON(path string, cfg exp.Config, tables []*exp.Table) error {
	return writeTo(path, exp.NewResultSet(cfg, tables).WriteJSON)
}

// writeTo streams write to the named file ("-" for stdout), propagating
// close errors so a failed flush cannot pass for success.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdstbench:", err)
	os.Exit(1)
}
