// Command mdstbench regenerates the evaluation tables of EXPERIMENTS.md:
// one table per experiment id defined in DESIGN.md §4.
//
// Usage:
//
//	mdstbench                 # run every experiment at full scale
//	mdstbench -exp E3,E4      # run selected experiments
//	mdstbench -quick          # reduced sizes and seeds (seconds, not minutes)
//	mdstbench -seeds 10       # more repetitions per cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mdegst/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick = flag.Bool("quick", false, "reduced scale for a fast pass")
		seeds = flag.Int("seeds", 0, "override repetitions per cell")
		scale = flag.Float64("scale", 0, "override size factor in (0,1]")
	)
	flag.Parse()

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}

	ids := exp.IDs()
	if *which != "" {
		ids = nil
		for _, id := range strings.Split(*which, ",") {
			id = strings.TrimSpace(id)
			if _, ok := exp.All()[id]; !ok {
				fmt.Fprintf(os.Stderr, "mdstbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(exp.IDs(), ", "))
				os.Exit(1)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tbl := exp.All()[id](cfg)
		tbl.Fprint(os.Stdout)
		fmt.Printf("   (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
