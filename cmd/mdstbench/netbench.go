package main

import (
	"encoding/json"
	"fmt"
	"io"
	gonet "net"
	"os"
	"runtime"
	"sync"
	"time"

	"mdegst/internal/graph"
	mdnet "mdegst/internal/net"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/workload"
)

// The loopback networked suite behind `mdstbench -netbench out.json`: the
// distributed round engine's round-loop throughput and allocation volume,
// recorded as BENCH_net.json. Where -scaling measures the in-process
// sharded plane, this suite measures the plane ROADMAP item 1 built: K
// mdstd-shaped processes — one goroutine each, real TCP over 127.0.0.1 —
// flooding gnm-4096 and grid-100k at 2 and 4 processes. grid-100k is the
// round-dominated cell (hundreds of barriers of small frames, the
// always-on daemon's steady state); gnm-4096 is the batch-dominated one
// (few rounds, large frames).
//
// Each cell establishes its mesh once and reuses the engines across every
// measured iteration — the steady state being measured is "run the
// protocol again over a live mesh", exactly like the -scaling suite reuses
// its arenas — with one untimed warm-up run so slab growth does not smear
// into the numbers. Process 0's engine is armed with NetStats over the
// measured iterations; the per-round wire and allocation costs land in the
// report's derived map and the raw counters in its "net" map (the artifact
// CI uploads).
//
// Allocation counts are whole-process (all K engine goroutines plus the
// transports' readers), which is the point: the zero-alloc steady-state
// contract covers the plane end to end, not one goroutine of it.

const (
	// netMinIters / netMinWall set the per-cell measurement floor — lower
	// than the -scaling floors because a grid-100k cell crosses several
	// hundred real TCP barriers per iteration.
	netMinIters = 3
	netMinWall  = 300 * time.Millisecond
	// netMeshTimeout bounds one cell's mesh establishment.
	netMeshTimeout = 10 * time.Second
)

// netProcCounts is the process axis of the suite.
var netProcCounts = []int{2, 4}

func netWorkloads() []workload.Workload {
	return []workload.Workload{
		{Name: "gnm-4096", Gen: workload.Gnm4096},
		{Name: "grid-100k", Gen: workload.Grid100k},
	}
}

// netCluster is one live loopback mesh: K transports and engines reused
// across a cell's iterations.
type netCluster struct {
	k      int
	owner  []int32
	trs    []*mdnet.Transport
	engs   []*mdnet.DistEngine
	fs     []sim.Factory // per-process slab flood factories, reused across runs
	rounds int64         // flood rounds of the workload (from the last run's report)
}

func newNetCluster(c *graph.CSR, k int) (*netCluster, error) {
	part, err := graph.PartitionNamed(c, "contiguous", k)
	if err != nil {
		return nil, err
	}
	cl := &netCluster{k: k, owner: part.Owners()}
	root := c.Source().Nodes()[0]
	cl.fs = make([]sim.Factory, k)
	for i := range cl.fs {
		// One slab factory per process: each serves that process's
		// sequential runs with zero per-node allocations; the processes
		// run concurrently, so they must not share one arena.
		cl.fs[i] = spanning.NewFloodFactorySnap(c, root)
	}
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := mdnet.Listen("127.0.0.1:0")
		if err != nil {
			cl.close()
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := mdnet.Fingerprint{Procs: k, N: c.N(), HalfEdges: c.HalfEdges()}
	cl.trs = make([]*mdnet.Transport, k)
	cl.engs = make([]*mdnet.DistEngine, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := mdnet.NewTransport(lns[i], i, addrs, fp)
			if err := tr.Establish(netMeshTimeout); err != nil {
				errs[i] = fmt.Errorf("establish process %d: %w", i, err)
				tr.Close()
				return
			}
			cl.trs[i] = tr
			cl.engs[i] = &mdnet.DistEngine{T: tr, Owner: cl.owner}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			cl.close()
			return nil, err
		}
	}
	return cl, nil
}

// run executes one distributed flood build across the live mesh, with the
// slab flood factory on the dense extraction path — the same choices as
// the -scaling suite: the suite measures the engine, so it must not spend
// its wall time growing per-node children lists or materialising an
// identity-keyed result map it immediately drops.
func (cl *netCluster) run(c *graph.CSR) error {
	errs := make([]error, cl.k)
	var wg sync.WaitGroup
	for i := 0; i < cl.k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, rep, err := spanning.BuildCompiledDense(cl.engs[i], c, cl.fs[i])
			if err != nil {
				errs[i] = fmt.Errorf("process %d: %w", i, err)
				return
			}
			if i == 0 {
				cl.rounds = int64(rep.VirtualTime)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (cl *netCluster) close() {
	for _, tr := range cl.trs {
		if tr != nil {
			tr.Close()
		}
	}
}

func runNetbench(path string) (*perfReport, error) {
	rep := &perfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]string{},
		Net:        map[string]*mdnet.NetStats{},
	}
	for _, w := range netWorkloads() {
		c := w.Gen().Compile()
		for _, k := range netProcCounts {
			fmt.Fprintf(os.Stderr, "mdstbench: netbench %s procs=%d...\n", w.Name, k)
			cl, err := newNetCluster(c, k)
			if err != nil {
				return nil, err
			}
			// Untimed warm-up grows every slab once; stats armed after it so
			// the recorded counters cover exactly the measured iterations.
			if err := cl.run(c); err != nil {
				cl.close()
				return nil, err
			}
			st := &mdnet.NetStats{}
			cl.engs[0].Stats = st
			iters, medianNs, allocsPerOp, bytesPerOp, err := benchCell(func() error {
				return cl.run(c)
			})
			cl.close()
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("dist-flood/%s/procs=%d", w.Name, k)
			rep.Workloads = append(rep.Workloads, perfEntry{
				Name:        name,
				Iterations:  iters,
				NsPerOp:     medianNs,
				AllocsPerOp: allocsPerOp,
				BytesPerOp:  bytesPerOp,
				Procs:       k,
			})
			rep.Net[name] = st
			rounds := cl.rounds
			if rounds > 0 {
				key := fmt.Sprintf("%s_p%d", w.Name, k)
				rep.Derived["net_rounds_"+key] = fmt.Sprintf("%d", rounds)
				rep.Derived["net_rounds_per_sec_"+key] = fmt.Sprintf("%.0f", float64(rounds)/(float64(medianNs)/1e9))
				rep.Derived["net_alloc_bytes_per_round_"+key] = fmt.Sprintf("%d", bytesPerOp/rounds)
				rep.Derived["net_allocs_per_round_"+key] = fmt.Sprintf("%d", allocsPerOp/rounds)
				if st.Rounds > 0 {
					rep.Derived["net_wire_bytes_per_round_"+key] = fmt.Sprintf("%d", st.BytesSent/st.Rounds)
					rep.Derived["net_header_bytes_per_round_"+key] = fmt.Sprintf("%d", st.HeaderBytes/st.Rounds)
				}
			}
		}
	}
	if err := writeTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return nil, err
	}
	for k, v := range rep.Derived {
		fmt.Fprintf(os.Stderr, "mdstbench: %-38s %s\n", k, v)
	}
	return rep, nil
}
