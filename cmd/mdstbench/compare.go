package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The benchmark regression gate behind `mdstbench -perf out.json -compare
// baseline.json`: the fresh perf suite is diffed against a recorded
// trajectory file (BENCH_baseline.json, BENCH_csr.json, ...) workload by
// workload, and the process exits non-zero when any shared workload
// regressed past the thresholds. Time comparisons get a generous multiplier
// because wall time is machine- and load-dependent; allocation counts are
// deterministic for a fixed workload, so their threshold is tight.

// allocThreshold flags an allocation regression: new allocs/op must stay
// below old * allocThreshold.
const allocThreshold = 1.10

// allocSlackAbs exempts tiny absolute drifts from the ratio gate. The
// dense-path entries run at a few hundred allocs/op, where a single GC
// cycle evicting the engines' sync.Pools mid-benchmark shifts the count
// by tens of allocs — 10%+ relative, pure noise in absolute terms. A real
// regression on these workloads (reintroducing a per-node map, losing a
// slab) costs thousands of allocs and still trips the gate.
const allocSlackAbs = 64

type comparison struct {
	name          string
	oldNs, newNs  int64
	oldAl, newAl  int64
	nsRatio       float64
	allocRatio    float64
	nsRegressed   bool
	allocRegessed bool
}

func loadPerf(path string) (*perfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// comparePerf diffs fresh against the recorded baseline. nsThreshold is the
// allowed ns/op growth factor (e.g. 1.25 = 25% slower fails the gate).
// Workloads present in only one report (renamed suites, different worker
// counts) are skipped.
func comparePerf(baseline *perfReport, fresh *perfReport, nsThreshold float64) (regressed bool) {
	old := make(map[string]perfEntry, len(baseline.Workloads))
	for _, w := range baseline.Workloads {
		old[w.Name] = w
	}
	// Wall time across different parallelism widths is not a regression
	// signal: a baseline recorded at GOMAXPROCS=8 compared on a 2-core
	// runner would fail every sharded entry on hardware alone. On mismatch,
	// warn loudly and downgrade ns/op regressions to warnings; allocation
	// counts are deterministic regardless of width and stay a hard gate.
	widthMismatch := baseline.GOMAXPROCS != fresh.GOMAXPROCS
	if widthMismatch {
		fmt.Fprintf(os.Stderr,
			"mdstbench: WARNING: baseline recorded at GOMAXPROCS=%d, this run at GOMAXPROCS=%d — ns/op is not comparable across widths; time regressions are reported as warnings only, allocs/op still gates\n",
			baseline.GOMAXPROCS, fresh.GOMAXPROCS)
	}
	fmt.Fprintf(os.Stderr, "mdstbench: comparing against baseline (ns/op threshold %.2fx, allocs/op threshold %.2fx)\n",
		nsThreshold, allocThreshold)
	seen := make(map[string]bool)
	for _, w := range fresh.Workloads {
		o, ok := old[w.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mdstbench: %-44s no baseline entry — skipped\n", w.Name)
			continue
		}
		if seen[w.Name] {
			continue
		}
		seen[w.Name] = true
		c := comparison{
			name:  w.Name,
			oldNs: o.NsPerOp, newNs: w.NsPerOp,
			oldAl: o.AllocsPerOp, newAl: w.AllocsPerOp,
			nsRatio:    ratioF(w.NsPerOp, o.NsPerOp),
			allocRatio: ratioF(w.AllocsPerOp, o.AllocsPerOp),
		}
		c.nsRegressed = c.nsRatio > nsThreshold
		c.allocRegessed = c.allocRatio > allocThreshold && c.newAl-c.oldAl > allocSlackAbs
		status := "ok"
		switch {
		case c.allocRegessed, c.nsRegressed && !widthMismatch:
			status = "REGRESSED"
			regressed = true
		case c.nsRegressed:
			status = "SLOWER (warning only: GOMAXPROCS mismatch)"
		}
		fmt.Fprintf(os.Stderr, "mdstbench: %-44s ns/op %12d -> %12d (%.2fx)  allocs/op %8d -> %8d (%.2fx)  %s\n",
			c.name, c.oldNs, c.newNs, c.nsRatio, c.oldAl, c.newAl, c.allocRatio, status)
	}
	return regressed
}

// ratioF returns new/old, treating a zero or missing old value as 1x so a
// baseline without the measurement can never fail the gate.
func ratioF(newV, oldV int64) float64 {
	if oldV <= 0 {
		return 1
	}
	return float64(newV) / float64(oldV)
}
