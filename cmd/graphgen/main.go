// Command graphgen generates workload graphs in the module's edge-list
// format, or inspects an existing one.
//
// Usage:
//
//	graphgen -family gnp -n 100 -p 0.1 -seed 3 > net.edges
//	graphgen -family wheel -n 32 -out wheel.edges
//	graphgen -inspect net.edges
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mdegst"
	"mdegst/internal/graph"
)

func main() {
	var (
		family  = flag.String("family", "gnp", "gnp|gnm|ba|geo|tree|hamchords|ring|star|wheel|complete|grid|torus|hypercube|caterpillar|lollipop|bipartite")
		n       = flag.Int("n", 64, "nodes")
		m       = flag.Int("m", 0, "edges (gnm; default 3n)")
		p       = flag.Float64("p", 0.1, "edge probability (gnp)")
		k       = flag.Int("k", 2, "secondary parameter (ba attachment, chords, legs, clique, part size, cols)")
		radius  = flag.Float64("radius", 0.25, "connection radius (geo)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		inspect = flag.String("inspect", "", "print statistics of an edge-list file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectFile(*inspect); err != nil {
			fatal(err)
		}
		return
	}

	g, err := generate(*family, *n, *m, *p, *k, *radius, *seed)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fatal(err)
	}
}

func generate(family string, n, m int, p float64, k int, radius float64, seed int64) (*mdegst.Graph, error) {
	if m == 0 {
		m = 3 * n
	}
	switch family {
	case "gnp":
		return mdegst.Gnp(n, p, seed), nil
	case "gnm":
		return mdegst.Gnm(n, m, seed), nil
	case "ba":
		return mdegst.BarabasiAlbert(n, k, seed), nil
	case "geo":
		return mdegst.RandomGeometric(n, radius, seed), nil
	case "tree":
		return mdegst.RandomTree(n, seed), nil
	case "hamchords":
		return mdegst.HamiltonianPlusChords(n, k*n, seed), nil
	case "ring":
		return mdegst.Ring(n), nil
	case "star":
		return mdegst.StarGraph(n), nil
	case "wheel":
		return mdegst.Wheel(n), nil
	case "complete":
		return mdegst.Complete(n), nil
	case "grid":
		return mdegst.Grid(n, max(k, 2)), nil
	case "torus":
		return mdegst.Torus(n, max(k, 3)), nil
	case "hypercube":
		return mdegst.Hypercube(n), nil
	case "caterpillar":
		return mdegst.Caterpillar(n, k), nil
	case "lollipop":
		return mdegst.Lollipop(max(k, 3), n), nil
	case "bipartite":
		return mdegst.CompleteBipartite(n, max(k, 1)), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	c := g.Compile()
	fmt.Printf("nodes:      %d\n", c.N())
	fmt.Printf("edges:      %d\n", c.M())
	fmt.Printf("connected:  %v\n", g.IsConnected())
	fmt.Printf("max degree: %d\n", c.MaxDegree())
	fmt.Printf("min degree: %d\n", g.MinDegree())
	printDegreeTail(c)
	printPartitionStats(c)
	if g.IsConnected() {
		fmt.Printf("diameter:   %d\n", g.Diameter())
		fmt.Printf("Δ* lower bound: %d\n", mdegst.DegreeLowerBound(g))
	}
	return nil
}

// printPartitionStats reports, for each shipped partitioner at typical
// shard counts, the numbers that decide a `mdstrun -shards` run's fate on
// the sharded runtime: the cut fraction (share of messages crossing shards
// under uniform edge load), the boundary-node count (states whose sends can
// leave their shard — total and the worst shard's share), and the size
// imbalance (the straggler factor of a window-parallel round).
func printPartitionStats(c *mdegst.CompiledGraph) {
	if c.N() < 2 || c.M() == 0 {
		return
	}
	strategies := []struct {
		name string
		mk   func(*mdegst.CompiledGraph, int) *graph.Partition
	}{
		{"contiguous", graph.PartitionContiguous},
		{"bfs", graph.PartitionBFS},
		{"refined", graph.PartitionRefined},
	}
	for _, k := range []int{2, 4, 8} {
		if k > c.N() {
			break
		}
		for _, s := range strategies {
			p := s.mk(c, k)
			boundary := p.BoundaryNodes(c)
			total, max := 0, 0
			for _, b := range boundary {
				total += b
				if b > max {
					max = b
				}
			}
			fmt.Printf("partition k=%d %-10s cut %5.1f%% (%d of %d edges)  boundary %d nodes (max shard %d)  imbalance %.2f\n",
				k, s.name+":", 100*p.CutFraction(), p.CutEdges(), c.M(), total, max, p.Imbalance())
		}
	}
}

// printDegreeTail summarises the degree distribution — the interesting part
// of heavy-tailed (preferential-attachment) workloads: the mean, the top
// degrees, and how much of the edge mass the top 1% of nodes carries.
func printDegreeTail(c *mdegst.CompiledGraph) {
	n := c.N()
	if n == 0 {
		return
	}
	degs := make([]int, n)
	for i := range degs {
		degs[i] = c.Degree(int32(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := n / 100
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, d := range degs[:top] {
		sum += d
	}
	half := 2 * c.M()
	fmt.Printf("mean degree: %.2f\n", float64(half)/float64(n))
	show := top
	if show > 5 {
		show = 5
	}
	fmt.Printf("top degrees: %v\n", degs[:show])
	if half > 0 {
		fmt.Printf("top 1%% of nodes carry %.1f%% of edge endpoints\n", 100*float64(sum)/float64(half))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
