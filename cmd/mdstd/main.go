// Command mdstd hosts one process of a networked MDegST deployment: many
// protocol nodes per OS process, connected to its peer processes by the
// length-framed TCP transport of internal/net (DESIGN.md §9). Every
// process of a cluster runs the identical pipeline — flood spanning tree,
// then the improvement protocol — over unit-delay rounds separated by a
// barrier protocol that reuses the sharded engine's rank machinery, so a
// K-process run produces the tree, report and checkpoint files
// byte-identical to the in-process simulator.
//
// The cluster is described by a JSON topology config naming the peer
// addresses, the graph, the partition strategy assigning nodes to
// processes, and the protocol parameters. Every process must be started
// with the same config.
//
// Usage:
//
//	mdstd -config cluster.json -id 0            # run as process 0
//	mdstd -config cluster.json -launch          # spawn the whole cluster over loopback
//	mdstd -config cluster.json -launch -json -  # ... and print the mdstrun-compatible JSON
//	mdstd -config cluster.json -launch -phases  # ... with per-process wire/barrier counters on stderr
//
// Crash recovery (DESIGN.md §11): -checkpoint FILE -checkpoint-round R
// freezes the improvement phase at round barrier R (process 0 writes FILE,
// all processes stop after the commit is acknowledged); -resume FILE
// restarts the cluster from the file. -checkpoint-dir DIR -checkpoint-every
// K instead commits a recovery point every K rounds while the cluster keeps
// running, and -launch -restarts N turns the coordinator into a supervisor:
// when the cluster fails it is relaunched on fresh ports from the latest
// committed recovery point (or from scratch when none exists), up to N
// times, converging to results bitwise-identical to an uninterrupted run.
// SIGINT/SIGTERM stop a cluster gracefully: the round in flight finishes,
// a final checkpoint is committed when one is armed, and every process
// exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	gonet "net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mdegst"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/net"
	"mdegst/internal/sim"
)

// clusterConfig is the topology config file: one JSON document shared by
// every process of a deployment.
type clusterConfig struct {
	// Addrs lists the processes' listen addresses; process i binds
	// Addrs[i]. Length fixes the cluster size. -launch rewrites these with
	// fresh loopback ports.
	Addrs []string `json:"addrs"`
	// Graph names the generated workload (the same surface as mdstrun's
	// -graph family flags).
	Graph graphSpec `json:"graph"`
	// Partition assigns dense nodes to processes: "contiguous" (default)
	// or "bfs".
	Partition string `json:"partition,omitempty"`
	// Mode is the improvement variant: "single" (default), "multi" or
	// "hybrid".
	Mode string `json:"mode,omitempty"`
	// Target stops improvement at this maximum degree (0: full optimality).
	Target int `json:"target,omitempty"`
	// MaxMessages caps either phase (0: the engine default).
	MaxMessages int64 `json:"max_messages,omitempty"`
}

type graphSpec struct {
	Family string  `json:"family"`
	N      int     `json:"n"`
	M      int     `json:"m,omitempty"`
	P      float64 `json:"p,omitempty"`
	K      int     `json:"k,omitempty"`
	Seed   int64   `json:"seed"`
}

// runOptions carries the command line shared by the coordinator and the
// worker processes.
type runOptions struct {
	jsonOut   string
	ckptOut   string
	ckptRnd   int64
	ckptDir   string
	ckptEvery int64
	ckptKeep  int
	resume    string
	faults    string
	heartbeat time.Duration
	liveness  time.Duration
	timeout   time.Duration
	restarts  int
	phases    bool
}

func main() {
	var (
		cfgPath = flag.String("config", "", "topology config file (JSON; required)")
		id      = flag.Int("id", -1, "this process's id in the cluster (required unless -launch)")
		launch  = flag.Bool("launch", false, "coordinator mode: rewrite the config with fresh loopback ports, spawn every process, supervise the cluster")
		opts    runOptions
	)
	flag.StringVar(&opts.jsonOut, "json", "", "write the mdstrun-compatible JSON summary to this file (\"-\" for stdout; process 0 / launcher)")
	flag.StringVar(&opts.ckptOut, "checkpoint", "", "freeze the improvement phase at -checkpoint-round; process 0 writes the checkpoint file here")
	flag.Int64Var(&opts.ckptRnd, "checkpoint-round", 2, "round barrier the -checkpoint freeze happens at (0: right after Init)")
	flag.StringVar(&opts.ckptDir, "checkpoint-dir", "", "periodic mode: directory of committed recovery points (process 0 writes; the supervisor restarts from the latest)")
	flag.Int64Var(&opts.ckptEvery, "checkpoint-every", 0, "periodic mode: commit a recovery point every K improvement rounds (requires -checkpoint-dir)")
	flag.IntVar(&opts.ckptKeep, "checkpoint-keep", 3, "periodic mode: retain the newest K recovery points")
	flag.StringVar(&opts.resume, "resume", "", "resume the improvement phase from this checkpoint file (readable by every process)")
	flag.StringVar(&opts.faults, "faults", "", "deterministic fault injection plan (chaos testing; see internal/net.ParseFaultPlan)")
	flag.DurationVar(&opts.heartbeat, "heartbeat", 500*time.Millisecond, "peer liveness beacon interval (0 disables)")
	flag.DurationVar(&opts.liveness, "liveness", 10*time.Second, "declare a peer down after this long without evidence of life (0 disables)")
	flag.DurationVar(&opts.timeout, "timeout", 30*time.Second, "mesh establishment deadline")
	flag.IntVar(&opts.restarts, "restarts", 0, "supervisor mode: relaunch a failed cluster up to this many times from the latest recovery point")
	flag.BoolVar(&opts.phases, "phases", false, "print this process's wire and barrier counters (frames, bytes, flushes, barrier wait) to stderr at exit")
	flag.Parse()

	if *cfgPath == "" {
		fatal(fmt.Errorf("-config is required"))
	}
	cfg, err := readConfig(*cfgPath)
	if err != nil {
		fatal(err)
	}
	if opts.ckptOut != "" && opts.resume != "" {
		fatal(fmt.Errorf("-checkpoint and -resume are mutually exclusive"))
	}
	if opts.ckptOut != "" && opts.ckptDir != "" {
		fatal(fmt.Errorf("-checkpoint (freeze) and -checkpoint-dir (periodic) are mutually exclusive"))
	}
	if opts.ckptEvery > 0 && opts.ckptDir == "" {
		fatal(fmt.Errorf("-checkpoint-every requires -checkpoint-dir"))
	}
	if opts.ckptDir != "" && opts.ckptEvery <= 0 {
		fatal(fmt.Errorf("-checkpoint-dir requires -checkpoint-every"))
	}
	if _, err := net.ParseFaultPlan(opts.faults); err != nil {
		fatal(err)
	}

	if *launch {
		if err := superviseCluster(cfg, opts); err != nil {
			fatal(err)
		}
		return
	}
	if *id < 0 || *id >= len(cfg.Addrs) {
		fatal(fmt.Errorf("-id must be in [0, %d)", len(cfg.Addrs)))
	}
	if err := runProcess(cfg, *id, opts); err != nil {
		fatal(err)
	}
}

func readConfig(path string) (*clusterConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &clusterConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%s: config names no process addresses", path)
	}
	if cfg.Graph.Family == "" || cfg.Graph.N <= 0 {
		return nil, fmt.Errorf("%s: config needs graph.family and graph.n", path)
	}
	return cfg, nil
}

// compile builds and freezes the configured workload — deterministically,
// so every process of the cluster derives the identical snapshot and
// partition from the shared config.
func (cfg *clusterConfig) compile() (*mdegst.CompiledGraph, []int32, error) {
	g, _, err := mdegst.NamedGraph(cfg.Graph.Family, cfg.Graph.N, cfg.Graph.M, cfg.Graph.P, cfg.Graph.K, cfg.Graph.Seed)
	if err != nil {
		return nil, nil, err
	}
	c := mdegst.Compile(g)
	part, err := graph.PartitionNamed(c, cfg.Partition, len(cfg.Addrs))
	if err != nil {
		return nil, nil, err
	}
	return c, part.Owners(), nil
}

func (cfg *clusterConfig) mode() (mdst.Mode, error) {
	switch cfg.Mode {
	case "", "single":
		return mdst.Single, nil
	case "multi":
		return mdst.Multi, nil
	case "hybrid":
		return mdst.Hybrid, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", cfg.Mode)
	}
}

// runProcess is the daemon proper: establish the mesh, run the pipeline,
// and let process 0 report. SIGINT/SIGTERM latch a stop request that the
// cluster honours at the next round barrier, so the process exits 0 after
// a final checkpoint commit instead of dying mid-barrier.
func runProcess(cfg *clusterConfig, id int, opts runOptions) error {
	c, owner, err := cfg.compile()
	if err != nil {
		return err
	}
	mode, err := cfg.mode()
	if err != nil {
		return err
	}
	faults, err := net.ParseFaultPlan(opts.faults)
	if err != nil {
		return err
	}

	var stopFlag atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		for range sigc {
			stopFlag.Store(true)
		}
	}()

	p := net.Pipeline{Mode: mode, Target: cfg.Target, MaxMessages: cfg.MaxMessages,
		CheckpointRound: -1, Stop: stopFlag.Load}
	if opts.phases {
		p.Stats = &net.NetStats{}
	}
	var ckptFile *os.File
	if opts.ckptOut != "" {
		p.CheckpointRound = opts.ckptRnd
		if id == 0 {
			if ckptFile, err = os.Create(opts.ckptOut); err != nil {
				return err
			}
			p.CheckpointW = ckptFile
		}
	}
	if opts.ckptDir != "" {
		p.CheckpointEvery = opts.ckptEvery
		if id == 0 {
			if err := os.MkdirAll(opts.ckptDir, 0o755); err != nil {
				return err
			}
			p.CheckpointSink = &sim.CheckpointDir{Dir: opts.ckptDir, Keep: opts.ckptKeep}
		}
	}
	if opts.resume != "" {
		f, err := os.Open(opts.resume)
		if err != nil {
			return err
		}
		ck, err := sim.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		p.Resume = ck
	}

	ln, err := net.Listen(cfg.Addrs[id])
	if err != nil {
		return err
	}
	t := net.NewTransport(ln, id, cfg.Addrs, net.Fingerprint{Procs: len(cfg.Addrs), N: c.N(), HalfEdges: c.HalfEdges()})
	t.Heartbeat = opts.heartbeat
	t.Liveness = opts.liveness
	t.Faults = faults
	if err := t.Establish(opts.timeout); err != nil {
		return err
	}
	defer t.Close()

	res, err := net.RunPipeline(t, c, owner, p)
	if p.Stats != nil {
		fmt.Fprintf(os.Stderr, "mdstd: process %d %s\n", id, p.Stats)
	}
	if ckptFile != nil {
		if cerr := ckptFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if id != 0 {
		return nil
	}
	if res.Stopped {
		fmt.Println("cluster stopped gracefully at a round barrier (final checkpoint committed where armed)")
		return nil
	}
	if res.Checkpointed {
		fmt.Printf("improvement frozen at round barrier %d -> %s (resume with -resume %s)\n", opts.ckptRnd, opts.ckptOut, opts.ckptOut)
		return nil
	}
	return report(cfg, c, res, opts.jsonOut)
}

// report prints process 0's run summary and optionally the
// mdstrun-compatible JSON, assembled through the same facade helpers so
// equal runs yield equal bytes.
func report(cfg *clusterConfig, c *mdegst.CompiledGraph, res *net.PipelineResult, jsonOut string) error {
	r := res.Result
	total := sim.NewReport()
	total.Add(r.Report)
	if res.Setup != nil {
		total.Add(res.Setup)
	}
	full := &mdegst.Result{
		Initial:       res.Initial,
		Final:         r.Tree,
		InitialDegree: r.InitialDegree,
		FinalDegree:   r.FinalDegree,
		Rounds:        r.Rounds,
		Swaps:         r.Swaps,
		Setup:         res.Setup,
		Improvement:   r.Report,
		Total:         total,
	}
	g := c.Source()
	fmt.Printf("cluster:      %d processes, partition %s\n", len(cfg.Addrs), partitionName(cfg.Partition))
	fmt.Printf("graph:        %s n=%d m=%d maxdeg=%d\n", cfg.Graph.Family, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("initial tree: flood, degree k=%d\n", full.InitialDegree)
	fmt.Printf("final tree:   degree k*=%d (lower bound on Δ*: %d)\n", full.FinalDegree, mdegst.DegreeLowerBound(g))
	fmt.Printf("improvement:  %d rounds, %d exchanges, %d messages, causal depth %d\n",
		full.Rounds, full.Swaps, full.Improvement.Messages, full.Improvement.CausalDepth)
	fmt.Printf("total:        %d messages, %d words, max message %d words\n",
		full.Total.Messages, full.Total.Words, full.Total.MaxWords)
	if jsonOut == "" {
		return nil
	}
	sums := []mdegst.TrialSummary{mdegst.NewTrialSummary(cfg.Graph.Seed, g, full)}
	if jsonOut == "-" {
		return mdegst.WriteTrialSummaries(os.Stdout, sums)
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	if err := mdegst.WriteTrialSummaries(f, sums); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func partitionName(s string) string {
	if s == "" {
		return "contiguous"
	}
	return s
}

// superviseCluster is coordinator mode grown into a supervisor: launch the
// cluster, and when it fails relaunch it — fresh loopback ports, the
// latest committed recovery point as the resume source, injected faults
// dropped after the first attempt (a deterministic fault would otherwise
// re-fire forever) — up to the restart budget, with backoff between
// attempts. A cluster stopped by SIGINT/SIGTERM is not restarted.
func superviseCluster(cfg *clusterConfig, opts runOptions) error {
	if opts.ckptDir != "" {
		if err := os.MkdirAll(opts.ckptDir, 0o755); err != nil {
			return err
		}
	}
	var stopRequested atomic.Bool
	backoff := 200 * time.Millisecond
	for attempt := 0; ; attempt++ {
		attemptOpts := opts
		if attempt > 0 {
			// Injected faults fire on the first attempt only: the plan is
			// deterministic, so a recovered run replaying the same barriers
			// would just crash the same way again.
			attemptOpts.faults = ""
			attemptOpts.resume = ""
			if opts.ckptDir != "" {
				d := &sim.CheckpointDir{Dir: opts.ckptDir}
				if path, round, ok, err := d.Latest(); err != nil {
					return fmt.Errorf("scanning %s for recovery points: %w", opts.ckptDir, err)
				} else if ok {
					fmt.Fprintf(os.Stderr, "mdstd: restarting from the checkpoint committed at round %d\n", round)
					attemptOpts.resume = path
				} else {
					fmt.Fprintln(os.Stderr, "mdstd: no committed checkpoint; restarting from scratch")
				}
			}
		}
		err := launchOnce(cfg, attemptOpts, &stopRequested)
		if err == nil {
			return nil
		}
		if stopRequested.Load() || attempt >= opts.restarts {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdstd: cluster attempt %d failed: %v\nmdstd: restarting in %v (%d of %d restarts used)\n",
			attempt+1, err, backoff, attempt+1, opts.restarts)
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// launchOnce runs the cluster once: pick fresh loopback ports, write a
// concrete config, spawn one child per process, forward stop signals, and
// wait for everyone. Child 0 inherits stdout (and the -json / checkpoint
// flags); every child's stderr is teed into a bounded tail so a failure
// surfaces its context instead of an opaque exit code. All children are
// reaped on every path.
func launchOnce(cfg *clusterConfig, opts runOptions, stopRequested *atomic.Bool) error {
	k := len(cfg.Addrs)
	addrs, err := freeLoopbackAddrs(k)
	if err != nil {
		return err
	}
	launched := *cfg
	launched.Addrs = addrs
	dir, err := os.MkdirTemp("", "mdstd-launch-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	concrete := dir + "/cluster.json"
	data, err := json.MarshalIndent(&launched, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(concrete, data, 0o644); err != nil {
		return err
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, k)
	tails := make([]*tailWriter, k)
	for i := 0; i < k; i++ {
		args := []string{"-config", concrete, "-id", fmt.Sprint(i),
			"-timeout", opts.timeout.String(),
			"-heartbeat", opts.heartbeat.String(),
			"-liveness", opts.liveness.String()}
		if opts.resume != "" {
			args = append(args, "-resume", opts.resume)
		}
		if opts.ckptOut != "" {
			args = append(args, "-checkpoint", opts.ckptOut, "-checkpoint-round", fmt.Sprint(opts.ckptRnd))
		}
		if opts.ckptDir != "" {
			args = append(args, "-checkpoint-dir", opts.ckptDir,
				"-checkpoint-every", fmt.Sprint(opts.ckptEvery),
				"-checkpoint-keep", fmt.Sprint(opts.ckptKeep))
		}
		if opts.faults != "" {
			args = append(args, "-faults", opts.faults)
		}
		if opts.phases {
			args = append(args, "-phases")
		}
		if i == 0 && opts.jsonOut != "" {
			args = append(args, "-json", opts.jsonOut)
		}
		cmd := exec.Command(exe, args...)
		tails[i] = &tailWriter{max: 4096}
		cmd.Stderr = io.MultiWriter(os.Stderr, tails[i])
		if i == 0 {
			cmd.Stdout = os.Stdout
		}
		if err := cmd.Start(); err != nil {
			reapAll(cmds[:i])
			return fmt.Errorf("spawning process %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	// Forward stop signals so `kill <supervisor>` stops the whole cluster
	// gracefully; the supervisor itself survives to collect the exits.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		for s := range sigc {
			stopRequested.Store(true)
			for _, cmd := range cmds {
				if cmd != nil && cmd.Process != nil {
					cmd.Process.Signal(s)
				}
			}
		}
	}()

	var firstErr error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("process %d: %w%s", i, err, tails[i].context())
		}
	}
	if firstErr != nil {
		// One failure dooms the barrier protocol cluster-wide: reap every
		// child still running rather than letting survivors hang out their
		// liveness timers.
		reapAll(cmds)
	}
	return firstErr
}

// freeLoopbackAddrs reserves k distinct loopback ports by binding and
// immediately releasing them — the usual pre-bind trick; the window
// between release and the child's bind is negligible on a loopback
// deployment.
func freeLoopbackAddrs(k int) ([]string, error) {
	addrs := make([]string, k)
	lns := make([]gonet.Listener, 0, k)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < k; i++ {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// reapAll kills and waits for every started child, so no failure path
// leaks a zombie or a process still bound to the cluster's ports.
func reapAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Wait()
		}
	}
}

// tailWriter keeps the last max bytes written — the child stderr context
// attached to a cluster failure.
type tailWriter struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func (w *tailWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	if len(w.buf) > w.max {
		w.buf = append(w.buf[:0], w.buf[len(w.buf)-w.max:]...)
	}
	return len(p), nil
}

func (w *tailWriter) context() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 {
		return ""
	}
	return "\nstderr tail:\n" + string(w.buf)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdstd:", err)
	os.Exit(1)
}
