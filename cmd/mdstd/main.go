// Command mdstd hosts one process of a networked MDegST deployment: many
// protocol nodes per OS process, connected to its peer processes by the
// length-framed TCP transport of internal/net (DESIGN.md §9). Every
// process of a cluster runs the identical pipeline — flood spanning tree,
// then the improvement protocol — over unit-delay rounds separated by a
// barrier protocol that reuses the sharded engine's rank machinery, so a
// K-process run produces the tree, report and checkpoint files
// byte-identical to the in-process simulator.
//
// The cluster is described by a JSON topology config naming the peer
// addresses, the graph, the partition strategy assigning nodes to
// processes, and the protocol parameters. Every process must be started
// with the same config.
//
// Usage:
//
//	mdstd -config cluster.json -id 0            # run as process 0
//	mdstd -config cluster.json -launch          # spawn the whole cluster over loopback
//	mdstd -config cluster.json -launch -json -  # ... and print the mdstrun-compatible JSON
//
// Crash recovery: -checkpoint FILE -checkpoint-round R freezes the
// improvement phase at round barrier R (process 0 writes FILE, all
// processes stop after the commit is acknowledged); -resume FILE restarts
// the cluster from the file — every process reads it — and finishes the
// run with results bitwise-identical to an uninterrupted one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	gonet "net"
	"os"
	"os/exec"
	"time"

	"mdegst"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/net"
	"mdegst/internal/sim"
)

// clusterConfig is the topology config file: one JSON document shared by
// every process of a deployment.
type clusterConfig struct {
	// Addrs lists the processes' listen addresses; process i binds
	// Addrs[i]. Length fixes the cluster size. -launch rewrites these with
	// fresh loopback ports.
	Addrs []string `json:"addrs"`
	// Graph names the generated workload (the same surface as mdstrun's
	// -graph family flags).
	Graph graphSpec `json:"graph"`
	// Partition assigns dense nodes to processes: "contiguous" (default)
	// or "bfs".
	Partition string `json:"partition,omitempty"`
	// Mode is the improvement variant: "single" (default), "multi" or
	// "hybrid".
	Mode string `json:"mode,omitempty"`
	// Target stops improvement at this maximum degree (0: full optimality).
	Target int `json:"target,omitempty"`
	// MaxMessages caps either phase (0: the engine default).
	MaxMessages int64 `json:"max_messages,omitempty"`
}

type graphSpec struct {
	Family string  `json:"family"`
	N      int     `json:"n"`
	M      int     `json:"m,omitempty"`
	P      float64 `json:"p,omitempty"`
	K      int     `json:"k,omitempty"`
	Seed   int64   `json:"seed"`
}

func main() {
	var (
		cfgPath = flag.String("config", "", "topology config file (JSON; required)")
		id      = flag.Int("id", -1, "this process's id in the cluster (required unless -launch)")
		launch  = flag.Bool("launch", false, "coordinator mode: rewrite the config with fresh loopback ports, spawn every process, wait for all")
		jsonOut = flag.String("json", "", "write the mdstrun-compatible JSON summary to this file (\"-\" for stdout; process 0 / launcher)")
		ckptOut = flag.String("checkpoint", "", "freeze the improvement phase at -checkpoint-round; process 0 writes the checkpoint file here")
		ckptRnd = flag.Int64("checkpoint-round", 2, "round barrier the -checkpoint freeze happens at (0: right after Init)")
		resume  = flag.String("resume", "", "resume the improvement phase from this checkpoint file (readable by every process)")
		timeout = flag.Duration("timeout", 30*time.Second, "mesh establishment deadline")
	)
	flag.Parse()

	if *cfgPath == "" {
		fatal(fmt.Errorf("-config is required"))
	}
	cfg, err := readConfig(*cfgPath)
	if err != nil {
		fatal(err)
	}
	if *ckptOut != "" && *resume != "" {
		fatal(fmt.Errorf("-checkpoint and -resume are mutually exclusive"))
	}

	if *launch {
		if err := launchCluster(cfg, *jsonOut, *ckptOut, *ckptRnd, *resume, *timeout); err != nil {
			fatal(err)
		}
		return
	}
	if *id < 0 || *id >= len(cfg.Addrs) {
		fatal(fmt.Errorf("-id must be in [0, %d)", len(cfg.Addrs)))
	}
	if err := runProcess(cfg, *id, *jsonOut, *ckptOut, *ckptRnd, *resume, *timeout); err != nil {
		fatal(err)
	}
}

func readConfig(path string) (*clusterConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &clusterConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%s: config names no process addresses", path)
	}
	if cfg.Graph.Family == "" || cfg.Graph.N <= 0 {
		return nil, fmt.Errorf("%s: config needs graph.family and graph.n", path)
	}
	return cfg, nil
}

// compile builds and freezes the configured workload — deterministically,
// so every process of the cluster derives the identical snapshot and
// partition from the shared config.
func (cfg *clusterConfig) compile() (*mdegst.CompiledGraph, []int32, error) {
	g, _, err := mdegst.NamedGraph(cfg.Graph.Family, cfg.Graph.N, cfg.Graph.M, cfg.Graph.P, cfg.Graph.K, cfg.Graph.Seed)
	if err != nil {
		return nil, nil, err
	}
	c := mdegst.Compile(g)
	part, err := graph.PartitionNamed(c, cfg.Partition, len(cfg.Addrs))
	if err != nil {
		return nil, nil, err
	}
	return c, part.Owners(), nil
}

func (cfg *clusterConfig) mode() (mdst.Mode, error) {
	switch cfg.Mode {
	case "", "single":
		return mdst.Single, nil
	case "multi":
		return mdst.Multi, nil
	case "hybrid":
		return mdst.Hybrid, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", cfg.Mode)
	}
}

// runProcess is the daemon proper: establish the mesh, run the pipeline,
// and let process 0 report.
func runProcess(cfg *clusterConfig, id int, jsonOut, ckptOut string, ckptRnd int64, resume string, timeout time.Duration) error {
	c, owner, err := cfg.compile()
	if err != nil {
		return err
	}
	mode, err := cfg.mode()
	if err != nil {
		return err
	}
	p := net.Pipeline{Mode: mode, Target: cfg.Target, MaxMessages: cfg.MaxMessages, CheckpointRound: -1}
	var ckptFile *os.File
	if ckptOut != "" {
		p.CheckpointRound = ckptRnd
		if id == 0 {
			if ckptFile, err = os.Create(ckptOut); err != nil {
				return err
			}
			p.CheckpointW = ckptFile
		}
	}
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			return err
		}
		ck, err := sim.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		p.Resume = ck
	}

	ln, err := net.Listen(cfg.Addrs[id])
	if err != nil {
		return err
	}
	t := net.NewTransport(ln, id, cfg.Addrs, net.Fingerprint{Procs: len(cfg.Addrs), N: c.N(), HalfEdges: c.HalfEdges()})
	if err := t.Establish(timeout); err != nil {
		return err
	}
	defer t.Close()

	res, err := net.RunPipeline(t, c, owner, p)
	if ckptFile != nil {
		if cerr := ckptFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if id != 0 {
		return nil
	}
	if res.Checkpointed {
		fmt.Printf("improvement frozen at round barrier %d -> %s (resume with -resume %s)\n", ckptRnd, ckptOut, ckptOut)
		return nil
	}
	return report(cfg, c, res, jsonOut)
}

// report prints process 0's run summary and optionally the
// mdstrun-compatible JSON, assembled through the same facade helpers so
// equal runs yield equal bytes.
func report(cfg *clusterConfig, c *mdegst.CompiledGraph, res *net.PipelineResult, jsonOut string) error {
	r := res.Result
	total := sim.NewReport()
	total.Add(r.Report)
	if res.Setup != nil {
		total.Add(res.Setup)
	}
	full := &mdegst.Result{
		Initial:       res.Initial,
		Final:         r.Tree,
		InitialDegree: r.InitialDegree,
		FinalDegree:   r.FinalDegree,
		Rounds:        r.Rounds,
		Swaps:         r.Swaps,
		Setup:         res.Setup,
		Improvement:   r.Report,
		Total:         total,
	}
	g := c.Source()
	fmt.Printf("cluster:      %d processes, partition %s\n", len(cfg.Addrs), partitionName(cfg.Partition))
	fmt.Printf("graph:        %s n=%d m=%d maxdeg=%d\n", cfg.Graph.Family, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("initial tree: flood, degree k=%d\n", full.InitialDegree)
	fmt.Printf("final tree:   degree k*=%d (lower bound on Δ*: %d)\n", full.FinalDegree, mdegst.DegreeLowerBound(g))
	fmt.Printf("improvement:  %d rounds, %d exchanges, %d messages, causal depth %d\n",
		full.Rounds, full.Swaps, full.Improvement.Messages, full.Improvement.CausalDepth)
	fmt.Printf("total:        %d messages, %d words, max message %d words\n",
		full.Total.Messages, full.Total.Words, full.Total.MaxWords)
	if jsonOut == "" {
		return nil
	}
	sums := []mdegst.TrialSummary{mdegst.NewTrialSummary(cfg.Graph.Seed, g, full)}
	if jsonOut == "-" {
		return mdegst.WriteTrialSummaries(os.Stdout, sums)
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	if err := mdegst.WriteTrialSummaries(f, sums); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func partitionName(s string) string {
	if s == "" {
		return "contiguous"
	}
	return s
}

// launchCluster is coordinator mode: pick fresh loopback ports, write a
// concrete config next to the original, spawn one child per process and
// wait for the whole cluster. Child 0 inherits stdout (and the -json /
// -checkpoint flags); all children share stderr.
func launchCluster(cfg *clusterConfig, jsonOut, ckptOut string, ckptRnd int64, resume string, timeout time.Duration) error {
	k := len(cfg.Addrs)
	addrs, err := freeLoopbackAddrs(k)
	if err != nil {
		return err
	}
	cfg.Addrs = addrs
	dir, err := os.MkdirTemp("", "mdstd-launch-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	concrete := dir + "/cluster.json"
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(concrete, data, 0o644); err != nil {
		return err
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, k)
	for i := 0; i < k; i++ {
		args := []string{"-config", concrete, "-id", fmt.Sprint(i), "-timeout", timeout.String()}
		if resume != "" {
			args = append(args, "-resume", resume)
		}
		if ckptOut != "" {
			args = append(args, "-checkpoint", ckptOut, "-checkpoint-round", fmt.Sprint(ckptRnd))
		}
		if i == 0 && jsonOut != "" {
			args = append(args, "-json", jsonOut)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if i == 0 {
			cmd.Stdout = os.Stdout
		}
		if err := cmd.Start(); err != nil {
			stopAll(cmds[:i])
			return fmt.Errorf("spawning process %d: %w", i, err)
		}
		cmds[i] = cmd
	}
	var firstErr error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("process %d: %w", i, err)
		}
	}
	return firstErr
}

// freeLoopbackAddrs reserves k distinct loopback ports by binding and
// immediately releasing them — the usual pre-bind trick; the window
// between release and the child's bind is negligible on a loopback
// deployment.
func freeLoopbackAddrs(k int) ([]string, error) {
	addrs := make([]string, k)
	lns := make([]gonet.Listener, 0, k)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < k; i++ {
		ln, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

func stopAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdstd:", err)
	os.Exit(1)
}
