// Quickstart: build a random network, construct a spanning tree with a
// distributed protocol, improve its maximum degree with the paper's
// algorithm, and print what happened.
package main

import (
	"fmt"
	"log"

	"mdegst"
)

func main() {
	// A 64-node random network, connected, average degree ~6.
	g := mdegst.Gnp(64, 0.1, 42)
	fmt.Printf("network: %d nodes, %d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// Full pipeline with defaults: flooding spanning tree (BFS under unit
	// delays), then the paper's improvement protocol in Single mode.
	res, err := mdegst.Run(g, mdegst.Options{Mode: mdegst.ModeHybrid})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial spanning tree degree: %d\n", res.InitialDegree)
	fmt.Printf("improved spanning tree degree: %d\n", res.FinalDegree)
	fmt.Printf("lower bound on the optimum:    %d\n", mdegst.DegreeLowerBound(g))
	fmt.Printf("rounds: %d, exchanges: %d\n", res.Rounds, res.Swaps)
	fmt.Printf("messages: %d setup + %d improvement = %d total\n",
		res.Setup.Messages, res.Improvement.Messages, res.Total.Messages)
	fmt.Printf("time (causal depth under unit delays): %d\n", res.Total.CausalDepth)

	// The final tree is a regular rooted tree: walk it.
	fmt.Printf("root: %d, height: %d\n", res.Final.Root, res.Final.Height())
	hist := res.Final.DegreeHistogram()
	for d := 1; d <= res.FinalDegree; d++ {
		if hist[d] > 0 {
			fmt.Printf("  %3d nodes of degree %d\n", hist[d], d)
		}
	}
}
