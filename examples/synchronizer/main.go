// Synchronizer: the paper's first listed use of spanning trees is "Network
// Synchronization". This example runs a synchronous algorithm (layered BFS)
// on a fully asynchronous network using a beta synchronizer whose control
// tree is (a) a worst-case high-degree tree and (b) the MDegST-improved
// tree. The synchronizer's per-pulse convergecast loads the control tree's
// hottest node proportionally to its degree — improving the tree spreads
// the control traffic.
package main

import (
	"fmt"
	"log"

	"mdegst"
	"mdegst/internal/apps"
	"mdegst/internal/sim"
)

func main() {
	g := mdegst.BarabasiAlbert(120, 2, 13)
	source := g.Nodes()[0]

	star, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	improvedRes, err := mdegst.Improve(g, star, mdegst.Options{Mode: mdegst.ModeHybrid})
	if err != nil {
		log.Fatal(err)
	}
	improved := improvedRes.Final

	kStar, _ := star.MaxDegree()
	kImp, _ := improved.MaxDegree()
	fmt.Printf("network: n=%d m=%d; control trees: star degree %d, improved degree %d\n\n",
		g.N(), g.M(), kStar, kImp)

	fmt.Printf("%-22s %8s %10s %16s %12s\n",
		"control tree", "pulses", "messages", "hot-spot sends", "BFS correct")
	for _, tc := range []struct {
		name string
		ctrl *mdegst.Tree
	}{
		{"star (worst case)", star},
		{"MDegST (improved)", improved},
	} {
		res, err := apps.RunSync(&sim.AsyncEngine{}, g, apps.SyncConfig{
			Tree:       tc.ctrl,
			NewMachine: apps.NewBFSMachine(source),
		})
		if err != nil {
			log.Fatal(err)
		}
		correct := true
		for id, m := range res.Machines {
			if m.(*apps.BFSMachine).Dist != int64(depth(g, source, id)) {
				correct = false
			}
		}
		fmt.Printf("%-22s %8d %10d %16d %12v\n",
			tc.name, res.Rounds, res.Report.Messages, res.Report.MaxSentByNode(), correct)
	}
	fmt.Println("\nBoth control trees synchronize the BFS correctly on the truly")
	fmt.Println("concurrent engine; the improved tree spreads the per-pulse")
	fmt.Println("control traffic away from the hub.")
}

// depth computes the reference BFS distance.
func depth(g *mdegst.Graph, src, v mdegst.NodeID) int {
	dist := map[mdegst.NodeID]int{src: 0}
	queue := []mdegst.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist[v]
}
