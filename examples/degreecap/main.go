// Degreecap: the paper's introduction motivates trees "in which the degree
// of a node ... cannot exceed a given value k". This example runs the
// improvement with a degree target: the protocol stops as soon as the tree
// is good enough, trading tree quality for protocol cost. The table shows
// the cost of each target level on a hubby network.
package main

import (
	"fmt"
	"log"

	"mdegst"
)

func main() {
	g := mdegst.BarabasiAlbert(150, 2, 21)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k0, _ := t0.MaxDegree()
	fmt.Printf("network: n=%d m=%d; worst-case initial tree degree k=%d\n\n", g.N(), g.M(), k0)

	fmt.Printf("%-8s %10s %8s %8s %12s\n", "target", "final k", "rounds", "swaps", "messages")
	for _, target := range []int{0, 3, 4, 6, 8, 12, 16} {
		res, err := mdegst.Improve(g, t0, mdegst.Options{
			Mode:         mdegst.ModeHybrid,
			TargetDegree: target,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", target)
		if target == 0 {
			label = "none"
		}
		fmt.Printf("%-8s %10d %8d %8d %12d\n",
			label, res.FinalDegree, res.Rounds, res.Swaps, res.Improvement.Messages)
	}

	fmt.Println("\nA modest cap (say twice the optimum) costs a fraction of the")
	fmt.Println("messages of full optimisation — the protocol stops its rounds as")
	fmt.Println("soon as SearchDegree reports a maximum degree within the target.")
}
