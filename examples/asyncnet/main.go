// Asyncnet: the algorithm is asynchronous and event-driven — its result may
// not depend on message delays or scheduling. This example runs the same
// improvement under four different adversaries (unit delays, two seeded
// random-delay schedules, and real goroutine concurrency) and shows that
// the final tree is identical every time, while the time-like measures vary.
package main

import (
	"fmt"
	"log"

	"mdegst"
)

func main() {
	g := mdegst.Gnm(80, 240, 3)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k, _ := t0.MaxDegree()
	fmt.Printf("network: n=%d m=%d, initial tree degree %d\n\n", g.N(), g.M(), k)

	engines := []struct {
		name string
		eng  mdegst.Engine
	}{
		{"unit delays (paper's time model)", mdegst.NewUnitEngine()},
		{"random delays, seed 1", mdegst.NewRandomDelayEngine(1)},
		{"random delays, seed 2", mdegst.NewRandomDelayEngine(2)},
		{"goroutines (true concurrency)", mdegst.NewAsyncEngine()},
	}

	var ref *mdegst.Tree
	fmt.Printf("%-34s %9s %13s %8s\n", "engine", "messages", "causal depth", "final k")
	for _, e := range engines {
		res, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mdegst.ModeHybrid, Engine: e.eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %9d %13d %8d\n",
			e.name, res.Improvement.Messages, res.Improvement.CausalDepth, res.FinalDegree)
		if ref == nil {
			ref = res.Final
		} else if !res.Final.Equal(ref) {
			log.Fatal("BUG: final tree depends on the delivery schedule")
		}
	}
	fmt.Println("\nAll four executions produced the identical final tree: the")
	fmt.Println("protocol's choices (identity tie-breaks, degree keys) are")
	fmt.Println("delivery-order independent, as the asynchronous model demands.")
}
