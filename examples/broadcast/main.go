// Broadcast: the paper's motivating scenario. Broadcasting over a spanning
// tree loads each node proportionally to its tree degree; "if the degree of
// a node is large, it might cause an undesirable communication load in that
// node". This example compares the broadcast hot-spot across spanning-tree
// constructions on a hub-heavy network, before and after running the
// improvement protocol.
package main

import (
	"fmt"
	"log"

	"mdegst"
)

func main() {
	// A preferential-attachment network: a few hubs, many leaves — the
	// worst case for naive spanning trees.
	g := mdegst.BarabasiAlbert(200, 2, 7)
	fmt.Printf("network: %d nodes, %d edges, max degree %d (hubby)\n\n", g.N(), g.M(), g.MaxDegree())

	fmt.Printf("%-12s  %14s  %14s  %9s  %9s\n",
		"initial tree", "hot-spot before", "hot-spot after", "rounds", "messages")
	for _, method := range []mdegst.InitialTree{
		mdegst.InitialStar, mdegst.InitialFlood, mdegst.InitialDFS,
		mdegst.InitialGHS, mdegst.InitialRandom,
	} {
		res, err := mdegst.Run(g, mdegst.Options{
			Initial: method,
			Mode:    mdegst.ModeHybrid,
			Seed:    11,
		})
		if err != nil {
			log.Fatal(err)
		}
		// In a tree broadcast every inner node forwards to its children:
		// the busiest node sends max-degree messages.
		fmt.Printf("%-12s  %15d  %14d  %9d  %9d\n",
			method, res.InitialDegree, res.FinalDegree, res.Rounds, res.Improvement.Messages)
	}

	fmt.Println("\nThe improvement protocol caps the broadcast hot-spot near the")
	fmt.Println("optimum regardless of how bad the initial tree was — the paper's")
	fmt.Println("point about reducing per-site work for broadcast.")
}
