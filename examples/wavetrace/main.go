// Wavetrace reproduces the paper's figures on a small example:
//
//   - Figure 1: one exchange lowering the maximum degree — printed as
//     before/after trees;
//   - Figure 2: the BFS wave — an ASCII timeline of the Cut, BFS, cousin
//     answers and BFSBack convergecast of the first improvement round.
//
// The graph is the 7-node example from Figure 1: root p of degree 3 whose
// fragments are joined by the outgoing edge (D,E).
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"mdegst"
)

func main() {
	// Figure 1's instance: p=0, x=1, x'=2, C=3, D=4, E=5 plus a third
	// child 6 so p has degree 3; the improving outgoing edge is (4,5).
	g := mdegst.NewGraph()
	for _, e := range [][2]mdegst.NodeID{
		{0, 1}, {0, 2}, {0, 6}, {1, 3}, {1, 4}, {4, 5}, {2, 5},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialFlood, mdegst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1: the tree before improvement ===")
	fmt.Print(t0)

	// A TraceEvent's Msg is a flat value record; the timeline extracts the
	// rendered kind per event.
	type step struct {
		time     float64
		from, to mdegst.NodeID
		kind     string
	}
	var events []step
	res, err := mdegst.Improve(g, t0, mdegst.Options{
		Engine: mdegst.NewTracingEngine(func(e mdegst.TraceEvent) {
			if !e.IsMessage() {
				return
			}
			events = append(events, step{time: e.Time, from: e.From, to: e.To, kind: e.Msg.Kind()})
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Figure 2: the wave, message by message (unit delays) ===")
	byTime := map[int][]string{}
	var times []int
	for _, e := range events {
		if !strings.HasPrefix(e.kind, "mdst.") {
			continue
		}
		short := strings.TrimPrefix(e.kind, "mdst.")
		tm := int(e.time)
		if len(byTime[tm]) == 0 {
			times = append(times, tm)
		}
		byTime[tm] = append(byTime[tm], fmt.Sprintf("%d->%d %s", e.from, e.to, short))
	}
	sort.Ints(times)
	for _, tm := range times {
		fmt.Printf("t=%3d  %s\n", tm, strings.Join(byTime[tm], "   "))
	}

	fmt.Println("\n=== Figure 1: the tree after the exchange ===")
	fmt.Print(res.Final)
	fmt.Printf("\nmaximum degree: %d -> %d (edge (4,5) added, a root edge removed)\n",
		res.InitialDegree, res.FinalDegree)
}
