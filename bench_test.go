package mdegst_test

// The benchmark harness: one benchmark per experiment table/figure from
// DESIGN.md §4 (regenerating the table and reporting its headline metric),
// plus end-to-end pipeline benchmarks over the workload families. Full-size
// tables are produced by cmd/mdstbench; these benches run the same drivers
// at reduced scale so `go test -bench=.` exercises every experiment.

import (
	"fmt"
	"strconv"
	"testing"

	"mdegst"
	"mdegst/internal/exp"
	"mdegst/internal/workload"
)

func benchConfig() exp.Config { return exp.Config{Seeds: 2, Scale: 0.5} }

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	driver := exp.All()[id]
	if driver == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	var rows int
	for i := 0; i < b.N; i++ {
		tbl := driver(cfg)
		rows = len(tbl.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1Rounds(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Quality(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Messages(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Time(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5WorstCase(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6Bits(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7Phases(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8LowerBound(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9InitialTree(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10Broadcast(b *testing.B)  { benchExperiment(b, "E10") }
func BenchmarkA1MultiRoot(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2Twin(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3Engines(b *testing.B)     { benchExperiment(b, "A3") }

// BenchmarkF2WaveTrace regenerates the Figure 2 message timeline (one
// improvement round on the Figure 1 instance) per iteration.
func BenchmarkF2WaveTrace(b *testing.B) {
	g := mdegst.NewGraph()
	for _, e := range [][2]mdegst.NodeID{
		{0, 1}, {0, 2}, {0, 6}, {1, 3}, {1, 4}, {4, 5}, {2, 5},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialFlood, mdegst.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var traced int
	for i := 0; i < b.N; i++ {
		n := 0
		eng := mdegst.NewTracingEngine(func(mdegst.TraceEvent) { n++ })
		res, err := mdegst.Improve(g, t0, mdegst.Options{Engine: eng})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalDegree != 2 {
			b.Fatalf("figure 1 exchange failed: degree %d", res.FinalDegree)
		}
		traced = n
	}
	b.ReportMetric(float64(traced), "events")
}

// BenchmarkPipeline measures the full distributed pipeline per family/size.
func BenchmarkPipeline(b *testing.B) {
	families := []struct {
		name string
		gen  func(n int) *mdegst.Graph
	}{
		{"gnp", func(n int) *mdegst.Graph { return mdegst.Gnp(n, 12.0/float64(n), 1) }},
		{"ba", func(n int) *mdegst.Graph { return mdegst.BarabasiAlbert(n, 2, 1) }},
		{"wheel", func(n int) *mdegst.Graph { return mdegst.Wheel(n) }},
	}
	for _, f := range families {
		for _, n := range []int{32, 64, 128} {
			g := f.gen(n)
			b.Run(fmt.Sprintf("%s/n=%d", f.name, n), func(b *testing.B) {
				var msgs, rounds int64
				for i := 0; i < b.N; i++ {
					res, err := mdegst.Run(g, mdegst.Options{Initial: mdegst.InitialStar, Mode: mdegst.ModeHybrid})
					if err != nil {
						b.Fatal(err)
					}
					msgs = res.Total.Messages
					rounds = int64(res.Rounds)
				}
				b.ReportMetric(float64(msgs), "msgs")
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkModes compares the three protocol variants on one workload.
func BenchmarkModes(b *testing.B) {
	g := mdegst.BarabasiAlbert(96, 2, 5)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []mdegst.Mode{mdegst.ModeSingle, mdegst.ModeMulti, mdegst.ModeHybrid} {
		b.Run(mode.String(), func(b *testing.B) {
			var msgs int64
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				msgs, rounds = res.Improvement.Messages, res.Rounds
			}
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkEngines compares the simulation engines on the same protocol run.
func BenchmarkEngines(b *testing.B) {
	g := mdegst.Gnm(96, 288, 9)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		b.Fatal(err)
	}
	engines := map[string]func() mdegst.Engine{
		"event-unit":   mdegst.NewUnitEngine,
		"event-random": func() mdegst.Engine { return mdegst.NewRandomDelayEngine(3) },
		"async":        mdegst.NewAsyncEngine,
	}
	for name, mk := range engines {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mdegst.ModeHybrid, Engine: mk()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeFlood measures raw engine throughput at the scale the
// bounded-delay schedulers unlocked: distributed flood spanning-tree
// construction over 4k–100k-node workloads on one compiled snapshot (the
// recorded trajectory entries live in the `mdstbench -perf` suite). All
// three cases run by default; the 100k grid costs a couple of seconds of
// one-off generation plus ~0.3s per iteration, affordable since the
// schedulers and the O(n) tree extraction landed.
func BenchmarkLargeFlood(b *testing.B) {
	// The graphs come from the shared catalog (internal/workload) so these
	// names stay byte-for-byte the workloads recorded in BENCH_*.json.
	for _, w := range workload.Large() {
		// shards=1 is the plain event engine; shards=4 runs the
		// shard-partitioned runtime (window-parallel on multi-core hosts,
		// same results everywhere — pinned by the sim differential tests).
		for _, shards := range []int{1, 4} {
			name := w.Name
			if shards > 1 {
				name = fmt.Sprintf("%s/shards=%d", w.Name, shards)
			}
			b.Run(name, func(b *testing.B) {
				c := mdegst.Compile(w.Gen())
				opts := mdegst.Options{Shards: shards}
				b.ResetTimer()
				var msgs int64
				for i := 0; i < b.N; i++ {
					tr, rep, err := mdegst.BuildSpanningTreeCompiled(c, mdegst.InitialFlood, opts)
					if err != nil {
						b.Fatal(err)
					}
					if tr == nil {
						b.Fatal("no tree built")
					}
					msgs = rep.Messages
				}
				b.ReportMetric(float64(msgs), "msgs")
			})
		}
	}
}

// BenchmarkSequentialTwin measures the oracle's speed (the fast path for
// large sweeps).
func BenchmarkSequentialTwin(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		g := mdegst.Gnm(n, 3*n, 2)
		t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := mdegst.ImproveSequential(g, t0, mdegst.ModeHybrid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExact measures the ground-truth solver at its size limit.
func BenchmarkExact(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		g := mdegst.Gnm(n, 2*n, 4)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mdegst.ExactMinDegree(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
