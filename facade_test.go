package mdegst_test

import (
	"strings"
	"testing"

	"mdegst"
)

func TestTargetDegreeOption(t *testing.T) {
	g := mdegst.BarabasiAlbert(80, 2, 19)
	t0, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialStar, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mdegst.ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := mdegst.Improve(g, t0, mdegst.Options{Mode: mdegst.ModeHybrid, TargetDegree: full.FinalDegree + 3})
	if err != nil {
		t.Fatal(err)
	}
	if capped.FinalDegree > full.FinalDegree+3 {
		t.Errorf("capped degree %d above target %d", capped.FinalDegree, full.FinalDegree+3)
	}
	if capped.Rounds >= full.Rounds {
		t.Errorf("capped run took %d rounds, full %d — the cap should stop earlier", capped.Rounds, full.Rounds)
	}
	if capped.Improvement.Messages >= full.Improvement.Messages {
		t.Errorf("capped run cost %d messages, full %d", capped.Improvement.Messages, full.Improvement.Messages)
	}
}

func TestBuildSpanningTreeErrors(t *testing.T) {
	if _, _, err := mdegst.BuildSpanningTree(mdegst.NewGraph(), mdegst.InitialFlood, mdegst.Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	g := mdegst.Ring(5)
	if _, _, err := mdegst.BuildSpanningTree(g, mdegst.InitialTree(99), mdegst.Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestImproveRejectsBadTree(t *testing.T) {
	g := mdegst.Ring(6)
	other := mdegst.Ring(8)
	t0, _, err := mdegst.BuildSpanningTree(other, mdegst.InitialFlood, mdegst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdegst.Improve(g, t0, mdegst.Options{}); err == nil {
		t.Error("tree of a different graph accepted")
	}
}

func TestInitialTreeStrings(t *testing.T) {
	names := map[mdegst.InitialTree]string{
		mdegst.InitialFlood:    "flood",
		mdegst.InitialDFS:      "dfs",
		mdegst.InitialGHS:      "ghs",
		mdegst.InitialElection: "election",
		mdegst.InitialStar:     "star",
		mdegst.InitialRandom:   "random",
	}
	for it, want := range names {
		if it.String() != want {
			t.Errorf("%d renders %q, want %q", int(it), it.String(), want)
		}
	}
	if !strings.Contains(mdegst.InitialTree(42).String(), "42") {
		t.Error("unknown method should render its number")
	}
}

func TestTracingEngineFacade(t *testing.T) {
	g := mdegst.Ring(6)
	var events int
	eng := mdegst.NewTracingEngine(func(mdegst.TraceEvent) { events++ })
	if _, err := mdegst.Run(g, mdegst.Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("tracing engine reported no deliveries")
	}
}

func TestDOTThroughFacade(t *testing.T) {
	g := mdegst.Wheel(8)
	res, err := mdegst.Run(g, mdegst.Options{Initial: mdegst.InitialStar})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Final.WriteDOT(&b, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "spanningtree") {
		t.Error("DOT output malformed")
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	var events int
	opts := mdegst.ExperimentOptions{
		Seeds: 1, Scale: 0.1, Parallel: 4,
		Progress: func(mdegst.ExperimentProgress) { events++ },
	}
	tables, err := mdegst.RunExperiments([]string{"E5", "E6"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "E5" || tables[1].ID != "E6" {
		t.Fatalf("unexpected tables %v", tables)
	}
	if events == 0 {
		t.Error("no progress callbacks")
	}
	var b strings.Builder
	if err := mdegst.WriteExperimentsJSON(&b, tables, opts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seeds": 1`, `"id": "E5"`, `"id": "E6"`, `"rows"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON output misses %q:\n%s", want, b.String())
		}
	}
	if _, err := mdegst.RunExperiments([]string{"nope"}, opts); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
