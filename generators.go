package mdegst

import "mdegst/internal/graph"

// Graph constructors re-exported from the internal graph package so that
// downstream users can build workloads without touching internals. All
// generators produce connected graphs, are deterministic for a fixed seed,
// and label nodes 0..n-1.

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// Ring returns the n-cycle.
func Ring(n int) *Graph { return graph.Ring(n) }

// PathGraph returns the n-node path.
func PathGraph(n int) *Graph { return graph.Path(n) }

// Complete returns K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// StarGraph returns K_{1,n-1}, whose unique spanning tree has degree n-1.
func StarGraph(n int) *Graph { return graph.Star(n) }

// Wheel returns an (n-1)-cycle plus a hub adjacent to every cycle node.
func Wheel(n int) *Graph { return graph.Wheel(n) }

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Torus returns the rows x cols torus.
func Torus(rows, cols int) *Graph { return graph.Torus(rows, cols) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return graph.Hypercube(d) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return graph.CompleteBipartite(a, b) }

// Lollipop returns a k-clique with a tail path.
func Lollipop(k, tail int) *Graph { return graph.Lollipop(k, tail) }

// Caterpillar returns a spine path with pendant legs.
func Caterpillar(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// Gnp returns a connected Erdős–Rényi G(n,p) graph.
func Gnp(n int, p float64, seed int64) *Graph { return graph.Gnp(n, p, seed) }

// Gnm returns a uniform random connected graph with n nodes and m edges.
func Gnm(n, m int, seed int64) *Graph { return graph.Gnm(n, m, seed) }

// RandomTree returns a uniform random labelled tree.
func RandomTree(n int, seed int64) *Graph { return graph.RandomTree(n, seed) }

// TreePlusChords returns a random tree plus extra chord edges.
func TreePlusChords(n, chords int, seed int64) *Graph { return graph.TreePlusChords(n, chords, seed) }

// HamiltonianPlusChords returns a Hamiltonian path plus chords (Δ* = 2).
func HamiltonianPlusChords(n, chords int, seed int64) *Graph {
	return graph.HamiltonianPlusChords(n, chords, seed)
}

// RandomGeometric returns a unit-square radio-network graph.
func RandomGeometric(n int, radius float64, seed int64) *Graph {
	return graph.RandomGeometric(n, radius, seed)
}

// BarabasiAlbert returns a preferential-attachment graph with hubs.
func BarabasiAlbert(n, k int, seed int64) *Graph { return graph.BarabasiAlbert(n, k, seed) }

// RelabelRandom scrambles node identities, exercising the named-network
// model; it returns the new graph and the old-to-new mapping.
func RelabelRandom(g *Graph, seed int64) (*Graph, map[NodeID]NodeID) {
	return graph.RelabelRandom(g, seed)
}
