package graph

import (
	"fmt"
	"sort"
)

// The dense-index core. Graph remains the mutable builder API keyed by
// NodeID; Compile freezes it into an immutable CSR snapshot whose node and
// adjacency state live in contiguous slices addressed by a dense int32
// index. Everything downstream of construction — simulation engines,
// spanning-tree builders, the improvement twin, the exact solver and the
// experiment harness — consumes the snapshot, so hot loops index arrays
// instead of hashing NodeIDs. See DESIGN.md §5.

// Index is a bijection between the (arbitrary, distinct) NodeIDs of a graph
// and the contiguous range 0..n-1. Dense indices are assigned in ascending
// NodeID order, so iterating 0..n-1 visits nodes in exactly the order
// Graph.Nodes() does — algorithms keep their deterministic tie-breaking when
// they switch from NodeID maps to dense slices.
type Index struct {
	ids []NodeID         // dense -> NodeID, ascending
	pos map[NodeID]int32 // NodeID -> dense
}

// NewIndex builds an index over the nodes of g.
func NewIndex(g *Graph) *Index {
	nodes := g.Nodes()
	ix := &Index{
		ids: append([]NodeID(nil), nodes...),
		pos: make(map[NodeID]int32, len(nodes)),
	}
	for i, v := range ix.ids {
		ix.pos[v] = int32(i)
	}
	return ix
}

// N returns the number of indexed nodes.
func (ix *Index) N() int { return len(ix.ids) }

// ID returns the NodeID at dense index i.
func (ix *Index) ID(i int32) NodeID { return ix.ids[i] }

// IDs returns the dense->NodeID table (ascending). Shared; do not modify.
func (ix *Index) IDs() []NodeID { return ix.ids }

// Of returns the dense index of id and whether id is indexed.
func (ix *Index) Of(id NodeID) (int32, bool) {
	i, ok := ix.pos[id]
	return i, ok
}

// MustOf returns the dense index of id, panicking if id is not indexed.
func (ix *Index) MustOf(id NodeID) int32 {
	i, ok := ix.pos[id]
	if !ok {
		panic(fmt.Sprintf("graph: node %d not in index", id))
	}
	return i
}

// CSR is an immutable compressed-sparse-row snapshot of a graph: for dense
// node i the half-edges are positions Off[i]..Off[i+1] in the neighbour
// arrays, with neighbours in ascending order. A CSR is safe for concurrent
// readers and can be shared across simulation runs, trials and goroutines;
// mutate the builder Graph and Compile again to get a new snapshot.
type CSR struct {
	idx *Index
	off []int32  // len n+1; off[i]..off[i+1] bounds node i's neighbours
	adj []int32  // dense neighbour indices, ascending per node
	ids []NodeID // NodeID of each adj entry (aligned with adj)
	m   int

	src *Graph // the builder this snapshot was compiled from
}

// Compile freezes g into a CSR snapshot. The snapshot copies the adjacency
// into fresh contiguous arrays, so later mutation of g never changes the
// snapshot's own queries — but see Source for the contract the execution
// paths put on the builder.
func (g *Graph) Compile() *CSR {
	ix := NewIndex(g)
	n := ix.N()
	c := &CSR{
		idx: ix,
		off: make([]int32, n+1),
		adj: make([]int32, 2*g.M()),
		ids: make([]NodeID, 2*g.M()),
		m:   g.M(),
		src: g,
	}
	at := int32(0)
	for i := 0; i < n; i++ {
		c.off[i] = at
		for _, w := range g.Neighbors(ix.ids[i]) {
			c.adj[at] = ix.pos[w]
			c.ids[at] = w
			at++
		}
	}
	c.off[n] = at
	return c
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.idx.N() }

// M returns the number of edges.
func (c *CSR) M() int { return c.m }

// Index returns the NodeID<->dense bijection of the snapshot.
func (c *CSR) Index() *Index { return c.idx }

// Source returns the builder Graph this snapshot was compiled from.
//
// The snapshot's own arrays never change, but snapshot-based execution
// paths still read the source: tree validation/extraction work against the
// builder, and sim.RunCompiled falls back to it for engines without a
// dense fast path. Treat the builder as frozen while a snapshot of it is
// in use — after a structural mutation, Compile again instead of reusing
// the stale snapshot.
func (c *CSR) Source() *Graph { return c.src }

// Degree returns the degree of dense node i.
func (c *CSR) Degree(i int32) int { return int(c.off[i+1] - c.off[i]) }

// Neighbors returns the dense neighbour indices of node i, ascending.
// Shared; do not modify.
func (c *CSR) Neighbors(i int32) []int32 { return c.adj[c.off[i]:c.off[i+1]] }

// NeighborIDs returns the NodeIDs of node i's neighbours, ascending.
// Shared; do not modify.
func (c *CSR) NeighborIDs(i int32) []NodeID { return c.ids[c.off[i]:c.off[i+1]] }

// HalfEdge returns the global position of the directed link (i -> its ni-th
// neighbour) in the adjacency arrays. Engines use it to key per-link state
// (FIFO clamps, jitter forwarders) by a slice index instead of a node-pair
// map.
func (c *CSR) HalfEdge(i int32, ni int) int32 { return c.off[i] + int32(ni) }

// HalfEdges returns the total number of directed links (2M).
func (c *CSR) HalfEdges() int { return len(c.adj) }

// HasEdge reports whether the dense nodes i and j are adjacent.
func (c *CSR) HasEdge(i, j int32) bool {
	ns := c.Neighbors(i)
	p := sort.Search(len(ns), func(k int) bool { return ns[k] >= j })
	return p < len(ns) && ns[p] == j
}

// NeighborPos returns the position of dense node j in i's neighbour list, or
// -1 if (i,j) is not an edge.
func (c *CSR) NeighborPos(i, j int32) int {
	ns := c.Neighbors(i)
	p := sort.Search(len(ns), func(k int) bool { return ns[k] >= j })
	if p < len(ns) && ns[p] == j {
		return p
	}
	return -1
}

// MaxDegree returns the maximum degree of the snapshot (0 when empty).
func (c *CSR) MaxDegree() int {
	max := 0
	for i := 0; i < c.idx.N(); i++ {
		if d := c.Degree(int32(i)); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges in normalised ascending order (same order as
// Graph.Edges on the source).
func (c *CSR) Edges() []Edge {
	es := make([]Edge, 0, c.m)
	for i := 0; i < c.idx.N(); i++ {
		u := c.idx.ids[i]
		for _, w := range c.NeighborIDs(int32(i)) {
			if u < w {
				es = append(es, Edge{U: u, V: w})
			}
		}
	}
	return es
}

// DenseEdges appends to dst all edges as (u,v) dense pairs with u < v, in
// ascending order, and returns the slice. Algorithms that scan the edge list
// per round reuse one buffer across rounds.
func (c *CSR) DenseEdges(dst [][2]int32) [][2]int32 {
	if dst == nil {
		dst = make([][2]int32, 0, c.m)
	}
	for i := 0; i < c.idx.N(); i++ {
		for _, j := range c.Neighbors(int32(i)) {
			if int32(i) < j {
				dst = append(dst, [2]int32{int32(i), j})
			}
		}
	}
	return dst
}

// Validate checks the snapshot invariants against its own arrays: sorted
// adjacency, symmetry, consistent half-edge count. O(n+m log d).
func (c *CSR) Validate() error {
	n := c.idx.N()
	if len(c.off) != n+1 || c.off[0] != 0 || int(c.off[n]) != len(c.adj) || len(c.adj) != len(c.ids) {
		return fmt.Errorf("graph: CSR offset table inconsistent")
	}
	if len(c.adj) != 2*c.m {
		return fmt.Errorf("graph: CSR has %d half-edges for m=%d", len(c.adj), c.m)
	}
	for i := int32(0); int(i) < n; i++ {
		ns := c.Neighbors(i)
		for k, j := range ns {
			if k > 0 && ns[k-1] >= j {
				return fmt.Errorf("graph: CSR neighbours of %d not strictly ascending", c.idx.ID(i))
			}
			if j == i {
				return fmt.Errorf("graph: CSR self-loop at %d", c.idx.ID(i))
			}
			if c.ids[c.off[i]+int32(k)] != c.idx.ID(j) {
				return fmt.Errorf("graph: CSR id table mismatch at %d", c.idx.ID(i))
			}
			if !c.HasEdge(j, i) {
				return fmt.Errorf("graph: CSR asymmetric edge (%d,%d)", c.idx.ID(i), c.idx.ID(j))
			}
		}
	}
	return nil
}
