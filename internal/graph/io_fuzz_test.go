package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzReadEdgeList throws arbitrary text at the parser: it must never panic,
// and whenever it accepts the input the parsed graph must survive a
// write/read round trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	seedGraphs := []*Graph{Ring(5), Star(6), Gnm(12, 20, 1)}
	for _, g := range seedGraphs {
		var b bytes.Buffer
		if err := WriteEdgeList(&b, g); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte("2 1\n1 2\n"))
	f.Add([]byte("# comment\n3 0\nv 1\nv 2\nv 3\n"))
	f.Add([]byte("1 1\n5 5\n"))        // self-loop
	f.Add([]byte("2 2\n1 2\n1 2\n"))   // duplicate edge
	f.Add([]byte("9 9\n"))             // header promises more than the body has
	f.Add([]byte("x y\n"))             // bad header
	f.Add([]byte("2 1\n1 2\nv\n"))     // short node line
	f.Add([]byte("2 1\n1 2 3\n"))      // long edge line
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteEdgeList(&out, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !sameGraph(g, g2) {
			t.Fatalf("round trip changed the graph: %v vs %v", g, g2)
		}
	})
}

// TestEdgeListRoundTripRandom is the deterministic slice of the fuzz
// property, run on every `go test`: random graphs (including isolated nodes
// and scrambled identities) survive the write/read round trip exactly.
func TestEdgeListRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		g := Gnm(2+rng.Intn(50), rng.Intn(120), rng.Int63())
		if trial%2 == 0 {
			g, _ = RelabelRandom(g, rng.Int63())
		}
		for k := 0; k < trial%4; k++ {
			g.AddNode(NodeID(1_000_000 + trial*10 + k)) // isolated nodes
		}
		var b bytes.Buffer
		if err := WriteEdgeList(&b, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		if !sameGraph(g, got) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
	}
}

func sameGraph(a, b *Graph) bool {
	return a.N() == b.N() && a.M() == b.M() &&
		reflect.DeepEqual(a.Nodes(), b.Nodes()) &&
		reflect.DeepEqual(a.Edges(), b.Edges())
}
