package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	g, _ := RelabelRandom(Gnm(40, 120, 3), 9) // non-contiguous, scrambled IDs
	ix := NewIndex(g)
	if ix.N() != g.N() {
		t.Fatalf("index has %d nodes, graph %d", ix.N(), g.N())
	}
	prev := NodeID(-1 << 62)
	for i, v := range g.Nodes() {
		if ix.ID(int32(i)) != v {
			t.Fatalf("dense %d maps to %d, want %d", i, ix.ID(int32(i)), v)
		}
		if got := ix.MustOf(v); got != int32(i) {
			t.Fatalf("node %d maps to dense %d, want %d", v, got, i)
		}
		if v <= prev {
			t.Fatalf("index order not ascending at %d", v)
		}
		prev = v
	}
	if _, ok := ix.Of(-12345); ok {
		t.Fatal("found a node that is not in the graph")
	}
}

// TestCompileAgreesWithGraph is the property test of the snapshot: on random
// graphs every structural query of the CSR must agree with the mutable
// builder it was compiled from.
func TestCompileAgreesWithGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		m := n - 1 + rng.Intn(2*n)
		g := Gnm(n, m, rng.Int63())
		if trial%3 == 0 {
			g, _ = RelabelRandom(g, rng.Int63())
		}
		c := g.Compile()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.N() != g.N() || c.M() != g.M() || c.HalfEdges() != 2*g.M() {
			t.Fatalf("size mismatch: csr n=%d m=%d vs graph n=%d m=%d", c.N(), c.M(), g.N(), g.M())
		}
		if c.MaxDegree() != g.MaxDegree() {
			t.Fatalf("max degree %d vs %d", c.MaxDegree(), g.MaxDegree())
		}
		ix := c.Index()
		for i := int32(0); int(i) < c.N(); i++ {
			v := ix.ID(i)
			if c.Degree(i) != g.Degree(v) {
				t.Fatalf("degree of %d: csr %d graph %d", v, c.Degree(i), g.Degree(v))
			}
			if !reflect.DeepEqual(c.NeighborIDs(i), g.Neighbors(v)) && !(len(c.NeighborIDs(i)) == 0 && len(g.Neighbors(v)) == 0) {
				t.Fatalf("neighbours of %d: csr %v graph %v", v, c.NeighborIDs(i), g.Neighbors(v))
			}
			for ni, j := range c.Neighbors(i) {
				if ix.ID(j) != g.Neighbors(v)[ni] {
					t.Fatalf("dense neighbour %d of %d resolves to %d, want %d", ni, v, ix.ID(j), g.Neighbors(v)[ni])
				}
				if c.NeighborPos(i, j) != ni {
					t.Fatalf("NeighborPos(%d,%d) != %d", i, j, ni)
				}
			}
		}
		if !reflect.DeepEqual(c.Edges(), g.Edges()) {
			t.Fatalf("edge lists differ")
		}
		dense := c.DenseEdges(nil)
		if len(dense) != g.M() {
			t.Fatalf("DenseEdges returned %d edges, want %d", len(dense), g.M())
		}
		for k, e := range c.Edges() {
			if ix.ID(dense[k][0]) != e.U || ix.ID(dense[k][1]) != e.V {
				t.Fatalf("dense edge %d = %v, want %v", k, dense[k], e)
			}
		}
		// Adjacency oracle on all pairs.
		nodes := g.Nodes()
		for _, u := range nodes {
			for _, v := range nodes {
				if got, want := c.HasEdge(ix.MustOf(u), ix.MustOf(v)), g.HasEdge(u, v); got != want {
					t.Fatalf("HasEdge(%d,%d): csr %v graph %v", u, v, got, want)
				}
			}
		}
	}
}

// TestCompileIsSnapshot pins immutability: mutating the builder after
// Compile must not change the snapshot.
func TestCompileIsSnapshot(t *testing.T) {
	g := Gnm(16, 30, 1)
	c := g.Compile()
	edges := append([]Edge(nil), c.Edges()...)
	g.MustAddEdge(0, NodeID(g.N())) // grow the builder
	for _, e := range g.Edges() {
		g.RemoveEdge(e.U, e.V)
		break
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Edges(), edges) {
		t.Fatal("snapshot changed when the source graph was mutated")
	}
	if c.Source() != g {
		t.Fatal("snapshot lost its source pointer")
	}
}

func BenchmarkCompile(b *testing.B) {
	g := Gnm(1024, 4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Compile()
	}
}
