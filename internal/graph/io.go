package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as plain text: a header line "n m" listing node and
// edge counts, one line per isolated node ("v ID"), and one line per edge
// ("ID ID"). Lines starting with '#' are comments.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) == 0 {
			if _, err := fmt.Fprintf(bw, "v %d\n", v); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	g := New()
	header := false
	wantN, wantM := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case !header:
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want header \"n m\", got %q", line, text)
			}
			var err error
			if wantN, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node count: %v", line, err)
			}
			if wantM, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %v", line, err)
			}
			header = true
		case fields[0] == "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"v ID\", got %q", line, text)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node ID: %v", line, err)
			}
			g.AddNode(NodeID(id))
		default:
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"ID ID\", got %q", line, text)
			}
			u, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %v", line, err)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %v", line, err)
			}
			if err := g.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: empty input")
	}
	if g.N() != wantN || g.M() != wantM {
		return nil, fmt.Errorf("graph: header promises n=%d m=%d, body has n=%d m=%d", wantN, wantM, g.N(), g.M())
	}
	return g, nil
}
