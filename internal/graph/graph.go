// Package graph provides the undirected graph substrate used by every other
// package in this module: a deterministic adjacency-list representation,
// workload generators for the experiment harness, structural queries
// (connectivity, components, degrees) and a plain-text edge-list format.
//
// All iteration orders are deterministic: node and neighbour lists are kept
// sorted, so algorithms built on top of this package are reproducible for a
// fixed seed regardless of map iteration order.
package graph

import (
	"fmt"
	"sort"
)

// NodeID names a processor in the network. The paper's model requires
// distinct identities; IDs need not be contiguous.
type NodeID int64

// Edge is an undirected edge stored in normalised form (U < V).
type Edge struct {
	U, V NodeID
}

// NewEdge returns the normalised edge {min(a,b), max(a,b)}.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph (no self-loops, no multi-edges).
// The zero value is an empty graph ready to use.
type Graph struct {
	adj   map[NodeID][]NodeID // sorted neighbour lists
	nodes []NodeID            // sorted; kept in sync with adj
	dirty bool                // nodes needs re-sorting
	m     int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID][]NodeID)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, v := range g.Nodes() {
		c.AddNode(v)
	}
	for _, e := range g.Edges() {
		c.AddEdge(e.U, e.V)
	}
	return c
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(v NodeID) {
	if g.adj == nil {
		g.adj = make(map[NodeID][]NodeID)
	}
	if _, ok := g.adj[v]; ok {
		return
	}
	g.adj[v] = nil
	g.nodes = append(g.nodes, v)
	g.dirty = true
}

// HasNode reports whether v is a node of g.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.adj[v]
	return ok
}

// AddEdge inserts the undirected edge (u,v), creating missing endpoints.
// Self-loops and duplicate edges are rejected with an error.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge %v", NewEdge(u, v))
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge for construction code where duplicates are bugs.
func (g *Graph) MustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge (u,v) if present and reports
// whether it was removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.m--
	return true
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.adj[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Nodes returns the nodes in ascending order. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Nodes() []NodeID {
	if g.dirty {
		sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
		g.dirty = false
	}
	return g.nodes
}

// Neighbors returns v's neighbours in ascending order. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum node degree of g (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum node degree of g (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.N()
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// DegreeHistogram returns a map degree -> number of nodes with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, v := range g.Nodes() {
		h[g.Degree(v)]++
	}
	return h
}

// Edges returns all edges in normalised, ascending order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for _, u := range g.Nodes() {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// IsTree reports whether g is connected and has exactly n-1 edges.
func (g *Graph) IsTree() bool {
	return g.N() > 0 && g.m == g.N()-1 && g.IsConnected()
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Validate checks internal invariants (sorted adjacency, symmetry, edge
// count). It is used by tests and costs O(n+m).
func (g *Graph) Validate() error {
	count := 0
	for v, ns := range g.adj {
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			return fmt.Errorf("graph: neighbours of %d not sorted", v)
		}
		for i, w := range ns {
			if i > 0 && ns[i-1] == w {
				return fmt.Errorf("graph: duplicate neighbour %d of %d", w, v)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, w)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: have %d half-edges, want %d", count, 2*g.m)
	}
	return nil
}

func insertSorted(ns []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	ns = append(ns, 0)
	copy(ns[i+1:], ns[i:])
	ns[i] = v
	return ns
}

func removeSorted(ns []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return append(ns[:i], ns[i+1:]...)
	}
	return ns
}
