package graph

import (
	"fmt"
	"testing"
)

func BenchmarkGnp(b *testing.B) {
	for _, n := range []int{128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Gnp(n, 8.0/float64(n), int64(i))
			}
		})
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(512, 2, int64(i))
	}
}

func BenchmarkRandomTreePrufer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RandomTree(512, int64(i))
	}
}

func BenchmarkComponents(b *testing.B) {
	g := Gnp(512, 0.01, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components()
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := Gnm(256, 2048, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(i%256), NodeID((i*7)%256))
	}
}
