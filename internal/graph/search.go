package graph

import "sort"

// BFSOrder returns the nodes reachable from src in breadth-first order,
// scanning neighbours in ascending ID order.
func (g *Graph) BFSOrder(src NodeID) []NodeID {
	if !g.HasNode(src) {
		return nil
	}
	seen := map[NodeID]bool{src: true}
	order := []NodeID{src}
	for head := 0; head < len(order); head++ {
		for _, w := range g.Neighbors(order[head]) {
			if !seen[w] {
				seen[w] = true
				order = append(order, w)
			}
		}
	}
	return order
}

// BFSParents returns, for every node reachable from src, its parent in the
// breadth-first tree rooted at src (src maps to itself).
func (g *Graph) BFSParents(src NodeID) map[NodeID]NodeID {
	if !g.HasNode(src) {
		return nil
	}
	parent := map[NodeID]NodeID{src: src}
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if _, ok := parent[w]; !ok {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// IsConnected reports whether g is connected. The empty graph is not
// connected; a single node is.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	return len(g.BFSOrder(g.Nodes()[0])) == g.N()
}

// Components returns the connected components of g, each sorted ascending,
// ordered by their smallest node.
func (g *Graph) Components() [][]NodeID {
	var comps [][]NodeID
	seen := make(map[NodeID]bool, g.N())
	for _, v := range g.Nodes() {
		if seen[v] {
			continue
		}
		comp := g.BFSOrder(v)
		for _, w := range comp {
			seen[w] = true
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ComponentsWithout returns the connected components of the subgraph induced
// by V \ removed. Nodes in removed appear in no component.
func (g *Graph) ComponentsWithout(removed map[NodeID]bool) [][]NodeID {
	var comps [][]NodeID
	seen := make(map[NodeID]bool, g.N())
	for _, v := range g.Nodes() {
		if seen[v] || removed[v] {
			continue
		}
		comp := []NodeID{v}
		seen[v] = true
		for head := 0; head < len(comp); head++ {
			for _, w := range g.Neighbors(comp[head]) {
				if !seen[w] && !removed[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum BFS distance from src to any reachable
// node.
func (g *Graph) Eccentricity(src NodeID) int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	max := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				if dist[w] > max {
					max = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return max
}

// Diameter returns the largest eccentricity over all nodes. It costs
// O(n·(n+m)) and is intended for tests and experiment reporting.
func (g *Graph) Diameter() int {
	max := 0
	for _, v := range g.Nodes() {
		if e := g.Eccentricity(v); e > max {
			max = e
		}
	}
	return max
}

func sortNodeIDs(ns []NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
