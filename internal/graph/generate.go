package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators build the workload families used throughout the experiment
// harness. Every generator is deterministic for a fixed seed, produces a
// connected graph, and labels nodes 0..n-1 (use RelabelRandom to scramble
// identities when testing ID-dependence).

// Ring returns the n-cycle (n >= 3).
func Ring(n int) *Graph {
	mustAtLeast("Ring", n, 3)
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return g
}

// Path returns the n-node path graph (n >= 1).
func Path(n int) *Graph {
	mustAtLeast("Path", n, 1)
	g := New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.MustAddEdge(NodeID(i-1), NodeID(i))
	}
	return g
}

// Complete returns K_n (n >= 1).
func Complete(n int) *Graph {
	mustAtLeast("Complete", n, 1)
	g := New()
	g.AddNode(0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j))
		}
	}
	return g
}

// Star returns the star K_{1,n-1} with centre 0 (n >= 2). Its unique
// spanning tree has degree n-1, the paper's worst case.
func Star(n int) *Graph {
	mustAtLeast("Star", n, 2)
	g := New()
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, NodeID(i))
	}
	return g
}

// Wheel returns the wheel graph: an (n-1)-cycle plus a hub adjacent to every
// cycle node (n >= 4). Its minimum degree spanning tree has degree 2 or 3
// while the hub-star spanning tree has degree n-1.
func Wheel(n int) *Graph {
	mustAtLeast("Wheel", n, 4)
	g := New()
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, NodeID(i))
		next := i + 1
		if next == n {
			next = 1
		}
		g.MustAddEdge(NodeID(i), NodeID(next))
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	mustAtLeast("Grid rows", rows, 1)
	mustAtLeast("Grid cols", cols, 1)
	if rows*cols < 2 {
		panic("graph: Grid needs at least 2 nodes")
	}
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound); rows, cols >= 3.
func Torus(rows, cols int) *Graph {
	mustAtLeast("Torus rows", rows, 3)
	mustAtLeast("Torus cols", cols, 3)
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols))
			g.MustAddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes (d >= 1).
func Hypercube(d int) *Graph {
	mustAtLeast("Hypercube", d, 1)
	g := New()
	n := 1 << d
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			j := i ^ (1 << b)
			if i < j {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts 0..a-1 and a..a+b-1.
func CompleteBipartite(a, b int) *Graph {
	mustAtLeast("CompleteBipartite a", a, 1)
	mustAtLeast("CompleteBipartite b", b, 1)
	g := New()
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustAddEdge(NodeID(i), NodeID(a+j))
		}
	}
	return g
}

// Lollipop returns a clique of size k joined by an edge to a path of length
// tail (total n = k + tail nodes).
func Lollipop(k, tail int) *Graph {
	mustAtLeast("Lollipop clique", k, 3)
	mustAtLeast("Lollipop tail", tail, 1)
	g := Complete(k)
	prev := NodeID(k - 1)
	for i := 0; i < tail; i++ {
		next := NodeID(k + i)
		g.MustAddEdge(prev, next)
		prev = next
	}
	return g
}

// Caterpillar returns a spine path of the given length with legs pendant
// nodes attached to every spine node. Its MDegST degree is legs+2 in the
// middle of the spine.
func Caterpillar(spine, legs int) *Graph {
	mustAtLeast("Caterpillar spine", spine, 2)
	mustAtLeast("Caterpillar legs", legs, 0)
	g := Path(spine)
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(NodeID(s), NodeID(next))
			next++
		}
	}
	return g
}

// Gnp returns an Erdős–Rényi G(n,p) graph made connected: after sampling,
// components are joined by single random edges. For p well above the
// connectivity threshold the patch-up is almost always a no-op.
func Gnp(n int, p float64, seed int64) *Graph {
	mustAtLeast("Gnp", n, 2)
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: Gnp probability %v out of range", p))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	connect(g, rng)
	return g
}

// Gnm returns a uniform random connected graph with n nodes and max(m, n-1)
// edges: a uniform random spanning tree (Wilson) plus random extra edges.
func Gnm(n, m int, seed int64) *Graph {
	mustAtLeast("Gnm", n, 2)
	rng := rand.New(rand.NewSource(seed))
	g := randomTree(n, rng)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for g.M() < m {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// RandomTree returns a uniform random labelled tree on n nodes.
func RandomTree(n int, seed int64) *Graph {
	mustAtLeast("RandomTree", n, 1)
	return randomTree(n, rand.New(rand.NewSource(seed)))
}

// randomTree samples a uniform spanning tree of K_n via a random Prüfer
// sequence.
func randomTree(n int, rng *rand.Rand) *Graph {
	g := New()
	if n == 1 {
		g.AddNode(0)
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
		deg[prufer[i]]++
	}
	// Decode: repeatedly attach the smallest leaf to the next code entry.
	used := make([]bool, n)
	for _, code := range prufer {
		leaf := -1
		for i := 0; i < n; i++ {
			if !used[i] && deg[i] == 0 {
				leaf = i
				break
			}
		}
		used[leaf] = true
		g.MustAddEdge(NodeID(leaf), NodeID(code))
		deg[code]--
	}
	var last []int
	for i := 0; i < n; i++ {
		if !used[i] {
			last = append(last, i)
		}
	}
	g.MustAddEdge(NodeID(last[0]), NodeID(last[1]))
	return g
}

// TreePlusChords returns a uniform random tree with extra random chord
// edges added on top — a family where the initial spanning tree shape is
// easy to control.
func TreePlusChords(n, chords int, seed int64) *Graph {
	return Gnm(n, n-1+chords, seed)
}

// HamiltonianPlusChords returns a Hamiltonian path 0-1-...-n-1 plus the given
// number of random chord edges. By construction its optimal spanning tree
// degree is 2, which makes the Δ* ground truth free for any size.
func HamiltonianPlusChords(n, chords int, seed int64) *Graph {
	mustAtLeast("HamiltonianPlusChords", n, 2)
	rng := rand.New(rand.NewSource(seed))
	g := Path(n)
	maxM := n * (n - 1) / 2
	want := n - 1 + chords
	if want > maxM {
		want = maxM
	}
	for g.M() < want {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within the given radius, then patches connectivity with the shortest
// available inter-component hops.
func RandomGeometric(n int, radius float64, seed int64) *Graph {
	mustAtLeast("RandomGeometric", n, 2)
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	// Patch connectivity with the geometrically closest cross pair so the
	// result still looks like a radio network.
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			break
		}
		bestD := math.Inf(1)
		var bu, bv NodeID
		for _, u := range comps[0] {
			for _, comp := range comps[1:] {
				for _, v := range comp {
					dx, dy := xs[u]-xs[v], ys[u]-ys[v]
					if d := dx*dx + dy*dy; d < bestD {
						bestD, bu, bv = d, u, v
					}
				}
			}
		}
		g.MustAddEdge(bu, bv)
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: a k-clique seed,
// then each new node attaches to k existing nodes chosen proportionally to
// degree. Produces the skewed hub degrees that motivate degree-bounded
// broadcast trees.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	mustAtLeast("BarabasiAlbert", n, 2)
	mustAtLeast("BarabasiAlbert k", k, 1)
	if k >= n {
		k = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := Complete(k + 1)
	// repeated-endpoints list implements preferential attachment
	var ends []NodeID
	for _, e := range g.Edges() {
		ends = append(ends, e.U, e.V)
	}
	for i := k + 1; i < n; i++ {
		chosen := make(map[NodeID]bool)
		var order []NodeID
		for len(chosen) < k {
			v := ends[rng.Intn(len(ends))]
			if !chosen[v] {
				chosen[v] = true
				order = append(order, v)
			}
		}
		for _, v := range order {
			g.MustAddEdge(NodeID(i), v)
			ends = append(ends, NodeID(i), v)
		}
	}
	return g
}

// connect joins the components of g with random single edges (in place).
func connect(g *Graph, rng *rand.Rand) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		a := comps[0][rng.Intn(len(comps[0]))]
		c := comps[1+rng.Intn(len(comps)-1)]
		b := c[rng.Intn(len(c))]
		g.MustAddEdge(a, b)
	}
}

// RelabelRandom returns a copy of g whose node identities are a random
// permutation of widely spaced IDs, exercising the "named network" model
// where identities are arbitrary distinct values.
func RelabelRandom(g *Graph, seed int64) (*Graph, map[NodeID]NodeID) {
	rng := rand.New(rand.NewSource(seed))
	nodes := g.Nodes()
	perm := rng.Perm(len(nodes))
	mapping := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		mapping[v] = NodeID(perm[i]*7919 + 13) // spaced, non-contiguous
	}
	out := New()
	for _, v := range nodes {
		out.AddNode(mapping[v])
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(mapping[e.U], mapping[e.V])
	}
	return out, mapping
}

func mustAtLeast(what string, v, min int) {
	if v < min {
		panic(fmt.Sprintf("graph: %s parameter %d below minimum %d", what, v, min))
	}
}
