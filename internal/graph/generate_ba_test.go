package graph

import (
	"reflect"
	"sort"
	"testing"
)

// TestBarabasiAlbert pins the preferential-attachment generator's contract:
// deterministic for a fixed seed, connected, simple, exactly the promised
// edge count, minimum degree k, and a heavy-tailed hub — properties the
// ba-hubs experiment workloads rely on.
func TestBarabasiAlbert(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{20, 1}, {96, 2}, {200, 3}, {5, 4}} {
		g := BarabasiAlbert(tc.n, tc.k, 7)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d k=%d: not connected", tc.n, tc.k)
		}
		k := tc.k
		if k >= tc.n {
			k = tc.n - 1
		}
		seed := k + 1
		wantM := k*(k+1)/2 + (tc.n-seed)*k
		if g.N() != tc.n || g.M() != wantM {
			t.Fatalf("n=%d k=%d: got n=%d m=%d, want n=%d m=%d", tc.n, tc.k, g.N(), g.M(), tc.n, wantM)
		}
		if g.MinDegree() < k {
			t.Fatalf("n=%d k=%d: min degree %d below attachment degree", tc.n, tc.k, g.MinDegree())
		}
	}

	// Determinism: same seed, same graph; different seed, different graph.
	a := BarabasiAlbert(128, 2, 11)
	b := BarabasiAlbert(128, 2, 11)
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed produced different graphs")
	}
	c := BarabasiAlbert(128, 2, 12)
	if reflect.DeepEqual(a.Edges(), c.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}

	// Heavy tail: the hub of a preferential-attachment graph is far above
	// the mean degree (for n=512, k=2 the mean is ~4; the hub reliably
	// exceeds 4x that).
	g := BarabasiAlbert(512, 2, 3)
	mean := float64(2*g.M()) / float64(g.N())
	if hub := g.MaxDegree(); float64(hub) < 4*mean {
		t.Fatalf("expected a heavy-tailed hub, max degree %d vs mean %.1f", hub, mean)
	}
	// And the tail is not one freak node: the top decile carries well more
	// than its share of edge endpoints.
	var degs []int
	for _, v := range g.Nodes() {
		degs = append(degs, g.Degree(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:len(degs)/10] {
		top += d
	}
	if share := float64(top) / float64(2*g.M()); share < 0.2 {
		t.Fatalf("top decile carries only %.2f of edge endpoints; expected a heavy tail", share)
	}
}
