package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
	if err := g.AddEdge(3, 3); err == nil {
		t.Error("self-loop accepted")
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("n=%d m=%d, want 2,1", g.N(), g.M())
	}
	if !g.HasEdge(2, 1) {
		t.Error("HasEdge not symmetric")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Ring(5)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("failed to remove existing edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("removed missing edge")
	}
	if g.M() != 4 {
		t.Errorf("m=%d, want 4", g.M())
	}
	if g.IsConnected() != true {
		t.Error("ring minus one edge should stay connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(5, 3)
	if e.U != 3 || e.V != 5 {
		t.Errorf("edge not normalised: %v", e)
	}
	if e.Other(3) != 5 || e.Other(5) != 3 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other of non-endpoint should panic")
		}
	}()
	e.Other(7)
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"ring", Ring(7), 7, 7},
		{"path", Path(7), 7, 6},
		{"complete", Complete(6), 6, 15},
		{"star", Star(9), 9, 8},
		{"wheel", Wheel(9), 9, 16},
		{"grid", Grid(3, 4), 12, 17},
		{"torus", Torus(3, 4), 12, 24},
		{"hypercube", Hypercube(4), 16, 32},
		{"bipartite", CompleteBipartite(3, 4), 7, 12},
		{"lollipop", Lollipop(4, 3), 7, 9},
		{"caterpillar", Caterpillar(4, 2), 12, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Errorf("n=%d m=%d, want %d %d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if !tc.g.IsConnected() {
				t.Error("not connected")
			}
			if err := tc.g.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRandomGeneratorsConnectedAndValid(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		gs := map[string]*Graph{
			"gnp-sparse": Gnp(40, 0.05, seed),
			"gnp-dense":  Gnp(30, 0.5, seed),
			"gnm":        Gnm(35, 80, seed),
			"tree":       RandomTree(25, seed),
			"geo":        RandomGeometric(30, 0.3, seed),
			"ba":         BarabasiAlbert(40, 3, seed),
			"hamchords":  HamiltonianPlusChords(30, 20, seed),
			"treechords": TreePlusChords(30, 12, seed),
		}
		for name, g := range gs {
			if !g.IsConnected() {
				t.Errorf("%s seed %d: not connected", name, seed)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Gnp(30, 0.2, 77)
	b := Gnp(30, 0.2, 77)
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("different edge counts for same seed")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("different edges for same seed")
		}
	}
	c := BarabasiAlbert(30, 2, 5)
	d := BarabasiAlbert(30, 2, 5)
	ce, de := c.Edges(), d.Edges()
	for i := range ce {
		if ce[i] != de[i] {
			t.Fatal("BarabasiAlbert not deterministic")
		}
	}
}

func TestGnmEdgeCount(t *testing.T) {
	g := Gnm(20, 50, 3)
	if g.M() != 50 {
		t.Errorf("m=%d, want 50", g.M())
	}
	// Request above the maximum gets clamped to the complete graph.
	g = Gnm(6, 100, 3)
	if g.M() != 15 {
		t.Errorf("m=%d, want 15 (clamped)", g.M())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomTree(12, seed)
		if !g.IsTree() {
			t.Errorf("seed %d: not a tree (n=%d m=%d)", seed, g.N(), g.M())
		}
	}
	if !Path(1).IsTree() {
		t.Error("single node should be a tree")
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	g.AddNode(9)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 || comps[2][0] != 9 {
		t.Errorf("component order wrong: %v", comps)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestComponentsWithout(t *testing.T) {
	g := Star(6)
	comps := g.ComponentsWithout(map[NodeID]bool{0: true})
	if len(comps) != 5 {
		t.Errorf("removing the hub should isolate %d leaves, got %d components", 5, len(comps))
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Path(5)
	if got := g.Eccentricity(0); got != 4 {
		t.Errorf("ecc(0)=%d, want 4", got)
	}
	if got := g.Eccentricity(2); got != 2 {
		t.Errorf("ecc(2)=%d, want 2", got)
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("diameter=%d, want 4", got)
	}
	if got := Ring(8).Diameter(); got != 4 {
		t.Errorf("ring diameter=%d, want 4", got)
	}
}

func TestBFSParents(t *testing.T) {
	g := Grid(3, 3)
	parent := g.BFSParents(0)
	if len(parent) != 9 {
		t.Fatalf("parents for %d nodes, want 9", len(parent))
	}
	// Distances via parents must match eccentricity structure.
	depth := func(v NodeID) int {
		d := 0
		for v != 0 {
			v = parent[v]
			d++
		}
		return d
	}
	if depth(8) != 4 {
		t.Errorf("corner depth = %d, want 4", depth(8))
	}
}

func TestDegreeQueries(t *testing.T) {
	g := Star(8)
	if g.MaxDegree() != 7 || g.MinDegree() != 1 {
		t.Errorf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 7 || h[7] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestRelabelRandomPreservesStructure(t *testing.T) {
	g := Gnp(20, 0.3, 8)
	r, mapping := RelabelRandom(g, 9)
	if r.N() != g.N() || r.M() != g.M() {
		t.Fatal("size changed")
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(mapping[e.U], mapping[e.V]) {
			t.Fatalf("edge %v lost in relabelling", e)
		}
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Gnp(25, 0.2, 10)
	g.AddNode(999) // isolated node must survive
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed size: %v -> %v", g, back)
	}
	ae, be := g.Edges(), back.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("round trip changed edges")
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "x y\n",
		"bad count":  "2 5\n0 1\n",
		"self loop":  "2 1\n0 0\n",
		"dup":        "2 2\n0 1\n1 0\n",
		"bad id":     "2 1\nzero one\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Ring(6)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("clone shares storage with original")
	}
}

// Property: Gnp over random parameters is connected, valid and within the
// full edge range.
func TestQuickGnpInvariants(t *testing.T) {
	f := func(nRaw uint8, pRaw uint8, seed int64) bool {
		n := 2 + int(nRaw%40)
		p := float64(pRaw) / 255
		g := Gnp(n, p, seed)
		if g.N() != n || !g.IsConnected() || g.Validate() != nil {
			return false
		}
		return g.M() >= n-1 && g.M() <= n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a random tree has exactly n-1 edges and is connected.
func TestQuickRandomTree(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := 1 + int(nRaw%50)
		g := RandomTree(n, seed)
		return g.IsTree() && g.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: insertSorted/removeSorted keep neighbour lists consistent under
// random operation sequences.
func TestQuickEdgeChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		type pair struct{ u, v NodeID }
		present := make(map[pair]bool)
		for i := 0; i < 200; i++ {
			u := NodeID(rng.Intn(12))
			v := NodeID(rng.Intn(12))
			if u == v {
				continue
			}
			key := pair{min64(u, v), max64(u, v)}
			if rng.Intn(2) == 0 {
				err := g.AddEdge(u, v)
				if present[key] != (err != nil) {
					return false
				}
				present[key] = true
			} else {
				removed := g.RemoveEdge(u, v)
				if removed != present[key] {
					return false
				}
				delete(present, key)
			}
		}
		return g.Validate() == nil && g.M() == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func min64(a, b NodeID) NodeID {
	if a < b {
		return a
	}
	return b
}

func max64(a, b NodeID) NodeID {
	if a > b {
		return a
	}
	return b
}
