package graph

import (
	"fmt"
	"math"
)

// Partitioning for the shard-partitioned simulation runtime (DESIGN.md §7).
// A Partition splits a snapshot's dense node range into k disjoint shards;
// the sharded engine gives each shard exclusive ownership of its nodes'
// protocol instances, mailboxes and per-link state. Partitions never change
// what a run computes — the sharded engine is delivery-trace-equivalent at
// any shard assignment — they only change how much message traffic crosses
// shard boundaries, which the cut statistics make visible before a run
// (`graphgen -inspect`).
//
// Three deterministic strategies are shipped:
//
//   - PartitionContiguous slices the dense index range into k balanced
//     contiguous blocks. Generators that emit spatially coherent identities
//     (grids row-major, hypercubes Gray-coded) get low cuts for free, and
//     the per-shard node sets are cache-friendly ranges.
//   - PartitionBFS grows k balanced regions breadth-first from evenly
//     spaced seeds, claiming nodes round-robin so no shard starves. On
//     topologies whose identity order scatters neighbours (geometric
//     graphs, preferential attachment) it cuts fewer edges than contiguous
//     slicing.
//   - PartitionRefined runs greedy boundary refinement (label-propagation
//     restricted to cut-reducing moves, inside hard balance bounds) on top
//     of the BFS regions. The BFS grower optimises balance, not cut; the
//     refinement trades a bounded amount of balance (RefineSlack) for
//     strictly fewer cut edges — and cut edges are exactly the cross-shard
//     merge traffic of the sharded runtime.
//
// All are pure functions of the snapshot, so a partition can be computed
// once and shared by every run over that snapshot, like the CSR itself.

// Partition assigns every dense node of a snapshot to exactly one of k
// shards. Immutable after construction and safe for concurrent readers.
type Partition struct {
	owner []int32   // dense node -> shard
	nodes [][]int32 // shard -> its dense nodes, ascending
	cut   int       // undirected edges with endpoints in different shards
	m     int       // total undirected edges of the snapshot
}

// Shards returns the number of shards.
func (p *Partition) Shards() int { return len(p.nodes) }

// N returns the number of partitioned nodes.
func (p *Partition) N() int { return len(p.owner) }

// Owner returns the shard owning dense node i.
func (p *Partition) Owner(i int32) int32 { return p.owner[i] }

// Owners returns the dense-node -> shard table. Shared; do not modify.
func (p *Partition) Owners() []int32 { return p.owner }

// Nodes returns the dense nodes of shard s in ascending order. Shared; do
// not modify.
func (p *Partition) Nodes(s int) []int32 { return p.nodes[s] }

// CutEdges returns the number of undirected edges whose endpoints live in
// different shards — every message on such an edge crosses a shard boundary.
func (p *Partition) CutEdges() int { return p.cut }

// CutFraction returns CutEdges over the total edge count (0 for an edgeless
// snapshot): the fraction of traffic that is cross-shard under uniform load.
func (p *Partition) CutFraction() float64 {
	if p.m == 0 {
		return 0
	}
	return float64(p.cut) / float64(p.m)
}

// clampShards normalises a requested shard count: at least 1, at most n
// (every shard must own a node on non-empty snapshots).
func clampShards(n, k int) int {
	if k < 1 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	return k
}

// shardTargets returns the balanced per-shard sizes: they differ by at most
// one and sum to n.
func shardTargets(n, k int) []int {
	targets := make([]int, k)
	base, rem := n/k, n%k
	for s := range targets {
		targets[s] = base
		if s < rem {
			targets[s]++
		}
	}
	return targets
}

// finishPartition builds the shard node lists and cut statistics from a
// complete owner assignment.
func finishPartition(c *CSR, owner []int32, k int) *Partition {
	p := &Partition{owner: owner, nodes: make([][]int32, k), m: c.M()}
	sizes := make([]int, k)
	for _, s := range owner {
		sizes[s]++
	}
	for s := 0; s < k; s++ {
		p.nodes[s] = make([]int32, 0, sizes[s])
	}
	for i := range owner {
		p.nodes[owner[i]] = append(p.nodes[owner[i]], int32(i))
	}
	for i := range owner {
		for _, j := range c.Neighbors(int32(i)) {
			if int32(i) < j && owner[i] != owner[j] {
				p.cut++
			}
		}
	}
	return p
}

// PartitionNamed builds a partition by strategy name — the config-file
// surface of the networked deployment plane, where a topology file names
// how the node range is assigned to processes. Valid names are
// "contiguous" (default for ""), "bfs" and "refined".
func PartitionNamed(c *CSR, strategy string, k int) (*Partition, error) {
	switch strategy {
	case "", "contiguous":
		return PartitionContiguous(c, k), nil
	case "bfs":
		return PartitionBFS(c, k), nil
	case "refined":
		return PartitionRefined(c, k), nil
	default:
		return nil, fmt.Errorf("graph: unknown partition strategy %q (want contiguous, bfs or refined)", strategy)
	}
}

// PartitionContiguous splits the dense index range into k balanced
// contiguous blocks: shard s owns one run of consecutive dense indices, and
// block sizes differ by at most one node.
func PartitionContiguous(c *CSR, k int) *Partition {
	n := c.N()
	k = clampShards(n, k)
	owner := make([]int32, n)
	targets := shardTargets(n, k)
	at := 0
	for s := 0; s < k; s++ {
		for range targets[s] {
			owner[at] = int32(s)
			at++
		}
	}
	return finishPartition(c, owner, k)
}

// PartitionBFS grows k balanced regions breadth-first from k evenly spaced
// seed nodes. Shards claim unowned nodes round-robin (one node per shard
// per turn) from their BFS frontier, falling back to the lowest unclaimed
// dense index when a frontier is exhausted (disconnected graphs, walled-in
// regions), so every shard ends at its balanced target size. The result is
// a pure function of the snapshot: deterministic across runs and machines.
func PartitionBFS(c *CSR, k int) *Partition {
	n := c.N()
	k = clampShards(n, k)
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	targets := shardTargets(n, k)
	sizes := make([]int, k)
	queues := make([][]int32, k)
	heads := make([]int, k)
	for s := 0; s < k; s++ {
		// Seeds floor(s·n/k) are distinct for k <= n and spread across the
		// identity range, which correlates with topology for the structured
		// generators.
		queues[s] = append(queues[s], int32(s*n/k))
	}
	cursor := int32(0) // lowest possibly-unclaimed dense index
	for claimed := 0; claimed < n; {
		for s := 0; s < k && claimed < n; s++ {
			if sizes[s] >= targets[s] {
				continue
			}
			v := int32(-1)
			for heads[s] < len(queues[s]) {
				u := queues[s][heads[s]]
				heads[s]++
				if owner[u] < 0 {
					v = u
					break
				}
			}
			if v < 0 {
				for cursor < int32(n) && owner[cursor] >= 0 {
					cursor++
				}
				v = cursor
			}
			owner[v] = int32(s)
			sizes[s]++
			claimed++
			for _, w := range c.Neighbors(v) {
				if owner[w] < 0 {
					queues[s] = append(queues[s], w)
				}
			}
		}
	}
	return finishPartition(c, owner, k)
}

// RefineSlack bounds how far PartitionRefined may unbalance a shard from
// its balanced target size, as the divisor of the target: a shard of
// balanced size t stays within [t - max(1, t/RefineSlack),
// t + max(1, t/RefineSlack)] nodes. The slack is what the refinement is
// allowed to spend: every move it buys strictly reduces the cut.
const RefineSlack = 16

// refineSlackFor returns the absolute node slack for a balanced target t.
func refineSlackFor(t int) int {
	s := t / RefineSlack
	if s < 1 {
		s = 1
	}
	return s
}

// refinePasses caps the boundary-refinement sweeps. Each sweep only
// accepts strictly cut-reducing moves, so the cut is monotone decreasing
// and the loop terminates regardless; the cap bounds worst-case work on
// adversarial shapes. In practice grids and random graphs converge in a
// handful of sweeps.
const refinePasses = 12

// PartitionRefined builds a cut-minimizing partition: the balanced BFS
// regions of PartitionBFS, improved by deterministic greedy boundary
// refinement. Sweeps visit nodes in ascending dense order; a node moves to
// the neighbouring shard holding the most of its neighbours when that move
// strictly reduces the cut and both shards stay inside their balance
// bounds (±max(1, target/RefineSlack) of the balanced target). Ties prefer
// the lowest shard index, so the result is a pure function of the snapshot
// — deterministic across runs, machines and GOMAXPROCS.
//
// The starting point and the move rule give two guarantees the sharded
// runtime leans on: the cut never exceeds PartitionBFS's cut on the same
// snapshot, and shard sizes stay within the RefineSlack tolerance of
// balanced.
func PartitionRefined(c *CSR, k int) *Partition {
	n := c.N()
	k = clampShards(n, k)
	if k == 1 {
		return PartitionContiguous(c, k)
	}
	base := PartitionBFS(c, k)
	owner := make([]int32, n)
	copy(owner, base.Owners())
	targets := shardTargets(n, k)
	sizes := make([]int, k)
	lo := make([]int, k)
	hi := make([]int, k)
	for s := 0; s < k; s++ {
		sizes[s] = len(base.Nodes(s))
		slack := refineSlackFor(targets[s])
		lo[s] = targets[s] - slack
		if lo[s] < 1 {
			lo[s] = 1 // a shard must never drain empty
		}
		hi[s] = targets[s] + slack
	}
	// Per-sweep scratch: neighbour counts per shard, reset via the touched
	// list so a sweep is O(sum degrees), not O(n·k).
	cnt := make([]int, k)
	touched := make([]int32, 0, k)
	for pass := 0; pass < refinePasses; pass++ {
		moved := 0
		for v := int32(0); int(v) < n; v++ {
			own := owner[v]
			if sizes[own] <= lo[own] {
				continue // moving v would underfill its shard
			}
			for _, w := range c.Neighbors(v) {
				s := owner[w]
				if cnt[s] == 0 {
					touched = append(touched, s)
				}
				cnt[s]++
			}
			best := own
			bestGain := 0
			for _, s := range touched {
				if s == own || sizes[s] >= hi[s] {
					continue
				}
				// Moving v from own to s removes cnt[s] cut edges and
				// creates cnt[own]: the gain is the net cut reduction.
				gain := cnt[s] - cnt[own]
				if gain > bestGain || (gain == bestGain && gain > 0 && s < best) {
					best, bestGain = s, gain
				}
			}
			if bestGain > 0 {
				sizes[own]--
				sizes[best]++
				owner[v] = best
				moved++
			}
			for _, s := range touched {
				cnt[s] = 0
			}
			touched = touched[:0]
		}
		if moved == 0 {
			break
		}
	}
	return finishPartition(c, owner, k)
}

// Sizes returns the per-shard node counts.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.Shards())
	for s := range p.nodes {
		sizes[s] = len(p.nodes[s])
	}
	return sizes
}

// Imbalance returns the largest shard size over the balanced mean size
// (1.0 = perfectly balanced; 1.10 = the biggest shard is 10% over its fair
// share — the straggler factor of a window-parallel round).
func (p *Partition) Imbalance() float64 {
	n := p.N()
	k := p.Shards()
	if n == 0 || k == 0 {
		return 1
	}
	max := 0
	for s := range p.nodes {
		if len(p.nodes[s]) > max {
			max = len(p.nodes[s])
		}
	}
	return float64(max) * float64(k) / float64(n)
}

// BoundaryNodes returns, per shard, how many of its nodes have at least
// one neighbour in a different shard. Boundary nodes are the nodes whose
// sends can cross shards — together with CutEdges they describe the merge
// traffic a partition induces on the sharded runtime.
func (p *Partition) BoundaryNodes(c *CSR) []int {
	counts := make([]int, p.Shards())
	for i := range p.owner {
		for _, j := range c.Neighbors(int32(i)) {
			if p.owner[i] != p.owner[j] {
				counts[p.owner[i]]++
				break
			}
		}
	}
	return counts
}

// Validate checks that p is a complete partition of c's dense node range:
// every node owned by exactly one in-range shard, node lists ascending and
// consistent with the owner table, and no shard empty on a non-empty
// snapshot.
func (p *Partition) Validate(c *CSR) error {
	n := c.N()
	if len(p.owner) != n {
		return fmt.Errorf("graph: partition covers %d nodes, snapshot has %d", len(p.owner), n)
	}
	k := p.Shards()
	if k < 1 || (n > 0 && k > n) {
		return fmt.Errorf("graph: partition has %d shards for %d nodes", k, n)
	}
	seen := 0
	for s := 0; s < k; s++ {
		if n > 0 && len(p.nodes[s]) == 0 {
			return fmt.Errorf("graph: partition shard %d is empty", s)
		}
		prev := int32(math.MinInt32)
		for _, v := range p.nodes[s] {
			if v <= prev || int(v) >= n {
				return fmt.Errorf("graph: partition shard %d node list not ascending in range", s)
			}
			if p.owner[v] != int32(s) {
				return fmt.Errorf("graph: partition owner table disagrees with shard %d at node %d", s, v)
			}
			prev = v
			seen++
		}
	}
	if seen != n {
		return fmt.Errorf("graph: partition shard lists cover %d of %d nodes", seen, n)
	}
	return nil
}
