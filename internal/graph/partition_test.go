package graph

import (
	"reflect"
	"testing"
)

// checkPartition asserts the structural invariants every strategy must
// satisfy: complete coverage, balance within one node, ascending shard
// lists, owner/list consistency and brute-force-correct cut statistics.
func checkPartition(t *testing.T, c *CSR, p *Partition, wantShards int) {
	t.Helper()
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	if p.Shards() != wantShards {
		t.Fatalf("got %d shards, want %d", p.Shards(), wantShards)
	}
	n := c.N()
	lo, hi := n, 0
	total := 0
	for s := 0; s < p.Shards(); s++ {
		sz := len(p.Nodes(s))
		total += sz
		if sz < lo {
			lo = sz
		}
		if sz > hi {
			hi = sz
		}
	}
	if total != n {
		t.Fatalf("shards cover %d of %d nodes", total, n)
	}
	if hi-lo > 1 {
		t.Fatalf("unbalanced shards: sizes span [%d, %d]", lo, hi)
	}
	cut := 0
	for i := 0; i < n; i++ {
		for _, j := range c.Neighbors(int32(i)) {
			if int32(i) < j && p.Owner(int32(i)) != p.Owner(j) {
				cut++
			}
		}
	}
	if cut != p.CutEdges() {
		t.Fatalf("cut edges %d, brute force says %d", p.CutEdges(), cut)
	}
	wantFrac := 0.0
	if c.M() > 0 {
		wantFrac = float64(cut) / float64(c.M())
	}
	if p.CutFraction() != wantFrac {
		t.Fatalf("cut fraction %v, want %v", p.CutFraction(), wantFrac)
	}
}

func TestPartitionInvariants(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":   Ring(17),
		"grid":   Grid(9, 11),
		"gnm":    Gnm(64, 200, 5),
		"ba":     BarabasiAlbert(60, 2, 9),
		"geo":    RandomGeometric(50, 0.3, 4),
		"single": Ring(3),
	}
	for name, g := range graphs {
		c := g.Compile()
		for _, k := range []int{1, 2, 3, 4, 7} {
			want := k
			if want > c.N() {
				want = c.N()
			}
			t.Run(name, func(t *testing.T) {
				checkPartition(t, c, PartitionContiguous(c, k), want)
				checkPartition(t, c, PartitionBFS(c, k), want)
			})
		}
	}
}

// checkRefined asserts the invariants PartitionRefined promises: a valid
// partition, every shard within the RefineSlack balance tolerance of its
// balanced target, and a cut no worse than PartitionBFS on the same
// snapshot.
func checkRefined(t *testing.T, c *CSR, k int) *Partition {
	t.Helper()
	p := PartitionRefined(c, k)
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	n := c.N()
	eff := p.Shards()
	for s, sz := range p.Sizes() {
		target := n / eff
		if s < n%eff {
			target++
		}
		slack := target / RefineSlack
		if slack < 1 {
			slack = 1
		}
		if sz < target-slack || sz > target+slack {
			t.Fatalf("k=%d shard %d: size %d outside balance bounds [%d, %d]",
				k, s, sz, target-slack, target+slack)
		}
	}
	if bfs := PartitionBFS(c, k); p.CutEdges() > bfs.CutEdges() {
		t.Fatalf("k=%d: refined cut %d exceeds BFS cut %d", k, p.CutEdges(), bfs.CutEdges())
	}
	return p
}

// TestPartitionRefinedInvariants runs the refined strategy over the
// generator corpus: valid single ownership, balance within tolerance and
// cut <= BFS at every shard count.
func TestPartitionRefinedInvariants(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":   Ring(17),
		"grid":   Grid(16, 16),
		"gnm":    Gnm(128, 400, 5),
		"ba":     BarabasiAlbert(120, 2, 9),
		"geo":    RandomGeometric(50, 0.3, 4),
		"single": Ring(3),
	}
	for name, g := range graphs {
		c := g.Compile()
		for _, k := range []int{1, 2, 3, 4, 7, 8} {
			t.Run(name, func(t *testing.T) {
				checkRefined(t, c, k)
			})
		}
	}
}

// TestPartitionRefinedDeterministic pins that refinement is a pure
// function of the snapshot — identical owners across repeated and
// concurrent construction (the sharded runtime's determinism depends on
// every process computing the same partition).
func TestPartitionRefinedDeterministic(t *testing.T) {
	c := RandomGeometric(90, 0.25, 7).Compile()
	for _, k := range []int{2, 4, 7} {
		want := PartitionRefined(c, k).Owners()
		results := make([][]int32, 8)
		done := make(chan int)
		for i := range results {
			go func(i int) {
				results[i] = PartitionRefined(c, k).Owners()
				done <- i
			}(i)
		}
		for range results {
			<-done
		}
		for i, got := range results {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: concurrent construction %d diverged", k, i)
			}
		}
	}
}

// TestPartitionRefinedImprovesGrid checks the point of refinement on a
// topology with an obvious good answer: on a grid the refined cut should
// strictly beat BFS growth, which ignores cut size entirely.
func TestPartitionRefinedImprovesGrid(t *testing.T) {
	c := Grid(32, 32).Compile()
	for _, k := range []int{4, 8} {
		ref := PartitionRefined(c, k)
		bfs := PartitionBFS(c, k)
		if ref.CutEdges() >= bfs.CutEdges() {
			t.Errorf("k=%d: refined cut %d does not improve on BFS cut %d",
				k, ref.CutEdges(), bfs.CutEdges())
		}
	}
}

// TestPartitionStats exercises the inspection helpers against brute force.
func TestPartitionStats(t *testing.T) {
	c := Grid(10, 10).Compile()
	p := PartitionRefined(c, 4)
	sizes := p.Sizes()
	total, max := 0, 0
	for s, sz := range sizes {
		if sz != len(p.Nodes(s)) {
			t.Fatalf("Sizes()[%d] = %d, want %d", s, sz, len(p.Nodes(s)))
		}
		total += sz
		if sz > max {
			max = sz
		}
	}
	if total != c.N() {
		t.Fatalf("sizes sum to %d, want %d", total, c.N())
	}
	wantImb := float64(max) * float64(p.Shards()) / float64(c.N())
	if p.Imbalance() != wantImb {
		t.Fatalf("Imbalance() = %v, want %v", p.Imbalance(), wantImb)
	}
	bn := p.BoundaryNodes(c)
	want := make([]int, p.Shards())
	for i := 0; i < c.N(); i++ {
		for _, j := range c.Neighbors(int32(i)) {
			if p.Owner(int32(i)) != p.Owner(j) {
				want[p.Owner(int32(i))]++
				break
			}
		}
	}
	if !reflect.DeepEqual(bn, want) {
		t.Fatalf("BoundaryNodes() = %v, want %v", bn, want)
	}
}

// TestPartitionContiguousRanges pins that contiguous shards are literal
// dense-index ranges in shard order.
func TestPartitionContiguousRanges(t *testing.T) {
	c := Gnm(23, 60, 1).Compile()
	p := PartitionContiguous(c, 4)
	next := int32(0)
	for s := 0; s < p.Shards(); s++ {
		for _, v := range p.Nodes(s) {
			if v != next {
				t.Fatalf("shard %d: node %d breaks the contiguous range at %d", s, v, next)
			}
			next++
		}
	}
}

// TestPartitionDeterministic pins that both strategies are pure functions
// of the snapshot: repeated construction is identical.
func TestPartitionDeterministic(t *testing.T) {
	c := RandomGeometric(80, 0.25, 7).Compile()
	for _, k := range []int{2, 5} {
		a, b := PartitionBFS(c, k), PartitionBFS(c, k)
		if !reflect.DeepEqual(a.Owners(), b.Owners()) {
			t.Fatalf("k=%d: BFS partition not deterministic", k)
		}
		ca, cb := PartitionContiguous(c, k), PartitionContiguous(c, k)
		if !reflect.DeepEqual(ca.Owners(), cb.Owners()) {
			t.Fatalf("k=%d: contiguous partition not deterministic", k)
		}
	}
}

// TestPartitionBFSLocality checks the point of the BFS strategy on a
// topology whose identity order matches space: on a grid, BFS-grown
// regions must not cut more than a connected banding would, and both
// strategies should beat a round-robin scatter by a wide margin.
func TestPartitionBFSLocality(t *testing.T) {
	c := Grid(20, 20).Compile()
	k := 4
	bfs := PartitionBFS(c, k)
	cont := PartitionContiguous(c, k)
	// Round-robin scatter: worst-case locality baseline.
	scatterCut := 0
	for i := 0; i < c.N(); i++ {
		for _, j := range c.Neighbors(int32(i)) {
			if int32(i) < j && i%k != int(j)%k {
				scatterCut++
			}
		}
	}
	for name, p := range map[string]*Partition{"bfs": bfs, "contiguous": cont} {
		if p.CutEdges()*2 >= scatterCut {
			t.Errorf("%s partition cuts %d of %d edges — no better than half the scatter baseline %d",
				name, p.CutEdges(), c.M(), scatterCut)
		}
	}
}

// TestPartitionDisconnected pins the frontier fallback: on a disconnected
// graph every shard still reaches its balanced size.
func TestPartitionDisconnected(t *testing.T) {
	g := New()
	// Two disjoint 8-rings.
	for r := 0; r < 2; r++ {
		base := NodeID(r * 100)
		for i := 0; i < 8; i++ {
			if err := g.AddEdge(base+NodeID(i), base+NodeID((i+1)%8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := g.Compile()
	checkPartition(t, c, PartitionBFS(c, 3), 3)
	checkPartition(t, c, PartitionContiguous(c, 3), 3)
}
