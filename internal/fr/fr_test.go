package fr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdegst/internal/exact"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	m := n - 1 + rng.Intn(2*n)
	return graph.Gnm(n, m, rng.Int63())
}

func starInitial(t testing.TB, g *graph.Graph) *tree.Tree {
	t.Helper()
	t0, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	return t0
}

func TestTwinNeverIncreasesDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		g := randomConnected(rng, 8+rng.Intn(30))
		t0 := starInitial(t, g)
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi} {
			got, stats, err := Twin(g, t0, mode)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(g); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			if stats.FinalDegree > stats.InitialDegree {
				t.Fatalf("iter %d %v: degree rose %d -> %d", i, mode, stats.InitialDegree, stats.FinalDegree)
			}
			if stats.Rounds < 1 {
				t.Fatalf("iter %d: rounds = %d", i, stats.Rounds)
			}
		}
	}
}

// TestTwinModesReachLocalOptimum checks each mode's terminal condition:
// Single and Hybrid stop at full local optimality (no usable edge across any
// maximum-degree node); Multi stops at the weaker per-owner condition (no
// usable edge between two fragments of the same owner — DESIGN.md dev. 4).
func TestTwinModesReachLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		g := randomConnected(rng, 10+rng.Intn(20))
		t0 := starInitial(t, g)
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Hybrid} {
			tr, _, err := Twin(g, t0, mode)
			if err != nil {
				t.Fatal(err)
			}
			if !isLocallyOptimalSingle(g, tr) {
				t.Errorf("iter %d: %v result is not locally optimal", i, mode)
			}
		}
		multi, _, err := Twin(g, t0, mdst.Multi)
		if err != nil {
			t.Fatal(err)
		}
		if !isLocallyOptimalMulti(g, multi) {
			t.Errorf("iter %d: multi result violates its terminal condition", i)
		}
	}
}

// isLocallyOptimalMulti checks the Multi-mode terminal condition: rooted at
// the minimum-identity maximum-degree node, no owner has a usable edge
// between two of its own T-S fragments.
func isLocallyOptimalMulti(g *graph.Graph, tr *tree.Tree) bool {
	k, maxNodes := tr.MaxDegree()
	if k <= 2 {
		return true
	}
	work := tr.Clone()
	work.Reroot(maxNodes[0])
	inS := make(map[graph.NodeID]bool)
	for _, v := range maxNodes {
		inS[v] = true
	}
	type fragInfo struct{ owner, root graph.NodeID }
	frag := make(map[graph.NodeID]fragInfo)
	var walk func(v graph.NodeID)
	walk = func(v graph.NodeID) {
		for _, c := range work.Children[v] {
			if !inS[c] {
				if inS[v] {
					frag[c] = fragInfo{owner: v, root: c}
				} else {
					frag[c] = frag[v]
				}
			}
			walk(c)
		}
	}
	walk(work.Root)
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if work.HasEdge(a, b) || inS[a] || inS[b] {
			continue
		}
		fa, fb := frag[a], frag[b]
		if fa.owner == fb.owner && fa.root != fb.root &&
			work.Degree(a) <= k-2 && work.Degree(b) <= k-2 {
			return false
		}
	}
	return true
}

// isLocallyOptimalSingle checks the Single-mode terminal condition directly:
// no maximum-degree node p has a usable edge between two components of T-p.
func isLocallyOptimalSingle(g *graph.Graph, tr *tree.Tree) bool {
	k, maxNodes := tr.MaxDegree()
	if k <= 2 {
		return true
	}
	for _, p := range maxNodes {
		work := tr.Clone()
		work.Reroot(p)
		frag := make(map[graph.NodeID]graph.NodeID)
		for _, c := range work.Children[p] {
			for _, x := range work.SubtreeNodes(c) {
				frag[x] = c
			}
		}
		for _, e := range g.Edges() {
			a, b := e.U, e.V
			if a == p || b == p || work.HasEdge(a, b) {
				continue
			}
			if frag[a] == frag[b] {
				continue
			}
			if work.Degree(a) <= k-2 && work.Degree(b) <= k-2 {
				return false
			}
		}
	}
	return true
}

func TestFurerRaghavachariQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	worstGap := 0
	for i := 0; i < 40; i++ {
		g := randomConnected(rng, 6+rng.Intn(8)) // exact-solvable sizes
		t0 := starInitial(t, g)
		got, stats, err := FurerRaghavachari(g, t0)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(g); err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.MinDegree(g)
		if err != nil {
			t.Fatal(err)
		}
		gap := stats.FinalDegree - opt
		if gap > worstGap {
			worstGap = gap
		}
		if gap < 0 {
			t.Fatalf("iter %d: better than optimal?! %d < %d", i, stats.FinalDegree, opt)
		}
	}
	// The classic guarantee is Δ*+1; the plain variant can rarely exceed it
	// on adversarial instances, but on these random graphs it should not.
	if worstGap > 1 {
		t.Errorf("worst gap = %d, want <= 1 on random graphs", worstGap)
	}
}

func TestStrictNeverWorseThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 30; i++ {
		g := randomConnected(rng, 8+rng.Intn(14))
		t0 := starInitial(t, g)
		plain, ps, err := FurerRaghavachari(g, t0)
		if err != nil {
			t.Fatal(err)
		}
		strict, ss, err := Strict(g, t0)
		if err != nil {
			t.Fatal(err)
		}
		if err := plain.Validate(g); err != nil {
			t.Fatal(err)
		}
		if err := strict.Validate(g); err != nil {
			t.Fatal(err)
		}
		if ss.FinalDegree > ps.FinalDegree {
			t.Errorf("iter %d: strict %d worse than plain %d", i, ss.FinalDegree, ps.FinalDegree)
		}
	}
}

func TestStrictWithinOneOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		g := randomConnected(rng, 6+rng.Intn(8))
		t0 := starInitial(t, g)
		_, ss, err := Strict(g, t0)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := exact.MinDegree(g)
		if err != nil {
			t.Fatal(err)
		}
		if ss.FinalDegree > opt+1 {
			t.Errorf("iter %d: strict degree %d > Δ*+1 = %d", i, ss.FinalDegree, opt+1)
		}
	}
}

func TestTwinOnChain(t *testing.T) {
	g := graph.Ring(9)
	t0, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Twin(g, t0, mdst.Single)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 || stats.Swaps != 0 {
		t.Errorf("rounds=%d swaps=%d", stats.Rounds, stats.Swaps)
	}
	if !got.SameEdges(t0) {
		t.Error("chain tree was modified")
	}
}

func TestTwinRejectsBadTree(t *testing.T) {
	g := graph.Ring(5)
	bad := tree.New(0)
	if _, _, err := Twin(g, bad, mdst.Single); err == nil {
		t.Error("non-spanning tree accepted")
	}
}

// Property: for random graphs and random initial spanning trees, the twin
// keeps a valid spanning tree, never raises the degree, and its Multi-mode
// round count is at most the Single-mode one (concurrent exchanges).
func TestQuickTwinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 6+rng.Intn(24))
		t0, err := spanning.RandomST(g, seed)
		if err != nil {
			return false
		}
		single, s1, err := Twin(g, t0, mdst.Single)
		if err != nil || single.Validate(g) != nil {
			return false
		}
		multi, s2, err := Twin(g, t0, mdst.Multi)
		if err != nil || multi.Validate(g) != nil {
			return false
		}
		if s1.FinalDegree > s1.InitialDegree || s2.FinalDegree > s2.InitialDegree {
			return false
		}
		// Multi applies at least as many exchanges per round.
		return s2.Rounds <= s1.Rounds+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func ExampleTwin() {
	g := graph.Wheel(8)
	t0, _ := spanning.StarTree(g)
	improved, stats, _ := Twin(g, t0, mdst.Single)
	deg, _ := improved.MaxDegree()
	fmt.Println("initial:", stats.InitialDegree, "final:", deg)
	// Output: initial: 7 final: 2
}
