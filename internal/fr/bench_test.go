package fr

import (
	"fmt"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/spanning"
)

// BenchmarkTwinModes measures the sequential oracle across modes — the fast
// path large sweeps use instead of simulation.
func BenchmarkTwinModes(b *testing.B) {
	g := graph.Gnm(256, 768, 3)
	t0, err := spanning.StarTree(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Twin(g, t0, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFurerRaghavachari measures the classic baseline and its strict
// extension.
func BenchmarkFurerRaghavachari(b *testing.B) {
	for _, n := range []int{64, 128} {
		g := graph.Gnm(n, 3*n, 5)
		t0, err := spanning.StarTree(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := FurerRaghavachari(g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("strict/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Strict(g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
