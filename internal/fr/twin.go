// Package fr provides the sequential counterparts of the distributed
// improvement protocol:
//
//   - Twin: a step-for-step sequential replica of internal/mdst with
//     identical tie-breaking, used as a differential-testing oracle and to
//     compute k*, the degree of the paper's Locally Optimal Tree, which the
//     complexity bounds O((k-k*)·m) and O((k-k*)·n) are stated against.
//   - FurerRaghavachari: the classic sequential local search the paper
//     builds on (reference [3]), using global cycle information.
//   - Strict: an extended variant that also clears degree-(k-1) blockers,
//     reaching the local optimality condition of FR's Theorem 1.
package fr

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/tree"
)

// TwinStats mirrors the distributed run's round/exchange accounting.
type TwinStats struct {
	Rounds        int
	Swaps         int
	InitialDegree int
	FinalDegree   int
}

// twinReport matches internal/mdst's edge report ordering exactly; u and v
// are dense node indices, whose order is the NodeID order, so the dense
// comparison breaks ties exactly like the distributed protocol's
// identity-based one.
type twinReport struct {
	u, v   int32
	du, dv int
}

func (r twinReport) key() [4]int64 {
	maxd, mind := r.du, r.dv
	if mind > maxd {
		maxd, mind = mind, maxd
	}
	minID, maxID := r.u, r.v
	if minID > maxID {
		minID, maxID = maxID, minID
	}
	return [4]int64{int64(maxd), int64(mind), int64(minID), int64(maxID)}
}

func (r twinReport) better(o twinReport) bool {
	a, b := r.key(), o.key()
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Twin runs the sequential replica of the distributed protocol in the given
// mode, starting from the initial tree (which is not modified), and returns
// the improved tree. For equal inputs its result tree (including root
// placement and edge orientation) is identical to the distributed
// protocol's.
func Twin(g *graph.Graph, initial *tree.Tree, mode mdst.Mode) (*tree.Tree, TwinStats, error) {
	return TwinTarget(g, initial, mode, 0)
}

// TwinTarget is Twin with the degree-target stop used by mdst.RunTarget.
func TwinTarget(g *graph.Graph, initial *tree.Tree, mode mdst.Mode, target int) (*tree.Tree, TwinStats, error) {
	return TwinTargetSnapshot(g.Compile(), initial, mode, target)
}

// TwinSnapshot is Twin over a pre-compiled snapshot: the experiment harness
// compiles each workload once per table and shares the snapshot across
// trials.
func TwinSnapshot(c *graph.CSR, initial *tree.Tree, mode mdst.Mode) (*tree.Tree, TwinStats, error) {
	return TwinTargetSnapshot(c, initial, mode, 0)
}

// TwinTargetSnapshot runs the sequential replica entirely on the dense-index
// substrate: the tree is the slice-backed tree.Dense, fragments and
// exhaustion flags are slices over the snapshot's index, and the edge scan
// walks the CSR adjacency — no NodeID map is touched after setup.
func TwinTargetSnapshot(c *graph.CSR, initial *tree.Tree, mode mdst.Mode, target int) (*tree.Tree, TwinStats, error) {
	if err := initial.Validate(c.Source()); err != nil {
		return nil, TwinStats{}, fmt.Errorf("fr: initial tree invalid: %w", err)
	}
	stop := 2
	if target > 2 {
		stop = target
	}
	d, err := tree.FromTree(initial, c.Index())
	if err != nil {
		return nil, TwinStats{}, fmt.Errorf("fr: %w", err)
	}
	stats := TwinStats{}
	n := c.N()
	tw := &twinRun{
		c:         c,
		d:         d,
		exhausted: make([]bool, n),
		frag:      make([]int32, n),
		fragOwner: make([]int32, n),
		fragRoot:  make([]int32, n),
		inS:       make([]bool, n),
		stack:     make([]int32, 0, n),
	}
	stats.InitialDegree, tw.maxBuf = d.MaxDegree(tw.maxBuf)
	phase := mdst.Multi
	if mode == mdst.Single {
		phase = mdst.Single
	}

	for {
		stats.Rounds++
		k, maxNodes := d.MaxDegree(tw.maxBuf)
		tw.maxBuf = maxNodes
		if k <= stop {
			break
		}
		if phase == mdst.Single {
			// SearchDegree: minimum identity among eligible nodes (dense
			// ascending == NodeID ascending).
			p := int32(-1)
			for _, v := range maxNodes {
				if !tw.exhausted[v] {
					p = v
					break
				}
			}
			if p < 0 {
				break // all maximum-degree nodes exhausted
			}
			d.Reroot(p) // MoveRoot (path reversal)
			if tw.roundSingle(p, k) {
				stats.Swaps++
				clear(tw.exhausted)
			} else {
				tw.exhausted[p] = true
			}
			continue
		}
		// Multi phase: every maximum-degree node exchanges concurrently.
		d.Reroot(maxNodes[0])
		swaps := tw.roundMulti(k)
		stats.Swaps += swaps
		if swaps == 0 {
			if mode == mdst.Hybrid {
				phase = mdst.Single
				continue
			}
			break
		}
	}
	out := d.ToTree()
	stats.FinalDegree, _ = out.MaxDegree()
	return out, stats, nil
}

// twinRun bundles the per-run dense scratch reused across rounds.
type twinRun struct {
	c         *graph.CSR
	d         *tree.Dense
	exhausted []bool
	frag      []int32 // single rounds: fragment (child of p) of every node
	fragOwner []int32 // multi rounds: owning S-node per fragment member
	fragRoot  []int32 // multi rounds: fragment root per member
	inS       []bool
	stack     []int32
	maxBuf    []int32
}

const noFrag int32 = -1

// roundSingle mirrors one Single-mode round at acting root p: fragments are
// p's child subtrees; the best usable outgoing edge (if any) is applied.
func (tw *twinRun) roundSingle(p int32, k int) bool {
	c, d := tw.c, tw.d
	for i := range tw.frag {
		tw.frag[i] = noFrag
	}
	for _, child := range d.Children(p) {
		tw.stack = d.WalkSubtree(child, tw.stack[:0])
		for _, x := range tw.stack {
			tw.frag[x] = child
		}
	}
	var best twinReport
	found := false
	for a := int32(0); int(a) < c.N(); a++ {
		for _, b := range c.Neighbors(a) {
			if b <= a || d.HasEdge(a, b) {
				continue
			}
			if a == p || b == p {
				continue
			}
			fa, fb := tw.frag[a], tw.frag[b]
			if fa == fb {
				continue
			}
			da, db := d.Degree(a), d.Degree(b)
			if da > k-2 || db > k-2 {
				continue
			}
			// Recording side: the endpoint in the smaller fragment identity.
			u, v, du, dv := a, b, da, db
			if fb < fa {
				u, v, du, dv = b, a, db, da
			}
			rep := twinReport{u: u, v: v, du: du, dv: dv}
			if !found || rep.better(best) {
				best, found = rep, true
			}
		}
	}
	if !found {
		return false
	}
	tw.applySwap(p, tw.frag[best.u], best)
	return true
}

// roundMulti mirrors one Multi-mode round: fragments are the components of
// T minus the maximum-degree set S, each owned by the S-node above it; every
// owner applies its best internal edge. Returns the number of exchanges.
func (tw *twinRun) roundMulti(k int) int {
	c, d := tw.c, tw.d
	clear(tw.inS)
	for _, v := range tw.maxBuf {
		tw.inS[v] = true
	}
	// Walk the tree from the root labelling fragments: a child of an S-node
	// starts a new fragment (owner = that S-node, root = child); a child of
	// a member inherits its fragment. A rootless component (root not in S)
	// has no owner and takes part in no exchange.
	for i := range tw.fragOwner {
		tw.fragOwner[i] = noFrag
		tw.fragRoot[i] = noFrag
	}
	root := d.Root()
	if !tw.inS[root] {
		tw.fragOwner[root] = noFrag
		tw.fragRoot[root] = root
	}
	tw.stack = append(tw.stack[:0], root)
	for len(tw.stack) > 0 {
		v := tw.stack[len(tw.stack)-1]
		tw.stack = tw.stack[:len(tw.stack)-1]
		for _, ch := range d.Children(v) {
			if !tw.inS[ch] {
				if tw.inS[v] {
					tw.fragOwner[ch] = v
					tw.fragRoot[ch] = ch
				} else {
					tw.fragOwner[ch] = tw.fragOwner[v]
					tw.fragRoot[ch] = tw.fragRoot[v]
				}
			}
			tw.stack = append(tw.stack, ch)
		}
	}

	// Best internal edge per owner, owners applied in ascending order.
	type ownerBest struct {
		rep twinReport
		has bool
	}
	best := make(map[int32]*ownerBest) // few owners per round
	var owners []int32
	for a := int32(0); int(a) < c.N(); a++ {
		if tw.inS[a] {
			continue
		}
		for _, b := range c.Neighbors(a) {
			if b <= a || tw.inS[b] || d.HasEdge(a, b) {
				continue
			}
			fa, fb := tw.fragOwner[a], tw.fragOwner[b]
			if fa != fb || fa == noFrag || tw.fragRoot[a] == tw.fragRoot[b] {
				continue
			}
			da, db := d.Degree(a), d.Degree(b)
			if da > k-2 || db > k-2 {
				continue
			}
			u, v, du, dv := a, b, da, db
			if tw.fragRoot[b] < tw.fragRoot[a] {
				u, v, du, dv = b, a, db, da
			}
			rep := twinReport{u: u, v: v, du: du, dv: dv}
			cur := best[fa]
			if cur == nil {
				cur = &ownerBest{}
				best[fa] = cur
				owners = append(owners, fa)
			}
			if !cur.has || rep.better(cur.rep) {
				cur.rep, cur.has = rep, true
			}
		}
	}
	sortInt32s(owners)
	for _, o := range owners {
		rep := best[o].rep
		tw.applySwap(o, tw.fragRoot[rep.u], rep)
	}
	return len(owners)
}

// applySwap performs the exchange exactly as the distributed Update/Child
// chain does: cut the arrival child below the owner, re-root the detached
// subtree at u, reattach under v.
func (tw *twinRun) applySwap(owner, arrival int32, rep twinReport) {
	tw.d.CutChild(owner, arrival)
	tw.d.RerootSubtree(arrival, rep.u)
	tw.d.AttachExisting(rep.v, rep.u)
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ { // insertion sort: owner sets are tiny
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
