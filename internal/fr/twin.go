// Package fr provides the sequential counterparts of the distributed
// improvement protocol:
//
//   - Twin: a step-for-step sequential replica of internal/mdst with
//     identical tie-breaking, used as a differential-testing oracle and to
//     compute k*, the degree of the paper's Locally Optimal Tree, which the
//     complexity bounds O((k-k*)·m) and O((k-k*)·n) are stated against.
//   - FurerRaghavachari: the classic sequential local search the paper
//     builds on (reference [3]), using global cycle information.
//   - Strict: an extended variant that also clears degree-(k-1) blockers,
//     reaching the local optimality condition of FR's Theorem 1.
package fr

import (
	"fmt"
	"sort"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/tree"
)

// TwinStats mirrors the distributed run's round/exchange accounting.
type TwinStats struct {
	Rounds        int
	Swaps         int
	InitialDegree int
	FinalDegree   int
}

// twinReport matches internal/mdst's edge report ordering exactly.
type twinReport struct {
	u, v   graph.NodeID
	du, dv int
}

func (r twinReport) key() [4]int64 {
	maxd, mind := r.du, r.dv
	if mind > maxd {
		maxd, mind = mind, maxd
	}
	minID, maxID := r.u, r.v
	if minID > maxID {
		minID, maxID = maxID, minID
	}
	return [4]int64{int64(maxd), int64(mind), int64(minID), int64(maxID)}
}

func (r twinReport) better(o twinReport) bool {
	a, b := r.key(), o.key()
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Twin runs the sequential replica of the distributed protocol in the given
// mode, starting from a clone of initial, and returns the improved tree.
// For equal inputs its result tree (including root placement and edge
// orientation) is identical to the distributed protocol's.
func Twin(g *graph.Graph, initial *tree.Tree, mode mdst.Mode) (*tree.Tree, TwinStats, error) {
	return TwinTarget(g, initial, mode, 0)
}

// TwinTarget is Twin with the degree-target stop used by mdst.RunTarget.
func TwinTarget(g *graph.Graph, initial *tree.Tree, mode mdst.Mode, target int) (*tree.Tree, TwinStats, error) {
	if err := initial.Validate(g); err != nil {
		return nil, TwinStats{}, fmt.Errorf("fr: initial tree invalid: %w", err)
	}
	stop := 2
	if target > 2 {
		stop = target
	}
	t := initial.Clone()
	stats := TwinStats{}
	stats.InitialDegree, _ = t.MaxDegree()
	exhausted := make(map[graph.NodeID]bool)
	phase := mdst.Multi
	if mode == mdst.Single {
		phase = mdst.Single
	}

	for {
		stats.Rounds++
		k, maxNodes := t.MaxDegree()
		if k <= stop {
			break
		}
		if phase == mdst.Single {
			// SearchDegree: minimum identity among eligible nodes.
			var p graph.NodeID
			found := false
			for _, v := range maxNodes { // ascending
				if !exhausted[v] {
					p = v
					found = true
					break
				}
			}
			if !found {
				break // all maximum-degree nodes exhausted
			}
			t.Reroot(p) // MoveRoot (path reversal)
			if twinRoundSingle(g, t, p, k) {
				stats.Swaps++
				for v := range exhausted {
					delete(exhausted, v)
				}
			} else {
				exhausted[p] = true
			}
			continue
		}
		// Multi phase: every maximum-degree node exchanges concurrently.
		t.Reroot(maxNodes[0])
		n := twinRoundMulti(g, t, k)
		stats.Swaps += n
		if n == 0 {
			if mode == mdst.Hybrid {
				phase = mdst.Single
				continue
			}
			break
		}
	}
	stats.FinalDegree, _ = t.MaxDegree()
	return t, stats, nil
}

// twinRoundSingle mirrors one Single-mode round at acting root p: fragments
// are p's child subtrees; the best usable outgoing edge (if any) is applied.
func twinRoundSingle(g *graph.Graph, t *tree.Tree, p graph.NodeID, k int) bool {
	// Fragment of every node = the child of p whose subtree contains it.
	frag := make(map[graph.NodeID]graph.NodeID, t.N())
	for _, c := range t.Children[p] {
		for _, x := range t.SubtreeNodes(c) {
			frag[x] = c
		}
	}
	best, ok := bestUsableEdge(g, t, k, func(a, b graph.NodeID) (graph.NodeID, graph.NodeID, bool) {
		fa, fb := frag[a], frag[b]
		if a == p || b == p || fa == fb {
			return 0, 0, false
		}
		return fa, fb, true
	})
	if !ok {
		return false
	}
	applySwap(t, p, frag[best.u], best)
	return true
}

// twinRoundMulti mirrors one Multi-mode round: fragments are the components
// of T minus the maximum-degree set S, each owned by the S-node above it;
// every owner applies its best internal edge. Returns the number of
// exchanges applied.
func twinRoundMulti(g *graph.Graph, t *tree.Tree, k int) int {
	inS := make(map[graph.NodeID]bool)
	_, maxNodes := t.MaxDegree()
	for _, v := range maxNodes {
		inS[v] = true
	}
	// Walk the tree from the root labelling fragments: a child of an
	// S-node starts a new fragment (owner = that S-node, root = child); a
	// child of a member inherits its fragment.
	type fragInfo struct{ owner, root graph.NodeID }
	frag := make(map[graph.NodeID]fragInfo, t.N())
	var walk func(v graph.NodeID)
	walk = func(v graph.NodeID) {
		for _, c := range t.Children[v] {
			if !inS[c] {
				if inS[v] {
					frag[c] = fragInfo{owner: v, root: c}
				} else {
					frag[c] = frag[v]
				}
			}
			walk(c)
		}
	}
	if !inS[t.Root] {
		// The root is an owner only if it has maximum degree; otherwise its
		// component has no owner above it and takes part in no exchange.
		frag[t.Root] = fragInfo{owner: noOwner, root: t.Root}
	}
	walk(t.Root)

	// Best internal edge per owner.
	best := make(map[graph.NodeID]twinReport)
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if t.HasEdge(a, b) || inS[a] || inS[b] {
			continue
		}
		fa, fb := frag[a], frag[b]
		if fa.owner != fb.owner || fa.owner == noOwner || fa.root == fb.root {
			continue
		}
		da, db := t.Degree(a), t.Degree(b)
		if da > k-2 || db > k-2 {
			continue
		}
		// Recording side: the endpoint in the smaller fragment identity
		// (owners equal, so smaller fragment root).
		u, v := a, b
		if fb.root < fa.root {
			u, v = b, a
		}
		rep := twinReport{u: u, v: v, du: t.Degree(u), dv: t.Degree(v)}
		if cur, ok := best[fa.owner]; !ok || rep.better(cur) {
			best[fa.owner] = rep
		}
	}
	owners := make([]graph.NodeID, 0, len(best))
	for o := range best {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, o := range owners {
		rep := best[o]
		applySwap(t, o, frag[rep.u].root, rep)
	}
	return len(owners)
}

const noOwner graph.NodeID = -1

// bestUsableEdge scans all non-tree edges, applies the degree filter and the
// caller's fragment predicate, and returns the minimum-key report with u on
// the smaller-fragment side.
func bestUsableEdge(g *graph.Graph, t *tree.Tree, k int, fragOf func(a, b graph.NodeID) (graph.NodeID, graph.NodeID, bool)) (twinReport, bool) {
	var best twinReport
	found := false
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if t.HasEdge(a, b) {
			continue
		}
		fa, fb, ok := fragOf(a, b)
		if !ok {
			continue
		}
		if t.Degree(a) > k-2 || t.Degree(b) > k-2 {
			continue
		}
		u, v := a, b
		if fb < fa {
			u, v = b, a
		}
		rep := twinReport{u: u, v: v, du: t.Degree(u), dv: t.Degree(v)}
		if !found || rep.better(best) {
			best, found = rep, true
		}
	}
	return best, found
}

// applySwap performs the exchange exactly as the distributed Update/Child
// chain does: cut the arrival child below the owner, re-root the detached
// subtree at u, reattach under v.
func applySwap(t *tree.Tree, owner, arrival graph.NodeID, rep twinReport) {
	if err := t.CutChild(owner, arrival); err != nil {
		panic(fmt.Sprintf("fr: %v", err))
	}
	if err := t.RerootSubtree(arrival, rep.u); err != nil {
		panic(fmt.Sprintf("fr: %v", err))
	}
	if err := t.AttachExisting(rep.v, rep.u); err != nil {
		panic(fmt.Sprintf("fr: %v", err))
	}
}
