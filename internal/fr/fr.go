package fr

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/tree"
)

// The classic sequential Fürer–Raghavachari local search (the paper's
// reference [3]): starting from any spanning tree, repeatedly pick a
// non-tree edge whose fundamental cycle passes through a maximum-degree
// vertex while both endpoints have degree at most k-2, and exchange. The
// sequential algorithm sees the whole graph, so unlike the distributed
// protocol it can use any cycle, not only those through an owner's own
// fragments — it is the quality baseline in experiment E2/A4.

// Stats reports a sequential improvement run.
type Stats struct {
	Swaps         int
	InitialDegree int
	FinalDegree   int
}

// FurerRaghavachari improves the initial tree until no exchange can reduce
// a maximum-degree vertex, returning the improved tree rooted at the
// graph's smallest node.
func FurerRaghavachari(g *graph.Graph, initial *tree.Tree) (*tree.Tree, Stats, error) {
	return localSearch(g, initial, false)
}

// Strict additionally clears degree-(k-1) blockers: when no exchange helps a
// maximum-degree vertex, it exchanges at degree-(k-1) vertices on cycles
// whose endpoints have degree at most k-3. Every exchange strictly decreases
// the potential sum of 3^degree, so the search terminates; the result
// satisfies the full local optimality of FR's Theorem 1 more often than the
// plain variant (measured in experiment A4).
func Strict(g *graph.Graph, initial *tree.Tree) (*tree.Tree, Stats, error) {
	return localSearch(g, initial, true)
}

func localSearch(g *graph.Graph, initial *tree.Tree, strict bool) (*tree.Tree, Stats, error) {
	if err := initial.Validate(g); err != nil {
		return nil, Stats{}, fmt.Errorf("fr: initial tree invalid: %w", err)
	}
	st := initial.ToGraph()
	stats := Stats{}
	stats.InitialDegree, _ = initial.MaxDegree()

	for {
		k := st.MaxDegree()
		if k <= 2 {
			break
		}
		if swapAt(g, st, k, k, k-2) {
			stats.Swaps++
			continue
		}
		if strict && k >= 3 && swapAt(g, st, k, k-1, k-3) {
			stats.Swaps++
			continue
		}
		break
	}

	root := g.Nodes()[0]
	t, err := bfsOrient(st, root)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.FinalDegree, _ = t.MaxDegree()
	return t, stats, nil
}

// swapAt looks for a non-tree edge (a,b) with both endpoint degrees at most
// capDeg whose tree path contains a vertex of degree exactly targetDeg, and
// applies the exchange at the first such vertex. Candidate edges are scanned
// in ascending order so the search is deterministic.
func swapAt(g, st *graph.Graph, k, targetDeg, capDeg int) bool {
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if st.HasEdge(a, b) {
			continue
		}
		if st.Degree(a) > capDeg || st.Degree(b) > capDeg {
			continue
		}
		path := treePath(st, a, b)
		for i := 1; i < len(path)-1; i++ {
			if st.Degree(path[i]) == targetDeg {
				// Exchange: remove a cycle edge at the blocked vertex,
				// add (a,b).
				st.RemoveEdge(path[i], path[i-1])
				st.MustAddEdge(a, b)
				return true
			}
		}
	}
	return false
}

// treePath returns the unique path from a to b in the tree graph st.
func treePath(st *graph.Graph, a, b graph.NodeID) []graph.NodeID {
	parent := map[graph.NodeID]graph.NodeID{a: a}
	queue := []graph.NodeID{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == b {
			break
		}
		for _, w := range st.Neighbors(u) {
			if _, ok := parent[w]; !ok {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	var rev []graph.NodeID
	for cur := b; ; cur = parent[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]graph.NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// bfsOrient roots the undirected tree graph at root.
func bfsOrient(st *graph.Graph, root graph.NodeID) (*tree.Tree, error) {
	parent := st.BFSParents(root)
	if len(parent) != st.N() {
		return nil, fmt.Errorf("fr: tree graph not connected")
	}
	return tree.FromParentMap(root, parent)
}
