package apps

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/tree"
)

// Beta synchronizer over a rooted spanning tree — the first application the
// paper lists for trees ("Network Synchronization"). It lets a synchronous
// round-based algorithm run on the asynchronous network: every algorithm
// message is acknowledged; a node is safe for round r once all its round-r
// messages are acknowledged; safety converges up the tree and the root's
// pulse broadcast starts round r+1. Per pulse the tree carries 2(n-1)
// control messages, so the per-node control load is again the tree degree —
// a second reason the paper wants that degree minimal.

// Machine is a node of the synchronous algorithm being simulated. Pulse is
// called once per synchronous round r (1-based) with the messages received
// in round r-1 (empty at round 1); it returns the messages to send in round
// r (keyed by neighbour) and whether this node's part of the computation is
// complete. The synchronizer halts after the first round in which every
// machine is done and no message was sent.
type Machine interface {
	Pulse(round int, recv map[sim.NodeID]int64) (send map[sim.NodeID]int64, done bool)
}

// SyncConfig describes one synchronized execution.
type SyncConfig struct {
	// Tree is the control tree (typically the improved MDegST).
	Tree *tree.Tree
	// NewMachine builds the synchronous algorithm node.
	NewMachine func(id sim.NodeID, neighbors []sim.NodeID) Machine
	// MaxRounds caps the execution; 0 means 4n+16 pulses.
	MaxRounds int
}

// SyncResult reports a synchronized execution.
type SyncResult struct {
	// Rounds is the number of synchronous pulses executed.
	Rounds int
	// Truncated is set when MaxRounds fired before global completion.
	Truncated bool
	// Machines holds the final algorithm states.
	Machines map[sim.NodeID]Machine
	// Report is the raw message accounting (algorithm + control traffic).
	Report *sim.Report
}

// Typed views of the synchronizer wire records (registered with the
// package schema in apps.go; the rounded ones carry the round as payload
// word 0).
type sAlg struct {
	round int
	value int64
}
type sSafe struct {
	round   int
	allDone bool
	sent    int64
}

// syncNode wraps one Machine with the beta synchronizer.
type syncNode struct {
	id        sim.NodeID
	root      bool
	parent    sim.NodeID
	children  []sim.NodeID
	machine   Machine
	maxRounds int

	round      int
	inbox      map[int]map[sim.NodeID]int64 // buffered by round
	ackPending int
	safeKids   int
	sentSelf   int64 // algorithm messages sent this round
	doneSelf   bool
	aggDone    bool
	aggSent    int64
	finished   bool
	truncated  bool
}

// newSyncFactory builds the synchronizer protocol factory.
func newSyncFactory(cfg SyncConfig) sim.Factory {
	t := cfg.Tree
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4*t.N() + 16
	}
	return func(id sim.NodeID, neighbors []sim.NodeID) sim.Protocol {
		n := &syncNode{
			id:        id,
			root:      id == t.Root,
			children:  append([]sim.NodeID(nil), t.Children[id]...),
			machine:   cfg.NewMachine(id, neighbors),
			maxRounds: maxRounds,
			inbox:     make(map[int]map[sim.NodeID]int64),
		}
		if !n.root {
			n.parent = t.Parent[id]
		}
		return n
	}
}

// Init: the root starts pulse 1 and propagates it down the tree.
func (n *syncNode) Init(ctx sim.Context) {
	if n.root {
		n.pulse(ctx, 1)
	}
}

func (n *syncNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	switch m.Op {
	case opSyncPulse:
		n.pulse(ctx, int(m.W[0]))
	case opSyncAlg:
		msg := sAlg{round: int(m.W[0]), value: m.W[1]}
		if msg.round != n.round && msg.round != n.round+1 {
			panic(fmt.Sprintf("sync: node %d in round %d got algorithm message of round %d", n.id, n.round, msg.round))
		}
		box := n.inbox[msg.round]
		if box == nil {
			box = make(map[sim.NodeID]int64)
			n.inbox[msg.round] = box
		}
		box[from] = msg.value
		ctx.Send(from, sim.Msg(opSyncAck, int64(msg.round)))
	case opSyncAck:
		if round := int(m.W[0]); round != n.round {
			panic(fmt.Sprintf("sync: node %d in round %d got ack of round %d", n.id, n.round, round))
		}
		n.ackPending--
		n.maybeSafe(ctx)
	case opSyncSafe:
		msg := sSafe{round: int(m.W[0]), allDone: m.W[1] != 0, sent: m.W[2]}
		if msg.round != n.round {
			panic(fmt.Sprintf("sync: node %d in round %d got safe of round %d", n.id, n.round, msg.round))
		}
		n.safeKids--
		n.aggDone = n.aggDone && msg.allDone
		n.aggSent += msg.sent
		n.maybeSafe(ctx)
	case opSyncHalt:
		n.finished = true
		n.truncated = m.W[0] != 0
		for _, c := range n.children {
			ctx.Send(c, m)
		}
	default:
		panic(fmt.Sprintf("sync: unexpected message %s", m.Kind()))
	}
}

// pulse runs synchronous round r at this node and forwards the pulse down.
func (n *syncNode) pulse(ctx sim.Context, r int) {
	n.round = r
	recv := n.inbox[r-1]
	delete(n.inbox, r-1)
	if recv == nil {
		recv = map[sim.NodeID]int64{}
	}
	send, done := n.machine.Pulse(r, recv)
	n.doneSelf = done
	n.aggDone = done
	n.aggSent = int64(len(send))
	n.sentSelf = int64(len(send))
	n.ackPending = len(send)
	n.safeKids = len(n.children)
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opSyncPulse, int64(r)))
	}
	// Deterministic send order.
	for _, w := range ctx.Neighbors() {
		if v, ok := send[w]; ok {
			ctx.Send(w, sim.Msg(opSyncAlg, int64(r), v))
		}
	}
	n.maybeSafe(ctx)
}

// maybeSafe fires when this node and its whole subtree are safe for the
// current round: all algorithm messages acknowledged, all children safe.
func (n *syncNode) maybeSafe(ctx sim.Context) {
	if n.ackPending > 0 || n.safeKids > 0 {
		return
	}
	n.ackPending = -1 // fire once per round
	if !n.root {
		ctx.Send(n.parent, sim.Msg(opSyncSafe, int64(n.round), sim.B2W(n.aggDone), n.aggSent))
		return
	}
	// Root decision: halt when the algorithm is globally quiet, truncate
	// at the cap, otherwise start the next pulse.
	switch {
	case n.aggDone && n.aggSent == 0:
		n.halt(ctx, false)
	case n.round >= n.maxRounds:
		n.halt(ctx, true)
	default:
		n.pulse(ctx, n.round+1)
	}
}

func (n *syncNode) halt(ctx sim.Context, truncated bool) {
	n.finished = true
	n.truncated = truncated
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opSyncHalt, sim.B2W(truncated)))
	}
}

// RunSync executes a synchronous algorithm over the asynchronous network g,
// synchronized by the spanning tree in cfg.
func RunSync(eng sim.Engine, g *graph.Graph, cfg SyncConfig) (*SyncResult, error) {
	if err := cfg.Tree.Validate(g); err != nil {
		return nil, fmt.Errorf("apps: sync tree invalid: %w", err)
	}
	if cfg.NewMachine == nil {
		return nil, fmt.Errorf("apps: sync needs a machine constructor")
	}
	protos, rep, err := eng.Run(g, newSyncFactory(cfg))
	if err != nil {
		return nil, err
	}
	res := &SyncResult{Machines: make(map[sim.NodeID]Machine, len(protos)), Report: rep}
	for id, p := range protos {
		sn, ok := p.(*syncNode)
		if !ok {
			return nil, fmt.Errorf("apps: node %d runs %T", id, p)
		}
		if !sn.finished {
			return nil, fmt.Errorf("apps: node %d never learned the halt", id)
		}
		if sn.round > res.Rounds {
			res.Rounds = sn.round
		}
		res.Truncated = res.Truncated || sn.truncated
		res.Machines[id] = sn.machine
	}
	return res, nil
}

// BFSMachine is the demo synchronous algorithm: layered breadth-first
// distances from a source, one layer per pulse.
type BFSMachine struct {
	id        sim.NodeID
	source    bool
	neighbors []sim.NodeID

	// Dist is the BFS distance from the source (-1 until reached).
	Dist     int64
	notified bool
}

// NewBFSMachine returns the machine constructor for the given source.
func NewBFSMachine(source sim.NodeID) func(sim.NodeID, []sim.NodeID) Machine {
	return func(id sim.NodeID, neighbors []sim.NodeID) Machine {
		return &BFSMachine{id: id, source: id == source, neighbors: neighbors, Dist: -1}
	}
}

// Pulse implements Machine: learn the distance from round r-1 messages,
// then notify neighbours exactly once.
func (b *BFSMachine) Pulse(_ int, recv map[sim.NodeID]int64) (map[sim.NodeID]int64, bool) {
	if b.source && b.Dist < 0 {
		b.Dist = 0
	}
	if b.Dist < 0 {
		for _, d := range recv {
			if b.Dist < 0 || d < b.Dist {
				b.Dist = d
			}
		}
	}
	if b.Dist >= 0 && !b.notified {
		b.notified = true
		out := make(map[sim.NodeID]int64, len(b.neighbors))
		for _, w := range b.neighbors {
			out[w] = b.Dist + 1
		}
		return out, true
	}
	return nil, b.Dist >= 0
}
