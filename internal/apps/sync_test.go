package apps

import (
	"testing"

	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

func syncEngines() map[string]sim.Engine {
	return map[string]sim.Engine{
		"event-unit":   &sim.EventEngine{Delay: sim.UnitDelay},
		"event-random": &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 3, FIFO: true},
		"async":        &sim.AsyncEngine{},
	}
}

// TestSyncBFSDistances: the synchronized BFS must compute exact BFS layers
// on an asynchronous network, whatever the delays.
func TestSyncBFSDistances(t *testing.T) {
	g := graph.Gnp(36, 0.15, 8)
	source := g.Nodes()[0]
	st, err := spanning.BFSTree(g, source)
	if err != nil {
		t.Fatal(err)
	}
	want := bfsDistances(g, source)
	for name, eng := range syncEngines() {
		t.Run(name, func(t *testing.T) {
			res, err := RunSync(eng, g, SyncConfig{Tree: st, NewMachine: NewBFSMachine(source)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("execution truncated")
			}
			for id, m := range res.Machines {
				if got := m.(*BFSMachine).Dist; got != int64(want[id]) {
					t.Errorf("node %d: dist %d, want %d", id, got, want[id])
				}
			}
			// Layered BFS needs eccentricity+O(1) pulses.
			ecc := g.Eccentricity(source)
			if res.Rounds < ecc+1 || res.Rounds > ecc+3 {
				t.Errorf("rounds = %d, eccentricity %d", res.Rounds, ecc)
			}
		})
	}
}

func bfsDistances(g *graph.Graph, src graph.NodeID) map[graph.NodeID]int {
	dist := map[graph.NodeID]int{src: 0}
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestSyncControlLoadFollowsTreeDegree: the synchronizer's per-pulse control
// hot spot is the tree degree, so a MDegST control tree beats a star tree —
// the "Network Synchronization" motivation measured.
func TestSyncControlLoadFollowsTreeDegree(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, 5)
	source := g.Nodes()[0]
	star, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	improved, _, err := fr.Twin(g, star, mdst.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	runOn := func(ctrl *tree.Tree) *SyncResult {
		res, err := RunSync(&sim.EventEngine{Delay: sim.UnitDelay}, g, SyncConfig{
			Tree:       ctrl,
			NewMachine: NewBFSMachine(source),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	starRes := runOn(star)
	improvedRes := runOn(improved)
	kStar, _ := star.MaxDegree()
	kImp, _ := improved.MaxDegree()
	if kImp >= kStar {
		t.Fatalf("setup: improvement did not help (%d vs %d)", kImp, kStar)
	}
	// The pulse/safe traffic per round at the hot spot scales with its
	// tree degree; with dozens of pulses the totals must reflect it.
	if improvedRes.Report.MaxSentByNode() >= starRes.Report.MaxSentByNode() {
		t.Errorf("control hot spot not reduced: star %d, improved %d",
			starRes.Report.MaxSentByNode(), improvedRes.Report.MaxSentByNode())
	}
}

func TestSyncTruncation(t *testing.T) {
	g := graph.Ring(8)
	st, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSync(&sim.EventEngine{Delay: sim.UnitDelay}, g, SyncConfig{
		Tree:       st,
		NewMachine: func(id sim.NodeID, ns []sim.NodeID) Machine { return neverDone{} },
		MaxRounds:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Rounds != 5 {
		t.Errorf("truncated=%v rounds=%d, want true and 5", res.Truncated, res.Rounds)
	}
}

// neverDone keeps the synchronizer pulsing forever (until the cap).
type neverDone struct{}

func (neverDone) Pulse(int, map[sim.NodeID]int64) (map[sim.NodeID]int64, bool) {
	return nil, false
}

func TestSyncConfigErrors(t *testing.T) {
	g := graph.Ring(5)
	st, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSync(&sim.EventEngine{}, g, SyncConfig{Tree: st}); err == nil {
		t.Error("missing machine constructor accepted")
	}
	other := graph.Ring(9)
	stOther, err := spanning.BFSTree(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSync(&sim.EventEngine{}, g, SyncConfig{Tree: stOther, NewMachine: NewBFSMachine(0)}); err == nil {
		t.Error("foreign tree accepted")
	}
}
