// Package apps contains the tree applications that motivate the paper:
// broadcast and convergecast over a spanning tree. The paper's introduction
// argues that a high-degree tree node "might cause an undesirable
// communication load in that node"; these protocols make that load
// measurable on the simulator — the per-node send counts of a broadcast
// over tree T are exactly the degrees the improvement algorithm minimises.
package apps

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/tree"
)

// The package's wire schema. payload is the broadcast message (one word
// models the payload chunk, plus the kind tag); ack is the convergecast
// reply carrying an aggregated value. The synchronizer records (sync.go)
// share the schema.
var wire = sim.Register("apps",
	sim.OpSpec{Kind: "app.payload", MinPayload: 1, MaxPayload: 1},
	sim.OpSpec{Kind: "app.ack", MinPayload: 1, MaxPayload: 1},
	sim.OpSpec{Kind: "sync.alg", MinPayload: 2, MaxPayload: 2, Rounded: true},
	sim.OpSpec{Kind: "sync.ack", MinPayload: 1, MaxPayload: 1, Rounded: true},
	sim.OpSpec{Kind: "sync.safe", MinPayload: 3, MaxPayload: 3, Rounded: true},
	sim.OpSpec{Kind: "sync.pulse", MinPayload: 1, MaxPayload: 1, Rounded: true},
	sim.OpSpec{Kind: "sync.halt", MinPayload: 1, MaxPayload: 1},
)

var (
	opPayload   = wire.Op(0)
	opAck       = wire.Op(1)
	opSyncAlg   = wire.Op(2)
	opSyncAck   = wire.Op(3)
	opSyncSafe  = wire.Op(4)
	opSyncPulse = wire.Op(5)
	opSyncHalt  = wire.Op(6)
)

// BroadcastNode floods a payload from the tree root down to every node and,
// when Ack is set, convergecasts a sum of the per-node Value back up.
type BroadcastNode struct {
	id       sim.NodeID
	root     bool
	parent   sim.NodeID
	children []sim.NodeID
	withAck  bool

	// Value is this node's contribution to the convergecast sum.
	Value int64

	received bool
	hops     int
	pending  int
	sum      int64
	done     bool
}

// Config describes one broadcast run.
type Config struct {
	// Tree is the spanning tree to broadcast over.
	Tree *tree.Tree
	// Ack adds the convergecast reply wave (sum of Values).
	Ack bool
	// Value assigns per-node contributions; nil means every node counts 1,
	// so the root's final sum is n.
	Value func(id sim.NodeID) int64
}

// NewFactory builds the protocol factory for the broadcast.
func NewFactory(cfg Config) sim.Factory {
	t := cfg.Tree
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		n := &BroadcastNode{
			id:       id,
			root:     id == t.Root,
			children: append([]sim.NodeID(nil), t.Children[id]...),
			withAck:  cfg.Ack,
			Value:    1,
		}
		if !n.root {
			n.parent = t.Parent[id]
		}
		if cfg.Value != nil {
			n.Value = cfg.Value(id)
		}
		return n
	}
}

// Init starts the flood at the root.
func (n *BroadcastNode) Init(ctx sim.Context) {
	if !n.root {
		return
	}
	n.received = true
	n.pending = len(n.children)
	n.sum = n.Value
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opPayload, 1))
	}
	if n.pending == 0 {
		n.done = true
	}
}

// Recv forwards the payload down and aggregates acks up; the single
// payload word decodes inline.
func (n *BroadcastNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	switch m.Op {
	case opPayload:
		if n.received {
			panic(fmt.Sprintf("apps: node %d received a second payload", n.id))
		}
		hop := int(m.W[0])
		n.received = true
		n.hops = hop
		n.pending = len(n.children)
		n.sum = n.Value
		for _, c := range n.children {
			ctx.Send(c, sim.Msg(opPayload, int64(hop+1)))
		}
		if n.pending == 0 {
			n.finish(ctx)
		}
	case opAck:
		n.sum += m.W[0]
		n.pending--
		if n.pending == 0 {
			n.finish(ctx)
		}
	}
}

func (n *BroadcastNode) finish(ctx sim.Context) {
	n.done = true
	if !n.withAck || n.root {
		return
	}
	ctx.Send(n.parent, sim.Msg(opAck, n.sum))
}

// Received reports whether the payload reached this node.
func (n *BroadcastNode) Received() bool { return n.received }

// Hops returns the tree depth at which the payload arrived.
func (n *BroadcastNode) Hops() int { return n.hops }

// Sum returns the aggregated value (meaningful at the root with Ack).
func (n *BroadcastNode) Sum() int64 { return n.sum }

// Result summarises one broadcast run.
type Result struct {
	// Delivered counts nodes the payload reached (must be n).
	Delivered int
	// MaxLoad is the largest per-node send count — the hot-spot measure;
	// for a plain broadcast it equals the root-adjusted maximum tree
	// degree, which is what the MDegST algorithm minimises.
	MaxLoad int64
	// Depth is the maximum hop count (the broadcast latency in unit
	// delays).
	Depth int
	// Sum is the convergecast result at the root (Ack runs only).
	Sum int64
	// Report is the raw accounting.
	Report *sim.Report
}

// Run broadcasts over cfg.Tree on the engine and gathers the result.
func Run(eng sim.Engine, g *graph.Graph, cfg Config) (*Result, error) {
	return RunCompiled(eng, g.Compile(), cfg)
}

// RunCompiled is Run over a pre-compiled snapshot shared across runs.
func RunCompiled(eng sim.Engine, c *graph.CSR, cfg Config) (*Result, error) {
	if err := cfg.Tree.Validate(c.Source()); err != nil {
		return nil, fmt.Errorf("apps: tree invalid: %w", err)
	}
	protos, rep, err := sim.RunCompiled(eng, c, NewFactory(cfg))
	if err != nil {
		return nil, err
	}
	res := &Result{Report: rep, MaxLoad: rep.MaxSentByNode()}
	for id, p := range protos {
		b, ok := p.(*BroadcastNode)
		if !ok {
			return nil, fmt.Errorf("apps: node %d runs %T", id, p)
		}
		if b.Received() {
			res.Delivered++
		}
		if b.Hops() > res.Depth {
			res.Depth = b.Hops()
		}
		if id == cfg.Tree.Root {
			res.Sum = b.Sum()
		}
	}
	return res, nil
}
