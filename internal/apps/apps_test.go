package apps

import (
	"testing"

	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
)

func unit() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay} }

func TestBroadcastReachesEveryone(t *testing.T) {
	g := graph.Gnp(40, 0.15, 1)
	st, err := spanning.BFSTree(g, g.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit(), g, Config{Tree: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != g.N() {
		t.Errorf("delivered %d of %d", res.Delivered, g.N())
	}
	if res.Report.Messages != int64(g.N()-1) {
		t.Errorf("messages = %d, want n-1 = %d", res.Report.Messages, g.N()-1)
	}
	if res.Depth != st.Height() {
		t.Errorf("depth %d, tree height %d", res.Depth, st.Height())
	}
}

func TestBroadcastLoadIsRootDegreeBound(t *testing.T) {
	g := graph.Star(12)
	st, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit(), g, Config{Tree: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad != 11 {
		t.Errorf("hub load = %d, want 11", res.MaxLoad)
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.Grid(5, 5)
	st, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit(), g, Config{
		Tree:  st,
		Ack:   true,
		Value: func(id sim.NodeID) int64 { return int64(id) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, v := range g.Nodes() {
		want += int64(v)
	}
	if res.Sum != want {
		t.Errorf("sum = %d, want %d", res.Sum, want)
	}
	if res.Report.Messages != int64(2*(g.N()-1)) {
		t.Errorf("messages = %d, want 2(n-1) = %d", res.Report.Messages, 2*(g.N()-1))
	}
}

// TestImprovementReducesMeasuredLoad is the measured version of the paper's
// motivation: run the broadcast before and after the MDegST improvement and
// compare hot-spot loads on the simulator, not analytically.
func TestImprovementReducesMeasuredLoad(t *testing.T) {
	g := graph.BarabasiAlbert(80, 2, 3)
	before, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := fr.Twin(g, before, mdst.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	resBefore, err := Run(unit(), g, Config{Tree: before})
	if err != nil {
		t.Fatal(err)
	}
	resAfter, err := Run(unit(), g, Config{Tree: after})
	if err != nil {
		t.Fatal(err)
	}
	if resAfter.MaxLoad >= resBefore.MaxLoad {
		t.Errorf("improvement did not reduce the hot spot: %d -> %d", resBefore.MaxLoad, resAfter.MaxLoad)
	}
	kb, _ := before.MaxDegree()
	ka, _ := after.MaxDegree()
	if resBefore.MaxLoad > int64(kb) || resAfter.MaxLoad > int64(ka) {
		t.Errorf("measured load exceeds the degree bound: %d>%d or %d>%d", resBefore.MaxLoad, kb, resAfter.MaxLoad, ka)
	}
}

func TestBroadcastOnAsyncEngine(t *testing.T) {
	g := graph.Gnp(30, 0.2, 9)
	st, err := spanning.BFSTree(g, g.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&sim.AsyncEngine{}, g, Config{Tree: st, Ack: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != g.N() || res.Sum != int64(g.N()) {
		t.Errorf("delivered=%d sum=%d", res.Delivered, res.Sum)
	}
}

func TestRejectsForeignTree(t *testing.T) {
	g := graph.Ring(6)
	other := graph.Ring(8)
	st, err := spanning.BFSTree(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit(), g, Config{Tree: st}); err == nil {
		t.Error("tree of a different graph accepted")
	}
}
