// Package exact computes ground truth for the quality experiments: the
// optimal spanning tree degree Δ* by branch and bound (small graphs), and
// cheap lower bounds on Δ* for graphs too large to solve exactly. The
// paper's guarantee under scrutiny is "degree at most Δ*+1".
package exact

import (
	"fmt"
	"sort"

	"mdegst/internal/graph"
	"mdegst/internal/tree"
)

// MaxExactNodes bounds the graph size accepted by MinDegree; beyond it the
// search space is impractical and callers should use DegreeLowerBound.
const MaxExactNodes = 24

// MinDegree returns Δ*, the minimum over all spanning trees of the maximum
// degree, together with one optimal tree (rooted at the smallest node).
func MinDegree(g *graph.Graph) (int, *tree.Tree, error) {
	if !g.IsConnected() {
		return 0, nil, fmt.Errorf("exact: graph not connected")
	}
	if g.N() > MaxExactNodes {
		return 0, nil, fmt.Errorf("exact: %d nodes exceeds limit %d", g.N(), MaxExactNodes)
	}
	if g.N() == 1 {
		return 0, tree.New(g.Nodes()[0]), nil
	}
	c := g.Compile()
	lb := degreeLowerBound(c)
	for d := lb; d < g.N(); d++ {
		if edges := spanningTreeWithCap(c, d); edges != nil {
			t, err := orient(g, edges)
			if err != nil {
				return 0, nil, err
			}
			return d, t, nil
		}
	}
	return 0, nil, fmt.Errorf("exact: no spanning tree found (graph disconnected?)")
}

// HasSpanningTreeWithin reports whether g has a spanning tree of maximum
// degree at most d.
func HasSpanningTreeWithin(g *graph.Graph, d int) (bool, error) {
	if !g.IsConnected() {
		return false, fmt.Errorf("exact: graph not connected")
	}
	if g.N() > MaxExactNodes {
		return false, fmt.Errorf("exact: %d nodes exceeds limit %d", g.N(), MaxExactNodes)
	}
	if g.N() == 1 {
		return d >= 0, nil
	}
	return spanningTreeWithCap(g.Compile(), d) != nil, nil
}

// DegreeLowerBound returns a lower bound on Δ*: removing any vertex v splits
// a spanning tree into deg_T(v) subtrees, each containing a component of
// G - v, so Δ* >= components(G-v) for every v; and any tree on n >= 3 nodes
// has a vertex of degree at least 2.
func DegreeLowerBound(g *graph.Graph) int {
	return degreeLowerBound(g.Compile())
}

// degreeLowerBound is DegreeLowerBound over a snapshot: n dense BFS sweeps
// sharing one visited array, no maps.
func degreeLowerBound(c *graph.CSR) int {
	n := c.N()
	lb := 1
	if n >= 3 {
		lb = 2
	}
	visited := make([]bool, n)
	stack := make([]int32, 0, n)
	for v := int32(0); int(v) < n; v++ {
		clear(visited)
		visited[v] = true
		comps := 0
		for s := int32(0); int(s) < n; s++ {
			if visited[s] {
				continue
			}
			comps++
			visited[s] = true
			stack = append(stack[:0], s)
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range c.Neighbors(u) {
					if !visited[w] {
						visited[w] = true
						stack = append(stack, w)
					}
				}
			}
		}
		if comps > lb {
			lb = comps
		}
	}
	return lb
}

// spanningTreeWithCap searches for a spanning tree with every degree at most
// cap, using include/exclude branch and bound over the edge list with
// union-find components, degree budgets and connectivity pruning. Endpoints
// are addressed through the snapshot's dense index.
func spanningTreeWithCap(c *graph.CSR, cap int) []graph.Edge {
	if cap < 1 {
		return nil
	}
	ix := c.Index()
	n := c.N()
	edges := c.Edges()
	deg := func(v graph.NodeID) int { return c.Degree(ix.MustOf(v)) }
	// Order edges to find feasible trees early: prefer edges whose
	// endpoints have few alternatives (low graph degree).
	sort.SliceStable(edges, func(i, j int) bool {
		di := deg(edges[i].U) + deg(edges[i].V)
		dj := deg(edges[j].U) + deg(edges[j].V)
		return di < dj
	})

	s := &capSearch{
		n:      n,
		idx:    ix,
		edges:  edges,
		budget: make([]int, n),
		uf:     newUnionFind(n),
		alive:  make([]bool, len(edges)),
	}
	for i := range s.budget {
		s.budget[i] = cap
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	if s.search(0, n-1) {
		return s.chosen
	}
	return nil
}

type capSearch struct {
	n      int
	idx    *graph.Index
	edges  []graph.Edge
	budget []int
	uf     *unionFind
	alive  []bool
	chosen []graph.Edge
}

// search decides edge i; need is the number of edges still required.
func (s *capSearch) search(i, need int) bool {
	if need == 0 {
		return true
	}
	if i >= len(s.edges) || len(s.edges)-i < need {
		return false
	}
	if !s.connectable(i) {
		return false
	}
	e := s.edges[i]
	ui, vi := int(s.idx.MustOf(e.U)), int(s.idx.MustOf(e.V))

	// Branch 1: include e when budgets allow and it joins two components.
	if s.budget[ui] > 0 && s.budget[vi] > 0 && s.uf.find(ui) != s.uf.find(vi) {
		mark := s.uf.mark()
		s.uf.union(ui, vi)
		s.budget[ui]--
		s.budget[vi]--
		s.chosen = append(s.chosen, e)
		if s.search(i+1, need-1) {
			return true
		}
		s.chosen = s.chosen[:len(s.chosen)-1]
		s.budget[ui]++
		s.budget[vi]++
		s.uf.undo(mark)
	}

	// Branch 2: exclude e.
	s.alive[i] = false
	ok := s.search(i+1, need)
	s.alive[i] = true
	return ok
}

// connectable prunes branches where the remaining usable edges cannot
// connect the current components.
func (s *capSearch) connectable(i int) bool {
	reach := newUnionFind(s.n)
	for j := 0; j < s.n; j++ {
		reach.union(s.uf.find(j), j)
	}
	for j := i; j < len(s.edges); j++ {
		if !s.alive[j] {
			continue
		}
		e := s.edges[j]
		ui, vi := int(s.idx.MustOf(e.U)), int(s.idx.MustOf(e.V))
		if s.budget[ui] > 0 && s.budget[vi] > 0 {
			reach.union(ui, vi)
		}
	}
	r0 := reach.find(0)
	for j := 1; j < s.n; j++ {
		if reach.find(j) != r0 {
			return false
		}
	}
	return true
}

// unionFind with union-by-size and an undo log (no path compression so
// undos are exact).
type unionFind struct {
	parent []int
	size   []int
	log    []int // roots attached, for undo
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.log = append(uf.log, rb)
}

func (uf *unionFind) mark() int { return len(uf.log) }

func (uf *unionFind) undo(mark int) {
	for len(uf.log) > mark {
		rb := uf.log[len(uf.log)-1]
		uf.log = uf.log[:len(uf.log)-1]
		ra := uf.parent[rb]
		uf.size[ra] -= uf.size[rb]
		uf.parent[rb] = rb
	}
}

func orient(g *graph.Graph, edges []graph.Edge) (*tree.Tree, error) {
	st := graph.New()
	for _, v := range g.Nodes() {
		st.AddNode(v)
	}
	for _, e := range edges {
		st.MustAddEdge(e.U, e.V)
	}
	root := g.Nodes()[0]
	parent := st.BFSParents(root)
	if len(parent) != g.N() {
		return nil, fmt.Errorf("exact: selected edges do not span")
	}
	return tree.FromParentMap(root, parent)
}
