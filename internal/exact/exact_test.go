package exact

import (
	"testing"
	"testing/quick"

	"mdegst/internal/graph"
)

func TestKnownOptima(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path5", graph.Path(5), 2},
		{"ring8", graph.Ring(8), 2},
		{"complete6", graph.Complete(6), 2}, // Hamiltonian path
		{"star7", graph.Star(7), 6},         // unique spanning tree
		{"wheel8", graph.Wheel(8), 2},       // rim path + one spoke... still Hamiltonian-path-traceable
		{"hyper3", graph.Hypercube(3), 2},   // Hamiltonian
		// K_{2,5}: hubs split the five leaves and bridge through a shared
		// one, e.g. a1-{b1,b2,b3}, a2-{b3,b4,b5} — degree 3.
		{"bipartite2_5", graph.CompleteBipartite(2, 5), 3},
		{"lollipop", graph.Lollipop(4, 3), 2},
		{"caterpillar", graph.Caterpillar(3, 1), 3},
		{"hamchords", graph.HamiltonianPlusChords(14, 10, 1), 2},
		{"pair", graph.Path(2), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, tr, err := MinDegree(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Δ* = %d, want %d", got, tc.want)
			}
			if err := tr.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			if deg, _ := tr.MaxDegree(); deg != got {
				t.Errorf("witness tree degree %d != Δ* %d", deg, got)
			}
		})
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode(3)
	d, tr, err := MinDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || tr.N() != 1 {
		t.Errorf("Δ*=%d n=%d", d, tr.N())
	}
}

func TestHasSpanningTreeWithin(t *testing.T) {
	g := graph.Star(6)
	ok, err := HasSpanningTreeWithin(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("star should need degree 5")
	}
	ok, err = HasSpanningTreeWithin(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("star has its own spanning tree of degree 5")
	}
}

func TestErrors(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if _, _, err := MinDegree(g); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, _, err := MinDegree(graph.Gnp(MaxExactNodes+5, 0.5, 1)); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestDegreeLowerBound(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"star", graph.Star(9), 8},
		{"path", graph.Path(6), 2},
		{"complete", graph.Complete(5), 2},
		{"spider", spider(3, 4), 3},
	}
	for _, tc := range cases {
		if got := DegreeLowerBound(tc.g); got != tc.want {
			t.Errorf("%s: LB=%d, want %d", tc.name, got, tc.want)
		}
	}
}

// spider returns legs paths of the given length glued at a centre.
func spider(legs, length int) *graph.Graph {
	g := graph.New()
	id := graph.NodeID(1)
	for l := 0; l < legs; l++ {
		prev := graph.NodeID(0)
		for s := 0; s < length; s++ {
			g.MustAddEdge(prev, id)
			prev = id
			id++
		}
	}
	return g
}

// Property: the lower bound never exceeds the exact optimum, and the exact
// optimum is achieved by the witness tree.
func TestQuickBoundsConsistent(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed int64) bool {
		n := 4 + int(nRaw%8) // 4..11
		m := n - 1 + int(mRaw)%n
		g := graph.Gnm(n, m, seed)
		lb := DegreeLowerBound(g)
		opt, tr, err := MinDegree(g)
		if err != nil {
			return false
		}
		if lb > opt {
			return false
		}
		deg, _ := tr.MaxDegree()
		return deg == opt && tr.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: no spanning tree exists below Δ*, by definition of minimum.
func TestQuickMinimality(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := 4 + int(nRaw%7)
		g := graph.Gnm(n, n+int(seed%int64(n)+int64(n))%n, seed)
		opt, _, err := MinDegree(g)
		if err != nil {
			return false
		}
		if opt <= 1 {
			return true
		}
		ok, err := HasSpanningTreeWithin(g, opt-1)
		return err == nil && !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
