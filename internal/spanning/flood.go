package spanning

import (
	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// Flooding spanning tree with echo termination (Chang's echo algorithm):
// the designated root floods Explore; a node adopts the first Explore's
// sender as parent and re-floods; crossing Explores resolve non-tree edges;
// Echo converges termination back to the root, which then broadcasts Done
// down the tree so every node knows construction finished.
//
// Message complexity: at most 2 per edge (Explore/Explore or Explore/Echo)
// plus n-1 Done, i.e. O(m). Time O(diameter). Under unit delays the result
// is a BFS tree; under asynchrony an arbitrary spanning tree.

// FloodNode is one node of the flooding protocol.
type FloodNode struct {
	id       sim.NodeID
	root     bool
	started  bool
	finished bool
	parent   sim.NodeID
	children []sim.NodeID
	pending  int // unresolved neighbours (tree responses or crossing floods)
}

// NewFloodFactory returns a factory for the flooding protocol rooted at root.
func NewFloodFactory(root sim.NodeID) sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		return &FloodNode{id: id, root: id == root}
	}
}

// NewFloodFactorySnap returns a flooding factory bound to a snapshot: all n
// node states live in one slab and the children lists are capacity-bounded
// sub-slices of one arena laid out by node degree — children are always a
// subset of neighbours, so insertID never grows a list out of the arena and
// a whole run performs zero per-node allocations. The factory resets a
// node's state every time it is asked for it, so one factory serves any
// number of *sequential* runs (the benchmark steady state); it owns a
// single slab, so concurrent runs must each get their own factory.
func NewFloodFactorySnap(c *graph.CSR, root sim.NodeID) sim.Factory {
	idx := c.Index()
	nodes := make([]FloodNode, c.N())
	arena := make([]sim.NodeID, c.HalfEdges())
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		di, ok := idx.Of(id)
		if !ok {
			// Not a snapshot node (a foreign engine ran a different graph):
			// degrade to the heap-allocating form rather than misbehave.
			return &FloodNode{id: id, root: id == root}
		}
		lo, hi := c.HalfEdge(di, 0), c.HalfEdge(di, c.Degree(di))
		n := &nodes[di]
		*n = FloodNode{id: id, root: id == root, children: arena[lo:lo:hi]}
		return n
	}
}

// Init starts the flood at the root; other nodes wait for an Explore.
func (n *FloodNode) Init(ctx sim.Context) {
	if !n.root {
		return
	}
	n.started = true
	n.pending = len(ctx.Neighbors())
	if n.pending == 0 {
		n.finished = true // single-node network
		return
	}
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, sim.Msg(opFloodExplore))
	}
}

// Recv drives the explore/echo state machine; the wire records carry no
// payload, so the opcode is the whole decode.
func (n *FloodNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	switch m.Op {
	case opFloodExplore:
		if !n.started {
			n.started = true
			n.parent = from
			n.pending = len(ctx.Neighbors()) - 1
			if n.pending == 0 {
				ctx.Send(n.parent, sim.Msg(opFloodEcho))
				return
			}
			for _, w := range ctx.Neighbors() {
				if w != from {
					ctx.Send(w, sim.Msg(opFloodExplore))
				}
			}
			return
		}
		// Crossing explore on a non-tree edge: both sides resolve it.
		n.resolve(ctx)
	case opFloodEcho:
		n.children = insertID(n.children, from)
		n.resolve(ctx)
	case opStDone:
		n.finish(ctx)
	}
}

func (n *FloodNode) resolve(ctx sim.Context) {
	n.pending--
	if n.pending > 0 {
		return
	}
	if n.root {
		n.finish(ctx)
		return
	}
	ctx.Send(n.parent, sim.Msg(opFloodEcho))
}

func (n *FloodNode) finish(ctx sim.Context) {
	n.finished = true
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opStDone))
	}
}

// TreeInfo implements TreeNode.
func (n *FloodNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return n.parent, n.children, n.root
}

// Finished implements TreeNode.
func (n *FloodNode) Finished() bool { return n.finished }

// EncodeState implements sim.StateCodec: flood supports barrier
// checkpoint/resume. The designated-root flag is factory state and not
// encoded.
func (n *FloodNode) EncodeState(e *sim.StateEncoder) {
	e.Bool(n.started)
	e.Bool(n.finished)
	e.ID(n.parent)
	e.IDs(n.children)
	e.Int(int64(n.pending))
}

// DecodeState implements sim.StateCodec.
func (n *FloodNode) DecodeState(d *sim.StateDecoder) error {
	n.started = d.Bool()
	n.finished = d.Bool()
	n.parent = d.ID()
	n.children = d.IDs()
	n.pending = int(d.Int())
	return d.Err()
}

var _ sim.StateCodec = (*FloodNode)(nil)
