package spanning

import "mdegst/internal/sim"

// Flooding spanning tree with echo termination (Chang's echo algorithm):
// the designated root floods Explore; a node adopts the first Explore's
// sender as parent and re-floods; crossing Explores resolve non-tree edges;
// Echo converges termination back to the root, which then broadcasts Done
// down the tree so every node knows construction finished.
//
// Message complexity: at most 2 per edge (Explore/Explore or Explore/Echo)
// plus n-1 Done, i.e. O(m). Time O(diameter). Under unit delays the result
// is a BFS tree; under asynchrony an arbitrary spanning tree.

type floodExplore struct{}
type floodEcho struct{}
type floodDone struct{}

func (floodExplore) Kind() string { return "st.explore" }
func (floodExplore) Words() int   { return 1 }
func (floodEcho) Kind() string    { return "st.echo" }
func (floodEcho) Words() int      { return 1 }
func (floodDone) Kind() string    { return "st.done" }
func (floodDone) Words() int      { return 1 }

// FloodNode is one node of the flooding protocol.
type FloodNode struct {
	id       sim.NodeID
	root     bool
	started  bool
	finished bool
	parent   sim.NodeID
	children []sim.NodeID
	pending  int // unresolved neighbours (tree responses or crossing floods)
}

// NewFloodFactory returns a factory for the flooding protocol rooted at root.
func NewFloodFactory(root sim.NodeID) sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		return &FloodNode{id: id, root: id == root}
	}
}

// Init starts the flood at the root; other nodes wait for an Explore.
func (n *FloodNode) Init(ctx sim.Context) {
	if !n.root {
		return
	}
	n.started = true
	n.pending = len(ctx.Neighbors())
	if n.pending == 0 {
		n.finished = true // single-node network
		return
	}
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, floodExplore{})
	}
}

// Recv drives the explore/echo state machine.
func (n *FloodNode) Recv(ctx sim.Context, from sim.NodeID, m sim.Message) {
	switch m.(type) {
	case floodExplore:
		if !n.started {
			n.started = true
			n.parent = from
			n.pending = len(ctx.Neighbors()) - 1
			if n.pending == 0 {
				ctx.Send(n.parent, floodEcho{})
				return
			}
			for _, w := range ctx.Neighbors() {
				if w != from {
					ctx.Send(w, floodExplore{})
				}
			}
			return
		}
		// Crossing explore on a non-tree edge: both sides resolve it.
		n.resolve(ctx)
	case floodEcho:
		n.children = insertID(n.children, from)
		n.resolve(ctx)
	case floodDone:
		n.finish(ctx)
	}
}

func (n *FloodNode) resolve(ctx sim.Context) {
	n.pending--
	if n.pending > 0 {
		return
	}
	if n.root {
		n.finish(ctx)
		return
	}
	ctx.Send(n.parent, floodEcho{})
}

func (n *FloodNode) finish(ctx sim.Context) {
	n.finished = true
	for _, c := range n.children {
		ctx.Send(c, floodDone{})
	}
}

// TreeInfo implements TreeNode.
func (n *FloodNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return n.parent, n.children, n.root
}

// Finished implements TreeNode.
func (n *FloodNode) Finished() bool { return n.finished }
