package spanning

import (
	"fmt"
	"math/rand"
	"sort"

	"mdegst/internal/graph"
	"mdegst/internal/tree"
)

// Sequential spanning-tree builders. These are experiment-harness helpers —
// they construct initial trees of controlled shape centrally, standing in
// for whatever distributed construction a deployment would use (the paper
// treats the initial tree as given).

// BFSTree returns the breadth-first spanning tree of g rooted at root,
// scanning neighbours in ascending order.
func BFSTree(g *graph.Graph, root graph.NodeID) (*tree.Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("spanning: BFS root %d not in graph", root)
	}
	parent := g.BFSParents(root)
	if len(parent) != g.N() {
		return nil, fmt.Errorf("spanning: graph not connected from %d", root)
	}
	return tree.FromParentMap(root, parent)
}

// DFSTree returns the depth-first spanning tree of g rooted at root,
// scanning neighbours in ascending order — the same visit order as the
// distributed token DFS, so the two produce identical trees.
func DFSTree(g *graph.Graph, root graph.NodeID) (*tree.Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("spanning: DFS root %d not in graph", root)
	}
	parent := map[graph.NodeID]graph.NodeID{root: root}
	var visit func(u graph.NodeID)
	visit = func(u graph.NodeID) {
		for _, w := range g.Neighbors(u) {
			if _, ok := parent[w]; !ok {
				parent[w] = u
				visit(w)
			}
		}
	}
	visit(root)
	if len(parent) != g.N() {
		return nil, fmt.Errorf("spanning: graph not connected from %d", root)
	}
	return tree.FromParentMap(root, parent)
}

// StarTree returns an adversarially high-degree spanning tree: it roots at a
// maximum-degree vertex, attaches the whole neighbourhood of each processed
// node, and processes high-degree nodes first. The root's tree degree equals
// the graph's maximum degree — the paper's worst-case initial k.
func StarTree(g *graph.Graph) (*tree.Tree, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("spanning: empty graph")
	}
	root := g.Nodes()[0]
	for _, v := range g.Nodes() {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	parent := map[graph.NodeID]graph.NodeID{root: root}
	// Greedy adoption: queue ordered by graph degree descending (then ID)
	// so hubs adopt entire neighbourhoods.
	queue := []graph.NodeID{root}
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool {
			di, dj := g.Degree(queue[i]), g.Degree(queue[j])
			if di != dj {
				return di > dj
			}
			return queue[i] < queue[j]
		})
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if _, ok := parent[w]; !ok {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	if len(parent) != g.N() {
		return nil, fmt.Errorf("spanning: graph not connected")
	}
	return tree.FromParentMap(root, parent)
}

// RandomST returns a uniformly random spanning tree of g (Wilson's
// loop-erased random walk algorithm), rooted at a uniformly random node.
func RandomST(g *graph.Graph, seed int64) (*tree.Tree, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("spanning: graph not connected")
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := g.Nodes()
	root := nodes[rng.Intn(len(nodes))]
	inTree := map[graph.NodeID]bool{root: true}
	parent := map[graph.NodeID]graph.NodeID{root: root}
	for _, start := range nodes {
		if inTree[start] {
			continue
		}
		// Random walk from start until hitting the tree, recording the
		// successor of each visited node (loop erasure by overwriting).
		next := make(map[graph.NodeID]graph.NodeID)
		cur := start
		for !inTree[cur] {
			ns := g.Neighbors(cur)
			step := ns[rng.Intn(len(ns))]
			next[cur] = step
			cur = step
		}
		for cur = start; !inTree[cur]; cur = next[cur] {
			inTree[cur] = true
			parent[cur] = next[cur]
		}
	}
	return tree.FromParentMap(root, parent)
}
