package spanning

import (
	"maps"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// requireSameReport compares everything deterministic between two runs of
// the same execution (Wall always differs; Shards describes the runtime
// configuration, not the execution).
func requireSameReport(t *testing.T, what string, a, b *sim.Report) {
	t.Helper()
	if a.Messages != b.Messages || a.Words != b.Words || a.MaxWords != b.MaxWords ||
		a.CausalDepth != b.CausalDepth || a.VirtualTime != b.VirtualTime {
		t.Fatalf("%s: scalar counters diverged:\n%v\n%v", what, a, b)
	}
	if !maps.Equal(a.ByKind, b.ByKind) || !maps.Equal(a.ByRound, b.ByRound) ||
		!maps.Equal(a.ByKindRound, b.ByKindRound) || !maps.Equal(a.SentBy, b.SentBy) {
		t.Fatalf("%s: breakdown maps diverged:\n%v\n%v", what, a, b)
	}
}

// TestBuildCompiledDenseMatchesMap holds the dense build path — dense engine
// result, slab flood factory, ExtractDense — to the map path's exact tree
// and report, across every deterministic engine tier.
func TestBuildCompiledDenseMatchesMap(t *testing.T) {
	engines := func() map[string]sim.Engine {
		return map[string]sim.Engine{
			"event-unit":    &sim.EventEngine{Delay: sim.UnitDelay},
			"event-random":  &sim.EventEngine{Delay: sim.UniformDelay(0.2), Seed: 7, FIFO: true},
			"sharded-unit":  &sim.ShardedEngine{Shards: 3, Workers: 3, Delay: sim.UnitDelay},
			"sharded-wheel": &sim.ShardedEngine{Shards: 3, Delay: sim.UniformDelay(0.2), Seed: 7},
			"reference":     &sim.ReferenceEngine{}, // no dense path: exercises the fold-down fallback
		}
	}
	for gname, g := range testGraphs() {
		c := g.Compile()
		root := g.Nodes()[0]
		for ename := range engines() {
			t.Run(gname+"/"+ename, func(t *testing.T) {
				// Fresh engine values per run so sharded scratch reuse and
				// RNG seeding cannot couple the two paths.
				want, wantRep, err := BuildCompiled(engines()[ename], c, NewFloodFactory(root))
				if err != nil {
					t.Fatal(err)
				}
				got, gotRep, err := BuildCompiledDense(engines()[ename], c, NewFloodFactorySnap(c, root))
				if err != nil {
					t.Fatal(err)
				}
				if err := got.Validate(c); err != nil {
					t.Fatal(err)
				}
				if back := got.ToTree(); !want.Equal(back) {
					t.Fatalf("trees diverged\nmap:\n%s\ndense:\n%s", want, back)
				}
				requireSameReport(t, gname+"/"+ename, wantRep, gotRep)
			})
		}
	}
}

// TestExtractDenseOtherProtocols runs the remaining spanning protocols
// through the dense extraction to show it is not flood-specific.
func TestExtractDenseOtherProtocols(t *testing.T) {
	g := graph.Gnm(40, 90, 2)
	c := g.Compile()
	root := g.Nodes()[0]
	for pname, f := range map[string]sim.Factory{
		"dfs":      NewDFSFactory(root),
		"ghs":      NewGHSFactory(),
		"election": NewElectionFactory(),
	} {
		d, _, err := BuildCompiledDense(&sim.EventEngine{Delay: sim.UnitDelay}, c, f)
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		if err := d.Validate(c); err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
	}
}

// TestFloodFactorySnapReusable runs one slab factory through several
// sequential runs: every run must reset the slab states and produce the
// identical tree.
func TestFloodFactorySnapReusable(t *testing.T) {
	g := graph.Gnp(50, 0.12, 17)
	c := g.Compile()
	root := g.Nodes()[0]
	f := NewFloodFactorySnap(c, root)
	want, _, err := BuildCompiled(&sim.EventEngine{Delay: sim.UnitDelay}, c, NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		d, _, err := BuildCompiledDense(&sim.EventEngine{Delay: sim.UnitDelay}, c, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !want.Equal(d.ToTree()) {
			t.Fatalf("trial %d: slab factory produced a different tree", trial)
		}
	}
}

// fakeTreeNode lets the error-path tests hand ExtractDense arbitrary
// tree views.
type fakeTreeNode struct {
	parent sim.NodeID
	isRoot bool
	fin    bool
}

func (f *fakeTreeNode) Init(sim.Context)                          {}
func (f *fakeTreeNode) Recv(sim.Context, sim.NodeID, sim.WireMsg) {}
func (f *fakeTreeNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return f.parent, nil, f.isRoot
}
func (f *fakeTreeNode) Finished() bool { return f.fin }

type bareProto struct{}

func (bareProto) Init(sim.Context)                          {}
func (bareProto) Recv(sim.Context, sim.NodeID, sim.WireMsg) {}

// TestExtractDenseRejects exercises every validation branch of the dense
// extraction on Path(4) (identities 0-1-2-3).
func TestExtractDenseRejects(t *testing.T) {
	c := graph.Path(4).Compile()
	chain := func(mut func(ps []*fakeTreeNode)) []sim.Protocol {
		ps := []*fakeTreeNode{
			{isRoot: true, fin: true},
			{parent: 0, fin: true},
			{parent: 1, fin: true},
			{parent: 2, fin: true},
		}
		if mut != nil {
			mut(ps)
		}
		out := make([]sim.Protocol, len(ps))
		for i, p := range ps {
			out[i] = p
		}
		return out
	}
	if d, err := ExtractDense(c, chain(nil)); err != nil || d == nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	cases := map[string][]sim.Protocol{
		"short slice": chain(nil)[:3],
		"not a tree node": func() []sim.Protocol {
			ps := chain(nil)
			ps[2] = bareProto{}
			return ps
		}(),
		"unfinished":      chain(func(ps []*fakeTreeNode) { ps[3].fin = false }),
		"no root":         chain(func(ps []*fakeTreeNode) { ps[0].isRoot = false; ps[0].parent = 1 }),
		"two roots":       chain(func(ps []*fakeTreeNode) { ps[2].isRoot = true }),
		"unknown parent":  chain(func(ps []*fakeTreeNode) { ps[3].parent = 99 }),
		"cycle":           chain(func(ps []*fakeTreeNode) { ps[2].parent = 3 }),
		"non-edge parent": chain(func(ps []*fakeTreeNode) { ps[3].parent = 0 }),
	}
	for name, protos := range cases {
		if _, err := ExtractDense(c, protos); err == nil {
			t.Errorf("%s: accepted invalid states", name)
		}
	}
}

// TestFloodDenseTrafficInvariantAllocs pins the dense path's allocation
// behaviour two ways. Traffic invariance: with the node count held fixed,
// quadrupling the edge count (and so roughly the message count) must not
// move the per-run allocation count by more than a twentieth of an
// allocation per extra message — the hot loops are allocation-free, and
// what remains is per-node or per-round bookkeeping. Reduction: the dense
// path must allocate at least 10x less than the map path on the same
// workload, which is the grid-1M acceptance ratio scaled down to test
// size.
func TestFloodDenseTrafficInvariantAllocs(t *testing.T) {
	measure := func(sparse bool, dense bool) (float64, int64) {
		m := 1800
		if !sparse {
			m = 7200
		}
		c := graph.Gnm(600, m, 5).Compile()
		root := c.Index().ID(0)
		var msgs int64
		var run func()
		if dense {
			f := NewFloodFactorySnap(c, root)
			run = func() {
				_, rep, err := BuildCompiledDense(&sim.EventEngine{Delay: sim.UnitDelay}, c, f)
				if err != nil {
					t.Fatal(err)
				}
				msgs = rep.Messages
			}
		} else {
			run = func() {
				_, rep, err := BuildCompiled(&sim.EventEngine{Delay: sim.UnitDelay}, c, NewFloodFactory(root))
				if err != nil {
					t.Fatal(err)
				}
				msgs = rep.Messages
			}
		}
		run() // warm the engine scratch pools
		return testing.AllocsPerRun(5, run), msgs
	}
	aSparse, mSparse := measure(true, true)
	aDense, mDense := measure(false, true)
	aMap, _ := measure(false, false)
	t.Logf("dense path: %.0f allocs @ %d msgs (sparse), %.0f allocs @ %d msgs (dense); map path: %.0f allocs",
		aSparse, mSparse, aDense, mDense, aMap)
	if mDense <= mSparse {
		t.Fatalf("workloads not ordered by traffic: %d vs %d messages", mSparse, mDense)
	}
	if marginal := (aDense - aSparse) / float64(mDense-mSparse); marginal > 0.05 {
		t.Errorf("allocations scale with traffic: %.4f allocs per extra message", marginal)
	}
	if aDense*10 > aMap {
		t.Errorf("dense path allocates %.0f, map path %.0f: want at least a 10x reduction", aDense, aMap)
	}
}
