package spanning

import "mdegst/internal/sim"

// The package's wire schema: all four distributed spanning-tree protocols
// register in one vocabulary (flood and DFS share the "st.done"
// termination broadcast, so the kinds must live in one schema). Payload
// word counts reproduce the historical Words() accounting exactly:
// 1 (kind tag) + payload.
var wire = sim.Register("spanning",
	// Flood (Chang's echo): explore/echo/done carry no payload.
	sim.OpSpec{Kind: "st.explore"},
	sim.OpSpec{Kind: "st.echo"},
	sim.OpSpec{Kind: "st.done"},
	// Token DFS: return carries the accepted flag.
	sim.OpSpec{Kind: "st.discover"},
	sim.OpSpec{Kind: "st.return", MinPayload: 1, MaxPayload: 1},
	// Election (echo-wave extinction): explore/echo carry the initiator.
	sim.OpSpec{Kind: "el.explore", MinPayload: 1, MaxPayload: 1},
	sim.OpSpec{Kind: "el.echo", MinPayload: 1, MaxPayload: 1},
	sim.OpSpec{Kind: "el.done"},
	// GHS: level/fragment/state per the original pseudocode.
	sim.OpSpec{Kind: "ghs.connect", MinPayload: 1, MaxPayload: 1},
	sim.OpSpec{Kind: "ghs.initiate", MinPayload: 4, MaxPayload: 4},
	sim.OpSpec{Kind: "ghs.test", MinPayload: 3, MaxPayload: 3},
	sim.OpSpec{Kind: "ghs.accept"},
	sim.OpSpec{Kind: "ghs.reject"},
	sim.OpSpec{Kind: "ghs.report", MinPayload: 2, MaxPayload: 2},
	sim.OpSpec{Kind: "ghs.changeroot"},
	sim.OpSpec{Kind: "ghs.done"},
)

var (
	opFloodExplore = wire.Op(0)
	opFloodEcho    = wire.Op(1)
	opStDone       = wire.Op(2)
	opDFSDiscover  = wire.Op(3)
	opDFSReturn    = wire.Op(4)
	opElExplore    = wire.Op(5)
	opElEcho       = wire.Op(6)
	opElDone       = wire.Op(7)
	opGHSConnect   = wire.Op(8)
	opGHSInitiate  = wire.Op(9)
	opGHSTest      = wire.Op(10)
	opGHSAccept    = wire.Op(11)
	opGHSReject    = wire.Op(12)
	opGHSReport    = wire.Op(13)
	opGHSChangeRt  = wire.Op(14)
	opGHSDone      = wire.Op(15)
)
