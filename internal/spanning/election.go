package spanning

import "mdegst/internal/sim"

// Election builds a spanning tree with no designated root: every node starts
// an echo wave tagged with its identity, larger-tagged waves are extinguished
// by smaller ones, and only the minimum-identity wave completes its echo.
// Its initiator becomes the leader/root and its wave tree is the spanning
// tree; a Done broadcast gives termination by process. Worst case O(n·m)
// messages, O(diameter) time — the classic extrema-finding flood.

// ElectionNode is one node of the extinction protocol.
type ElectionNode struct {
	id       sim.NodeID
	best     sim.NodeID // initiator of the wave currently joined
	parent   sim.NodeID // parent within that wave (self when own wave)
	children []sim.NodeID
	pending  int
	leader   bool
	finished bool
}

// NewElectionFactory returns a factory for the election protocol.
func NewElectionFactory() sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		return &ElectionNode{id: id, best: id, parent: id}
	}
}

// Init launches this node's own wave.
func (n *ElectionNode) Init(ctx sim.Context) {
	n.pending = len(ctx.Neighbors())
	if n.pending == 0 {
		n.leader = true
		n.finished = true
		return
	}
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, sim.Msg(opElExplore, int64(n.id)))
	}
}

// Recv drives extinction: adopt strictly smaller waves, resolve equal ones,
// ignore larger ones (their senders will adopt ours instead).
func (n *ElectionNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	switch m.Op {
	case opElExplore:
		init := sim.NodeID(m.W[0])
		switch {
		case init < n.best:
			n.best = init
			n.parent = from
			n.children = nil
			n.pending = len(ctx.Neighbors()) - 1
			if n.pending == 0 {
				ctx.Send(n.parent, sim.Msg(opElEcho, int64(n.best)))
				return
			}
			for _, w := range ctx.Neighbors() {
				if w != from {
					ctx.Send(w, sim.Msg(opElExplore, int64(n.best)))
				}
			}
		case init == n.best:
			n.resolve(ctx)
		}
	case opElEcho:
		if sim.NodeID(m.W[0]) != n.best {
			return // echo of an extinguished wave
		}
		n.children = insertID(n.children, from)
		n.resolve(ctx)
	case opElDone:
		n.finish(ctx)
	}
}

func (n *ElectionNode) resolve(ctx sim.Context) {
	n.pending--
	if n.pending > 0 {
		return
	}
	if n.best == n.id {
		n.leader = true
		n.finish(ctx)
		return
	}
	ctx.Send(n.parent, sim.Msg(opElEcho, int64(n.best)))
}

func (n *ElectionNode) finish(ctx sim.Context) {
	n.finished = true
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opElDone))
	}
}

// Leader reports whether this node won the election.
func (n *ElectionNode) Leader() bool { return n.leader }

// TreeInfo implements TreeNode.
func (n *ElectionNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return n.parent, n.children, n.leader
}

// Finished implements TreeNode.
func (n *ElectionNode) Finished() bool { return n.finished }
