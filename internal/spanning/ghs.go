package spanning

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// GHS is the Gallager–Humblet–Spira distributed minimum-weight spanning
// tree protocol (the paper's reference [4]), used here as a fully
// distributed initial-tree substrate. Edge weights are the lexicographic
// pair (min endpoint, max endpoint), which are distinct as GHS requires, so
// the result is the unique MST of those synthetic weights — an "arbitrary"
// but deterministic spanning tree.
//
// The implementation follows the original pseudocode: fragments with
// levels, Connect/Initiate merging and absorbing, Test/Accept/Reject
// minimum-outgoing-edge search, Report convergecast and Change-root. The
// original's "place message on end of queue" re-queueing is realised with a
// per-node deferred list retried after every state change. After the core
// detects completion, the lower-identity core node roots the tree and
// broadcasts Done over branch edges (termination by process).
//
// Like the original, the protocol assumes FIFO communication channels (the
// standard model, and the one the MDegST paper uses); run it on engines
// with FIFO delivery.

// ghsWeight is a unique edge weight: the ordered endpoint pair.
type ghsWeight struct{ a, b sim.NodeID }

var ghsInfinity = ghsWeight{a: 1<<62 - 1, b: 1<<62 - 1}

func ghsEdgeWeight(u, v sim.NodeID) ghsWeight {
	e := graph.NewEdge(u, v)
	return ghsWeight{a: e.U, b: e.V}
}

func (w ghsWeight) less(o ghsWeight) bool {
	if w.a != o.a {
		return w.a < o.a
	}
	return w.b < o.b
}

func (w ghsWeight) String() string { return fmt.Sprintf("w(%d,%d)", w.a, w.b) }

type ghsEdgeState uint8

const (
	ghsBasic ghsEdgeState = iota
	ghsBranch
	ghsRejected
)

type ghsNodeState uint8

const (
	ghsFind ghsNodeState = iota
	ghsFound
)

// Typed views of the GHS wire records, decoded at the protocol boundary.
// Word accounting (kind tag + payload): connect 2, initiate 5, test 4,
// report 3, the rest 1.
type ghsConnect struct{ level int }
type ghsInitiate struct {
	level int
	frag  ghsWeight
	state ghsNodeState
}
type ghsTest struct {
	level int
	frag  ghsWeight
}
type ghsReport struct{ best ghsWeight }

func newGHSConnect(level int) sim.WireMsg { return sim.Msg(opGHSConnect, int64(level)) }

func newGHSInitiate(level int, frag ghsWeight, state ghsNodeState) sim.WireMsg {
	m := sim.WireMsg{Op: opGHSInitiate, Nw: 4}
	m.W[0], m.W[1], m.W[2], m.W[3] = int64(level), int64(frag.a), int64(frag.b), int64(state)
	return m
}

func newGHSTest(level int, frag ghsWeight) sim.WireMsg {
	m := sim.WireMsg{Op: opGHSTest, Nw: 3}
	m.W[0], m.W[1], m.W[2] = int64(level), int64(frag.a), int64(frag.b)
	return m
}

func newGHSReport(best ghsWeight) sim.WireMsg {
	m := sim.WireMsg{Op: opGHSReport, Nw: 2}
	m.W[0], m.W[1] = int64(best.a), int64(best.b)
	return m
}

type ghsDeferred struct {
	from sim.NodeID
	msg  sim.WireMsg
}

// GHSNode is one node of the GHS protocol.
type GHSNode struct {
	id        sim.NodeID
	level     int
	frag      ghsWeight
	state     ghsNodeState
	edges     map[sim.NodeID]ghsEdgeState
	bestEdge  sim.NodeID
	bestWt    ghsWeight
	hasBest   bool
	testEdge  sim.NodeID
	testing   bool
	inBranch  sim.NodeID
	hasCore   bool // inBranch is valid
	findCount int
	halted    bool
	finished  bool
	isRoot    bool
	parent    sim.NodeID
	hasParent bool
	deferred  []ghsDeferred
}

// NewGHSFactory returns a factory for the GHS protocol.
func NewGHSFactory() sim.Factory {
	return func(id sim.NodeID, neighbors []sim.NodeID) sim.Protocol {
		n := &GHSNode{id: id, edges: make(map[sim.NodeID]ghsEdgeState, len(neighbors))}
		for _, w := range neighbors {
			n.edges[w] = ghsBasic
		}
		return n
	}
}

// Init wakes the node: its minimum-weight edge becomes a branch and a
// level-0 Connect crosses it.
func (n *GHSNode) Init(ctx sim.Context) {
	neighbors := ctx.Neighbors()
	if len(neighbors) == 0 {
		// Single-node network: already a (trivial) spanning tree.
		n.halted = true
		n.finished = true
		n.isRoot = true
		return
	}
	m := neighbors[0]
	best := ghsEdgeWeight(n.id, m)
	for _, w := range neighbors[1:] {
		if wt := ghsEdgeWeight(n.id, w); wt.less(best) {
			best, m = wt, w
		}
	}
	n.edges[m] = ghsBranch
	n.level = 0
	n.state = ghsFound
	n.bestWt = ghsInfinity
	ctx.Send(m, newGHSConnect(0))
}

// Recv processes one message, then retries deferred messages until no more
// can make progress.
func (n *GHSNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	if !n.process(ctx, from, m) {
		n.deferred = append(n.deferred, ghsDeferred{from: from, msg: m})
		return
	}
	n.retryDeferred(ctx)
}

func (n *GHSNode) retryDeferred(ctx sim.Context) {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.deferred); i++ {
			d := n.deferred[i]
			if n.process(ctx, d.from, d.msg) {
				n.deferred = append(n.deferred[:i], n.deferred[i+1:]...)
				progress = true
				i--
			}
		}
	}
}

// process handles one message; it returns false when the message must be
// deferred per the GHS pseudocode. Wire records decode to their typed
// views here, at the protocol boundary.
func (n *GHSNode) process(ctx sim.Context, from sim.NodeID, m sim.WireMsg) bool {
	switch m.Op {
	case opGHSConnect:
		return n.onConnect(ctx, from, ghsConnect{level: int(m.W[0])})
	case opGHSInitiate:
		n.onInitiate(ctx, from, ghsInitiate{
			level: int(m.W[0]),
			frag:  ghsWeight{a: sim.NodeID(m.W[1]), b: sim.NodeID(m.W[2])},
			state: ghsNodeState(m.W[3]),
		})
		return true
	case opGHSTest:
		return n.onTest(ctx, from, ghsTest{
			level: int(m.W[0]),
			frag:  ghsWeight{a: sim.NodeID(m.W[1]), b: sim.NodeID(m.W[2])},
		})
	case opGHSAccept:
		n.onAccept(ctx, from)
		return true
	case opGHSReject:
		n.onReject(ctx, from)
		return true
	case opGHSReport:
		return n.onReport(ctx, from, ghsReport{best: ghsWeight{a: sim.NodeID(m.W[0]), b: sim.NodeID(m.W[1])}})
	case opGHSChangeRt:
		n.changeRoot(ctx)
		return true
	case opGHSDone:
		n.onDone(ctx, from)
		return true
	default:
		panic(fmt.Sprintf("ghs: unexpected message %s", m.Kind()))
	}
}

func (n *GHSNode) onConnect(ctx sim.Context, from sim.NodeID, msg ghsConnect) bool {
	switch {
	case msg.level < n.level:
		// Absorb the lower-level fragment.
		n.edges[from] = ghsBranch
		ctx.Send(from, newGHSInitiate(n.level, n.frag, n.state))
		if n.state == ghsFind {
			n.findCount++
		}
		return true
	case n.edges[from] == ghsBasic:
		return false // defer: same/higher level over an untested edge
	default:
		// Merge: this edge becomes the new core at level+1.
		ctx.Send(from, newGHSInitiate(n.level+1, ghsEdgeWeight(n.id, from), ghsFind))
		return true
	}
}

func (n *GHSNode) onInitiate(ctx sim.Context, from sim.NodeID, msg ghsInitiate) {
	n.level = msg.level
	n.frag = msg.frag
	n.state = msg.state
	n.inBranch = from
	n.hasCore = true
	n.hasBest = false
	n.bestWt = ghsInfinity
	for _, w := range ctx.Neighbors() {
		if w == from || n.edges[w] != ghsBranch {
			continue
		}
		ctx.Send(w, newGHSInitiate(msg.level, msg.frag, msg.state))
		if msg.state == ghsFind {
			n.findCount++
		}
	}
	if msg.state == ghsFind {
		n.test(ctx)
	}
}

// test probes the minimum-weight basic edge, or reports if none remain.
func (n *GHSNode) test(ctx sim.Context) {
	var best sim.NodeID
	bestWt := ghsInfinity
	found := false
	for _, w := range ctx.Neighbors() {
		if n.edges[w] != ghsBasic {
			continue
		}
		if wt := ghsEdgeWeight(n.id, w); wt.less(bestWt) {
			bestWt, best, found = wt, w, true
		}
	}
	if !found {
		n.testing = false
		n.report(ctx)
		return
	}
	n.testing = true
	n.testEdge = best
	ctx.Send(best, newGHSTest(n.level, n.frag))
}

func (n *GHSNode) onTest(ctx sim.Context, from sim.NodeID, msg ghsTest) bool {
	if msg.level > n.level {
		return false // defer until this node catches up
	}
	if msg.frag != n.frag {
		ctx.Send(from, sim.Msg(opGHSAccept))
		return true
	}
	if n.edges[from] == ghsBasic {
		n.edges[from] = ghsRejected
	}
	if !(n.testing && n.testEdge == from) {
		ctx.Send(from, sim.Msg(opGHSReject))
	} else {
		n.test(ctx)
	}
	return true
}

func (n *GHSNode) onAccept(ctx sim.Context, from sim.NodeID) {
	n.testing = false
	if wt := ghsEdgeWeight(n.id, from); wt.less(n.bestWt) {
		n.bestWt = wt
		n.bestEdge = from
		n.hasBest = true
	}
	n.report(ctx)
}

func (n *GHSNode) onReject(ctx sim.Context, from sim.NodeID) {
	if n.edges[from] == ghsBasic {
		n.edges[from] = ghsRejected
	}
	n.test(ctx)
}

// report converges the minimum outgoing edge toward the core.
func (n *GHSNode) report(ctx sim.Context) {
	if n.findCount == 0 && !n.testing {
		n.state = ghsFound
		ctx.Send(n.inBranch, newGHSReport(n.bestWt))
	}
}

func (n *GHSNode) onReport(ctx sim.Context, from sim.NodeID, msg ghsReport) bool {
	if !n.hasCore || from != n.inBranch {
		n.findCount--
		if msg.best.less(n.bestWt) {
			n.bestWt = msg.best
			n.bestEdge = from
			n.hasBest = true
		}
		n.report(ctx)
		return true
	}
	// Report over the core edge: the two fragment halves compare results.
	if n.state == ghsFind {
		return false // defer until this half finished its own search
	}
	switch {
	case n.bestWt.less(msg.best):
		n.changeRoot(ctx)
	case msg.best == ghsInfinity && n.bestWt == ghsInfinity:
		n.halt(ctx, from)
	}
	return true
}

// changeRoot forwards toward the fragment's minimum outgoing edge and sends
// Connect across it.
func (n *GHSNode) changeRoot(ctx sim.Context) {
	if n.edges[n.bestEdge] == ghsBranch {
		ctx.Send(n.bestEdge, sim.Msg(opGHSChangeRt))
		return
	}
	ctx.Send(n.bestEdge, newGHSConnect(n.level))
	n.edges[n.bestEdge] = ghsBranch
}

// halt fires on both core nodes when the MST is complete; the lower-identity
// core node becomes the root and broadcasts Done.
func (n *GHSNode) halt(ctx sim.Context, otherCore sim.NodeID) {
	n.halted = true
	if n.id < otherCore {
		n.isRoot = true
		n.finished = true
		for _, w := range ctx.Neighbors() {
			if n.edges[w] == ghsBranch {
				ctx.Send(w, sim.Msg(opGHSDone))
			}
		}
	}
}

func (n *GHSNode) onDone(ctx sim.Context, from sim.NodeID) {
	if n.finished {
		return
	}
	n.finished = true
	n.parent = from
	n.hasParent = true
	for _, w := range ctx.Neighbors() {
		if w != from && n.edges[w] == ghsBranch {
			ctx.Send(w, sim.Msg(opGHSDone))
		}
	}
}

// TreeInfo implements TreeNode: branch edges minus the parent are children.
func (n *GHSNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	var children []sim.NodeID
	for w, st := range n.edges {
		if st == ghsBranch && (!n.hasParent || w != n.parent) {
			children = insertID(children, w)
		}
	}
	return n.parent, children, !n.hasParent
}

// Finished implements TreeNode.
func (n *GHSNode) Finished() bool { return n.finished }
