package spanning

import (
	"sort"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/tree"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"single":     singleNode(),
		"pair":       graph.Path(2),
		"path8":      graph.Path(8),
		"ring9":      graph.Ring(9),
		"star12":     graph.Star(12),
		"wheel10":    graph.Wheel(10),
		"grid4x5":    graph.Grid(4, 5),
		"complete7":  graph.Complete(7),
		"hyper4":     graph.Hypercube(4),
		"gnp30":      graph.Gnp(30, 0.2, 1),
		"gnm40":      graph.Gnm(40, 90, 2),
		"geo25":      graph.RandomGeometric(25, 0.35, 3),
		"ba30":       graph.BarabasiAlbert(30, 2, 4),
		"lollipop":   graph.Lollipop(6, 7),
		"bipartite":  graph.CompleteBipartite(4, 6),
		"relabelled": relabelled(),
	}
}

func singleNode() *graph.Graph {
	g := graph.New()
	g.AddNode(0)
	return g
}

func relabelled() *graph.Graph {
	g, _ := graph.RelabelRandom(graph.Gnp(20, 0.3, 5), 6)
	return g
}

func protocolFactories(g *graph.Graph) map[string]sim.Factory {
	root := g.Nodes()[0]
	return map[string]sim.Factory{
		"flood":    NewFloodFactory(root),
		"dfs":      NewDFSFactory(root),
		"ghs":      NewGHSFactory(),
		"election": NewElectionFactory(),
	}
}

func testEngines() map[string]sim.Engine {
	return map[string]sim.Engine{
		"event-unit":   &sim.EventEngine{Delay: sim.UnitDelay},
		"event-random": &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 11, FIFO: true},
		"event-nofifo": &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 13, FIFO: false},
		"async":        &sim.AsyncEngine{},
	}
}

// TestProtocolsProduceSpanningTrees runs every protocol over every graph on
// every engine and validates the result.
func TestProtocolsProduceSpanningTrees(t *testing.T) {
	for gname, g := range testGraphs() {
		for pname, factory := range protocolFactories(g) {
			for ename, eng := range testEngines() {
				if pname == "ghs" && ename == "event-nofifo" {
					continue // GHS assumes FIFO channels, like the original
				}
				name := gname + "/" + pname + "/" + ename
				t.Run(name, func(t *testing.T) {
					st, rep, err := Build(eng, g, factory)
					if err != nil {
						t.Fatal(err)
					}
					if err := st.Validate(g); err != nil {
						t.Fatal(err)
					}
					if rep.Messages == 0 && g.N() > 1 {
						t.Error("no messages exchanged")
					}
				})
			}
		}
	}
}

// TestFloodUnitDelayIsBFS checks that the flooding tree under unit delays is
// a breadth-first tree: every node's depth equals its BFS distance.
func TestFloodUnitDelayIsBFS(t *testing.T) {
	g := graph.Gnp(40, 0.15, 21)
	root := g.Nodes()[0]
	st, _, err := Build(&sim.EventEngine{Delay: sim.UnitDelay}, g, NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	want, err := BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		if st.Depth(v) != want.Depth(v) {
			t.Errorf("node %d: flood depth %d, BFS depth %d", v, st.Depth(v), want.Depth(v))
		}
	}
}

// TestDFSDeterministicAcrossEngines relies on the token being sequential:
// the DFS tree must not depend on delays at all.
func TestDFSDeterministicAcrossEngines(t *testing.T) {
	g := graph.Gnp(30, 0.2, 33)
	root := g.Nodes()[0]
	var trees []*tree.Tree
	for _, eng := range testEngines() {
		st, _, err := Build(eng, g, NewDFSFactory(root))
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, st)
	}
	for i := 1; i < len(trees); i++ {
		if !trees[0].Equal(trees[i]) {
			t.Fatal("DFS trees differ across engines")
		}
	}
	// And it matches the sequential DFS with the same neighbour order.
	want, err := DFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if !trees[0].Equal(want) {
		t.Error("distributed DFS differs from sequential DFS")
	}
}

// kruskalLex computes the MST under lexicographic edge weights — the
// reference for GHS.
func kruskalLex(g *graph.Graph) []graph.Edge {
	edges := g.Edges() // already sorted lexicographically = by weight
	parent := make(map[graph.NodeID]graph.NodeID)
	var find func(graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	for _, v := range g.Nodes() {
		parent[v] = v
	}
	var mst []graph.Edge
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			mst = append(mst, e)
		}
	}
	return mst
}

// TestGHSMatchesKruskal checks the GHS tree is the unique MST of the
// lexicographic weights, on every engine.
func TestGHSMatchesKruskal(t *testing.T) {
	for gname, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		want := kruskalLex(g)
		for ename, eng := range testEngines() {
			if ename == "event-nofifo" {
				continue // GHS assumes FIFO channels
			}
			t.Run(gname+"/"+ename, func(t *testing.T) {
				st, _, err := Build(eng, g, NewGHSFactory())
				if err != nil {
					t.Fatal(err)
				}
				got := st.Edges()
				if len(got) != len(want) {
					t.Fatalf("edge count %d, want %d", len(got), len(want))
				}
				sort.Slice(want, func(i, j int) bool {
					if want[i].U != want[j].U {
						return want[i].U < want[j].U
					}
					return want[i].V < want[j].V
				})
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("edge %d: got %v, want %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestElectionPicksMinID verifies the extinction winner.
func TestElectionPicksMinID(t *testing.T) {
	g := graph.Gnp(25, 0.25, 55)
	for ename, eng := range testEngines() {
		t.Run(ename, func(t *testing.T) {
			protos, _, err := eng.Run(g, NewElectionFactory())
			if err != nil {
				t.Fatal(err)
			}
			min := g.Nodes()[0]
			for id, p := range protos {
				leader := p.(*ElectionNode).Leader()
				if leader != (id == min) {
					t.Errorf("node %d leader=%v, want %v", id, leader, id == min)
				}
			}
		})
	}
}

// TestGHSMessageComplexity sanity-checks the O(n log n + m) bound with a
// generous constant.
func TestGHSMessageComplexity(t *testing.T) {
	g := graph.Gnp(64, 0.15, 77)
	_, rep, err := Build(&sim.EventEngine{Delay: sim.UnitDelay}, g, NewGHSFactory())
	if err != nil {
		t.Fatal(err)
	}
	n, m := float64(g.N()), float64(g.M())
	bound := int64(10*n*logn(g.N()) + 6*m)
	if rep.Messages > bound {
		t.Errorf("GHS used %d messages, bound %d (n=%d m=%d)", rep.Messages, bound, g.N(), g.M())
	}
}

func logn(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// --- sequential builders ---

func TestSequentialBuilders(t *testing.T) {
	for gname, g := range testGraphs() {
		t.Run(gname, func(t *testing.T) {
			root := g.Nodes()[0]
			bfs, err := BFSTree(g, root)
			if err != nil {
				t.Fatal(err)
			}
			if err := bfs.Validate(g); err != nil {
				t.Fatalf("BFS: %v", err)
			}
			dfs, err := DFSTree(g, root)
			if err != nil {
				t.Fatal(err)
			}
			if err := dfs.Validate(g); err != nil {
				t.Fatalf("DFS: %v", err)
			}
			star, err := StarTree(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := star.Validate(g); err != nil {
				t.Fatalf("star: %v", err)
			}
			deg, _ := star.MaxDegree()
			if g.N() > 1 && deg < g.MaxDegree() {
				t.Errorf("star tree degree %d below graph max degree %d", deg, g.MaxDegree())
			}
			rnd, err := RandomST(g, 123)
			if err != nil {
				t.Fatal(err)
			}
			if err := rnd.Validate(g); err != nil {
				t.Fatalf("random: %v", err)
			}
		})
	}
}

// TestRandomSTVariety: Wilson's algorithm should produce different trees for
// different seeds on a graph with many spanning trees.
func TestRandomSTVariety(t *testing.T) {
	g := graph.Complete(8)
	a, err := RandomST(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomST(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.SameEdges(b) {
		t.Error("two seeds produced identical random spanning trees (possible but astronomically unlikely)")
	}
}
