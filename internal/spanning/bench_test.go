package spanning

import (
	"fmt"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// Benchmarks of the startup substrates: message counts and wall cost per
// construction on a common workload.
func BenchmarkConstruction(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := graph.Gnm(n, 4*n, 1)
		root := g.Nodes()[0]
		protocols := []struct {
			name    string
			factory sim.Factory
		}{
			{"flood", NewFloodFactory(root)},
			{"dfs", NewDFSFactory(root)},
			{"ghs", NewGHSFactory()},
			{"election", NewElectionFactory()},
		}
		for _, p := range protocols {
			b.Run(fmt.Sprintf("%s/n=%d", p.name, n), func(b *testing.B) {
				var msgs int64
				for i := 0; i < b.N; i++ {
					_, rep, err := Build(&sim.EventEngine{Delay: sim.UnitDelay}, g, p.factory)
					if err != nil {
						b.Fatal(err)
					}
					msgs = rep.Messages
				}
				b.ReportMetric(float64(msgs), "msgs")
			})
		}
	}
}

// BenchmarkWilson measures the uniform spanning tree sampler.
func BenchmarkWilson(b *testing.B) {
	g := graph.Gnm(256, 1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomST(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
