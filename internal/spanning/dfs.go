package spanning

import "mdegst/internal/sim"

// Token depth-first-search spanning tree: a single token performs the
// traversal, so the protocol is sequential and its tree is independent of
// message delays — handy as a deterministic substrate on any engine.
//
// Messages: Discover carries the token to an unvisited candidate; Return
// hands it back, reporting whether the candidate joined as a child. At most
// two messages cross each edge in each direction: O(m) messages, O(m) time.

// dfsReturn is the typed view of the token-return record.
type dfsReturn struct{ accepted bool }

// DFSNode is one node of the token-DFS protocol.
type DFSNode struct {
	id       sim.NodeID
	root     bool
	visited  bool
	finished bool
	parent   sim.NodeID
	children []sim.NodeID
	next     int // index into Neighbors of the next candidate to try
}

// NewDFSFactory returns a factory for the token DFS rooted at root.
func NewDFSFactory(root sim.NodeID) sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		return &DFSNode{id: id, root: id == root}
	}
}

// Init gives the root the token.
func (n *DFSNode) Init(ctx sim.Context) {
	if !n.root {
		return
	}
	n.visited = true
	n.advance(ctx)
}

// Recv handles token arrival and return, decoding the return record's
// accepted flag at the boundary.
func (n *DFSNode) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	switch m.Op {
	case opDFSDiscover:
		if n.visited {
			ctx.Send(from, sim.Msg(opDFSReturn, sim.B2W(false)))
			return
		}
		n.visited = true
		n.parent = from
		n.advance(ctx)
	case opDFSReturn:
		msg := dfsReturn{accepted: m.W[0] != 0}
		if msg.accepted {
			n.children = insertID(n.children, from)
		}
		n.advance(ctx)
	case opStDone:
		n.finish(ctx)
	}
}

// advance sends the token to the next untried neighbour, or returns it to
// the parent when this node's neighbourhood is exhausted.
func (n *DFSNode) advance(ctx sim.Context) {
	neighbors := ctx.Neighbors()
	for n.next < len(neighbors) {
		w := neighbors[n.next]
		n.next++
		if !n.root && w == n.parent {
			continue
		}
		ctx.Send(w, sim.Msg(opDFSDiscover))
		return
	}
	if n.root {
		n.finish(ctx)
		return
	}
	ctx.Send(n.parent, sim.Msg(opDFSReturn, sim.B2W(true)))
}

func (n *DFSNode) finish(ctx sim.Context) {
	n.finished = true
	for _, c := range n.children {
		ctx.Send(c, sim.Msg(opStDone))
	}
}

// TreeInfo implements TreeNode.
func (n *DFSNode) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return n.parent, n.children, n.root
}

// Finished implements TreeNode.
func (n *DFSNode) Finished() bool { return n.finished }
