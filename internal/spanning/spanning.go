// Package spanning builds the initial rooted spanning trees the paper's
// improvement algorithm starts from ("we suppose a Spanning Tree already
// constructed ... For constructing such a tree, many different distributed
// algorithms exist").
//
// Distributed protocols (run on an internal/sim engine, all terminating by
// process, i.e. every node learns that construction finished):
//
//   - Flood: flooding with echo termination from a designated root; under
//     unit delays it yields a BFS tree, under asynchrony an arbitrary tree.
//   - DFS: classic token depth-first traversal.
//   - GHS: the Gallager–Humblet–Spira minimum-weight spanning tree protocol
//     with lexicographic edge identities as unique weights.
//   - Election: echo-wave extinction; elects the minimum identity and keeps
//     the winning wave's tree, needing no designated root.
//
// Sequential builders (harness helpers for experiments, not protocols):
// BFSTree, DFSTree, StarTree (adversarially high degree), RandomST (Wilson's
// uniform spanning tree).
package spanning

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/tree"
)

// TreeNode is implemented by every spanning-tree protocol node so the final
// tree can be read back after the run.
type TreeNode interface {
	// TreeInfo returns this node's view of the finished tree.
	TreeInfo() (parent sim.NodeID, children []sim.NodeID, isRoot bool)
	// Finished reports whether the node knows the construction terminated
	// (termination by process, required by the paper's startup step).
	Finished() bool
}

// Extract reads the tree out of the final protocol states and validates it
// as a spanning tree of g.
func Extract(g *graph.Graph, protos map[sim.NodeID]sim.Protocol) (*tree.Tree, error) {
	var root sim.NodeID
	roots := 0
	parent := make(map[graph.NodeID]graph.NodeID, len(protos))
	for id, p := range protos {
		tn, ok := p.(TreeNode)
		if !ok {
			return nil, fmt.Errorf("spanning: node %d protocol %T does not expose a tree", id, p)
		}
		if !tn.Finished() {
			return nil, fmt.Errorf("spanning: node %d did not learn termination", id)
		}
		par, _, isRoot := tn.TreeInfo()
		if isRoot {
			root = id
			roots++
			parent[id] = id
		} else {
			parent[id] = par
		}
	}
	if roots != 1 {
		return nil, fmt.Errorf("spanning: %d roots, want exactly 1", roots)
	}
	t, err := tree.FromParentMap(root, parent)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(g); err != nil {
		return nil, err
	}
	return t, nil
}

// ExtractDense reads the tree out of dense-indexed final protocol states
// (the sim.RunCompiledDense form: protos[i] belongs to c.Index().ID(i)) and
// validates it as a spanning tree of the snapshot. It is Extract without
// the intermediate identity-keyed maps: the parent table goes straight into
// tree.FromParentDense and only the graph constraint — every parent link is
// a real edge — is checked here, against the CSR.
func ExtractDense(c *graph.CSR, protos []sim.Protocol) (*tree.Dense, error) {
	idx := c.Index()
	if len(protos) != c.N() {
		return nil, fmt.Errorf("spanning: %d protocol states for %d nodes", len(protos), c.N())
	}
	parent := make([]int32, len(protos))
	root := int32(-1)
	roots := 0
	for i, p := range protos {
		tn, ok := p.(TreeNode)
		if !ok {
			return nil, fmt.Errorf("spanning: node %d protocol %T does not expose a tree", idx.ID(int32(i)), p)
		}
		if !tn.Finished() {
			return nil, fmt.Errorf("spanning: node %d did not learn termination", idx.ID(int32(i)))
		}
		par, _, isRoot := tn.TreeInfo()
		if isRoot {
			root = int32(i)
			roots++
			parent[i] = tree.NoParent
			continue
		}
		pi, ok := idx.Of(par)
		if !ok {
			return nil, fmt.Errorf("spanning: node %d reports parent %d, not in the snapshot", idx.ID(int32(i)), par)
		}
		parent[i] = pi
	}
	if roots != 1 {
		return nil, fmt.Errorf("spanning: %d roots, want exactly 1", roots)
	}
	d, err := tree.FromParentDense(idx, root, parent)
	if err != nil {
		return nil, err
	}
	for i, p := range parent {
		if p != tree.NoParent && !c.HasEdge(int32(i), p) {
			return nil, fmt.Errorf("spanning: tree edge (%d,%d) not in graph", idx.ID(int32(i)), idx.ID(p))
		}
	}
	return d, nil
}

// Build runs a spanning-tree protocol on the engine and extracts the tree.
func Build(eng sim.Engine, g *graph.Graph, f sim.Factory) (*tree.Tree, *sim.Report, error) {
	return BuildCompiled(eng, g.Compile(), f)
}

// BuildCompiled is Build over a pre-compiled snapshot, the form the
// experiment harness uses so one compilation is shared across trials.
func BuildCompiled(eng sim.Engine, c *graph.CSR, f sim.Factory) (*tree.Tree, *sim.Report, error) {
	protos, rep, err := sim.RunCompiled(eng, c, f)
	if err != nil {
		return nil, nil, err
	}
	t, err := Extract(c.Source(), protos)
	if err != nil {
		return nil, nil, err
	}
	return t, rep, nil
}

// BuildCompiledDense is BuildCompiled on the dense path: the engine hands
// the final states back as a slice (sim.DenseSnapshotEngine) and extraction
// produces the tree in its dense working form directly, never touching an
// identity-keyed map. The experiment harness startup step uses it so that
// building the initial tree on a million-node workload costs a handful of
// allocations rather than one per node.
func BuildCompiledDense(eng sim.Engine, c *graph.CSR, f sim.Factory) (*tree.Dense, *sim.Report, error) {
	protos, rep, err := sim.RunCompiledDense(eng, c, f)
	if err != nil {
		return nil, nil, err
	}
	d, err := ExtractDense(c, protos)
	if err != nil {
		return nil, nil, err
	}
	return d, rep, nil
}

func removeID(ns []sim.NodeID, v sim.NodeID) []sim.NodeID {
	out := make([]sim.NodeID, 0, len(ns))
	for _, n := range ns {
		if n != v {
			out = append(out, n)
		}
	}
	return out
}

func insertID(ns []sim.NodeID, v sim.NodeID) []sim.NodeID {
	i := 0
	for i < len(ns) && ns[i] < v {
		i++
	}
	ns = append(ns, 0)
	copy(ns[i+1:], ns[i:])
	ns[i] = v
	return ns
}
