package spanning

import (
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/workload"
)

// The race job's full-scale legs: the small differential corpus forces the
// parallel plane structurally, but only a large window makes the parallel
// prefix scan, the per-shard scatter and the speculative wheel windows run
// at their real widths under the race detector. Correctness (equivalence
// to the serial engines) is pinned elsewhere; these tests exist to put the
// actual hot paths in front of -race at scale.

// TestShardedDenseGrid100kFloodRaceScale floods the catalog's 100k-node
// grid through 8 shards on forced multi-goroutine workers, over the dense
// build path — the exact configuration of the scaling suite's largest
// parallel cell (windows there are wide enough to take the parallel-scan
// branch without lowering parallelScanMin).
func TestShardedDenseGrid100kFloodRaceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sharded run")
	}
	c := workload.Grid100k().Compile()
	root := c.Index().ID(0)
	part := graph.PartitionRefined(c, 8)
	eng := &sim.ShardedEngine{Shards: 8, Partition: part, Workers: 4, Delay: sim.UnitDelay, FIFO: true}
	tr, rep, err := BuildCompiledDense(eng, c, NewFloodFactorySnap(c, root))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(c); err != nil {
		t.Fatal(err)
	}
	if rep.Messages == 0 || rep.Shards != 8 {
		t.Fatalf("report implausible: %d messages, %d shards", rep.Messages, rep.Shards)
	}
}

// TestShardedWheelUniformDelayRaceScale drives the randomised-delay tier —
// speculative per-shard wheel windows — on a grid large enough for long
// window drains and frequent cross-shard limit tightenings.
func TestShardedWheelUniformDelayRaceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sharded run")
	}
	c := graph.Grid(100, 100).Compile()
	root := c.Index().ID(0)
	part := graph.PartitionRefined(c, 8)
	eng := &sim.ShardedEngine{Shards: 8, Partition: part, Delay: sim.UniformDelay(0.3), Seed: 9, FIFO: true}
	tr, rep, err := BuildCompiledDense(eng, c, NewFloodFactorySnap(c, root))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(c); err != nil {
		t.Fatal(err)
	}
	if rep.Messages == 0 {
		t.Fatal("no messages delivered")
	}
}
