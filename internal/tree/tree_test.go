package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdegst/internal/graph"
)

// buildSample returns the graph/tree pair used across tests:
//
//	    0
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
//
// plus non-tree graph edges (3,4) and (4,5).
func buildSample(t *testing.T) (*graph.Graph, *Tree) {
	t.Helper()
	g := graph.New()
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {3, 4}, {4, 5}} {
		g.MustAddEdge(e[0], e[1])
	}
	tr, err := FromParentMap(0, map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestFromParentMapValidation(t *testing.T) {
	if _, err := FromParentMap(0, map[graph.NodeID]graph.NodeID{0: 1, 1: 0}); err == nil {
		t.Error("root with foreign parent accepted")
	}
	if _, err := FromParentMap(0, map[graph.NodeID]graph.NodeID{1: 2, 2: 1}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestDegreesAndQueries(t *testing.T) {
	g, tr := buildSample(t)
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	wantDeg := map[graph.NodeID]int{0: 2, 1: 3, 2: 2, 3: 1, 4: 1, 5: 1}
	for v, d := range wantDeg {
		if tr.Degree(v) != d {
			t.Errorf("deg(%d)=%d, want %d", v, tr.Degree(v), d)
		}
	}
	max, at := tr.MaxDegree()
	if max != 3 || len(at) != 1 || at[0] != 1 {
		t.Errorf("max degree %d at %v, want 3 at [1]", max, at)
	}
	if tr.Depth(4) != 2 || tr.Height() != 2 {
		t.Errorf("depth(4)=%d height=%d", tr.Depth(4), tr.Height())
	}
	h := tr.DegreeHistogram()
	if h[1] != 3 || h[2] != 2 || h[3] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestPaths(t *testing.T) {
	_, tr := buildSample(t)
	p := tr.PathToRoot(4)
	want := []graph.NodeID{4, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path to root %v, want %v", p, want)
		}
	}
	pb := tr.PathBetween(3, 5)
	wantB := []graph.NodeID{3, 1, 0, 2, 5}
	if len(pb) != len(wantB) {
		t.Fatalf("path %v, want %v", pb, wantB)
	}
	for i := range wantB {
		if pb[i] != wantB[i] {
			t.Fatalf("path %v, want %v", pb, wantB)
		}
	}
	if got := tr.PathBetween(4, 4); len(got) != 1 || got[0] != 4 {
		t.Errorf("self path = %v", got)
	}
}

func TestSubtreeNodes(t *testing.T) {
	_, tr := buildSample(t)
	got := tr.SubtreeNodes(1)
	want := []graph.NodeID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("subtree = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subtree = %v, want %v", got, want)
		}
	}
}

func TestReroot(t *testing.T) {
	g, tr := buildSample(t)
	edgesBefore := tr.Edges()
	tr.Reroot(4)
	if tr.Root != 4 {
		t.Fatalf("root = %d", tr.Root)
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	edgesAfter := tr.Edges()
	for i := range edgesBefore {
		if edgesBefore[i] != edgesAfter[i] {
			t.Fatal("reroot changed the edge set")
		}
	}
	// Degrees are invariant under rerooting.
	if tr.Degree(1) != 3 || tr.Degree(4) != 1 {
		t.Errorf("degrees changed: deg(1)=%d deg(4)=%d", tr.Degree(1), tr.Degree(4))
	}
	if tr.Parent[0] != 1 || tr.Parent[1] != 4 {
		t.Errorf("path reversal wrong: parent[0]=%d parent[1]=%d", tr.Parent[0], tr.Parent[1])
	}
}

func TestSwapPrimitives(t *testing.T) {
	g, tr := buildSample(t)
	// Exchange: remove (0,2), re-root the detached subtree {2,5} at 5,
	// attach 5 under 4 via graph edge (4,5).
	if err := tr.CutChild(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.RerootSubtree(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachExisting(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	if tr.Degree(0) != 1 || tr.Degree(4) != 2 {
		t.Errorf("post-swap degrees wrong: deg(0)=%d deg(4)=%d", tr.Degree(0), tr.Degree(4))
	}
	max, _ := tr.MaxDegree()
	if max != 3 {
		t.Errorf("max degree %d", max)
	}
}

func TestSwapErrors(t *testing.T) {
	_, tr := buildSample(t)
	if err := tr.CutChild(0, 5); err == nil {
		t.Error("cut of non-child accepted")
	}
	if err := tr.AttachExisting(0, 5); err == nil {
		t.Error("attach of still-attached node accepted")
	}
	if err := tr.RerootSubtree(1, 5); err == nil {
		t.Error("reroot of attached subtree accepted")
	}
}

func TestAttach(t *testing.T) {
	tr := New(0)
	if err := tr.Attach(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(9, 10); err == nil {
		t.Error("attach below missing parent accepted")
	}
	if err := tr.Attach(0, 2); err == nil {
		t.Error("re-attach of existing node accepted")
	}
	if tr.N() != 3 || tr.Depth(2) != 2 {
		t.Errorf("n=%d depth(2)=%d", tr.N(), tr.Depth(2))
	}
}

func TestEqualAndSameEdges(t *testing.T) {
	_, a := buildSample(t)
	_, b := buildSample(t)
	if !a.Equal(b) {
		t.Error("identical trees not equal")
	}
	b.Reroot(4)
	if a.Equal(b) {
		t.Error("rerooted tree equal to original")
	}
	if !a.SameEdges(b) {
		t.Error("rerooted tree must keep the same edges")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, tr := buildSample(t)
	tr.Parent[5] = 1 // edge (1,5) is not in g... and children list now lies
	if err := tr.Validate(g); err == nil {
		t.Error("corrupted tree passed validation")
	}
}

func TestToGraphAndClone(t *testing.T) {
	g, tr := buildSample(t)
	tg := tr.ToGraph()
	if !tg.IsTree() {
		t.Error("ToGraph not a tree")
	}
	c := tr.Clone()
	c.Reroot(5)
	if tr.Root != 0 {
		t.Error("clone shares state")
	}
	_ = g
}

// Property: re-rooting at a random sequence of nodes never changes the edge
// set or degrees, and always validates.
func TestQuickRerootInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.Gnm(n, n-1+rng.Intn(2*n), seed)
		parent := g.BFSParents(g.Nodes()[0])
		tr, err := FromParentMap(g.Nodes()[0], parent)
		if err != nil {
			return false
		}
		degrees := make(map[graph.NodeID]int)
		for _, v := range tr.Nodes() {
			degrees[v] = tr.Degree(v)
		}
		for i := 0; i < 8; i++ {
			target := tr.Nodes()[rng.Intn(n)]
			tr.Reroot(target)
			if tr.Root != target || tr.Validate(g) != nil {
				return false
			}
			for _, v := range tr.Nodes() {
				if tr.Degree(v) != degrees[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cut + subtree-reroot + attach along a random non-tree edge keeps
// a valid spanning tree (the improvement swap safety argument).
func TestQuickSwapKeepsSpanningTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := graph.Gnm(n, n+rng.Intn(2*n), seed)
		tr, err := FromParentMap(g.Nodes()[0], g.BFSParents(g.Nodes()[0]))
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			edges := g.Edges()
			e := edges[rng.Intn(len(edges))]
			if tr.HasEdge(e.U, e.V) {
				continue
			}
			// Cut the topmost edge on U's root path that keeps V outside
			// the detached subtree, then re-root at U and attach to V.
			path := tr.PathToRoot(e.U)
			if len(path) < 2 {
				continue
			}
			// Find the highest ancestor a of U such that V is not below a.
			cut := -1
			for i := len(path) - 2; i >= 0; i-- {
				below := false
				for _, x := range tr.SubtreeNodes(path[i]) {
					if x == e.V {
						below = true
						break
					}
				}
				if !below {
					cut = i
					break
				}
			}
			if cut < 0 {
				continue
			}
			top := path[cut]
			if err := tr.CutChild(path[cut+1], top); err != nil {
				return false
			}
			if err := tr.RerootSubtree(top, e.U); err != nil {
				return false
			}
			if err := tr.AttachExisting(e.V, e.U); err != nil {
				return false
			}
			if err := tr.Validate(g); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
