package tree

import (
	"strings"
	"testing"

	"mdegst/internal/graph"
)

func TestWriteDOT(t *testing.T) {
	g, tr := buildSample(t)
	var b strings.Builder
	if err := tr.WriteDOT(&b, g); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"graph spanningtree {",
		"0 -- 1 [penwidth=2];",                 // tree edge
		"3 -- 4 [style=dashed",                 // non-tree edge
		"0 [style=filled fillcolor=lightblue]", // root
		"1 [style=filled fillcolor=salmon]",    // max degree node
		"max degree 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output misses %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithoutGraph(t *testing.T) {
	_, tr := buildSample(t)
	var b strings.Builder
	if err := tr.WriteDOT(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "dashed") {
		t.Error("nil graph must omit non-tree edges")
	}
}

func TestWriteDOTRootIsHotSpot(t *testing.T) {
	// A star tree: the root is also the unique maximum-degree node.
	g := graph.Star(5)
	tr, err := FromParentMap(0, map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0, 3: 0, 4: 0})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteDOT(&b, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `fillcolor=red`) {
		t.Error("root that is also the hot spot should be red")
	}
}
