// Package tree provides the rooted spanning tree representation shared by
// every tree-building and tree-improving algorithm in this module, together
// with validation against a host graph, degree queries, re-rooting (the
// paper's path-reversal), and the add/remove edge primitives used by
// improvement swaps.
package tree

import (
	"fmt"
	"sort"
	"strings"

	"mdegst/internal/graph"
)

// Tree is a rooted tree over graph.NodeID nodes. Parent maps every non-root
// node to its parent; the root is absent from Parent. Children holds the
// inverse, with child lists kept sorted for determinism.
type Tree struct {
	Root     graph.NodeID
	Parent   map[graph.NodeID]graph.NodeID
	Children map[graph.NodeID][]graph.NodeID
}

// New returns a tree containing only the root.
func New(root graph.NodeID) *Tree {
	return &Tree{
		Root:     root,
		Parent:   make(map[graph.NodeID]graph.NodeID),
		Children: map[graph.NodeID][]graph.NodeID{root: nil},
	}
}

// FromParentMap builds a tree from a parent map in which the root maps to
// itself (or is absent). It rejects structures that are not a single tree.
func FromParentMap(root graph.NodeID, parent map[graph.NodeID]graph.NodeID) (*Tree, error) {
	t := New(root)
	for v, p := range parent {
		if v == root {
			if p != root {
				return nil, fmt.Errorf("tree: root %d has parent %d", root, p)
			}
			continue
		}
		t.Parent[v] = p
	}
	for v, p := range t.Parent {
		t.Children[p] = append(t.Children[p], v)
		if _, ok := t.Children[v]; !ok {
			t.Children[v] = nil
		}
	}
	for v := range t.Children {
		t.sortChildren(v)
	}
	// Reject cycles/forests: every node must reach the root. Walks stop at
	// the first node already verified, so the total work is O(n) — a
	// per-node walk to the root would be O(n · depth), which dominated
	// 100k-node extractions before the scheduler work made those runs cheap.
	const (
		walking  = 1
		verified = 2
	)
	state := make(map[graph.NodeID]uint8, len(t.Children))
	state[root] = verified
	var path []graph.NodeID
	for v := range t.Children {
		cur := v
		for state[cur] == 0 {
			state[cur] = walking
			path = append(path, cur)
			p, ok := t.Parent[cur]
			if !ok {
				return nil, fmt.Errorf("tree: node %d cannot reach root %d", v, root)
			}
			cur = p
		}
		if state[cur] == walking {
			return nil, fmt.Errorf("tree: cycle through node %d", cur)
		}
		for _, u := range path {
			state[u] = verified
		}
		path = path[:0]
	}
	return t, nil
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	c := New(t.Root)
	for v, p := range t.Parent {
		c.Parent[v] = p
	}
	for v, ch := range t.Children {
		c.Children[v] = append([]graph.NodeID(nil), ch...)
	}
	return c
}

// N returns the number of nodes in the tree.
func (t *Tree) N() int { return len(t.Children) }

// Nodes returns all tree nodes in ascending order.
func (t *Tree) Nodes() []graph.NodeID {
	ns := make([]graph.NodeID, 0, len(t.Children))
	for v := range t.Children {
		ns = append(ns, v)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// HasNode reports whether v belongs to the tree.
func (t *Tree) HasNode(v graph.NodeID) bool {
	_, ok := t.Children[v]
	return ok
}

// Attach adds child under parent. The parent must already be in the tree and
// the child must not.
func (t *Tree) Attach(parent, child graph.NodeID) error {
	if !t.HasNode(parent) {
		return fmt.Errorf("tree: attach below missing node %d", parent)
	}
	if t.HasNode(child) {
		return fmt.Errorf("tree: node %d already in tree", child)
	}
	t.Parent[child] = parent
	t.Children[parent] = insertChild(t.Children[parent], child)
	t.Children[child] = nil
	return nil
}

// Degree returns the tree degree of v: number of children plus one for the
// parent edge if v is not the root.
func (t *Tree) Degree(v graph.NodeID) int {
	d := len(t.Children[v])
	if v != t.Root {
		d++
	}
	return d
}

// MaxDegree returns the maximum tree degree and the sorted list of nodes
// attaining it.
func (t *Tree) MaxDegree() (int, []graph.NodeID) {
	max := 0
	var at []graph.NodeID
	for _, v := range t.Nodes() {
		switch d := t.Degree(v); {
		case d > max:
			max, at = d, []graph.NodeID{v}
		case d == max:
			at = append(at, v)
		}
	}
	return max, at
}

// DegreeHistogram returns tree degree -> count.
func (t *Tree) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := range t.Children {
		h[t.Degree(v)]++
	}
	return h
}

// Edges returns the tree's edges in normalised ascending order.
func (t *Tree) Edges() []graph.Edge {
	es := make([]graph.Edge, 0, len(t.Parent))
	for v, p := range t.Parent {
		es = append(es, graph.NewEdge(v, p))
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// HasEdge reports whether (u,v) is a tree edge.
func (t *Tree) HasEdge(u, v graph.NodeID) bool {
	return t.Parent[u] == v && u != t.Root || t.Parent[v] == u && v != t.Root
}

// PathToRoot returns the node sequence v, parent(v), ..., root.
func (t *Tree) PathToRoot(v graph.NodeID) []graph.NodeID {
	var path []graph.NodeID
	for {
		path = append(path, v)
		if v == t.Root {
			return path
		}
		v = t.Parent[v]
	}
}

// PathBetween returns the unique tree path from u to v inclusive.
func (t *Tree) PathBetween(u, v graph.NodeID) []graph.NodeID {
	up := t.PathToRoot(u)
	vp := t.PathToRoot(v)
	depth := make(map[graph.NodeID]int, len(up))
	for i, x := range up {
		depth[x] = i
	}
	// First node of v's root path that also lies on u's root path is the LCA.
	for j, x := range vp {
		if i, ok := depth[x]; ok {
			path := append([]graph.NodeID(nil), up[:i+1]...)
			for k := j - 1; k >= 0; k-- {
				path = append(path, vp[k])
			}
			return path
		}
	}
	return nil
}

// Depth returns the number of edges between v and the root.
func (t *Tree) Depth(v graph.NodeID) int {
	d := 0
	for v != t.Root {
		v = t.Parent[v]
		d++
	}
	return d
}

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int {
	max := 0
	for v := range t.Children {
		if d := t.Depth(v); d > max {
			max = d
		}
	}
	return max
}

// SubtreeNodes returns all nodes in the subtree rooted at v, ascending.
func (t *Tree) SubtreeNodes(v graph.NodeID) []graph.NodeID {
	out := []graph.NodeID{v}
	for head := 0; head < len(out); head++ {
		out = append(out, t.Children[out[head]]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reroot re-roots the tree at v by reversing the parent pointers on the
// v-to-root path — structurally identical to the paper's MoveRoot path
// reversal. The edge set is unchanged.
func (t *Tree) Reroot(v graph.NodeID) {
	if v == t.Root {
		return
	}
	path := t.PathToRoot(v) // v ... root
	for i := len(path) - 1; i > 0; i-- {
		parent, child := path[i], path[i-1]
		t.Children[parent] = removeChild(t.Children[parent], child)
		t.Parent[parent] = child
		t.Children[child] = insertChild(t.Children[child], parent)
	}
	delete(t.Parent, v)
	t.Root = v
}

// CutChild removes the tree edge from parent to child; the child's subtree
// becomes parentless (dangling) until reattached. Used by improvement swaps.
func (t *Tree) CutChild(parent, child graph.NodeID) error {
	if t.Parent[child] != parent {
		return fmt.Errorf("tree: %d is not the parent of %d", parent, child)
	}
	t.Children[parent] = removeChild(t.Children[parent], child)
	delete(t.Parent, child)
	return nil
}

// AttachExisting makes child (currently parentless, other than the root) a
// child of parent. It is the reattachment half of an improvement swap.
func (t *Tree) AttachExisting(parent, child graph.NodeID) error {
	if !t.HasNode(parent) || !t.HasNode(child) {
		return fmt.Errorf("tree: attach of missing node %d under %d", child, parent)
	}
	if _, hasParent := t.Parent[child]; hasParent {
		return fmt.Errorf("tree: node %d already has a parent", child)
	}
	t.Parent[child] = parent
	t.Children[parent] = insertChild(t.Children[parent], child)
	return nil
}

// RerootSubtree reverses parent pointers along the path from the subtree's
// current top `top` down to v, making v the top of that dangling subtree.
// The subtree must have been detached first (top has no parent).
func (t *Tree) RerootSubtree(top, v graph.NodeID) error {
	if _, hasParent := t.Parent[top]; hasParent && top != t.Root {
		return fmt.Errorf("tree: subtree top %d still attached", top)
	}
	if top == v {
		return nil
	}
	// Walk up from v to top.
	path := []graph.NodeID{v}
	for cur := v; cur != top; {
		p, ok := t.Parent[cur]
		if !ok {
			return fmt.Errorf("tree: node %d not below subtree top %d", v, top)
		}
		path = append(path, p)
		cur = p
	}
	// path = v ... top; reverse pointers.
	for i := len(path) - 1; i > 0; i-- {
		parent, child := path[i], path[i-1]
		t.Children[parent] = removeChild(t.Children[parent], child)
		t.Parent[parent] = child
		t.Children[child] = insertChild(t.Children[child], parent)
	}
	delete(t.Parent, v)
	return nil
}

// Validate checks that t is a spanning tree of g: same node set, every tree
// edge is a graph edge, parent/children are mutually consistent, and the
// structure is a single rooted tree.
func (t *Tree) Validate(g *graph.Graph) error {
	if t.N() != g.N() {
		return fmt.Errorf("tree: has %d nodes, graph has %d", t.N(), g.N())
	}
	if !t.HasNode(t.Root) {
		return fmt.Errorf("tree: root %d not a tree node", t.Root)
	}
	if _, ok := t.Parent[t.Root]; ok {
		return fmt.Errorf("tree: root %d has a parent", t.Root)
	}
	for v := range t.Children {
		if !g.HasNode(v) {
			return fmt.Errorf("tree: node %d not in graph", v)
		}
	}
	if len(t.Parent) != t.N()-1 {
		return fmt.Errorf("tree: %d parent entries for %d nodes", len(t.Parent), t.N())
	}
	for v, p := range t.Parent {
		if !g.HasEdge(v, p) {
			return fmt.Errorf("tree: edge (%d,%d) not in graph", v, p)
		}
		if !containsChild(t.Children[p], v) {
			return fmt.Errorf("tree: %d missing from children of %d", v, p)
		}
	}
	for p, ch := range t.Children {
		if !sort.SliceIsSorted(ch, func(i, j int) bool { return ch[i] < ch[j] }) {
			return fmt.Errorf("tree: children of %d not sorted", p)
		}
		for i, c := range ch {
			if i > 0 && ch[i-1] == c {
				return fmt.Errorf("tree: duplicate child %d of %d", c, p)
			}
			if t.Parent[c] != p {
				return fmt.Errorf("tree: child %d of %d has parent %d", c, p, t.Parent[c])
			}
		}
	}
	// Reachability: count nodes in the root's subtree.
	if got := len(t.SubtreeNodes(t.Root)); got != t.N() {
		return fmt.Errorf("tree: root reaches %d of %d nodes", got, t.N())
	}
	return nil
}

// Equal reports whether two trees have the same root and structure.
func (t *Tree) Equal(o *Tree) bool {
	if t.Root != o.Root || t.N() != o.N() {
		return false
	}
	for v, p := range t.Parent {
		if o.Parent[v] != p {
			return false
		}
	}
	return true
}

// SameEdges reports whether two trees have identical edge sets, ignoring
// root placement and orientation.
func (t *Tree) SameEdges(o *Tree) bool {
	a, b := t.Edges(), o.Edges()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ToGraph returns the tree as an undirected graph.
func (t *Tree) ToGraph() *graph.Graph {
	g := graph.New()
	for v := range t.Children {
		g.AddNode(v)
	}
	for v, p := range t.Parent {
		g.MustAddEdge(v, p)
	}
	return g
}

// String renders the tree as an indented outline, useful in failure output.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(v graph.NodeID, depth int)
	rec = func(v graph.NodeID, depth int) {
		fmt.Fprintf(&b, "%s%d (deg %d)\n", strings.Repeat("  ", depth), v, t.Degree(v))
		for _, c := range t.Children[v] {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

func (t *Tree) sortChildren(v graph.NodeID) {
	ch := t.Children[v]
	sort.Slice(ch, func(i, j int) bool { return ch[i] < ch[j] })
}

func insertChild(ch []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(ch), func(i int) bool { return ch[i] >= v })
	ch = append(ch, 0)
	copy(ch[i+1:], ch[i:])
	ch[i] = v
	return ch
}

func removeChild(ch []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(ch), func(i int) bool { return ch[i] >= v })
	if i < len(ch) && ch[i] == v {
		return append(ch[:i], ch[i+1:]...)
	}
	return ch
}

func containsChild(ch []graph.NodeID, v graph.NodeID) bool {
	i := sort.Search(len(ch), func(i int) bool { return ch[i] >= v })
	return i < len(ch) && ch[i] == v
}
