package tree

import (
	"fmt"
	"sort"

	"mdegst/internal/graph"
)

// Dense is the slice-backed rooted tree over a graph.Index: the parent of
// dense node i is parent[i] (NoParent for the root or a detached subtree
// top) and children[i] holds i's children as a sorted dense slice. It is the
// representation every tree-improving hot path works on; Tree remains the
// map-keyed facade view, with FromTree/ToTree converting between the two.
//
// Because dense indices are assigned in ascending NodeID order, "ascending
// dense index" and "ascending NodeID" are the same order: algorithms ported
// from the map representation keep their deterministic tie-breaking.
type Dense struct {
	idx      *graph.Index
	root     int32
	parent   []int32
	children [][]int32

	// kidArena backs the initial children slices so building a Dense costs
	// O(n) in two allocations; mutation may grow individual lists out of the
	// arena, which is fine.
	kidArena []int32
}

// NoParent marks a dense node with no parent (the root, or the top of a
// subtree detached by CutChild).
const NoParent int32 = -1

// NewDense returns a Dense tree over idx rooted at dense node root with no
// edges yet (every other node detached).
func NewDense(idx *graph.Index, root int32) *Dense {
	n := idx.N()
	d := &Dense{
		idx:      idx,
		root:     root,
		parent:   make([]int32, n),
		children: make([][]int32, n),
	}
	for i := range d.parent {
		d.parent[i] = NoParent
	}
	return d
}

// FromTree converts the map-keyed facade tree to its dense form over idx.
func FromTree(t *Tree, idx *graph.Index) (*Dense, error) {
	root, ok := idx.Of(t.Root)
	if !ok {
		return nil, fmt.Errorf("tree: root %d not in index", t.Root)
	}
	d := NewDense(idx, root)
	n := idx.N()
	if t.N() != n {
		return nil, fmt.Errorf("tree: has %d nodes, index %d", t.N(), n)
	}
	counts := make([]int32, n)
	for v, p := range t.Parent {
		vi, ok1 := idx.Of(v)
		pi, ok2 := idx.Of(p)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("tree: edge (%d,%d) not in index", v, p)
		}
		d.parent[vi] = pi
		counts[pi]++
	}
	d.kidArena = make([]int32, n-1+1)
	at := int32(0)
	for i := int32(0); int(i) < n; i++ {
		d.children[i] = d.kidArena[at:at:(at + counts[i])]
		at += counts[i]
	}
	// Filling in ascending child order keeps every list sorted.
	for i := int32(0); int(i) < n; i++ {
		if p := d.parent[i]; p != NoParent {
			d.children[p] = append(d.children[p], i)
		}
	}
	return d, nil
}

// FromParentDense builds a Dense tree directly from a dense parent table:
// parent[i] is the dense parent of node i, NoParent at the root only. The
// table is copied. This is the map-free analogue of FromParentMap followed
// by FromTree — the extraction path of million-node runs — so validation
// stays O(n) on flat arrays: a visit-stamp walk proves every node reaches
// the root (equivalently, that the parent edges are acyclic).
func FromParentDense(idx *graph.Index, root int32, parent []int32) (*Dense, error) {
	n := idx.N()
	if len(parent) != n {
		return nil, fmt.Errorf("tree: parent table has %d entries, index %d", len(parent), n)
	}
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	if parent[root] != NoParent {
		return nil, fmt.Errorf("tree: root %d has a parent", idx.ID(root))
	}
	d := &Dense{
		idx:      idx,
		root:     root,
		parent:   append([]int32(nil), parent...),
		children: make([][]int32, n),
	}
	counts := make([]int32, n)
	for i := int32(0); int(i) < n; i++ {
		p := d.parent[i]
		if i == root {
			continue
		}
		switch {
		case p == NoParent:
			return nil, fmt.Errorf("tree: node %d detached", idx.ID(i))
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("tree: node %d has out-of-range parent %d", idx.ID(i), p)
		case p == i:
			return nil, fmt.Errorf("tree: node %d is its own parent", idx.ID(i))
		}
		counts[p]++
	}
	// Every non-root node has exactly one parent edge, so a walk up from any
	// node either reaches the root or re-enters itself. Stamping each node
	// with the pass that first visited it settles every node exactly once:
	// hitting a node stamped by an earlier pass inherits that pass's proof.
	state := make([]int32, n)
	for i := int32(0); int(i) < n; i++ {
		if state[i] != 0 || i == root {
			continue
		}
		pass := i + 1
		v := i
		for v != root && state[v] == 0 {
			state[v] = pass
			v = d.parent[v]
		}
		if v != root && state[v] == pass {
			return nil, fmt.Errorf("tree: cycle through node %d", idx.ID(v))
		}
	}
	d.kidArena = make([]int32, n-1+1)
	at := int32(0)
	for i := int32(0); int(i) < n; i++ {
		d.children[i] = d.kidArena[at:at:(at + counts[i])]
		at += counts[i]
	}
	// Filling in ascending child order keeps every list sorted.
	for i := int32(0); int(i) < n; i++ {
		if p := d.parent[i]; p != NoParent {
			d.children[p] = append(d.children[p], i)
		}
	}
	return d, nil
}

// CompileDense builds the dense form of t over a fresh index of g.
func CompileDense(t *Tree, g *graph.Graph) (*Dense, error) {
	return FromTree(t, graph.NewIndex(g))
}

// ToTree converts back to the map-keyed facade tree.
func (d *Dense) ToTree() *Tree {
	t := New(d.idx.ID(d.root))
	for i, p := range d.parent {
		v := d.idx.ID(int32(i))
		if p != NoParent {
			t.Parent[v] = d.idx.ID(p)
		}
		ch := make([]graph.NodeID, len(d.children[i]))
		for k, c := range d.children[i] {
			ch[k] = d.idx.ID(c)
		}
		t.Children[v] = ch
	}
	return t
}

// Clone returns a deep copy sharing the index.
func (d *Dense) Clone() *Dense {
	c := &Dense{
		idx:      d.idx,
		root:     d.root,
		parent:   append([]int32(nil), d.parent...),
		children: make([][]int32, len(d.children)),
	}
	c.kidArena = make([]int32, 0, len(d.parent))
	for i, ch := range d.children {
		at := len(c.kidArena)
		c.kidArena = append(c.kidArena, ch...)
		c.children[i] = c.kidArena[at:len(c.kidArena):len(c.kidArena)]
	}
	return c
}

// Index returns the NodeID<->dense bijection the tree is built over.
func (d *Dense) Index() *graph.Index { return d.idx }

// N returns the number of nodes.
func (d *Dense) N() int { return len(d.parent) }

// Root returns the dense root.
func (d *Dense) Root() int32 { return d.root }

// Parent returns the parent of dense node i (NoParent for the root).
func (d *Dense) Parent(i int32) int32 { return d.parent[i] }

// Children returns i's children, ascending. Shared; do not modify.
func (d *Dense) Children(i int32) []int32 { return d.children[i] }

// Degree returns the tree degree of dense node i.
func (d *Dense) Degree(i int32) int {
	deg := len(d.children[i])
	if d.parent[i] != NoParent {
		deg++
	}
	return deg
}

// MaxDegree returns the maximum tree degree and the ascending dense list of
// nodes attaining it. The returned slice is appended to at (may reuse at's
// backing array).
func (d *Dense) MaxDegree(at []int32) (int, []int32) {
	max := 0
	at = at[:0]
	for i := range d.parent {
		switch deg := d.Degree(int32(i)); {
		case deg > max:
			max, at = deg, append(at[:0], int32(i))
		case deg == max:
			at = append(at, int32(i))
		}
	}
	return max, at
}

// HasEdge reports whether (i,j) is a tree edge.
func (d *Dense) HasEdge(i, j int32) bool {
	return d.parent[i] == j || d.parent[j] == i
}

// Reroot re-roots the tree at dense node v by reversing the parent pointers
// on the v-to-root path — the paper's MoveRoot path reversal.
func (d *Dense) Reroot(v int32) {
	if v == d.root {
		return
	}
	child := NoParent
	for cur := v; cur != NoParent; {
		next := d.parent[cur]
		if child == NoParent {
			d.parent[cur] = NoParent
		} else {
			d.removeChild(cur, child)
			d.parent[cur] = child
			d.insertChild(child, cur)
		}
		child = cur
		cur = next
	}
	d.root = v
}

// CutChild removes the edge from parent to child; child's subtree dangles
// until reattached.
func (d *Dense) CutChild(parent, child int32) {
	if d.parent[child] != parent {
		panic(fmt.Sprintf("tree: %d is not the parent of %d", d.idx.ID(parent), d.idx.ID(child)))
	}
	d.removeChild(parent, child)
	d.parent[child] = NoParent
}

// AttachExisting makes the parentless node child a child of parent.
func (d *Dense) AttachExisting(parent, child int32) {
	if d.parent[child] != NoParent {
		panic(fmt.Sprintf("tree: node %d already has a parent", d.idx.ID(child)))
	}
	d.parent[child] = parent
	d.insertChild(parent, child)
}

// RerootSubtree reverses parent pointers from the detached subtree's top
// down to v, making v the new top.
func (d *Dense) RerootSubtree(top, v int32) {
	if top == v {
		return
	}
	child := NoParent
	cur := v
	for {
		next := d.parent[cur]
		if child == NoParent {
			d.parent[cur] = NoParent
		} else {
			d.removeChild(cur, child)
			d.parent[cur] = child
			d.insertChild(child, cur)
		}
		if cur == top {
			break
		}
		if next == NoParent {
			panic(fmt.Sprintf("tree: node %d not below subtree top %d", d.idx.ID(v), d.idx.ID(top)))
		}
		child = cur
		cur = next
	}
}

// WalkSubtree appends the subtree of v (preorder, children ascending) to
// out and returns it.
func (d *Dense) WalkSubtree(v int32, out []int32) []int32 {
	out = append(out, v)
	for head := len(out) - 1; head < len(out); head++ {
		out = append(out, d.children[out[head]]...)
	}
	return out
}

// Validate checks the dense tree against a snapshot of the host graph: every
// edge is a graph edge, children lists are sorted and mutually consistent
// with parents, and the root reaches every node.
func (d *Dense) Validate(c *graph.CSR) error {
	if c.Index() != d.idx {
		// A different Index object is acceptable only if it encodes the
		// same bijection; cheap length check first, then spot equality.
		if c.N() != d.N() {
			return fmt.Errorf("tree: index mismatch with snapshot")
		}
		for i := int32(0); int(i) < d.N(); i++ {
			if c.Index().ID(i) != d.idx.ID(i) {
				return fmt.Errorf("tree: index mismatch with snapshot at dense %d", i)
			}
		}
	}
	if d.parent[d.root] != NoParent {
		return fmt.Errorf("tree: root %d has a parent", d.idx.ID(d.root))
	}
	edges := 0
	for i, p := range d.parent {
		if p == NoParent {
			if int32(i) != d.root {
				return fmt.Errorf("tree: node %d detached", d.idx.ID(int32(i)))
			}
			continue
		}
		edges++
		if !c.HasEdge(int32(i), p) {
			return fmt.Errorf("tree: edge (%d,%d) not in graph", d.idx.ID(int32(i)), d.idx.ID(p))
		}
	}
	if edges != d.N()-1 {
		return fmt.Errorf("tree: %d parent entries for %d nodes", edges, d.N())
	}
	for i, ch := range d.children {
		if !sort.SliceIsSorted(ch, func(a, b int) bool { return ch[a] < ch[b] }) {
			return fmt.Errorf("tree: children of %d not sorted", d.idx.ID(int32(i)))
		}
		for _, c := range ch {
			if d.parent[c] != int32(i) {
				return fmt.Errorf("tree: child %d of %d has parent %d", d.idx.ID(c), d.idx.ID(int32(i)), d.parent[c])
			}
		}
	}
	if got := len(d.WalkSubtree(d.root, nil)); got != d.N() {
		return fmt.Errorf("tree: root reaches %d of %d nodes", got, d.N())
	}
	return nil
}

func (d *Dense) removeChild(p, c int32) {
	ch := d.children[p]
	for i, x := range ch {
		if x == c {
			d.children[p] = append(ch[:i], ch[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("tree: node %d has no child %d", d.idx.ID(p), d.idx.ID(c)))
}

func (d *Dense) insertChild(p, c int32) {
	ch := d.children[p]
	i := 0
	for i < len(ch) && ch[i] < c {
		i++
	}
	ch = append(ch, 0)
	copy(ch[i+1:], ch[i:])
	ch[i] = c
	d.children[p] = ch
}
