package tree

import (
	"math/rand"
	"testing"

	"mdegst/internal/graph"
)

func randomSpanningTree(t *testing.T, g *graph.Graph, seed int64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := g.Nodes()
	root := nodes[rng.Intn(len(nodes))]
	parent := map[graph.NodeID]graph.NodeID{root: root}
	order := []graph.NodeID{root}
	for head := 0; head < len(order); head++ {
		for _, w := range g.Neighbors(order[head]) {
			if _, ok := parent[w]; !ok {
				parent[w] = order[head]
				order = append(order, w)
			}
		}
	}
	tr, err := FromParentMap(root, parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func requireSame(t *testing.T, tr *Tree, d *Dense, what string) {
	t.Helper()
	back := d.ToTree()
	if !tr.Equal(back) {
		t.Fatalf("%s: dense tree diverged from map tree\nmap:\n%s\ndense:\n%s", what, tr, back)
	}
	for _, v := range tr.Nodes() {
		if tr.Degree(v) != d.Degree(d.Index().MustOf(v)) {
			t.Fatalf("%s: degree of %d: map %d dense %d", what, v, tr.Degree(v), d.Degree(d.Index().MustOf(v)))
		}
	}
	k, at := tr.MaxDegree()
	dk, dat := d.MaxDegree(nil)
	if k != dk || len(at) != len(dat) {
		t.Fatalf("%s: max degree (%d,%v) vs dense (%d,%v)", what, k, at, dk, dat)
	}
	for i := range at {
		if at[i] != d.Index().ID(dat[i]) {
			t.Fatalf("%s: max degree node set differs: %v vs dense %v", what, at, dat)
		}
	}
}

// TestDenseMirrorsTree is the property test of the slice-backed tree: on
// random spanning trees of random graphs (including FromParentMap built over
// scrambled identities against a CSR Compile of the same graph), the dense
// form and the map form must agree operation for operation — construction,
// re-rooting, cut/reroot-subtree/attach swaps, degrees and validation.
func TestDenseMirrorsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := graph.Gnm(3+rng.Intn(40), 2+rng.Intn(80), rng.Int63())
		if trial%2 == 1 {
			g, _ = graph.RelabelRandom(g, rng.Int63())
		}
		c := g.Compile()
		tr := randomSpanningTree(t, g, rng.Int63())
		if err := tr.Validate(g); err != nil {
			t.Fatal(err)
		}
		d, err := FromTree(tr, c.Index())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(c); err != nil {
			t.Fatal(err)
		}
		requireSame(t, tr, d, "construction")

		nodes := g.Nodes()
		for op := 0; op < 20; op++ {
			switch rng.Intn(2) {
			case 0: // Reroot at a random node.
				v := nodes[rng.Intn(len(nodes))]
				tr.Reroot(v)
				d.Reroot(c.Index().MustOf(v))
				requireSame(t, tr, d, "reroot")
			case 1: // A full swap: cut a random child edge, reroot the
				// dangling subtree at one of its nodes, reattach it under a
				// node of the remaining tree adjacent in g (if any).
				k, at := tr.MaxDegree()
				_ = k
				owner := at[rng.Intn(len(at))]
				if len(tr.Children[owner]) == 0 {
					continue
				}
				arrival := tr.Children[owner][rng.Intn(len(tr.Children[owner]))]
				sub := tr.SubtreeNodes(arrival)
				u := sub[rng.Intn(len(sub))]
				inSub := make(map[graph.NodeID]bool, len(sub))
				for _, x := range sub {
					inSub[x] = true
				}
				var v graph.NodeID
				found := false
				for _, w := range g.Neighbors(u) {
					if !inSub[w] {
						v, found = w, true
						break
					}
				}
				if !found {
					continue
				}
				if err := tr.CutChild(owner, arrival); err != nil {
					t.Fatal(err)
				}
				if err := tr.RerootSubtree(arrival, u); err != nil {
					t.Fatal(err)
				}
				if err := tr.AttachExisting(v, u); err != nil {
					t.Fatal(err)
				}
				ix := c.Index()
				d.CutChild(ix.MustOf(owner), ix.MustOf(arrival))
				d.RerootSubtree(ix.MustOf(arrival), ix.MustOf(u))
				d.AttachExisting(ix.MustOf(v), ix.MustOf(u))
				requireSame(t, tr, d, "swap")
			}
		}
		if err := tr.Validate(g); err != nil {
			t.Fatalf("map tree invalid after ops: %v", err)
		}
		if err := d.Validate(c); err != nil {
			t.Fatalf("dense tree invalid after ops: %v", err)
		}
		clone := d.Clone()
		if !d.ToTree().Equal(clone.ToTree()) {
			t.Fatal("clone differs")
		}
	}
}

// TestDenseWalkSubtree pins preorder child-ascending iteration.
func TestDenseWalkSubtree(t *testing.T) {
	g := graph.Path(6)
	tr := randomSpanningTree(t, g, 1)
	c := g.Compile()
	d, err := FromTree(tr, c.Index())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Nodes() {
		want := tr.SubtreeNodes(v) // ascending
		got := d.WalkSubtree(c.Index().MustOf(v), nil)
		if len(got) != len(want) {
			t.Fatalf("subtree of %d: %d nodes vs %d", v, len(got), len(want))
		}
		seen := make(map[graph.NodeID]bool)
		for _, i := range got {
			seen[c.Index().ID(i)] = true
		}
		for _, w := range want {
			if !seen[w] {
				t.Fatalf("subtree of %d misses %d", v, w)
			}
		}
	}
}

// TestFromParentDenseMatchesFromTree checks the direct dense constructor
// against the FromTree conversion on random spanning trees: same parents,
// same sorted children, and both validate against the snapshot.
func TestFromParentDenseMatchesFromTree(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(1),
		graph.Path(2),
		graph.Ring(9),
		graph.Grid(7, 5),
		graph.Gnp(40, 0.15, 7),
		graph.BarabasiAlbert(60, 3, 9),
	}
	for gi, g := range graphs {
		c := g.Compile()
		idx := c.Index()
		for seed := int64(0); seed < 4; seed++ {
			tr := randomSpanningTree(t, g, seed*31+int64(gi))
			want, err := FromTree(tr, idx)
			if err != nil {
				t.Fatal(err)
			}
			parent := make([]int32, idx.N())
			for i := range parent {
				parent[i] = want.Parent(int32(i))
			}
			got, err := FromParentDense(idx, want.Root(), parent)
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if err := got.Validate(c); err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			requireSame(t, tr, got, "FromParentDense")
		}
	}
}

// TestFromParentDenseRejects exercises every validation branch of the dense
// constructor: length and root mismatches, detached nodes, self-loops,
// out-of-range parents and cycles (including cycles off the root component).
func TestFromParentDenseRejects(t *testing.T) {
	idx := graph.Ring(6).Compile().Index()
	cases := map[string]struct {
		root   int32
		parent []int32
	}{
		"short table":     {0, []int32{NoParent, 0}},
		"root range":      {9, []int32{NoParent, 0, 1, 2, 3, 4}},
		"rooted root":     {0, []int32{5, 0, 1, 2, 3, 4}},
		"detached":        {0, []int32{NoParent, 0, 1, NoParent, 3, 4}},
		"self parent":     {0, []int32{NoParent, 0, 2, 2, 3, 4}},
		"out of range":    {0, []int32{NoParent, 0, 1, 99, 3, 4}},
		"two cycle":       {0, []int32{NoParent, 0, 3, 2, 3, 4}},
		"long cycle":      {0, []int32{NoParent, 0, 3, 4, 5, 3}},
		"negative parent": {0, []int32{NoParent, 0, 1, -7, 3, 4}},
	}
	for name, tc := range cases {
		if _, err := FromParentDense(idx, tc.root, tc.parent); err == nil {
			t.Errorf("%s: accepted invalid parent table", name)
		}
	}
	// And the happy path on the same index, for contrast.
	if _, err := FromParentDense(idx, 2, []int32{1, 2, NoParent, 2, 3, 4}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}
