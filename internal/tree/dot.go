package tree

import (
	"fmt"
	"io"
	"sort"

	"mdegst/internal/graph"
)

// WriteDOT renders the tree in Graphviz DOT format, highlighting the root
// and the maximum-degree nodes, optionally drawing the host graph's
// non-tree edges dashed (pass nil to omit them).
func (t *Tree) WriteDOT(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintln(w, "graph spanningtree {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [shape=circle];")
	maxDeg, maxNodes := t.MaxDegree()
	hot := make(map[graph.NodeID]bool, len(maxNodes))
	for _, v := range maxNodes {
		hot[v] = true
	}
	for _, v := range t.Nodes() {
		attrs := ""
		switch {
		case v == t.Root && hot[v]:
			attrs = ` [style=filled fillcolor=red label="` + fmt.Sprintf("%d*", v) + `"]`
		case v == t.Root:
			attrs = " [style=filled fillcolor=lightblue]"
		case hot[v]:
			attrs = " [style=filled fillcolor=salmon]"
		}
		fmt.Fprintf(w, "  %d%s;\n", v, attrs)
	}
	for _, e := range t.Edges() {
		fmt.Fprintf(w, "  %d -- %d [penwidth=2];\n", e.U, e.V)
	}
	if g != nil {
		var rest []graph.Edge
		for _, e := range g.Edges() {
			if !t.HasEdge(e.U, e.V) {
				rest = append(rest, e)
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].U != rest[j].U {
				return rest[i].U < rest[j].U
			}
			return rest[i].V < rest[j].V
		})
		for _, e := range rest {
			fmt.Fprintf(w, "  %d -- %d [style=dashed color=gray];\n", e.U, e.V)
		}
	}
	fmt.Fprintf(w, "  label=\"max degree %d\";\n", maxDeg)
	_, err := fmt.Fprintln(w, "}")
	return err
}
