// Package workload is the single catalog of the large benchmark graphs.
// The root bench suite, the internal/sim engine benches and the `mdstbench
// -perf`/-scale suites all measure "the 100k grid" or "the 16k
// preferential-attachment graph" — before this catalog each spelled out its
// own generator call, and a drifted seed or size silently made trajectories
// incomparable. A workload name used anywhere in a BENCH_*.json file or a
// benchmark label resolves here and nowhere else.
package workload

import "mdegst/internal/graph"

// Workload names one benchmark graph. Gen is a fresh generation per call —
// the graphs are the dominant setup cost of the large suites, so callers
// generate lazily and compile once.
type Workload struct {
	Name string
	Gen  func() *graph.Graph
}

// Large is the large-graph flood tier of the perf suite (the
// BENCH_queue.json trajectory): raw engine throughput from 4k to 100k
// nodes.
func Large() []Workload {
	return []Workload{
		{"gnm-4096", Gnm4096},
		{"ba-16384", BA16384},
		{"grid-100k", Grid100k},
	}
}

// Scale is the shards×GOMAXPROCS scaling tier (the BENCH_scale.json
// trajectory): the workloads big enough that window-parallel rounds can
// win, heavy-tailed and mesh-shaped both.
func Scale() []Workload {
	return []Workload{
		{"grid-100k", Grid100k},
		{"grid-1M", Grid1M},
		{"ba-16384", BA16384},
	}
}

// The named generators, fixed seed and size. These exact parameters are
// recorded in the BENCH_*.json trajectory files; changing one invalidates
// every baseline that mentions its name.

func Gnm4096() *graph.Graph  { return graph.Gnm(4096, 16384, 1) }
func BA16384() *graph.Graph  { return graph.BarabasiAlbert(16384, 2, 1) }
func Grid100k() *graph.Graph { return graph.Grid(316, 316) }
func Grid1M() *graph.Graph   { return graph.Grid(1000, 1000) }
