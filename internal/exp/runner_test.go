package exp

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRunnerDeterminism is the acceptance test of the parallel harness:
// every experiment table rendered at one worker must be byte-identical to
// the same table rendered at eight workers (and to the classic sequential
// driver). Run with -race to also exercise the worker pool for data races.
func TestRunnerDeterminism(t *testing.T) {
	cfg := Quick()
	render := func(tables []*Table) string {
		var b strings.Builder
		for _, tbl := range tables {
			tbl.Fprint(&b)
		}
		return b.String()
	}

	r1 := &Runner{Config: cfg, Parallel: 1}
	t1, err := r1.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r8 := &Runner{Config: cfg, Parallel: 8}
	t8, err := r8.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(t8), render(t1); got != want {
		t.Errorf("tables differ between parallel=8 and parallel=1:\n--- parallel=1\n%s\n--- parallel=8\n%s", want, got)
	}

	// The classic one-shot drivers are the same trials run sequentially.
	var seq []*Table
	for _, id := range IDs() {
		seq = append(seq, All()[id](cfg))
	}
	if got, want := render(t1), render(seq); got != want {
		t.Errorf("runner output differs from sequential drivers:\n--- drivers\n%s\n--- runner\n%s", want, got)
	}
}

// TestRunnerJSONDeterminism: the machine-readable encoding must also be
// bit-identical across worker counts.
func TestRunnerJSONDeterminism(t *testing.T) {
	cfg := Quick()
	encode := func(parallel int) []byte {
		tables, err := (&Runner{Config: cfg, Parallel: parallel}).Run([]string{"E5", "E6"})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := NewResultSet(cfg, tables).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := encode(1), encode(8); !bytes.Equal(a, b) {
		t.Errorf("JSON differs between worker counts:\n%s\nvs\n%s", a, b)
	}
}

func TestRunnerSubsetAndOrder(t *testing.T) {
	tables, err := (&Runner{Config: Quick(), Parallel: 4}).Run([]string{"E6", "E5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "E6" || tables[1].ID != "E5" {
		ids := make([]string, len(tables))
		for i, tbl := range tables {
			ids[i] = tbl.ID
		}
		t.Errorf("tables = %v, want [E6 E5]", ids)
	}
}

func TestRunnerUnknownExperiment(t *testing.T) {
	if _, err := (&Runner{Config: Quick()}).Run([]string{"E99"}); err == nil {
		t.Error("want error for unknown experiment id")
	}
}

func TestRunnerProgress(t *testing.T) {
	var mu sync.Mutex
	last := map[string]ProgressEvent{}
	events := 0
	r := &Runner{Config: Quick(), Parallel: 4, Progress: func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		events++
		if prev, ok := last[ev.Experiment]; ok {
			if ev.Done != prev.Done+1 {
				t.Errorf("%s: done jumped %d -> %d", ev.Experiment, prev.Done, ev.Done)
			}
			if ev.Total != prev.Total {
				t.Errorf("%s: total changed %d -> %d", ev.Experiment, prev.Total, ev.Total)
			}
		} else if ev.Done != 1 {
			t.Errorf("%s: first event has done=%d", ev.Experiment, ev.Done)
		}
		last[ev.Experiment] = ev
	}}
	tables, err := r.Run([]string{"E5", "E8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	total := 0
	for id, ev := range last {
		if ev.Done != ev.Total {
			t.Errorf("%s finished at %d/%d", id, ev.Done, ev.Total)
		}
		total += ev.Total
	}
	if events != total {
		t.Errorf("saw %d progress events, want %d", events, total)
	}
}

// TestRunnerTrialPanic: a panicking trial must surface as an error naming
// the experiment, not crash the pool or hang.
func TestRunnerTrialPanic(t *testing.T) {
	reg := allSpecs()
	// Sanity-check the error path through a spec wired to fail.
	s := spec{
		id:     "boom",
		trials: []func() any{func() any { panic("kaboom") }},
	}
	_ = reg
	r := &Runner{Config: Quick(), Parallel: 2}
	_, err := r.runSpecs([]spec{s})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("want panic converted to error naming the spec, got %v", err)
	}
}

func TestRunnerWorkers(t *testing.T) {
	if (&Runner{}).Workers() <= 0 {
		t.Error("default workers must be positive")
	}
	if got := (&Runner{Parallel: 3}).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}
