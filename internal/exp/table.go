// Package exp is the experiment harness: one driver per experiment in
// DESIGN.md §4, each regenerating a table of the evaluation.
//
// Every experiment is decomposed into independent seeded trials. The
// classic drivers (E1Rounds, ...) run them sequentially; Runner fans the
// same trials across a worker pool and reassembles the tables
// deterministically, so for a fixed Config the output is bit-identical at
// any worker count. ResultSet carries the tables on a machine-readable
// JSON surface. Both are exercised by cmd/mdstbench and by the root-level
// benchmarks.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result. The json tags define the stable
// machine-readable surface emitted by ResultSet.WriteJSON and mdstbench
// -json.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Claim  string     `json:"claim,omitempty"` // the paper's claim this table checks
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Add appends a row, formatting each cell with %v (floats get %.3g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Config scales the experiments: Seeds repetitions per cell and a size
// factor in (0,1] to shrink workloads for quick runs.
type Config struct {
	Seeds int
	Scale float64
}

// Default returns the full-size configuration used for EXPERIMENTS.md.
func Default() Config { return Config{Seeds: 5, Scale: 1} }

// Quick returns a configuration small enough for unit tests.
func Quick() Config { return Config{Seeds: 2, Scale: 0.25} }

func (c Config) seeds() int {
	if c.Seeds <= 0 {
		return 5
	}
	return c.Seeds
}

func (c Config) scaleFactor() float64 {
	if c.Scale <= 0 || c.Scale > 1 {
		return 1
	}
	return c.Scale
}

func (c Config) scale(n int) int {
	v := int(float64(n) * c.scaleFactor())
	if v < 8 {
		v = 8
	}
	return v
}
