package exp

import (
	"strings"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
)

// TestEngineForRoutesLargeWorkloads pins the sharded-path routing: graphs
// at the threshold run on the shard-partitioned engine, smaller ones on
// the plain event engine — and the routing is invisible in the results
// (the golden-table test holds the byte-identity end to end; this checks
// the mechanism at the seam).
func TestEngineForRoutesLargeWorkloads(t *testing.T) {
	small := graph.Gnm(shardNodeThreshold-1, 3*(shardNodeThreshold-1), 1).Compile()
	large := graph.Gnm(shardNodeThreshold+44, 3*shardNodeThreshold, 1).Compile()
	if _, ok := engineFor(small).(*sim.EventEngine); !ok {
		t.Fatalf("below threshold: got %T, want *sim.EventEngine", engineFor(small))
	}
	sharded, ok := engineFor(large).(*sim.ShardedEngine)
	if !ok {
		t.Fatalf("at threshold: got %T, want *sim.ShardedEngine", engineFor(large))
	}
	if sharded.Shards < 2 {
		t.Fatalf("sharded route uses %d shards", sharded.Shards)
	}
	root := large.Source().Nodes()[0]
	tS, repS, err := spanning.BuildCompiled(engineFor(large), large, spanning.NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	tU, repU, err := spanning.BuildCompiled(unitEngine(), large, spanning.NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	if !tS.Equal(tU) || repS.Messages != repU.Messages || repS.CausalDepth != repU.CausalDepth {
		t.Fatalf("sharded routing changed results: %d msgs vs %d", repS.Messages, repU.Messages)
	}
}

// TestAllExperimentsRun executes every driver at quick scale and checks the
// tables are well-formed.
func TestAllExperimentsRun(t *testing.T) {
	cfg := Quick()
	for _, id := range IDs() {
		driver := All()[id]
		t.Run(id, func(t *testing.T) {
			tbl := driver(cfg)
			if tbl.ID != id {
				t.Errorf("table id %q, want %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, tbl.Title) {
				t.Error("rendered table misses its title")
			}
		})
	}
}

// TestE7BudgetsHold: the per-phase budget table must not contain "no".
func TestE7BudgetsHold(t *testing.T) {
	tbl := E7Phases(Quick())
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("phase %s exceeded its budget: %v", row[0], row)
		}
	}
}

// TestA2TwinAllIdentical: the oracle comparison must be all-yes.
func TestA2TwinAllIdentical(t *testing.T) {
	tbl := A2Twin(Quick())
	for _, row := range tbl.Rows {
		for _, cell := range row[2:] {
			if cell != "yes" {
				t.Errorf("twin mismatch: %v", row)
			}
		}
	}
}

// TestA3DeliveryIndependent: message counts and trees must match across
// engines.
func TestA3DeliveryIndependent(t *testing.T) {
	tbl := A3Engines(Quick())
	if len(tbl.Rows) < 2 {
		t.Fatal("need several engines")
	}
	msgs := tbl.Rows[0][1]
	for _, row := range tbl.Rows {
		if row[1] != msgs {
			t.Errorf("engine %s message count %s differs from %s", row[0], row[1], msgs)
		}
		if row[len(row)-1] != "yes" {
			t.Errorf("engine %s produced a different tree", row[0])
		}
	}
}

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(All()))
	}
	if ids[0] != "A1" && ids[0] != "E1" {
		t.Errorf("unexpected first id %s", ids[0])
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bee"}}
	tbl.Add(1, 2.5)
	tbl.Add(true, "x")
	tbl.Note("footnote %d", 7)
	out := tbl.String()
	for _, want := range []string{"demo", "bee", "2.5", "yes", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
}
