package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every driver at quick scale and checks the
// tables are well-formed.
func TestAllExperimentsRun(t *testing.T) {
	cfg := Quick()
	for _, id := range IDs() {
		driver := All()[id]
		t.Run(id, func(t *testing.T) {
			tbl := driver(cfg)
			if tbl.ID != id {
				t.Errorf("table id %q, want %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, tbl.Title) {
				t.Error("rendered table misses its title")
			}
		})
	}
}

// TestE7BudgetsHold: the per-phase budget table must not contain "no".
func TestE7BudgetsHold(t *testing.T) {
	tbl := E7Phases(Quick())
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("phase %s exceeded its budget: %v", row[0], row)
		}
	}
}

// TestA2TwinAllIdentical: the oracle comparison must be all-yes.
func TestA2TwinAllIdentical(t *testing.T) {
	tbl := A2Twin(Quick())
	for _, row := range tbl.Rows {
		for _, cell := range row[2:] {
			if cell != "yes" {
				t.Errorf("twin mismatch: %v", row)
			}
		}
	}
}

// TestA3DeliveryIndependent: message counts and trees must match across
// engines.
func TestA3DeliveryIndependent(t *testing.T) {
	tbl := A3Engines(Quick())
	if len(tbl.Rows) < 2 {
		t.Fatal("need several engines")
	}
	msgs := tbl.Rows[0][1]
	for _, row := range tbl.Rows {
		if row[1] != msgs {
			t.Errorf("engine %s message count %s differs from %s", row[0], row[1], msgs)
		}
		if row[len(row)-1] != "yes" {
			t.Errorf("engine %s produced a different tree", row[0])
		}
	}
}

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(All()))
	}
	if ids[0] != "A1" && ids[0] != "E1" {
		t.Errorf("unexpected first id %s", ids[0])
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bee"}}
	tbl.Add(1, 2.5)
	tbl.Add(true, "x")
	tbl.Note("footnote %d", 7)
	out := tbl.String()
	for _, want := range []string{"demo", "bee", "2.5", "yes", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
}
