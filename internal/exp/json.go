package exp

import (
	"encoding/json"
	"io"
)

// ResultSet is the machine-readable form of an experiment run: the scaling
// configuration plus every table. It contains no wall-clock fields, so for a
// fixed Config the encoding is bit-identical at any worker count — the
// property the determinism tests pin down.
type ResultSet struct {
	// Seeds and Scale echo the Config the tables were produced with.
	Seeds int     `json:"seeds"`
	Scale float64 `json:"scale"`
	// Tables holds the experiment tables in run order.
	Tables []*Table `json:"tables"`
}

// NewResultSet bundles tables with the configuration that produced them.
func NewResultSet(cfg Config, tables []*Table) *ResultSet {
	return &ResultSet{Seeds: cfg.seeds(), Scale: cfg.scaleFactor(), Tables: tables}
}

// WriteJSON encodes the result set as indented JSON.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}
