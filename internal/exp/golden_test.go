package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickTablesGolden pins the experiment tables byte for byte: the quick
// configuration must render exactly the JSON recorded in testdata. This is
// the bit-identity contract of the dense-index refactor — any change to
// trial semantics, tie-breaking, aggregation or formatting shows up here.
//
// Regenerate (only when an experiment is deliberately changed) with:
//
//	go run ./cmd/mdstbench -quick -json internal/exp/testdata/quick_golden.json
func TestQuickTablesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "quick_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	tables, err := (&Runner{Config: cfg}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := NewResultSet(cfg, tables).WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("quick tables diverged from testdata/quick_golden.json (%d vs %d bytes);\n"+
			"if the change is intentional, regenerate the golden file", got.Len(), len(want))
	}
}
