package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// A spec is an experiment decomposed for the parallel runner: a list of
// independent seeded trials — each a pure function of its construction
// parameters — plus a deterministic assembly that builds the table from
// the trial results in index order. Trials of one table share immutable
// compiled workload snapshots (see snapCache in experiments.go): a trial
// may read its snapshot and the frozen source graph concurrently with
// other workers but must never mutate either; anything a trial changes
// (trees, scratch state) has to be trial-local. Because assembly consumes
// results by index, the rendered table is bit-identical no matter how many
// workers executed the trials or in which order they finished.
type spec struct {
	id       string
	trials   []func() any
	assemble func(results []any) *Table
}

// runSeq executes a spec on the calling goroutine; the classic one-shot
// drivers (E1Rounds, ...) are this over their spec.
func runSeq(s spec) *Table {
	results := make([]any, len(s.trials))
	for i, fn := range s.trials {
		results[i] = fn()
	}
	return s.assemble(results)
}

// ProgressEvent reports trial completion inside one experiment table.
type ProgressEvent struct {
	// Experiment is the table id (E1..A3).
	Experiment string
	// Done and Total count completed and scheduled trials of the experiment.
	Done, Total int
	// Elapsed is the wall time since the runner started.
	Elapsed time.Duration
}

// Runner executes experiment tables by fanning their independent seeded
// trials across a worker pool. Trials from all requested tables share one
// queue, so a table with a few long trials cannot idle the workers that a
// table with many short trials could use. Results are reassembled
// deterministically: the same Config produces bit-identical tables at any
// Parallel value.
type Runner struct {
	// Config scales every experiment (seeds, size factor).
	Config Config
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, is called after every completed trial. Calls
	// are serialised; the callback may print.
	Progress func(ProgressEvent)
}

// Workers returns the effective worker count.
func (r *Runner) Workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the named experiments (nil or empty means all, in canonical
// order) and returns their tables in request order.
func (r *Runner) Run(ids []string) ([]*Table, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	reg := allSpecs()
	specs := make([]spec, len(ids))
	for i, id := range ids {
		mk, ok := reg[id]
		if !ok {
			return nil, fmt.Errorf("exp: unknown experiment %q", id)
		}
		specs[i] = mk(r.Config)
	}
	return r.runSpecs(specs)
}

// runSpecs fans the trials of the given specs over the worker pool and
// assembles their tables in spec order.
func (r *Runner) runSpecs(specs []spec) ([]*Table, error) {
	// Flatten every trial of every table into one job list.
	type job struct{ spec, trial int }
	var jobs []job
	results := make([][]any, len(specs))
	for si, s := range specs {
		results[si] = make([]any, len(s.trials))
		for ti := range s.trials {
			jobs = append(jobs, job{si, ti})
		}
	}

	var (
		start    = time.Now()
		jobCh    = make(chan job)
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done counts, firstErr, Progress calls
		done     = make([]int, len(specs))
		firstErr error
	)
	worker := func() {
		defer wg.Done()
		for j := range jobCh {
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				continue // drain the queue without doing more work
			}
			err := func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("exp: %s trial %d: %v", specs[j.spec].id, j.trial, p)
					}
				}()
				results[j.spec][j.trial] = specs[j.spec].trials[j.trial]()
				return nil
			}()
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				done[j.spec]++
				if r.Progress != nil {
					r.Progress(ProgressEvent{
						Experiment: specs[j.spec].id,
						Done:       done[j.spec],
						Total:      len(specs[j.spec].trials),
						Elapsed:    time.Since(start),
					})
				}
			}
			mu.Unlock()
		}
	}
	workers := r.Workers()
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	tables := make([]*Table, len(specs))
	for i, s := range specs {
		tables[i] = s.assemble(results[i])
	}
	return tables, nil
}
