package exp

import (
	"fmt"
	"math"
	"sort"

	"mdegst/internal/apps"
	"mdegst/internal/exact"
	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// All returns every experiment driver keyed by id.
func All() map[string]func(Config) *Table {
	return map[string]func(Config) *Table{
		"E1":  E1Rounds,
		"E2":  E2Quality,
		"E3":  E3Messages,
		"E4":  E4Time,
		"E5":  E5WorstCase,
		"E6":  E6Bits,
		"E7":  E7Phases,
		"E8":  E8LowerBound,
		"E9":  E9InitialTree,
		"E10": E10Broadcast,
		"A1":  A1Modes,
		"A2":  A2Twin,
		"A3":  A3Engines,
	}
}

// IDs returns the experiment ids in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(All()))
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0] // E before A? keep E first then A
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

func unitEngine() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true} }

func mustStar(g *graph.Graph) *tree.Tree {
	t, err := spanning.StarTree(g)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return t
}

func mustRun(g *graph.Graph, t0 *tree.Tree, mode mdst.Mode) *mdst.Result {
	res, err := mdst.Run(unitEngine(), g, t0, mode)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return res
}

func mustTwin(g *graph.Graph, t0 *tree.Tree, mode mdst.Mode) (*tree.Tree, fr.TwinStats) {
	t, st, err := fr.Twin(g, t0, mode)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return t, st
}

type workload struct {
	name string
	gen  func(seed int64) *graph.Graph
}

func sweepFamilies(cfg Config) []workload {
	return []workload{
		{"gnp-sparse", func(s int64) *graph.Graph { return graph.Gnp(cfg.scale(96), 0.08, s) }},
		{"gnp-dense", func(s int64) *graph.Graph { return graph.Gnp(cfg.scale(64), 0.3, s) }},
		{"ba-hubs", func(s int64) *graph.Graph { return graph.BarabasiAlbert(cfg.scale(96), 2, s) }},
		{"geometric", func(s int64) *graph.Graph { return graph.RandomGeometric(cfg.scale(80), 0.22, s) }},
		{"hamchords", func(s int64) *graph.Graph { return graph.HamiltonianPlusChords(cfg.scale(96), cfg.scale(96), s) }},
		{"wheel", func(s int64) *graph.Graph { return graph.Wheel(cfg.scale(64)) }},
		{"hypercube", func(s int64) *graph.Graph { return graph.Hypercube(6) }},
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func log2ceil(n int) int {
	b := 1
	for v := 2; v < n; v *= 2 {
		b++
	}
	return b
}

// E1Rounds checks "there is k-k*+1 rounds": per family, the measured round
// counts of the three modes against the paper's bound.
func E1Rounds(cfg Config) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "rounds per run vs the paper's k-k*+1",
		Claim:  "the algorithm performs k-k*+1 rounds (paper §4.2)",
		Header: []string{"family", "n", "m", "k", "k*", "k-k*+1", "rounds(single)", "rounds(multi)", "rounds(hybrid)"},
	}
	for _, w := range sweepFamilies(cfg) {
		var ks, kstars, bounds, rs, rm, rh []float64
		var n, m int
		for s := 0; s < cfg.seeds(); s++ {
			g := w.gen(int64(s))
			n, m = g.N(), g.M()
			t0 := mustStar(g)
			k, _ := t0.MaxDegree()
			_, st1 := mustTwin(g, t0, mdst.Single)
			_, st2 := mustTwin(g, t0, mdst.Multi)
			_, st3 := mustTwin(g, t0, mdst.Hybrid)
			ks = append(ks, float64(k))
			kstars = append(kstars, float64(st1.FinalDegree))
			bounds = append(bounds, float64(k-st1.FinalDegree+1))
			rs = append(rs, float64(st1.Rounds))
			rm = append(rm, float64(st2.Rounds))
			rh = append(rh, float64(st3.Rounds))
		}
		t.Add(w.name, n, m, mean(ks), mean(kstars), mean(bounds), mean(rs), mean(rm), mean(rh))
	}
	t.Note("single applies one exchange per round, so its rounds exceed the bound when several nodes share the maximum degree; multi matches the spirit of §3.2.6")
	t.Note("round counts are means over %d seeds; k* is the single-mode locally optimal degree", cfg.seeds())
	return t
}

// E2Quality checks the Δ*+1 guarantee against the exact optimum on small
// graphs, comparing the protocol modes with the sequential baselines.
func E2Quality(cfg Config) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "final degree vs exact optimum Δ*",
		Claim:  "the algorithm gives a spanning tree of degree at most Δ*+1 (paper abstract, Thm 1)",
		Header: []string{"family", "runs", "Δ*(mean)", "single", "multi", "hybrid", "FR", "strict", "worst gap", "gap>1 runs"},
	}
	families := []workload{
		{"gnm-10", func(s int64) *graph.Graph { return graph.Gnm(10, 16, s) }},
		{"gnm-12", func(s int64) *graph.Graph { return graph.Gnm(12, 20, s) }},
		{"gnp-11", func(s int64) *graph.Graph { return graph.Gnp(11, 0.35, s) }},
		{"ba-12", func(s int64) *graph.Graph { return graph.BarabasiAlbert(12, 2, s) }},
		{"bipart", func(s int64) *graph.Graph { return graph.CompleteBipartite(3, 8) }},
	}
	runs := cfg.seeds() * 4
	for _, w := range families {
		var opts, ds, dm, dh, dfr, dst, gaps []float64
		over := 0
		for s := 0; s < runs; s++ {
			g := w.gen(int64(s))
			opt, _, err := exact.MinDegree(g)
			if err != nil {
				panic(err)
			}
			t0 := mustStar(g)
			_, s1 := mustTwin(g, t0, mdst.Single)
			_, s2 := mustTwin(g, t0, mdst.Multi)
			_, s3 := mustTwin(g, t0, mdst.Hybrid)
			_, fstats, err := fr.FurerRaghavachari(g, t0)
			if err != nil {
				panic(err)
			}
			_, sstats, err := fr.Strict(g, t0)
			if err != nil {
				panic(err)
			}
			opts = append(opts, float64(opt))
			ds = append(ds, float64(s1.FinalDegree))
			dm = append(dm, float64(s2.FinalDegree))
			dh = append(dh, float64(s3.FinalDegree))
			dfr = append(dfr, float64(fstats.FinalDegree))
			dst = append(dst, float64(sstats.FinalDegree))
			gap := float64(s3.FinalDegree - opt)
			gaps = append(gaps, gap)
			if gap > 1 {
				over++
			}
		}
		t.Add(w.name, runs, mean(opts), mean(ds), mean(dm), mean(dh), mean(dfr), mean(dst), maxf(gaps), over)
	}
	t.Note("worst gap / gap>1 columns refer to hybrid mode; the paper's wave ignores edges blocked only by degree-(k-1) vertices, so gaps above 1 are possible in principle (DESIGN.md deviation 5)")
	return t
}

// E3Messages checks O((k-k*)·m) messages: measured improvement messages over
// the bound (k-k*+1)·m for a size sweep.
func E3Messages(cfg Config) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "message complexity vs (k-k*+1)·m",
		Claim:  "O((k-k*)·m) messages (paper §1, §4.2)",
		Header: []string{"n", "m", "k", "k*", "messages", "(k-k*+1)·m", "ratio", "msgs/round/m"},
	}
	var ns, msgs []float64
	for _, n := range []int{32, 64, 128, 256} {
		n = cfg.scale(n)
		var mM, kk, kks, mm, bound, ratio, perRound []float64
		for s := 0; s < cfg.seeds(); s++ {
			g := graph.Gnm(n, 3*n, int64(s))
			t0 := mustStar(g)
			// Multi mode: the paper's k-k*+1 round count presumes §3.2.6's
			// concurrent handling of all maximum-degree nodes.
			res := mustRun(g, t0, mdst.Multi)
			k, ks := res.InitialDegree, res.FinalDegree
			b := float64(k-ks+1) * float64(g.M())
			mM = append(mM, float64(g.M()))
			kk = append(kk, float64(k))
			kks = append(kks, float64(ks))
			mm = append(mm, float64(res.Report.Messages))
			bound = append(bound, b)
			ratio = append(ratio, float64(res.Report.Messages)/b)
			perRound = append(perRound, float64(res.Report.Messages)/float64(res.Rounds)/float64(g.M()))
		}
		t.Add(n, mean(mM), mean(kk), mean(kks), mean(mm), mean(bound), mean(ratio), mean(perRound))
		ns = append(ns, float64(n))
		msgs = append(msgs, mean(mm))
	}
	if len(ns) >= 2 {
		slope := (math.Log(msgs[len(msgs)-1]) - math.Log(msgs[0])) / (math.Log(ns[len(ns)-1]) - math.Log(ns[0]))
		t.Note("log-log slope of messages vs n at fixed density m=3n: %.2f (O((k-k*)m) with k~max degree predicts ~1.3-2)", slope)
	}
	t.Note("ratio is measured messages over the paper bound; bounded ratios across the sweep support the claim")
	return t
}

// E4Time checks O((k-k*)·n) time: the causal depth under unit delays over
// the bound (k-k*+1)·n.
func E4Time(cfg Config) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "time complexity (causal depth, unit delays) vs (k-k*+1)·n",
		Claim:  "O((k-k*)·n) time units (paper §1, §4.2)",
		Header: []string{"n", "k", "k*", "causal depth", "(k-k*+1)·n", "ratio", "depth/round/n"},
	}
	for _, n := range []int{32, 64, 128, 256} {
		n = cfg.scale(n)
		var kk, kks, depth, bound, ratio, perRound []float64
		for s := 0; s < cfg.seeds(); s++ {
			g := graph.Gnm(n, 3*n, int64(s))
			t0 := mustStar(g)
			res := mustRun(g, t0, mdst.Multi)
			k, ks := res.InitialDegree, res.FinalDegree
			b := float64(k-ks+1) * float64(n)
			kk = append(kk, float64(k))
			kks = append(kks, float64(ks))
			depth = append(depth, float64(res.Report.CausalDepth))
			bound = append(bound, b)
			ratio = append(ratio, float64(res.Report.CausalDepth)/b)
			perRound = append(perRound, float64(res.Report.CausalDepth)/float64(res.Rounds)/float64(n))
		}
		t.Add(n, mean(kk), mean(kks), mean(depth), mean(bound), mean(ratio), mean(perRound))
	}
	t.Note("causal depth = longest chain of causally dependent messages, the standard asynchronous time measure the paper uses")
	return t
}

// E5WorstCase exercises the O(n·m) worst case: wheels started from the hub
// star need Θ(n) exchanges over Θ(n) rounds of Θ(m) messages each.
func E5WorstCase(cfg Config) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "worst case: wheel from hub star (k=n-1 down to k*)",
		Claim:  "worst case O(n·m) messages when k=n-1 and k*=2 (paper §4.2)",
		Header: []string{"n", "m", "k", "k*", "swaps", "messages", "n·m", "messages/(n·m)"},
	}
	for _, n := range []int{16, 32, 64, 128} {
		n = cfg.scale(n)
		g := graph.Wheel(n)
		t0 := mustStar(g)
		res := mustRun(g, t0, mdst.Single)
		nm := float64(g.N()) * float64(g.M())
		t.Add(n, g.M(), res.InitialDegree, res.FinalDegree, res.Swaps,
			res.Report.Messages, nm, float64(res.Report.Messages)/nm)
	}
	t.Note("the bounded messages/(n·m) column shows the worst case is Θ(n·m) with a small constant")
	return t
}

// E6Bits checks the O(log n) message size claim: the largest message in
// words and bits per message kind.
func E6Bits(cfg Config) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "message sizes (words of Θ(log n) bits)",
		Claim:  "all messages are of size O(log n), at most four numbers or identities (paper §4.2)",
		Header: []string{"n", "max words", "bits/word", "max bits", "words·kinds observed"},
	}
	for _, n := range []int{32, 128, 512} {
		n = cfg.scale(n)
		g := graph.Gnm(n, 3*n, 1)
		t0 := mustStar(g)
		res := mustRun(g, t0, mdst.Hybrid)
		kinds := len(res.Report.ByKind)
		bits := log2ceil(n)
		t.Add(n, res.Report.MaxWords, bits, res.Report.MaxWords*bits, kinds)
	}
	t.Note("our BFSBack aggregate carries 9 words (edge report with degrees and fragment root) vs the paper's 4; still Θ(log n) bits per message — see DESIGN.md deviation on message width")
	return t
}

// E7Phases verifies the per-phase message budgets of one round.
func E7Phases(cfg Config) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "per-phase messages in a round (wheel from hub star, single mode)",
		Claim:  "SearchDegree ≤ n-1, MoveRoot ≤ n-1, Cut+BFS ≤ 2m, Choose ≤ n-1 per round (paper §4.2)",
		Header: []string{"kind", "max per round", "budget", "within"},
	}
	n := cfg.scale(48)
	g := graph.Wheel(n)
	t0 := mustStar(g)
	res := mustRun(g, t0, mdst.Single)
	rep := res.Report
	// Collect the per-round maximum for each kind ("kind/round" keys).
	maxPerRound := map[string]int64{}
	for key, count := range rep.ByKindRound {
		i := lastSlash(key)
		if i < 0 {
			continue
		}
		kind := key[:i]
		if count > maxPerRound[kind] {
			maxPerRound[kind] = count
		}
	}
	nn, m := int64(g.N()), int64(g.M())
	budgets := []struct {
		kind   string
		budget int64
		label  string
	}{
		{"mdst.start", nn - 1, "n-1"},
		{"mdst.deg", nn - 1, "n-1"},
		{"mdst.move", nn - 1, "n-1"},
		{"mdst.cut", nn - 1, "n-1"},
		{"mdst.bfs", 2 * m, "2m"},
		{"mdst.cousin", m, "m"},
		{"mdst.bfsback", nn - 1 + m, "n-1+m"},
		{"mdst.update", nn, "n"},
		{"mdst.child", 1, "1"},
		{"mdst.rounddone", nn, "n"},
		{"mdst.term", nn - 1, "n-1"},
	}
	for _, b := range budgets {
		got := maxPerRound[b.kind]
		t.Add(b.kind, got, b.label, got <= b.budget)
	}
	t.Note("n=%d m=%d rounds=%d; the BFS wave costs up to 3 messages per edge in our unblocking scheme vs the paper's claimed 2 (DESIGN.md deviation 3), still O(m)", g.N(), g.M(), res.Rounds)
	return t
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// E8LowerBound compares against the Korach–Moran–Zaks Ω(n²/k) lower bound on
// complete graphs.
func E8LowerBound(cfg Config) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "complete graphs vs the KMZ Ω(n²/k) lower bound",
		Claim:  "message count is 'not far from the optimal' Ω(n²/k) of [KMZ87] (paper §1, §5)",
		Header: []string{"n", "m", "k*", "messages", "n²/k*", "ratio"},
	}
	for _, n := range []int{8, 16, 32, 64} {
		n = cfg.scale(n)
		g := graph.Complete(n)
		t0 := mustStar(g)
		res := mustRun(g, t0, mdst.Multi)
		lb := float64(n*n) / float64(res.FinalDegree)
		t.Add(n, g.M(), res.FinalDegree, res.Report.Messages, lb, float64(res.Report.Messages)/lb)
	}
	t.Note("the ratio grows with n because the improvement needs k-k* rounds over m=Θ(n²) edges; the paper's own worst case is O(n·m)=O(n³) against this Ω(n²/k) bound")
	return t
}

// E9InitialTree measures the sensitivity to the startup tree construction —
// the paper's closing remark about obtaining "a not so bad k".
func E9InitialTree(cfg Config) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "initial-tree sensitivity (hybrid mode)",
		Claim:  "'we can hope to change the ST construction in order to obtain a not so bad k' (paper §4.2)",
		Header: []string{"initial", "k", "k*", "rounds", "swaps", "improve msgs", "setup msgs"},
	}
	n := cfg.scale(96)
	g := graph.BarabasiAlbert(n, 2, 3)
	builders := []struct {
		name  string
		build func() (*tree.Tree, *sim.Report)
	}{
		{"flood(BFS)", func() (*tree.Tree, *sim.Report) {
			tr, rep, err := spanning.Build(unitEngine(), g, spanning.NewFloodFactory(g.Nodes()[0]))
			if err != nil {
				panic(err)
			}
			return tr, rep
		}},
		{"dfs", func() (*tree.Tree, *sim.Report) {
			tr, rep, err := spanning.Build(unitEngine(), g, spanning.NewDFSFactory(g.Nodes()[0]))
			if err != nil {
				panic(err)
			}
			return tr, rep
		}},
		{"ghs", func() (*tree.Tree, *sim.Report) {
			tr, rep, err := spanning.Build(unitEngine(), g, spanning.NewGHSFactory())
			if err != nil {
				panic(err)
			}
			return tr, rep
		}},
		{"election", func() (*tree.Tree, *sim.Report) {
			tr, rep, err := spanning.Build(unitEngine(), g, spanning.NewElectionFactory())
			if err != nil {
				panic(err)
			}
			return tr, rep
		}},
		{"star(worst)", func() (*tree.Tree, *sim.Report) { return mustStar(g), nil }},
		{"random", func() (*tree.Tree, *sim.Report) {
			tr, err := spanning.RandomST(g, 7)
			if err != nil {
				panic(err)
			}
			return tr, nil
		}},
	}
	for _, b := range builders {
		t0, setup := b.build()
		res := mustRun(g, t0, mdst.Hybrid)
		setupMsgs := int64(0)
		if setup != nil {
			setupMsgs = setup.Messages
		}
		t.Add(b.name, res.InitialDegree, res.FinalDegree, res.Rounds, res.Swaps, res.Report.Messages, setupMsgs)
	}
	t.Note("n=%d m=%d (Barabási–Albert, hubby): a better initial k shrinks rounds and messages, exactly the paper's remark", g.N(), g.M())
	return t
}

// E10Broadcast quantifies the intro motivation by actually running a
// broadcast-with-ack protocol over the tree before and after improvement
// and measuring each node's send count on the simulator.
func E10Broadcast(cfg Config) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "broadcast hot-spot load before/after improvement (measured)",
		Claim:  "a high-degree tree node 'might cause an undesirable communication load'; broadcasting on a MDegST reduces per-site work (paper §1)",
		Header: []string{"family", "n", "k(init)", "k(final)", "hot-spot sends before", "after", "reduction", "depth before", "after"},
	}
	for _, w := range sweepFamilies(cfg) {
		g := w.gen(1)
		t0 := mustStar(g)
		final, _ := mustTwin(g, t0, mdst.Hybrid)
		before, _ := t0.MaxDegree()
		after, _ := final.MaxDegree()
		rb, err := apps.Run(unitEngine(), g, apps.Config{Tree: t0, Ack: true})
		if err != nil {
			panic(err)
		}
		ra, err := apps.Run(unitEngine(), g, apps.Config{Tree: final, Ack: true})
		if err != nil {
			panic(err)
		}
		t.Add(w.name, g.N(), before, after, rb.MaxLoad, ra.MaxLoad,
			fmt.Sprintf("%.1fx", float64(rb.MaxLoad)/float64(ra.MaxLoad)),
			rb.Depth, ra.Depth)
	}
	t.Note("hot-spot sends measured by running broadcast+ack over each tree; the load equals the maximum tree degree, which the improvement minimises — at the cost of deeper trees (latency column)")
	return t
}

// A1Modes is the mode ablation: exchanges per round vs rounds vs quality.
func A1Modes(cfg Config) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: single vs multi vs hybrid",
		Claim:  "§3.2.6 (multi) reduces rounds; our safe reading can cost quality, hybrid repairs it (DESIGN.md deviation 4)",
		Header: []string{"family", "mode", "k", "k*", "rounds", "swaps", "messages", "causal depth"},
	}
	for _, w := range sweepFamilies(cfg)[:4] {
		g := w.gen(2)
		t0 := mustStar(g)
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
			res := mustRun(g, t0, mode)
			t.Add(w.name, mode.String(), res.InitialDegree, res.FinalDegree,
				res.Rounds, res.Swaps, res.Report.Messages, res.Report.CausalDepth)
		}
	}
	return t
}

// A2Twin is the oracle ablation: the distributed run must equal the
// sequential twin exactly.
func A2Twin(cfg Config) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "distributed protocol vs sequential twin (exact equality)",
		Claim:  "the distributed protocol is a faithful distribution of the sequential improvement (correctness argument)",
		Header: []string{"family", "mode", "identical tree", "rounds equal", "swaps equal"},
	}
	for _, w := range sweepFamilies(cfg)[:5] {
		g := w.gen(3)
		t0 := mustStar(g)
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
			res := mustRun(g, t0, mode)
			twinTree, st := mustTwin(g, t0, mode)
			t.Add(w.name, mode.String(), res.Tree.Equal(twinTree), res.Rounds == st.Rounds, res.Swaps == st.Swaps)
		}
	}
	return t
}

// A3Engines is the engine ablation: the result and message count must be
// delivery-independent; only time-like measures may differ.
func A3Engines(cfg Config) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "ablation: engines and delay models",
		Claim:  "the algorithm is asynchronous and event-driven: its result does not depend on delays (paper §2)",
		Header: []string{"engine", "messages", "causal depth", "final k", "same tree as unit"},
	}
	n := cfg.scale(64)
	g := graph.Gnm(n, 3*n, 4)
	t0 := mustStar(g)
	ref := mustRun(g, t0, mdst.Hybrid)
	engines := []struct {
		name string
		eng  sim.Engine
	}{
		{"event-unit", unitEngine()},
		{"event-random-fifo", &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 1, FIFO: true}},
		{"event-random-nofifo", &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 2, FIFO: false}},
		{"async-goroutines", &sim.AsyncEngine{}},
	}
	for _, e := range engines {
		res, err := mdst.Run(e.eng, g, t0, mdst.Hybrid)
		if err != nil {
			panic(err)
		}
		t.Add(e.name, res.Report.Messages, res.Report.CausalDepth, res.FinalDegree, res.Tree.Equal(ref.Tree))
	}
	t.Note("message counts are identical across engines because every send is delivery-order independent; causal depth varies with the adversary")
	return t
}
