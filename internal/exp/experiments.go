package exp

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mdegst/internal/apps"
	"mdegst/internal/exact"
	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// All returns every experiment driver keyed by id. Each driver runs its
// trials sequentially on the calling goroutine; use Runner to fan the same
// trials across a worker pool.
func All() map[string]func(Config) *Table {
	return map[string]func(Config) *Table{
		"E1":  E1Rounds,
		"E2":  E2Quality,
		"E3":  E3Messages,
		"E4":  E4Time,
		"E5":  E5WorstCase,
		"E6":  E6Bits,
		"E7":  E7Phases,
		"E8":  E8LowerBound,
		"E9":  E9InitialTree,
		"E10": E10Broadcast,
		"A1":  A1Modes,
		"A2":  A2Twin,
		"A3":  A3Engines,
	}
}

// allSpecs returns the trial decomposition of every experiment, keyed by id —
// the form the parallel Runner executes.
func allSpecs() map[string]func(Config) spec {
	return map[string]func(Config) spec{
		"E1":  e1Spec,
		"E2":  e2Spec,
		"E3":  e3Spec,
		"E4":  e4Spec,
		"E5":  e5Spec,
		"E6":  e6Spec,
		"E7":  e7Spec,
		"E8":  e8Spec,
		"E9":  e9Spec,
		"E10": e10Spec,
		"A1":  a1Spec,
		"A2":  a2Spec,
		"A3":  a3Spec,
	}
}

// IDs returns the experiment ids in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(All()))
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0] // E before A? keep E first then A
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

func unitEngine() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true} }

// shardNodeThreshold routes workloads at or above this node count through
// the shard-partitioned engine. Sharding is result-invariant (the N-shard
// engine is delivery-trace-equivalent to the 1-shard one, pinned by the
// sim differential tests), so the golden tables stay byte-identical — the
// routing only buys wall-clock time on the sweep's largest graphs, where a
// single trial dominates a worker's schedule.
const shardNodeThreshold = 256

// engineFor returns the unit-delay engine sized to the workload: the
// sharded runtime for the largest graphs, the plain event engine below the
// threshold (where round barriers would cost more than they parallelise).
// Workers is pinned to 1 because the Runner already saturates the host
// with one trial per core — nesting phase workers inside trial workers
// would oversubscribe the CPU and stall every round barrier on the
// slowest descheduled worker. The per-run contiguous partition build is
// O(n+m) — microseconds against the tens of milliseconds a routed trial
// costs — so it is not cached across trials.
func engineFor(c *graph.CSR) sim.Engine {
	if c.N() >= shardNodeThreshold {
		return &sim.ShardedEngine{Shards: 4, Workers: 1, Delay: sim.UnitDelay, FIFO: true}
	}
	return unitEngine()
}

func mustStar(g *graph.Graph) *tree.Tree {
	t, err := spanning.StarTree(g)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return t
}

func mustRun(c *graph.CSR, t0 *tree.Tree, mode mdst.Mode) *mdst.Result {
	res, err := mdst.RunSnapshot(engineFor(c), c, t0, mode)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return res
}

func mustTwin(c *graph.CSR, t0 *tree.Tree, mode mdst.Mode) (*tree.Tree, fr.TwinStats) {
	t, st, err := fr.TwinSnapshot(c, t0, mode)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return t, st
}

// snapCache memoizes compiled workload snapshots by seed. A CSR is
// immutable, so one compilation per (workload, seed) is shared by every
// trial — and every worker — of the table that owns the cache; the trials
// stay deterministic because generation itself is a pure function of the
// seed.
type snapCache struct {
	mu sync.Mutex
	m  map[int64]*graph.CSR
}

func (sc *snapCache) get(seed int64, gen func(int64) *graph.Graph) *graph.CSR {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if c, ok := sc.m[seed]; ok {
		return c
	}
	c := gen(seed).Compile()
	if sc.m == nil {
		sc.m = make(map[int64]*graph.CSR)
	}
	sc.m[seed] = c
	return c
}

type workload struct {
	name  string
	gen   func(seed int64) *graph.Graph
	snaps *snapCache
}

func newWorkload(name string, gen func(seed int64) *graph.Graph) workload {
	return workload{name: name, gen: gen, snaps: &snapCache{}}
}

// snap returns the workload's compiled snapshot at seed, compiling once per
// table (each spec constructs its own workload set, hence its own caches).
func (w workload) snap(seed int64) *graph.CSR { return w.snaps.get(seed, w.gen) }

func sweepFamilies(cfg Config) []workload {
	return []workload{
		newWorkload("gnp-sparse", func(s int64) *graph.Graph { return graph.Gnp(cfg.scale(96), 0.08, s) }),
		newWorkload("gnp-dense", func(s int64) *graph.Graph { return graph.Gnp(cfg.scale(64), 0.3, s) }),
		newWorkload("ba-hubs", func(s int64) *graph.Graph { return graph.BarabasiAlbert(cfg.scale(96), 2, s) }),
		newWorkload("geometric", func(s int64) *graph.Graph { return graph.RandomGeometric(cfg.scale(80), 0.22, s) }),
		newWorkload("hamchords", func(s int64) *graph.Graph { return graph.HamiltonianPlusChords(cfg.scale(96), cfg.scale(96), s) }),
		newWorkload("wheel", func(s int64) *graph.Graph { return graph.Wheel(cfg.scale(64)) }),
		newWorkload("hypercube", func(s int64) *graph.Graph { return graph.Hypercube(6) }),
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func log2ceil(n int) int {
	b := 1
	for v := 2; v < n; v *= 2 {
		b++
	}
	return b
}

// E1Rounds checks "there is k-k*+1 rounds": per family, the measured round
// counts of the three modes against the paper's bound.
func E1Rounds(cfg Config) *Table { return runSeq(e1Spec(cfg)) }

type e1Trial struct {
	n, m                        int
	k, kstar, bound, rs, rm, rh float64
}

func e1Spec(cfg Config) spec {
	fams := sweepFamilies(cfg)
	seeds := cfg.seeds()
	var trials []func() any
	for _, w := range fams {
		for s := 0; s < seeds; s++ {
			trials = append(trials, func() any {
				c := w.snap(int64(s))
				t0 := mustStar(c.Source())
				k, _ := t0.MaxDegree()
				_, st1 := mustTwin(c, t0, mdst.Single)
				_, st2 := mustTwin(c, t0, mdst.Multi)
				_, st3 := mustTwin(c, t0, mdst.Hybrid)
				return e1Trial{
					n: c.N(), m: c.M(),
					k:     float64(k),
					kstar: float64(st1.FinalDegree),
					bound: float64(k - st1.FinalDegree + 1),
					rs:    float64(st1.Rounds),
					rm:    float64(st2.Rounds),
					rh:    float64(st3.Rounds),
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E1",
			Title:  "rounds per run vs the paper's k-k*+1",
			Claim:  "the algorithm performs k-k*+1 rounds (paper §4.2)",
			Header: []string{"family", "n", "m", "k", "k*", "k-k*+1", "rounds(single)", "rounds(multi)", "rounds(hybrid)"},
		}
		for fi, w := range fams {
			var ks, kstars, bounds, rs, rm, rh []float64
			var n, m int
			for s := 0; s < seeds; s++ {
				tr := results[fi*seeds+s].(e1Trial)
				n, m = tr.n, tr.m
				ks = append(ks, tr.k)
				kstars = append(kstars, tr.kstar)
				bounds = append(bounds, tr.bound)
				rs = append(rs, tr.rs)
				rm = append(rm, tr.rm)
				rh = append(rh, tr.rh)
			}
			t.Add(w.name, n, m, mean(ks), mean(kstars), mean(bounds), mean(rs), mean(rm), mean(rh))
		}
		t.Note("single applies one exchange per round, so its rounds exceed the bound when several nodes share the maximum degree; multi matches the spirit of §3.2.6")
		t.Note("round counts are means over %d seeds; k* is the single-mode locally optimal degree", seeds)
		return t
	}
	return spec{id: "E1", trials: trials, assemble: assemble}
}

// E2Quality checks the Δ*+1 guarantee against the exact optimum on small
// graphs, comparing the protocol modes with the sequential baselines.
func E2Quality(cfg Config) *Table { return runSeq(e2Spec(cfg)) }

type e2Trial struct {
	opt, ds, dm, dh, dfr, dst, gap float64
}

func e2Spec(cfg Config) spec {
	families := []workload{
		newWorkload("gnm-10", func(s int64) *graph.Graph { return graph.Gnm(10, 16, s) }),
		newWorkload("gnm-12", func(s int64) *graph.Graph { return graph.Gnm(12, 20, s) }),
		newWorkload("gnp-11", func(s int64) *graph.Graph { return graph.Gnp(11, 0.35, s) }),
		newWorkload("ba-12", func(s int64) *graph.Graph { return graph.BarabasiAlbert(12, 2, s) }),
		newWorkload("bipart", func(s int64) *graph.Graph { return graph.CompleteBipartite(3, 8) }),
	}
	runs := cfg.seeds() * 4
	var trials []func() any
	for _, w := range families {
		for s := 0; s < runs; s++ {
			trials = append(trials, func() any {
				c := w.snap(int64(s))
				g := c.Source()
				opt, _, err := exact.MinDegree(g)
				if err != nil {
					panic(err)
				}
				t0 := mustStar(g)
				_, s1 := mustTwin(c, t0, mdst.Single)
				_, s2 := mustTwin(c, t0, mdst.Multi)
				_, s3 := mustTwin(c, t0, mdst.Hybrid)
				_, fstats, err := fr.FurerRaghavachari(g, t0)
				if err != nil {
					panic(err)
				}
				_, sstats, err := fr.Strict(g, t0)
				if err != nil {
					panic(err)
				}
				return e2Trial{
					opt: float64(opt),
					ds:  float64(s1.FinalDegree),
					dm:  float64(s2.FinalDegree),
					dh:  float64(s3.FinalDegree),
					dfr: float64(fstats.FinalDegree),
					dst: float64(sstats.FinalDegree),
					gap: float64(s3.FinalDegree - opt),
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E2",
			Title:  "final degree vs exact optimum Δ*",
			Claim:  "the algorithm gives a spanning tree of degree at most Δ*+1 (paper abstract, Thm 1)",
			Header: []string{"family", "runs", "Δ*(mean)", "single", "multi", "hybrid", "FR", "strict", "worst gap", "gap>1 runs"},
		}
		for fi, w := range families {
			var opts, ds, dm, dh, dfr, dst, gaps []float64
			over := 0
			for s := 0; s < runs; s++ {
				tr := results[fi*runs+s].(e2Trial)
				opts = append(opts, tr.opt)
				ds = append(ds, tr.ds)
				dm = append(dm, tr.dm)
				dh = append(dh, tr.dh)
				dfr = append(dfr, tr.dfr)
				dst = append(dst, tr.dst)
				gaps = append(gaps, tr.gap)
				if tr.gap > 1 {
					over++
				}
			}
			t.Add(w.name, runs, mean(opts), mean(ds), mean(dm), mean(dh), mean(dfr), mean(dst), maxf(gaps), over)
		}
		t.Note("worst gap / gap>1 columns refer to hybrid mode; the paper's wave ignores edges blocked only by degree-(k-1) vertices, so gaps above 1 are possible in principle (DESIGN.md deviation 5)")
		return t
	}
	return spec{id: "E2", trials: trials, assemble: assemble}
}

// E3Messages checks O((k-k*)·m) messages: measured improvement messages over
// the bound (k-k*+1)·m for a size sweep.
func E3Messages(cfg Config) *Table { return runSeq(e3Spec(cfg)) }

type sizeTrial struct {
	m, k, ks, msgs, bound, ratio, perRound float64
}

func e3Spec(cfg Config) spec {
	sizes := scaledSizes(cfg, 32, 64, 128, 256)
	seeds := cfg.seeds()
	var trials []func() any
	for _, n := range sizes {
		for s := 0; s < seeds; s++ {
			trials = append(trials, func() any {
				c := graph.Gnm(n, 3*n, int64(s)).Compile()
				t0 := mustStar(c.Source())
				// Multi mode: the paper's k-k*+1 round count presumes §3.2.6's
				// concurrent handling of all maximum-degree nodes.
				res := mustRun(c, t0, mdst.Multi)
				k, ks := res.InitialDegree, res.FinalDegree
				b := float64(k-ks+1) * float64(c.M())
				return sizeTrial{
					m:        float64(c.M()),
					k:        float64(k),
					ks:       float64(ks),
					msgs:     float64(res.Report.Messages),
					bound:    b,
					ratio:    float64(res.Report.Messages) / b,
					perRound: float64(res.Report.Messages) / float64(res.Rounds) / float64(c.M()),
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E3",
			Title:  "message complexity vs (k-k*+1)·m",
			Claim:  "O((k-k*)·m) messages (paper §1, §4.2)",
			Header: []string{"n", "m", "k", "k*", "messages", "(k-k*+1)·m", "ratio", "msgs/round/m"},
		}
		var ns, msgs []float64
		for ni, n := range sizes {
			var mM, kk, kks, mm, bound, ratio, perRound []float64
			for s := 0; s < seeds; s++ {
				tr := results[ni*seeds+s].(sizeTrial)
				mM = append(mM, tr.m)
				kk = append(kk, tr.k)
				kks = append(kks, tr.ks)
				mm = append(mm, tr.msgs)
				bound = append(bound, tr.bound)
				ratio = append(ratio, tr.ratio)
				perRound = append(perRound, tr.perRound)
			}
			t.Add(n, mean(mM), mean(kk), mean(kks), mean(mm), mean(bound), mean(ratio), mean(perRound))
			ns = append(ns, float64(n))
			msgs = append(msgs, mean(mm))
		}
		if len(ns) >= 2 {
			slope := (math.Log(msgs[len(msgs)-1]) - math.Log(msgs[0])) / (math.Log(ns[len(ns)-1]) - math.Log(ns[0]))
			t.Note("log-log slope of messages vs n at fixed density m=3n: %.2f (O((k-k*)m) with k~max degree predicts ~1.3-2)", slope)
		}
		t.Note("ratio is measured messages over the paper bound; bounded ratios across the sweep support the claim")
		return t
	}
	return spec{id: "E3", trials: trials, assemble: assemble}
}

// E4Time checks O((k-k*)·n) time: the causal depth under unit delays over
// the bound (k-k*+1)·n.
func E4Time(cfg Config) *Table { return runSeq(e4Spec(cfg)) }

func e4Spec(cfg Config) spec {
	sizes := scaledSizes(cfg, 32, 64, 128, 256)
	seeds := cfg.seeds()
	var trials []func() any
	for _, n := range sizes {
		for s := 0; s < seeds; s++ {
			trials = append(trials, func() any {
				c := graph.Gnm(n, 3*n, int64(s)).Compile()
				t0 := mustStar(c.Source())
				res := mustRun(c, t0, mdst.Multi)
				k, ks := res.InitialDegree, res.FinalDegree
				b := float64(k-ks+1) * float64(n)
				return sizeTrial{
					k:        float64(k),
					ks:       float64(ks),
					msgs:     float64(res.Report.CausalDepth),
					bound:    b,
					ratio:    float64(res.Report.CausalDepth) / b,
					perRound: float64(res.Report.CausalDepth) / float64(res.Rounds) / float64(n),
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E4",
			Title:  "time complexity (causal depth, unit delays) vs (k-k*+1)·n",
			Claim:  "O((k-k*)·n) time units (paper §1, §4.2)",
			Header: []string{"n", "k", "k*", "causal depth", "(k-k*+1)·n", "ratio", "depth/round/n"},
		}
		for ni, n := range sizes {
			var kk, kks, depth, bound, ratio, perRound []float64
			for s := 0; s < seeds; s++ {
				tr := results[ni*seeds+s].(sizeTrial)
				kk = append(kk, tr.k)
				kks = append(kks, tr.ks)
				depth = append(depth, tr.msgs)
				bound = append(bound, tr.bound)
				ratio = append(ratio, tr.ratio)
				perRound = append(perRound, tr.perRound)
			}
			t.Add(n, mean(kk), mean(kks), mean(depth), mean(bound), mean(ratio), mean(perRound))
		}
		t.Note("causal depth = longest chain of causally dependent messages, the standard asynchronous time measure the paper uses")
		return t
	}
	return spec{id: "E4", trials: trials, assemble: assemble}
}

// E5WorstCase exercises the O(n·m) worst case: wheels started from the hub
// star need Θ(n) exchanges over Θ(n) rounds of Θ(m) messages each.
func E5WorstCase(cfg Config) *Table { return runSeq(e5Spec(cfg)) }

type e5Trial struct {
	m, k, ks, swaps int
	msgs            int64
	nm              float64
}

func e5Spec(cfg Config) spec {
	sizes := scaledSizes(cfg, 16, 32, 64, 128)
	var trials []func() any
	for _, n := range sizes {
		trials = append(trials, func() any {
			c := graph.Wheel(n).Compile()
			t0 := mustStar(c.Source())
			res := mustRun(c, t0, mdst.Single)
			return e5Trial{
				m: c.M(), k: res.InitialDegree, ks: res.FinalDegree, swaps: res.Swaps,
				msgs: res.Report.Messages,
				nm:   float64(c.N()) * float64(c.M()),
			}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E5",
			Title:  "worst case: wheel from hub star (k=n-1 down to k*)",
			Claim:  "worst case O(n·m) messages when k=n-1 and k*=2 (paper §4.2)",
			Header: []string{"n", "m", "k", "k*", "swaps", "messages", "n·m", "messages/(n·m)"},
		}
		for ni, n := range sizes {
			tr := results[ni].(e5Trial)
			t.Add(n, tr.m, tr.k, tr.ks, tr.swaps, tr.msgs, tr.nm, float64(tr.msgs)/tr.nm)
		}
		t.Note("the bounded messages/(n·m) column shows the worst case is Θ(n·m) with a small constant")
		return t
	}
	return spec{id: "E5", trials: trials, assemble: assemble}
}

// E6Bits checks the O(log n) message size claim: the largest message in
// words and bits per message kind.
func E6Bits(cfg Config) *Table { return runSeq(e6Spec(cfg)) }

type e6Trial struct {
	maxWords, kinds int
}

func e6Spec(cfg Config) spec {
	sizes := scaledSizes(cfg, 32, 128, 512)
	var trials []func() any
	for _, n := range sizes {
		trials = append(trials, func() any {
			c := graph.Gnm(n, 3*n, 1).Compile()
			t0 := mustStar(c.Source())
			res := mustRun(c, t0, mdst.Hybrid)
			return e6Trial{maxWords: res.Report.MaxWords, kinds: len(res.Report.ByKind)}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E6",
			Title:  "message sizes (words of Θ(log n) bits)",
			Claim:  "all messages are of size O(log n), at most four numbers or identities (paper §4.2)",
			Header: []string{"n", "max words", "bits/word", "max bits", "words·kinds observed"},
		}
		for ni, n := range sizes {
			tr := results[ni].(e6Trial)
			bits := log2ceil(n)
			t.Add(n, tr.maxWords, bits, tr.maxWords*bits, tr.kinds)
		}
		t.Note("our BFSBack aggregate carries 9 words (edge report with degrees and fragment root) vs the paper's 4; still Θ(log n) bits per message — see DESIGN.md deviation on message width")
		return t
	}
	return spec{id: "E6", trials: trials, assemble: assemble}
}

// E7Phases verifies the per-phase message budgets of one round.
func E7Phases(cfg Config) *Table { return runSeq(e7Spec(cfg)) }

type e7Trial struct {
	n, m, rounds int
	maxPerRound  map[string]int64
}

func e7Spec(cfg Config) spec {
	n := cfg.scale(48)
	trials := []func() any{func() any {
		c := graph.Wheel(n).Compile()
		g := c.Source()
		t0 := mustStar(g)
		res := mustRun(c, t0, mdst.Single)
		// Collect the per-round maximum for each kind ("kind/round" keys).
		maxPerRound := map[string]int64{}
		for key, count := range res.Report.ByKindRound {
			i := lastSlash(key)
			if i < 0 {
				continue
			}
			kind := key[:i]
			if count > maxPerRound[kind] {
				maxPerRound[kind] = count
			}
		}
		return e7Trial{n: g.N(), m: g.M(), rounds: res.Rounds, maxPerRound: maxPerRound}
	}}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E7",
			Title:  "per-phase messages in a round (wheel from hub star, single mode)",
			Claim:  "SearchDegree ≤ n-1, MoveRoot ≤ n-1, Cut+BFS ≤ 2m, Choose ≤ n-1 per round (paper §4.2)",
			Header: []string{"kind", "max per round", "budget", "within"},
		}
		tr := results[0].(e7Trial)
		nn, m := int64(tr.n), int64(tr.m)
		budgets := []struct {
			kind   string
			budget int64
			label  string
		}{
			{"mdst.start", nn - 1, "n-1"},
			{"mdst.deg", nn - 1, "n-1"},
			{"mdst.move", nn - 1, "n-1"},
			{"mdst.cut", nn - 1, "n-1"},
			{"mdst.bfs", 2 * m, "2m"},
			{"mdst.cousin", m, "m"},
			{"mdst.bfsback", nn - 1 + m, "n-1+m"},
			{"mdst.update", nn, "n"},
			{"mdst.child", 1, "1"},
			{"mdst.rounddone", nn, "n"},
			{"mdst.term", nn - 1, "n-1"},
		}
		for _, b := range budgets {
			got := tr.maxPerRound[b.kind]
			t.Add(b.kind, got, b.label, got <= b.budget)
		}
		t.Note("n=%d m=%d rounds=%d; the BFS wave costs up to 3 messages per edge in our unblocking scheme vs the paper's claimed 2 (DESIGN.md deviation 3), still O(m)", tr.n, tr.m, tr.rounds)
		return t
	}
	return spec{id: "E7", trials: trials, assemble: assemble}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// E8LowerBound compares against the Korach–Moran–Zaks Ω(n²/k) lower bound on
// complete graphs.
func E8LowerBound(cfg Config) *Table { return runSeq(e8Spec(cfg)) }

type e8Trial struct {
	m, ks int
	msgs  int64
}

func e8Spec(cfg Config) spec {
	sizes := scaledSizes(cfg, 8, 16, 32, 64)
	var trials []func() any
	for _, n := range sizes {
		trials = append(trials, func() any {
			c := graph.Complete(n).Compile()
			t0 := mustStar(c.Source())
			res := mustRun(c, t0, mdst.Multi)
			return e8Trial{m: c.M(), ks: res.FinalDegree, msgs: res.Report.Messages}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E8",
			Title:  "complete graphs vs the KMZ Ω(n²/k) lower bound",
			Claim:  "message count is 'not far from the optimal' Ω(n²/k) of [KMZ87] (paper §1, §5)",
			Header: []string{"n", "m", "k*", "messages", "n²/k*", "ratio"},
		}
		for ni, n := range sizes {
			tr := results[ni].(e8Trial)
			lb := float64(n*n) / float64(tr.ks)
			t.Add(n, tr.m, tr.ks, tr.msgs, lb, float64(tr.msgs)/lb)
		}
		t.Note("the ratio grows with n because the improvement needs k-k* rounds over m=Θ(n²) edges; the paper's own worst case is O(n·m)=O(n³) against this Ω(n²/k) bound")
		return t
	}
	return spec{id: "E8", trials: trials, assemble: assemble}
}

// E9InitialTree measures the sensitivity to the startup tree construction —
// the paper's closing remark about obtaining "a not so bad k".
func E9InitialTree(cfg Config) *Table { return runSeq(e9Spec(cfg)) }

type e9Trial struct {
	k, ks, rounds, swaps int
	improveMsgs          int64
	setupMsgs            int64
}

func e9Spec(cfg Config) spec {
	n := cfg.scale(96)
	// The workload graph is deterministic; the snapshot cache compiles it
	// once and every builder trial shares the immutable result.
	w := newWorkload("e9", func(int64) *graph.Graph { return graph.BarabasiAlbert(n, 2, 3) })
	type builder struct {
		name  string
		build func(c *graph.CSR) (*tree.Tree, *sim.Report)
	}
	distributed := func(factory func(g *graph.Graph) sim.Factory) func(c *graph.CSR) (*tree.Tree, *sim.Report) {
		return func(c *graph.CSR) (*tree.Tree, *sim.Report) {
			tr, rep, err := spanning.BuildCompiled(engineFor(c), c, factory(c.Source()))
			if err != nil {
				panic(err)
			}
			return tr, rep
		}
	}
	builders := []builder{
		{"flood(BFS)", distributed(func(g *graph.Graph) sim.Factory { return spanning.NewFloodFactory(g.Nodes()[0]) })},
		{"dfs", distributed(func(g *graph.Graph) sim.Factory { return spanning.NewDFSFactory(g.Nodes()[0]) })},
		{"ghs", distributed(func(g *graph.Graph) sim.Factory { return spanning.NewGHSFactory() })},
		{"election", distributed(func(g *graph.Graph) sim.Factory { return spanning.NewElectionFactory() })},
		{"star(worst)", func(c *graph.CSR) (*tree.Tree, *sim.Report) { return mustStar(c.Source()), nil }},
		{"random", func(c *graph.CSR) (*tree.Tree, *sim.Report) {
			tr, err := spanning.RandomST(c.Source(), 7)
			if err != nil {
				panic(err)
			}
			return tr, nil
		}},
	}
	var trials []func() any
	for _, b := range builders {
		trials = append(trials, func() any {
			c := w.snap(0)
			t0, setup := b.build(c)
			res := mustRun(c, t0, mdst.Hybrid)
			setupMsgs := int64(0)
			if setup != nil {
				setupMsgs = setup.Messages
			}
			return e9Trial{
				k: res.InitialDegree, ks: res.FinalDegree,
				rounds: res.Rounds, swaps: res.Swaps,
				improveMsgs: res.Report.Messages, setupMsgs: setupMsgs,
			}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E9",
			Title:  "initial-tree sensitivity (hybrid mode)",
			Claim:  "'we can hope to change the ST construction in order to obtain a not so bad k' (paper §4.2)",
			Header: []string{"initial", "k", "k*", "rounds", "swaps", "improve msgs", "setup msgs"},
		}
		for bi, b := range builders {
			tr := results[bi].(e9Trial)
			t.Add(b.name, tr.k, tr.ks, tr.rounds, tr.swaps, tr.improveMsgs, tr.setupMsgs)
		}
		c := w.snap(0)
		t.Note("n=%d m=%d (Barabási–Albert, hubby): a better initial k shrinks rounds and messages, exactly the paper's remark", c.N(), c.M())
		return t
	}
	return spec{id: "E9", trials: trials, assemble: assemble}
}

// E10Broadcast quantifies the intro motivation by actually running a
// broadcast-with-ack protocol over the tree before and after improvement
// and measuring each node's send count on the simulator.
func E10Broadcast(cfg Config) *Table { return runSeq(e10Spec(cfg)) }

type e10Trial struct {
	n, before, after        int
	loadBefore, loadAfter   int64
	depthBefore, depthAfter int
}

func e10Spec(cfg Config) spec {
	fams := sweepFamilies(cfg)
	var trials []func() any
	for _, w := range fams {
		trials = append(trials, func() any {
			c := w.snap(1)
			t0 := mustStar(c.Source())
			final, _ := mustTwin(c, t0, mdst.Hybrid)
			before, _ := t0.MaxDegree()
			after, _ := final.MaxDegree()
			rb, err := apps.RunCompiled(engineFor(c), c, apps.Config{Tree: t0, Ack: true})
			if err != nil {
				panic(err)
			}
			ra, err := apps.RunCompiled(engineFor(c), c, apps.Config{Tree: final, Ack: true})
			if err != nil {
				panic(err)
			}
			return e10Trial{
				n: c.N(), before: before, after: after,
				loadBefore: rb.MaxLoad, loadAfter: ra.MaxLoad,
				depthBefore: rb.Depth, depthAfter: ra.Depth,
			}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "E10",
			Title:  "broadcast hot-spot load before/after improvement (measured)",
			Claim:  "a high-degree tree node 'might cause an undesirable communication load'; broadcasting on a MDegST reduces per-site work (paper §1)",
			Header: []string{"family", "n", "k(init)", "k(final)", "hot-spot sends before", "after", "reduction", "depth before", "after"},
		}
		for fi, w := range fams {
			tr := results[fi].(e10Trial)
			t.Add(w.name, tr.n, tr.before, tr.after, tr.loadBefore, tr.loadAfter,
				fmt.Sprintf("%.1fx", float64(tr.loadBefore)/float64(tr.loadAfter)),
				tr.depthBefore, tr.depthAfter)
		}
		t.Note("hot-spot sends measured by running broadcast+ack over each tree; the load equals the maximum tree degree, which the improvement minimises — at the cost of deeper trees (latency column)")
		return t
	}
	return spec{id: "E10", trials: trials, assemble: assemble}
}

// A1Modes is the mode ablation: exchanges per round vs rounds vs quality.
func A1Modes(cfg Config) *Table { return runSeq(a1Spec(cfg)) }

type modeTrial struct {
	k, ks, rounds, swaps int
	msgs, depth          int64
}

var ablationModes = []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid}

func a1Spec(cfg Config) spec {
	fams := sweepFamilies(cfg)[:4]
	var trials []func() any
	for _, w := range fams {
		for _, mode := range ablationModes {
			trials = append(trials, func() any {
				c := w.snap(2)
				t0 := mustStar(c.Source())
				res := mustRun(c, t0, mode)
				return modeTrial{
					k: res.InitialDegree, ks: res.FinalDegree,
					rounds: res.Rounds, swaps: res.Swaps,
					msgs: res.Report.Messages, depth: res.Report.CausalDepth,
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "A1",
			Title:  "ablation: single vs multi vs hybrid",
			Claim:  "§3.2.6 (multi) reduces rounds; our safe reading can cost quality, hybrid repairs it (DESIGN.md deviation 4)",
			Header: []string{"family", "mode", "k", "k*", "rounds", "swaps", "messages", "causal depth"},
		}
		i := 0
		for _, w := range fams {
			for _, mode := range ablationModes {
				tr := results[i].(modeTrial)
				i++
				t.Add(w.name, mode.String(), tr.k, tr.ks, tr.rounds, tr.swaps, tr.msgs, tr.depth)
			}
		}
		return t
	}
	return spec{id: "A1", trials: trials, assemble: assemble}
}

// A2Twin is the oracle ablation: the distributed run must equal the
// sequential twin exactly.
func A2Twin(cfg Config) *Table { return runSeq(a2Spec(cfg)) }

type a2Trial struct {
	identical, roundsEq, swapsEq bool
}

func a2Spec(cfg Config) spec {
	fams := sweepFamilies(cfg)[:5]
	var trials []func() any
	for _, w := range fams {
		for _, mode := range ablationModes {
			trials = append(trials, func() any {
				c := w.snap(3)
				t0 := mustStar(c.Source())
				res := mustRun(c, t0, mode)
				twinTree, st := mustTwin(c, t0, mode)
				return a2Trial{
					identical: res.Tree.Equal(twinTree),
					roundsEq:  res.Rounds == st.Rounds,
					swapsEq:   res.Swaps == st.Swaps,
				}
			})
		}
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "A2",
			Title:  "distributed protocol vs sequential twin (exact equality)",
			Claim:  "the distributed protocol is a faithful distribution of the sequential improvement (correctness argument)",
			Header: []string{"family", "mode", "identical tree", "rounds equal", "swaps equal"},
		}
		i := 0
		for _, w := range fams {
			for _, mode := range ablationModes {
				tr := results[i].(a2Trial)
				i++
				t.Add(w.name, mode.String(), tr.identical, tr.roundsEq, tr.swapsEq)
			}
		}
		return t
	}
	return spec{id: "A2", trials: trials, assemble: assemble}
}

// A3Engines is the engine ablation: the result and message count must be
// delivery-independent; only time-like measures may differ.
func A3Engines(cfg Config) *Table { return runSeq(a3Spec(cfg)) }

type a3Trial struct {
	msgs, depth int64
	ks          int
	tree        *tree.Tree
}

func a3Spec(cfg Config) spec {
	n := cfg.scale(64)
	w := newWorkload("a3", func(int64) *graph.Graph { return graph.Gnm(n, 3*n, 4) })
	engines := []struct {
		name string
		mk   func() sim.Engine
	}{
		{"event-unit", unitEngine},
		{"event-random-fifo", func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 1, FIFO: true} }},
		{"event-random-nofifo", func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.05), Seed: 2, FIFO: false} }},
		{"async-goroutines", func() sim.Engine { return &sim.AsyncEngine{} }},
	}
	// Trial 0 is the unit-delay reference run the other trees are compared
	// against; trials 1..len(engines) are the engine runs.
	trials := []func() any{func() any {
		c := w.snap(0)
		res := mustRun(c, mustStar(c.Source()), mdst.Hybrid)
		return a3Trial{tree: res.Tree}
	}}
	for _, e := range engines {
		trials = append(trials, func() any {
			c := w.snap(0)
			res, err := mdst.RunSnapshot(e.mk(), c, mustStar(c.Source()), mdst.Hybrid)
			if err != nil {
				panic(err)
			}
			return a3Trial{msgs: res.Report.Messages, depth: res.Report.CausalDepth, ks: res.FinalDegree, tree: res.Tree}
		})
	}
	assemble := func(results []any) *Table {
		t := &Table{
			ID:     "A3",
			Title:  "ablation: engines and delay models",
			Claim:  "the algorithm is asynchronous and event-driven: its result does not depend on delays (paper §2)",
			Header: []string{"engine", "messages", "causal depth", "final k", "same tree as unit"},
		}
		ref := results[0].(a3Trial).tree
		for ei, e := range engines {
			tr := results[ei+1].(a3Trial)
			// The goroutine engine's causal depth depends on the Go
			// scheduler, so it is elided to keep the table reproducible.
			depth := any(tr.depth)
			if e.name == "async-goroutines" {
				depth = "-"
			}
			t.Add(e.name, tr.msgs, depth, tr.ks, tr.tree.Equal(ref))
		}
		t.Note("message counts are identical across engines because every send is delivery-order independent; causal depth varies with the adversary (elided for the goroutine engine: it depends on the host scheduler)")
		return t
	}
	return spec{id: "A3", trials: trials, assemble: assemble}
}

// scaledSizes applies cfg's size factor to a size sweep.
func scaledSizes(cfg Config, sizes ...int) []int {
	out := make([]int, len(sizes))
	for i, n := range sizes {
		out[i] = cfg.scale(n)
	}
	return out
}
