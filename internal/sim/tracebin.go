package sim

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// The compact binary trace form. A text trace of a large run is hundreds
// of megabytes of formatted strings; the binary form writes each delivery
// as a handful of varints (the flat wire record serialises directly) and
// renders back to the exact same TraceEvents on read. The file carries the
// same kind-string opcode table as checkpoints, so traces survive registry
// renumbering across binaries.
//
// Format: magic | version | record stream. The opcode table is inline:
// the first time an opcode appears it is written as 0 followed by its kind
// string, assigning the next file-local index; later occurrences write the
// index. Records:
//
//	0x01 delivery: time (uvarint of float64 bits), depth, from, to, wire record
//	0x02 note:     time, depth, to, len-prefixed string

var traceMagic = [8]byte{'M', 'D', 'G', 'S', 'T', 'T', 'R', '1'}

// TraceVersion is the binary trace format version.
const TraceVersion = 1

const (
	traceRecDelivery = 0x01
	traceRecNote     = 0x02
)

// traceScratchPool recycles the writer's encode buffer: tracing is per
// delivery, and the harness runs thousands of traced executions, so the
// scratch must not be a per-writer (let alone per-event) allocation.
var traceScratchPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// BinaryTraceWriter encodes TraceEvents to w in the compact binary form.
// Use the Trace method as an engine's Trace callback and Close when the
// run finished. Not safe for concurrent use (engine trace callbacks are
// serialised).
type BinaryTraceWriter struct {
	w      io.Writer
	buf    []byte   // pooled scratch, flushed when it grows past flushAt
	fileOf []uint64 // process Op -> file index + 0 (0 = unassigned)
	next   uint64
	err    error
}

const traceFlushAt = 1 << 15

// NewBinaryTraceWriter starts a binary trace on w, writing the header.
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	t := &BinaryTraceWriter{
		w:      w,
		buf:    traceScratchPool.Get().([]byte)[:0],
		fileOf: make([]uint64, NumOps()),
	}
	t.buf = append(t.buf, traceMagic[:]...)
	t.buf = appendUvarint(t.buf, TraceVersion)
	return t
}

// Trace encodes one event; it is shaped to be an engine Trace callback.
func (t *BinaryTraceWriter) Trace(e TraceEvent) {
	if t.err != nil {
		return
	}
	if e.IsMessage() {
		t.buf = append(t.buf, traceRecDelivery)
		t.buf = appendUvarint(t.buf, math.Float64bits(e.Time))
		t.buf = appendVarint(t.buf, e.Depth)
		t.buf = appendVarint(t.buf, int64(e.From))
		t.buf = appendVarint(t.buf, int64(e.To))
		// The opcode is resolved before the record's wire bytes so encOp
		// can splice the inline table entry ahead of them.
		fileOp := t.encOp(e.Msg.Op)
		t.buf = appendUvarint(t.buf, fileOp)
		t.buf = appendUvarint(t.buf, uint64(e.Msg.Nw))
		for i := 0; i < int(e.Msg.Nw); i++ {
			t.buf = appendVarint(t.buf, e.Msg.W[i])
		}
	} else {
		t.buf = append(t.buf, traceRecNote)
		t.buf = appendUvarint(t.buf, math.Float64bits(e.Time))
		t.buf = appendVarint(t.buf, e.Depth)
		t.buf = appendVarint(t.buf, int64(e.To))
		t.buf = appendUvarint(t.buf, uint64(len(e.Note)))
		t.buf = append(t.buf, e.Note...)
	}
	if len(t.buf) >= traceFlushAt {
		t.flush()
	}
}

// encOp translates an opcode to its file-local index, emitting the inline
// table entry (0 + kind string) on first use.
func (t *BinaryTraceWriter) encOp(op Op) uint64 {
	if int(op) >= len(t.fileOf) {
		// Op registered after the writer started (test registration);
		// grow the table.
		grown := make([]uint64, NumOps())
		copy(grown, t.fileOf)
		t.fileOf = grown
	}
	if t.fileOf[op] == 0 {
		kind := opKind(op)
		t.buf = appendUvarint(t.buf, 0)
		t.buf = appendUvarint(t.buf, uint64(len(kind)))
		t.buf = append(t.buf, kind...)
		t.next++
		t.fileOf[op] = t.next
	}
	return t.fileOf[op]
}

func (t *BinaryTraceWriter) flush() {
	if t.err != nil || len(t.buf) == 0 {
		return
	}
	_, t.err = t.w.Write(t.buf)
	t.buf = t.buf[:0]
}

// Err returns the first write error.
func (t *BinaryTraceWriter) Err() error { return t.err }

// Close flushes buffered records and returns the pooled scratch. The
// writer must not be used afterwards.
func (t *BinaryTraceWriter) Close() error {
	t.flush()
	if t.buf != nil {
		traceScratchPool.Put(t.buf[:0])
		t.buf = nil
	}
	return t.err
}

// ReadBinaryTrace decodes a binary trace back into TraceEvents. Malformed
// input returns a typed *WireError or a wrapped description, never a
// panic.
func ReadBinaryTrace(r io.Reader) ([]TraceEvent, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(traceMagic)+1 || string(raw[:len(traceMagic)]) != string(traceMagic[:]) {
		return nil, fmt.Errorf("sim: not a binary trace (bad magic)")
	}
	at := len(traceMagic)
	version, n := binary.Uvarint(raw[at:])
	if n <= 0 || version != TraceVersion {
		return nil, fmt.Errorf("sim: unsupported binary trace version")
	}
	at += n
	ops := []Op{OpNone} // file index -> registry opcode
	decOp := func(fileOp uint64) (Op, error) {
		if fileOp == 0 || fileOp >= uint64(len(ops)) {
			return OpNone, &WireError{Reason: fmt.Sprintf("trace opcode %d outside the inline table", fileOp)}
		}
		return ops[fileOp], nil
	}
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(raw[at:])
		if n <= 0 {
			return 0, fmt.Errorf("sim: truncated binary trace")
		}
		at += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(raw[at:])
		if n <= 0 {
			return 0, fmt.Errorf("sim: truncated binary trace")
		}
		at += n
		return v, nil
	}
	var events []TraceEvent
	for at < len(raw) {
		tag := raw[at]
		at++
		bits, err := uv()
		if err != nil {
			return nil, err
		}
		depth, err := sv()
		if err != nil {
			return nil, err
		}
		e := TraceEvent{Time: math.Float64frombits(bits), Depth: depth}
		switch tag {
		case traceRecDelivery:
			from, err := sv()
			if err != nil {
				return nil, err
			}
			to, err := sv()
			if err != nil {
				return nil, err
			}
			// Inline table entries precede the opcode they define.
			for {
				peek, n := binary.Uvarint(raw[at:])
				if n <= 0 {
					return nil, fmt.Errorf("sim: truncated binary trace")
				}
				if peek != 0 {
					break
				}
				at += n
				klen, err := uv()
				if err != nil {
					return nil, err
				}
				if klen > uint64(len(raw)-at) {
					return nil, fmt.Errorf("sim: truncated binary trace")
				}
				kind := string(raw[at : at+int(klen)])
				at += int(klen)
				op, ok := OpByKind(kind)
				if !ok {
					return nil, &WireError{Reason: fmt.Sprintf("unknown message kind %q in trace", kind)}
				}
				ops = append(ops, op)
			}
			m, used, err := DecodeWire(raw[at:], decOp)
			if err != nil {
				return nil, err
			}
			at += used
			e.From, e.To, e.Msg = NodeID(from), NodeID(to), m
		case traceRecNote:
			to, err := sv()
			if err != nil {
				return nil, err
			}
			nlen, err := uv()
			if err != nil {
				return nil, err
			}
			if nlen > uint64(len(raw)-at) {
				return nil, fmt.Errorf("sim: truncated binary trace")
			}
			e.To = NodeID(to)
			e.Note = string(raw[at : at+int(nlen)])
			at += int(nlen)
		default:
			return nil, fmt.Errorf("sim: unknown binary trace record 0x%02x", tag)
		}
		events = append(events, e)
	}
	return events, nil
}
