package sim

import (
	"fmt"

	"mdegst/internal/graph"
)

// The process-distributed face of the unit-delay round runtime (DESIGN.md
// §9). A DistRunner hosts one process's share of a partitioned run — the
// protocol instances, contexts and outboxes of the nodes a deployment
// process owns — and exposes the sharded engine's rank/outbox machinery
// (DESIGN.md §7) as explicit phases, so a transport layer (internal/net)
// can drive barrier-separated rounds across OS processes connected by real
// sockets. The determinism story is byte-for-byte the sharded engine's:
//
//   - Every delivery of a round has a global rank — its position in the
//     1-shard engine's delivery order.
//   - A message is keyed (Parent, Pos): the rank of the delivery whose
//     handler sent it, and the send's index within that handler call.
//     Merging incoming streams by key reconstructs the 1-shard order.
//   - Ranks of the next round come from a prefix sum over per-delivery
//     send counts. In-process the counts live in one shared slice; across
//     processes each process broadcasts the (rank, count) pairs of the
//     deliveries it played, and everyone scatters them into a local slab
//     and prefix-sums identically.
//
// The delivery plane mirrors the in-process sharded engine's single-copy
// scatter (DESIGN.md §12) across the socket boundary (§13): every batch a
// process sends is already one key-sorted run, and each parent rank's
// deliveries are played by exactly one process, so all of a parent's sends
// to one receiver arrive in exactly one run. The engine therefore splices
// the K runs by rank arithmetic — a counting sort over parent ranks, no
// merge tournament — and hands PlayRound a single inbox already in global
// delivery order with ranks materialised. The rank/key/prefix-sum
// contract above is unchanged and still shared with the sharded engine.
//
// The runner deliberately holds protocol instances for every node, not
// just owned ones: protocols implementing StateCodec let the processes
// all-gather their owned nodes' encoded states at quiescence, so each
// process finishes with the complete final state plane and extracts the
// identical tree and report the simulator would.

// OutMsg is one cross-process delivery record of the distributed round
// plane: the canonical merge key (Parent, Pos), dense endpoints and the
// flat wire record. Like shardDelivery it is pointer-free, so outboxes are
// plain slabs and the byte form on the socket mirrors the in-memory form.
type OutMsg struct {
	Parent int64 // global rank of the sending delivery (dense index for Init sends)
	Pos    int32 // index of this send within the sending handler call
	From   int32 // dense index of the sender
	To     int32 // dense index of the destination
	Msg    WireMsg
}

// KeyLess orders OutMsgs by the canonical (Parent, Pos) key. Keys are
// globally unique within a round, so the order is total.
func (m OutMsg) KeyLess(o OutMsg) bool {
	if m.Parent != o.Parent {
		return m.Parent < o.Parent
	}
	return m.Pos < o.Pos
}

// RankCount reports the send count of one played delivery at its global
// rank — the distributed form of the sharded engine's cnt slice. Each
// barrier broadcast carries one entry per delivery the process played, in
// ascending rank order.
type RankCount struct {
	Rank  int64
	Count int64
}

// distCtx is the Context handed to protocols on the distributed round
// plane, mirroring shardRoundCtx: rank is the global rank of the delivery
// being processed (the dense node index while Init runs), sends counts the
// handler's sends so far.
type distCtx struct {
	r         *DistRunner
	id        NodeID
	dense     int32
	neighbors []NodeID
	nbrDense  []int32
	rank      int64
	sends     int32
}

func (c *distCtx) ID() NodeID          { return c.id }
func (c *distCtx) Neighbors() []NodeID { return c.neighbors }

func (c *distCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.r
	toDense := c.nbrDense[ni]
	dst := r.owner[toDense]
	r.out[dst] = append(r.out[dst], OutMsg{
		Parent: c.rank,
		Pos:    c.sends,
		From:   c.dense,
		To:     toDense,
		Msg:    m,
	})
	c.sends++
}

// Logf is a no-op: the distributed plane does not support tracing (a
// global-order trace would serialise the processes; use the simulator).
func (c *distCtx) Logf(string, ...any) {}

// DistRunner drives one process's shard of a partitioned unit-delay run.
// The caller (the transport engine) owns the barrier: it exchanges the
// outboxes and rank counts between phases, computes the next round's rank
// offsets by prefix sum, and hands the merged incoming streams back to
// PlayRound. All methods must be called from one goroutine.
type DistRunner struct {
	c      *graph.CSR
	owner  []int32 // dense node -> owning process
	self   int32
	nprocs int
	ids    []NodeID
	protos []Protocol // every node; only owned ones execute here
	owned  []int32    // dense indices owned by self, ascending
	ctxs   []distCtx  // one per owned node
	local  []int32    // dense -> index into owned/ctxs (-1 if not owned)
	out    [][]OutMsg // per destination process, refilled each phase
	counts []RankCount
	sent   []int64 // dense sender slab lent to the report's fast path
	report *Report
}

// DistScratch recycles a runner's slabs across one engine's sequential
// runs — the distributed counterpart of the sharded engine's pooled
// arenas. The transport engine owns one, seeds each run's runner from it
// with NewDistRunnerScratch, and harvests it back with Release when the
// run ends; the outbox capacities grown during one run then serve the
// next, so a live mesh's steady state appends into full-size slabs
// instead of re-growing them from nil every run. Zero value is ready.
type DistScratch struct {
	protos []Protocol
	local  []int32
	owned  []int32
	ctxs   []distCtx
	out    [][]OutMsg
	counts []RankCount
	sent   []int64
}

// NewDistRunner builds the process's share of a run: protocol instances
// for every node (owned ones will execute; the rest exist to receive
// all-gathered final states), contexts and outboxes for the owned range.
// owner maps every dense node to its owning process in [0, nprocs).
func NewDistRunner(c *graph.CSR, owner []int32, nprocs, self int, f Factory) *DistRunner {
	return NewDistRunnerScratch(c, owner, nprocs, self, f, nil)
}

// NewDistRunnerScratch is NewDistRunner seeded from recycled slabs (nil
// sc allocates fresh ones). Every harvested slab is rewritten in full
// before use, so runs stay independent; only capacity carries over.
func NewDistRunnerScratch(c *graph.CSR, owner []int32, nprocs, self int, f Factory, sc *DistScratch) *DistRunner {
	n := c.N()
	ids := c.Index().IDs()
	if sc == nil {
		sc = &DistScratch{}
	}
	r := &DistRunner{
		c:      c,
		owner:  owner,
		self:   int32(self),
		nprocs: nprocs,
		ids:    ids,
		protos: growCap(sc.protos, n),
		local:  growCap(sc.local, n),
		owned:  sc.owned[:0],
		counts: sc.counts[:0],
		report: newReport(),
	}
	if cap(sc.out) >= nprocs {
		r.out = sc.out[:nprocs]
		for d := range r.out {
			r.out[d] = r.out[d][:0]
		}
	} else {
		r.out = make([][]OutMsg, nprocs)
		copy(r.out, sc.out) // keep whatever per-destination capacity exists
	}
	for v := 0; v < n; v++ {
		r.local[v] = -1
		r.protos[v] = f(ids[v], c.NeighborIDs(int32(v)))
		if owner[v] == r.self {
			r.owned = append(r.owned, int32(v))
		}
	}
	r.ctxs = growCap(sc.ctxs, len(r.owned))
	for li, v := range r.owned {
		r.local[v] = int32(li)
		r.ctxs[li] = distCtx{
			r:         r,
			id:        ids[v],
			dense:     v,
			neighbors: c.NeighborIDs(v),
			nbrDense:  c.Neighbors(v),
		}
	}
	// Arm the report's dense sender slab: PlayRound records through the
	// same memoised scalar + dense-slab path the sharded engine uses
	// (recordFast), so the per-delivery map ops of record() never run.
	// The folds at capture/merge points reconstruct identical maps.
	r.sent = growCap(sc.sent, n)
	for i := range r.sent {
		r.sent[i] = 0
	}
	r.report.adoptDenseSent(r.sent, ids)
	return r
}

// growCap returns s resized to length n, reallocating only when the
// recycled capacity is short. Contents are unspecified; callers rewrite.
func growCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Release hands the runner's slabs back to sc for the engine's next run.
// The protocol slice is harvested too: results that alias it (Protos)
// stay intact until the next run constructs a runner from sc, which is
// exactly the validity window the dense snapshot contract gives them.
func (r *DistRunner) Release(sc *DistScratch) {
	sc.protos = r.protos
	sc.local = r.local
	sc.owned = r.owned
	sc.ctxs = r.ctxs
	sc.out = r.out
	sc.counts = r.counts
	sc.sent = r.sent
}

// RearmFast re-arms the report's dense sender slab after a mid-run
// counter capture folded and detached it (the periodic checkpoint
// cadence): the folded counts live on in the SentBy map, so the slab
// restarts at zero and accumulates only the deliveries since the commit.
func (r *DistRunner) RearmFast() {
	for i := range r.sent {
		r.sent[i] = 0
	}
	r.report.adoptDenseSent(r.sent, r.ids)
}

// N returns the node count of the snapshot.
func (r *DistRunner) N() int { return r.c.N() }

// Owned returns the dense indices this process owns, ascending. Shared; do
// not modify.
func (r *DistRunner) Owned() []int32 { return r.owned }

// Owns reports whether this process owns dense node v.
func (r *DistRunner) Owns(v int32) bool { return r.owner[v] == r.self }

// Report returns the process's share of the run accounting. Merge the
// processes' reports with MergeParallel at quiescence.
func (r *DistRunner) Report() *Report { return r.report }

// Protos returns the per-dense-node protocol instances. Owned entries hold
// live state; the rest are factory-fresh until final states are decoded
// into them. Shared; do not modify.
func (r *DistRunner) Protos() []Protocol { return r.protos }

// FinalProtos returns the NodeID-keyed protocol map engines hand back.
func (r *DistRunner) FinalProtos() map[NodeID]Protocol {
	m := make(map[NodeID]Protocol, len(r.protos))
	for v, p := range r.protos {
		m[r.ids[v]] = p
	}
	return m
}

func (r *DistRunner) resetPhase() {
	for d := range r.out {
		r.out[d] = r.out[d][:0]
	}
	r.counts = r.counts[:0]
}

// PlayInit runs Init for the owned nodes in ascending dense order. Sends
// get key (dense index, pos) and the counts report one entry per owned
// node at rank = dense index — globally the Init rank space is [0, N).
func (r *DistRunner) PlayInit() {
	r.resetPhase()
	for li, v := range r.owned {
		ctx := &r.ctxs[li]
		ctx.rank = int64(v)
		ctx.sends = 0
		r.protos[v].Init(ctx)
		r.counts = append(r.counts, RankCount{Rank: int64(v), Count: int64(ctx.sends)})
	}
}

// PlayRound delivers one round to the owned nodes. The engine hands one
// spliced inbox — already in canonical global delivery order, with each
// record's Parent field materialised to the delivery's global rank
// (off[Parent] + Pos, computed during the splice) — so delivery is a
// single sequential walk, and the handler's sends refill the outboxes
// keyed by that rank. round is the global round number (depth
// accounting). The inbox is consumed before the phase's outboxes reset,
// so the engine may alias it to reusable scratch.
func (r *DistRunner) PlayRound(round int64, inbox []OutMsg) {
	r.resetPhase()
	for _, d := range inbox {
		li := r.local[d.To]
		if li < 0 {
			panic(fmt.Sprintf("sim: delivery for dense node %d not owned by process %d", d.To, r.self))
		}
		ctx := &r.ctxs[li]
		ctx.rank = d.Parent
		ctx.sends = 0
		r.report.recordFast(d.From, d.Msg, round)
		r.protos[d.To].Recv(ctx, r.ids[d.From], d.Msg)
		r.counts = append(r.counts, RankCount{Rank: d.Parent, Count: int64(ctx.sends)})
	}
}

// Outbox returns the phase's deliveries destined to process dst, sorted by
// key. Valid until the next Play phase; the caller encodes or merges it
// before then.
func (r *DistRunner) Outbox(dst int) []OutMsg { return r.out[dst] }

// Counts returns the (rank, send count) pairs of the deliveries played
// this phase, ascending by rank — one entry per played delivery, including
// zero-send ones (the barrier cross-checks that the union over processes
// covers the whole rank space). Valid until the next Play phase.
func (r *DistRunner) Counts() []RankCount { return r.counts }

// EncodeOwnedState serialises the state of owned dense node v with the
// given opcode encoder (the transport's canonical wire table). The
// protocol must implement StateCodec.
func (r *DistRunner) EncodeOwnedState(v int32, enc func(Op) uint64) ([]byte, error) {
	return EncodeProtocolState(r.protos[v], enc)
}

// AppendOwnedState is EncodeOwnedState into a caller-owned arena: the
// state bytes append to buf and the grown buffer returns, so the engine's
// all-gather encodes every owned state into one reusable slab.
func (r *DistRunner) AppendOwnedState(buf []byte, v int32, enc func(Op) uint64) ([]byte, error) {
	return AppendProtocolState(buf, r.protos[v], enc)
}

// DecodeStateInto decodes a peer's state blob into dense node v's
// instance — the receiving half of the final-state all-gather and of
// checkpoint assembly.
func (r *DistRunner) DecodeStateInto(v int32, blob []byte, dec func(uint64) (Op, error)) error {
	return DecodeProtocolState(r.protos[v], blob, dec)
}

// EncodeProtocolState serialises one protocol's state as a varint word
// stream using the given opcode encoder (nil keeps process-local opcodes).
// The protocol must implement StateCodec.
func EncodeProtocolState(p Protocol, enc func(Op) uint64) ([]byte, error) {
	return AppendProtocolState(nil, p, enc)
}

// AppendProtocolState is EncodeProtocolState appending to buf, so callers
// encoding many states can amortise into one arena.
func AppendProtocolState(buf []byte, p Protocol, enc func(Op) uint64) ([]byte, error) {
	sc, ok := p.(StateCodec)
	if !ok {
		return nil, &CheckpointError{Reason: fmt.Sprintf("protocol %T does not implement StateCodec", p)}
	}
	e := StateEncoder{opEnc: enc, buf: buf}
	sc.EncodeState(&e)
	return e.buf, nil
}

// DecodeProtocolState mirrors EncodeProtocolState, enforcing the same
// exact-consumption contract as checkpoint resume.
func DecodeProtocolState(p Protocol, blob []byte, dec func(uint64) (Op, error)) error {
	sc, ok := p.(StateCodec)
	if !ok {
		return &CheckpointError{Reason: fmt.Sprintf("protocol %T does not implement StateCodec", p)}
	}
	d := StateDecoder{buf: blob, opDec: dec}
	if err := sc.DecodeState(&d); err != nil {
		return err
	}
	if d.err != nil {
		return d.err
	}
	if d.at != len(d.buf) {
		return &CheckpointError{Reason: fmt.Sprintf("node state: %d trailing bytes", len(d.buf)-d.at)}
	}
	return nil
}

// --- exported checkpoint plumbing for the network plane -----------------

// CaptureCounters freezes r's counters into ck (sorted, deterministic) —
// the exported form of the engines' capture step, used by the network
// plane to ship per-process report shares and assemble checkpoint files.
func (ck *Checkpoint) CaptureCounters(r *Report) { ck.captureReport(r) }

// RestoreCounters loads ck's counters into a fresh report (set, not add).
func (ck *Checkpoint) RestoreCounters(r *Report) { ck.restoreReport(r) }

// EncodeStates freezes every protocol's state into ck, binding the
// checkpoint's opcode table; protocols must implement StateCodec. The
// order (node 0 first) fixes the file's opcode numbering, so assembling a
// checkpoint from decoded states reproduces the in-process file byte for
// byte.
func (ck *Checkpoint) EncodeStates(protos []Protocol) error { return ck.encodeStates(protos) }

// RestoreStates decodes ck's per-node states into the instances.
func (ck *Checkpoint) RestoreStates(protos []Protocol) error { return ck.decodeStates(protos) }

// ValidateAgainst checks ck's snapshot fingerprint and pending-slab
// endpoint ranges against a compiled snapshot before resuming.
func (ck *Checkpoint) ValidateAgainst(c *graph.CSR) error { return ck.validateAgainst(c) }

// Finalize materialises the public breakdown maps — engines call this once
// after merging shard or process reports. Idempotent.
func (r *Report) Finalize() { r.finalize() }
