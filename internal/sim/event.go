package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mdegst/internal/graph"
)

// DelayFn draws the propagation delay for one message on the directed link
// from -> to. The paper's model bounds every delay by one time unit, so
// delays must lie in (0, 1] — the engines enforce the bound per draw and
// abort the run with a clear error on a violation, because the calendar
// queue's bucket math is only exact inside it.
type DelayFn func(rng *rand.Rand, from, to NodeID) float64

// badDelay aborts a run whose DelayFn left the model's (0, 1] delay bound.
// It unwinds as a panic through the protocol stack and is converted to an
// error by the engines' recover, so a misconfigured delay model cannot
// silently corrupt the calendar queue's bounded time wheel.
type badDelay struct {
	from, to NodeID
	d        float64
}

func (e badDelay) Error() string {
	return fmt.Sprintf("sim: delay %v on link %d->%d outside the model's (0, 1] bound", e.d, e.from, e.to)
}

// checkDelay validates one drawn delay. NaN fails both comparisons.
func checkDelay(d float64, from, to NodeID) {
	if !(d > 0 && d <= 1) {
		panic(badDelay{from: from, to: to, d: d})
	}
}

// recoverRun converts a protocol panic into an error, keeping delay-bound
// violations as their own typed error instead of wrapping them as panics.
func recoverRun(p any) error {
	if bd, ok := p.(badDelay); ok {
		return bd
	}
	return fmt.Errorf("sim: protocol panic: %v", p)
}

// UnitDelay assigns every message exactly one time unit — the assumption
// under which the paper's time complexity is stated.
func UnitDelay(*rand.Rand, NodeID, NodeID) float64 { return 1 }

// UniformDelay returns delays uniform in (lo, 1]. Use a small lo (for
// example 0.05) as an asynchrony adversary.
func UniformDelay(lo float64) DelayFn {
	if lo < 0 || lo >= 1 {
		panic(fmt.Sprintf("sim: UniformDelay lower bound %v out of range [0,1)", lo))
	}
	return func(rng *rand.Rand, _, _ NodeID) float64 {
		return 1 - rng.Float64()*(1-lo)
	}
}

// DefaultMaxMessages caps runaway protocols in the event engine.
const DefaultMaxMessages = 200_000_000

// EventEngine is a deterministic discrete-event simulator: events are
// delivered in (time, sequence) order, delays come from a seeded RNG, and
// the whole run is reproducible.
//
// The engine is the hot path of the experiment harness, so scheduling is a
// two-tier structure specialised to the model's bounded delays (DESIGN.md
// §6): under UnitDelay — the default — the run degenerates into synchronous
// rounds executed by the round engine (round.go), double-buffered delivery
// slices with no timestamps, RNG or queue at all; under randomised delays
// events go through a calendar/bucket queue (wheel.go) whose rotating ring
// of time buckets covers the (now, now+1] delivery window for amortised
// O(1) push/pop instead of a binary heap's O(log m). Every per-node
// structure — contexts, protocol instances, FIFO clamp intervals — lives in
// one slice addressed by the CSR snapshot's dense index (no map[NodeID]
// anywhere on the delivery path), and the backing arrays are pooled and
// reused across runs. Each event carries its destination's dense index, so
// a delivery is two slice loads. ReferenceEngine keeps the straightforward
// container/heap implementation as the delivery-order oracle; all tiers are
// checked trace-equivalent by the differential tests and compared by the
// allocation benchmarks.
type EventEngine struct {
	// Seed initialises the delay RNG.
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order even under random delays
	// (delivery times are clamped to be non-decreasing per directed link).
	// The paper's channels are FIFO; disable to stress protocols under
	// reordering.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages); it converts protocol livelock into an error.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note.
	Trace func(TraceEvent)
	// Checkpoint, when non-nil, arms barrier checkpointing: the run stops
	// at the round barrier after Checkpoint.Round (unit-delay tier only)
	// and writes the frozen run to Checkpoint.W. See checkpoint.go.
	Checkpoint *CheckpointSpec
}

// event is one scheduled delivery. With the flat message plane it is a
// pure value record — no pointers anywhere — so queues of events are plain
// slabs the GC never scans.
type event struct {
	t       float64
	seq     int64
	depth   int64
	from    NodeID
	to      NodeID
	toDense int32
	msg     WireMsg
}

func (e event) before(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

type eventCtx struct {
	eng *eventRun
	id  NodeID
	// neighbors and nbrDense are the snapshot's neighbour views for this
	// node (NodeIDs for the Protocol contract, dense indices for event
	// addressing), same position order.
	neighbors []NodeID
	nbrDense  []int32
	// clamp holds, per neighbour (same index as neighbors), the latest
	// delivery time already scheduled on the directed link id->neighbor.
	// FIFO order is enforced by clamping new delivery times to it.
	clamp []float64
	// now/depth of the message currently being processed at this node.
	now   float64
	depth int64
}

func (c *eventCtx) ID() NodeID          { return c.id }
func (c *eventCtx) Neighbors() []NodeID { return c.neighbors }

func (c *eventCtx) Send(to NodeID, m WireMsg) {
	i := neighborIndex(c.neighbors, to)
	if i < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	c.eng.send(c, i, to, m)
}

func (c *eventCtx) Logf(format string, args ...any) {
	if c.eng.trace != nil {
		c.eng.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// neighborIndex returns the position of `to` in the ascending neighbour list,
// or -1. Linear scan: degrees are small and the scan doubles as the
// point-to-point model check that used to be a separate pass.
func neighborIndex(neighbors []NodeID, to NodeID) int {
	for i, n := range neighbors {
		if n == to {
			return i
		}
	}
	return -1
}

type eventRun struct {
	rng    *rand.Rand
	delay  DelayFn
	fifo   bool
	trace  func(TraceEvent)
	wheel  *bucketQueue
	seq    int64
	report *Report
}

func (er *eventRun) send(c *eventCtx, ni int, to NodeID, m WireMsg) {
	d := er.delay(er.rng, c.id, to)
	checkDelay(d, c.id, to)
	t := c.now + d
	if er.fifo {
		if last := c.clamp[ni]; t < last {
			t = last
		}
		c.clamp[ni] = t
	}
	er.seq++
	er.wheel.push(event{t: t, seq: er.seq, depth: c.depth + 1, from: c.id, to: to, toDense: c.nbrDense[ni], msg: m})
}

// eventScratch is the reusable per-run state: the calendar queue's bucket
// ring, the node contexts, the protocol instances and the FIFO clamp backing
// array — all dense-index addressed. Pooled so repeated runs — the parallel
// experiment harness executes thousands — allocate it once per worker
// instead of once per run.
type eventScratch struct {
	wheel  bucketQueue
	ctxs   []eventCtx
	protos []Protocol
	clamp  []float64
}

var scratchPool = sync.Pool{New: func() any { return new(eventScratch) }}

func (s *eventScratch) reset(n, halfEdges int) {
	if cap(s.ctxs) < n {
		s.ctxs = make([]eventCtx, n)
	}
	s.ctxs = s.ctxs[:n]
	if cap(s.protos) < n {
		s.protos = make([]Protocol, n)
	}
	s.protos = s.protos[:n]
	if cap(s.clamp) < halfEdges {
		s.clamp = make([]float64, halfEdges)
	}
	s.clamp = s.clamp[:halfEdges]
	clear(s.clamp)
	s.wheel.reset()
}

func (s *eventScratch) release() {
	// Reset the wheel (abnormal exits leave events behind — flat records,
	// but stale ones must not leak into the next run) and zero the contexts
	// and protocol slots so pooled memory does not pin protocol state or
	// the snapshot's neighbour arrays.
	s.wheel.reset()
	for i := range s.ctxs {
		s.ctxs[i] = eventCtx{}
	}
	clear(s.protos)
	scratchPool.Put(s)
}

// Run compiles g and executes the protocol to quiescence over the snapshot.
func (e *EventEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence over a compiled snapshot.
// Protocol panics are converted to errors so a buggy node cannot take down
// the harness. The scheduler tier is picked here: UnitDelay runs the
// synchronous round engine, every other delay model the calendar queue —
// both delivery-trace-equivalent to ReferenceEngine.
func (e *EventEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	dense, rep, err := e.runSnapshotDense(c, f)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

// RunSnapshotDense is RunSnapshot returning the final protocol instances
// dense-indexed (see DenseSnapshotEngine).
func (e *EventEngine) RunSnapshotDense(c *graph.CSR, f Factory) (protos []Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	return e.runSnapshotDense(c, f)
}

// runSnapshotDense is the common body of RunSnapshot and RunSnapshotDense;
// callers own panic recovery.
func (e *EventEngine) runSnapshotDense(c *graph.CSR, f Factory) ([]Protocol, *Report, error) {
	start := time.Now()
	delay := e.Delay
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if isUnitDelay(delay) {
		return e.runRounds(c, f, maxMsgs, start)
	}
	if e.Checkpoint != nil {
		return nil, nil, errCheckpointTier
	}
	er := &eventRun{
		rng:    rand.New(rand.NewSource(e.Seed)),
		delay:  delay,
		fifo:   e.FIFO,
		trace:  e.Trace,
		report: newReport(),
	}
	n := c.N()
	ids := c.Index().IDs()
	scratch := scratchPool.Get().(*eventScratch)
	defer scratch.release()
	scratch.reset(n, c.HalfEdges())
	er.wheel = &scratch.wheel

	for i := 0; i < n; i++ {
		di := int32(i)
		lo, hi := c.HalfEdge(di, 0), c.HalfEdge(di, c.Degree(di))
		scratch.ctxs[i] = eventCtx{
			eng:       er,
			id:        ids[i],
			neighbors: c.NeighborIDs(di),
			nbrDense:  c.Neighbors(di),
			clamp:     scratch.clamp[lo:hi],
		}
		scratch.protos[i] = f(ids[i], scratch.ctxs[i].neighbors)
	}
	// All nodes start independently; Init runs at time zero in ID order.
	for i := 0; i < n; i++ {
		scratch.protos[i].Init(&scratch.ctxs[i])
	}
	for !er.wheel.empty() {
		ev := er.wheel.pop()
		if er.report.Messages >= maxMsgs {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		ctx := &scratch.ctxs[ev.toDense]
		ctx.now = ev.t
		ctx.depth = ev.depth
		er.report.record(ev.from, ev.msg, ev.depth)
		if ev.t > er.report.VirtualTime {
			er.report.VirtualTime = ev.t
		}
		if er.trace != nil {
			er.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
		}
		scratch.protos[ev.toDense].Recv(ctx, ev.from, ev.msg)
	}
	er.report.finalize()
	er.report.Wall = time.Since(start)
	// Copy out of the pooled scratch: release clears its protocol slots.
	return append([]Protocol(nil), scratch.protos...), er.report, nil
}

// Resume compiles g and continues a checkpointed run (see ResumeSnapshot).
func (e *EventEngine) Resume(g *graph.Graph, f Factory, ck *Checkpoint) (map[NodeID]Protocol, *Report, error) {
	return e.ResumeSnapshot(g.Compile(), f, ck)
}

// ResumeSnapshot continues a run frozen at a round barrier: the factory
// rebuilds the protocol instances (each must implement StateCodec), the
// checkpoint restores their states, the report counters and the pending
// delivery slab, and the run proceeds to quiescence. The resumed run's
// Report, delivery trace and final protocol states are identical to the
// uninterrupted run's.
func (e *EventEngine) ResumeSnapshot(c *graph.CSR, f Factory, ck *Checkpoint) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	if !isUnitDelay(e.Delay) {
		return nil, nil, errCheckpointTier
	}
	if err := ck.validateAgainst(c); err != nil {
		return nil, nil, err
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	dense, rep, err := e.runRoundsFrom(c, f, maxMsgs, start, ck)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

var _ SnapshotEngine = (*EventEngine)(nil)
var _ DenseSnapshotEngine = (*EventEngine)(nil)
var _ ResumableEngine = (*EventEngine)(nil)
