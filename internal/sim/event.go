package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"mdegst/internal/graph"
)

// DelayFn draws the propagation delay for one message on the directed link
// from -> to. The paper's model bounds every delay by one time unit, so
// delays must lie in (0, 1].
type DelayFn func(rng *rand.Rand, from, to NodeID) float64

// UnitDelay assigns every message exactly one time unit — the assumption
// under which the paper's time complexity is stated.
func UnitDelay(*rand.Rand, NodeID, NodeID) float64 { return 1 }

// UniformDelay returns delays uniform in (lo, 1]. Use a small lo (for
// example 0.05) as an asynchrony adversary.
func UniformDelay(lo float64) DelayFn {
	if lo < 0 || lo >= 1 {
		panic(fmt.Sprintf("sim: UniformDelay lower bound %v out of range [0,1)", lo))
	}
	return func(rng *rand.Rand, _, _ NodeID) float64 {
		return 1 - rng.Float64()*(1-lo)
	}
}

// DefaultMaxMessages caps runaway protocols in the event engine.
const DefaultMaxMessages = 200_000_000

// EventEngine is a deterministic discrete-event simulator: events are
// delivered in (time, sequence) order, delays come from a seeded RNG, and
// the whole run is reproducible.
type EventEngine struct {
	// Seed initialises the delay RNG.
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order even under random delays
	// (delivery times are clamped to be non-decreasing per directed link).
	// The paper's channels are FIFO; disable to stress protocols under
	// reordering.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages); it converts protocol livelock into an error.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note.
	Trace func(TraceEvent)
}

type event struct {
	t     float64
	seq   int64
	depth int64
	from  NodeID
	to    NodeID
	msg   Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type eventCtx struct {
	eng       *eventRun
	id        NodeID
	neighbors []NodeID
	// now/depth of the message currently being processed at this node.
	now   float64
	depth int64
}

func (c *eventCtx) ID() NodeID          { return c.id }
func (c *eventCtx) Neighbors() []NodeID { return c.neighbors }

func (c *eventCtx) Send(to NodeID, m Message) {
	checkNeighbor(c.neighbors, c.id, to)
	c.eng.send(c, to, m)
}

func (c *eventCtx) Logf(format string, args ...any) {
	if c.eng.trace != nil {
		c.eng.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

type eventRun struct {
	rng      *rand.Rand
	delay    DelayFn
	fifo     bool
	maxMsgs  int64
	trace    func(TraceEvent)
	queue    eventHeap
	seq      int64
	sent     int64
	lastLink map[[2]NodeID]float64
	report   *Report
}

func (er *eventRun) send(c *eventCtx, to NodeID, m Message) {
	er.sent++
	t := c.now + er.delay(er.rng, c.id, to)
	if er.fifo {
		link := [2]NodeID{c.id, to}
		if last := er.lastLink[link]; t < last {
			t = last
		}
		er.lastLink[link] = t
	}
	er.seq++
	heap.Push(&er.queue, event{t: t, seq: er.seq, depth: c.depth + 1, from: c.id, to: to, msg: m})
}

// Run executes the protocol to quiescence. Protocol panics are converted to
// errors so a buggy node cannot take down the harness.
func (e *EventEngine) Run(g *graph.Graph, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = fmt.Errorf("sim: protocol panic: %v", p)
		}
	}()
	start := time.Now()
	delay := e.Delay
	if delay == nil {
		delay = UnitDelay
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	er := &eventRun{
		rng:      rand.New(rand.NewSource(e.Seed)),
		delay:    delay,
		fifo:     e.FIFO,
		maxMsgs:  maxMsgs,
		trace:    e.Trace,
		lastLink: make(map[[2]NodeID]float64),
		report:   newReport(),
	}
	nodes := g.Nodes()
	protos = make(map[NodeID]Protocol, len(nodes))
	ctxs := make(map[NodeID]*eventCtx, len(nodes))
	for _, v := range nodes {
		ctx := &eventCtx{eng: er, id: v, neighbors: g.Neighbors(v)}
		ctxs[v] = ctx
		protos[v] = f(v, ctx.neighbors)
	}
	// All nodes start independently; Init runs at time zero in ID order.
	for _, v := range nodes {
		protos[v].Init(ctxs[v])
	}
	for er.queue.Len() > 0 {
		ev := heap.Pop(&er.queue).(event)
		if er.report.Messages >= maxMsgs {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		ctx := ctxs[ev.to]
		ctx.now = ev.t
		ctx.depth = ev.depth
		er.report.record(ev.from, ev.msg, ev.depth)
		if ev.t > er.report.VirtualTime {
			er.report.VirtualTime = ev.t
		}
		if er.trace != nil {
			er.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
		}
		protos[ev.to].Recv(ctx, ev.from, ev.msg)
	}
	er.report.Wall = time.Since(start)
	return protos, er.report, nil
}

var _ Engine = (*EventEngine)(nil)
