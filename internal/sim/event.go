package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mdegst/internal/graph"
)

// DelayFn draws the propagation delay for one message on the directed link
// from -> to. The paper's model bounds every delay by one time unit, so
// delays must lie in (0, 1].
type DelayFn func(rng *rand.Rand, from, to NodeID) float64

// UnitDelay assigns every message exactly one time unit — the assumption
// under which the paper's time complexity is stated.
func UnitDelay(*rand.Rand, NodeID, NodeID) float64 { return 1 }

// UniformDelay returns delays uniform in (lo, 1]. Use a small lo (for
// example 0.05) as an asynchrony adversary.
func UniformDelay(lo float64) DelayFn {
	if lo < 0 || lo >= 1 {
		panic(fmt.Sprintf("sim: UniformDelay lower bound %v out of range [0,1)", lo))
	}
	return func(rng *rand.Rand, _, _ NodeID) float64 {
		return 1 - rng.Float64()*(1-lo)
	}
}

// DefaultMaxMessages caps runaway protocols in the event engine.
const DefaultMaxMessages = 200_000_000

// EventEngine is a deterministic discrete-event simulator: events are
// delivered in (time, sequence) order, delays come from a seeded RNG, and
// the whole run is reproducible.
//
// The engine is the hot path of the experiment harness, so it avoids
// per-message work beyond the heap operation itself: the event queue is a
// specialised binary heap of event values (no container/heap interface
// boxing), every per-node structure — contexts, protocol instances, FIFO
// clamp intervals — lives in one slice addressed by the CSR snapshot's
// dense index (no map[NodeID] anywhere on the delivery path), and the
// backing arrays are pooled and reused across runs. Each event carries its
// destination's dense index, so a delivery is two slice loads.
// ReferenceEngine keeps the straightforward implementation as the
// delivery-order oracle; the two are checked equivalent by tests and
// compared by the allocation benchmarks.
type EventEngine struct {
	// Seed initialises the delay RNG.
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order even under random delays
	// (delivery times are clamped to be non-decreasing per directed link).
	// The paper's channels are FIFO; disable to stress protocols under
	// reordering.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages); it converts protocol livelock into an error.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note. The
	// Message in a TraceEvent is only valid during the callback: protocols
	// may recycle message values after processing.
	Trace func(TraceEvent)
}

type event struct {
	t       float64
	seq     int64
	depth   int64
	from    NodeID
	to      NodeID
	toDense int32
	msg     Message
}

func (e event) before(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events ordered by (time, sequence).
// It is hand-rolled instead of container/heap because the interface-based
// Push/Pop box every event into an `any`, costing one heap allocation per
// message — the single largest allocation source in the seed profile.
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the Message reference so the pooled array does not pin it
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].before(h[s]) {
			s = l
		}
		if r < n && h[r].before(h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	*q = h
	return top
}

type eventCtx struct {
	eng *eventRun
	id  NodeID
	// neighbors and nbrDense are the snapshot's neighbour views for this
	// node (NodeIDs for the Protocol contract, dense indices for event
	// addressing), same position order.
	neighbors []NodeID
	nbrDense  []int32
	// clamp holds, per neighbour (same index as neighbors), the latest
	// delivery time already scheduled on the directed link id->neighbor.
	// FIFO order is enforced by clamping new delivery times to it.
	clamp []float64
	// now/depth of the message currently being processed at this node.
	now   float64
	depth int64
}

func (c *eventCtx) ID() NodeID          { return c.id }
func (c *eventCtx) Neighbors() []NodeID { return c.neighbors }

func (c *eventCtx) Send(to NodeID, m Message) {
	i := neighborIndex(c.neighbors, to)
	if i < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	c.eng.send(c, i, to, m)
}

func (c *eventCtx) Logf(format string, args ...any) {
	if c.eng.trace != nil {
		c.eng.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// neighborIndex returns the position of `to` in the ascending neighbour list,
// or -1. Linear scan: degrees are small and the scan doubles as the
// point-to-point model check that used to be a separate pass.
func neighborIndex(neighbors []NodeID, to NodeID) int {
	for i, n := range neighbors {
		if n == to {
			return i
		}
	}
	return -1
}

type eventRun struct {
	rng    *rand.Rand
	delay  DelayFn
	fifo   bool
	trace  func(TraceEvent)
	queue  eventQueue
	seq    int64
	report *Report
}

func (er *eventRun) send(c *eventCtx, ni int, to NodeID, m Message) {
	t := c.now + er.delay(er.rng, c.id, to)
	if er.fifo {
		if last := c.clamp[ni]; t < last {
			t = last
		}
		c.clamp[ni] = t
	}
	er.seq++
	er.queue.push(event{t: t, seq: er.seq, depth: c.depth + 1, from: c.id, to: to, toDense: c.nbrDense[ni], msg: m})
}

// eventScratch is the reusable per-run state: the queue's backing array, the
// node contexts, the protocol instances and the FIFO clamp backing array —
// all dense-index addressed. Pooled so repeated runs — the parallel
// experiment harness executes thousands — allocate it once per worker
// instead of once per run.
type eventScratch struct {
	queue  eventQueue
	ctxs   []eventCtx
	protos []Protocol
	clamp  []float64
}

var scratchPool = sync.Pool{New: func() any { return new(eventScratch) }}

func (s *eventScratch) reset(n, halfEdges int) {
	if cap(s.ctxs) < n {
		s.ctxs = make([]eventCtx, n)
	}
	s.ctxs = s.ctxs[:n]
	if cap(s.protos) < n {
		s.protos = make([]Protocol, n)
	}
	s.protos = s.protos[:n]
	if cap(s.clamp) < halfEdges {
		s.clamp = make([]float64, halfEdges)
	}
	s.clamp = s.clamp[:halfEdges]
	clear(s.clamp)
	s.queue = s.queue[:0]
}

func (s *eventScratch) release() {
	// Zero any events left in the queue backing (abnormal exits), the
	// contexts and the protocol slots so pooled memory does not pin
	// messages, protocol state or the snapshot's neighbour arrays.
	q := s.queue[:cap(s.queue)]
	for i := range q {
		q[i] = event{}
	}
	s.queue = s.queue[:0]
	for i := range s.ctxs {
		s.ctxs[i] = eventCtx{}
	}
	clear(s.protos)
	scratchPool.Put(s)
}

// Run compiles g and executes the protocol to quiescence over the snapshot.
func (e *EventEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence over a compiled snapshot.
// Protocol panics are converted to errors so a buggy node cannot take down
// the harness.
func (e *EventEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = fmt.Errorf("sim: protocol panic: %v", p)
		}
	}()
	start := time.Now()
	delay := e.Delay
	if delay == nil {
		delay = UnitDelay
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	er := &eventRun{
		rng:    rand.New(rand.NewSource(e.Seed)),
		delay:  delay,
		fifo:   e.FIFO,
		trace:  e.Trace,
		report: newReport(),
	}
	n := c.N()
	ids := c.Index().IDs()
	scratch := scratchPool.Get().(*eventScratch)
	defer scratch.release()
	scratch.reset(n, c.HalfEdges())
	er.queue = scratch.queue
	defer func() { scratch.queue = er.queue }()

	for i := 0; i < n; i++ {
		di := int32(i)
		lo, hi := c.HalfEdge(di, 0), c.HalfEdge(di, c.Degree(di))
		scratch.ctxs[i] = eventCtx{
			eng:       er,
			id:        ids[i],
			neighbors: c.NeighborIDs(di),
			nbrDense:  c.Neighbors(di),
			clamp:     scratch.clamp[lo:hi],
		}
		scratch.protos[i] = f(ids[i], scratch.ctxs[i].neighbors)
	}
	// All nodes start independently; Init runs at time zero in ID order.
	for i := 0; i < n; i++ {
		scratch.protos[i].Init(&scratch.ctxs[i])
	}
	for len(er.queue) > 0 {
		ev := er.queue.pop()
		if er.report.Messages >= maxMsgs {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		ctx := &scratch.ctxs[ev.toDense]
		ctx.now = ev.t
		ctx.depth = ev.depth
		er.report.record(ev.from, ev.msg, ev.depth)
		if ev.t > er.report.VirtualTime {
			er.report.VirtualTime = ev.t
		}
		if er.trace != nil {
			er.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
		}
		scratch.protos[ev.toDense].Recv(ctx, ev.from, ev.msg)
	}
	er.report.finalize()
	er.report.Wall = time.Since(start)
	protos = make(map[NodeID]Protocol, n)
	for i, p := range scratch.protos {
		protos[ids[i]] = p
	}
	return protos, er.report, nil
}

var _ SnapshotEngine = (*EventEngine)(nil)
