package sim

import (
	"encoding/binary"
	"fmt"
)

// The flat wire-format message plane (DESIGN.md §8). The paper accounts
// complexity in O(log n)-bit message words — every message is an opcode
// plus a handful of identities/integers — so the runtime represents
// messages exactly that way: a WireMsg is an opcode byte pair and up to
// MaxPayloadWords int64 payload words, a plain value struct with no
// pointers. Engines carry []WireMsg slabs instead of interface slices
// (no boxing allocation per send, no dynamic dispatch per delivery, and
// outbox merges are pure memmoves), and the in-flight state of a run is
// trivially serialisable, which is what checkpoint/resume and the binary
// trace form are built on.
//
// Each protocol package registers its message vocabulary once (package
// init) as a Schema of OpSpecs; the registry hands out process-global
// opcode values and keeps the kind-string and word-accounting tables the
// Report and the trace renderers key off. Opcode numbers are process-local
// (they depend on package init order) — everything that leaves the process
// (checkpoints, binary traces) stores an explicit opcode table of kind
// strings and translates on the way back in, so files survive rebuilds.

// Op identifies one message type in the process-global wire-schema
// registry. The zero value OpNone is reserved: a zero WireMsg means "no
// message" (for example a trace event that is a Logf note).
type Op uint16

// OpNone is the reserved null opcode.
const OpNone Op = 0

// MaxPayloadWords is the largest payload a WireMsg can carry. The paper
// claims at most four numbers or identities per message; our one aggregate
// (mdst.bfsback) carries eight (see DESIGN.md deviation notes).
const MaxPayloadWords = 8

// WireMsg is a message in wire form: an opcode and Nw payload words. It is
// a value type with no pointers — copying it is the only thing engines ever
// do with it, and a slab of them serialises byte for byte.
type WireMsg struct {
	Op Op
	Nw uint8 // payload words used (<= MaxPayloadWords)
	W  [MaxPayloadWords]int64
}

// Kind returns the registered kind string of the message's opcode, the key
// used in Report breakdowns ("mdst.start", "st.echo", ...).
func (m WireMsg) Kind() string { return opKind(m.Op) }

// Words reports the message size in abstract O(log n)-bit machine words:
// the opcode/kind tag plus the payload words — the paper's bit-complexity
// accounting, derived from the record instead of hand-written per type.
func (m WireMsg) Words() int { return 1 + int(m.Nw) }

// MsgRound returns the algorithm round the message belongs to: payload
// word 0 for opcodes registered as Rounded, else 0 (unrounded).
func (m WireMsg) MsgRound() int {
	if info := opInfo(m.Op); info != nil && info.rounded {
		return int(m.W[0])
	}
	return 0
}

// IsZero reports whether m is the null message (OpNone, no payload).
func (m WireMsg) IsZero() bool { return m.Op == OpNone }

func (m WireMsg) String() string {
	return fmt.Sprintf("%s(%d words)", m.Kind(), m.Words())
}

// Msg builds a wire record carrying the given payload words — the one
// obvious constructor for protocol packages' fixed-shape messages. The
// variadic slice does not escape, so calls compile to stack writes.
func Msg(op Op, words ...int64) WireMsg {
	if len(words) > MaxPayloadWords {
		panic(fmt.Sprintf("sim: %s record with %d payload words (max %d)", opKind(op), len(words), MaxPayloadWords))
	}
	m := WireMsg{Op: op, Nw: uint8(len(words))}
	copy(m.W[:], words)
	return m
}

// B2W encodes a flag as a payload word.
func B2W(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// OpSpec declares one message type of a protocol's wire schema.
type OpSpec struct {
	// Kind is the message's kind string, globally unique across schemas
	// (Register panics on a collision).
	Kind string
	// MinPayload and MaxPayload bound the payload word count. Fixed-size
	// messages have MinPayload == MaxPayload; the only variable-size
	// message in the tree is the mdst BFSBack aggregate.
	MinPayload, MaxPayload int
	// Rounded marks payload word 0 as the algorithm round, which the
	// Report uses for its per-round breakdowns.
	Rounded bool
}

// Schema is one protocol's registered message vocabulary. Its opcodes are
// the contiguous range [base, base+len(specs)).
type Schema struct {
	proto string
	base  Op
	specs []OpSpec
}

// Proto returns the owning protocol's registry name.
func (s *Schema) Proto() string { return s.proto }

// Len returns the number of opcodes in the schema.
func (s *Schema) Len() int { return len(s.specs) }

// Op returns the process-global opcode of the schema's i-th spec.
func (s *Schema) Op(i int) Op { return s.base + Op(i) }

// Spec returns the schema's i-th spec.
func (s *Schema) Spec(i int) OpSpec { return s.specs[i] }

// wireInfo is the registry's per-opcode record, the hot-path lookup behind
// Kind/MsgRound and report accounting.
type wireInfo struct {
	kind       string
	proto      string
	minW, maxW uint8
	rounded    bool
}

// The registry. Registration happens exclusively from package init
// functions (which the runtime serialises), and all reads happen after
// init completes, so no locking is needed — mutating it later would be a
// data race by construction and Register documents that contract.
var wireReg = struct {
	infos   []wireInfo // indexed by Op; slot 0 is OpNone
	kinds   map[string]Op
	schemas []*Schema
}{
	infos: []wireInfo{{kind: "(none)"}},
	kinds: make(map[string]Op),
}

// Register records a protocol's message vocabulary and assigns its opcode
// range. It must be called from package init (or test setup before any
// engine runs); kind strings are global keys and must be unique.
func Register(proto string, specs ...OpSpec) *Schema {
	if len(specs) == 0 {
		panic(fmt.Sprintf("sim: schema %q registers no opcodes", proto))
	}
	s := &Schema{proto: proto, base: Op(len(wireReg.infos)), specs: specs}
	for _, sp := range specs {
		if sp.Kind == "" {
			panic(fmt.Sprintf("sim: schema %q has an opcode without a kind", proto))
		}
		if _, dup := wireReg.kinds[sp.Kind]; dup {
			panic(fmt.Sprintf("sim: message kind %q registered twice", sp.Kind))
		}
		if sp.MinPayload < 0 || sp.MaxPayload > MaxPayloadWords || sp.MinPayload > sp.MaxPayload {
			panic(fmt.Sprintf("sim: kind %q payload bounds [%d,%d] invalid", sp.Kind, sp.MinPayload, sp.MaxPayload))
		}
		if sp.Rounded && sp.MinPayload < 1 {
			panic(fmt.Sprintf("sim: rounded kind %q needs payload word 0 for the round", sp.Kind))
		}
		wireReg.kinds[sp.Kind] = Op(len(wireReg.infos))
		wireReg.infos = append(wireReg.infos, wireInfo{
			kind:    sp.Kind,
			proto:   proto,
			minW:    uint8(sp.MinPayload),
			maxW:    uint8(sp.MaxPayload),
			rounded: sp.Rounded,
		})
	}
	wireReg.schemas = append(wireReg.schemas, s)
	return s
}

// Schemas returns all registered schemas (audit/tooling surface).
func Schemas() []*Schema { return wireReg.schemas }

// OpByKind resolves a kind string to its opcode.
func OpByKind(kind string) (Op, bool) {
	op, ok := wireReg.kinds[kind]
	return op, ok
}

// NumOps returns the size of the opcode space including OpNone.
func NumOps() int { return len(wireReg.infos) }

func opInfo(op Op) *wireInfo {
	if int(op) >= len(wireReg.infos) {
		return nil
	}
	return &wireReg.infos[op]
}

func opKind(op Op) string {
	if info := opInfo(op); info != nil {
		return info.kind
	}
	return fmt.Sprintf("op(%d)", op)
}

// WireError is the typed error for malformed wire records: unknown
// opcodes, payload counts outside the schema bounds, or truncated input.
type WireError struct {
	Op     Op
	Kind   string // empty when the opcode is unknown
	Reason string
}

func (e *WireError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("sim: wire record %s (op %d): %s", e.Kind, e.Op, e.Reason)
	}
	return fmt.Sprintf("sim: wire record op %d: %s", e.Op, e.Reason)
}

// Validate checks m against its registered schema: known opcode, payload
// count inside the declared bounds. Engines trust protocol constructors
// and do not validate per send; decoders of external bytes (checkpoints,
// binary traces) do.
func (m WireMsg) Validate() error {
	info := opInfo(m.Op)
	if m.Op == OpNone || info == nil {
		return &WireError{Op: m.Op, Reason: "unknown opcode"}
	}
	if m.Nw < info.minW || m.Nw > info.maxW {
		return &WireError{Op: m.Op, Kind: info.kind,
			Reason: fmt.Sprintf("payload %d words outside schema bounds [%d,%d]", m.Nw, info.minW, info.maxW)}
	}
	return nil
}

// --- binary codec -------------------------------------------------------
//
// The byte form of one wire record, shared by the binary trace and the
// checkpoint file: uvarint opcode, uvarint payload count, then the payload
// words as zigzag varints (payloads are identities, degrees and counters —
// small — so varints beat fixed 8-byte words by ~5x on real traffic).
// Opcode translation is the caller's concern: files carry file-local
// opcode tables and pass translation functions.

// appendUvarint/appendVarint are binary.AppendUvarint/AppendVarint; named
// locally so the codec reads as one vocabulary.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// AppendWire appends m's byte form to b. enc translates the process-local
// opcode to the file-local one (nil means identity).
func AppendWire(b []byte, m WireMsg, enc func(Op) uint64) []byte {
	fileOp := uint64(m.Op)
	if enc != nil {
		fileOp = enc(m.Op)
	}
	b = appendUvarint(b, fileOp)
	b = appendUvarint(b, uint64(m.Nw))
	for i := 0; i < int(m.Nw); i++ {
		b = appendVarint(b, m.W[i])
	}
	return b
}

// DecodeWire decodes one wire record from b, returning the message and the
// bytes consumed. dec translates a file-local opcode back to the registry
// (nil means identity plus a registry lookup). Malformed input — truncated
// bytes, unknown opcodes, payload counts over MaxPayloadWords or outside
// the schema bounds — returns a *WireError, never panics.
func DecodeWire(b []byte, dec func(uint64) (Op, error)) (WireMsg, int, error) {
	var m WireMsg
	fileOp, n := binary.Uvarint(b)
	if n <= 0 {
		return m, 0, &WireError{Reason: "truncated opcode"}
	}
	at := n
	if dec != nil {
		op, err := dec(fileOp)
		if err != nil {
			return m, 0, err
		}
		m.Op = op
	} else {
		if fileOp == 0 || fileOp >= uint64(len(wireReg.infos)) {
			return m, 0, &WireError{Op: Op(fileOp), Reason: "unknown opcode"}
		}
		m.Op = Op(fileOp)
	}
	nw, n := binary.Uvarint(b[at:])
	if n <= 0 {
		return m, 0, &WireError{Op: m.Op, Kind: opKind(m.Op), Reason: "truncated payload count"}
	}
	at += n
	if nw > MaxPayloadWords {
		return m, 0, &WireError{Op: m.Op, Kind: opKind(m.Op),
			Reason: fmt.Sprintf("payload count %d exceeds MaxPayloadWords", nw)}
	}
	m.Nw = uint8(nw)
	for i := 0; i < int(nw); i++ {
		w, n := binary.Varint(b[at:])
		if n <= 0 {
			return m, 0, &WireError{Op: m.Op, Kind: opKind(m.Op), Reason: "truncated payload word"}
		}
		m.W[i] = w
		at += n
	}
	if err := m.Validate(); err != nil {
		return m, 0, err
	}
	return m, at, nil
}
