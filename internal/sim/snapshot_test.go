package sim

import (
	"sync"
	"testing"

	"mdegst/internal/graph"
)

// TestSharedSnapshotConcurrentRuns pins the sharing contract of the
// dense-index core: one compiled snapshot backing many simultaneous engine
// runs (the experiment harness does exactly this) must behave like private
// per-run graphs. Run under -race this also proves the CSR is read-only on
// every engine path.
func TestSharedSnapshotConcurrentRuns(t *testing.T) {
	g := graph.Gnm(64, 256, 9)
	c := g.Compile()

	want, wantRep, err := (&EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: 5}).RunSnapshot(c, tokenFactory(40))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := &EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: 5}
			protos, rep, err := eng.RunSnapshot(c, tokenFactory(40))
			if err != nil {
				errs[w] = err
				return
			}
			if rep.Messages != wantRep.Messages || rep.VirtualTime != wantRep.VirtualTime {
				t.Errorf("worker %d: report diverged: %d msgs vs %d", w, rep.Messages, wantRep.Messages)
			}
			for v, p := range protos {
				if p.(*tokenNode).seen != want[v].(*tokenNode).seen {
					t.Errorf("worker %d: node %d state diverged", w, v)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The async engine shares the same snapshot concurrently with the event
	// engine runs above having finished; interleave a few runs for -race.
	for i := 0; i < 3; i++ {
		if _, _, err := (&AsyncEngine{}).RunSnapshot(c, tokenFactory(20)); err != nil {
			t.Fatal(err)
		}
	}
	// And RunCompiled dispatches to the snapshot path for engines that
	// support it.
	if _, rep, err := RunCompiled(&EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: 5}, c, tokenFactory(40)); err != nil || rep.Messages != wantRep.Messages {
		t.Fatalf("RunCompiled diverged: %v, %v", rep, err)
	}
}
