package sim

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// CheckpointDir is the durable CheckpointSink behind periodic checkpointing
// (DESIGN.md §11): one directory holding the last few committed recovery
// points of a run, each a complete §8 checkpoint file named by its round
// barrier. Commits are atomic — the file is written to a temporary name in
// the same directory, synced, then renamed — so a crash mid-commit leaves
// either the previous set of recovery points or the new one, never a
// truncated file, and Latest can always be trusted by a restarting
// supervisor. Retention prunes the oldest files beyond Keep after each
// successful commit; pruning failures are ignored (stale extra recovery
// points are harmless).
type CheckpointDir struct {
	// Dir is the directory; it must exist.
	Dir string
	// Keep retains the newest Keep committed files (0 keeps all).
	Keep int
}

const (
	ckptFilePrefix = "ckpt-"
	ckptFileSuffix = ".mdck"
)

// CheckpointFileName is the canonical file name of the recovery point
// committed at a round barrier.
func CheckpointFileName(round int64) string {
	return fmt.Sprintf("%s%010d%s", ckptFilePrefix, round, ckptFileSuffix)
}

// Commit atomically stores the checkpoint committed at round.
func (d *CheckpointDir) Commit(round int64, write func(io.Writer) error) error {
	final := filepath.Join(d.Dir, CheckpointFileName(round))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	d.prune()
	return nil
}

// Rounds lists the committed recovery points' round barriers, ascending.
// Files that merely resemble checkpoints (wrong name shape, leftover .tmp)
// are ignored.
func (d *CheckpointDir) Rounds() ([]int64, error) {
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	var rounds []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptFilePrefix) || !strings.HasSuffix(name, ckptFileSuffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, ckptFilePrefix), ckptFileSuffix)
		r, err := strconv.ParseInt(mid, 10, 64)
		if err != nil {
			continue
		}
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return rounds, nil
}

// Latest returns the newest committed recovery point's path and round, or
// ok=false when the directory holds none.
func (d *CheckpointDir) Latest() (path string, round int64, ok bool, err error) {
	rounds, err := d.Rounds()
	if err != nil || len(rounds) == 0 {
		return "", 0, false, err
	}
	r := rounds[len(rounds)-1]
	return filepath.Join(d.Dir, CheckpointFileName(r)), r, true, nil
}

// prune removes the oldest committed files beyond Keep.
func (d *CheckpointDir) prune() {
	if d.Keep <= 0 {
		return
	}
	rounds, err := d.Rounds()
	if err != nil {
		return
	}
	for len(rounds) > d.Keep {
		os.Remove(filepath.Join(d.Dir, CheckpointFileName(rounds[0])))
		rounds = rounds[1:]
	}
}
