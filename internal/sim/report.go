package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report aggregates the complexity measures of one protocol execution.
type Report struct {
	// Messages is the total number of messages delivered.
	Messages int64
	// ByKind counts delivered messages per message kind.
	ByKind map[string]int64
	// ByRound counts delivered messages per algorithm round for messages
	// implementing Rounder; round 0 collects unrounded messages.
	ByRound map[int]int64
	// ByKindRound refines ByKind per round, keyed "kind/round".
	ByKindRound map[string]int64
	// Words is the total message volume in O(log n)-bit words.
	Words int64
	// MaxWords is the size of the largest single message observed; the
	// paper claims every message fits in 4 identities.
	MaxWords int
	// CausalDepth is the length of the longest causal message chain — the
	// standard asynchronous time complexity (every delay at most one unit).
	CausalDepth int64
	// VirtualTime is the completion time of the discrete-event engine's
	// clock (equals CausalDepth under UnitDelay); zero for AsyncEngine.
	VirtualTime float64
	// SentBy counts messages sent per node.
	SentBy map[NodeID]int64
	// Shards is the number of state shards whose accounting this report
	// merges: 1 for the ordinary engines, N for an N-shard ShardedEngine
	// run. It describes the runtime configuration, not the execution —
	// all other fields are identical at any shard count.
	Shards int
	// Wall is the host wall-clock duration of the run.
	Wall time.Duration

	// kindRound accumulates per-(opcode, round) counts during the run
	// without touching a kind string per message; finalize materialises the
	// public ByKind, ByRound and ByKindRound maps from it once at the end,
	// rendering opcodes back to their registered kind strings.
	kindRound map[kindRoundKey]int64
	finalized bool

	// The recordFast accumulators, armed by adoptDenseSent on the round
	// engines' hot paths. sentDense counts sends by dense node index — one
	// array increment per message instead of a map op on a 64-bit key —
	// and (lastKey, lastCount) memoise the kindRound counter: deliveries
	// of one round overwhelmingly share the (opcode, round) key, so the
	// hot path bumps a scalar and touches the map only on key change.
	// syncHot folds both into the public accumulators; finalize,
	// MergeParallel and checkpoint capture all sync first.
	sentDense []int64
	sentIDs   []NodeID
	lastKey   kindRoundKey
	lastCount int64
}

// kindRoundKey is the allocation-free composite key of the hot-path
// counter: the wire opcode and the algorithm round.
type kindRoundKey struct {
	op    Op
	round int
}

// NewReport returns an empty report ready for Add.
func NewReport() *Report {
	return &Report{
		ByKind:      make(map[string]int64),
		ByRound:     make(map[int]int64),
		ByKindRound: make(map[string]int64),
		SentBy:      make(map[NodeID]int64),
		Shards:      1,
		kindRound:   make(map[kindRoundKey]int64),
	}
}

func newReport() *Report { return NewReport() }

// record accounts one delivery. It is the per-message hot path: two map
// increments on composite keys and a handful of scalar updates, no
// allocations, no interface dispatch — kind and round come straight off
// the wire record. Engines must call finalize before handing the report
// out.
func (r *Report) record(from NodeID, m WireMsg, depth int64) {
	r.Messages++
	r.kindRound[kindRoundKey{m.Op, m.MsgRound()}]++
	w := m.Words()
	r.Words += int64(w)
	if w > r.MaxWords {
		r.MaxWords = w
	}
	if depth > r.CausalDepth {
		r.CausalDepth = depth
	}
	r.SentBy[from]++
}

// adoptDenseSent arms the dense recordFast accumulators. slab must be
// zeroed, sized len(ids), and remain owned by the caller (the engines
// lend pooled scratch slabs); syncHot detaches it again, so a report that
// escapes the run never pins pooled memory.
func (r *Report) adoptDenseSent(slab []int64, ids []NodeID) {
	r.sentDense = slab[:len(ids)]
	r.sentIDs = ids
}

// recordKR accounts one delivery with the map ops taken off the
// per-message path — all the scalar counters plus the memoised (opcode,
// round) counter, but no sender accounting. The sharded round path uses
// it directly: senders are counted at send time into the run's shared
// dense slab, where each shard touches only its own nodes' entries.
func (r *Report) recordKR(m WireMsg, depth int64) {
	r.Messages++
	if k := (kindRoundKey{m.Op, m.MsgRound()}); k == r.lastKey && r.lastCount > 0 {
		r.lastCount++
	} else {
		if r.lastCount > 0 {
			r.kindRound[r.lastKey] += r.lastCount
		}
		r.lastKey, r.lastCount = k, 1
	}
	w := m.Words()
	r.Words += int64(w)
	if w > r.MaxWords {
		r.MaxWords = w
	}
	if depth > r.CausalDepth {
		r.CausalDepth = depth
	}
}

// recordFast is recordKR plus sender accounting by dense index into the
// adopted slab. Callers must have armed adoptDenseSent.
func (r *Report) recordFast(fromDense int32, m WireMsg, depth int64) {
	r.recordKR(m, depth)
	r.sentDense[fromDense]++
}

// syncMemo flushes the kindRound memo into the map.
func (r *Report) syncMemo() {
	if r.lastCount > 0 {
		r.kindRound[r.lastKey] += r.lastCount
		r.lastKey, r.lastCount = kindRoundKey{}, 0
	}
}

// foldDense folds the dense send counts into the public SentBy map and
// detaches the borrowed slab.
func (r *Report) foldDense() {
	if r.sentDense == nil {
		return
	}
	for i, v := range r.sentDense {
		if v != 0 {
			r.SentBy[r.sentIDs[i]] += v
		}
	}
	r.sentDense, r.sentIDs = nil, nil
}

// syncHot folds every recordFast accumulator into the map-backed state,
// making kindRound and SentBy authoritative again.
func (r *Report) syncHot() {
	r.syncMemo()
	r.foldDense()
}

// finalize materialises the public breakdown maps from the hot-path
// accumulator: one string formatting per distinct (kind, round) pair instead
// of one per message. Idempotent; engines call it once per run.
func (r *Report) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true
	r.syncHot()
	for k, v := range r.kindRound {
		kind := opKind(k.op)
		r.ByKind[kind] += v
		r.ByRound[k.round] += v
		r.ByKindRound[fmt.Sprintf("%s/%d", kind, k.round)] += v
	}
}

// MergeParallel merges o into r as the accounting of a disjoint state
// shard of the *same* execution: counters and per-key breakdowns sum,
// while the time-like measures (CausalDepth, VirtualTime, Wall) take the
// maximum — parallel shards share one clock, they do not run back to back
// (that composition is Add). Shards sums, so merging N single-shard
// reports yields Shards == N. The sharded engine merges its per-shard
// reports with this before finalize; callers may equally merge finalized
// reports — the public breakdown maps are combined either way.
func (r *Report) MergeParallel(o *Report) {
	r.Messages += o.Messages
	if r.finalized || o.finalized {
		// Merge on the materialised public maps (finalize is idempotent;
		// o's hot-path accumulator is folded into its maps by it, so it
		// must not be merged a second time).
		r.finalize()
		o.finalize()
		for k, v := range o.ByKind {
			r.ByKind[k] += v
		}
		for k, v := range o.ByRound {
			r.ByRound[k] += v
		}
		for k, v := range o.ByKindRound {
			r.ByKindRound[k] += v
		}
	} else {
		o.syncMemo()
		// Same-run shard reports share one dense send slab shape: sum them
		// as vectors and defer the single map fold to finalize. A shape
		// mismatch (or a plain-map accumulator on either side) falls back
		// to folding o's slab and merging maps.
		if o.sentDense != nil {
			if r.sentDense != nil && len(r.sentDense) == len(o.sentDense) {
				for i, v := range o.sentDense {
					r.sentDense[i] += v
				}
				o.sentDense, o.sentIDs = nil, nil
			} else {
				o.foldDense()
			}
		}
		for k, v := range o.kindRound {
			r.kindRound[k] += v
		}
	}
	r.Words += o.Words
	if o.MaxWords > r.MaxWords {
		r.MaxWords = o.MaxWords
	}
	if o.CausalDepth > r.CausalDepth {
		r.CausalDepth = o.CausalDepth
	}
	if o.VirtualTime > r.VirtualTime {
		r.VirtualTime = o.VirtualTime
	}
	for k, v := range o.SentBy {
		r.SentBy[k] += v
	}
	r.Shards += o.Shards
	if o.Wall > r.Wall {
		r.Wall = o.Wall
	}
}

// Add merges o into r (used when composing pipeline phases). Causal measures
// are summed because the phases run back to back. Both reports are finalized
// first so the public breakdown maps are materialised before merging.
func (r *Report) Add(o *Report) {
	r.finalize()
	o.finalize()
	r.Messages += o.Messages
	for k, v := range o.ByKind {
		r.ByKind[k] += v
	}
	for k, v := range o.ByRound {
		r.ByRound[k] += v
	}
	for k, v := range o.ByKindRound {
		r.ByKindRound[k] += v
	}
	r.Words += o.Words
	if o.MaxWords > r.MaxWords {
		r.MaxWords = o.MaxWords
	}
	r.CausalDepth += o.CausalDepth
	r.VirtualTime += o.VirtualTime
	for k, v := range o.SentBy {
		r.SentBy[k] += v
	}
	if o.Shards > r.Shards {
		r.Shards = o.Shards
	}
	r.Wall += o.Wall
}

// Rounds returns the largest round number that carried messages.
func (r *Report) Rounds() int {
	r.finalize()
	max := 0
	for round := range r.ByRound {
		if round > max {
			max = round
		}
	}
	return max
}

// MaxSentByNode returns the largest per-node send count (hot-spot measure).
func (r *Report) MaxSentByNode() int64 {
	var max int64
	for _, v := range r.SentBy {
		if v > max {
			max = v
		}
	}
	return max
}

// String renders a compact multi-line summary.
func (r *Report) String() string {
	r.finalize()
	var b strings.Builder
	fmt.Fprintf(&b, "messages=%d words=%d maxWords=%d causalDepth=%d virtualTime=%.1f rounds=%d\n",
		r.Messages, r.Words, r.MaxWords, r.CausalDepth, r.VirtualTime, r.Rounds())
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, r.ByKind[k])
	}
	return b.String()
}
