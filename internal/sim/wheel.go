package sim

import (
	"math/bits"
	"slices"
	"sort"
)

// The calendar (bucket) queue behind EventEngine's wheel path. The paper's
// model bounds every propagation delay by one time unit, so at any moment all
// pending deliveries lie in the half-open window (now, now+1]: a rotating
// ring of fixed-width time buckets covers the whole future, and push/pop
// become amortised O(1) instead of the O(log m) a binary heap pays per
// message. The (time, sequence) delivery order is preserved exactly — the
// wheel is delivery-trace-equivalent to ReferenceEngine's container/heap,
// which the differential tests assert event by event.
//
// Geometry: wheelSpan buckets of width 1/wheelSpan cover one time unit, so a
// maximal delay of exactly 1 lands wheelSpan buckets ahead of the current
// one; the ring is twice that (a power of two, so slot arithmetic is a mask)
// and slots within the live window never collide. A bitmap over the ring
// slots lets pop skip runs of empty buckets 64 at a time, which keeps
// sparse schedules (one event per time unit) from paying a full ring scan
// per delivery.
//
// Ordering: bucket index floor(t*wheelSpan) is monotone in t, so buckets
// partition the pending set into disjoint time ranges. Future buckets are
// unsorted append targets; when a bucket becomes current it is sorted once
// by (time, sequence). A send can still land in the current bucket (delay
// smaller than the bucket width), in which case it is insertion-sorted into
// the undrained tail — its time is strictly greater than every already
// delivered event, so the drained prefix is never disturbed.
const (
	wheelSpanPow = 8
	wheelSpan    = 1 << wheelSpanPow // buckets per time unit
	wheelRing    = wheelSpan * 2     // ring slots; > span so the live window never wraps onto itself
	wheelMask    = wheelRing - 1
	wheelWords   = wheelRing / 64 // occupancy bitmap words
)

type bucketQueue struct {
	buckets  [wheelRing][]event
	occupied [wheelWords]uint64 // bit per ring slot holding pending events
	cur      int64              // virtual index (floor(now*wheelSpan)) of the current bucket
	pos      int                // drain position within the sorted current bucket
	size     int
}

func (q *bucketQueue) empty() bool { return q.size == 0 }

// push schedules e. The engine validates delays into (0, 1] before calling,
// so e.t is at most one time unit past the event being processed and the
// target bucket is always inside the ring's live window.
func (q *bucketQueue) push(e event) {
	v := int64(e.t * wheelSpan)
	if v < q.cur {
		// Defensive: t >= now implies v >= cur (floor of a monotone map);
		// collapse any floating-point surprise into the current bucket
		// rather than losing the event behind the wheel.
		v = q.cur
	}
	slot := v & wheelMask
	b := q.buckets[slot]
	if v == q.cur {
		// The current bucket is sorted and partially drained: keep the
		// undrained tail sorted. e sorts after every drained event (its
		// time exceeds the last delivery), so i >= q.pos always.
		i := q.pos + sort.Search(len(b)-q.pos, func(k int) bool { return e.before(b[q.pos+k]) })
		b = append(b, event{})
		copy(b[i+1:], b[i:])
		b[i] = e
	} else {
		b = append(b, e)
	}
	q.buckets[slot] = b
	q.occupied[slot>>6] |= 1 << (slot & 63)
	q.size++
}

// peek returns the minimum (time, sequence) event without removing it,
// rotating past exhausted buckets and sorting the bucket that becomes
// current (the same positioning work pop would do). The caller must ensure
// the queue is non-empty.
func (q *bucketQueue) peek() event {
	slot := q.cur & wheelMask
	b := q.buckets[slot]
	for q.pos >= len(b) {
		// Current bucket exhausted: recycle its storage (every drained slot
		// was zeroed on the way out, so the backing array pins nothing) and
		// rotate to the next occupied bucket.
		q.buckets[slot] = b[:0]
		q.occupied[slot>>6] &^= 1 << (slot & 63)
		q.cur = q.nextOccupied(q.cur + 1)
		q.pos = 0
		slot = q.cur & wheelMask
		b = q.buckets[slot]
		sortEvents(b)
	}
	return b[q.pos]
}

// pop removes and returns the minimum (time, sequence) event. The caller
// must ensure the queue is non-empty. Events are flat wire records — no
// pointers — so drained slots need no zeroing.
func (q *bucketQueue) pop() event {
	e := q.peek()
	q.pos++
	q.size--
	return e
}

// nextOccupied returns the smallest virtual index >= v whose ring slot holds
// events, scanning the occupancy bitmap a word at a time. The queue is
// non-empty when called, and every pending event lies within wheelSpan
// buckets of the last delivery, so the scan terminates within one ring turn.
func (q *bucketQueue) nextOccupied(v int64) int64 {
	for {
		slot := v & wheelMask
		if w := q.occupied[slot>>6] >> (slot & 63); w != 0 {
			return v + int64(bits.TrailingZeros64(w))
		}
		v += 64 - (slot & 63) // jump to the next bitmap word boundary
	}
}

// reset drops any events left behind by an abnormal exit (protocol panic,
// livelock abort) and returns the wheel to its initial state, keeping the
// per-bucket backing arrays for reuse. Events are pointer-free records, so
// truncation suffices.
func (q *bucketQueue) reset() {
	if q.size > 0 || q.pos > 0 {
		for slot := range q.buckets {
			q.buckets[slot] = q.buckets[slot][:0]
		}
	}
	q.occupied = [wheelWords]uint64{}
	q.cur, q.pos, q.size = 0, 0, 0
}

// sortEvents establishes (time, sequence) order. Sequence numbers are
// unique, so the comparison is a total order and the (unstable) sort is
// deterministic.
func sortEvents(b []event) {
	slices.SortFunc(b, func(x, y event) int {
		if x.before(y) {
			return -1
		}
		if y.before(x) {
			return 1
		}
		return 0
	})
}
