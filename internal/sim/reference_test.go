package sim

import (
	"reflect"
	"testing"

	"mdegst/internal/graph"
)

// TestEventMatchesReference is the differential test behind the fast path:
// for identical seeds, EventEngine (specialised heap, pooled scratch,
// slice-indexed FIFO clamps) must deliver exactly the same schedule as
// ReferenceEngine (container/heap, map clamps), hence produce identical
// reports and identical protocol end states.
func TestEventMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ring":      graph.Ring(16),
		"gnp":       graph.Gnp(24, 0.3, 42),
		"gnm-dense": graph.Gnm(32, 128, 7),
	}
	configs := []struct {
		name  string
		delay DelayFn
		fifo  bool
		seed  int64
	}{
		{"unit-fifo", UnitDelay, true, 0},
		{"unit-nofifo", UnitDelay, false, 0},
		{"random-fifo", UniformDelay(0.05), true, 11},
		{"random-nofifo", UniformDelay(0.05), false, 11},
		// Unbounded-below delays can undershoot the wheel's bucket width,
		// forcing sorted inserts into the live bucket.
		{"tiny-fifo", UniformDelay(0), true, 23},
	}
	for gname, g := range graphs {
		for _, c := range configs {
			t.Run(gname+"/"+c.name, func(t *testing.T) {
				fast := &EventEngine{Delay: c.delay, FIFO: c.fifo, Seed: c.seed}
				ref := &ReferenceEngine{Delay: c.delay, FIFO: c.fifo, Seed: c.seed}
				fp, frep, err := fast.Run(g, tokenFactory(60))
				if err != nil {
					t.Fatal(err)
				}
				rp, rrep, err := ref.Run(g, tokenFactory(60))
				if err != nil {
					t.Fatal(err)
				}
				if frep.Messages != rrep.Messages || frep.Words != rrep.Words ||
					frep.CausalDepth != rrep.CausalDepth || frep.VirtualTime != rrep.VirtualTime {
					t.Errorf("report scalars differ:\nfast %+v\nref  %+v", frep, rrep)
				}
				if !reflect.DeepEqual(frep.ByKindRound, rrep.ByKindRound) {
					t.Errorf("ByKindRound differ: %v vs %v", frep.ByKindRound, rrep.ByKindRound)
				}
				if !reflect.DeepEqual(frep.SentBy, rrep.SentBy) {
					t.Errorf("SentBy differ: %v vs %v", frep.SentBy, rrep.SentBy)
				}
				for v, p := range fp {
					if got, want := p.(*tokenNode).seen, rp[v].(*tokenNode).seen; got != want {
						t.Errorf("node %d saw %d tokens on fast engine, %d on reference", v, got, want)
					}
				}
			})
		}
	}
}

// TestEventMatchesReferenceTrace compares full delivery traces, the
// strongest equivalence: same (time, from, to, kind) sequence event by event.
func TestEventMatchesReferenceTrace(t *testing.T) {
	g := graph.Gnp(20, 0.3, 3)
	type step struct {
		t        float64
		from, to NodeID
		kind     string
	}
	collect := func(eng Engine) []step {
		var steps []step
		switch e := eng.(type) {
		case *EventEngine:
			e.Trace = func(ev TraceEvent) {
				steps = append(steps, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()})
			}
		case *ReferenceEngine:
			e.Trace = func(ev TraceEvent) {
				steps = append(steps, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()})
			}
		}
		if _, _, err := eng.Run(g, tokenFactory(50)); err != nil {
			t.Fatal(err)
		}
		return steps
	}
	fast := collect(&EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: 21})
	ref := collect(&ReferenceEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: 21})
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("delivery traces diverge:\nfast %v\nref  %v", fast, ref)
	}
}

// TestCalendarQueueFIFOTraceGnm512 is the FIFO-clamp stress for the calendar
// queue at a scale where thousands of events share the wheel: a randomized
// flood over gnm-512 under UniformDelay(0.05) must match ReferenceEngine's
// delivery trace event for event, and every directed link must deliver at
// non-decreasing times (the clamp invariant the wheel's window bound relies
// on).
func TestCalendarQueueFIFOTraceGnm512(t *testing.T) {
	g := graph.Gnm(512, 1536, 17)
	type step struct {
		t        float64
		from, to NodeID
		kind     string
	}
	// chatter floods on Init and bounces every received message back until a
	// per-node budget runs out: many concurrent events share the wheel and
	// every link carries repeated traffic, so the FIFO clamp binds often.
	chatter := func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 12} }
	collect := func(mk func(func(TraceEvent)) Engine) []step {
		var steps []step
		eng := mk(func(ev TraceEvent) {
			steps = append(steps, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()})
		})
		if _, _, err := eng.Run(g, chatter); err != nil {
			t.Fatal(err)
		}
		return steps
	}
	for seed := int64(0); seed < 3; seed++ {
		fast := collect(func(tr func(TraceEvent)) Engine {
			return &EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: seed, Trace: tr}
		})
		ref := collect(func(tr func(TraceEvent)) Engine {
			return &ReferenceEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: seed, Trace: tr}
		})
		if len(fast) != len(ref) {
			t.Fatalf("seed %d: trace lengths diverge: %d vs %d", seed, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("seed %d: traces diverge at event %d: %+v vs %+v", seed, i, fast[i], ref[i])
			}
		}
		lastOnLink := make(map[[2]NodeID]float64)
		for i, s := range fast {
			link := [2]NodeID{s.from, s.to}
			if last, ok := lastOnLink[link]; ok && s.t < last {
				t.Fatalf("seed %d: FIFO violated on link %d->%d at event %d: %v after %v",
					seed, s.from, s.to, i, s.t, last)
			}
			lastOnLink[link] = s.t
		}
	}
}

// chatterNode floods its neighbourhood on Init and echoes each received
// message back to its sender while it has budget left.
type chatterNode struct{ budget int }

func (c *chatterNode) Init(ctx Context) {
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, tokenMsg(1))
	}
}

func (c *chatterNode) Recv(ctx Context, from NodeID, _ WireMsg) {
	if c.budget == 0 {
		return
	}
	c.budget--
	ctx.Send(from, tokenMsg(1))
}

// TestEventEngineScratchReuse runs the same workload repeatedly so the pooled
// scratch state is exercised: a stale FIFO clamp or a pinned queue slot from
// a previous run would break determinism or FIFO order here.
func TestEventEngineScratchReuse(t *testing.T) {
	g := graph.Gnp(24, 0.3, 42)
	var first *Report
	for i := 0; i < 5; i++ {
		eng := &EventEngine{Delay: UniformDelay(0.05), Seed: 99, FIFO: true}
		_, rep, err := eng.Run(g, tokenFactory(40))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.Messages != first.Messages || rep.VirtualTime != first.VirtualTime {
			t.Fatalf("run %d diverged after scratch reuse: %+v vs %+v", i, rep, first)
		}
	}
	// Interleave a differently-shaped graph to force scratch resizing.
	if _, _, err := (&EventEngine{}).Run(graph.Ring(100), tokenFactory(10)); err != nil {
		t.Fatal(err)
	}
	_, rep, err := (&EventEngine{Delay: UniformDelay(0.05), Seed: 99, FIFO: true}).Run(g, tokenFactory(40))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != first.Messages || rep.VirtualTime != first.VirtualTime {
		t.Fatalf("diverged after scratch resize: %+v vs %+v", rep, first)
	}
}
