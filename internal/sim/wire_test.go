package sim

import (
	"errors"
	"testing"
)

// TestRegistryInvariants pins the schema registry's contract: non-empty
// vocabularies, globally unique kinds, payload bounds inside the record,
// rounded ops with a word 0 to carry the round.
func TestRegistryInvariants(t *testing.T) {
	seen := map[string]string{}
	for _, s := range Schemas() {
		if s.Len() == 0 {
			t.Errorf("schema %q has no opcodes", s.Proto())
		}
		for i := 0; i < s.Len(); i++ {
			sp := s.Spec(i)
			op := s.Op(i)
			if prev, dup := seen[sp.Kind]; dup {
				t.Errorf("kind %q registered by both %q and %q", sp.Kind, prev, s.Proto())
			}
			seen[sp.Kind] = s.Proto()
			if got, ok := OpByKind(sp.Kind); !ok || got != op {
				t.Errorf("OpByKind(%q) = %v,%v, want %v", sp.Kind, got, ok, op)
			}
			if sp.MinPayload < 0 || sp.MaxPayload > MaxPayloadWords || sp.MinPayload > sp.MaxPayload {
				t.Errorf("kind %q payload bounds [%d,%d] invalid", sp.Kind, sp.MinPayload, sp.MaxPayload)
			}
			if sp.Rounded && sp.MinPayload < 1 {
				t.Errorf("rounded kind %q has no payload word 0", sp.Kind)
			}
			m := WireMsg{Op: op, Nw: uint8(sp.MinPayload)}
			if m.Kind() != sp.Kind {
				t.Errorf("Kind(%v) = %q, want %q", op, m.Kind(), sp.Kind)
			}
			if m.Words() != 1+sp.MinPayload {
				t.Errorf("%q words = %d, want 1+%d", sp.Kind, m.Words(), sp.MinPayload)
			}
		}
	}
}

// TestWireMsgAccessors pins the flat record's derived views.
func TestWireMsgAccessors(t *testing.T) {
	var zero WireMsg
	if !zero.IsZero() || zero.Words() != 1 {
		t.Errorf("zero record: IsZero=%v words=%d", zero.IsZero(), zero.Words())
	}
	m := tokenMsg(7)
	if m.Kind() != "token" || m.Words() != 2 || m.MsgRound() != 0 {
		t.Errorf("token record: kind=%q words=%d round=%d", m.Kind(), m.Words(), m.MsgRound())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := WireMsg{Op: opToken, Nw: 5}
	var we *WireError
	if err := bad.Validate(); !errors.As(err, &we) {
		t.Errorf("out-of-bounds payload: %v", err)
	}
}

// TestWireCodecRoundTrip pins the byte codec: encode -> decode -> encode is
// byte-identical, with and without opcode translation.
func TestWireCodecRoundTrip(t *testing.T) {
	msgs := []WireMsg{
		tokenMsg(0), tokenMsg(-12345), tokenMsg(1 << 40),
		seqMsg(99), floodMsg(),
	}
	var buf []byte
	for _, m := range msgs {
		buf = AppendWire(buf, m, nil)
	}
	at := 0
	for i, want := range msgs {
		got, used, err := DecodeWire(buf[at:], nil)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: %+v != %+v", i, got, want)
		}
		re := AppendWire(nil, got, nil)
		if string(re) != string(buf[at:at+used]) {
			t.Fatalf("re-encode %d not byte-identical", i)
		}
		at += used
	}
	if at != len(buf) {
		t.Fatalf("trailing bytes: %d", len(buf)-at)
	}
}

// TestWireCodecMalformed pins the typed-error contract on malformed bytes.
func TestWireCodecMalformed(t *testing.T) {
	var we *WireError
	for name, b := range map[string][]byte{
		"empty":            {},
		"unknown op":       AppendWire(nil, WireMsg{Op: Op(NumOps() + 7), Nw: 0}, func(Op) uint64 { return uint64(NumOps() + 7) }),
		"zero op":          {0x00, 0x00},
		"truncated count":  {0x01},
		"huge count":       {0x01, 0xff, 0xff, 0x01},
		"truncated word":   {0x01, 0x01},
		"out of op bounds": AppendWire(nil, WireMsg{Op: opFlood, Nw: 3}, nil),
	} {
		m, _, err := DecodeWire(b, nil)
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", name, m)
			continue
		}
		if !errors.As(err, &we) {
			t.Errorf("%s: error %v is not a *WireError", name, err)
		}
	}
}
