package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mdegst/internal/graph"
)

// TestDelayFnBounds pins the invariant the calendar queue depends on: every
// shipped DelayFn draws delays strictly inside (0, 1] for any seed, so at
// any moment all pending deliveries lie within one time unit of the current
// event and the wheel's bucket window is exact.
func TestDelayFnBounds(t *testing.T) {
	fns := map[string]DelayFn{
		"unit":         UnitDelay,
		"uniform-0":    UniformDelay(0),
		"uniform-0.05": UniformDelay(0.05),
		"uniform-0.99": UniformDelay(0.99),
	}
	for name, fn := range fns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 5000; i++ {
					d := fn(rng, 1, 2)
					if !(d > 0 && d <= 1) {
						t.Fatalf("seed %d draw %d: delay %v outside (0, 1]", seed, i, d)
					}
				}
			}
		})
	}
}

// TestUniformDelayRespectsLowerBound checks the documented (lo, 1] contract.
func TestUniformDelayRespectsLowerBound(t *testing.T) {
	const lo = 0.25
	fn := UniformDelay(lo)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		if d := fn(rng, 0, 1); d <= lo || d > 1 {
			t.Fatalf("draw %d: delay %v outside (%v, 1]", i, d, lo)
		}
	}
}

// constDelay returns the given value on every draw — deliberately invalid
// values exercise the engines' bound check.
func constDelay(v float64) DelayFn {
	return func(*rand.Rand, NodeID, NodeID) float64 { return v }
}

// TestOutOfRangeDelayRejected verifies both discrete-event engines abort
// with a clear typed error — not a corrupted wheel, a hang or a generic
// panic — when a DelayFn leaves (0, 1].
func TestOutOfRangeDelayRejected(t *testing.T) {
	g := graph.Ring(8)
	bad := []struct {
		name string
		d    float64
	}{
		{"zero", 0},
		{"negative", -0.5},
		{"above-one", 1.5},
	}
	for _, tc := range bad {
		for _, eng := range []struct {
			name string
			mk   func(DelayFn) Engine
		}{
			{"event", func(d DelayFn) Engine { return &EventEngine{Delay: d, FIFO: true} }},
			{"reference", func(d DelayFn) Engine { return &ReferenceEngine{Delay: d, FIFO: true} }},
		} {
			t.Run(eng.name+"/"+tc.name, func(t *testing.T) {
				_, _, err := eng.mk(constDelay(tc.d)).Run(g, tokenFactory(10))
				if err == nil {
					t.Fatal("expected an error for out-of-range delay")
				}
				var bd badDelay
				if !errors.As(err, &bd) {
					t.Fatalf("error is not a badDelay: %v", err)
				}
				if !strings.Contains(err.Error(), "(0, 1]") {
					t.Errorf("error does not name the bound: %v", err)
				}
				if strings.Contains(err.Error(), "protocol panic") {
					t.Errorf("delay violation reported as a generic protocol panic: %v", err)
				}
			})
		}
	}
}

// TestEngineHealthyAfterDelayRejection runs a valid workload after an
// aborted one on the same pooled scratch path: a rejection must not leave a
// corrupted wheel behind for the next run.
func TestEngineHealthyAfterDelayRejection(t *testing.T) {
	g := graph.Gnp(24, 0.3, 42)
	if _, _, err := (&EventEngine{Delay: constDelay(2)}).Run(g, tokenFactory(10)); err == nil {
		t.Fatal("expected rejection")
	}
	var first *Report
	for i := 0; i < 3; i++ {
		_, rep, err := (&EventEngine{Delay: UniformDelay(0.05), Seed: 99, FIFO: true}).Run(g, tokenFactory(40))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
		} else if rep.Messages != first.Messages || rep.VirtualTime != first.VirtualTime {
			t.Fatalf("run %d diverged after a rejected run: %+v vs %+v", i, rep, first)
		}
	}
}

// TestDelayedTokenAllDelays sanity-checks the wheel across the whole legal
// delay spectrum, including delays far below the bucket width (which force
// sorted inserts into the live bucket).
func TestDelayedTokenAllDelays(t *testing.T) {
	g := graph.Ring(12)
	for _, d := range []float64{1e-6, 1.0 / wheelSpan / 2, 0.01, 0.5, 1} {
		t.Run(fmt.Sprintf("d=%g", d), func(t *testing.T) {
			_, rep, err := (&EventEngine{Delay: constDelay(d), FIFO: true}).Run(g, tokenFactory(30))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Messages != 30 {
				t.Errorf("messages = %d, want 30", rep.Messages)
			}
			wantT := 30 * d
			if diff := rep.VirtualTime - wantT; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("virtual time = %v, want ~%v", rep.VirtualTime, wantT)
			}
		})
	}
}
