package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mdegst/internal/graph"
)

// AsyncEngine runs every node as a goroutine with an unbounded FIFO mailbox.
// Message interleaving across links is decided by the Go scheduler (true
// asynchrony); per-link FIFO order is preserved, matching the model's
// communication channels. Optional jitter inserts random per-link forwarding
// delays to widen the explored interleavings.
//
// Termination is global quiescence: a counter tracks in-flight plus
// in-processing messages; handlers only send while processing, so when the
// counter reaches zero no further message can ever be created.
type AsyncEngine struct {
	// Seed initialises the jitter RNG.
	Seed int64
	// Jitter, when positive, delays each hop by a random duration in
	// (0, Jitter], applied by a per-directed-link forwarder that preserves
	// link FIFO order.
	Jitter time.Duration
}

type delivery struct {
	from  NodeID
	msg   Message
	depth int64
}

// mailbox is an unbounded FIFO queue; unbounded so that no protocol can
// deadlock on backpressure (the model's channels have no capacity bound).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(d delivery) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, d)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *mailbox) pop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return delivery{}, false
	}
	d := mb.queue[0]
	mb.queue = mb.queue[1:]
	return d, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

type asyncRun struct {
	wg       sync.WaitGroup // counts pending inits + unprocessed messages
	boxes    map[NodeID]*mailbox
	links    map[[2]NodeID]*mailbox // jitter forwarders, nil when no jitter
	mu       sync.Mutex             // guards report maps
	report   *Report
	panicVal atomic.Value
}

type asyncCtx struct {
	run       *asyncRun
	id        NodeID
	neighbors []NodeID
	depth     int64 // causal depth of the message being processed
}

func (c *asyncCtx) ID() NodeID          { return c.id }
func (c *asyncCtx) Neighbors() []NodeID { return c.neighbors }

func (c *asyncCtx) Send(to NodeID, m Message) {
	checkNeighbor(c.neighbors, c.id, to)
	r := c.run
	r.wg.Add(1)
	d := delivery{from: c.id, msg: m, depth: c.depth + 1}
	if r.links != nil {
		r.links[[2]NodeID{c.id, to}].push(d)
		return
	}
	r.boxes[to].push(d)
}

func (c *asyncCtx) Logf(string, ...any) {}

// Run executes the protocol to quiescence using real goroutines.
func (e *AsyncEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	start := time.Now()
	nodes := g.Nodes()
	run := &asyncRun{
		boxes:  make(map[NodeID]*mailbox, len(nodes)),
		report: newReport(),
	}
	protos := make(map[NodeID]Protocol, len(nodes))
	ctxs := make(map[NodeID]*asyncCtx, len(nodes))
	for _, v := range nodes {
		run.boxes[v] = newMailbox()
		ctx := &asyncCtx{run: run, id: v, neighbors: g.Neighbors(v)}
		ctxs[v] = ctx
		protos[v] = f(v, ctx.neighbors)
	}

	var forwarders sync.WaitGroup
	if e.Jitter > 0 {
		run.links = make(map[[2]NodeID]*mailbox)
		for _, u := range nodes {
			for _, v := range g.Neighbors(u) {
				run.links[[2]NodeID{u, v}] = newMailbox()
			}
		}
		var seed atomic.Int64
		seed.Store(e.Seed)
		for link, box := range run.links {
			forwarders.Add(1)
			go func(link [2]NodeID, box *mailbox) {
				defer forwarders.Done()
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for {
					d, ok := box.pop()
					if !ok {
						return
					}
					time.Sleep(time.Duration(rng.Int63n(int64(e.Jitter))) + 1)
					run.boxes[link[1]].push(d)
				}
			}(link, box)
		}
	}

	// Pre-count one unit per node so the quiescence counter cannot reach
	// zero before every Init has run.
	run.wg.Add(len(nodes))
	var loops sync.WaitGroup
	for _, v := range nodes {
		loops.Add(1)
		go func(v NodeID) {
			defer loops.Done()
			ctx := ctxs[v]
			// A panicking node is marked dead but keeps draining its
			// mailbox, so the quiescence counter still reaches zero and
			// the panic is reported instead of hanging the run.
			dead := false
			safely := func(fn func()) {
				defer func() {
					if p := recover(); p != nil {
						run.panicVal.CompareAndSwap(nil, fmt.Sprintf("node %d: %v", v, p))
						dead = true
					}
				}()
				fn()
			}
			safely(func() { protos[v].Init(ctx) })
			run.wg.Done()
			for {
				d, ok := run.boxes[v].pop()
				if !ok {
					return
				}
				if !dead {
					ctx.depth = d.depth
					run.mu.Lock()
					run.report.record(d.from, d.msg, d.depth)
					run.mu.Unlock()
					safely(func() { protos[v].Recv(ctx, d.from, d.msg) })
				}
				run.wg.Done()
			}
		}(v)
	}

	run.wg.Wait()
	for _, mb := range run.boxes {
		mb.close()
	}
	if run.links != nil {
		for _, mb := range run.links {
			mb.close()
		}
	}
	loops.Wait()
	forwarders.Wait()
	if p := run.panicVal.Load(); p != nil {
		return nil, nil, fmt.Errorf("sim: protocol panic: %v", p)
	}
	run.report.finalize()
	run.report.Wall = time.Since(start)
	return protos, run.report, nil
}

var _ Engine = (*AsyncEngine)(nil)
