package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mdegst/internal/graph"
)

// AsyncEngine runs every node as a goroutine with an unbounded FIFO mailbox.
// Message interleaving across links is decided by the Go scheduler (true
// asynchrony); per-link FIFO order is preserved, matching the model's
// communication channels. Optional jitter inserts random per-link forwarding
// delays to widen the explored interleavings.
//
// Mailboxes live in a slice addressed by the snapshot's dense node index and
// jitter forwarders in a slice addressed by the snapshot's directed
// half-edge index, so sends touch no map.
//
// Termination is global quiescence: a counter tracks in-flight plus
// in-processing messages; handlers only send while processing, so when the
// counter reaches zero no further message can ever be created.
type AsyncEngine struct {
	// Seed initialises the jitter RNG.
	Seed int64
	// Jitter, when positive, delays each hop by a random duration in
	// (0, Jitter], applied by a per-directed-link forwarder that preserves
	// link FIFO order.
	Jitter time.Duration
}

type delivery struct {
	from  NodeID
	msg   WireMsg
	depth int64
}

// mailbox is an unbounded FIFO queue; unbounded so that no protocol can
// deadlock on backpressure (the model's channels have no capacity bound).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(d delivery) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, d)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *mailbox) pop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return delivery{}, false
	}
	d := mb.queue[0]
	mb.queue = mb.queue[1:]
	return d, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

type asyncRun struct {
	wg       sync.WaitGroup // counts pending inits + unprocessed messages
	boxes    []*mailbox     // dense node index -> mailbox
	links    []*mailbox     // directed half-edge index -> forwarder, nil when no jitter
	mu       sync.Mutex     // guards report maps
	report   *Report
	panicVal atomic.Value
}

type asyncCtx struct {
	run       *asyncRun
	id        NodeID
	neighbors []NodeID
	nbrDense  []int32
	linkBase  int32 // this node's first directed half-edge index
	depth     int64 // causal depth of the message being processed
}

func (c *asyncCtx) ID() NodeID          { return c.id }
func (c *asyncCtx) Neighbors() []NodeID { return c.neighbors }

func (c *asyncCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.run
	r.wg.Add(1)
	d := delivery{from: c.id, msg: m, depth: c.depth + 1}
	if r.links != nil {
		r.links[c.linkBase+int32(ni)].push(d)
		return
	}
	r.boxes[c.nbrDense[ni]].push(d)
}

func (c *asyncCtx) Logf(string, ...any) {}

// Run compiles g and executes the protocol over the snapshot.
func (e *AsyncEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence using real goroutines.
func (e *AsyncEngine) RunSnapshot(c *graph.CSR, f Factory) (map[NodeID]Protocol, *Report, error) {
	start := time.Now()
	n := c.N()
	ids := c.Index().IDs()
	run := &asyncRun{
		boxes:  make([]*mailbox, n),
		report: newReport(),
	}
	plist := make([]Protocol, n)
	ctxs := make([]asyncCtx, n)
	for i := 0; i < n; i++ {
		di := int32(i)
		run.boxes[i] = newMailbox()
		ctxs[i] = asyncCtx{
			run:       run,
			id:        ids[i],
			neighbors: c.NeighborIDs(di),
			nbrDense:  c.Neighbors(di),
			linkBase:  c.HalfEdge(di, 0),
		}
		plist[i] = f(ids[i], ctxs[i].neighbors)
	}

	var forwarders sync.WaitGroup
	if e.Jitter > 0 {
		run.links = make([]*mailbox, c.HalfEdges())
		for he := range run.links {
			run.links[he] = newMailbox()
		}
		var seed atomic.Int64
		seed.Store(e.Seed)
		for i := 0; i < n; i++ {
			for ni, dst := range c.Neighbors(int32(i)) {
				he := c.HalfEdge(int32(i), ni)
				forwarders.Add(1)
				go func(box, dest *mailbox) {
					defer forwarders.Done()
					rng := rand.New(rand.NewSource(seed.Add(1)))
					for {
						d, ok := box.pop()
						if !ok {
							return
						}
						time.Sleep(time.Duration(rng.Int63n(int64(e.Jitter))) + 1)
						dest.push(d)
					}
				}(run.links[he], run.boxes[dst])
			}
		}
	}

	// Pre-count one unit per node so the quiescence counter cannot reach
	// zero before every Init has run.
	run.wg.Add(n)
	var loops sync.WaitGroup
	for i := 0; i < n; i++ {
		loops.Add(1)
		go func(i int) {
			defer loops.Done()
			ctx := &ctxs[i]
			proto := plist[i]
			// A panicking node is marked dead but keeps draining its
			// mailbox, so the quiescence counter still reaches zero and
			// the panic is reported instead of hanging the run.
			dead := false
			safely := func(fn func()) {
				defer func() {
					if p := recover(); p != nil {
						run.panicVal.CompareAndSwap(nil, fmt.Sprintf("node %d: %v", ctx.id, p))
						dead = true
					}
				}()
				fn()
			}
			safely(func() { proto.Init(ctx) })
			run.wg.Done()
			for {
				d, ok := run.boxes[i].pop()
				if !ok {
					return
				}
				if !dead {
					ctx.depth = d.depth
					run.mu.Lock()
					run.report.record(d.from, d.msg, d.depth)
					run.mu.Unlock()
					safely(func() { proto.Recv(ctx, d.from, d.msg) })
				}
				run.wg.Done()
			}
		}(i)
	}

	run.wg.Wait()
	for _, mb := range run.boxes {
		mb.close()
	}
	for _, mb := range run.links {
		mb.close()
	}
	loops.Wait()
	forwarders.Wait()
	if p := run.panicVal.Load(); p != nil {
		return nil, nil, fmt.Errorf("sim: protocol panic: %v", p)
	}
	run.report.finalize()
	run.report.Wall = time.Since(start)
	protos := make(map[NodeID]Protocol, n)
	for i, p := range plist {
		protos[ids[i]] = p
	}
	return protos, run.report, nil
}

var _ SnapshotEngine = (*AsyncEngine)(nil)
