package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"mdegst/internal/graph"
)

// tokenNode gains checkpoint support for the engine-level tests: the whole
// mutable state is the seen counter.
func (n *tokenNode) EncodeState(e *StateEncoder) {
	e.Int(int64(n.seen))
}

func (n *tokenNode) DecodeState(d *StateDecoder) error {
	n.seen = int(d.Int())
	return d.Err()
}

// runTraced executes the factory on eng collecting the trace.
func runTraced(t *testing.T, mkEng func(trace func(TraceEvent)) Engine, c *graph.CSR, f Factory) (map[NodeID]Protocol, *Report, []TraceEvent) {
	t.Helper()
	var events []TraceEvent
	eng := mkEng(func(e TraceEvent) { events = append(events, e) })
	protos, rep, err := RunCompiled(eng, c, f)
	if err != nil {
		t.Fatal(err)
	}
	return protos, rep, events
}

// TestCheckpointResumeEveryBarrier is the core differential: a run
// interrupted at every reachable round barrier and resumed must reproduce
// the uninterrupted run's delivery trace (checkpoint-leg prefix + resume
// leg), Report and final protocol states — on the round engine and on the
// sharded engine, resuming on either.
func TestCheckpointResumeEveryBarrier(t *testing.T) {
	c := graph.Gnm(24, 72, 5).Compile()
	factory := tokenFactory(30)

	fullProtos, fullRep, fullTrace := runTraced(t, func(tr func(TraceEvent)) Engine {
		return &EventEngine{Delay: UnitDelay, FIFO: true, Trace: tr}
	}, c, factory)
	finalRound := int64(fullRep.VirtualTime)
	if finalRound < 3 {
		t.Fatalf("workload too short for the barrier sweep: %v rounds", finalRound)
	}

	type resumeEngine struct {
		name string
		mk   func(trace func(TraceEvent)) ResumableEngine
	}
	resumers := []resumeEngine{
		{"event", func(tr func(TraceEvent)) ResumableEngine {
			return &EventEngine{Delay: UnitDelay, FIFO: true, Trace: tr}
		}},
		{"sharded-3", func(tr func(TraceEvent)) ResumableEngine {
			return &ShardedEngine{Shards: 3, Delay: UnitDelay, FIFO: true, Trace: tr}
		}},
	}
	checkpointers := []struct {
		name string
		mk   func(spec *CheckpointSpec, trace func(TraceEvent)) Engine
	}{
		{"event", func(spec *CheckpointSpec, tr func(TraceEvent)) Engine {
			return &EventEngine{Delay: UnitDelay, FIFO: true, Trace: tr, Checkpoint: spec}
		}},
		{"sharded-3", func(spec *CheckpointSpec, tr func(TraceEvent)) Engine {
			return &ShardedEngine{Shards: 3, Delay: UnitDelay, FIFO: true, Trace: tr, Checkpoint: spec}
		}},
	}

	for _, ckEng := range checkpointers {
		for r := int64(0); r <= finalRound; r++ {
			var buf bytes.Buffer
			var prefix []TraceEvent
			eng := ckEng.mk(&CheckpointSpec{Round: r, W: &buf}, func(e TraceEvent) { prefix = append(prefix, e) })
			_, _, err := RunCompiled(eng, c, factory)
			if !errors.Is(err, ErrCheckpointed) {
				t.Fatalf("%s r=%d: err = %v, want ErrCheckpointed", ckEng.name, r, err)
			}
			ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s r=%d: read: %v", ckEng.name, r, err)
			}
			if ck.Round != r {
				t.Fatalf("%s r=%d: checkpoint round %d", ckEng.name, r, ck.Round)
			}
			for _, res := range resumers {
				var resumeTrace []TraceEvent
				reng := res.mk(func(e TraceEvent) { resumeTrace = append(resumeTrace, e) })
				protos, rep, err := reng.ResumeSnapshot(c, factory, ck)
				if err != nil {
					t.Fatalf("%s r=%d resume on %s: %v", ckEng.name, r, res.name, err)
				}
				whole := append(append([]TraceEvent{}, prefix...), resumeTrace...)
				if !reflect.DeepEqual(whole, fullTrace) {
					t.Fatalf("%s r=%d resume on %s: stitched trace diverges (%d+%d vs %d events)",
						ckEng.name, r, res.name, len(prefix), len(resumeTrace), len(fullTrace))
				}
				assertReportsEqual(t, fmt.Sprintf("%s r=%d on %s", ckEng.name, r, res.name), rep, fullRep)
				for id, p := range protos {
					if p.(*tokenNode).seen != fullProtos[id].(*tokenNode).seen {
						t.Fatalf("%s r=%d resume on %s: node %d state diverged", ckEng.name, r, res.name, id)
					}
				}
			}
		}
	}
}

// assertReportsEqual compares every deterministic Report field (Wall is
// host time and excluded).
func assertReportsEqual(t *testing.T, label string, got, want *Report) {
	t.Helper()
	got.finalize()
	want.finalize()
	if got.Messages != want.Messages || got.Words != want.Words || got.MaxWords != want.MaxWords ||
		got.CausalDepth != want.CausalDepth || got.VirtualTime != want.VirtualTime {
		t.Fatalf("%s: scalar report fields diverge:\n got %+v\nwant %+v", label, got, want)
	}
	if !reflect.DeepEqual(got.ByKind, want.ByKind) || !reflect.DeepEqual(got.ByRound, want.ByRound) ||
		!reflect.DeepEqual(got.ByKindRound, want.ByKindRound) || !reflect.DeepEqual(got.SentBy, want.SentBy) {
		t.Fatalf("%s: report breakdowns diverge:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestCheckpointFileDeterminism pins byte-exactness: the same barrier
// produces the same file on the round engine and any sharded engine.
func TestCheckpointFileDeterminism(t *testing.T) {
	c := graph.Gnm(24, 72, 5).Compile()
	factory := tokenFactory(30)
	write := func(eng Engine) []byte {
		var buf bytes.Buffer
		switch e := eng.(type) {
		case *EventEngine:
			e.Checkpoint = &CheckpointSpec{Round: 4, W: &buf}
		case *ShardedEngine:
			e.Checkpoint = &CheckpointSpec{Round: 4, W: &buf}
		}
		if _, _, err := RunCompiled(eng, c, factory); !errors.Is(err, ErrCheckpointed) {
			t.Fatalf("err = %v", err)
		}
		return buf.Bytes()
	}
	ref := write(&EventEngine{Delay: UnitDelay, FIFO: true})
	for _, shards := range []int{2, 3, 5} {
		got := write(&ShardedEngine{Shards: shards, Delay: UnitDelay, FIFO: true})
		if !bytes.Equal(ref, got) {
			t.Errorf("shards=%d: checkpoint bytes differ from the round engine's", shards)
		}
	}
	if again := write(&EventEngine{Delay: UnitDelay, FIFO: true}); !bytes.Equal(ref, again) {
		t.Error("repeated checkpoint not byte-identical")
	}
}

// TestCheckpointErrors pins the typed failure modes.
func TestCheckpointErrors(t *testing.T) {
	c := graph.Gnm(12, 30, 1).Compile()
	var ce *CheckpointError

	// Non-unit tiers have no barriers.
	var buf bytes.Buffer
	eng := &EventEngine{Delay: UniformDelay(0.1), FIFO: true, Checkpoint: &CheckpointSpec{Round: 1, W: &buf}}
	if _, _, err := RunCompiled(eng, c, tokenFactory(10)); !errors.Is(err, errCheckpointTier) {
		t.Errorf("wheel tier checkpoint: %v", err)
	}

	// A checkpoint resumed against a different graph is rejected.
	buf.Reset()
	eng = &EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: &CheckpointSpec{Round: 2, W: &buf}}
	if _, _, err := RunCompiled(eng, c, tokenFactory(10)); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("checkpoint: %v", err)
	}
	ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other := graph.Gnm(13, 30, 2).Compile()
	if _, _, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).ResumeSnapshot(other, tokenFactory(10), ck); !errors.As(err, &ce) {
		t.Errorf("mismatched snapshot: %v", err)
	}

	// Protocols without StateCodec cannot checkpoint.
	buf.Reset()
	eng = &EventEngine{Delay: UnitDelay, Checkpoint: &CheckpointSpec{Round: 1, W: &buf}}
	if _, _, err := eng.Run(graph.Ring(4), func(NodeID, []NodeID) Protocol { return chainReaction{} }); !errors.As(err, &ce) {
		t.Errorf("no StateCodec: %v", err)
	}

	// Corrupted files fail with a typed error.
	buf.Reset()
	eng = &EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: &CheckpointSpec{Round: 2, W: &buf}}
	if _, _, err := RunCompiled(eng, c, tokenFactory(10)); !errors.Is(err, ErrCheckpointed) {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := ReadCheckpoint(bytes.NewReader(corrupt)); !errors.As(err, &ce) {
		t.Errorf("corrupted file: %v", err)
	}
}

// TestBinaryTraceRoundTrip pins the compact trace form: every engine trace
// (deliveries and Logf notes) survives the byte round trip exactly.
func TestBinaryTraceRoundTrip(t *testing.T) {
	c := graph.Gnp(20, 0.3, 3).Compile()
	var want []TraceEvent
	var buf bytes.Buffer
	bw := NewBinaryTraceWriter(&buf)
	eng := &EventEngine{Delay: UnitDelay, FIFO: true, Trace: func(e TraceEvent) {
		want = append(want, e)
		bw.Trace(e)
	}}
	if _, _, err := RunCompiled(eng, c, loggingTokenFactory(40)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary trace round trip diverged: %d vs %d events", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("trace empty; workload misconfigured")
	}
	// The binary form must undercut a naive textual rendering.
	var text int
	for _, e := range want {
		text += len(e.String())
	}
	if buf.Len() >= text {
		t.Errorf("binary trace (%d bytes) not smaller than text (%d bytes)", buf.Len(), text)
	}

	// Malformed bytes fail cleanly.
	if _, err := ReadBinaryTrace(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted as a binary trace")
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinaryTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

// TestCheckpointHugeCountsRejected pins the allocation bound: a tiny
// CRC-valid file declaring enormous element counts must fail with a typed
// error before any count-sized allocation happens (a crafted file must
// never be able to take the process down).
func TestCheckpointHugeCountsRejected(t *testing.T) {
	craft := func(mutate func(body []byte) []byte) []byte {
		var body []byte
		body = appendVarint(body, 2)      // round
		body = appendUvarint(body, 4)     // n
		body = appendUvarint(body, 8)     // halfEdges
		body = appendVarint(body, 10)     // messages
		body = appendVarint(body, 20)     // words
		body = appendUvarint(body, 2)     // maxWords
		body = appendVarint(body, 2)      // causalDepth
		body = mutate(body)               // section counts under attack
		var out []byte
		out = append(out, ckptMagic[:]...)
		out = appendUvarint(out, CheckpointVersion)
		out = appendUvarint(out, 0) // empty opcode table
		out = appendUvarint(out, uint64(len(body)))
		out = append(out, body...)
		return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	}
	var ce *CheckpointError
	for name, mutate := range map[string]func([]byte) []byte{
		"kindRounds": func(b []byte) []byte { return appendUvarint(b, 1<<35) },
		"sentBy": func(b []byte) []byte {
			b = appendUvarint(b, 0) // kindRounds
			return appendUvarint(b, 1<<35)
		},
		"states": func(b []byte) []byte {
			b = appendUvarint(b, 0) // kindRounds
			b = appendUvarint(b, 0) // sentBy
			return appendUvarint(b, 1<<35)
		},
		"pending": func(b []byte) []byte {
			b = appendUvarint(b, 0) // kindRounds
			b = appendUvarint(b, 0) // sentBy
			b = appendUvarint(b, 0) // states (n mismatch is fine: count check runs first)
			return appendUvarint(b, 1<<35)
		},
	} {
		if _, err := ReadCheckpoint(bytes.NewReader(craft(mutate))); !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want *CheckpointError", name, err)
		}
	}
}
