package sim

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"mdegst/internal/graph"
)

// The synchronous round engine behind EventEngine's unit-delay fast path.
// Under UnitDelay — the paper's default and the dominant experiment
// configuration — every message sent while processing time t is delivered at
// exactly t+1, so the (time, sequence) heap order degenerates into rounds:
// all deliveries of round r, in global send order, then all of round r+1.
// No timestamps, no RNG, no FIFO clamps (per-link send times are already
// non-decreasing, so the clamp can never bind): just two flat delivery
// slices swapped per round over the CSR snapshot. Deliveries are flat
// WireMsg records, so the slabs hold no pointers and the swap is the whole
// round hand-off. Causal depth equals the round number equals the virtual
// time, which is exactly what the heap path computes under unit delays —
// the differential tests hold the two (and ReferenceEngine) to identical
// delivery traces.
//
// The inter-round barrier is also the checkpoint cut (DESIGN.md §8): with
// rr.cur drained, the entire in-flight state of the run is rr.next (flat
// records in exactly the global send order) plus the per-node protocol
// states — which is what runRoundsFrom snapshots and reseeds.

// isUnitDelay reports whether d is the package's UnitDelay (or nil, which
// defaults to it). Wrappers around UnitDelay are not detected and take the
// calendar-queue path, which is correct, just slower.
func isUnitDelay(d DelayFn) bool {
	return d == nil || reflect.ValueOf(d).Pointer() == reflect.ValueOf(UnitDelay).Pointer()
}

// roundDelivery is one queued message of the current or next round. The
// sender appears twice — identity for Recv and trace, dense index for the
// report's dense send counters — trading four bytes per record for no
// identity lookups on either path.
type roundDelivery struct {
	from      NodeID
	fromDense int32
	toDense   int32
	msg       WireMsg
}

type roundRun struct {
	cur    []roundDelivery // deliveries of the round being processed, in send order
	next   []roundDelivery // deliveries of round round+1, in send order
	round  int64           // round currently being delivered (0 while Init runs)
	trace  func(TraceEvent)
	report *Report
}

type roundCtx struct {
	run       *roundRun
	id        NodeID
	dense     int32
	neighbors []NodeID
	nbrDense  []int32
}

func (c *roundCtx) ID() NodeID          { return c.id }
func (c *roundCtx) Neighbors() []NodeID { return c.neighbors }

func (c *roundCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.run
	r.next = append(r.next, roundDelivery{from: c.id, fromDense: c.dense, toDense: c.nbrDense[ni], msg: m})
}

func (c *roundCtx) Logf(format string, args ...any) {
	if r := c.run; r.trace != nil {
		r.trace(TraceEvent{Time: float64(r.round), Depth: r.round, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// roundScratch pools the per-run state of the round engine, mirroring
// eventScratch for the wheel path. The delivery slabs are pointer-free
// flat buffers, so pooling them costs the GC nothing.
type roundScratch struct {
	ctxs      []roundCtx
	protos    []Protocol
	cur, next []roundDelivery
	sent      []int64 // dense send counters lent to the report
}

var roundPool = sync.Pool{New: func() any { return new(roundScratch) }}

func (s *roundScratch) reset(n int) {
	if cap(s.ctxs) < n {
		s.ctxs = make([]roundCtx, n)
	}
	s.ctxs = s.ctxs[:n]
	if cap(s.protos) < n {
		s.protos = make([]Protocol, n)
	}
	s.protos = s.protos[:n]
	if cap(s.sent) < n {
		s.sent = make([]int64, n)
	}
	s.sent = s.sent[:n]
	clear(s.sent)
	s.cur, s.next = s.cur[:0], s.next[:0]
}

func (s *roundScratch) release() {
	// Zero what can pin protocol state or snapshot arrays. The delivery
	// slabs are flat records and only need truncating.
	s.cur, s.next = s.cur[:0], s.next[:0]
	for i := range s.ctxs {
		s.ctxs[i] = roundCtx{}
	}
	clear(s.protos)
	roundPool.Put(s)
}

// runRounds executes the protocol to quiescence in synchronous rounds.
// Called from EventEngine.RunSnapshot (which owns panic recovery) when the
// delay model is UnitDelay.
func (e *EventEngine) runRounds(c *graph.CSR, f Factory, maxMsgs int64, start time.Time) ([]Protocol, *Report, error) {
	return e.runRoundsFrom(c, f, maxMsgs, start, nil)
}

// runRoundsFrom is runRounds optionally reseeded from a checkpoint: with
// ck nil the run starts at Init; otherwise the protocols decode their
// saved states, the report counters are restored and rr.next is refilled
// with the checkpoint's pending slab — the run continues as if it had
// never stopped.
func (e *EventEngine) runRoundsFrom(c *graph.CSR, f Factory, maxMsgs int64, start time.Time, ck *Checkpoint) ([]Protocol, *Report, error) {
	rr := &roundRun{trace: e.Trace, report: newReport()}
	n := c.N()
	ids := c.Index().IDs()
	scratch := roundPool.Get().(*roundScratch)
	defer scratch.release()
	scratch.reset(n)
	rr.cur, rr.next = scratch.cur, scratch.next
	rr.report.adoptDenseSent(scratch.sent, ids)

	for i := 0; i < n; i++ {
		di := int32(i)
		scratch.ctxs[i] = roundCtx{
			run:       rr,
			id:        ids[i],
			dense:     di,
			neighbors: c.NeighborIDs(di),
			nbrDense:  c.Neighbors(di),
		}
		scratch.protos[i] = f(ids[i], scratch.ctxs[i].neighbors)
	}
	if ck == nil {
		// All nodes start independently; Init runs at time zero in ID order
		// and its sends form round 1.
		for i := 0; i < n; i++ {
			scratch.protos[i].Init(&scratch.ctxs[i])
		}
	} else {
		if err := ck.decodeStates(scratch.protos); err != nil {
			return nil, nil, err
		}
		ck.restoreReport(rr.report)
		rr.round = ck.Round
		for _, p := range ck.Pending {
			rr.next = append(rr.next, roundDelivery{from: ids[p.From], fromDense: p.From, toDense: p.To, msg: p.Msg})
		}
	}
	spec := e.Checkpoint
	if spec != nil && spec.Every == 0 && spec.Round == 0 && ck == nil {
		// Barrier 0: the state right after Init, before any delivery.
		return nil, nil, e.writeRoundCheckpoint(rr, scratch.protos, c)
	}
	for len(rr.next) > 0 {
		rr.cur, rr.next = rr.next, rr.cur[:0]
		// Mirror the swap onto the scratch so release keeps the live backing
		// arrays pooled even when Recv panics mid-round.
		scratch.cur, scratch.next = rr.cur, rr.next
		rr.round++
		t := float64(rr.round)
		for i := range rr.cur {
			d := rr.cur[i]
			if rr.report.Messages >= maxMsgs {
				return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
			}
			rr.report.recordFast(d.fromDense, d.msg, rr.round)
			if rr.trace != nil {
				rr.trace(TraceEvent{Time: t, Depth: rr.round, From: d.from, To: ids[d.toDense], Msg: d.msg})
			}
			scratch.protos[d.toDense].Recv(&scratch.ctxs[d.toDense], d.from, d.msg)
		}
		scratch.next = rr.next
		if spec != nil {
			if spec.Every > 0 {
				// Periodic cadence: commit at every multiple of Every and keep
				// running. A resumed run re-enters the loop at ck.Round+1, so
				// the barrier it resumed from is never re-committed.
				if rr.round%spec.Every == 0 {
					if err := e.commitRoundCheckpoint(rr, scratch.protos, c); err != nil {
						return nil, nil, err
					}
					// The capture folded the dense send counts into the
					// report's map and detached the slab; re-arm it zeroed so
					// recordFast keeps accumulating the delta on top.
					clear(scratch.sent)
					rr.report.adoptDenseSent(scratch.sent, ids)
				}
			} else if rr.round == spec.Round {
				return nil, nil, e.writeRoundCheckpoint(rr, scratch.protos, c)
			}
		}
	}
	scratch.cur, scratch.next = rr.cur, rr.next
	rr.report.VirtualTime = float64(rr.round)
	rr.report.finalize()
	rr.report.Wall = time.Since(start)
	// Copy out of the pooled scratch: release clears its protocol slots.
	return append([]Protocol(nil), scratch.protos...), rr.report, nil
}

// captureRoundCheckpoint snapshots the run at the current barrier — rr.cur
// drained, rr.next holding round rr.round+1 in global send order.
func (e *EventEngine) captureRoundCheckpoint(rr *roundRun, protos []Protocol, c *graph.CSR) (*Checkpoint, error) {
	ck := &Checkpoint{Round: rr.round, N: c.N(), HalfEdges: c.HalfEdges()}
	ck.captureReport(rr.report)
	if err := ck.encodeStates(protos); err != nil {
		return nil, err
	}
	ck.Pending = make([]PendingDelivery, len(rr.next))
	for i, d := range rr.next {
		ck.Pending[i] = PendingDelivery{From: d.fromDense, To: d.toDense, Msg: d.msg}
	}
	return ck, nil
}

// writeRoundCheckpoint freezes the run at the current barrier, writes it to
// the armed CheckpointSpec and returns ErrCheckpointed.
func (e *EventEngine) writeRoundCheckpoint(rr *roundRun, protos []Protocol, c *graph.CSR) error {
	ck, err := e.captureRoundCheckpoint(rr, protos, c)
	if err != nil {
		return err
	}
	if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	return ErrCheckpointed
}

// commitRoundCheckpoint durably commits the current barrier through the
// periodic Sink; the run keeps going.
func (e *EventEngine) commitRoundCheckpoint(rr *roundRun, protos []Protocol, c *graph.CSR) error {
	ck, err := e.captureRoundCheckpoint(rr, protos, c)
	if err != nil {
		return err
	}
	return e.Checkpoint.Sink.Commit(rr.round, ck.Write)
}
