package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/workload"
)

// floodBench is a minimal O(m) protocol used to measure raw engine
// throughput without algorithm cost.
type floodBench struct {
	id   NodeID
	seen bool
}

func floodMsg() WireMsg { return WireMsg{Op: opFlood} }

func (f *floodBench) Init(ctx Context) {
	if f.id != 0 {
		return
	}
	f.seen = true
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, floodMsg())
	}
}

func (f *floodBench) Recv(ctx Context, from NodeID, _ WireMsg) {
	if f.seen {
		return
	}
	f.seen = true
	for _, w := range ctx.Neighbors() {
		if w != from {
			ctx.Send(w, floodMsg())
		}
	}
}

func benchFactory(id NodeID, _ []NodeID) Protocol { return &floodBench{id: id} }

// BenchmarkEventEngineFlood measures event-engine message throughput and
// allocations on the optimised fast path.
func BenchmarkEventEngineFlood(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		g := graph.Gnm(n, 4*n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var msgs int64
			for i := 0; i < b.N; i++ {
				_, rep, err := (&EventEngine{Delay: UnitDelay}).Run(g, benchFactory)
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Messages
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkReferenceEngineFlood is the same workload on the unoptimised
// oracle engine; the gap to BenchmarkEventEngineFlood is the measured win of
// the fast path (event boxing, map FIFO clamps, per-message key formatting).
func BenchmarkReferenceEngineFlood(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		g := graph.Gnm(n, 4*n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := (&ReferenceEngine{Delay: UnitDelay}).Run(g, benchFactory); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEventEngineFloodLarge measures the round engine at the scale the
// bounded-delay schedulers unlocked (the full tier lives in `mdstbench
// -perf`; this keeps a sample in the ordinary bench suite). The graph is the
// shared catalog's gnm-4096 so the number is comparable with the recorded
// trajectory entries of the same name.
func BenchmarkEventEngineFloodLarge(b *testing.B) {
	c := workload.Gnm4096().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := (&EventEngine{Delay: UnitDelay}).RunSnapshot(c, benchFactory); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedEngineFlood measures the shard-partitioned round path
// against the shard counts: shards=1 is exactly the event engine, larger
// counts pay the outbox/merge plane and (on multi-core hosts) buy window
// parallelism. The partition is precomputed (cut-minimizing refined, as the
// scaling suite uses) and the dense result path skips the per-node result
// map, so the loop measures the engine, not the hand-off.
func BenchmarkShardedEngineFlood(b *testing.B) {
	c := workload.Gnm4096().Compile()
	for _, shards := range []int{1, 2, 4} {
		var part *graph.Partition
		if shards > 1 {
			part = graph.PartitionRefined(c, shards)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := &ShardedEngine{Shards: shards, Partition: part, Delay: UnitDelay, FIFO: true}
				if _, _, err := eng.RunSnapshotDense(c, benchFactory); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCalendarQueueSparse drives a schedule with one event per time
// unit over thousands of units — the wheel's worst case, where pop crosses
// hundreds of empty buckets per delivery and leans on the occupancy bitmap.
func BenchmarkCalendarQueueSparse(b *testing.B) {
	g := graph.Ring(64)
	// wrapped unit delay defeats round-engine selection, forcing the wheel
	// while keeping the sparse one-event-per-unit schedule.
	almostUnit := func(rng *rand.Rand, from, to NodeID) float64 { return 1 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := (&EventEngine{Delay: almostUnit, FIFO: true}).Run(g, tokenFactory(4000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventEngineFIFORandom includes the FIFO bookkeeping and RNG cost.
func BenchmarkEventEngineFIFORandom(b *testing.B) {
	g := graph.Gnm(256, 1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := (&EventEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: int64(i)}).Run(g, benchFactory); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceEngineFIFORandom is the oracle-engine counterpart.
func BenchmarkReferenceEngineFIFORandom(b *testing.B) {
	g := graph.Gnm(256, 1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := (&ReferenceEngine{Delay: UniformDelay(0.05), FIFO: true, Seed: int64(i)}).Run(g, benchFactory); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncEngineFlood measures goroutine-engine throughput (mailboxes,
// scheduling, quiescence detection).
func BenchmarkAsyncEngineFlood(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := graph.Gnm(n, 4*n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := (&AsyncEngine{}).Run(g, benchFactory); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
