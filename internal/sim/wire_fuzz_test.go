package sim

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWireCodec fuzzes the wire codec from both directions. Structured
// inputs (opcode choice + payload words) must encode -> decode -> encode
// byte-identically; raw byte inputs must either decode to a record that
// re-encodes to exactly the consumed bytes or fail with a typed
// *WireError — never panic, never misparse.
func FuzzWireCodec(f *testing.F) {
	f.Add(uint8(0), int64(0), int64(0), int64(0), []byte{})
	f.Add(uint8(1), int64(42), int64(-1), int64(1<<40), []byte{0x01, 0x01, 0x02})
	f.Add(uint8(2), int64(-12345), int64(7), int64(0), []byte{0x00})
	f.Add(uint8(3), int64(1), int64(2), int64(3), []byte{0x01, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, opSel uint8, w0, w1, w2 int64, raw []byte) {
		// Direction 1: structured round trip over the registered test ops.
		ops := []WireMsg{tokenMsg(int(w0)), seqMsg(int(w1)), floodMsg()}
		m := ops[int(opSel)%len(ops)]
		if m.Nw > 0 {
			m.W[0] = w2 // arbitrary payload values must survive
		}
		enc := AppendWire(nil, m, nil)
		got, used, err := DecodeWire(enc, nil)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if used != len(enc) || got != m {
			t.Fatalf("round trip: %+v -> %+v (used %d of %d)", m, got, used, len(enc))
		}
		if re := AppendWire(nil, got, nil); string(re) != string(enc) {
			t.Fatalf("re-encode not byte-identical: %x vs %x", re, enc)
		}

		// Direction 2: arbitrary bytes decode cleanly or fail typed.
		dm, dused, derr := DecodeWire(raw, nil)
		if derr != nil {
			var we *WireError
			if !errors.As(derr, &we) {
				t.Fatalf("malformed input error %v is not a *WireError", derr)
			}
			return
		}
		if derr := dm.Validate(); derr != nil {
			t.Fatalf("decode accepted an invalid record: %v", derr)
		}
		if re := AppendWire(nil, dm, nil); string(re) != string(raw[:dused]) {
			// The only legitimate difference is non-minimal varint
			// encodings in the input; re-decoding must still agree.
			rm, _, rerr := DecodeWire(re, nil)
			if rerr != nil || rm != dm {
				t.Fatalf("canonical re-encoding diverged: %+v vs %+v (%v)", dm, rm, rerr)
			}
		}
	})
}

// FuzzCheckpointRead fuzzes the checkpoint file reader: arbitrary bytes
// must never panic, and any accepted input must round-trip Write -> Read.
func FuzzCheckpointRead(f *testing.F) {
	// A tiny valid checkpoint as seed corpus.
	ck := &Checkpoint{Round: 2, N: 1, HalfEdges: 0, Messages: 3}
	ck.States = [][]byte{{}}
	ck.Pending = []PendingDelivery{{From: 0, To: 0, Msg: tokenMsg(1)}}
	var buf []byte
	{
		w := &sliceWriter{}
		if err := ck.Write(w); err != nil {
			f.Fatal(err)
		}
		buf = w.b
	}
	f.Add(buf)
	f.Add([]byte("MDGSTCK1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			var ce *CheckpointError
			var we *WireError
			if !errors.As(err, &ce) && !errors.As(err, &we) {
				t.Fatalf("error %v is neither *CheckpointError nor *WireError", err)
			}
			return
		}
		w := &sliceWriter{}
		if err := got.Write(w); err != nil {
			t.Fatalf("re-write of accepted checkpoint failed: %v", err)
		}
		re, err := ReadCheckpoint(bytes.NewReader(w.b))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if re.Round != got.Round || re.N != got.N || len(re.Pending) != len(got.Pending) {
			t.Fatalf("round trip diverged: %+v vs %+v", re, got)
		}
	})
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

