package sim

import (
	"strings"
	"testing"

	"mdegst/internal/graph"
)

// The test schema: token carries a hop count, seq a per-link sequence
// number, flood nothing. Registered once per test binary.
var testWire = Register("simtest",
	OpSpec{Kind: "token", MinPayload: 1, MaxPayload: 1},
	OpSpec{Kind: "seq", MinPayload: 1, MaxPayload: 1},
	OpSpec{Kind: "flood"},
)

var (
	opToken = testWire.Op(0)
	opSeq   = testWire.Op(1)
	opFlood = testWire.Op(2)
)

// tokenMsg circulates around a ring a fixed number of hops.
func tokenMsg(hops int) WireMsg {
	m := WireMsg{Op: opToken, Nw: 1}
	m.W[0] = int64(hops)
	return m
}

type tokenNode struct {
	id    NodeID
	start bool
	limit int
	seen  int
}

func (n *tokenNode) Init(ctx Context) {
	if !n.start {
		return
	}
	ctx.Send(ctx.Neighbors()[len(ctx.Neighbors())-1], tokenMsg(1))
}

func (n *tokenNode) Recv(ctx Context, from NodeID, m WireMsg) {
	hops := int(m.W[0])
	n.seen++
	if hops >= n.limit {
		return
	}
	// Forward away from the sender (bounce back on a dead end).
	ns := ctx.Neighbors()
	next := ns[0]
	if next == from && len(ns) > 1 {
		next = ns[1]
	}
	ctx.Send(next, tokenMsg(hops+1))
}

func tokenFactory(limit int) Factory {
	return func(id NodeID, _ []NodeID) Protocol {
		return &tokenNode{id: id, start: id == 0, limit: limit}
	}
}

func engines() map[string]Engine {
	return map[string]Engine{
		"event-unit":   &EventEngine{Delay: UnitDelay},
		"event-random": &EventEngine{Delay: UniformDelay(0.1), Seed: 7, FIFO: true},
		"async":        &AsyncEngine{},
	}
}

func TestTokenRing(t *testing.T) {
	const n, hops = 10, 25
	g := graph.Ring(n)
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			protos, rep, err := eng.Run(g, tokenFactory(hops))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Messages != hops {
				t.Errorf("messages = %d, want %d", rep.Messages, hops)
			}
			if rep.CausalDepth != hops {
				t.Errorf("causal depth = %d, want %d", rep.CausalDepth, hops)
			}
			if rep.ByKind["token"] != hops {
				t.Errorf("ByKind[token] = %d, want %d", rep.ByKind["token"], hops)
			}
			if rep.Words != 2*hops {
				t.Errorf("words = %d, want %d", rep.Words, 2*hops)
			}
			if rep.MaxWords != 2 {
				t.Errorf("max words = %d, want 2", rep.MaxWords)
			}
			total := 0
			for _, p := range protos {
				total += p.(*tokenNode).seen
			}
			if total != hops {
				t.Errorf("sum of received tokens = %d, want %d", total, hops)
			}
		})
	}
}

func TestUnitDelayVirtualTime(t *testing.T) {
	g := graph.Ring(8)
	eng := &EventEngine{Delay: UnitDelay}
	_, rep, err := eng.Run(g, tokenFactory(20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.VirtualTime != 20 {
		t.Errorf("virtual time = %v, want 20", rep.VirtualTime)
	}
}

func TestEventEngineDeterminism(t *testing.T) {
	g := graph.Gnp(24, 0.3, 42)
	run := func() *Report {
		eng := &EventEngine{Delay: UniformDelay(0.05), Seed: 99, FIFO: true}
		_, rep, err := eng.Run(g, tokenFactory(40))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.VirtualTime != b.VirtualTime || a.CausalDepth != b.CausalDepth {
		t.Errorf("non-deterministic reports: %+v vs %+v", a, b)
	}
}

// seqMsg carries a per-link sequence number for FIFO tests.
func seqMsg(seq int) WireMsg {
	m := WireMsg{Op: opSeq, Nw: 1}
	m.W[0] = int64(seq)
	return m
}

type seqSender struct {
	id    NodeID
	count int
	got   []int
}

func (s *seqSender) Init(ctx Context) {
	if s.id != 0 {
		return
	}
	for i := 0; i < s.count; i++ {
		ctx.Send(1, seqMsg(i))
	}
}

func (s *seqSender) Recv(_ Context, _ NodeID, m WireMsg) {
	s.got = append(s.got, int(m.W[0]))
}

func TestFIFOOrdering(t *testing.T) {
	g := graph.Path(2)
	const count = 64
	factory := func(id NodeID, _ []NodeID) Protocol { return &seqSender{id: id, count: count} }

	eng := &EventEngine{Delay: UniformDelay(0.01), Seed: 5, FIFO: true}
	protos, _, err := eng.Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	got := protos[1].(*seqSender).got
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at position %d: got %d", i, v)
		}
	}

	// Without FIFO the same seed must reorder at least one pair (delays are
	// i.i.d. over 64 messages, so a monotone outcome would be astonishing).
	eng = &EventEngine{Delay: UniformDelay(0.01), Seed: 5, FIFO: false}
	protos, _, err = eng.Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	got = protos[1].(*seqSender).got
	sorted := true
	for i, v := range got {
		if v != i {
			sorted = false
			break
		}
	}
	if sorted {
		t.Error("expected reordering without FIFO enforcement")
	}
}

// badSender sends to a non-neighbour; both engines must surface the bug as
// an error rather than hanging or crashing the process.
type badSender struct{ id NodeID }

func (b *badSender) Init(ctx Context) {
	if b.id == 0 {
		ctx.Send(99, tokenMsg(0))
	}
}
func (b *badSender) Recv(Context, NodeID, WireMsg) {}

func TestNonNeighborSendFails(t *testing.T) {
	g := graph.Path(3)
	factory := func(id NodeID, _ []NodeID) Protocol { return &badSender{id: id} }
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			_, _, err := eng.Run(g, factory)
			if err == nil || !strings.Contains(err.Error(), "non-neighbour") {
				t.Errorf("want non-neighbour error, got %v", err)
			}
		})
	}
}

// chainReaction floods to test the livelock guard.
type chainReaction struct{}

func (chainReaction) Init(ctx Context) {
	for _, w := range ctx.Neighbors() {
		ctx.Send(w, tokenMsg(0))
	}
}
func (chainReaction) Recv(ctx Context, from NodeID, _ WireMsg) {
	ctx.Send(from, tokenMsg(0))
}

func TestLivelockGuard(t *testing.T) {
	g := graph.Ring(4)
	eng := &EventEngine{Delay: UnitDelay, MaxMessages: 1000}
	_, _, err := eng.Run(g, func(NodeID, []NodeID) Protocol { return chainReaction{} })
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Errorf("want livelock error, got %v", err)
	}
}

func TestReportMerge(t *testing.T) {
	a, b := newReport(), newReport()
	a.record(1, tokenMsg(0), 3)
	b.record(2, tokenMsg(0), 5)
	b.record(2, seqMsg(0), 1)
	a.Add(b)
	if a.Messages != 3 {
		t.Errorf("messages = %d, want 3", a.Messages)
	}
	if a.ByKind["token"] != 2 || a.ByKind["seq"] != 1 {
		t.Errorf("by kind = %v", a.ByKind)
	}
	if a.CausalDepth != 8 {
		t.Errorf("causal depth = %d, want 8 (phases compose)", a.CausalDepth)
	}
	if a.SentBy[2] != 2 {
		t.Errorf("sentBy[2] = %d, want 2", a.SentBy[2])
	}
}

func TestTraceEvents(t *testing.T) {
	g := graph.Path(2)
	var events []TraceEvent
	eng := &EventEngine{Delay: UnitDelay, Trace: func(e TraceEvent) { events = append(events, e) }}
	_, _, err := eng.Run(g, tokenFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("trace events = %d, want 3", len(events))
	}
	if events[0].From != 0 || events[0].To != 1 {
		t.Errorf("first event = %+v", events[0])
	}
}
