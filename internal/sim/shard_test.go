package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mdegst/internal/graph"
)

// The differential corpus of the shard-partitioned runtime: N-shard runs
// must be delivery-trace- and report-equivalent to the 1-shard engine
// (EventEngine) and to ReferenceEngine, for both scheduler tiers, at any
// shard count and partition strategy. Workers is forced above 1 in the
// parallel tests so the cross-goroutine handoff is exercised (and raced
// under -race) even on single-core machines, where the engine would
// otherwise run its phases inline.

// shardCorpus returns the differential workload set shared by the sharded
// tests.
func shardCorpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ring":      graph.Ring(16),
		"gnp":       graph.Gnp(24, 0.3, 42),
		"gnm-dense": graph.Gnm(32, 128, 7),
		"ba-hubs":   graph.BarabasiAlbert(48, 2, 3),
		"grid":      graph.Grid(6, 7),
	}
}

// reportsEquivalent compares every observable Report field except Wall
// (host-time dependent) and Shards (describes the runtime configuration,
// not the execution). Both reports are finalized by the public accessors.
func reportsEquivalent(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Messages != want.Messages || got.Words != want.Words ||
		got.MaxWords != want.MaxWords || got.CausalDepth != want.CausalDepth ||
		got.VirtualTime != want.VirtualTime || got.Rounds() != want.Rounds() {
		t.Errorf("%s: report scalars differ:\ngot  %+v\nwant %+v", label, got, want)
	}
	if !reflect.DeepEqual(got.ByKind, want.ByKind) {
		t.Errorf("%s: ByKind differ: %v vs %v", label, got.ByKind, want.ByKind)
	}
	if !reflect.DeepEqual(got.ByRound, want.ByRound) {
		t.Errorf("%s: ByRound differ: %v vs %v", label, got.ByRound, want.ByRound)
	}
	if !reflect.DeepEqual(got.ByKindRound, want.ByKindRound) {
		t.Errorf("%s: ByKindRound differ: %v vs %v", label, got.ByKindRound, want.ByKindRound)
	}
	if !reflect.DeepEqual(got.SentBy, want.SentBy) {
		t.Errorf("%s: SentBy differ: %v vs %v", label, got.SentBy, want.SentBy)
	}
}

// TestShardedMatchesEventUnit pins the round path: for every corpus graph,
// shard count and protocol, the parallel sharded schedule must equal the
// single-shard event engine — identical reports and identical final
// protocol states (per-node Recv sequences feed protocol state, so state
// equality is Recv-order equality in disguise).
func TestShardedMatchesEventUnit(t *testing.T) {
	protocols := map[string]Factory{
		"token":   tokenFactory(60),
		"chatter": func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 8} },
	}
	for gname, g := range shardCorpus() {
		c := g.Compile()
		for pname, f := range protocols {
			want, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, f)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 5, 8} {
				t.Run(gname+"/"+pname+"/shards="+itoa(shards), func(t *testing.T) {
					eng := &ShardedEngine{Shards: shards, Workers: shards, Delay: UnitDelay, FIFO: true}
					got, gotRep, err := eng.RunSnapshot(c, f)
					if err != nil {
						t.Fatal(err)
					}
					reportsEquivalent(t, "sharded vs event", gotRep, wantRep)
					if gotRep.Shards != min(shards, c.N()) {
						t.Errorf("merged report claims %d shards, engine ran %d", gotRep.Shards, shards)
					}
					for v, p := range got {
						if !reflect.DeepEqual(protoState(p), protoState(want[v])) {
							t.Errorf("node %d protocol state diverged: %+v vs %+v", v, p, want[v])
						}
					}
				})
			}
		}
	}
}

// protoState extracts the comparable state of the test protocols.
func protoState(p Protocol) any {
	switch v := p.(type) {
	case *tokenNode:
		return v.seen
	case *chatterNode:
		return v.budget
	default:
		return p
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestShardedMatchesReferenceUniform pins the randomised-delay path: the
// sharded wheels popped in global (time, seq) order must reproduce
// ReferenceEngine's delivery trace event by event for identical seeds,
// FIFO on and off.
func TestShardedMatchesReferenceUniform(t *testing.T) {
	g := graph.Gnm(48, 160, 11)
	type step struct {
		t        float64
		from, to NodeID
		kind     string
	}
	for _, fifo := range []bool{true, false} {
		for _, shards := range []int{2, 4, 7} {
			var got, want []step
			sh := &ShardedEngine{Shards: shards, Delay: UniformDelay(0.05), FIFO: fifo, Seed: 9,
				Trace: func(ev TraceEvent) { got = append(got, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()}) }}
			ref := &ReferenceEngine{Delay: UniformDelay(0.05), FIFO: fifo, Seed: 9,
				Trace: func(ev TraceEvent) { want = append(want, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()}) }}
			_, gotRep, err := sh.Run(g, tokenFactory(50))
			if err != nil {
				t.Fatal(err)
			}
			_, wantRep, err := ref.Run(g, tokenFactory(50))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fifo=%v shards=%d: delivery traces diverge (%d vs %d events)", fifo, shards, len(got), len(want))
			}
			reportsEquivalent(t, "sharded-wheel vs reference", gotRep, wantRep)
		}
	}
}

// TestShardedTraceUnit pins the traced round path (the serial schedule):
// same delivery trace as the 1-shard round engine, including Logf notes
// interleaved at their exact positions.
func TestShardedTraceUnit(t *testing.T) {
	g := graph.Gnp(20, 0.3, 3)
	type step struct {
		t        float64
		from, to NodeID
		kind     string // "" for Logf notes, note text in kind
	}
	collect := func(eng Engine) []step {
		var steps []step
		tr := func(ev TraceEvent) {
			if !ev.IsMessage() {
				steps = append(steps, step{ev.Time, 0, ev.To, "note:" + ev.Note})
				return
			}
			steps = append(steps, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()})
		}
		switch e := eng.(type) {
		case *EventEngine:
			e.Trace = tr
		case *ShardedEngine:
			e.Trace = tr
		}
		if _, _, err := eng.Run(g, loggingTokenFactory(40)); err != nil {
			t.Fatal(err)
		}
		return steps
	}
	want := collect(&EventEngine{Delay: UnitDelay, FIFO: true})
	for _, shards := range []int{2, 4} {
		got := collect(&ShardedEngine{Shards: shards, Delay: UnitDelay, FIFO: true})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: traced round schedule diverges (%d vs %d events)", shards, len(got), len(want))
		}
	}
}

// loggingTokenFactory wraps the token protocol with a Logf note per
// handler call, so trace tests cover note ordering too.
func loggingTokenFactory(limit int) Factory {
	inner := tokenFactory(limit)
	return func(id NodeID, nbrs []NodeID) Protocol {
		return &loggingProto{p: inner(id, nbrs)}
	}
}

type loggingProto struct{ p Protocol }

func (l *loggingProto) Init(ctx Context) {
	ctx.Logf("init %d", ctx.ID())
	l.p.Init(ctx)
}

func (l *loggingProto) Recv(ctx Context, from NodeID, m WireMsg) {
	ctx.Logf("recv %d<-%d", ctx.ID(), from)
	l.p.Recv(ctx, from, m)
}

// TestShardedPartitionStrategies pins that the shard assignment never
// changes what a run computes: contiguous and BFS partitions (and the
// engine's own default) produce identical reports and protocol states.
func TestShardedPartitionStrategies(t *testing.T) {
	for gname, g := range shardCorpus() {
		c := g.Compile()
		want, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(60))
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range []*graph.Partition{
			graph.PartitionContiguous(c, 4),
			graph.PartitionBFS(c, 4),
			graph.PartitionBFS(c, 3),
		} {
			if err := part.Validate(c); err != nil {
				t.Fatalf("%s: %v", gname, err)
			}
			eng := &ShardedEngine{Partition: part, Workers: part.Shards(), Delay: UnitDelay, FIFO: true}
			got, gotRep, err := eng.RunSnapshot(c, tokenFactory(60))
			if err != nil {
				t.Fatal(err)
			}
			reportsEquivalent(t, gname+" partitioned", gotRep, wantRep)
			for v, p := range got {
				if !reflect.DeepEqual(protoState(p), protoState(want[v])) {
					t.Errorf("%s: node %d state diverged under partition", gname, v)
				}
			}
		}
		// A partition disagreeing with Shards is rejected, not silently
		// repartitioned.
		bad := &ShardedEngine{Shards: 2, Partition: graph.PartitionContiguous(c, 4), Delay: UnitDelay}
		if _, _, err := bad.RunSnapshot(c, tokenFactory(10)); err == nil || !strings.Contains(err.Error(), "disagrees") {
			t.Errorf("%s: mismatched Shards/Partition accepted: %v", gname, err)
		}
	}
}

// TestShardedReportMerge is the report-merge contract: single-shard and
// multi-shard runs produce identical Report fields (counts by kind and
// round, words, causal depth, completion time) across the corpus and both
// scheduler tiers. Runs execute concurrently so `go test -race` covers the
// merged accounting and the parallel round phases together.
func TestShardedReportMerge(t *testing.T) {
	type cfg struct {
		name  string
		delay DelayFn
		fifo  bool
	}
	configs := []cfg{
		{"unit", UnitDelay, true},
		{"uniform", UniformDelay(0.05), true},
	}
	for gname, g := range shardCorpus() {
		c := g.Compile()
		for _, cf := range configs {
			_, want, err := (&ShardedEngine{Shards: 1, Delay: cf.delay, FIFO: cf.fifo, Seed: 5}).RunSnapshot(c, tokenFactory(40))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, shards := range []int{2, 4, 8} {
				wg.Add(1)
				go func(shards int) {
					defer wg.Done()
					eng := &ShardedEngine{Shards: shards, Workers: shards, Delay: cf.delay, FIFO: cf.fifo, Seed: 5}
					_, got, err := eng.RunSnapshot(c, tokenFactory(40))
					if err != nil {
						t.Errorf("%s/%s shards=%d: %v", gname, cf.name, shards, err)
						return
					}
					reportsEquivalent(t, gname+"/"+cf.name+"/shards="+itoa(shards), got, want)
				}(shards)
			}
			wg.Wait()
		}
	}
}

// TestShardedScratchReuse runs sharded workloads back to back (including
// shape and shard-count changes) so the pooled per-shard slabs are reused;
// stale outbox entries, ranks or parities would break determinism here.
func TestShardedScratchReuse(t *testing.T) {
	g := graph.Gnm(40, 140, 13)
	c := g.Compile()
	var first *Report
	for i := 0; i < 5; i++ {
		eng := &ShardedEngine{Shards: 4, Workers: 2, Delay: UnitDelay, FIFO: true}
		_, rep, err := eng.RunSnapshot(c, tokenFactory(50))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		reportsEquivalent(t, "reuse run "+itoa(i), rep, first)
	}
	// Interleave different shapes and shard counts to force slab resizing.
	if _, _, err := (&ShardedEngine{Shards: 7, Workers: 3, Delay: UnitDelay}).Run(graph.Ring(100), tokenFactory(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (&ShardedEngine{Shards: 2, Workers: 2, Delay: UnitDelay}).Run(graph.Ring(6), tokenFactory(5)); err != nil {
		t.Fatal(err)
	}
	_, rep, err := (&ShardedEngine{Shards: 4, Workers: 2, Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(50))
	if err != nil {
		t.Fatal(err)
	}
	reportsEquivalent(t, "after resize", rep, first)
}

// TestShardedLivelock pins the message cap on the round path: a protocol
// that never quiesces must abort with the livelock error at a window
// barrier instead of running away.
func TestShardedLivelock(t *testing.T) {
	g := graph.Ring(8)
	eng := &ShardedEngine{Shards: 4, Workers: 2, Delay: UnitDelay, MaxMessages: 500}
	_, _, err := eng.Run(g, func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 1 << 30} })
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("want livelock abort, got %v", err)
	}
}

// TestShardedMessageCapEquivalence pins the cap predicate against the
// single-shard engine on a protocol that quiesces: whenever the event
// engine accepts (or rejects) a cap, the sharded engine must agree — in
// particular a run whose final window crosses the cap must still error
// even though nothing is pending afterwards.
func TestShardedMessageCapEquivalence(t *testing.T) {
	c := graph.Gnm(48, 160, 3).Compile()
	flood := func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 4} }
	_, full, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, flood)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int64{full.Messages, full.Messages - 1, full.Messages / 2} {
		_, _, errEvent := (&EventEngine{Delay: UnitDelay, FIFO: true, MaxMessages: cap}).RunSnapshot(c, flood)
		_, _, errShard := (&ShardedEngine{Shards: 4, Workers: 2, Delay: UnitDelay, FIFO: true, MaxMessages: cap}).RunSnapshot(c, flood)
		if (errEvent == nil) != (errShard == nil) {
			t.Fatalf("cap %d (full run %d msgs): event engine err=%v, sharded err=%v",
				cap, full.Messages, errEvent, errShard)
		}
	}
}

// TestShardedProtocolPanic pins panic conversion across worker goroutines:
// a handler panic on any shard surfaces as the engine's error, with the
// workers torn down.
func TestShardedProtocolPanic(t *testing.T) {
	g := graph.Ring(12)
	boom := func(id NodeID, _ []NodeID) Protocol { return &panicNode{at: 5} }
	for _, shards := range []int{2, 4} {
		eng := &ShardedEngine{Shards: shards, Workers: shards, Delay: UnitDelay}
		_, _, err := eng.Run(g, boom)
		if err == nil || !strings.Contains(err.Error(), "protocol panic") {
			t.Fatalf("shards=%d: want protocol panic error, got %v", shards, err)
		}
	}
}

// panicNode forwards a token and panics on the at-th delivery it sees.
type panicNode struct{ at, seen int }

func (p *panicNode) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(ctx.Neighbors()[0], tokenMsg(1))
	}
}

func (p *panicNode) Recv(ctx Context, from NodeID, m WireMsg) {
	p.seen++
	if p.seen >= p.at {
		panic("boom")
	}
	ctx.Send(ctx.Neighbors()[0], tokenMsg(int(m.W[0])+1))
}

// TestMergeParallel pins the exported merge semantics on both finalization
// states: counters sum, time-like measures take the maximum, Shards sums.
func TestMergeParallel(t *testing.T) {
	mk := func(n int64, depth int64, vt float64) *Report {
		r := NewReport()
		for i := int64(0); i < n; i++ {
			r.record(1, tokenMsg(1), depth)
		}
		r.VirtualTime = vt
		return r
	}
	for _, preFinalize := range []bool{false, true} {
		a := mk(3, 4, 2.5)
		b := mk(2, 9, 1.5)
		if preFinalize {
			a.finalize()
			b.finalize()
		}
		a.MergeParallel(b)
		a.finalize()
		if a.Messages != 5 || a.CausalDepth != 9 || a.VirtualTime != 2.5 || a.Shards != 2 {
			t.Fatalf("preFinalize=%v: merged %+v", preFinalize, a)
		}
		if a.ByKind["token"] != 5 || a.SentBy[1] != 5 {
			t.Fatalf("preFinalize=%v: breakdowns %v %v", preFinalize, a.ByKind, a.SentBy)
		}
	}
}

// TestShardedOutboxAllocsFlat pins the flat-slab pooling of the sharded
// round path: after a warm-up run, the per-run allocation count must not
// scale with message volume — the outbox, merge and delivery buffers come
// from the pooled scratch, and the wire records inside them are flat
// values the GC never sees. (Per-run allocations that remain are the
// protocol instances, contexts and report maps, which depend on n and the
// shard count, not on traffic.)
func TestShardedOutboxAllocsFlat(t *testing.T) {
	c := graph.Gnm(64, 256, 11).Compile()
	part := graph.PartitionContiguous(c, 4)
	measure := func(hops int) float64 {
		run := func() {
			eng := &ShardedEngine{Shards: 4, Workers: 1, Partition: part, Delay: UnitDelay, FIFO: true}
			if _, _, err := eng.RunSnapshot(c, tokenFactory(hops)); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pooled slabs for this volume
		return testing.AllocsPerRun(5, run)
	}
	small, large := measure(20), measure(400)
	if large > small*1.25+16 {
		t.Errorf("allocs scale with traffic: %d hops -> %.0f allocs, %d hops -> %.0f allocs",
			20, small, 400, large)
	}
}

// TestShardedParallelScanEquivalence forces the chunk-parallel prefix scan
// (normally gated to wide windows) onto the small corpus: with the
// threshold dropped to one, every barrier runs the scan/shift phases
// across the workers, and results must still equal the 1-shard engine
// exactly.
func TestShardedParallelScanEquivalence(t *testing.T) {
	old := parallelScanMin
	parallelScanMin = 1
	defer func() { parallelScanMin = old }()
	for gname, g := range shardCorpus() {
		c := g.Compile()
		want, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(60))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 8} {
			eng := &ShardedEngine{Shards: shards, Workers: shards, Delay: UnitDelay, FIFO: true}
			got, gotRep, err := eng.RunSnapshot(c, tokenFactory(60))
			if err != nil {
				t.Fatal(err)
			}
			reportsEquivalent(t, gname+"/parallel-scan shards="+itoa(shards), gotRep, wantRep)
			for v, p := range got {
				if !reflect.DeepEqual(protoState(p), protoState(want[v])) {
					t.Errorf("%s shards=%d: node %d state diverged", gname, shards, v)
				}
			}
		}
	}
}

// TestShardedRefinedPartitionEquivalence runs the unit-delay differential
// corpus over PartitionRefined ownerships: the cut-minimizing partition
// must be as trace-exact as the balanced ones at every shard count.
func TestShardedRefinedPartitionEquivalence(t *testing.T) {
	for gname, g := range shardCorpus() {
		c := g.Compile()
		want, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(60))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 5} {
			part, err := graph.PartitionNamed(c, "refined", shards)
			if err != nil {
				t.Fatal(err)
			}
			eng := &ShardedEngine{Partition: part, Workers: shards, Delay: UnitDelay, FIFO: true}
			got, gotRep, err := eng.RunSnapshot(c, tokenFactory(60))
			if err != nil {
				t.Fatal(err)
			}
			reportsEquivalent(t, gname+"/refined shards="+itoa(shards), gotRep, wantRep)
			for v, p := range got {
				if !reflect.DeepEqual(protoState(p), protoState(want[v])) {
					t.Errorf("%s shards=%d: node %d state diverged", gname, shards, v)
				}
			}
		}
	}
}

// TestShardedWheelSpeculativeWindows stresses the speculative per-shard
// window rule of the randomised-delay tier: near-zero delays make almost
// every cross-shard send land inside the window being drained, so the
// limit-tightening path (not just the tournament) decides the order. The
// trace must match ReferenceEngine event for event, FIFO on and off, at
// every shard count and for both partition strategies' traffic shapes.
func TestShardedWheelSpeculativeWindows(t *testing.T) {
	type step struct {
		t       float64
		seqFrom NodeID
		seqTo   NodeID
		kind    string
	}
	graphs := map[string]*graph.Graph{
		"gnm":  graph.Gnm(40, 140, 5),
		"grid": graph.Grid(6, 6),
	}
	delays := map[string]DelayFn{
		"tiny":    UniformDelay(0), // delays collapse toward the Nextafter floor
		"uniform": UniformDelay(0.3),
	}
	for gname, g := range graphs {
		c := g.Compile()
		for dname, d := range delays {
			for _, fifo := range []bool{true, false} {
				var want []step
				ref := &ReferenceEngine{Delay: d, FIFO: fifo, Seed: 21,
					Trace: func(ev TraceEvent) { want = append(want, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()}) }}
				_, wantRep, err := ref.RunSnapshot(c, func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 6} })
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{2, 4, 7} {
					for _, strat := range []string{"contiguous", "refined"} {
						part, err := graph.PartitionNamed(c, strat, shards)
						if err != nil {
							t.Fatal(err)
						}
						var got []step
						sh := &ShardedEngine{Partition: part, Delay: d, FIFO: fifo, Seed: 21,
							Trace: func(ev TraceEvent) { got = append(got, step{ev.Time, ev.From, ev.To, ev.Msg.Kind()}) }}
						_, gotRep, err := sh.RunSnapshot(c, func(id NodeID, _ []NodeID) Protocol { return &chatterNode{budget: 6} })
						if err != nil {
							t.Fatal(err)
						}
						label := gname + "/" + dname + "/" + strat + "/shards=" + itoa(shards)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s fifo=%v: delivery traces diverge (%d vs %d events)", label, fifo, len(got), len(want))
						}
						reportsEquivalent(t, label, gotRep, wantRep)
					}
				}
			}
		}
	}
}
