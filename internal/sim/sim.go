// Package sim simulates the paper's network model: a static asynchronous
// point-to-point network of named processors that communicate only along the
// edges of an undirected graph, with no shared memory, no global clock, and
// event-driven nodes.
//
// Four interchangeable engines execute a Protocol over a graph:
//
//   - EventEngine: a deterministic, seeded discrete-event simulator. With
//     UnitDelay it realises exactly the paper's time-complexity measure (the
//     longest chain of causally dependent messages, each taking one time
//     unit); with randomised delays it acts as an asynchrony adversary while
//     staying reproducible. Scheduling exploits the model's bounded delays
//     (DESIGN.md §6): unit-delay runs execute as synchronous double-buffered
//     rounds, randomised delays go through an O(1) calendar/bucket queue
//     over the (now, now+1] delivery window — pooled scratch and
//     slice-indexed FIFO clamps keep the hot path allocation-free because
//     the experiment harness runs it thousands of times per sweep.
//   - ShardedEngine: the shard-partitioned runtime (DESIGN.md §7) — one
//     run's per-node state plane split across shards per a
//     graph.Partition, executing unit-delay rounds window-parallel on
//     multi-core hosts. Delivery-trace-equivalent to EventEngine at any
//     shard count; only wall-clock time changes.
//   - ReferenceEngine: the straightforward implementation the other
//     engines are differentially tested and benchmarked against; same
//     semantics, none of the optimisations.
//   - AsyncEngine: every node is a goroutine, every link a FIFO mailbox, so
//     message interleaving comes from the Go scheduler — true concurrency
//     for race detection and delivery-order-independence tests.
//
// Messages travel as flat wire records (wire.go): each protocol registers
// an opcode schema and sends WireMsg values — an opcode plus up to a few
// int64 payload words — so engines carry pointer-free delivery slabs, the
// report keys off opcodes, and the in-flight state of a run serialises
// byte-exactly (checkpoint.go, tracebin.go).
//
// All engines produce a Report with message counts (total, by kind, by
// round), message sizes in O(log n)-bit words, the causal depth (asynchronous
// time complexity) and, for the event engine, the virtual completion time.
package sim

import (
	"fmt"
	"slices"

	"mdegst/internal/graph"
)

// NodeID identifies a processor; it is the graph's node identity.
type NodeID = graph.NodeID

// Protocol is the state machine run at one node. Init fires once when the
// node starts (the algorithm "is started independently by all nodes");
// Recv fires for every delivered message — a flat WireMsg the protocol
// decodes at its boundary (see wire.go). Both may send messages through the
// Context. Engines guarantee that Init and all Recv calls for one node are
// serialised.
type Protocol interface {
	Init(ctx Context)
	Recv(ctx Context, from NodeID, m WireMsg)
}

// Context is a node's interface to the network. Sends are restricted to
// graph neighbours, enforcing the point-to-point model.
type Context interface {
	// ID returns this node's identity.
	ID() NodeID
	// Neighbors returns this node's adjacent nodes in ascending order.
	// Nodes know their neighbours' identities, as the paper assumes.
	Neighbors() []NodeID
	// Send queues m for delivery to a neighbouring node. Sending to a
	// non-neighbour panics: it is a protocol bug, not a runtime condition.
	Send(to NodeID, m WireMsg)
	// Logf records a trace note if tracing is enabled, else does nothing.
	Logf(format string, args ...any)
}

// Factory creates the protocol instance for one node. The neighbour list is
// ascending and must not be modified.
type Factory func(id NodeID, neighbors []NodeID) Protocol

// Engine runs a protocol over a graph until global quiescence (no messages
// in flight, all handlers idle) and returns the final protocol instance of
// every node plus the run report.
type Engine interface {
	Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error)
}

// SnapshotEngine is implemented by engines that execute directly over a
// compiled CSR snapshot, addressing all per-node and per-link state by the
// snapshot's dense index. Compiling once and running many times is the hot
// path of the experiment harness: the snapshot is immutable and safe to
// share across runs, trials and goroutines. All engines in this package
// implement it; Engine.Run(g, f) is equivalent to
// RunSnapshot(g.Compile(), f).
type SnapshotEngine interface {
	Engine
	RunSnapshot(c *graph.CSR, f Factory) (map[NodeID]Protocol, *Report, error)
}

// RunCompiled executes f over the snapshot on eng, using the dense fast path
// when the engine supports it and falling back to the snapshot's source
// graph for third-party engines.
func RunCompiled(eng Engine, c *graph.CSR, f Factory) (map[NodeID]Protocol, *Report, error) {
	if se, ok := eng.(SnapshotEngine); ok {
		return se.RunSnapshot(c, f)
	}
	return eng.Run(c.Source(), f)
}

// DenseSnapshotEngine is implemented by engines whose snapshot path can hand
// the final protocol instances back as a dense slice — protos[i] belongs to
// c.Index().ID(i) — skipping the map materialisation of RunSnapshot. The
// engines address all state densely anyway; on a million-node workload the
// identity-keyed result map is the single largest allocation of a quiesced
// run, and consumers like spanning tree extraction immediately index the
// states densely again.
type DenseSnapshotEngine interface {
	SnapshotEngine
	RunSnapshotDense(c *graph.CSR, f Factory) ([]Protocol, *Report, error)
}

// RunCompiledDense executes f over the snapshot on eng and returns the final
// protocol instances dense-indexed. Engines implementing DenseSnapshotEngine
// take the map-free path; anything else runs through RunCompiled and the map
// result is folded down.
func RunCompiledDense(eng Engine, c *graph.CSR, f Factory) ([]Protocol, *Report, error) {
	if de, ok := eng.(DenseSnapshotEngine); ok {
		return de.RunSnapshotDense(c, f)
	}
	byID, rep, err := RunCompiled(eng, c, f)
	if err != nil {
		return nil, nil, err
	}
	idx := c.Index()
	protos := make([]Protocol, c.N())
	for id, p := range byID {
		di, ok := idx.Of(id)
		if !ok {
			return nil, nil, fmt.Errorf("sim: engine returned state for node %d, not in the snapshot", id)
		}
		protos[di] = p
	}
	return protos, rep, nil
}

// denseProtoMap materialises the map view of a dense protocol slice.
func denseProtoMap(ids []NodeID, protos []Protocol) map[NodeID]Protocol {
	m := make(map[NodeID]Protocol, len(protos))
	for i, p := range protos {
		m[ids[i]] = p
	}
	return m
}

// TraceEvent describes one observable simulator step for tools that render
// waves (for example the Figure 2 reproduction).
type TraceEvent struct {
	Time  float64 // virtual delivery time (event engine only)
	Depth int64   // causal depth of the delivery
	From  NodeID
	To    NodeID
	Msg   WireMsg // zero (Msg.IsZero()) for Logf notes
	Note  string
}

// IsMessage reports whether the event is a delivery (as opposed to a Logf
// note).
func (e TraceEvent) IsMessage() bool { return !e.Msg.IsZero() }

func (e TraceEvent) String() string {
	if !e.IsMessage() {
		return fmt.Sprintf("t=%6.2f  %d: %s", e.Time, e.To, e.Note)
	}
	return fmt.Sprintf("t=%6.2f  %d -> %d  %s(%d words)", e.Time, e.From, e.To, e.Msg.Kind(), e.Msg.Words())
}

// checkNeighbor enforces the point-to-point model on every fallback-path
// Send. Neighbour lists are ascending (the CSR invariant), so membership is
// a binary search rather than a linear scan — ReferenceEngine pays this on
// every message, and hub nodes of the heavy-tailed workloads have degrees
// in the hundreds.
func checkNeighbor(neighbors []NodeID, from, to NodeID) {
	if _, ok := slices.BinarySearch(neighbors, to); !ok {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", from, to))
	}
}
