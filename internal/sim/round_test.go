package sim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mdegst/internal/graph"
)

// wrappedUnit is UnitDelay behind an extra closure, so isUnitDelay cannot
// detect it: the run takes the calendar-queue tier with every delay exactly
// one. Comparing it against the plain UnitDelay run pins the two tiers of
// EventEngine against each other.
func wrappedUnit(rng *rand.Rand, from, to NodeID) float64 { return UnitDelay(rng, from, to) }

func TestRoundEngineSelected(t *testing.T) {
	if !isUnitDelay(nil) || !isUnitDelay(UnitDelay) {
		t.Error("nil and UnitDelay must select the round engine")
	}
	if isUnitDelay(wrappedUnit) || isUnitDelay(UniformDelay(0.05)) {
		t.Error("non-UnitDelay functions must take the calendar-queue tier")
	}
}

// TestRoundEngineMatchesWheel runs the same unit-delay workload through the
// round engine (Delay: UnitDelay) and the calendar queue (wrappedUnit) and
// requires identical delivery traces — the strongest equivalence between
// EventEngine's two scheduler tiers.
func TestRoundEngineMatchesWheel(t *testing.T) {
	type step struct {
		t        float64
		depth    int64
		from, to NodeID
		kind     string
	}
	for gname, g := range map[string]*graph.Graph{
		"gnp":  graph.Gnp(24, 0.3, 42),
		"ring": graph.Ring(16),
	} {
		t.Run(gname, func(t *testing.T) {
			collect := func(d DelayFn) []step {
				var steps []step
				eng := &EventEngine{Delay: d, FIFO: true, Trace: func(ev TraceEvent) {
					steps = append(steps, step{ev.Time, ev.Depth, ev.From, ev.To, ev.Msg.Kind()})
				}}
				if _, _, err := eng.Run(g, tokenFactory(50)); err != nil {
					t.Fatal(err)
				}
				return steps
			}
			rounds := collect(UnitDelay)
			wheel := collect(wrappedUnit)
			if !reflect.DeepEqual(rounds, wheel) {
				t.Fatalf("round engine and calendar queue diverge:\nrounds %v\nwheel  %v", rounds, wheel)
			}
		})
	}
}

// TestRoundEngineConcurrent runs many unit-delay executions over one shared
// snapshot from concurrent goroutines. Under -race (CI runs this package
// with the race detector) it proves the pooled round scratch, the shared CSR
// and the per-run reports are properly isolated.
func TestRoundEngineConcurrent(t *testing.T) {
	c := graph.Gnm(64, 192, 3).Compile()
	_, want, err := (&EventEngine{}).RunSnapshot(c, tokenFactory(60))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, rep, err := (&EventEngine{}).RunSnapshot(c, tokenFactory(60))
				if err != nil {
					errs <- err
					return
				}
				if rep.Messages != want.Messages || rep.VirtualTime != want.VirtualTime ||
					rep.CausalDepth != want.CausalDepth || rep.Words != want.Words {
					t.Errorf("concurrent run diverged: %+v vs %+v", rep, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRoundEngineLivelockGuard pins the MaxMessages abort on the round tier
// (the generic guard test runs under UnitDelay too, but this one fixes the
// exact path after tier selection).
func TestRoundEngineLivelockGuard(t *testing.T) {
	g := graph.Ring(4)
	_, _, err := (&EventEngine{Delay: UnitDelay, MaxMessages: 500}).Run(g, func(NodeID, []NodeID) Protocol { return chainReaction{} })
	if err == nil {
		t.Fatal("expected livelock error")
	}
}
