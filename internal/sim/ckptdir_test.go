package sim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mdegst/internal/graph"
)

// memSink collects periodic commits in memory, in commit order.
type memSink struct {
	commits map[int64][]byte
	order   []int64
}

func (s *memSink) Commit(round int64, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	if s.commits == nil {
		s.commits = map[int64][]byte{}
	}
	s.commits[round] = buf.Bytes()
	s.order = append(s.order, round)
	return nil
}

// TestPeriodicCheckpointCadence pins the Every-K mode: the run completes
// normally with an untouched result, commits land at exactly the cadence
// barriers, and each committed file is byte-identical to a freeze-at-that-
// round checkpoint of the same run — on both unit-delay engines.
func TestPeriodicCheckpointCadence(t *testing.T) {
	c := graph.Gnm(24, 72, 5).Compile()
	factory := tokenFactory(30)

	plainProtos, plainRep, err := RunCompiled(&EventEngine{Delay: UnitDelay, FIFO: true}, c, factory)
	if err != nil {
		t.Fatal(err)
	}
	finalRound := int64(plainRep.VirtualTime)
	const every = int64(2)
	if finalRound < 2*every {
		t.Fatalf("workload too short for the cadence: %v rounds", finalRound)
	}

	freeze := func(round int64) []byte {
		var buf bytes.Buffer
		eng := &EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: &CheckpointSpec{Round: round, W: &buf}}
		if _, _, err := RunCompiled(eng, c, factory); !errors.Is(err, ErrCheckpointed) {
			t.Fatalf("freeze r=%d: err = %v, want ErrCheckpointed", round, err)
		}
		return buf.Bytes()
	}

	engines := []struct {
		name string
		mk   func(spec *CheckpointSpec) Engine
	}{
		{"event", func(spec *CheckpointSpec) Engine {
			return &EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: spec}
		}},
		{"sharded-3", func(spec *CheckpointSpec) Engine {
			return &ShardedEngine{Shards: 3, Delay: UnitDelay, FIFO: true, Checkpoint: spec}
		}},
	}
	for _, eng := range engines {
		sink := &memSink{}
		protos, rep, err := RunCompiled(eng.mk(&CheckpointSpec{Every: every, Sink: sink}), c, factory)
		if err != nil {
			t.Fatalf("%s: periodic run failed: %v", eng.name, err)
		}
		assertReportsEqual(t, eng.name+" periodic", rep, plainRep)
		for id, p := range protos {
			if p.(*tokenNode).seen != plainProtos[id].(*tokenNode).seen {
				t.Fatalf("%s: node %d state diverged after periodic run", eng.name, id)
			}
		}
		var want []int64
		for r := every; r <= finalRound; r += every {
			want = append(want, r)
		}
		if fmt.Sprint(sink.order) != fmt.Sprint(want) {
			t.Fatalf("%s: committed rounds %v, want %v", eng.name, sink.order, want)
		}
		for _, r := range sink.order {
			if !bytes.Equal(sink.commits[r], freeze(r)) {
				t.Fatalf("%s: periodic commit at round %d differs from the freeze-mode file", eng.name, r)
			}
		}
	}
}

// TestPeriodicResumeEquivalence resumes from a mid-run periodic commit and
// requires the continuation to finish with the full run's result and to
// re-commit the remaining cadence barriers byte-identically — the property
// the supervisor's recovery leans on.
func TestPeriodicResumeEquivalence(t *testing.T) {
	c := graph.Gnm(24, 72, 5).Compile()
	factory := tokenFactory(30)
	const every = int64(2)

	full := &memSink{}
	fullProtos, fullRep, err := RunCompiled(
		&EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: &CheckpointSpec{Every: every, Sink: full}}, c, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.order) < 2 {
		t.Fatalf("workload too short: commits at %v", full.order)
	}

	for _, from := range full.order[:len(full.order)-1] {
		ck, err := ReadCheckpoint(bytes.NewReader(full.commits[from]))
		if err != nil {
			t.Fatalf("read commit r=%d: %v", from, err)
		}
		rest := &memSink{}
		eng := &EventEngine{Delay: UnitDelay, FIFO: true, Checkpoint: &CheckpointSpec{Every: every, Sink: rest}}
		protos, rep, err := eng.ResumeSnapshot(c, factory, ck)
		if err != nil {
			t.Fatalf("resume from r=%d: %v", from, err)
		}
		assertReportsEqual(t, fmt.Sprintf("resume from r=%d", from), rep, fullRep)
		for id, p := range protos {
			if p.(*tokenNode).seen != fullProtos[id].(*tokenNode).seen {
				t.Fatalf("resume from r=%d: node %d state diverged", from, id)
			}
		}
		for _, r := range rest.order {
			if r <= from {
				t.Fatalf("resume from r=%d: re-committed barrier %d", from, r)
			}
			if !bytes.Equal(rest.commits[r], full.commits[r]) {
				t.Fatalf("resume from r=%d: commit at %d differs from the uninterrupted run's", from, r)
			}
		}
		if want := len(full.order) - int(from/every); len(rest.order) != want {
			t.Fatalf("resume from r=%d: %d commits, want %d", from, len(rest.order), want)
		}
	}
}

// TestCheckpointDir pins the durable sink: atomic visible-or-absent
// commits, Latest on the newest round, retention of the newest Keep files,
// and stray .tmp leftovers never mistaken for recovery points.
func TestCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	d := &CheckpointDir{Dir: dir, Keep: 2}

	if _, _, ok, err := d.Latest(); err != nil || ok {
		t.Fatalf("Latest on empty dir: ok=%v err=%v", ok, err)
	}

	payload := func(r int64) []byte { return []byte(fmt.Sprintf("checkpoint-%d", r)) }
	for _, r := range []int64{2, 4, 6} {
		if err := d.Commit(r, func(w io.Writer) error { _, err := w.Write(payload(r)); return err }); err != nil {
			t.Fatalf("commit r=%d: %v", r, err)
		}
	}
	// Keep=2 retains only the newest two.
	rounds, err := d.Rounds()
	if err != nil || fmt.Sprint(rounds) != "[4 6]" {
		t.Fatalf("Rounds = %v, %v; want [4 6]", rounds, err)
	}
	path, round, ok, err := d.Latest()
	if err != nil || !ok || round != 6 {
		t.Fatalf("Latest = %q, %d, %v, %v", path, round, ok, err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, payload(6)) {
		t.Fatalf("latest file content %q, %v", got, err)
	}

	// A failed commit leaves no file, temporary or final.
	boom := errors.New("boom")
	if err := d.Commit(8, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failing commit: err = %v", err)
	}
	// A stray .tmp (simulating a crash mid-commit) is not a recovery point.
	if err := os.WriteFile(filepath.Join(dir, CheckpointFileName(10)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if rounds, err = d.Rounds(); err != nil || fmt.Sprint(rounds) != "[4 6]" {
		t.Fatalf("Rounds after failure+tmp = %v, %v (dir: %v)", rounds, err, names)
	}
	if _, round, ok, err = d.Latest(); err != nil || !ok || round != 6 {
		t.Fatalf("Latest after failure+tmp = %d, %v, %v", round, ok, err)
	}
}
