package sim

import (
	"testing"
	"time"

	"mdegst/internal/graph"
)

// TestAsyncJitterPreservesFIFO exercises the per-link forwarder path: with
// jitter enabled, per-link order must still hold and the run must quiesce.
func TestAsyncJitterPreservesFIFO(t *testing.T) {
	g := graph.Path(2)
	const count = 32
	factory := func(id NodeID, _ []NodeID) Protocol { return &seqSender{id: id, count: count} }
	eng := &AsyncEngine{Seed: 7, Jitter: 200 * time.Microsecond}
	protos, rep, err := eng.Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != count {
		t.Errorf("messages = %d, want %d", rep.Messages, count)
	}
	got := protos[1].(*seqSender).got
	if len(got) != count {
		t.Fatalf("received %d of %d", len(got), count)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("link FIFO violated under jitter at %d: got %d", i, v)
		}
	}
}

// TestAsyncJitterFullProtocol runs the flooding benchmark protocol under
// jitter on a non-trivial graph.
func TestAsyncJitterFullProtocol(t *testing.T) {
	g := graph.Gnp(20, 0.3, 5)
	eng := &AsyncEngine{Seed: 3, Jitter: 100 * time.Microsecond}
	protos, rep, err := eng.Run(g, benchFactory)
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range protos {
		if !p.(*floodBench).seen {
			t.Errorf("node %d never reached", id)
		}
	}
	if rep.Messages == 0 {
		t.Error("no messages")
	}
}
