package sim

import (
	"reflect"
	"runtime"
	"testing"

	"mdegst/internal/graph"
)

// TestShardedSteadyStateZeroAlloc pins the PR 9 arena contract: once the
// pooled slabs are warm, the sharded round loop allocates nothing per
// round — staging streams, inbox arenas, the count plane and the offset
// slab are all reused in place — so total allocations per run must not
// grow with the round count. The token walk runs one delivery per round,
// making "20x the rounds" a pure steady-state magnifier: any per-round or
// per-window allocation would show up 20-fold.
func TestShardedSteadyStateZeroAlloc(t *testing.T) {
	c := graph.Gnm(64, 256, 11).Compile()
	part := graph.PartitionContiguous(c, 4)
	for _, workers := range []int{1, 4} {
		measure := func(hops int) float64 {
			run := func() {
				eng := &ShardedEngine{Shards: 4, Workers: workers, Partition: part, Delay: UnitDelay, FIFO: true}
				if _, _, err := eng.RunSnapshot(c, tokenFactory(hops)); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the pooled slabs for this volume
			return testing.AllocsPerRun(10, run)
		}
		short, long := measure(40), measure(800)
		// The slack absorbs pool entries stolen by a GC mid-measure; the
		// steady state itself is exactly zero allocations per round.
		if long > short+16 {
			t.Errorf("workers=%d: allocs grew with round count: 40 hops -> %.0f, 800 hops -> %.0f",
				workers, short, long)
		}
	}
}

// TestShardedShardCountAllocBudget bounds how per-run allocations grow
// with the shard count: going 2 -> 8 shards may only add the fixed
// per-shard setup (a report, stage stream headers, worker bookkeeping),
// never anything traffic-proportional. The two measurements run the same
// workload, so any super-constant per-shard growth is a delivery-plane
// regression.
func TestShardedShardCountAllocBudget(t *testing.T) {
	c := graph.Gnm(64, 256, 11).Compile()
	measure := func(shards int) float64 {
		part := graph.PartitionContiguous(c, shards)
		run := func() {
			eng := &ShardedEngine{Shards: shards, Workers: shards, Partition: part, Delay: UnitDelay, FIFO: true}
			if _, _, err := eng.RunSnapshot(c, tokenFactory(400)); err != nil {
				t.Fatal(err)
			}
		}
		run()
		return testing.AllocsPerRun(10, run)
	}
	small, large := measure(2), measure(8)
	// 6 extra shards x a generous 24-alloc setup budget each (report maps,
	// goroutine starts), plus the usual pool-theft slack.
	if large > small+6*24+16 {
		t.Errorf("allocs grew past the per-shard setup budget: 2 shards -> %.0f, 8 shards -> %.0f", small, large)
	}
}

// TestShardedOversubscribedSpinBarrier runs the spin-then-park barrier
// with far more workers than GOMAXPROCS: every phase forces workers
// through the yield/park paths (spinning alone would livelock a 2-proc
// schedule with 16 runnable workers), and the results must stay
// bit-identical to the event engine. The 'Shard' race leg in CI runs this
// under the race detector, which is what actually checks the barrier's
// publication ordering.
func TestShardedOversubscribedSpinBarrier(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for gname, g := range shardCorpus() {
		c := g.Compile()
		want, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(60))
		if err != nil {
			t.Fatal(err)
		}
		eng := &ShardedEngine{Shards: 16, Workers: 16, Delay: UnitDelay, FIFO: true}
		got, gotRep, err := eng.RunSnapshot(c, tokenFactory(60))
		if err != nil {
			t.Fatal(err)
		}
		reportsEquivalent(t, gname+"/oversubscribed", gotRep, wantRep)
		for v, p := range got {
			if !reflect.DeepEqual(protoState(p), protoState(want[v])) {
				t.Errorf("%s: node %d state diverged under oversubscription", gname, v)
			}
		}
	}
}

// TestShardedPhaseStats exercises the armed instrumentation: the phase
// walls must cover every pipeline stage, the round counter must match the
// run's virtual time, and arming stats must not perturb the execution
// (same report as the event engine).
func TestShardedPhaseStats(t *testing.T) {
	c := graph.Grid(12, 12).Compile()
	_, wantRep, err := (&EventEngine{Delay: UnitDelay, FIFO: true}).RunSnapshot(c, tokenFactory(80))
	if err != nil {
		t.Fatal(err)
	}
	st := &PhaseStats{}
	eng := &ShardedEngine{Shards: 4, Workers: 4, Delay: UnitDelay, FIFO: true, Stats: st}
	_, gotRep, err := eng.RunSnapshot(c, tokenFactory(80))
	if err != nil {
		t.Fatal(err)
	}
	reportsEquivalent(t, "stats-armed", gotRep, wantRep)
	if st.Rounds != int64(gotRep.VirtualTime) {
		t.Errorf("stats counted %d rounds, report ran %.0f", st.Rounds, gotRep.VirtualTime)
	}
	if st.Init <= 0 || st.Deliver <= 0 || st.Scan <= 0 {
		t.Errorf("phase walls missing: init=%v deliver=%v scan=%v scatter=%v", st.Init, st.Deliver, st.Scan, st.Scatter)
	}
	if st.WorkerBusy <= 0 {
		t.Errorf("worker busy time not folded: %v", st.WorkerBusy)
	}
	// A second armed run accumulates on the same instance.
	before := st.Rounds
	if _, _, err := eng.RunSnapshot(c, tokenFactory(80)); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2*before {
		t.Errorf("stats did not accumulate: %d rounds after two identical runs (first run: %d)", st.Rounds, before)
	}
}
