package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"mdegst/internal/graph"
)

// ReferenceEngine is the straightforward discrete-event simulator that
// EventEngine started from: container/heap over boxed events, a map keyed by
// directed node pairs for the FIFO clamp, and fresh state every run. Its
// per-node state (contexts, protocol instances) is addressed by the
// snapshot's dense index like every other engine, but each delivery still
// pays the NodeID->dense map lookup that the fast path precomputes into the
// event. It is kept as the delivery-order oracle for EventEngine's optimised
// fast path — tests assert the two produce identical reports and trees for
// identical seeds — and as the baseline the allocation benchmarks measure
// the fast path against. Do not use it in the harness hot path.
type ReferenceEngine struct {
	// Seed initialises the delay RNG.
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order under random delays.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means DefaultMaxMessages).
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note.
	Trace func(TraceEvent)
}

type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type refCtx struct {
	run       *refRun
	id        NodeID
	neighbors []NodeID
	now       float64
	depth     int64
}

func (c *refCtx) ID() NodeID          { return c.id }
func (c *refCtx) Neighbors() []NodeID { return c.neighbors }

func (c *refCtx) Send(to NodeID, m WireMsg) {
	checkNeighbor(c.neighbors, c.id, to)
	c.run.send(c, to, m)
}

func (c *refCtx) Logf(format string, args ...any) {
	if c.run.trace != nil {
		c.run.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

type refRun struct {
	rng      *rand.Rand
	delay    DelayFn
	fifo     bool
	trace    func(TraceEvent)
	queue    refHeap
	seq      int64
	lastLink map[[2]NodeID]float64
	report   *Report
}

func (rr *refRun) send(c *refCtx, to NodeID, m WireMsg) {
	d := rr.delay(rr.rng, c.id, to)
	checkDelay(d, c.id, to)
	t := c.now + d
	if rr.fifo {
		link := [2]NodeID{c.id, to}
		if last := rr.lastLink[link]; t < last {
			t = last
		}
		rr.lastLink[link] = t
	}
	rr.seq++
	heap.Push(&rr.queue, event{t: t, seq: rr.seq, depth: c.depth + 1, from: c.id, to: to, msg: m})
}

// Run compiles g and executes the protocol over the snapshot.
func (e *ReferenceEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence, mirroring
// EventEngine.RunSnapshot with the unoptimised data structures.
func (e *ReferenceEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	delay := e.Delay
	if delay == nil {
		delay = UnitDelay
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	rr := &refRun{
		rng:      rand.New(rand.NewSource(e.Seed)),
		delay:    delay,
		fifo:     e.FIFO,
		trace:    e.Trace,
		lastLink: make(map[[2]NodeID]float64),
		report:   newReport(),
	}
	n := c.N()
	idx := c.Index()
	ids := idx.IDs()
	ctxs := make([]refCtx, n)
	plist := make([]Protocol, n)
	for i := 0; i < n; i++ {
		ctxs[i] = refCtx{run: rr, id: ids[i], neighbors: c.NeighborIDs(int32(i))}
		plist[i] = f(ids[i], ctxs[i].neighbors)
	}
	for i := 0; i < n; i++ {
		plist[i].Init(&ctxs[i])
	}
	for rr.queue.Len() > 0 {
		ev := heap.Pop(&rr.queue).(event)
		if rr.report.Messages >= maxMsgs {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		di := idx.MustOf(ev.to)
		ctx := &ctxs[di]
		ctx.now = ev.t
		ctx.depth = ev.depth
		rr.report.record(ev.from, ev.msg, ev.depth)
		if ev.t > rr.report.VirtualTime {
			rr.report.VirtualTime = ev.t
		}
		if rr.trace != nil {
			rr.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
		}
		plist[di].Recv(ctx, ev.from, ev.msg)
	}
	rr.report.finalize()
	rr.report.Wall = time.Since(start)
	protos = make(map[NodeID]Protocol, n)
	for i, p := range plist {
		protos[ids[i]] = p
	}
	return protos, rr.report, nil
}

var _ SnapshotEngine = (*ReferenceEngine)(nil)
