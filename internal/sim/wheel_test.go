package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Property and fuzz coverage for the calendar wheel's bucket-boundary
// arithmetic. The adversarial delays are the exact edges of the bucket
// geometry: the maximal legal delay 1.0 (lands exactly wheelSpan buckets
// ahead), the minimal positive float64 above zero (same-bucket insertion
// into the undrained tail), and delays sitting exactly on (or one ulp off)
// a bucket edge k/wheelSpan, where floor(t·wheelSpan) flips. Every schedule
// must drain in exact (time, sequence) order with consistent size and
// occupancy bookkeeping.

// boundaryDelays are the adversarial delay values in (0, 1].
func boundaryDelays() []float64 {
	ulp := math.Nextafter(0, 1) // smallest positive delay
	ds := []float64{1, ulp, 1 - 1e-16}
	for _, k := range []int{1, 2, 3, wheelSpan / 2, wheelSpan - 1} {
		edge := float64(k) / wheelSpan
		ds = append(ds, edge, math.Nextafter(edge, 0), math.Nextafter(edge, 1))
	}
	return ds
}

// checkWheelInvariants asserts the bookkeeping the pop path relies on:
// size equals the events actually stored, and every non-current occupied
// ring slot has its occupancy bit set and vice versa (the current slot may
// transiently keep its bit while fully drained, until the next rotation).
func checkWheelInvariants(t *testing.T, q *bucketQueue) {
	t.Helper()
	stored := 0
	curSlot := q.cur & wheelMask
	for slot := int64(0); slot < wheelRing; slot++ {
		n := len(q.buckets[slot])
		if slot == curSlot {
			n -= q.pos
		}
		stored += n
		bit := q.occupied[slot>>6]&(1<<(slot&63)) != 0
		if slot == curSlot {
			continue
		}
		if bit != (n > 0) {
			t.Fatalf("occupancy bit for slot %d is %v with %d events", slot, bit, n)
		}
	}
	if stored != q.size {
		t.Fatalf("size %d but %d events stored", q.size, stored)
	}
}

// drainSorted pops everything, asserting exact (time, sequence) order and
// clean end-state bookkeeping.
func drainSorted(t *testing.T, q *bucketQueue, want int) {
	t.Helper()
	var last event
	for i := 0; i < want; i++ {
		if q.empty() {
			t.Fatalf("queue empty after %d of %d pops", i, want)
		}
		e := q.pop()
		if i > 0 && e.before(last) {
			t.Fatalf("pop %d out of order: (%v, %d) after (%v, %d)", i, e.t, e.seq, last.t, last.seq)
		}
		last = e
		checkWheelInvariants(t, q)
	}
	if !q.empty() || q.size != 0 {
		t.Fatalf("queue not empty after draining: size %d", q.size)
	}
}

// TestWheelBucketBoundaries schedules cascades whose delays are exactly the
// bucket-edge values: each popped event reschedules follow-ups at every
// boundary delay, so same-bucket tail inserts, exact-edge lands and
// maximal-delay wraps all occur from a moving "now".
func TestWheelBucketBoundaries(t *testing.T) {
	delays := boundaryDelays()
	var q bucketQueue
	seq := int64(0)
	push := func(now, d float64) {
		seq++
		q.push(event{t: now + d, seq: seq})
	}
	for _, d := range delays {
		push(0, d)
	}
	checkWheelInvariants(t, &q)
	popped := 0
	var last event
	for !q.empty() {
		e := q.pop()
		if popped > 0 && e.before(last) {
			t.Fatalf("pop %d out of order: (%v, %d) after (%v, %d)", popped, e.t, e.seq, last.t, last.seq)
		}
		last = e
		popped++
		checkWheelInvariants(t, &q)
		// Cascade two generations deep so edges compound with edges.
		if e.seq <= int64(2*len(delays)) {
			for _, d := range delays {
				push(e.t, d)
			}
		}
	}
	if q.size != 0 {
		t.Fatalf("size %d after drain", q.size)
	}
	// The wheel must be reusable after reset. Fresh pushes are relative to
	// time zero again — the engine contract keeps every push within one
	// unit of the event being processed, which reset rewinds to 0.
	q.reset()
	for _, d := range delays {
		push(0, d)
	}
	drainSorted(t, &q, len(delays))
}

// TestWheelResetUnpins pins reset's cleanup contract: a part-drained wheel
// returns to its initial state with no events stored and a clean bitmap.
func TestWheelResetUnpins(t *testing.T) {
	var q bucketQueue
	for i := 0; i < 100; i++ {
		q.push(event{t: float64(i%7)/wheelSpan + 0.001, seq: int64(i)})
	}
	for i := 0; i < 40; i++ {
		q.pop()
	}
	q.reset()
	if q.size != 0 || q.pos != 0 || q.cur != 0 {
		t.Fatalf("reset left size=%d pos=%d cur=%d", q.size, q.pos, q.cur)
	}
	for slot := range q.buckets {
		if len(q.buckets[slot]) != 0 {
			t.Fatalf("reset left %d events in slot %d", len(q.buckets[slot]), slot)
		}
	}
	for w, word := range q.occupied {
		if word != 0 {
			t.Fatalf("reset left occupancy word %d = %x", w, word)
		}
	}
	checkWheelInvariants(t, &q)
}

// TestWheelBoundaryDelaysEngine runs the boundary delays through the full
// engine differentially: a DelayFn cycling the adversarial values must
// produce the identical delivery schedule on the calendar wheel and on
// ReferenceEngine's binary heap.
func TestWheelBoundaryDelaysEngine(t *testing.T) {
	delays := boundaryDelays()
	mkDelay := func() DelayFn {
		i := 0
		return func(*rand.Rand, NodeID, NodeID) float64 {
			d := delays[i%len(delays)]
			i++
			return d
		}
	}
	g := shardCorpus()["gnm-dense"]
	fast := &EventEngine{Delay: mkDelay(), FIFO: true}
	ref := &ReferenceEngine{Delay: mkDelay(), FIFO: true}
	fp, frep, err := fast.Run(g, tokenFactory(60))
	if err != nil {
		t.Fatal(err)
	}
	rp, rrep, err := ref.Run(g, tokenFactory(60))
	if err != nil {
		t.Fatal(err)
	}
	reportsEquivalent(t, "boundary delays", frep, rrep)
	for v, p := range fp {
		if p.(*tokenNode).seen != rp[v].(*tokenNode).seen {
			t.Errorf("node %d diverged under boundary delays", v)
		}
	}
}

// FuzzWheelBoundaries drives the wheel with fuzzer-chosen interleavings of
// pushes (delays drawn from the boundary set plus raw fuzzed fractions)
// and pops, checking every pop against a sorted reference of everything
// pushed and the bookkeeping invariants after each operation.
func FuzzWheelBoundaries(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xff, 3, 4, 0x80, 5})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{7, 7, 7, 0x90, 7, 7, 0x90, 0x90})
	f.Add([]byte{1, 0x88, 2, 0x88, 3, 0x88})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		delays := boundaryDelays()
		var q bucketQueue
		var pushed []event
		var seq int64
		now := 0.0 // time of the last pop; new delays are relative to it
		drained := 0
		var last event
		for _, op := range ops {
			if op&0x80 != 0 && !q.empty() {
				// Pop.
				e := q.pop()
				if drained > 0 && e.before(last) {
					t.Fatalf("pop out of order: (%v, %d) after (%v, %d)", e.t, e.seq, last.t, last.seq)
				}
				last = e
				now = e.t
				drained++
			} else {
				// Push with a delay from the boundary set, or a raw
				// fraction derived from the byte (always in (0, 1]).
				var d float64
				if int(op&0x3f) < len(delays) {
					d = delays[op&0x3f]
				} else {
					d = float64(op&0x3f+1) / 64
				}
				seq++
				ev := event{t: now + d, seq: seq}
				q.push(ev)
				pushed = append(pushed, ev)
			}
			checkWheelInvariants(t, &q)
		}
		// Drain the remainder and check the complete pop sequence equals
		// the sorted reference of everything pushed.
		var got []event
		for !q.empty() {
			e := q.pop()
			if drained+len(got) > 0 && e.before(last) {
				t.Fatalf("drain out of order: (%v, %d) after (%v, %d)", e.t, e.seq, last.t, last.seq)
			}
			last = e
			got = append(got, e)
		}
		if drained+len(got) != len(pushed) {
			t.Fatalf("pushed %d events, popped %d", len(pushed), drained+len(got))
		}
		sort.Slice(pushed, func(i, j int) bool { return pushed[i].before(pushed[j]) })
		for i, e := range got {
			want := pushed[drained+i]
			if e.t != want.t || e.seq != want.seq {
				t.Fatalf("drain event %d: got (%v, %d), want (%v, %d)", i, e.t, e.seq, want.t, want.seq)
			}
		}
	})
}
