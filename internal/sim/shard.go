package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"mdegst/internal/graph"
)

// The shard-partitioned runtime (DESIGN.md §7). ShardedEngine splits the
// per-node state plane of a run — protocol instances, contexts, FIFO clamp
// intervals, delivery queues — into shards that each own one slice of the
// snapshot's dense node range, per a graph.Partition. The point is
// multi-core execution of a *single* run (the experiment harness already
// parallelises across trials): under the paper's unit-delay model the
// (0, 1] delay bound is a conservative lookahead-1 window, so all
// deliveries of one round are mutually independent and shards can process
// their own nodes concurrently, exchanging cross-shard messages through
// per-(src, dst) outboxes that are merged in a canonical order at the
// round barrier.
//
// Determinism is exact, not statistical: an N-shard run is
// delivery-trace-equivalent to the 1-shard engine (EventEngine) and to
// ReferenceEngine — same per-node Recv sequences, same report, same final
// protocol states — because the canonical merge order reconstructs the
// single-engine global delivery order from data that does not depend on
// goroutine scheduling:
//
//   - Every delivery of round r has a global rank: its position in the
//     round's delivery list as the 1-shard engine would order it.
//   - A message is keyed (parent rank, send position): the rank of the
//     delivery whose handler sent it, and the index of the send within
//     that handler call. The 1-shard engine appends sends in exactly
//     (rank, position) order, so sorting round r+1 by key *is* the
//     1-shard order.
//   - Ranks for the next round come from a prefix sum over per-delivery
//     send counts (each shard writes the counts of its own deliveries
//     into a shared slice at disjoint indices), computed once per round
//     at the barrier.
//
// Under randomised delays there is no positive lower bound on a delay, so
// the model offers no lookahead and window-parallel execution cannot be
// conservative. The sharded wheel path therefore keeps the partitioned
// ownership structure — per-shard calendar wheels, clamp slabs and reports
// — but executes deliveries in the global (time, sequence) order by
// popping the minimum across the shard wheels; exact, not parallel.

// ShardedEngine executes a protocol over a snapshot with its state plane
// partitioned into shards. The zero value of every field is usable;
// Shards <= 1 degenerates to EventEngine (the 1-shard engine the N-shard
// runs are trace-equivalent to).
type ShardedEngine struct {
	// Shards is the number of state shards. It is clamped to the node
	// count; values <= 1 run the single-shard event engine.
	Shards int
	// Workers bounds how many OS-level workers drive the shard phases of
	// the unit-delay round path; 0 means min(Shards, GOMAXPROCS). On a
	// single-core machine the phases run inline on one goroutine — same
	// results by construction, none of the handoff cost.
	Workers int
	// Partition, when non-nil, fixes the shard assignment (it must
	// Validate against the snapshot, and Shards, if set, must agree with
	// it). Nil means a contiguous partition computed per run; precompute
	// with graph.PartitionContiguous or graph.PartitionBFS to share the
	// assignment across runs.
	Partition *graph.Partition
	// Seed initialises the delay RNG (randomised-delay path only).
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order under random delays.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages). The sharded round path checks the cap at round
	// barriers, so the abort lands at the end of the window that crossed
	// the cap rather than mid-round.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note in the
	// exact global delivery order. Tracing forces the round path through
	// its serial schedule (one goroutine walking the shards' merged
	// streams in rank order) so events fire at their exact global
	// positions.
	Trace func(TraceEvent)
	// Checkpoint, when non-nil, arms barrier checkpointing exactly as on
	// EventEngine: the sharded round path stops at the barrier after
	// Checkpoint.Round and writes the frozen run (the checkpoint is
	// engine-agnostic — a sharded checkpoint resumes on the unsharded
	// engine and vice versa).
	Checkpoint *CheckpointSpec
}

// shardDelivery is one queued message of the sharded round path: a flat
// record (rank, endpoints, WireMsg) with no pointers, so outboxes are plain
// slabs — refilled by append, consumed by indexed reads, merged by rank
// comparisons, and invisible to the GC.
//
// rank is materialised in two steps. When the send is appended, rank holds
// the global rank of the *sending* delivery (its dense node index during
// Init) and pos the send's index within that handler call — the canonical
// (parent rank, position) key. After the window barrier prefix-sums the
// send counts, the rank phase rewrites rank in place to the delivery's own
// global rank (off[parent] + pos). From then on ordering, delivery
// accounting and checkpointing all read the single int64 — no per-message
// offset-table lookup, no two-field key compare.
type shardDelivery struct {
	rank      int64
	pos       int32 // index of this send within the sending handler call (dead after the rank phase)
	fromDense int32
	toLocal   int32 // index of the destination in its owner shard's node list
	from      NodeID
	msg       WireMsg
}

// shardRoundCtx is the Context handed to protocols on the sharded round
// path. rank/sends mirror roundCtx's implicit position bookkeeping: rank is
// the global rank of the delivery being processed (the dense node index
// while Init runs), sends counts the handler's sends so far.
type shardRoundCtx struct {
	shard     *roundShard
	id        NodeID
	dense     int32
	neighbors []NodeID
	nbrDense  []int32
	rank      int64
	sends     int32
}

func (c *shardRoundCtx) ID() NodeID          { return c.id }
func (c *shardRoundCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardRoundCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	sh := c.shard
	r := sh.run
	toDense := c.nbrDense[ni]
	loc := r.loc[toDense] // owner and local index in one load
	r.sent[c.dense]++     // disjoint across shards: only c's owner writes c.dense
	sh.out[r.writeParity][int32(loc>>32)] = append(sh.out[r.writeParity][int32(loc>>32)], shardDelivery{
		rank:      c.rank,
		pos:       c.sends,
		fromDense: c.dense,
		toLocal:   int32(loc),
		from:      c.id,
		msg:       m,
	})
	c.sends++
}

func (c *shardRoundCtx) Logf(format string, args ...any) {
	// Non-nil trace implies the serial schedule, so emitting inline keeps
	// the exact global order.
	if r := c.shard.run; r.trace != nil {
		r.trace(TraceEvent{Time: float64(r.round), Depth: r.round, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// roundShard owns one slice of the node range on the unit-delay path: the
// protocol instances and contexts of its nodes, its own report, its merged
// current-round delivery stream, and one outbox per destination shard
// (double-buffered by round parity, so a shard can refill outboxes while
// destinations still read the previous round's).
type roundShard struct {
	run    *shardedRoundRun
	index  int32
	nodes  []int32 // dense indices owned, ascending
	ctxs   []shardRoundCtx
	protos []Protocol
	report *Report
	out    [2][][]shardDelivery // [parity][destination shard]
	cur    []shardDelivery      // merged deliveries of the round in progress
	heads  []int                // merge cursors, one per source shard
	// Pad shards apart: each is written by exactly one worker per phase
	// (append cursors, report counters), and without padding two shards'
	// hot words can share a cache line and ping-pong between cores.
	_ [64]byte
}

// shardedRoundRun is the state shared by all shards of one round-path run.
// Everything here is either immutable during a phase (owner/local/ids,
// off, parities, round) or written at disjoint indices (cnt), so the
// parallel phases need no locks; the per-phase barrier publishes updates.
type shardedRoundRun struct {
	shards      []roundShard
	owner       []int32 // dense node -> shard
	local       []int32 // dense node -> index in its shard's node list
	loc         []int64 // dense node -> owner<<32 | local, one load on the send path
	sent        []int64 // dense node -> messages sent, written only by the owner shard
	ids         []NodeID
	trace       func(TraceEvent)
	round       int64
	readParity  int
	writeParity int
	workers     int
	// off maps a queued delivery's (parent rank, pos) key to its global
	// rank: rank = off[parent] + pos. cnt collects the send count of each
	// current-round delivery at its rank; the barrier prefix-sums it into
	// the next window's off, and the rank phase materialises the result
	// into the outbox records so off is never read per message.
	off []int64
	cnt []int64
	// chunkTot holds per-worker chunk totals of the parallel prefix scan.
	chunkTot []int64
}

// gather merges the S source outboxes destined to this shard into cur,
// ordered by materialised global rank — the canonical cross-shard merge
// order. Each source list is already rank-sorted (sources process their
// deliveries in rank order and append; the rank phase is monotone), so
// this is an S-way sorted merge of flat records on one int64.
func (sh *roundShard) gather(parity int) {
	r := sh.run
	srcs := r.shards
	sh.cur = sh.cur[:0]
	for s := range srcs {
		sh.heads[s] = 0
	}
	for {
		best := -1
		bestRank := int64(0)
		for s := range srcs {
			q := srcs[s].out[parity][sh.index]
			h := sh.heads[s]
			if h >= len(q) {
				continue
			}
			if best < 0 || q[h].rank < bestRank {
				best, bestRank = s, q[h].rank
			}
		}
		if best < 0 {
			return
		}
		q := srcs[best].out[parity][sh.index]
		sh.cur = append(sh.cur, q[sh.heads[best]])
		sh.heads[best]++
	}
}

// resetOut empties this shard's write-parity outboxes for refill. The
// previous contents were consumed (and zeroed) by destination gathers two
// phases ago.
func (sh *roundShard) resetOut(parity int) {
	for d := range sh.out[parity] {
		sh.out[parity][d] = sh.out[parity][d][:0]
	}
}

// playInit runs Init for this shard's nodes in ascending dense order and
// records each node's send count under its dense index — the Init "rank".
// Globally the keys (dense index, pos) sort to exactly the 1-shard Init
// order, whatever the shard interleaving.
func (sh *roundShard) playInit() {
	r := sh.run
	for li := range sh.nodes {
		ctx := &sh.ctxs[li]
		ctx.rank = int64(sh.nodes[li])
		ctx.sends = 0
		sh.protos[li].Init(ctx)
		r.cnt[ctx.rank] = int64(ctx.sends)
	}
}

// playRound processes this shard's share of the current round: refresh the
// write outboxes, then deliver the S incoming rank-sorted streams in
// merged order. The merge is fused with delivery and proceeds run by run:
// pick the source with the minimal head rank, then drain it up to the
// smallest head rank of the other sources — one int64 comparison per
// message, a source tournament only at run boundaries. Runs are long when
// traffic is shard-local (low cut fractions), and the fusion skips
// materialising a merged buffer entirely. Ranks were materialised by the
// rank phase, so delivery reads them straight off the record — no shared
// offset-table lookup per message. Per-delivery accounting goes to the
// shard's own report; the send count lands in the shared cnt slice at the
// delivery's rank (disjoint across shards by construction).
func (sh *roundShard) playRound() {
	r := sh.run
	sh.resetOut(r.writeParity)
	srcs := r.shards
	heads := sh.heads
	for s := range srcs {
		heads[s] = 0
	}
	rp := r.readParity
	for {
		best := -1
		bestRank := int64(0)
		for s := range srcs {
			q := srcs[s].out[rp][sh.index]
			if heads[s] >= len(q) {
				continue
			}
			if k := q[heads[s]].rank; best < 0 || k < bestRank {
				best, bestRank = s, k
			}
		}
		if best < 0 {
			return
		}
		limit := int64(-1)
		for s := range srcs {
			if s == best || heads[s] >= len(srcs[s].out[rp][sh.index]) {
				continue
			}
			if k := srcs[s].out[rp][sh.index][heads[s]].rank; limit < 0 || k < limit {
				limit = k
			}
		}
		q := srcs[best].out[rp][sh.index]
		h := heads[best]
		for h < len(q) && (limit < 0 || q[h].rank < limit) {
			d := q[h]
			h++
			ctx := &sh.ctxs[d.toLocal]
			ctx.rank = d.rank
			ctx.sends = 0
			sh.report.recordKR(d.msg, r.round)
			sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
			r.cnt[d.rank] = int64(ctx.sends)
		}
		heads[best] = h
	}
}

// rankify rewrites this shard's just-filled outboxes (now at read parity)
// from (parent rank, pos) form to materialised global ranks using the
// offsets the barrier computed — the per-shard scatter half of the
// parallel prefix-sum merge. The rewrite is monotone, so each outbox stays
// sorted, and every later consumer (merge, delivery, checkpoint) reads a
// single int64.
func (sh *roundShard) rankify() {
	r := sh.run
	off := r.off
	for d := range sh.out[r.readParity] {
		q := sh.out[r.readParity][d]
		for i := range q {
			q[i].rank = off[q[i].rank] + int64(q[i].pos)
		}
	}
}

// playRoundSerial is the traced schedule: one goroutine delivers the whole
// round in global rank order across all shards, emitting each trace event
// before the handler runs (trace callbacks must see the message before the
// protocol recycles it). Results are identical to the parallel schedule —
// only the wall-clock interleaving differs — because per-shard processing
// order, keys and ranks are the same either way.
func (r *shardedRoundRun) playRoundSerial() {
	for si := range r.shards {
		r.shards[si].resetOut(r.writeParity)
	}
	for si := range r.shards {
		r.shards[si].gather(r.readParity)
	}
	cursors := make([]int, len(r.shards))
	t := float64(r.round)
	for {
		best := -1
		bestRank := int64(0)
		for si := range r.shards {
			cu := r.shards[si].cur
			if cursors[si] >= len(cu) {
				continue
			}
			if k := cu[cursors[si]].rank; best < 0 || k < bestRank {
				best, bestRank = si, k
			}
		}
		if best < 0 {
			return
		}
		sh := &r.shards[best]
		d := sh.cur[cursors[best]]
		cursors[best]++
		ctx := &sh.ctxs[d.toLocal]
		ctx.rank = d.rank
		ctx.sends = 0
		sh.report.recordKR(d.msg, r.round)
		if r.trace != nil {
			r.trace(TraceEvent{Time: t, Depth: r.round, From: d.from, To: ctx.id, Msg: d.msg})
		}
		sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
		r.cnt[d.rank] = int64(ctx.sends)
	}
}

// scanCnt exclusive-prefix-sums cnt in place (serially) and returns the
// total — cnt[i] becomes the global rank offset of delivery i's sends.
func (r *shardedRoundRun) scanCnt() int64 {
	var total int64
	for i, c := range r.cnt {
		r.cnt[i] = total
		total += c
	}
	return total
}

// The parallel scan splits cnt into one contiguous chunk per worker:
// scanChunk prefix-sums each chunk and records its total, combineChunks
// exclusive-scans the W totals on the coordinator, shiftChunk adds each
// chunk's base back in. Worth the two extra phase barriers only on wide
// windows; parallelScanMin gates it (a variable so tests can force the
// parallel path on small corpora).
var parallelScanMin = 1 << 15

func (r *shardedRoundRun) chunkBounds(w int) (lo, hi int) {
	n := len(r.cnt)
	return w * n / r.workers, (w + 1) * n / r.workers
}

func (r *shardedRoundRun) scanChunk(w int) {
	lo, hi := r.chunkBounds(w)
	var t int64
	for i := lo; i < hi; i++ {
		v := r.cnt[i]
		r.cnt[i] = t
		t += v
	}
	r.chunkTot[w] = t
}

func (r *shardedRoundRun) combineChunks() int64 {
	var base int64
	for w := 0; w < r.workers; w++ {
		t := r.chunkTot[w]
		r.chunkTot[w] = base
		base += t
	}
	return base
}

func (r *shardedRoundRun) shiftChunk(w int) {
	if b := r.chunkTot[w]; b != 0 {
		lo, hi := r.chunkBounds(w)
		for i := lo; i < hi; i++ {
			r.cnt[i] += b
		}
	}
}

// finishBarrier completes a window barrier after cnt was prefix-summed:
// swap the offsets in, size the next count slice, flip the outbox
// parities, and return how many deliveries the next window holds.
func (r *shardedRoundRun) finishBarrier(total int64) int64 {
	r.off, r.cnt = r.cnt, r.off
	if int64(cap(r.cnt)) < total {
		r.cnt = make([]int64, total)
	} else {
		r.cnt = r.cnt[:total]
	}
	// No clearing needed: every rank in [0, total) is written by exactly
	// one delivery next round.
	r.readParity, r.writeParity = r.writeParity, r.readParity
	return total
}

// shardedScratch pools the round-path state across runs, mirroring
// eventScratch: the parallel experiment harness and the benchmarks execute
// thousands of sharded runs over the same shapes, and the per-shard slabs
// are the dominant setup allocation.
type shardedScratch struct {
	run    shardedRoundRun
	local  []int32
	protos [][]Protocol
	ctxs   [][]shardRoundCtx
}

var shardedPool = sync.Pool{New: func() any { return new(shardedScratch) }}

func (s *shardedScratch) reset(c *graph.CSR, part *graph.Partition) {
	n := c.N()
	S := part.Shards()
	if cap(s.local) < n {
		s.local = make([]int32, n)
	}
	s.local = s.local[:n]
	if cap(s.run.shards) < S {
		s.run.shards = make([]roundShard, S)
	}
	s.run.shards = s.run.shards[:S]
	if cap(s.protos) < S {
		s.protos = make([][]Protocol, S)
	}
	s.protos = s.protos[:S]
	if cap(s.ctxs) < S {
		s.ctxs = make([][]shardRoundCtx, S)
	}
	s.ctxs = s.ctxs[:S]
	if cap(s.run.cnt) < n {
		s.run.cnt = make([]int64, n)
	}
	s.run.cnt = s.run.cnt[:n]
	s.run.off = s.run.off[:0]
	if cap(s.run.loc) < n {
		s.run.loc = make([]int64, n)
	}
	s.run.loc = s.run.loc[:n]
	if cap(s.run.sent) < n {
		s.run.sent = make([]int64, n)
	}
	s.run.sent = s.run.sent[:n]
	clear(s.run.sent)
	if cap(s.run.chunkTot) < S {
		s.run.chunkTot = make([]int64, S)
	}
	s.run.chunkTot = s.run.chunkTot[:S]
	s.run.round = 0
	// Init writes parity 0; the first barrier swap makes round 1 read
	// parity 0 and write parity 1.
	s.run.readParity, s.run.writeParity = 1, 0
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		sh.run = &s.run
		sh.index = int32(si)
		nodes := part.Nodes(si)
		sh.nodes = nodes
		if cap(s.ctxs[si]) < len(nodes) {
			s.ctxs[si] = make([]shardRoundCtx, len(nodes))
		}
		sh.ctxs = s.ctxs[si][:len(nodes)]
		if cap(s.protos[si]) < len(nodes) {
			s.protos[si] = make([]Protocol, len(nodes))
		}
		sh.protos = s.protos[si][:len(nodes)]
		sh.report = newReport()
		for p := range sh.out {
			if cap(sh.out[p]) < S {
				sh.out[p] = make([][]shardDelivery, S)
			}
			sh.out[p] = sh.out[p][:S]
			for d := range sh.out[p] {
				sh.out[p][d] = sh.out[p][d][:0]
			}
		}
		sh.cur = sh.cur[:0]
		if cap(sh.heads) < S {
			sh.heads = make([]int, S)
		}
		sh.heads = sh.heads[:S]
	}
}

// release zeroes everything that can pin protocol state or snapshot
// arrays (abnormal exits leave live entries behind) and returns the
// scratch to the pool. The delivery slabs are flat pointer-free records
// and only need truncating — pooling them is what keeps sharded allocs
// flat at any shard count.
func (s *shardedScratch) release() {
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		for p := range sh.out {
			for d := range sh.out[p] {
				sh.out[p][d] = sh.out[p][d][:0]
			}
		}
		sh.cur = sh.cur[:0]
		for i := range sh.ctxs {
			sh.ctxs[i] = shardRoundCtx{}
		}
		clear(sh.protos)
		sh.report = nil
		sh.nodes = nil
		sh.run = nil
	}
	s.run.owner, s.run.ids, s.run.trace = nil, nil, nil
	shardedPool.Put(s)
}

// Run compiles g and executes the protocol over the snapshot.
func (e *ShardedEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence over a compiled snapshot
// with the state plane split across shards. The scheduler tier mirrors
// EventEngine: unit delays run the window-parallel sharded round path,
// anything else the sharded calendar wheels in global order.
func (e *ShardedEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	dense, rep, err := e.runSnapshotDense(c, f)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

// RunSnapshotDense is RunSnapshot returning the final protocol instances
// dense-indexed (see DenseSnapshotEngine).
func (e *ShardedEngine) RunSnapshotDense(c *graph.CSR, f Factory) (protos []Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	return e.runSnapshotDense(c, f)
}

// runSnapshotDense is the common body of RunSnapshot and RunSnapshotDense;
// callers own panic recovery.
func (e *ShardedEngine) runSnapshotDense(c *graph.CSR, f Factory) ([]Protocol, *Report, error) {
	start := time.Now()
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		// One shard is the event engine, definitionally: the N-shard runs
		// are trace-equivalent to this path.
		ev := &EventEngine{Seed: e.Seed, Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.runSnapshotDense(c, f)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	if isUnitDelay(e.Delay) {
		return e.runShardedRounds(c, part, f, maxMsgs, start, nil)
	}
	if e.Checkpoint != nil {
		return nil, nil, errCheckpointTier
	}
	return e.runShardedWheel(c, part, f, maxMsgs, start)
}

// Resume compiles g and continues a checkpointed run (see ResumeSnapshot).
func (e *ShardedEngine) Resume(g *graph.Graph, f Factory, ck *Checkpoint) (map[NodeID]Protocol, *Report, error) {
	return e.ResumeSnapshot(g.Compile(), f, ck)
}

// ResumeSnapshot continues a run frozen at a round barrier with the state
// plane sharded: protocol states decode into their owner shards, the
// pending slab reseeds the cross-shard outboxes in canonical rank order,
// and the run proceeds window-parallel. Checkpoints are engine-agnostic:
// any unit-delay engine resumes any barrier checkpoint to the identical
// report, trace and final states.
func (e *ShardedEngine) ResumeSnapshot(c *graph.CSR, f Factory, ck *Checkpoint) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	if !isUnitDelay(e.Delay) {
		return nil, nil, errCheckpointTier
	}
	if err := ck.validateAgainst(c); err != nil {
		return nil, nil, err
	}
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		ev := &EventEngine{Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.ResumeSnapshot(c, f, ck)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	dense, rep, err := e.runShardedRounds(c, part, f, maxMsgs, start, ck)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

// workerCount resolves the effective OS-level parallelism of the round
// path.
func (e *ShardedEngine) workerCount(shards int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// phaseKind names the barrier-separated parallel phases of a round window.
type phaseKind uint8

const (
	phaseInit  phaseKind = iota // run Init over owned nodes
	phaseRound                  // merge + deliver the window, refill outboxes
	phaseRank                   // materialise global ranks into the outboxes
	phaseScan                   // chunked prefix-sum of cnt (workers only)
	phaseShift                  // add chunk bases after phaseScan (workers only)
)

// runShardedRounds is the unit-delay fast path: rounds execute as barrier-
// separated parallel phases over the shard set (serial schedule when
// tracing or when only one worker is available). With ck non-nil the run
// resumes from that barrier instead of starting at Init.
func (e *ShardedEngine) runShardedRounds(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time, ck *Checkpoint) ([]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	scratch := shardedPool.Get().(*shardedScratch)
	defer scratch.release()
	scratch.reset(c, part)
	run := &scratch.run
	run.ids = ids
	run.trace = e.Trace
	run.owner = part.Owners()
	run.workers = e.workerCount(S)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			scratch.local[v] = int32(li)
			run.loc[v] = int64(si)<<32 | int64(int32(li))
			sh.ctxs[li] = shardRoundCtx{
				shard:     sh,
				id:        ids[v],
				dense:     v,
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
			}
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	run.local = scratch.local

	var runPhase func(phaseKind)
	parallelScan := false
	switch {
	case e.Trace != nil:
		// Traced schedule: one goroutine walks the merged streams in
		// global rank order so every event fires at its exact position.
		runPhase = func(k phaseKind) {
			switch k {
			case phaseInit:
				// Global dense order so Init-time Logf notes trace in the
				// 1-shard order; sends are rank-ordered regardless.
				for v := int32(0); int(v) < n; v++ {
					sh := &run.shards[run.owner[v]]
					ctx := &sh.ctxs[run.local[v]]
					ctx.rank = int64(v)
					ctx.sends = 0
					sh.protos[run.local[v]].Init(ctx)
					run.cnt[v] = int64(ctx.sends)
				}
			case phaseRound:
				run.playRoundSerial()
			case phaseRank:
				for si := range run.shards {
					run.shards[si].rankify()
				}
			}
		}
	case run.workers == 1:
		// One worker (single-core host): the parallel schedule inline,
		// shard by shard — same phases, no goroutine handoff.
		runPhase = func(k phaseKind) {
			for si := range run.shards {
				switch k {
				case phaseInit:
					run.shards[si].playInit()
				case phaseRound:
					run.shards[si].playRound()
				case phaseRank:
					run.shards[si].rankify()
				}
			}
		}
	default:
		stop, phase := e.startWorkers(run)
		defer stop()
		runPhase = phase
		parallelScan = true
	}

	// closeBarrier prefix-sums the window's send counts — chunk-parallel
	// across the workers when the window is wide enough to amortise the
	// two extra phase barriers — and flips the window state.
	closeBarrier := func() int64 {
		var total int64
		if parallelScan && len(run.cnt) >= parallelScanMin {
			runPhase(phaseScan)
			total = run.combineChunks()
			runPhase(phaseShift)
		} else {
			total = run.scanCnt()
		}
		return run.finishBarrier(total)
	}

	spec := e.Checkpoint
	var total, delivered int64
	if ck == nil {
		runPhase(phaseInit)
		total = closeBarrier()
		runPhase(phaseRank)
		if spec != nil && spec.Every == 0 && spec.Round == 0 {
			// Barrier 0: the state right after Init, before any delivery.
			return nil, nil, e.writeShardedCheckpoint(run, c, total)
		}
	} else {
		// Reseed the post-barrier state from the checkpoint: protocol
		// states decode in their owner shards, the report counters land in
		// shard 0 (the merge sums them back), and the pending slab refills
		// the cross-shard outboxes — delivery i arrives with its global
		// rank i already materialised, so the canonical merge replays the
		// slab in exactly its global send order. The dense send counters
		// are credited per pending delivery: the checkpoint debited them
		// when it froze the slab (SentBy counts delivered messages only).
		protoView := make([]Protocol, n)
		for si := range run.shards {
			sh := &run.shards[si]
			for li, v := range sh.nodes {
				protoView[v] = sh.protos[li]
			}
		}
		if err := ck.decodeStates(protoView); err != nil {
			return nil, nil, err
		}
		ck.restoreReport(run.shards[0].report)
		run.round = ck.Round
		run.readParity, run.writeParity = 0, 1
		if cap(run.cnt) < len(ck.Pending) {
			run.cnt = make([]int64, len(ck.Pending))
		}
		run.cnt = run.cnt[:len(ck.Pending)]
		ids := run.ids
		for i, p := range ck.Pending {
			run.sent[p.From]++
			src := &run.shards[run.owner[p.From]]
			dst := run.owner[p.To]
			src.out[run.readParity][dst] = append(src.out[run.readParity][dst], shardDelivery{
				rank:      int64(i),
				fromDense: p.From,
				from:      ids[p.From],
				toLocal:   run.local[p.To],
				msg:       p.Msg,
			})
		}
		total = int64(len(ck.Pending))
		delivered = run.shards[0].report.Messages
	}
	for {
		// Match the single-shard cap predicate at window granularity: the
		// event engine errors exactly when the planned deliveries exceed
		// the cap (it aborts before the maxMsgs+1-th delivery), so a
		// window that crossed the cap errors here even if the protocol
		// quiesced inside it.
		if delivered > maxMsgs || (delivered >= maxMsgs && total > 0) {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		if total == 0 {
			break
		}
		run.round++
		runPhase(phaseRound)
		delivered += total
		total = closeBarrier()
		runPhase(phaseRank)
		if spec != nil {
			if spec.Every > 0 {
				// Periodic cadence: commit and keep running. A resumed run
				// re-enters the loop at ck.Round+1, so the barrier it resumed
				// from is never re-committed.
				if run.round%spec.Every == 0 {
					if err := e.commitShardedCheckpoint(run, c, total); err != nil {
						return nil, nil, err
					}
				}
			} else if run.round == spec.Round {
				return nil, nil, e.writeShardedCheckpoint(run, c, total)
			}
		}
	}

	rep := newReport()
	rep.adoptDenseSent(run.sent, ids)
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.VirtualTime = float64(run.round)
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make([]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protos[v] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

// captureShardedCheckpoint freezes the run at the just-closed barrier: the
// outboxes at read parity hold the next round's deliveries (total of
// them) with their global ranks already materialised by the rank phase,
// and the shard reports merge into the frozen counters. The dense send
// counters are debited per in-flight delivery (SentBy counts delivered
// messages only); a caller that keeps the run going must credit them back.
func (e *ShardedEngine) captureShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) (*Checkpoint, error) {
	ck := &Checkpoint{Round: run.round, N: c.N(), HalfEdges: c.HalfEdges()}
	ck.Pending = make([]PendingDelivery, total)
	for si := range run.shards {
		src := &run.shards[si]
		for d := range src.out[run.readParity] {
			for _, del := range src.out[run.readParity][d] {
				// Debit the dense send counter: SentBy counts delivered
				// messages, and this one is frozen in flight (resume
				// credits it back when reseeding the slab).
				run.sent[del.fromDense]--
				ck.Pending[del.rank] = PendingDelivery{
					From: del.fromDense,
					To:   run.shards[d].nodes[del.toLocal],
					Msg:  del.msg,
				}
			}
		}
	}
	merged := newReport()
	merged.adoptDenseSent(run.sent, run.ids)
	for si := range run.shards {
		merged.MergeParallel(run.shards[si].report)
	}
	ck.captureReport(merged)
	protoView := make([]Protocol, c.N())
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protoView[v] = sh.protos[li]
		}
	}
	if err := ck.encodeStates(protoView); err != nil {
		return nil, err
	}
	return ck, nil
}

// writeShardedCheckpoint freezes the run at the just-closed barrier, writes
// it to the armed spec and returns ErrCheckpointed.
func (e *ShardedEngine) writeShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) error {
	ck, err := e.captureShardedCheckpoint(run, c, total)
	if err != nil {
		return err
	}
	if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	return ErrCheckpointed
}

// commitShardedCheckpoint durably commits the just-closed barrier through
// the periodic Sink; the run keeps going, so the in-flight debits of the
// dense send counters are credited back after the capture.
func (e *ShardedEngine) commitShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) error {
	ck, err := e.captureShardedCheckpoint(run, c, total)
	if err != nil {
		return err
	}
	for _, p := range ck.Pending {
		run.sent[p.From]++
	}
	return e.Checkpoint.Sink.Commit(run.round, ck.Write)
}

// runWorkerPhase executes worker w's slice of one phase. Shard phases use
// the static assignment w, w+W, w+2W, ... — which goroutine runs which
// shard never depends on timing — and wrap protocol code in a recover so
// panics surface deterministically (lowest shard first). The scan phases
// split the cnt slice into per-worker chunks instead; they run no
// protocol code.
func (r *shardedRoundRun) runWorkerPhase(k phaseKind, w int, panics []any) {
	switch k {
	case phaseScan:
		r.scanChunk(w)
	case phaseShift:
		r.shiftChunk(w)
	default:
		S := len(r.shards)
		for si := w; si < S; si += r.workers {
			func() {
				defer func() {
					if p := recover(); p != nil {
						panics[si] = p
					}
				}()
				switch k {
				case phaseInit:
					r.shards[si].playInit()
				case phaseRound:
					r.shards[si].playRound()
				case phaseRank:
					r.shards[si].rankify()
				}
			}()
		}
	}
}

// startWorkers launches the persistent phase workers of the parallel
// schedule. The coordinator publishes each phase with one generation bump
// and a single condvar broadcast — W wakeups for one Broadcast instead of
// W channel sends — and a WaitGroup closes the phase. The returned phase
// function blocks until every worker finished and re-raises the first
// (lowest-shard) protocol panic on the coordinator, where RunSnapshot's
// recover converts it. stop must be called exactly once to release the
// workers.
func (e *ShardedEngine) startWorkers(run *shardedRoundRun) (stop func(), phase func(phaseKind)) {
	S := len(run.shards)
	W := run.workers
	const phaseExit = phaseKind(255)
	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		gen  uint64
		kind phaseKind
		wg   sync.WaitGroup
	)
	panics := make([]any, S)
	for w := 0; w < W; w++ {
		go func(w int) {
			var seen uint64
			for {
				mu.Lock()
				for gen == seen {
					cond.Wait()
				}
				seen = gen
				k := kind
				mu.Unlock()
				if k == phaseExit {
					return
				}
				run.runWorkerPhase(k, w, panics)
				wg.Done()
			}
		}(w)
	}
	post := func(k phaseKind) {
		mu.Lock()
		kind = k
		gen++
		cond.Broadcast()
		mu.Unlock()
	}
	stop = func() { post(phaseExit) }
	phase = func(k phaseKind) {
		wg.Add(W)
		post(k)
		wg.Wait()
		for si := range panics {
			if p := panics[si]; p != nil {
				panic(p)
			}
		}
	}
	return stop, phase
}

// --- randomised-delay path: sharded state, global (time, seq) order ---

// wheelShard owns one slice of the node range on the randomised-delay
// path: its nodes' contexts and protocols, a calendar wheel holding the
// pending deliveries addressed to them, the FIFO clamp slab of their
// outgoing links, and its own report.
type wheelShard struct {
	wheel  bucketQueue
	ctxs   []shardWheelCtx
	protos []Protocol
	clamp  []float64
	report *Report
}

type shardWheelCtx struct {
	run       *shardWheelRun
	id        NodeID
	neighbors []NodeID
	nbrDense  []int32
	clamp     []float64
	now       float64
	depth     int64
}

func (c *shardWheelCtx) ID() NodeID          { return c.id }
func (c *shardWheelCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardWheelCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.run
	d := r.delay(r.rng, c.id, to)
	checkDelay(d, c.id, to)
	t := c.now + d
	if r.fifo {
		if last := c.clamp[ni]; t < last {
			t = last
		}
		c.clamp[ni] = t
	}
	r.seq++
	toDense := c.nbrDense[ni]
	dst := r.owner[toDense]
	ev := event{t: t, seq: r.seq, depth: c.depth + 1, from: c.id, to: to, toDense: toDense, msg: m}
	r.shards[dst].wheel.push(ev)
	// A cross-shard send can land ahead of the window limit the current
	// shard is draining under; tighten the limit so the drain stops before
	// overtaking it (the window invariant: other shards' heads only change
	// through these pushes).
	if dst != r.curShard && (!r.hasLimit || ev.before(r.limit)) {
		r.limit, r.hasLimit = ev, true
	}
}

func (c *shardWheelCtx) Logf(format string, args ...any) {
	if c.run.trace != nil {
		c.run.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

type shardWheelRun struct {
	rng    *rand.Rand
	delay  DelayFn
	fifo   bool
	trace  func(TraceEvent)
	seq    int64
	owner  []int32
	local  []int32
	shards []wheelShard
	// Speculative window state: curShard is the shard whose wheel is being
	// drained, and limit the earliest event any other shard holds (tightened
	// by cross-shard Sends mid-drain). The drain stops before its head
	// reaches limit, so every pop is still the global (time, seq) minimum.
	curShard int32
	limit    event
	hasLimit bool
}

// runShardedWheel executes the randomised-delay tier: every shard owns its
// nodes' wheel, clamps and report, and the run delivers events in the
// global (time, seq) order — the identical schedule, RNG draw order and
// trace as EventEngine's single wheel, with partitioned ownership.
//
// Rather than paying an S-way peek tournament per event, the run drains
// speculative per-shard windows: the tournament picks the shard holding
// the global minimum once, then pops that shard's wheel for as long as its
// head stays before the earliest event any *other* shard holds (the window
// limit). The invariant making this exact is that while one shard drains,
// other shards' wheels change only through the draining shard's own
// cross-shard sends — and Send tightens the limit whenever such a push
// lands ahead of it. So at every pop the drained head is still the global
// minimum, and the window costs one comparison per event instead of S
// peeks. No lookahead exists below the unit bound (delays can be
// arbitrarily small), so the windows close exactly at cross-shard event
// times — speculation never reorders anything.
func (e *ShardedEngine) runShardedWheel(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time) ([]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	run := &shardWheelRun{
		rng:    rand.New(rand.NewSource(e.Seed)),
		delay:  e.Delay,
		fifo:   e.FIFO,
		trace:  e.Trace,
		owner:  part.Owners(),
		local:  make([]int32, n),
		shards: make([]wheelShard, S),
	}
	for si := range run.shards {
		sh := &run.shards[si]
		nodes := part.Nodes(si)
		sh.ctxs = make([]shardWheelCtx, len(nodes))
		sh.protos = make([]Protocol, len(nodes))
		degSum := 0
		for _, v := range nodes {
			degSum += c.Degree(v)
		}
		sh.clamp = make([]float64, degSum)
		sh.report = newReport()
		at := 0
		for li, v := range nodes {
			run.local[v] = int32(li)
			deg := c.Degree(v)
			sh.ctxs[li] = shardWheelCtx{
				run:       run,
				id:        ids[v],
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
				clamp:     sh.clamp[at : at+deg],
			}
			at += deg
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	// All nodes start independently; Init runs at time zero in ID order.
	// No window is open yet, so Init-time sends must not tighten a limit.
	run.curShard = -1
	for v := int32(0); int(v) < n; v++ {
		sh := &run.shards[run.owner[v]]
		sh.protos[run.local[v]].Init(&sh.ctxs[run.local[v]])
	}
	var delivered int64
	for {
		// Window tournament: find the shard holding the global minimum and
		// the earliest head among the others — the window limit.
		best := -1
		var bestEv event
		for si := range run.shards {
			w := &run.shards[si].wheel
			if w.empty() {
				continue
			}
			if ev := w.peek(); best < 0 || ev.before(bestEv) {
				best, bestEv = si, ev
			}
		}
		if best < 0 {
			break
		}
		run.hasLimit = false
		for si := range run.shards {
			if si == best || run.shards[si].wheel.empty() {
				continue
			}
			if ev := run.shards[si].wheel.peek(); !run.hasLimit || ev.before(run.limit) {
				run.limit, run.hasLimit = ev, true
			}
		}
		run.curShard = int32(best)
		sh := &run.shards[best]
		for {
			if delivered >= maxMsgs {
				return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
			}
			ev := sh.wheel.pop()
			li := run.local[ev.toDense]
			ctx := &sh.ctxs[li]
			ctx.now = ev.t
			ctx.depth = ev.depth
			sh.report.record(ev.from, ev.msg, ev.depth)
			delivered++
			if ev.t > sh.report.VirtualTime {
				sh.report.VirtualTime = ev.t
			}
			if run.trace != nil {
				run.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
			}
			sh.protos[li].Recv(ctx, ev.from, ev.msg)
			if sh.wheel.empty() {
				break
			}
			if run.hasLimit && !sh.wheel.peek().before(run.limit) {
				break
			}
		}
		run.curShard = -1
	}
	rep := newReport()
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make([]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range part.Nodes(si) {
			protos[v] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

var _ SnapshotEngine = (*ShardedEngine)(nil)
var _ DenseSnapshotEngine = (*ShardedEngine)(nil)
var _ ResumableEngine = (*ShardedEngine)(nil)
