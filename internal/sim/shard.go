package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"mdegst/internal/graph"
)

// The shard-partitioned runtime (DESIGN.md §7). ShardedEngine splits the
// per-node state plane of a run — protocol instances, contexts, FIFO clamp
// intervals, delivery queues — into shards that each own one slice of the
// snapshot's dense node range, per a graph.Partition. The point is
// multi-core execution of a *single* run (the experiment harness already
// parallelises across trials): under the paper's unit-delay model the
// (0, 1] delay bound is a conservative lookahead-1 window, so all
// deliveries of one round are mutually independent and shards can process
// their own nodes concurrently, exchanging cross-shard messages through
// per-(src, dst) outboxes that are merged in a canonical order at the
// round barrier.
//
// Determinism is exact, not statistical: an N-shard run is
// delivery-trace-equivalent to the 1-shard engine (EventEngine) and to
// ReferenceEngine — same per-node Recv sequences, same report, same final
// protocol states — because the canonical merge order reconstructs the
// single-engine global delivery order from data that does not depend on
// goroutine scheduling:
//
//   - Every delivery of round r has a global rank: its position in the
//     round's delivery list as the 1-shard engine would order it.
//   - A message is keyed (parent rank, send position): the rank of the
//     delivery whose handler sent it, and the index of the send within
//     that handler call. The 1-shard engine appends sends in exactly
//     (rank, position) order, so sorting round r+1 by key *is* the
//     1-shard order.
//   - Ranks for the next round come from a prefix sum over per-delivery
//     send counts (each shard writes the counts of its own deliveries
//     into a shared slice at disjoint indices), computed once per round
//     at the barrier.
//
// Under randomised delays there is no positive lower bound on a delay, so
// the model offers no lookahead and window-parallel execution cannot be
// conservative. The sharded wheel path therefore keeps the partitioned
// ownership structure — per-shard calendar wheels, clamp slabs and reports
// — but executes deliveries in the global (time, sequence) order by
// popping the minimum across the shard wheels; exact, not parallel.

// ShardedEngine executes a protocol over a snapshot with its state plane
// partitioned into shards. The zero value of every field is usable;
// Shards <= 1 degenerates to EventEngine (the 1-shard engine the N-shard
// runs are trace-equivalent to).
type ShardedEngine struct {
	// Shards is the number of state shards. It is clamped to the node
	// count; values <= 1 run the single-shard event engine.
	Shards int
	// Workers bounds how many OS-level workers drive the shard phases of
	// the unit-delay round path; 0 means min(Shards, GOMAXPROCS). On a
	// single-core machine the phases run inline on one goroutine — same
	// results by construction, none of the handoff cost.
	Workers int
	// Partition, when non-nil, fixes the shard assignment (it must
	// Validate against the snapshot, and Shards, if set, must agree with
	// it). Nil means a contiguous partition computed per run; precompute
	// with graph.PartitionContiguous or graph.PartitionBFS to share the
	// assignment across runs.
	Partition *graph.Partition
	// Seed initialises the delay RNG (randomised-delay path only).
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order under random delays.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages). The sharded round path checks the cap at round
	// barriers, so the abort lands at the end of the window that crossed
	// the cap rather than mid-round.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note in the
	// exact global delivery order. Tracing forces the round path through
	// its serial schedule (one goroutine walking the shards' merged
	// streams in rank order) so events fire at their exact global
	// positions.
	Trace func(TraceEvent)
	// Checkpoint, when non-nil, arms barrier checkpointing exactly as on
	// EventEngine: the sharded round path stops at the barrier after
	// Checkpoint.Round and writes the frozen run (the checkpoint is
	// engine-agnostic — a sharded checkpoint resumes on the unsharded
	// engine and vice versa).
	Checkpoint *CheckpointSpec
}

// sendKey orders the messages of one delivery window canonically: by the
// global rank of the delivery whose handler sent the message, then by the
// send's position within that handler call. Sorting a round by sendKey
// reproduces the single-engine append order exactly.
type sendKey struct {
	parent int64 // global rank of the sending delivery (dense node index for Init sends)
	pos    int32 // index of this send within the sending handler call
}

func (k sendKey) less(o sendKey) bool {
	if k.parent != o.parent {
		return k.parent < o.parent
	}
	return k.pos < o.pos
}

// shardDelivery is one queued message of the sharded round path: a flat
// record (key, endpoints, WireMsg) with no pointers, so outboxes are plain
// slabs — refilled by append, consumed by indexed reads, merged by key
// comparisons, and invisible to the GC.
type shardDelivery struct {
	key     sendKey
	from    NodeID
	toLocal int32 // index of the destination in its owner shard's node list
	msg     WireMsg
}

// shardRoundCtx is the Context handed to protocols on the sharded round
// path. rank/sends mirror roundCtx's implicit position bookkeeping: rank is
// the global rank of the delivery being processed (the dense node index
// while Init runs), sends counts the handler's sends so far.
type shardRoundCtx struct {
	shard     *roundShard
	id        NodeID
	neighbors []NodeID
	nbrDense  []int32
	rank      int64
	sends     int32
}

func (c *shardRoundCtx) ID() NodeID          { return c.id }
func (c *shardRoundCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardRoundCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	sh := c.shard
	r := sh.run
	toDense := c.nbrDense[ni]
	dst := r.owner[toDense]
	sh.out[r.writeParity][dst] = append(sh.out[r.writeParity][dst], shardDelivery{
		key:     sendKey{parent: c.rank, pos: c.sends},
		from:    c.id,
		toLocal: r.local[toDense],
		msg:     m,
	})
	c.sends++
}

func (c *shardRoundCtx) Logf(format string, args ...any) {
	// Non-nil trace implies the serial schedule, so emitting inline keeps
	// the exact global order.
	if r := c.shard.run; r.trace != nil {
		r.trace(TraceEvent{Time: float64(r.round), Depth: r.round, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// roundShard owns one slice of the node range on the unit-delay path: the
// protocol instances and contexts of its nodes, its own report, its merged
// current-round delivery stream, and one outbox per destination shard
// (double-buffered by round parity, so a shard can refill outboxes while
// destinations still read the previous round's).
type roundShard struct {
	run    *shardedRoundRun
	index  int32
	nodes  []int32 // dense indices owned, ascending
	ctxs   []shardRoundCtx
	protos []Protocol
	report *Report
	out    [2][][]shardDelivery // [parity][destination shard]
	cur    []shardDelivery      // merged deliveries of the round in progress
	heads  []int                // merge cursors, one per source shard
}

// shardedRoundRun is the state shared by all shards of one round-path run.
// Everything here is either immutable during a phase (owner/local/ids,
// off, parities, round) or written at disjoint indices (cnt), so the
// parallel phases need no locks; the per-phase barrier publishes updates.
type shardedRoundRun struct {
	shards      []roundShard
	owner       []int32 // dense node -> shard
	local       []int32 // dense node -> index in its shard's node list
	ids         []NodeID
	trace       func(TraceEvent)
	round       int64
	readParity  int
	writeParity int
	// off maps a current-round delivery's key to its global rank:
	// rank = off[key.parent] + key.pos. cnt collects the send count of
	// each current-round delivery at its rank; the barrier prefix-sums it
	// into the next round's off.
	off []int64
	cnt []int64
}

// gather merges the S source outboxes destined to this shard into cur,
// ordered by sendKey — the canonical cross-shard merge order. Each source
// list is already key-sorted (sources process their deliveries in rank
// order and append), so this is an S-way sorted merge of flat records.
func (sh *roundShard) gather(parity int) {
	r := sh.run
	srcs := r.shards
	sh.cur = sh.cur[:0]
	for s := range srcs {
		sh.heads[s] = 0
	}
	for {
		best := -1
		var bestKey sendKey
		for s := range srcs {
			q := srcs[s].out[parity][sh.index]
			h := sh.heads[s]
			if h >= len(q) {
				continue
			}
			if best < 0 || q[h].key.less(bestKey) {
				best, bestKey = s, q[h].key
			}
		}
		if best < 0 {
			return
		}
		q := srcs[best].out[parity][sh.index]
		sh.cur = append(sh.cur, q[sh.heads[best]])
		sh.heads[best]++
	}
}

// resetOut empties this shard's write-parity outboxes for refill. The
// previous contents were consumed (and zeroed) by destination gathers two
// phases ago.
func (sh *roundShard) resetOut(parity int) {
	for d := range sh.out[parity] {
		sh.out[parity][d] = sh.out[parity][d][:0]
	}
}

// playInit runs Init for this shard's nodes in ascending dense order and
// records each node's send count under its dense index — the Init "rank".
// Globally the keys (dense index, pos) sort to exactly the 1-shard Init
// order, whatever the shard interleaving.
func (sh *roundShard) playInit() {
	r := sh.run
	for li := range sh.nodes {
		ctx := &sh.ctxs[li]
		ctx.rank = int64(sh.nodes[li])
		ctx.sends = 0
		sh.protos[li].Init(ctx)
		r.cnt[ctx.rank] = int64(ctx.sends)
	}
}

// playRound processes this shard's share of the current round: refresh the
// write outboxes, then deliver the S incoming key-sorted streams in merged
// (rank) order. The merge is fused with delivery and proceeds run by run:
// pick the source with the minimal head key, then drain it up to the
// smallest head key of the other sources — one key comparison per message,
// a source tournament only at run boundaries. Runs are long when traffic
// is shard-local (low cut fractions), and the fusion skips materialising a
// merged buffer entirely. Per-delivery accounting goes to the shard's own
// report; the send count lands in the shared cnt slice at the delivery's
// rank (disjoint across shards by construction).
func (sh *roundShard) playRound() {
	r := sh.run
	sh.resetOut(r.writeParity)
	srcs := r.shards
	heads := sh.heads
	for s := range srcs {
		heads[s] = 0
	}
	rp := r.readParity
	for {
		best := -1
		var bestKey sendKey
		for s := range srcs {
			q := srcs[s].out[rp][sh.index]
			if heads[s] >= len(q) {
				continue
			}
			if k := q[heads[s]].key; best < 0 || k.less(bestKey) {
				best, bestKey = s, k
			}
		}
		if best < 0 {
			return
		}
		var limit sendKey
		hasLimit := false
		for s := range srcs {
			if s == best || heads[s] >= len(srcs[s].out[rp][sh.index]) {
				continue
			}
			if k := srcs[s].out[rp][sh.index][heads[s]].key; !hasLimit || k.less(limit) {
				limit, hasLimit = k, true
			}
		}
		q := srcs[best].out[rp][sh.index]
		h := heads[best]
		for h < len(q) && (!hasLimit || q[h].key.less(limit)) {
			d := q[h]
			h++
			rank := r.off[d.key.parent] + int64(d.key.pos)
			ctx := &sh.ctxs[d.toLocal]
			ctx.rank = rank
			ctx.sends = 0
			sh.report.record(d.from, d.msg, r.round)
			sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
			r.cnt[rank] = int64(ctx.sends)
		}
		heads[best] = h
	}
}

// playRoundSerial is the traced schedule: one goroutine delivers the whole
// round in global rank order across all shards, emitting each trace event
// before the handler runs (trace callbacks must see the message before the
// protocol recycles it). Results are identical to the parallel schedule —
// only the wall-clock interleaving differs — because per-shard processing
// order, keys and ranks are the same either way.
func (r *shardedRoundRun) playRoundSerial() {
	for si := range r.shards {
		r.shards[si].resetOut(r.writeParity)
	}
	for si := range r.shards {
		r.shards[si].gather(r.readParity)
	}
	cursors := make([]int, len(r.shards))
	t := float64(r.round)
	for {
		best := -1
		var bestKey sendKey
		for si := range r.shards {
			cu := r.shards[si].cur
			if cursors[si] >= len(cu) {
				continue
			}
			if k := cu[cursors[si]].key; best < 0 || k.less(bestKey) {
				best, bestKey = si, k
			}
		}
		if best < 0 {
			return
		}
		sh := &r.shards[best]
		d := sh.cur[cursors[best]]
		cursors[best]++
		rank := r.off[d.key.parent] + int64(d.key.pos)
		ctx := &sh.ctxs[d.toLocal]
		ctx.rank = rank
		ctx.sends = 0
		sh.report.record(d.from, d.msg, r.round)
		if r.trace != nil {
			r.trace(TraceEvent{Time: t, Depth: r.round, From: d.from, To: ctx.id, Msg: d.msg})
		}
		sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
		r.cnt[rank] = int64(ctx.sends)
	}
}

// barrier closes a delivery window: prefix-sum the send counts into the
// next round's rank offsets, size the next count slice, flip the outbox
// parities, and return how many deliveries the next round holds.
func (r *shardedRoundRun) barrier() int64 {
	var total int64
	for i, c := range r.cnt {
		r.cnt[i] = total
		total += c
	}
	r.off, r.cnt = r.cnt, r.off
	if int64(cap(r.cnt)) < total {
		r.cnt = make([]int64, total)
	} else {
		r.cnt = r.cnt[:total]
	}
	// No clearing needed: every rank in [0, total) is written by exactly
	// one delivery next round.
	r.readParity, r.writeParity = r.writeParity, r.readParity
	return total
}

// delivered sums the deliveries accounted so far across the shard reports.
func (r *shardedRoundRun) delivered() int64 {
	var n int64
	for si := range r.shards {
		n += r.shards[si].report.Messages
	}
	return n
}

// shardedScratch pools the round-path state across runs, mirroring
// eventScratch: the parallel experiment harness and the benchmarks execute
// thousands of sharded runs over the same shapes, and the per-shard slabs
// are the dominant setup allocation.
type shardedScratch struct {
	run    shardedRoundRun
	local  []int32
	protos [][]Protocol
	ctxs   [][]shardRoundCtx
}

var shardedPool = sync.Pool{New: func() any { return new(shardedScratch) }}

func (s *shardedScratch) reset(c *graph.CSR, part *graph.Partition) {
	n := c.N()
	S := part.Shards()
	if cap(s.local) < n {
		s.local = make([]int32, n)
	}
	s.local = s.local[:n]
	if cap(s.run.shards) < S {
		s.run.shards = make([]roundShard, S)
	}
	s.run.shards = s.run.shards[:S]
	if cap(s.protos) < S {
		s.protos = make([][]Protocol, S)
	}
	s.protos = s.protos[:S]
	if cap(s.ctxs) < S {
		s.ctxs = make([][]shardRoundCtx, S)
	}
	s.ctxs = s.ctxs[:S]
	if cap(s.run.cnt) < n {
		s.run.cnt = make([]int64, n)
	}
	s.run.cnt = s.run.cnt[:n]
	s.run.off = s.run.off[:0]
	s.run.round = 0
	// Init writes parity 0; the first barrier swap makes round 1 read
	// parity 0 and write parity 1.
	s.run.readParity, s.run.writeParity = 1, 0
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		sh.run = &s.run
		sh.index = int32(si)
		nodes := part.Nodes(si)
		sh.nodes = nodes
		if cap(s.ctxs[si]) < len(nodes) {
			s.ctxs[si] = make([]shardRoundCtx, len(nodes))
		}
		sh.ctxs = s.ctxs[si][:len(nodes)]
		if cap(s.protos[si]) < len(nodes) {
			s.protos[si] = make([]Protocol, len(nodes))
		}
		sh.protos = s.protos[si][:len(nodes)]
		sh.report = newReport()
		for p := range sh.out {
			if cap(sh.out[p]) < S {
				sh.out[p] = make([][]shardDelivery, S)
			}
			sh.out[p] = sh.out[p][:S]
			for d := range sh.out[p] {
				sh.out[p][d] = sh.out[p][d][:0]
			}
		}
		sh.cur = sh.cur[:0]
		if cap(sh.heads) < S {
			sh.heads = make([]int, S)
		}
		sh.heads = sh.heads[:S]
	}
}

// release zeroes everything that can pin protocol state or snapshot
// arrays (abnormal exits leave live entries behind) and returns the
// scratch to the pool. The delivery slabs are flat pointer-free records
// and only need truncating — pooling them is what keeps sharded allocs
// flat at any shard count.
func (s *shardedScratch) release() {
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		for p := range sh.out {
			for d := range sh.out[p] {
				sh.out[p][d] = sh.out[p][d][:0]
			}
		}
		sh.cur = sh.cur[:0]
		for i := range sh.ctxs {
			sh.ctxs[i] = shardRoundCtx{}
		}
		clear(sh.protos)
		sh.report = nil
		sh.nodes = nil
		sh.run = nil
	}
	s.run.owner, s.run.ids, s.run.trace = nil, nil, nil
	shardedPool.Put(s)
}

// Run compiles g and executes the protocol over the snapshot.
func (e *ShardedEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence over a compiled snapshot
// with the state plane split across shards. The scheduler tier mirrors
// EventEngine: unit delays run the window-parallel sharded round path,
// anything else the sharded calendar wheels in global order.
func (e *ShardedEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		// One shard is the event engine, definitionally: the N-shard runs
		// are trace-equivalent to this path.
		ev := &EventEngine{Seed: e.Seed, Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.RunSnapshot(c, f)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	if isUnitDelay(e.Delay) {
		return e.runShardedRounds(c, part, f, maxMsgs, start, nil)
	}
	if e.Checkpoint != nil {
		return nil, nil, errCheckpointTier
	}
	return e.runShardedWheel(c, part, f, maxMsgs, start)
}

// Resume compiles g and continues a checkpointed run (see ResumeSnapshot).
func (e *ShardedEngine) Resume(g *graph.Graph, f Factory, ck *Checkpoint) (map[NodeID]Protocol, *Report, error) {
	return e.ResumeSnapshot(g.Compile(), f, ck)
}

// ResumeSnapshot continues a run frozen at a round barrier with the state
// plane sharded: protocol states decode into their owner shards, the
// pending slab reseeds the cross-shard outboxes in canonical rank order,
// and the run proceeds window-parallel. Checkpoints are engine-agnostic:
// any unit-delay engine resumes any barrier checkpoint to the identical
// report, trace and final states.
func (e *ShardedEngine) ResumeSnapshot(c *graph.CSR, f Factory, ck *Checkpoint) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	if !isUnitDelay(e.Delay) {
		return nil, nil, errCheckpointTier
	}
	if err := ck.validateAgainst(c); err != nil {
		return nil, nil, err
	}
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		ev := &EventEngine{Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.ResumeSnapshot(c, f, ck)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	return e.runShardedRounds(c, part, f, maxMsgs, start, ck)
}

// workerCount resolves the effective OS-level parallelism of the round
// path.
func (e *ShardedEngine) workerCount(shards int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runShardedRounds is the unit-delay fast path: rounds execute as barrier-
// separated parallel phases over the shard set (serial schedule when
// tracing or when only one worker is available). With ck non-nil the run
// resumes from that barrier instead of starting at Init.
func (e *ShardedEngine) runShardedRounds(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time, ck *Checkpoint) (map[NodeID]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	scratch := shardedPool.Get().(*shardedScratch)
	defer scratch.release()
	scratch.reset(c, part)
	run := &scratch.run
	run.ids = ids
	run.trace = e.Trace
	run.owner = part.Owners()
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			scratch.local[v] = int32(li)
			sh.ctxs[li] = shardRoundCtx{
				shard:     sh,
				id:        ids[v],
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
			}
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	run.local = scratch.local

	var runPhase func(init bool)
	switch {
	case e.Trace != nil:
		// Traced schedule: one goroutine walks the merged streams in
		// global rank order so every event fires at its exact position.
		runPhase = func(init bool) {
			if init {
				// Global dense order so Init-time Logf notes trace in the
				// 1-shard order; sends are key-ordered regardless.
				for v := int32(0); int(v) < n; v++ {
					sh := &run.shards[run.owner[v]]
					ctx := &sh.ctxs[run.local[v]]
					ctx.rank = int64(v)
					ctx.sends = 0
					sh.protos[run.local[v]].Init(ctx)
					run.cnt[v] = int64(ctx.sends)
				}
				return
			}
			run.playRoundSerial()
		}
	case e.workerCount(S) == 1:
		// One worker (single-core host): the parallel schedule inline,
		// shard by shard — same phases, no goroutine handoff.
		runPhase = func(init bool) {
			for si := range run.shards {
				if init {
					run.shards[si].playInit()
				} else {
					run.shards[si].playRound()
				}
			}
		}
	default:
		stop, phase := e.startWorkers(run)
		defer stop()
		runPhase = phase
	}

	spec := e.Checkpoint
	var total int64
	if ck == nil {
		runPhase(true)
		total = run.barrier()
		if spec != nil && spec.Round == 0 {
			// Barrier 0: the state right after Init, before any delivery.
			return nil, nil, e.writeShardedCheckpoint(run, c, total)
		}
	} else {
		// Reseed the post-barrier state from the checkpoint: protocol
		// states decode in their owner shards, the report counters land in
		// shard 0 (the merge sums them back), and the pending slab refills
		// the cross-shard outboxes — delivery i gets key (i, 0) and the
		// rank offsets become the identity, so the canonical merge replays
		// the slab in exactly its global send order.
		protoView := make([]Protocol, n)
		for si := range run.shards {
			sh := &run.shards[si]
			for li, v := range sh.nodes {
				protoView[v] = sh.protos[li]
			}
		}
		if err := ck.decodeStates(protoView); err != nil {
			return nil, nil, err
		}
		ck.restoreReport(run.shards[0].report)
		run.round = ck.Round
		run.readParity, run.writeParity = 0, 1
		if int64(cap(run.off)) < int64(len(ck.Pending)) {
			run.off = make([]int64, len(ck.Pending))
		}
		run.off = run.off[:len(ck.Pending)]
		if cap(run.cnt) < len(ck.Pending) {
			run.cnt = make([]int64, len(ck.Pending))
		}
		run.cnt = run.cnt[:len(ck.Pending)]
		ids := run.ids
		for i, p := range ck.Pending {
			run.off[i] = int64(i)
			src := &run.shards[run.owner[p.From]]
			dst := run.owner[p.To]
			src.out[run.readParity][dst] = append(src.out[run.readParity][dst], shardDelivery{
				key:     sendKey{parent: int64(i)},
				from:    ids[p.From],
				toLocal: run.local[p.To],
				msg:     p.Msg,
			})
		}
		total = int64(len(ck.Pending))
	}
	for {
		// Match the single-shard cap predicate at window granularity: the
		// event engine errors exactly when the planned deliveries exceed
		// the cap (it aborts before the maxMsgs+1-th delivery), so a
		// window that crossed the cap errors here even if the protocol
		// quiesced inside it.
		if d := run.delivered(); d > maxMsgs || (d >= maxMsgs && total > 0) {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		if total == 0 {
			break
		}
		run.round++
		runPhase(false)
		total = run.barrier()
		if spec != nil && run.round == spec.Round {
			return nil, nil, e.writeShardedCheckpoint(run, c, total)
		}
	}

	rep := newReport()
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.VirtualTime = float64(run.round)
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make(map[NodeID]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protos[ids[v]] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

// writeShardedCheckpoint freezes the run at the just-closed barrier: the
// outboxes at read parity hold the next round's deliveries (total of
// them), off maps their parent keys to global ranks, and the shard
// reports merge into the frozen counters. Writes to the armed spec and
// returns ErrCheckpointed.
func (e *ShardedEngine) writeShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) error {
	ck := &Checkpoint{Round: run.round, N: c.N(), HalfEdges: c.HalfEdges()}
	merged := newReport()
	for si := range run.shards {
		merged.MergeParallel(run.shards[si].report)
	}
	ck.captureReport(merged)
	protoView := make([]Protocol, c.N())
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protoView[v] = sh.protos[li]
		}
	}
	if err := ck.encodeStates(protoView); err != nil {
		return err
	}
	idx := c.Index()
	ck.Pending = make([]PendingDelivery, total)
	for si := range run.shards {
		src := &run.shards[si]
		for d := range src.out[run.readParity] {
			for _, del := range src.out[run.readParity][d] {
				rank := run.off[del.key.parent] + int64(del.key.pos)
				ck.Pending[rank] = PendingDelivery{
					From: idx.MustOf(del.from),
					To:   run.shards[d].nodes[del.toLocal],
					Msg:  del.msg,
				}
			}
		}
	}
	if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	return ErrCheckpointed
}

// startWorkers launches the persistent phase workers of the parallel
// schedule. Worker w drives shards w, w+W, w+2W, ... — a static assignment,
// so which goroutine runs which shard never depends on timing. The
// returned phase function blocks until every worker finished the phase and
// re-raises the first (lowest-shard) protocol panic on the coordinator,
// where RunSnapshot's recover converts it. stop must be called exactly
// once to release the workers.
func (e *ShardedEngine) startWorkers(run *shardedRoundRun) (stop func(), phase func(init bool)) {
	S := len(run.shards)
	W := e.workerCount(S)
	type cmd struct{ init bool }
	chans := make([]chan cmd, W)
	panics := make([]any, S)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		chans[w] = make(chan cmd)
		go func(w int) {
			for c := range chans[w] {
				for si := w; si < S; si += W {
					func() {
						defer func() {
							if p := recover(); p != nil {
								panics[si] = p
							}
						}()
						if c.init {
							run.shards[si].playInit()
						} else {
							run.shards[si].playRound()
						}
					}()
				}
				wg.Done()
			}
		}(w)
	}
	stop = func() {
		for _, ch := range chans {
			close(ch)
		}
	}
	phase = func(init bool) {
		wg.Add(W)
		for _, ch := range chans {
			ch <- cmd{init: init}
		}
		wg.Wait()
		for si := range panics {
			if p := panics[si]; p != nil {
				panic(p)
			}
		}
	}
	return stop, phase
}

// --- randomised-delay path: sharded state, global (time, seq) order ---

// wheelShard owns one slice of the node range on the randomised-delay
// path: its nodes' contexts and protocols, a calendar wheel holding the
// pending deliveries addressed to them, the FIFO clamp slab of their
// outgoing links, and its own report.
type wheelShard struct {
	wheel  bucketQueue
	ctxs   []shardWheelCtx
	protos []Protocol
	clamp  []float64
	report *Report
}

type shardWheelCtx struct {
	run       *shardWheelRun
	id        NodeID
	neighbors []NodeID
	nbrDense  []int32
	clamp     []float64
	now       float64
	depth     int64
}

func (c *shardWheelCtx) ID() NodeID          { return c.id }
func (c *shardWheelCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardWheelCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.run
	d := r.delay(r.rng, c.id, to)
	checkDelay(d, c.id, to)
	t := c.now + d
	if r.fifo {
		if last := c.clamp[ni]; t < last {
			t = last
		}
		c.clamp[ni] = t
	}
	r.seq++
	toDense := c.nbrDense[ni]
	r.shards[r.owner[toDense]].wheel.push(event{t: t, seq: r.seq, depth: c.depth + 1, from: c.id, to: to, toDense: toDense, msg: m})
}

func (c *shardWheelCtx) Logf(format string, args ...any) {
	if c.run.trace != nil {
		c.run.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

type shardWheelRun struct {
	rng    *rand.Rand
	delay  DelayFn
	fifo   bool
	trace  func(TraceEvent)
	seq    int64
	owner  []int32
	local  []int32
	shards []wheelShard
}

// runShardedWheel executes the randomised-delay tier: every shard owns its
// nodes' wheel, clamps and report, and the run pops the globally minimal
// (time, seq) event across the shard wheels — the identical schedule, RNG
// draw order and trace as EventEngine's single wheel, with partitioned
// ownership. No lookahead exists below the unit bound (delays can be
// arbitrarily small), so this path trades no exactness for parallelism.
func (e *ShardedEngine) runShardedWheel(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time) (map[NodeID]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	run := &shardWheelRun{
		rng:    rand.New(rand.NewSource(e.Seed)),
		delay:  e.Delay,
		fifo:   e.FIFO,
		trace:  e.Trace,
		owner:  part.Owners(),
		local:  make([]int32, n),
		shards: make([]wheelShard, S),
	}
	for si := range run.shards {
		sh := &run.shards[si]
		nodes := part.Nodes(si)
		sh.ctxs = make([]shardWheelCtx, len(nodes))
		sh.protos = make([]Protocol, len(nodes))
		degSum := 0
		for _, v := range nodes {
			degSum += c.Degree(v)
		}
		sh.clamp = make([]float64, degSum)
		sh.report = newReport()
		at := 0
		for li, v := range nodes {
			run.local[v] = int32(li)
			deg := c.Degree(v)
			sh.ctxs[li] = shardWheelCtx{
				run:       run,
				id:        ids[v],
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
				clamp:     sh.clamp[at : at+deg],
			}
			at += deg
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	// All nodes start independently; Init runs at time zero in ID order.
	for v := int32(0); int(v) < n; v++ {
		sh := &run.shards[run.owner[v]]
		sh.protos[run.local[v]].Init(&sh.ctxs[run.local[v]])
	}
	var delivered int64
	for {
		best := -1
		var bestEv event
		for si := range run.shards {
			w := &run.shards[si].wheel
			if w.empty() {
				continue
			}
			if ev := w.peek(); best < 0 || ev.before(bestEv) {
				best, bestEv = si, ev
			}
		}
		if best < 0 {
			break
		}
		if delivered >= maxMsgs {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		sh := &run.shards[best]
		ev := sh.wheel.pop()
		li := run.local[ev.toDense]
		ctx := &sh.ctxs[li]
		ctx.now = ev.t
		ctx.depth = ev.depth
		sh.report.record(ev.from, ev.msg, ev.depth)
		delivered++
		if ev.t > sh.report.VirtualTime {
			sh.report.VirtualTime = ev.t
		}
		if run.trace != nil {
			run.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
		}
		sh.protos[li].Recv(ctx, ev.from, ev.msg)
	}
	rep := newReport()
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make(map[NodeID]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range part.Nodes(si) {
			protos[ids[v]] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

var _ SnapshotEngine = (*ShardedEngine)(nil)
var _ ResumableEngine = (*ShardedEngine)(nil)
