package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mdegst/internal/graph"
)

// The shard-partitioned runtime (DESIGN.md §7, §12). ShardedEngine splits
// the per-node state plane of a run — protocol instances, contexts, FIFO
// clamp intervals, delivery queues — into shards that each own one slice of
// the snapshot's dense node range, per a graph.Partition. The point is
// multi-core execution of a *single* run (the experiment harness already
// parallelises across trials): under the paper's unit-delay model the
// (0, 1] delay bound is a conservative lookahead-1 window, so all
// deliveries of one round are mutually independent and shards can process
// their own nodes concurrently, exchanging cross-shard messages through a
// single-copy scatter computed at the round barrier.
//
// Determinism is exact, not statistical: an N-shard run is
// delivery-trace-equivalent to the 1-shard engine (EventEngine) and to
// ReferenceEngine — same per-node Recv sequences, same report, same final
// protocol states — because the canonical order reconstructs the
// single-engine global delivery order from data that does not depend on
// goroutine scheduling:
//
//   - Every delivery of round r has a global rank: its position in the
//     round's delivery list as the 1-shard engine would order it.
//   - A message is keyed (parent rank, send position): the rank of the
//     delivery whose handler sent it, and the index of the send within
//     that handler call. The 1-shard engine appends sends in exactly
//     (rank, position) order, so sorting round r+1 by key *is* the
//     1-shard order.
//   - At the barrier one prefix scan over the per-delivery,
//     per-destination send counts turns the keys into placements: the
//     global rank of every queued message (off[parent] + pos) and its
//     exact slot in its destination shard's inbox. Senders then scatter
//     each record once, directly into place — every inbox is its shard's
//     rank-sorted subsequence of the global order, so delivering a round
//     is a sequential walk of shard-local memory. No K-way merge, no
//     in-place rank rewrite, no second copy.
//
// Under randomised delays there is no positive lower bound on a delay, so
// the model offers no lookahead and window-parallel execution cannot be
// conservative. The sharded wheel path therefore keeps the partitioned
// ownership structure — per-shard calendar wheels, clamp slabs and reports
// — but executes deliveries in the global (time, sequence) order by
// popping the minimum across the shard wheels; exact, not parallel.

// ShardedEngine executes a protocol over a snapshot with its state plane
// partitioned into shards. The zero value of every field is usable;
// Shards <= 1 degenerates to EventEngine (the 1-shard engine the N-shard
// runs are trace-equivalent to).
type ShardedEngine struct {
	// Shards is the number of state shards. It is clamped to the node
	// count; values <= 1 run the single-shard event engine.
	Shards int
	// Workers bounds how many OS-level workers drive the shard phases of
	// the unit-delay round path; 0 means min(Shards, GOMAXPROCS). On a
	// single-core machine the phases run inline on one goroutine — same
	// results by construction, none of the handoff cost.
	Workers int
	// Partition, when non-nil, fixes the shard assignment (it must
	// Validate against the snapshot, and Shards, if set, must agree with
	// it). Nil means a contiguous partition computed per run; precompute
	// with graph.PartitionContiguous or graph.PartitionBFS to share the
	// assignment across runs.
	Partition *graph.Partition
	// Seed initialises the delay RNG (randomised-delay path only).
	Seed int64
	// Delay draws per-message delays; nil means UnitDelay.
	Delay DelayFn
	// FIFO preserves per-link delivery order under random delays.
	FIFO bool
	// MaxMessages aborts the run when exceeded (0 means
	// DefaultMaxMessages). The sharded round path checks the cap at round
	// barriers, so the abort lands at the end of the window that crossed
	// the cap rather than mid-round.
	MaxMessages int64
	// Trace, when non-nil, observes every delivery and Logf note in the
	// exact global delivery order. Tracing forces the round path through
	// its serial schedule (one goroutine merging the shards' rank-sorted
	// inboxes) so events fire at their exact global positions.
	Trace func(TraceEvent)
	// Checkpoint, when non-nil, arms barrier checkpointing exactly as on
	// EventEngine: the sharded round path stops at the barrier after
	// Checkpoint.Round and writes the frozen run (the checkpoint is
	// engine-agnostic — a sharded checkpoint resumes on the unsharded
	// engine and vice versa).
	Checkpoint *CheckpointSpec
	// Stats, when non-nil, accumulates the per-phase wall-time breakdown
	// of the unit-delay round path across the run (deliver/scan/scatter
	// walls, barrier-wait imbalance, park counts — see PhaseStats). Nil
	// keeps the hot path free of clock reads.
	Stats *PhaseStats

	// cache holds the last run's round-path scratch on the engine itself.
	// The shared pool is a GC victim: a grid-1M run allocates enough to
	// trigger a collection per run, which empties the pool and forces the
	// next run to re-grow ~100MB of slabs — the engine-held reference
	// survives collections for as long as the engine does, so replaying
	// runs on one engine is allocation-free regardless of GC pressure.
	// Swapped atomically: racing runs on one engine degrade to the pool,
	// never to a shared scratch.
	cache atomic.Pointer[shardedScratch]
}

// shardDelivery is one queued message of the sharded round path: a flat
// record (rank, endpoints, WireMsg) with no pointers, so the staging and
// inbox slabs are plain arenas — refilled by append, consumed by indexed
// reads, invisible to the GC.
//
// rank is materialised in two steps. When the send is appended to its
// source shard's staging stream, rank holds the global rank of the
// *sending* delivery (its dense node index during Init) and pos the send's
// index within that handler call — the canonical (parent rank, position)
// key. The scatter phase materialises the delivery's own global rank
// (off[parent] + pos) into the record as it lands at its final slot in the
// destination inbox; from then on ordering, delivery accounting and
// checkpointing all read the single int64.
type shardDelivery struct {
	rank      int64
	pos       int32 // index of this send within the sending handler call (dead after the scatter)
	fromDense int32
	toLocal   int32 // index of the destination in its owner shard's node list
	from      NodeID
	msg       WireMsg
}

// shardRoundCtx is the Context handed to protocols on the sharded round
// path. rank is the global rank of the delivery being processed (the dense
// node index while Init runs), sends counts the handler's sends so far, and
// row is the delivery's stride-S row of the shared count plane — Send
// tallies each send under its destination shard there, which is everything
// the barrier scan needs to place every message of the next round.
type shardRoundCtx struct {
	shard     *roundShard
	id        NodeID
	dense     int32
	neighbors []NodeID
	nbrDense  []int32
	rank      int64
	sends     int32
	row       []int32
}

func (c *shardRoundCtx) ID() NodeID          { return c.id }
func (c *shardRoundCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardRoundCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	sh := c.shard
	r := sh.run
	toDense := c.nbrDense[ni]
	loc := r.loc[toDense] // owner and local index in one load
	dst := int32(loc >> 32)
	r.sent[c.dense]++ // disjoint across shards: only c's owner writes c.dense
	c.row[dst]++      // per-destination count at this delivery's rank
	sh.stage[dst] = append(sh.stage[dst], shardDelivery{
		rank:      c.rank,
		pos:       c.sends,
		fromDense: c.dense,
		toLocal:   int32(loc),
		from:      c.id,
		msg:       m,
	})
	c.sends++
}

func (c *shardRoundCtx) Logf(format string, args ...any) {
	// Non-nil trace implies the serial schedule, so emitting inline keeps
	// the exact global order.
	if r := c.shard.run; r.trace != nil {
		r.trace(TraceEvent{Time: float64(r.round), Depth: r.round, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

// roundShard owns one slice of the node range on the unit-delay path: the
// protocol instances and contexts of its nodes, its own report, one staging
// stream per destination shard (filled by its handlers' sends, key-sorted
// by construction) and the inbox arena the next round's deliveries are
// scattered into. The inbox is the shard's rank-sorted subsequence of the
// global delivery order — senders place each record at its exact merged
// position — so a round is delivered by walking it start to end. The arena
// is sized (and so first-touched) by the worker that owns the shard and is
// reused round over round: the steady state allocates nothing.
type roundShard struct {
	run    *shardedRoundRun
	index  int32
	nodes  []int32 // dense indices owned, ascending
	ctxs   []shardRoundCtx
	protos []Protocol
	report *Report
	stage  [][]shardDelivery // [destination shard]: staged sends, key-sorted
	inbox  []shardDelivery   // next/current round, rank-sorted, scatter-filled
	// Pad shards apart: each is written by exactly one worker per phase
	// (append cursors, report counters), and without padding two shards'
	// hot words can share a cache line and ping-pong between cores.
	_ [64]byte
}

// sizeInbox resizes the inbox arena for the next window. Growth
// first-touches the new pages on the calling worker — sizeInboxes routes
// each shard's resize to its owning worker — and once warm this is a pure
// reslice. Growth doubles the capacity: a flood wavefront widens a little
// every window, and exact-fit growth would reallocate the arena once per
// window for the whole growing half of the wave (O(peak × windows) bytes
// on a cold run) instead of O(peak).
func (sh *roundShard) sizeInbox(need int64) {
	if int64(cap(sh.inbox)) < need {
		newCap := 2 * int64(cap(sh.inbox))
		if newCap < need {
			newCap = need
		}
		sh.inbox = make([]shardDelivery, need, newCap)
	} else {
		sh.inbox = sh.inbox[:need]
	}
}

// shardedRoundRun is the state shared by all shards of one round-path run.
// Everything here is either immutable during a phase (owner/local/ids,
// off, stride, round) or written at disjoint indices (cntv rows, inbox
// slots, sent), so the parallel phases need no locks; the per-phase
// barrier publishes updates.
type shardedRoundRun struct {
	shards  []roundShard
	owner   []int32 // dense node -> shard
	local   []int32 // dense node -> index in its shard's node list
	loc     []int64 // dense node -> owner<<32 | local, one load on the send path
	sent    []int64 // dense node -> messages sent, written only by the owner shard
	ids     []NodeID
	trace   func(TraceEvent)
	round   int64
	workers int
	stride  int // shard count: the row width of the count plane
	// off maps a queued delivery's (parent rank, pos) key to its global
	// rank: rank = off[parent] + pos. cntv is the stride-S count plane:
	// while a round plays, cntv[rank*S+d] collects how many sends delivery
	// rank made to shard d (each row written only by the rank's owner);
	// the barrier scan then rewrites the rows in place into
	// per-destination exclusive prefixes — each parent's base slot in each
	// destination inbox — computing off and the next inbox sizes (dstTot)
	// in the same pass. Entries are 32-bit: a window beyond 2^31
	// deliveries is unrepresentable anyway (its slabs alone would exceed
	// 100 GB).
	off    []int64
	cntv   []int32
	dstTot []int64
	// chunkTot holds the per-chunk totals of the parallel scan, stride
	// S+1: S per-destination totals plus the rank total.
	chunkTot []int64
	cursors  []int // serial-schedule merge cursors, one per shard
	stats    *PhaseStats
	clocks   []workerClock // per-worker busy ns, armed with stats
	// statsWall0 snapshots the armed stats' phase-wall sum at run start so
	// release can fold this run's barrier-wait delta without mixing in
	// earlier runs accumulated on the same PhaseStats.
	statsWall0 time.Duration
}

// playInit runs Init for this shard's nodes in ascending dense order,
// tallying each node's sends per destination under its dense index — the
// Init "rank". Globally the keys (dense index, pos) sort to exactly the
// 1-shard Init order, whatever the shard interleaving.
func (sh *roundShard) playInit() {
	r := sh.run
	S := r.stride
	for li := range sh.nodes {
		ctx := &sh.ctxs[li]
		ctx.rank = int64(sh.nodes[li])
		ctx.sends = 0
		base := int(ctx.rank) * S
		row := r.cntv[base : base+S]
		clear(row)
		ctx.row = row
		sh.protos[li].Init(ctx)
	}
}

// playRound processes this shard's share of the current round: a
// sequential walk of its own inbox, already in global rank order because
// the scatter placed every record at its exact merged position. Per-
// delivery accounting goes to the shard's own report; send counts land in
// the delivery's row of the shared count plane (disjoint across shards by
// construction — every rank has exactly one owner).
func (sh *roundShard) playRound() {
	r := sh.run
	S := r.stride
	round := r.round
	for i := range sh.inbox {
		d := &sh.inbox[i]
		ctx := &sh.ctxs[d.toLocal]
		ctx.rank = d.rank
		ctx.sends = 0
		base := int(d.rank) * S
		row := r.cntv[base : base+S]
		clear(row)
		ctx.row = row
		sh.report.recordKR(d.msg, round)
		sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
	}
}

// scatter drains this shard's staging streams into the destination
// inboxes, writing each record once at its final merged position. For a
// record with key (parent, pos) bound for shard d, the barrier scan left
// the parent's base slot at cntv[parent*S+d]; the record's offset from
// that base is its run index among the parent's sends to d, which the walk
// derives for free because streams are key-sorted (a counter reset at
// parent boundaries). The record's own global rank, off[parent] + pos, is
// materialised as it lands. Writes from different sources never collide —
// every parent rank has exactly one owner shard — so the scatter runs
// source-parallel with no locks, and each stream is truncated once
// drained, ready for the next round's sends.
func (sh *roundShard) scatter() {
	r := sh.run
	S := r.stride
	off := r.off
	cntv := r.cntv
	for d := range sh.stage {
		q := sh.stage[d]
		if len(q) == 0 {
			continue
		}
		inbox := r.shards[d].inbox
		parent := int64(-1)
		at := 0
		for i := range q {
			rec := &q[i]
			if rec.rank != parent {
				parent = rec.rank
				at = int(cntv[int(parent)*S+d])
			}
			out := &inbox[at]
			*out = *rec
			out.rank = off[parent] + int64(rec.pos)
			at++
		}
		sh.stage[d] = q[:0]
	}
}

// playRoundSerial is the traced schedule: one goroutine delivers the whole
// round in global rank order by merging the shards' rank-sorted inboxes,
// emitting each trace event before the handler runs (trace callbacks must
// see the message before the protocol recycles it). Results are identical
// to the parallel schedule — only the wall-clock interleaving differs —
// because keys, ranks and inbox contents are the same either way.
func (r *shardedRoundRun) playRoundSerial() {
	S := r.stride
	cursors := r.cursors
	for si := range cursors {
		cursors[si] = 0
	}
	t := float64(r.round)
	for {
		best := -1
		bestRank := int64(0)
		for si := range r.shards {
			in := r.shards[si].inbox
			if cursors[si] >= len(in) {
				continue
			}
			if k := in[cursors[si]].rank; best < 0 || k < bestRank {
				best, bestRank = si, k
			}
		}
		if best < 0 {
			return
		}
		sh := &r.shards[best]
		d := &sh.inbox[cursors[best]]
		cursors[best]++
		ctx := &sh.ctxs[d.toLocal]
		ctx.rank = d.rank
		ctx.sends = 0
		base := int(d.rank) * S
		row := r.cntv[base : base+S]
		clear(row)
		ctx.row = row
		sh.report.recordKR(d.msg, r.round)
		if r.trace != nil {
			r.trace(TraceEvent{Time: t, Depth: r.round, From: d.from, To: ctx.id, Msg: d.msg})
		}
		sh.protos[d.toLocal].Recv(ctx, d.from, d.msg)
	}
}

// scanWindow closes a window serially: off[rank] becomes the global-rank
// base of delivery rank's sends, each count-plane row its per-destination
// scatter bases, dstTot the next inbox sizes. Returns the next window's
// delivery total.
func (r *shardedRoundRun) scanWindow() int64 {
	S := r.stride
	clear(r.dstTot)
	var tot int64
	for rank := range r.off {
		r.off[rank] = tot
		row := r.cntv[rank*S : rank*S+S]
		for d, v := range row {
			row[d] = int32(r.dstTot[d])
			r.dstTot[d] += int64(v)
			tot += int64(v)
		}
	}
	return tot
}

// The parallel scan splits the window's ranks into one contiguous chunk
// per worker: scanChunk prefix-sums each chunk in place and records its
// (per-destination + rank) total vector, combineChunks exclusive-scans the
// W vectors on the coordinator, shiftChunk adds each chunk's bases back in
// and sizes the inboxes its worker owns. Worth the two extra phase
// barriers only on wide windows; parallelScanMin gates it (a variable so
// tests can force the parallel path on small corpora).
var parallelScanMin = 1 << 15

func (r *shardedRoundRun) chunkBounds(w int) (lo, hi int) {
	n := len(r.off)
	return w * n / r.workers, (w + 1) * n / r.workers
}

func (r *shardedRoundRun) scanChunk(w int) {
	lo, hi := r.chunkBounds(w)
	S := r.stride
	acc := r.chunkTot[w*(S+1) : (w+1)*(S+1)]
	clear(acc)
	for rank := lo; rank < hi; rank++ {
		r.off[rank] = acc[S]
		row := r.cntv[rank*S : rank*S+S]
		for d, v := range row {
			row[d] = int32(acc[d])
			acc[d] += int64(v)
			acc[S] += int64(v)
		}
	}
}

func (r *shardedRoundRun) combineChunks() int64 {
	S := r.stride
	clear(r.dstTot)
	var tot int64
	for w := 0; w < r.workers; w++ {
		acc := r.chunkTot[w*(S+1) : (w+1)*(S+1)]
		for d := 0; d < S; d++ {
			v := acc[d]
			acc[d] = r.dstTot[d]
			r.dstTot[d] += v
		}
		v := acc[S]
		acc[S] = tot
		tot += v
	}
	return tot
}

func (r *shardedRoundRun) shiftChunk(w int) {
	lo, hi := r.chunkBounds(w)
	S := r.stride
	base := r.chunkTot[w*(S+1) : (w+1)*(S+1)]
	// base[S] is the sum of the per-destination bases (counts are
	// non-negative), so zero means the whole chunk is already final.
	if base[S] != 0 {
		for rank := lo; rank < hi; rank++ {
			r.off[rank] += base[S]
			row := r.cntv[rank*S : rank*S+S]
			for d := range row {
				row[d] += int32(base[d])
			}
		}
	}
	r.sizeInboxes(w)
}

// sizeInboxes resizes the inboxes of the shards worker w owns (w, w+W,
// ...) to the next window's totals: arena growth is first-touched by the
// worker that will scan the arena every round.
func (r *shardedRoundRun) sizeInboxes(w int) {
	for si := w; si < len(r.shards); si += r.workers {
		r.shards[si].sizeInbox(r.dstTot[si])
	}
}

// openWindow sizes the rank-indexed slabs for the next window's delivery
// total. No clearing: every off entry is written by the next scan, every
// count-plane row by exactly one delivery.
func (r *shardedRoundRun) openWindow(total int64) {
	if int64(cap(r.off)) < total {
		r.off = make([]int64, total)
	} else {
		r.off = r.off[:total]
	}
	need := total * int64(r.stride)
	if int64(cap(r.cntv)) < need {
		r.cntv = make([]int32, need)
	} else {
		r.cntv = r.cntv[:need]
	}
}

// shardedScratch pools the round-path state across runs, mirroring
// eventScratch: the parallel experiment harness and the benchmarks execute
// thousands of sharded runs over the same shapes, and the per-shard slabs
// are the dominant setup allocation.
type shardedScratch struct {
	run    shardedRoundRun
	local  []int32
	protos [][]Protocol
	ctxs   [][]shardRoundCtx
}

var shardedPool = sync.Pool{New: func() any { return new(shardedScratch) }}

func (s *shardedScratch) reset(c *graph.CSR, part *graph.Partition) {
	n := c.N()
	S := part.Shards()
	if cap(s.local) < n {
		s.local = make([]int32, n)
	}
	s.local = s.local[:n]
	if cap(s.run.shards) < S {
		s.run.shards = make([]roundShard, S)
	}
	s.run.shards = s.run.shards[:S]
	if cap(s.protos) < S {
		s.protos = make([][]Protocol, S)
	}
	s.protos = s.protos[:S]
	if cap(s.ctxs) < S {
		s.ctxs = make([][]shardRoundCtx, S)
	}
	s.ctxs = s.ctxs[:S]
	s.run.stride = S
	// The Init window: every node is a rank, so the rank-indexed slabs
	// open at n and n*S.
	if cap(s.run.off) < n {
		s.run.off = make([]int64, n)
	}
	s.run.off = s.run.off[:n]
	if cap(s.run.cntv) < n*S {
		s.run.cntv = make([]int32, n*S)
	}
	s.run.cntv = s.run.cntv[:n*S]
	if cap(s.run.dstTot) < S {
		s.run.dstTot = make([]int64, S)
	}
	s.run.dstTot = s.run.dstTot[:S]
	if cap(s.run.loc) < n {
		s.run.loc = make([]int64, n)
	}
	s.run.loc = s.run.loc[:n]
	if cap(s.run.sent) < n {
		s.run.sent = make([]int64, n)
	}
	s.run.sent = s.run.sent[:n]
	clear(s.run.sent)
	if cap(s.run.chunkTot) < S*(S+1) {
		s.run.chunkTot = make([]int64, S*(S+1))
	}
	s.run.chunkTot = s.run.chunkTot[:S*(S+1)]
	if cap(s.run.cursors) < S {
		s.run.cursors = make([]int, S)
	}
	s.run.cursors = s.run.cursors[:S]
	s.run.round = 0
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		sh.run = &s.run
		sh.index = int32(si)
		nodes := part.Nodes(si)
		sh.nodes = nodes
		if cap(s.ctxs[si]) < len(nodes) {
			s.ctxs[si] = make([]shardRoundCtx, len(nodes))
		}
		sh.ctxs = s.ctxs[si][:len(nodes)]
		if cap(s.protos[si]) < len(nodes) {
			s.protos[si] = make([]Protocol, len(nodes))
		}
		sh.protos = s.protos[si][:len(nodes)]
		sh.report = newReport()
		if cap(sh.stage) < S {
			sh.stage = make([][]shardDelivery, S)
		}
		sh.stage = sh.stage[:S]
		for d := range sh.stage {
			sh.stage[d] = sh.stage[d][:0]
		}
		sh.inbox = sh.inbox[:0]
	}
}

// release zeroes everything that can pin protocol state or snapshot
// arrays (abnormal exits leave live entries behind); the caller then
// stashes the scratch on the engine's cache or returns it to the pool.
// The delivery slabs are flat pointer-free records and only need
// truncating — reusing them is what keeps sharded allocs flat at any
// shard count. When stats are armed, this is also where the run's
// worker-busy clocks fold into the PhaseStats (release always runs, so
// instrumented runs account their workers even on error paths).
func (s *shardedScratch) release() {
	if st := s.run.stats; st != nil {
		var busy time.Duration
		for i := range s.run.clocks {
			busy += time.Duration(s.run.clocks[i].ns)
			s.run.clocks[i].ns = 0
		}
		st.WorkerBusy += busy
		if s.run.workers > 1 {
			wall := st.Init + st.Deliver + st.Scan + st.Scatter - s.run.statsWall0
			if idle := wall*time.Duration(s.run.workers) - busy; idle > 0 {
				st.BarrierWait += idle
			}
		}
	}
	for si := range s.run.shards {
		sh := &s.run.shards[si]
		for d := range sh.stage {
			sh.stage[d] = sh.stage[d][:0]
		}
		sh.inbox = sh.inbox[:0]
		for i := range sh.ctxs {
			sh.ctxs[i] = shardRoundCtx{}
		}
		clear(sh.protos)
		sh.report = nil
		sh.nodes = nil
		sh.run = nil
	}
	s.run.owner, s.run.ids, s.run.trace = nil, nil, nil
	s.run.stats = nil
}

// Run compiles g and executes the protocol over the snapshot.
func (e *ShardedEngine) Run(g *graph.Graph, f Factory) (map[NodeID]Protocol, *Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence over a compiled snapshot
// with the state plane split across shards. The scheduler tier mirrors
// EventEngine: unit delays run the window-parallel sharded round path,
// anything else the sharded calendar wheels in global order.
func (e *ShardedEngine) RunSnapshot(c *graph.CSR, f Factory) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	dense, rep, err := e.runSnapshotDense(c, f)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

// RunSnapshotDense is RunSnapshot returning the final protocol instances
// dense-indexed (see DenseSnapshotEngine).
func (e *ShardedEngine) RunSnapshotDense(c *graph.CSR, f Factory) (protos []Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	return e.runSnapshotDense(c, f)
}

// runSnapshotDense is the common body of RunSnapshot and RunSnapshotDense;
// callers own panic recovery.
func (e *ShardedEngine) runSnapshotDense(c *graph.CSR, f Factory) ([]Protocol, *Report, error) {
	start := time.Now()
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		// One shard is the event engine, definitionally: the N-shard runs
		// are trace-equivalent to this path.
		ev := &EventEngine{Seed: e.Seed, Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.runSnapshotDense(c, f)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	if isUnitDelay(e.Delay) {
		return e.runShardedRounds(c, part, f, maxMsgs, start, nil)
	}
	if e.Checkpoint != nil {
		return nil, nil, errCheckpointTier
	}
	return e.runShardedWheel(c, part, f, maxMsgs, start)
}

// Resume compiles g and continues a checkpointed run (see ResumeSnapshot).
func (e *ShardedEngine) Resume(g *graph.Graph, f Factory, ck *Checkpoint) (map[NodeID]Protocol, *Report, error) {
	return e.ResumeSnapshot(g.Compile(), f, ck)
}

// ResumeSnapshot continues a run frozen at a round barrier with the state
// plane sharded: protocol states decode into their owner shards, the
// pending slab reseeds the shard inboxes in canonical rank order, and the
// run proceeds window-parallel. Checkpoints are engine-agnostic: any
// unit-delay engine resumes any barrier checkpoint to the identical
// report, trace and final states.
func (e *ShardedEngine) ResumeSnapshot(c *graph.CSR, f Factory, ck *Checkpoint) (protos map[NodeID]Protocol, rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = recoverRun(p)
		}
	}()
	start := time.Now()
	if !isUnitDelay(e.Delay) {
		return nil, nil, errCheckpointTier
	}
	if err := ck.validateAgainst(c); err != nil {
		return nil, nil, err
	}
	part := e.Partition
	S := e.Shards
	if part != nil {
		if err := part.Validate(c); err != nil {
			return nil, nil, err
		}
		if S > 0 && S != part.Shards() {
			return nil, nil, fmt.Errorf("sim: ShardedEngine.Shards=%d disagrees with the %d-shard partition", S, part.Shards())
		}
		S = part.Shards()
	}
	if n := c.N(); S > n && n > 0 {
		S = n
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = DefaultMaxMessages
	}
	if S <= 1 {
		ev := &EventEngine{Delay: e.Delay, FIFO: e.FIFO, MaxMessages: e.MaxMessages, Trace: e.Trace, Checkpoint: e.Checkpoint}
		return ev.ResumeSnapshot(c, f, ck)
	}
	if part == nil {
		part = graph.PartitionContiguous(c, S)
	}
	dense, rep, err := e.runShardedRounds(c, part, f, maxMsgs, start, ck)
	if err != nil {
		return nil, nil, err
	}
	return denseProtoMap(c.Index().IDs(), dense), rep, nil
}

// workerCount resolves the effective OS-level parallelism of the round
// path.
func (e *ShardedEngine) workerCount(shards int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// phaseKind names the barrier-separated parallel phases of a round window.
type phaseKind uint8

const (
	phaseInit    phaseKind = iota // run Init over owned nodes
	phaseRound                    // deliver each shard's inbox, tally sends
	phaseScatter                  // place staged sends into destination inboxes
	phaseScan                     // chunked prefix scan of the count plane (workers only)
	phaseShift                    // add chunk bases, size inboxes (workers only)
	phaseExit                     // release the workers
)

// runShardedRounds is the unit-delay fast path: rounds execute as barrier-
// separated parallel phases over the shard set (serial schedule when
// tracing or when only one worker is available). With ck non-nil the run
// resumes from that barrier instead of starting at Init.
func (e *ShardedEngine) runShardedRounds(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time, ck *Checkpoint) ([]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	scratch := e.cache.Swap(nil)
	if scratch == nil {
		scratch = shardedPool.Get().(*shardedScratch)
	}
	defer func() {
		scratch.release()
		if !e.cache.CompareAndSwap(nil, scratch) {
			shardedPool.Put(scratch)
		}
	}()
	scratch.reset(c, part)
	run := &scratch.run
	run.ids = ids
	run.trace = e.Trace
	run.owner = part.Owners()
	run.workers = e.workerCount(S)
	run.stats = e.Stats
	if st := run.stats; st != nil {
		run.statsWall0 = st.Init + st.Deliver + st.Scan + st.Scatter
		if cap(run.clocks) < run.workers {
			run.clocks = make([]workerClock, run.workers)
		}
		run.clocks = run.clocks[:run.workers]
	}
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			scratch.local[v] = int32(li)
			run.loc[v] = int64(si)<<32 | int64(int32(li))
			sh.ctxs[li] = shardRoundCtx{
				shard:     sh,
				id:        ids[v],
				dense:     v,
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
			}
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	run.local = scratch.local

	var runPhase func(phaseKind)
	parallelScan := false
	switch {
	case e.Trace != nil:
		// Traced schedule: one goroutine merges the inboxes in global rank
		// order so every event fires at its exact position.
		runPhase = func(k phaseKind) {
			switch k {
			case phaseInit:
				// Global dense order so Init-time Logf notes trace in the
				// 1-shard order; sends are key-ordered regardless.
				for v := int32(0); int(v) < n; v++ {
					sh := &run.shards[run.owner[v]]
					ctx := &sh.ctxs[run.local[v]]
					ctx.rank = int64(v)
					ctx.sends = 0
					base := int(v) * S
					row := run.cntv[base : base+S]
					clear(row)
					ctx.row = row
					sh.protos[run.local[v]].Init(ctx)
				}
			case phaseRound:
				run.playRoundSerial()
			case phaseScatter:
				for si := range run.shards {
					run.shards[si].scatter()
				}
			}
		}
	case run.workers == 1:
		// One worker (single-core host): the parallel schedule inline,
		// shard by shard — same phases, no goroutine handoff.
		runPhase = func(k phaseKind) {
			for si := range run.shards {
				switch k {
				case phaseInit:
					run.shards[si].playInit()
				case phaseRound:
					run.shards[si].playRound()
				case phaseScatter:
					run.shards[si].scatter()
				}
			}
		}
	default:
		stop, phase := e.startWorkers(run)
		defer stop()
		runPhase = phase
		parallelScan = true
	}
	if st := run.stats; st != nil {
		// Wrap the shard phases with coordinator walls; the scan is timed
		// at the barrier close (its serial fallback bypasses runPhase).
		inner := runPhase
		runPhase = func(k phaseKind) {
			t0 := time.Now()
			inner(k)
			d := time.Since(t0)
			switch k {
			case phaseInit:
				st.Init += d
			case phaseRound:
				st.Deliver += d
			case phaseScatter:
				st.Scatter += d
			case phaseScan, phaseShift:
				st.Scan += d
			}
		}
	}

	// closeBarrier prefix-scans the window's count plane — chunk-parallel
	// across the workers when the window is wide enough to amortise the
	// two extra phase barriers — and sizes the next inboxes.
	closeBarrier := func() int64 {
		var total int64
		if parallelScan && len(run.off) >= parallelScanMin {
			runPhase(phaseScan)
			total = run.combineChunks()
			runPhase(phaseShift)
		} else {
			var t0 time.Time
			if run.stats != nil {
				t0 = time.Now()
			}
			total = run.scanWindow()
			for si := range run.shards {
				run.shards[si].sizeInbox(run.dstTot[si])
			}
			if run.stats != nil {
				run.stats.Scan += time.Since(t0)
			}
		}
		return total
	}

	spec := e.Checkpoint
	var total, delivered int64
	if ck == nil {
		runPhase(phaseInit)
		total = closeBarrier()
		runPhase(phaseScatter)
		run.openWindow(total)
		if spec != nil && spec.Every == 0 && spec.Round == 0 {
			// Barrier 0: the state right after Init, before any delivery.
			return nil, nil, e.writeShardedCheckpoint(run, c, total)
		}
	} else {
		// Reseed the post-barrier state from the checkpoint: protocol
		// states decode in their owner shards, the report counters land in
		// shard 0 (the merge sums them back), and the pending slab refills
		// the shard inboxes directly — delivery i arrives with its global
		// rank i, appended in rank order, so each inbox is its rank-sorted
		// subsequence exactly as a scatter would have left it. The dense
		// send counters are credited per pending delivery: the checkpoint
		// debited them when it froze the slab (SentBy counts delivered
		// messages only).
		protoView := make([]Protocol, n)
		for si := range run.shards {
			sh := &run.shards[si]
			for li, v := range sh.nodes {
				protoView[v] = sh.protos[li]
			}
		}
		if err := ck.decodeStates(protoView); err != nil {
			return nil, nil, err
		}
		ck.restoreReport(run.shards[0].report)
		run.round = ck.Round
		ids := run.ids
		for i, p := range ck.Pending {
			run.sent[p.From]++
			dst := &run.shards[run.owner[p.To]]
			dst.inbox = append(dst.inbox, shardDelivery{
				rank:      int64(i),
				fromDense: p.From,
				from:      ids[p.From],
				toLocal:   run.local[p.To],
				msg:       p.Msg,
			})
		}
		total = int64(len(ck.Pending))
		run.openWindow(total)
		delivered = run.shards[0].report.Messages
	}
	for {
		// Match the single-shard cap predicate at window granularity: the
		// event engine errors exactly when the planned deliveries exceed
		// the cap (it aborts before the maxMsgs+1-th delivery), so a
		// window that crossed the cap errors here even if the protocol
		// quiesced inside it.
		if delivered > maxMsgs || (delivered >= maxMsgs && total > 0) {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		if total == 0 {
			break
		}
		run.round++
		if run.stats != nil {
			run.stats.Rounds++
		}
		runPhase(phaseRound)
		delivered += total
		total = closeBarrier()
		runPhase(phaseScatter)
		run.openWindow(total)
		if spec != nil {
			if spec.Every > 0 {
				// Periodic cadence: commit and keep running. A resumed run
				// re-enters the loop at ck.Round+1, so the barrier it resumed
				// from is never re-committed.
				if run.round%spec.Every == 0 {
					if err := e.commitShardedCheckpoint(run, c, total); err != nil {
						return nil, nil, err
					}
				}
			} else if run.round == spec.Round {
				return nil, nil, e.writeShardedCheckpoint(run, c, total)
			}
		}
	}

	rep := newReport()
	rep.adoptDenseSent(run.sent, ids)
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.VirtualTime = float64(run.round)
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make([]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protos[v] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

// captureShardedCheckpoint freezes the run at the just-closed barrier: the
// shard inboxes hold the next round's deliveries (total of them) with
// their global ranks materialised by the scatter, and the shard reports
// merge into the frozen counters. The dense send counters are debited per
// in-flight delivery (SentBy counts delivered messages only); a caller
// that keeps the run going must credit them back.
func (e *ShardedEngine) captureShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) (*Checkpoint, error) {
	ck := &Checkpoint{Round: run.round, N: c.N(), HalfEdges: c.HalfEdges()}
	ck.Pending = make([]PendingDelivery, total)
	for si := range run.shards {
		sh := &run.shards[si]
		for i := range sh.inbox {
			del := &sh.inbox[i]
			// Debit the dense send counter: SentBy counts delivered
			// messages, and this one is frozen in flight (resume credits
			// it back when reseeding the slab).
			run.sent[del.fromDense]--
			ck.Pending[del.rank] = PendingDelivery{
				From: del.fromDense,
				To:   sh.nodes[del.toLocal],
				Msg:  del.msg,
			}
		}
	}
	merged := newReport()
	merged.adoptDenseSent(run.sent, run.ids)
	for si := range run.shards {
		merged.MergeParallel(run.shards[si].report)
	}
	ck.captureReport(merged)
	protoView := make([]Protocol, c.N())
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range sh.nodes {
			protoView[v] = sh.protos[li]
		}
	}
	if err := ck.encodeStates(protoView); err != nil {
		return nil, err
	}
	return ck, nil
}

// writeShardedCheckpoint freezes the run at the just-closed barrier, writes
// it to the armed spec and returns ErrCheckpointed.
func (e *ShardedEngine) writeShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) error {
	ck, err := e.captureShardedCheckpoint(run, c, total)
	if err != nil {
		return err
	}
	if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	return ErrCheckpointed
}

// commitShardedCheckpoint durably commits the just-closed barrier through
// the periodic Sink; the run keeps going, so the in-flight debits of the
// dense send counters are credited back after the capture.
func (e *ShardedEngine) commitShardedCheckpoint(run *shardedRoundRun, c *graph.CSR, total int64) error {
	ck, err := e.captureShardedCheckpoint(run, c, total)
	if err != nil {
		return err
	}
	for _, p := range ck.Pending {
		run.sent[p.From]++
	}
	return e.Checkpoint.Sink.Commit(run.round, ck.Write)
}

// runWorkerPhase executes worker w's slice of one phase. Shard phases use
// the static assignment w, w+W, w+2W, ... — which goroutine runs which
// shard never depends on timing — and wrap protocol code in a recover so
// panics surface deterministically (lowest shard first). The scan phases
// split the count plane into per-worker chunks instead; they run no
// protocol code.
func (r *shardedRoundRun) runWorkerPhase(k phaseKind, w int, panics []any) {
	var t0 time.Time
	if r.stats != nil {
		t0 = time.Now()
	}
	switch k {
	case phaseScan:
		r.scanChunk(w)
	case phaseShift:
		r.shiftChunk(w)
	default:
		S := len(r.shards)
		for si := w; si < S; si += r.workers {
			func() {
				defer func() {
					if p := recover(); p != nil {
						panics[si] = p
					}
				}()
				switch k {
				case phaseInit:
					r.shards[si].playInit()
				case phaseRound:
					r.shards[si].playRound()
				case phaseScatter:
					r.shards[si].scatter()
				}
			}()
		}
	}
	if r.stats != nil {
		r.clocks[w].ns += int64(time.Since(t0))
	}
}

// Barrier tuning. A waiter spins on the atomic state — first pure loads,
// then loads with a runtime.Gosched each pass so oversubscribed
// configurations (more workers than GOMAXPROCS) always cede the processor
// to whoever holds the work — and only parks on a condvar once the yield
// budget is spent. Phases are microseconds apart, so the spin window
// catches the steady state with zero futex traffic; the park bound keeps
// stalled configurations (a preempted sibling, protocol work, page
// faults) off the CPU.
const (
	barrierSpinPure  = 64
	barrierSpinYield = 512
)

// phaseBarrier coordinates the persistent workers with the coordinator: a
// sense-reversing barrier where the coordinator's atomic generation bump
// is the publication (each worker's last-seen generation is its sense) and
// an atomic remaining-count closes the phase. Both directions spin first
// and park second, and a parking side registers before re-checking the
// atomic under its mutex, so the waking side can skip the futex entirely
// when nobody is parked — a steady-state round costs no syscalls at all.
type phaseBarrier struct {
	gen       atomic.Uint64
	kind      phaseKind // published by the gen bump: written before the
	// bump, read only after observing it (the atomic creates the
	// happens-before), and never written again until every worker checked
	// in — so the plain field is race-free.
	remaining   atomic.Int32
	waiters     atomic.Int32 // workers parked (or committing to park)
	coordParked atomic.Bool
	mu          sync.Mutex
	cond        *sync.Cond
	doneMu      sync.Mutex
	doneCond    *sync.Cond
	workerParks atomic.Int64
	coordParks  atomic.Int64
}

func newPhaseBarrier() *phaseBarrier {
	b := &phaseBarrier{}
	b.cond = sync.NewCond(&b.mu)
	b.doneCond = sync.NewCond(&b.doneMu)
	return b
}

// post publishes the next phase to w workers. The remaining-count reset is
// safe to reorder freely before the bump: no worker can be between phases
// (awaitDone saw the previous count hit zero before post can run again).
func (b *phaseBarrier) post(k phaseKind, w int32) {
	b.kind = k
	b.remaining.Store(w)
	b.gen.Add(1)
	if b.waiters.Load() > 0 {
		// A worker registered in waiters either sees the new generation in
		// its re-check (and never sleeps) or is inside Wait — taking the
		// mutex here orders the broadcast after that re-check, so the
		// wakeup cannot be lost.
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// awaitPhase blocks worker-side until a generation newer than seen is
// published, returning the new generation and its phase kind.
func (b *phaseBarrier) awaitPhase(seen uint64) (uint64, phaseKind) {
	for i := 0; i < barrierSpinPure; i++ {
		if g := b.gen.Load(); g != seen {
			return g, b.kind
		}
	}
	for i := 0; i < barrierSpinYield; i++ {
		if g := b.gen.Load(); g != seen {
			return g, b.kind
		}
		runtime.Gosched()
	}
	b.workerParks.Add(1)
	b.mu.Lock()
	b.waiters.Add(1)
	for b.gen.Load() == seen {
		b.cond.Wait()
	}
	b.waiters.Add(-1)
	b.mu.Unlock()
	// The generation is stable until this worker (among others) checks in,
	// so the re-load pairs with the kind read exactly like the fast path.
	return b.gen.Load(), b.kind
}

// done checks this worker in; the last one wakes the coordinator if it
// parked. The decrement/park-flag pair is the mirror of awaitDone's
// flag-set/re-check: one side always observes the other.
func (b *phaseBarrier) done() {
	if b.remaining.Add(-1) == 0 && b.coordParked.Load() {
		b.doneMu.Lock()
		b.doneCond.Signal()
		b.doneMu.Unlock()
	}
}

// awaitDone blocks coordinator-side until every worker checked in.
func (b *phaseBarrier) awaitDone() {
	for i := 0; i < barrierSpinPure; i++ {
		if b.remaining.Load() == 0 {
			return
		}
	}
	for i := 0; i < barrierSpinYield; i++ {
		if b.remaining.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	b.coordParks.Add(1)
	b.doneMu.Lock()
	b.coordParked.Store(true)
	for b.remaining.Load() != 0 {
		b.doneCond.Wait()
	}
	b.coordParked.Store(false)
	b.doneMu.Unlock()
}

// startWorkers launches the persistent phase workers of the parallel
// schedule. The coordinator publishes each phase through the spin-then-
// park barrier — the steady state is handful-of-atomics cheap, with no
// futex wake on either side — and the returned phase function blocks until
// every worker finished, re-raising the first (lowest-shard) protocol
// panic on the coordinator, where RunSnapshot's recover converts it. stop
// must be called exactly once to release the workers.
func (e *ShardedEngine) startWorkers(run *shardedRoundRun) (stop func(), phase func(phaseKind)) {
	S := len(run.shards)
	W := run.workers
	b := newPhaseBarrier()
	panics := make([]any, S)
	for w := 0; w < W; w++ {
		go func(w int) {
			var seen uint64
			for {
				g, k := b.awaitPhase(seen)
				seen = g
				if k == phaseExit {
					return
				}
				run.runWorkerPhase(k, w, panics)
				b.done()
			}
		}(w)
	}
	stop = func() {
		b.post(phaseExit, int32(W))
		if st := run.stats; st != nil {
			st.WorkerParks += b.workerParks.Load()
			st.CoordParks += b.coordParks.Load()
		}
	}
	phase = func(k phaseKind) {
		b.post(k, int32(W))
		b.awaitDone()
		for si := range panics {
			if p := panics[si]; p != nil {
				panic(p)
			}
		}
	}
	return stop, phase
}


// --- randomised-delay path: sharded state, global (time, seq) order ---

// wheelShard owns one slice of the node range on the randomised-delay
// path: its nodes' contexts and protocols, a calendar wheel holding the
// pending deliveries addressed to them, the FIFO clamp slab of their
// outgoing links, and its own report.
type wheelShard struct {
	wheel  bucketQueue
	ctxs   []shardWheelCtx
	protos []Protocol
	clamp  []float64
	report *Report
}

type shardWheelCtx struct {
	run       *shardWheelRun
	id        NodeID
	neighbors []NodeID
	nbrDense  []int32
	clamp     []float64
	now       float64
	depth     int64
}

func (c *shardWheelCtx) ID() NodeID          { return c.id }
func (c *shardWheelCtx) Neighbors() []NodeID { return c.neighbors }

func (c *shardWheelCtx) Send(to NodeID, m WireMsg) {
	ni := neighborIndex(c.neighbors, to)
	if ni < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbour %d", c.id, to))
	}
	r := c.run
	d := r.delay(r.rng, c.id, to)
	checkDelay(d, c.id, to)
	t := c.now + d
	if r.fifo {
		if last := c.clamp[ni]; t < last {
			t = last
		}
		c.clamp[ni] = t
	}
	r.seq++
	toDense := c.nbrDense[ni]
	dst := r.owner[toDense]
	ev := event{t: t, seq: r.seq, depth: c.depth + 1, from: c.id, to: to, toDense: toDense, msg: m}
	r.shards[dst].wheel.push(ev)
	// A cross-shard send can land ahead of the window limit the current
	// shard is draining under; tighten the limit so the drain stops before
	// overtaking it (the window invariant: other shards' heads only change
	// through these pushes).
	if dst != r.curShard && (!r.hasLimit || ev.before(r.limit)) {
		r.limit, r.hasLimit = ev, true
	}
}

func (c *shardWheelCtx) Logf(format string, args ...any) {
	if c.run.trace != nil {
		c.run.trace(TraceEvent{Time: c.now, Depth: c.depth, To: c.id, Note: fmt.Sprintf(format, args...)})
	}
}

type shardWheelRun struct {
	rng    *rand.Rand
	delay  DelayFn
	fifo   bool
	trace  func(TraceEvent)
	seq    int64
	owner  []int32
	local  []int32
	shards []wheelShard
	// Speculative window state: curShard is the shard whose wheel is being
	// drained, and limit the earliest event any other shard holds (tightened
	// by cross-shard Sends mid-drain). The drain stops before its head
	// reaches limit, so every pop is still the global (time, seq) minimum.
	curShard int32
	limit    event
	hasLimit bool
}

// runShardedWheel executes the randomised-delay tier: every shard owns its
// nodes' wheel, clamps and report, and the run delivers events in the
// global (time, seq) order — the identical schedule, RNG draw order and
// trace as EventEngine's single wheel, with partitioned ownership.
//
// Rather than paying an S-way peek tournament per event, the run drains
// speculative per-shard windows: the tournament picks the shard holding
// the global minimum once, then pops that shard's wheel for as long as its
// head stays before the earliest event any *other* shard holds (the window
// limit). The invariant making this exact is that while one shard drains,
// other shards' wheels change only through the draining shard's own
// cross-shard sends — and Send tightens the limit whenever such a push
// lands ahead of it. So at every pop the drained head is still the global
// minimum, and the window costs one comparison per event instead of S
// peeks. No lookahead exists below the unit bound (delays can be
// arbitrarily small), so the windows close exactly at cross-shard event
// times — speculation never reorders anything.
func (e *ShardedEngine) runShardedWheel(c *graph.CSR, part *graph.Partition, f Factory, maxMsgs int64, start time.Time) ([]Protocol, *Report, error) {
	n := c.N()
	S := part.Shards()
	ids := c.Index().IDs()
	run := &shardWheelRun{
		rng:    rand.New(rand.NewSource(e.Seed)),
		delay:  e.Delay,
		fifo:   e.FIFO,
		trace:  e.Trace,
		owner:  part.Owners(),
		local:  make([]int32, n),
		shards: make([]wheelShard, S),
	}
	for si := range run.shards {
		sh := &run.shards[si]
		nodes := part.Nodes(si)
		sh.ctxs = make([]shardWheelCtx, len(nodes))
		sh.protos = make([]Protocol, len(nodes))
		degSum := 0
		for _, v := range nodes {
			degSum += c.Degree(v)
		}
		sh.clamp = make([]float64, degSum)
		sh.report = newReport()
		at := 0
		for li, v := range nodes {
			run.local[v] = int32(li)
			deg := c.Degree(v)
			sh.ctxs[li] = shardWheelCtx{
				run:       run,
				id:        ids[v],
				neighbors: c.NeighborIDs(v),
				nbrDense:  c.Neighbors(v),
				clamp:     sh.clamp[at : at+deg],
			}
			at += deg
			sh.protos[li] = f(ids[v], sh.ctxs[li].neighbors)
		}
	}
	// All nodes start independently; Init runs at time zero in ID order.
	// No window is open yet, so Init-time sends must not tighten a limit.
	run.curShard = -1
	for v := int32(0); int(v) < n; v++ {
		sh := &run.shards[run.owner[v]]
		sh.protos[run.local[v]].Init(&sh.ctxs[run.local[v]])
	}
	var delivered int64
	for {
		// Window tournament: find the shard holding the global minimum and
		// the earliest head among the others — the window limit.
		best := -1
		var bestEv event
		for si := range run.shards {
			w := &run.shards[si].wheel
			if w.empty() {
				continue
			}
			if ev := w.peek(); best < 0 || ev.before(bestEv) {
				best, bestEv = si, ev
			}
		}
		if best < 0 {
			break
		}
		run.hasLimit = false
		for si := range run.shards {
			if si == best || run.shards[si].wheel.empty() {
				continue
			}
			if ev := run.shards[si].wheel.peek(); !run.hasLimit || ev.before(run.limit) {
				run.limit, run.hasLimit = ev, true
			}
		}
		run.curShard = int32(best)
		sh := &run.shards[best]
		for {
			if delivered >= maxMsgs {
				return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
			}
			ev := sh.wheel.pop()
			li := run.local[ev.toDense]
			ctx := &sh.ctxs[li]
			ctx.now = ev.t
			ctx.depth = ev.depth
			sh.report.record(ev.from, ev.msg, ev.depth)
			delivered++
			if ev.t > sh.report.VirtualTime {
				sh.report.VirtualTime = ev.t
			}
			if run.trace != nil {
				run.trace(TraceEvent{Time: ev.t, Depth: ev.depth, From: ev.from, To: ev.to, Msg: ev.msg})
			}
			sh.protos[li].Recv(ctx, ev.from, ev.msg)
			if sh.wheel.empty() {
				break
			}
			if run.hasLimit && !sh.wheel.peek().before(run.limit) {
				break
			}
		}
		run.curShard = -1
	}
	rep := newReport()
	for si := range run.shards {
		rep.MergeParallel(run.shards[si].report)
	}
	rep.Shards = S
	rep.finalize()
	rep.Wall = time.Since(start)
	protos := make([]Protocol, n)
	for si := range run.shards {
		sh := &run.shards[si]
		for li, v := range part.Nodes(si) {
			protos[v] = sh.protos[li]
		}
	}
	return protos, rep, nil
}

var _ SnapshotEngine = (*ShardedEngine)(nil)
var _ DenseSnapshotEngine = (*ShardedEngine)(nil)
var _ ResumableEngine = (*ShardedEngine)(nil)
