package sim

import "time"

// PhaseStats breaks down where a sharded round run spends its wall time,
// phase by phase (DESIGN.md §12). Arm it by setting ShardedEngine.Stats;
// the engine accumulates across every run executed with the same instance,
// so a benchmark loop aggregates naturally. All counters are written by
// the coordinator goroutine (per-phase walls, at phase boundaries) or
// folded once per run from per-worker padded clocks — arming stats adds
// two clock reads per phase and nothing per message.
//
// The buckets mirror the round pipeline: Deliver is the inbox walk that
// runs the protocol handlers and tallies send counts, Scan the barrier
// prefix scan that turns counts into placements (serial or chunk-parallel
// with its combine and shift), Scatter the single-copy placement of staged
// sends into the destination inboxes. BarrierWait is the workers' idle
// time at phase barriers — W × (sum of phase walls) − WorkerBusy — which
// is where shard imbalance and handoff latency show up. WorkerParks and
// CoordParks count how often a spin window expired and a waiter actually
// parked on a futex: zero in a healthy steady state, climbing under
// oversubscription or very long phases.
type PhaseStats struct {
	// Rounds counts closed round windows (Init's window excluded).
	Rounds int64 `json:"rounds"`
	// Init is the wall time of the Init phase.
	Init time.Duration `json:"init_ns"`
	// Deliver is the wall time of the delivery phases (inbox walks).
	Deliver time.Duration `json:"deliver_ns"`
	// Scan is the wall time of the barrier prefix scans (including the
	// parallel scan's combine and shift).
	Scan time.Duration `json:"scan_ns"`
	// Scatter is the wall time of the scatter phases (staged sends placed
	// into destination inboxes).
	Scatter time.Duration `json:"scatter_ns"`
	// BarrierWait is the workers' summed idle time at phase barriers.
	BarrierWait time.Duration `json:"barrier_wait_ns"`
	// WorkerBusy is the workers' summed in-phase busy time.
	WorkerBusy time.Duration `json:"worker_busy_ns"`
	// WorkerParks counts workers that outspun their budget and parked
	// waiting for a phase; CoordParks the same for the coordinator
	// waiting on phase completion.
	WorkerParks int64 `json:"worker_parks"`
	CoordParks  int64 `json:"coord_parks"`
}

// workerClock is one worker's busy-time accumulator, padded to a cache
// line of its own so concurrent workers never share one.
type workerClock struct {
	ns int64
	_  [56]byte
}
