package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"mdegst/internal/graph"
)

// Byte-exact checkpoint/resume (DESIGN.md §8). At an inter-round barrier
// of the unit-delay tiers the complete in-flight state of a run is three
// flat things: the per-node protocol states, the pending delivery slab of
// the next round (WireMsg records in global send order) and the report
// counters accumulated so far. A Checkpoint captures exactly those, and
// the versioned file form makes long runs restartable: resuming yields a
// Report, delivery trace and final protocol states bitwise-identical to
// the uninterrupted run.
//
// Opcode numbers are process-local (package init order), so the file
// carries an explicit opcode table of kind strings; the reader translates
// back through the registry and fails with a typed error on kinds the
// running binary does not know.

// StateCodec is implemented by protocols whose node state can be frozen at
// a round barrier. Encode and Decode must mirror each other exactly; the
// factory-supplied construction state (identity, neighbour list, static
// configuration) need not be encoded — Resume rebuilds instances through
// the same Factory before decoding.
type StateCodec interface {
	EncodeState(e *StateEncoder)
	DecodeState(d *StateDecoder) error
}

// CheckpointSpec arms barrier checkpointing on an engine in one of two
// modes. Freeze mode (Every == 0): the run stops at the barrier after
// round Round (0 = right after Init) and writes the frozen run to W,
// returning ErrCheckpointed; if the run quiesces before reaching the
// barrier it completes normally and no checkpoint is written. Periodic
// mode (Every > 0): at every barrier whose round is a positive multiple of
// Every the engine commits a checkpoint through Sink and keeps running —
// there is always a recent recovery point, and the run finishes normally.
// Round is ignored in periodic mode. A resumed run never re-commits the
// barrier it resumed from; its later cadence barriers produce files
// byte-identical to an uninterrupted run's.
type CheckpointSpec struct {
	Round int64
	W     io.Writer
	// Every switches to the periodic cadence when > 0.
	Every int64
	// Sink receives periodic commits (and, when set, takes precedence over
	// W for stop-requested commits on the distributed engine).
	Sink CheckpointSink
}

// CheckpointSink durably stores periodic checkpoints. Commit must make the
// checkpoint either fully visible or not at all — a crash mid-commit must
// never leave a recovery point that parses but lies (CheckpointDir uses
// write-to-temp + rename). write streams the checkpoint's byte form.
type CheckpointSink interface {
	Commit(round int64, write func(io.Writer) error) error
}

// ErrCheckpointed is returned by a run that stopped at its armed barrier
// after writing the checkpoint. It is a clean stop, not a failure.
var ErrCheckpointed = errors.New("sim: run checkpointed at its round barrier")

// ErrStopped is returned by a run that honoured a graceful stop request at
// a round barrier (the distributed engine's cluster-wide stop agreement).
// Like ErrCheckpointed it is a clean stop, not a failure; a final
// checkpoint was committed first when one was armed.
var ErrStopped = errors.New("sim: run stopped at a round barrier on request")

// errCheckpointTier rejects checkpoint requests outside the unit-delay
// round tiers, the only schedules with barriers to cut at.
var errCheckpointTier = errors.New("sim: checkpoint/resume requires the unit-delay round tier")

// CheckpointError is the typed error for malformed or mismatched
// checkpoint files.
type CheckpointError struct{ Reason string }

func (e *CheckpointError) Error() string { return "sim: checkpoint: " + e.Reason }

// ResumableEngine is implemented by engines that can continue a
// checkpointed run over a compiled snapshot.
type ResumableEngine interface {
	SnapshotEngine
	ResumeSnapshot(c *graph.CSR, f Factory, ck *Checkpoint) (map[NodeID]Protocol, *Report, error)
}

// PendingDelivery is one in-flight message of the checkpointed barrier:
// dense endpoints plus the wire record, in global send order.
type PendingDelivery struct {
	From, To int32
	Msg      WireMsg
}

// KindRoundCount is one (opcode, round) counter of the frozen report.
type KindRoundCount struct {
	Op    Op
	Round int
	Count int64
}

// SentByCount is one per-node send counter of the frozen report.
type SentByCount struct {
	Node  NodeID
	Count int64
}

// Checkpoint is a run frozen at a round barrier.
type Checkpoint struct {
	// Round is the barrier: all deliveries of rounds 1..Round happened,
	// Pending holds round Round+1.
	Round int64
	// N and HalfEdges fingerprint the snapshot the run executed over;
	// resume validates them.
	N, HalfEdges int
	// Frozen report counters.
	Messages, Words, CausalDepth int64
	MaxWords                     int
	KindRounds                   []KindRoundCount
	SentBy                       []SentByCount
	// States holds one encoded protocol state per dense node index.
	States [][]byte
	// Pending is the next round's delivery slab in global send order.
	Pending []PendingDelivery

	// tab is the opcode translation table the state blobs were encoded
	// with (captures build it eagerly so blobs and file share indices);
	// opDec is the reverse translation handed to state decoders.
	tab   *ckptOpTable
	opDec func(uint64) (Op, error)
}

// captureReport freezes r's counters into ck, sorting the map-backed
// breakdowns so the byte form is deterministic.
func (ck *Checkpoint) captureReport(r *Report) {
	r.syncHot() // fold any recordFast accumulators; the maps are read below
	ck.Messages = r.Messages
	ck.Words = r.Words
	ck.MaxWords = r.MaxWords
	ck.CausalDepth = r.CausalDepth
	ck.KindRounds = ck.KindRounds[:0]
	for k, v := range r.kindRound {
		ck.KindRounds = append(ck.KindRounds, KindRoundCount{Op: k.op, Round: k.round, Count: v})
	}
	sort.Slice(ck.KindRounds, func(i, j int) bool {
		a, b := ck.KindRounds[i], ck.KindRounds[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Round < b.Round
	})
	ck.SentBy = ck.SentBy[:0]
	for n, v := range r.SentBy {
		ck.SentBy = append(ck.SentBy, SentByCount{Node: n, Count: v})
	}
	sort.Slice(ck.SentBy, func(i, j int) bool { return ck.SentBy[i].Node < ck.SentBy[j].Node })
}

// restoreReport loads ck's counters into a fresh report.
func (ck *Checkpoint) restoreReport(r *Report) {
	r.Messages = ck.Messages
	r.Words = ck.Words
	r.MaxWords = ck.MaxWords
	r.CausalDepth = ck.CausalDepth
	for _, kr := range ck.KindRounds {
		r.kindRound[kindRoundKey{op: kr.Op, round: kr.Round}] = kr.Count
	}
	for _, s := range ck.SentBy {
		r.SentBy[s.Node] = s.Count
	}
}

// encodeStates freezes every protocol's state; all must implement
// StateCodec. The checkpoint's opcode table is created here so state
// blobs and the file body share one numbering, and the reverse mapping is
// bound for in-memory resumes that skip the file round trip.
func (ck *Checkpoint) encodeStates(protos []Protocol) error {
	if ck.tab == nil {
		ck.tab = newCkptOpTable()
		ck.opDec = ck.tab.dec
	}
	ck.States = make([][]byte, len(protos))
	var enc StateEncoder
	for i, p := range protos {
		sc, ok := p.(StateCodec)
		if !ok {
			return &CheckpointError{Reason: fmt.Sprintf("protocol %T does not implement StateCodec", p)}
		}
		enc = StateEncoder{opEnc: ck.tab.enc}
		sc.EncodeState(&enc)
		ck.States[i] = enc.buf
	}
	return nil
}

// decodeStates restores every protocol's state from ck.
func (ck *Checkpoint) decodeStates(protos []Protocol) error {
	if len(ck.States) != len(protos) {
		return &CheckpointError{Reason: fmt.Sprintf("%d states for %d nodes", len(ck.States), len(protos))}
	}
	for i, p := range protos {
		sc, ok := p.(StateCodec)
		if !ok {
			return &CheckpointError{Reason: fmt.Sprintf("protocol %T does not implement StateCodec", p)}
		}
		dec := StateDecoder{buf: ck.States[i], opDec: ck.opDec}
		if err := sc.DecodeState(&dec); err != nil {
			return fmt.Errorf("sim: checkpoint: node state %d: %w", i, err)
		}
		if dec.err != nil {
			return fmt.Errorf("sim: checkpoint: node state %d: %w", i, dec.err)
		}
		if dec.at != len(dec.buf) {
			return &CheckpointError{Reason: fmt.Sprintf("node state %d: %d trailing bytes", i, len(dec.buf)-dec.at)}
		}
	}
	return nil
}

// validateAgainst checks the snapshot fingerprint before resuming.
func (ck *Checkpoint) validateAgainst(c *graph.CSR) error {
	if ck.N != c.N() || ck.HalfEdges != c.HalfEdges() {
		return &CheckpointError{Reason: fmt.Sprintf(
			"snapshot mismatch: checkpoint is for n=%d halfEdges=%d, graph has n=%d halfEdges=%d",
			ck.N, ck.HalfEdges, c.N(), c.HalfEdges())}
	}
	for i, p := range ck.Pending {
		if p.From < 0 || int(p.From) >= ck.N || p.To < 0 || int(p.To) >= ck.N {
			return &CheckpointError{Reason: fmt.Sprintf("pending delivery %d endpoints out of range", i)}
		}
	}
	return nil
}

// --- file form ----------------------------------------------------------
//
// magic | version | body | crc32(body). The body is varint-packed:
//
//	opTable   count, then per opcode: kind string (len-prefixed)
//	header    round, n, halfEdges
//	report    messages, words, maxWords, causalDepth,
//	          kindRounds (count, then fileOp/round/count triples),
//	          sentBy (count, then node/count pairs)
//	states    count, then per node: len-prefixed opaque blob
//	pending   count, then per delivery: from, to, wire record
//
// Every opcode in the file (pending slab, kindRound counters and any
// WireMsg inside a state blob) is the file-local table index, so the file
// survives registry renumbering across binaries.

var ckptMagic = [8]byte{'M', 'D', 'G', 'S', 'T', 'C', 'K', '1'}

// CheckpointVersion is the current file format version.
const CheckpointVersion = 1

// ckptOpTable maps process opcodes to file-local indices on the way out.
// Index 0 is reserved (OpNone), mirroring the registry.
type ckptOpTable struct {
	fileOf []uint64 // process Op -> file index + 1 (0 = unassigned)
	kinds  []string // file index -> kind; kinds[0] is unused
}

func newCkptOpTable() *ckptOpTable {
	return &ckptOpTable{fileOf: make([]uint64, NumOps()), kinds: []string{""}}
}

func (t *ckptOpTable) enc(op Op) uint64 {
	if op == OpNone || int(op) >= len(t.fileOf) {
		return 0
	}
	if t.fileOf[op] == 0 {
		t.kinds = append(t.kinds, opKind(op))
		t.fileOf[op] = uint64(len(t.kinds) - 1)
	}
	return t.fileOf[op]
}

// dec translates a file-local index back to the registry opcode.
func (t *ckptOpTable) dec(fileOp uint64) (Op, error) {
	if fileOp == 0 || fileOp >= uint64(len(t.kinds)) {
		return OpNone, &CheckpointError{Reason: fmt.Sprintf("opcode %d outside the file's table", fileOp)}
	}
	op, ok := OpByKind(t.kinds[fileOp])
	if !ok {
		return OpNone, &CheckpointError{Reason: fmt.Sprintf("unknown message kind %q", t.kinds[fileOp])}
	}
	return op, nil
}

// Write encodes ck in the versioned byte form. Output is deterministic:
// equal checkpoints produce equal bytes.
func (ck *Checkpoint) Write(w io.Writer) error {
	// Two passes: the opcode table is built while encoding the body, but
	// must precede it in the file, so encode body first into its own buf.
	// The table is shared with encodeStates — state blobs already embed
	// its indices.
	if ck.tab == nil {
		ck.tab = newCkptOpTable()
		ck.opDec = ck.tab.dec
	}
	tab := ck.tab
	var body []byte
	body = appendVarint(body, ck.Round)
	body = appendUvarint(body, uint64(ck.N))
	body = appendUvarint(body, uint64(ck.HalfEdges))
	body = appendVarint(body, ck.Messages)
	body = appendVarint(body, ck.Words)
	body = appendUvarint(body, uint64(ck.MaxWords))
	body = appendVarint(body, ck.CausalDepth)
	body = appendUvarint(body, uint64(len(ck.KindRounds)))
	for _, kr := range ck.KindRounds {
		body = appendUvarint(body, tab.enc(kr.Op))
		body = appendVarint(body, int64(kr.Round))
		body = appendVarint(body, kr.Count)
	}
	body = appendUvarint(body, uint64(len(ck.SentBy)))
	for _, s := range ck.SentBy {
		body = appendVarint(body, int64(s.Node))
		body = appendVarint(body, s.Count)
	}
	body = appendUvarint(body, uint64(len(ck.States)))
	for _, st := range ck.States {
		body = appendUvarint(body, uint64(len(st)))
		body = append(body, st...)
	}
	body = appendUvarint(body, uint64(len(ck.Pending)))
	for _, p := range ck.Pending {
		body = appendUvarint(body, uint64(p.From))
		body = appendUvarint(body, uint64(p.To))
		body = AppendWire(body, p.Msg, tab.enc)
	}

	var out []byte
	out = append(out, ckptMagic[:]...)
	out = appendUvarint(out, CheckpointVersion)
	out = appendUvarint(out, uint64(len(tab.kinds)-1))
	for _, k := range tab.kinds[1:] {
		out = appendUvarint(out, uint64(len(k)))
		out = append(out, k...)
	}
	out = appendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	_, err := w.Write(out)
	return err
}

// ckptReader is a cursor over the checkpoint body with typed-error
// truncation handling.
type ckptReader struct {
	buf []byte
	at  int
}

func (r *ckptReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.at:])
	if n <= 0 {
		return 0, &CheckpointError{Reason: "truncated file"}
	}
	r.at += n
	return v, nil
}

func (r *ckptReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.at:])
	if n <= 0 {
		return 0, &CheckpointError{Reason: "truncated file"}
	}
	r.at += n
	return v, nil
}

func (r *ckptReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.at) {
		return nil, &CheckpointError{Reason: "truncated file"}
	}
	b := r.buf[r.at : r.at+int(n)]
	r.at += int(n)
	return b, nil
}

// count reads an element count and bounds it by the remaining body bytes
// (each element occupies at least minBytes), so a crafted file cannot make
// the reader allocate unbounded slices before parsing the entries — a
// malformed checkpoint must fail typed, never take the process down.
func (r *ckptReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)-r.at)/uint64(minBytes) {
		return 0, &CheckpointError{Reason: fmt.Sprintf("element count %d exceeds the file's remaining %d bytes", v, len(r.buf)-r.at)}
	}
	return int(v), nil
}

// ReadCheckpoint decodes a checkpoint file, translating its opcode table
// through the registry. Unknown versions, corrupted bytes (CRC mismatch)
// and unregistered kinds return typed *CheckpointError values.
func ReadCheckpoint(rd io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(ckptMagic)+4 {
		return nil, &CheckpointError{Reason: "file too short"}
	}
	if string(raw[:len(ckptMagic)]) != string(ckptMagic[:]) {
		return nil, &CheckpointError{Reason: "bad magic: not a checkpoint file"}
	}
	sum := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(raw[:len(raw)-4]) != sum {
		return nil, &CheckpointError{Reason: "CRC mismatch: file corrupted"}
	}
	r := &ckptReader{buf: raw[:len(raw)-4], at: len(ckptMagic)}
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version != CheckpointVersion {
		return nil, &CheckpointError{Reason: fmt.Sprintf("unsupported version %d (want %d)", version, CheckpointVersion)}
	}
	nKinds, err := r.count(1)
	if err != nil {
		return nil, err
	}
	// File index -> registry opcode; index 0 stays OpNone. The table is
	// also rebuilt as-is so re-writing the checkpoint keeps the numbering
	// the state blobs were encoded with.
	ops := make([]Op, nKinds+1)
	tab := &ckptOpTable{fileOf: make([]uint64, NumOps()), kinds: make([]string, 1, nKinds+1)}
	for i := uint64(1); i <= uint64(nKinds); i++ {
		klen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		kb, err := r.bytes(klen)
		if err != nil {
			return nil, err
		}
		op, ok := OpByKind(string(kb))
		if !ok {
			return nil, &CheckpointError{Reason: fmt.Sprintf("unknown message kind %q (protocol not linked in?)", kb)}
		}
		ops[i] = op
		tab.kinds = append(tab.kinds, string(kb))
		tab.fileOf[op] = i
	}
	decOp := func(fileOp uint64) (Op, error) {
		if fileOp == 0 || fileOp >= uint64(len(ops)) {
			return OpNone, &CheckpointError{Reason: fmt.Sprintf("opcode %d outside the file's table", fileOp)}
		}
		return ops[fileOp], nil
	}
	bodyLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	body, err := r.bytes(bodyLen)
	if err != nil {
		return nil, err
	}
	if r.at != len(r.buf) {
		return nil, &CheckpointError{Reason: "trailing bytes after body"}
	}
	r = &ckptReader{buf: body}

	ck := &Checkpoint{}
	if ck.Round, err = r.varint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ck.N = int(n)
	he, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ck.HalfEdges = int(he)
	if ck.Messages, err = r.varint(); err != nil {
		return nil, err
	}
	if ck.Words, err = r.varint(); err != nil {
		return nil, err
	}
	mw, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ck.MaxWords = int(mw)
	if ck.CausalDepth, err = r.varint(); err != nil {
		return nil, err
	}
	nkr, err := r.count(3)
	if err != nil {
		return nil, err
	}
	ck.KindRounds = make([]KindRoundCount, nkr)
	for i := range ck.KindRounds {
		fileOp, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		op, err := decOp(fileOp)
		if err != nil {
			return nil, err
		}
		round, err := r.varint()
		if err != nil {
			return nil, err
		}
		count, err := r.varint()
		if err != nil {
			return nil, err
		}
		ck.KindRounds[i] = KindRoundCount{Op: op, Round: int(round), Count: count}
	}
	nsb, err := r.count(2)
	if err != nil {
		return nil, err
	}
	ck.SentBy = make([]SentByCount, nsb)
	for i := range ck.SentBy {
		node, err := r.varint()
		if err != nil {
			return nil, err
		}
		count, err := r.varint()
		if err != nil {
			return nil, err
		}
		ck.SentBy[i] = SentByCount{Node: NodeID(node), Count: count}
	}
	nStates, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if nStates != ck.N {
		return nil, &CheckpointError{Reason: fmt.Sprintf("%d states for n=%d", nStates, ck.N)}
	}
	ck.States = make([][]byte, nStates)
	for i := range ck.States {
		slen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(slen)
		if err != nil {
			return nil, err
		}
		// State blobs embed file-local opcodes; they stay opaque here and
		// the decoder translates through ck.opDec (see StateDecoder.Msg).
		ck.States[i] = b
	}
	nPend, err := r.count(4)
	if err != nil {
		return nil, err
	}
	ck.Pending = make([]PendingDelivery, nPend)
	for i := range ck.Pending {
		from, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		to, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		m, used, err := DecodeWire(r.buf[r.at:], decOp)
		if err != nil {
			return nil, err
		}
		r.at += used
		ck.Pending[i] = PendingDelivery{From: int32(from), To: int32(to), Msg: m}
	}
	if r.at != len(r.buf) {
		return nil, &CheckpointError{Reason: "trailing bytes in body"}
	}
	ck.tab = tab
	ck.opDec = decOp
	return ck, nil
}

// --- state codec --------------------------------------------------------

// StateEncoder serialises one node's protocol state as a varint word
// stream. Encode and decode call sequences must mirror exactly.
type StateEncoder struct {
	buf   []byte
	opEnc func(Op) uint64
}

// Int appends a signed integer (identities, counters, enums).
func (e *StateEncoder) Int(v int64) { e.buf = appendVarint(e.buf, v) }

// Bool appends a flag.
func (e *StateEncoder) Bool(b bool) {
	var v int64
	if b {
		v = 1
	}
	e.Int(v)
}

// ID appends a node identity.
func (e *StateEncoder) ID(v NodeID) { e.Int(int64(v)) }

// IDs appends a length-prefixed identity list.
func (e *StateEncoder) IDs(vs []NodeID) {
	e.Int(int64(len(vs)))
	for _, v := range vs {
		e.ID(v)
	}
}

// Msg appends a wire record (a deferred message, say), translating its
// opcode to the checkpoint file's table when the encoder is bound to one.
func (e *StateEncoder) Msg(m WireMsg) { e.buf = AppendWire(e.buf, m, e.opEnc) }

// StateDecoder mirrors StateEncoder. Errors are sticky: after the first
// malformed read every further value is zero and Err reports the failure
// (checked by the engine after DecodeState returns).
type StateDecoder struct {
	buf   []byte
	at    int
	err   error
	opDec func(uint64) (Op, error)
}

// Err returns the first decoding error.
func (d *StateDecoder) Err() error { return d.err }

func (d *StateDecoder) fail() int64 {
	if d.err == nil {
		d.err = &CheckpointError{Reason: "truncated node state"}
	}
	return 0
}

// Int reads a signed integer.
func (d *StateDecoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.at:])
	if n <= 0 {
		return d.fail()
	}
	d.at += n
	return v
}

// Bool reads a flag.
func (d *StateDecoder) Bool() bool { return d.Int() != 0 }

// ID reads a node identity.
func (d *StateDecoder) ID() NodeID { return NodeID(d.Int()) }

// IDs reads a length-prefixed identity list.
func (d *StateDecoder) IDs() []NodeID {
	n := d.Int()
	if d.err != nil || n < 0 || n > int64(len(d.buf)-d.at) {
		d.fail()
		return nil
	}
	vs := make([]NodeID, n)
	for i := range vs {
		vs[i] = d.ID()
	}
	return vs
}

// Msg reads a wire record, translating the file-local opcode back through
// the registry when bound to a checkpoint file.
func (d *StateDecoder) Msg() WireMsg {
	if d.err != nil {
		return WireMsg{}
	}
	m, used, err := DecodeWire(d.buf[d.at:], d.opDec)
	if err != nil {
		d.err = err
		return WireMsg{}
	}
	d.at += used
	return m
}
