package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("n=%d", s.N)
	}
	if !almost(s.Mean, 5) {
		t.Errorf("mean=%v", s.Mean)
	}
	// Sample standard deviation of this classic data set.
	if !almost(s.Std, math.Sqrt(32.0/7.0)) {
		t.Errorf("std=%v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min=%v max=%v", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5) {
		t.Errorf("median=%v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Median != 42 || s.Std != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestQuantiles(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if !almost(s.P25, 2) || !almost(s.P75, 4) {
		t.Errorf("p25=%v p75=%v", s.P25, s.P75)
	}
}

func TestInts(t *testing.T) {
	xs := Ints([]int64{1, 2, 3})
	if len(xs) != 3 || xs[2] != 3 {
		t.Errorf("Ints = %v", xs)
	}
	ys := Ints([]int{4, 5})
	if ys[0] != 4 {
		t.Errorf("Ints = %v", ys)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 2) || !almost(f.Intercept, 3) || !almost(f.R2, 1) {
		t.Errorf("fit = %+v", f)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 4 x^1.5
	var x, y []float64
	for _, v := range []float64{2, 4, 8, 16, 32} {
		x = append(x, v)
		y = append(y, 4*math.Pow(v, 1.5))
	}
	f, err := LogLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 1.5) {
		t.Errorf("exponent = %v, want 1.5", f.Slope)
	}
	if _, err := LogLogFit([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("non-positive value accepted")
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio([]float64{4, 9}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 2 || r[1] != 3 {
		t.Errorf("ratio = %v", r)
	}
	if _, err := Ratio([]float64{1}, []float64{0}); err == nil {
		t.Error("zero denominator accepted")
	}
	if _, err := Ratio([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: mean is within [min,max], std is non-negative, median between
// quartiles.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Std >= 0 && s.P25 <= s.Median+1e-9 && s.Median <= s.P75+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: LinearFit recovers a noiseless line exactly (R2 = 1).
func TestQuickLinearRecovery(t *testing.T) {
	f := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e3)
		b = math.Mod(b, 1e3)
		count := 3 + int(n%20)
		var xs, ys []float64
		for i := 0; i < count; i++ {
			xs = append(xs, float64(i))
			ys = append(ys, a*float64(i)+b)
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-a) < 1e-6 && math.Abs(fit.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
