// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics over repeated runs and least-squares
// fits for scaling-law checks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P25, P75  float64
}

// Summarize computes descriptive statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.Median = quantile(sorted, 0.5)
	s.P25 = quantile(sorted, 0.25)
	s.P75 = quantile(sorted, 0.75)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g med=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// quantile interpolates linearly on a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts integer samples for Summarize.
func Ints[T ~int | ~int64](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fit is a least-squares line y = Slope*x + Intercept with its coefficient
// of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y against x; it needs at least two points.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{}, fmt.Errorf("stats: need two samples of equal length, have %d and %d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate x values")
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := f.Slope*x[i] + f.Intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot == 0 {
		f.R2 = 1
	} else {
		f.R2 = 1 - ssRes/ssTot
	}
	return f, nil
}

// LogLogFit fits log(y) against log(x), returning the power-law exponent as
// Slope — the tool for checking O(n^c)-style scaling claims empirically.
func LogLogFit(x, y []float64) (Fit, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit needs positive values")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Ratio returns element-wise y[i]/x[i] summaries, the harness's tool for
// "measured over bound" constants.
func Ratio(y, x []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: length mismatch %d vs %d", len(y), len(x))
	}
	out := make([]float64, len(x))
	for i := range x {
		if x[i] == 0 {
			return nil, fmt.Errorf("stats: zero denominator at %d", i)
		}
		out[i] = y[i] / x[i]
	}
	return out, nil
}
