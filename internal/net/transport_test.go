package net

import (
	"bytes"
	"errors"
	gonet "net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Transport lifecycle tests: backpressure, half-closed connections,
// idempotent shutdown — all leak-free under -race, pinned by goroutine
// accounting around every mesh.

// newMesh establishes a k-process full mesh over loopback and registers
// cleanup that closes every transport.
func newMesh(t *testing.T, k int) []*Transport {
	t.Helper()
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := Fingerprint{Procs: k, N: 8, HalfEdges: 14}
	trs := make([]*Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trs[i] = NewTransport(lns[i], i, addrs, fp)
			errs[i] = trs[i].Establish(10 * time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("establishing process %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// checkNoLeaks waits for the goroutine count to return to the baseline
// captured before the mesh existed — the goleak-style accounting every
// shutdown test runs through.
func checkNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTransportFrameExchange(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMesh(t, 3)
	// Every ordered pair exchanges a tagged frame; coalesced writes reach
	// no socket before the flush.
	for _, from := range trs {
		for q := 0; q < 3; q++ {
			if q == from.Self() {
				continue
			}
			body := []byte{byte(from.Self()), byte(q), 42}
			if err := from.Send(q, frameRound, body); err != nil {
				t.Fatalf("send %d->%d: %v", from.Self(), q, err)
			}
		}
		if err := from.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, to := range trs {
		for q := 0; q < 3; q++ {
			if q == to.Self() {
				continue
			}
			typ, payload, err := to.Recv(q)
			if err != nil {
				t.Fatalf("recv %d<-%d: %v", to.Self(), q, err)
			}
			if typ != frameRound || !bytes.Equal(payload, []byte{byte(q), byte(to.Self()), 42}) {
				t.Fatalf("recv %d<-%d: got type %d payload %v", to.Self(), q, typ, payload)
			}
		}
	}
	for _, tr := range trs {
		tr.Close()
	}
	checkNoLeaks(t, baseline)
}

// TestTransportSlowReader drives a large frame volume into a consumer that
// drains late and slowly: the bounded inbox plus TCP flow control must
// carry every frame through in order, with the sender experiencing
// backpressure rather than the receiver growing memory.
func TestTransportSlowReader(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMesh(t, 2)
	const frames = 400
	payload := bytes.Repeat([]byte{0xAB}, 1<<14) // 400 × 16 KiB ≫ inbox + socket buffers
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			body := append([]byte{byte(i), byte(i >> 8)}, payload...)
			if err := trs[0].Send(1, frameRound, body); err != nil {
				sendErr <- err
				return
			}
			if err := trs[0].Flush(1); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()
	time.Sleep(100 * time.Millisecond) // let the sender run into the full pipe
	for i := 0; i < frames; i++ {
		typ, body, err := trs[1].Recv(0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != frameRound || int(body[0])|int(body[1])<<8 != i || !bytes.Equal(body[2:], payload) {
			t.Fatalf("frame %d corrupted or reordered", i)
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("sender: %v", err)
	}
	trs[0].Close()
	trs[1].Close()
	checkNoLeaks(t, baseline)
}

// TestTransportHalfClosed kills one side of an established pair: the
// survivor's pending and subsequent Recvs must fail with the peer-closed
// error — repeatably, without blocking — and its own Close must still
// shut down leak-free even though the connection is half dead.
func TestTransportHalfClosed(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMesh(t, 2)
	recvErr := make(chan error, 1)
	go func() {
		_, _, err := trs[0].Recv(1) // blocks until the peer dies
		recvErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	trs[1].Close()
	select {
	case err := <-recvErr:
		if err == nil || !strings.Contains(err.Error(), "closed the connection") {
			t.Fatalf("pending recv: got %v, want peer-closed error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending recv did not observe the peer's death")
	}
	// Subsequent receives fail immediately with the same condition.
	for i := 0; i < 3; i++ {
		if _, _, err := trs[0].Recv(1); err == nil {
			t.Fatal("recv on a dead peer succeeded")
		}
	}
	trs[0].Close()
	checkNoLeaks(t, baseline)
}

// TestTransportDoubleClose closes transports twice — including
// concurrently — and requires idempotence: no panic, no deadlock, every
// post-close operation failing with ErrTransportClosed, no goroutines
// left.
func TestTransportDoubleClose(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMesh(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trs[0].Close()
			trs[0].Close()
		}()
	}
	wg.Wait()
	trs[0].Close()
	if err := trs[0].Send(1, frameRound, []byte{1}); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("send after close: got %v, want ErrTransportClosed", err)
	}
	if _, _, err := trs[0].Recv(1); err == nil {
		t.Fatal("recv after close succeeded")
	}
	trs[1].Close()
	checkNoLeaks(t, baseline)
}

// TestTransportFingerprintMismatch joins two processes that disagree on
// the cluster fingerprint: the handshake must fail both sides with a
// typed *HandshakeError and leave nothing running.
func TestTransportFingerprintMismatch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	lns := make([]gonet.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fps := []Fingerprint{{Procs: 2, N: 8, HalfEdges: 14}, {Procs: 2, N: 9, HalfEdges: 14}}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := NewTransport(lns[i], i, addrs, fps[i])
			errs[i] = tr.Establish(5 * time.Second)
			tr.Close()
		}(i)
	}
	wg.Wait()
	var sawTyped bool
	for i, err := range errs {
		if err == nil {
			t.Fatalf("process %d established a mesh across skewed fingerprints", i)
		}
		var he *HandshakeError
		if errors.As(err, &he) {
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatalf("no *HandshakeError surfaced: %v / %v", errs[0], errs[1])
	}
	checkNoLeaks(t, baseline)
}
