package net

import (
	"bytes"
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"testing"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// TestDistSteadyStateAllocBudget pins the distributed twin of the sharded
// engine's zero-alloc contract (DESIGN.md §13): once an engine's round
// arena and the transport's payload rings are warm, the networked round
// loop — encode, flush, decode, splice, play — allocates nothing per
// unperturbed round, so whole-process allocations per run must not grow
// with the round count. The token walk delivers one message per round,
// making "20x the rounds" a pure steady-state magnifier across every
// goroutine of the cluster (K engines plus their transport readers).

// The net-test token protocol: the sim-package walker plus StateCodec,
// which the distributed plane requires for its final-state all-gather and
// checkpoint assembly.
var allocWire = sim.Register("netalloc",
	sim.OpSpec{Kind: "netalloc.token", MinPayload: 1, MaxPayload: 1},
)

var opAllocToken = allocWire.Op(0)

func allocTokenMsg(hops int64) sim.WireMsg {
	m := sim.WireMsg{Op: opAllocToken, Nw: 1}
	m.W[0] = hops
	return m
}

type allocToken struct {
	start bool
	limit int64
	seen  int64
}

func (n *allocToken) Init(ctx sim.Context) {
	if n.start {
		ctx.Send(ctx.Neighbors()[len(ctx.Neighbors())-1], allocTokenMsg(1))
	}
}

func (n *allocToken) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	hops := m.W[0]
	n.seen++
	if hops >= n.limit {
		return
	}
	ns := ctx.Neighbors()
	next := ns[0]
	if next == from && len(ns) > 1 {
		next = ns[1]
	}
	ctx.Send(next, allocTokenMsg(hops+1))
}

func (n *allocToken) EncodeState(e *sim.StateEncoder) {
	e.Bool(n.start)
	e.Int(n.limit)
	e.Int(n.seen)
}

func (n *allocToken) DecodeState(d *sim.StateDecoder) error {
	n.start = d.Bool()
	n.limit = d.Int()
	n.seen = d.Int()
	return d.Err()
}

func allocTokenFactory(limit int64) sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		return &allocToken{start: id == 0, limit: limit}
	}
}

// allocMesh is one live loopback mesh with an engine per process, reused
// across a measurement's iterations.
type allocMesh struct {
	trs  []*Transport
	engs []*DistEngine
}

func newAllocMesh(t *testing.T, c *graph.CSR, k int) *allocMesh {
	t.Helper()
	part := graph.PartitionContiguous(c, k)
	owner := part.Owners()
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := Fingerprint{Procs: k, N: c.N(), HalfEdges: c.HalfEdges()}
	m := &allocMesh{trs: make([]*Transport, k), engs: make([]*DistEngine, k)}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := NewTransport(lns[i], i, addrs, fp)
			if err := tr.Establish(10 * time.Second); err != nil {
				errs[i] = err
				tr.Close()
				return
			}
			m.trs[i] = tr
			m.engs[i] = &DistEngine{T: tr, Owner: owner}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			m.close()
			t.Fatal(err)
		}
	}
	t.Cleanup(m.close)
	return m
}

func (m *allocMesh) close() {
	for _, tr := range m.trs {
		if tr != nil {
			tr.Close()
		}
	}
}

// each runs one engine step per process concurrently and fails the test
// on the first error that is not one of the allowed sentinels.
func (m *allocMesh) each(t *testing.T, allowed []error, f func(eng *DistEngine) error) {
	t.Helper()
	errs := make([]error, len(m.engs))
	var wg sync.WaitGroup
	for i, eng := range m.engs {
		wg.Add(1)
		go func(i int, eng *DistEngine) {
			defer wg.Done()
			errs[i] = f(eng)
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		ok := false
		for _, a := range allowed {
			if errors.Is(err, a) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("process %d: %v", i, err)
		}
	}
}

// allocSlack absorbs what legitimately still allocates across a run pair:
// the report's per-(kind, round) breakdown maps grow amortised with the
// round count on every process, plus runtime noise from K goroutines of
// real TCP. The steady-state round loop itself is exactly zero
// allocations, which the 760-round magnifier would otherwise multiply.
const allocSlack = 96

func TestDistSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster alloc measurement")
	}
	c := graph.Ring(64).Compile()
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("procs=%d", k), func(t *testing.T) {
			measure := func(hops int64) float64 {
				m := newAllocMesh(t, c, k)
				run := func() {
					m.each(t, nil, func(eng *DistEngine) error {
						_, _, err := eng.RunSnapshot(c, allocTokenFactory(hops))
						return err
					})
				}
				run() // warm the arenas and payload rings for this volume
				return testing.AllocsPerRun(5, run)
			}
			short, long := measure(40), measure(800)
			if long > short+allocSlack {
				t.Errorf("allocs grew with round count: 40 hops -> %.0f, 800 hops -> %.0f", short, long)
			}
		})
	}
}

// TestDistResumeSteadyStateAllocBudget is the resume-path variant: a run
// frozen at a round barrier and resumed through ResumeSnapshot must also
// hold per-round allocations flat — the checkpoint reseeding is a one-off
// cost per run, and the rounds replayed after it ride the same arenas.
func TestDistResumeSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster alloc measurement")
	}
	c := graph.Ring(64).Compile()
	const k = 2
	measure := func(hops int64) float64 {
		m := newAllocMesh(t, c, k)
		// Freeze a run at round 3, then resume it repeatedly.
		var buf bytes.Buffer
		for i, eng := range m.engs {
			eng.Checkpoint = &sim.CheckpointSpec{Round: 3}
			if i == 0 {
				eng.Checkpoint.W = &buf
			}
		}
		m.each(t, []error{sim.ErrCheckpointed}, func(eng *DistEngine) error {
			_, _, err := eng.RunSnapshot(c, allocTokenFactory(hops))
			return err
		})
		ck, err := sim.ReadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range m.engs {
			eng.Checkpoint = nil
		}
		run := func() {
			m.each(t, nil, func(eng *DistEngine) error {
				_, _, err := eng.ResumeSnapshot(c, allocTokenFactory(hops), ck)
				return err
			})
		}
		run()
		return testing.AllocsPerRun(5, run)
	}
	short, long := measure(40), measure(800)
	if long > short+allocSlack {
		t.Errorf("resumed allocs grew with round count: 40 hops -> %.0f, 800 hops -> %.0f", short, long)
	}
}
