package net

import (
	"bytes"
	"errors"
	"fmt"
	gonet "net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// The chaos harness (DESIGN.md §11): seeded fault schedules against real
// loopback clusters, supervised exactly like mdstd -launch -restarts — the
// first attempt runs with the fault plan armed, every retry drops the
// faults and resumes from the latest committed recovery point. The
// acceptance bar: any schedule that leaves a committed checkpoint must
// recover to results and checkpoint files bitwise-identical to an
// uninterrupted EventEngine run; a crash before any commit must surface as
// typed errors (*InjectedCrashError on the victim, *PeerDownError on a
// survivor) and never as a hang — every attempt is bounded by waitOrFatal.

// chaosCluster runs one supervised attempt: k processes over loopback with
// heartbeats and a tight liveness window, the fault plan armed on every
// transport, periodic checkpointing into dir, optionally resuming from a
// committed checkpoint file's bytes.
func chaosCluster(t *testing.T, c *graph.CSR, k int, every int64, dir string, faults *FaultPlan, resumeFile []byte) ([]*PipelineResult, []error) {
	t.Helper()
	part, err := graph.PartitionNamed(c, "contiguous", k)
	if err != nil {
		t.Fatal(err)
	}
	owner := part.Owners()
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var cks []*sim.Checkpoint
	if resumeFile != nil {
		cks = readCheckpoints(t, resumeFile, k)
	}
	fp := Fingerprint{Procs: k, N: c.N(), HalfEdges: c.HalfEdges()}
	results := make([]*PipelineResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := NewTransport(lns[i], i, addrs, fp)
			tr.Heartbeat = 20 * time.Millisecond
			tr.Liveness = 800 * time.Millisecond
			tr.Faults = faults
			defer tr.Close()
			if err := tr.Establish(10 * time.Second); err != nil {
				errs[i] = fmt.Errorf("establish: %w", err)
				return
			}
			p := Pipeline{CheckpointRound: -1, CheckpointEvery: every}
			if i == 0 {
				p.CheckpointSink = &sim.CheckpointDir{Dir: dir}
			}
			if cks != nil {
				p.Resume = cks[i]
			}
			results[i], errs[i] = RunPipeline(tr, c, owner, p)
		}(i)
	}
	waitOrFatal(t, &wg, 60*time.Second, "chaos cluster hung — a failure must surface as an error, never a stall")
	return results, errs
}

// superviseChaos mirrors the mdstd supervisor in-process. Returns the
// first fully successful attempt's results plus every attempt's error
// vector (attempt 0 first).
func superviseChaos(t *testing.T, c *graph.CSR, k int, every int64, dir string, faults *FaultPlan) ([]*PipelineResult, [][]error) {
	t.Helper()
	var history [][]error
	for attempt := 0; attempt < 4; attempt++ {
		plan := faults
		var resume []byte
		if attempt > 0 {
			// A deterministic plan would re-fire identically; the supervisor
			// drops it after the first attempt, just like mdstd -launch.
			plan = nil
			d := &sim.CheckpointDir{Dir: dir}
			path, _, ok, err := d.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if resume, err = os.ReadFile(path); err != nil {
					t.Fatal(err)
				}
			}
		}
		rs, errs := chaosCluster(t, c, k, every, dir, plan, resume)
		history = append(history, errs)
		ok := true
		for _, err := range errs {
			if err != nil {
				ok = false
			}
		}
		if ok {
			return rs, history
		}
	}
	t.Fatalf("cluster did not recover within the restart budget; last errors: %v", history[len(history)-1])
	return nil, nil
}

// refPeriodic is the uninterrupted reference: the unit event engine running
// the same pipeline with the same periodic cadence committing into refDir.
func refPeriodic(t *testing.T, c *graph.CSR, every int64, refDir string) (*tree.Tree, *sim.Report, *mdst.Result) {
	t.Helper()
	root := c.Source().Nodes()[0]
	base := &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true}
	initial, setup, err := spanning.BuildCompiled(base, c, spanning.NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	armed := &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true,
		Checkpoint: &sim.CheckpointSpec{Every: every, Sink: &sim.CheckpointDir{Dir: refDir}}}
	res, err := mdst.RunTargetSnapshot(armed, c, initial, mdst.Single, 0)
	if err != nil {
		t.Fatal(err)
	}
	return initial, setup, res
}

// checkCommittedFiles requires the cluster's checkpoint directory to hold
// exactly the reference cadence rounds, each file byte-identical to the
// EventEngine's commit of the same barrier.
func checkCommittedFiles(t *testing.T, dir, refDir string) {
	t.Helper()
	got, err := (&sim.CheckpointDir{Dir: dir}).Rounds()
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&sim.CheckpointDir{Dir: refDir}).Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("committed rounds diverged: cluster %v, reference %v", got, want)
	}
	for _, r := range got {
		name := sim.CheckpointFileName(r)
		a, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("round %d: committed file differs from the reference (%d vs %d bytes)", r, len(a), len(b))
		}
	}
}

// cadenceFor picks a checkpoint cadence giving the improvement run about
// five commits — enough cadence barriers to crash between, without the
// test spending its whole budget on fsynced commits. Barrier rounds are
// unit-delay rounds, so the run's length is its causal depth (thousands
// for gnm-96), not the protocol's own round counter.
func cadenceFor(depth int64) int64 {
	every := depth / 5
	if every < 2 {
		every = 2
	}
	return every
}

// checkRecovered asserts every process of the recovered cluster holds the
// reference pipeline outcome.
func checkRecovered(t *testing.T, rs []*PipelineResult, wantInit *tree.Tree, wantSetup *sim.Report, wantRes *mdst.Result) {
	t.Helper()
	for id, r := range rs {
		what := fmt.Sprintf("recovered process %d", id)
		checkTree(t, what+" initial", r.Initial, wantInit)
		checkReport(t, what+" setup", r.Setup, wantSetup)
		checkResult(t, what, r.Result, wantRes)
	}
}

// TestChaosCrashRecoveryEquivalence is the headline gate: a process is
// crashed mid-improvement (after at least one committed recovery point),
// the attempt fails with typed errors, and the supervised restart — resumed
// from the latest commit, faults disarmed — converges to results and
// checkpoint files bitwise-identical to an uninterrupted run. Both test
// graphs, 2- and 4-process clusters, victims at both ends of the id range.
func TestChaosCrashRecoveryEquivalence(t *testing.T) {
	for _, tg := range testGraphs() {
		t.Run(tg.name, func(t *testing.T) {
			c := tg.g.Compile()
			_, _, plainRes := runInProcess(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true})
			every := cadenceFor(plainRes.Report.CausalDepth)
			// Crash just past the second cadence barrier: at least one commit
			// exists to recover from, and the run is still far from done.
			crashRound := 2*every + 1
			if crashRound >= plainRes.Report.CausalDepth-every {
				t.Skipf("improvement spans only %d barrier rounds; crash schedule cannot fire", plainRes.Report.CausalDepth)
			}
			refDir := t.TempDir()
			wantInit, wantSetup, wantRes := refPeriodic(t, c, every, refDir)
			for _, k := range []int{2, 4} {
				t.Run(fmt.Sprintf("procs-%d", k), func(t *testing.T) {
					for _, victim := range []int{0, k - 1} {
						t.Run(fmt.Sprintf("victim-%d", victim), func(t *testing.T) {
							dir := t.TempDir()
							plan := &FaultPlan{Seed: 1, CrashProc: victim, CrashRound: crashRound, CrashRun: 2}
							rs, history := superviseChaos(t, c, k, every, dir, plan)
							if len(history) < 2 {
								t.Fatal("fault schedule never fired: the cluster completed on the first attempt")
							}
							first := history[0]
							var ice *InjectedCrashError
							if !errors.As(first[victim], &ice) {
								t.Errorf("victim %d: got %v, want *InjectedCrashError", victim, first[victim])
							}
							var sawPeerDown bool
							for id, err := range first {
								var pd *PeerDownError
								if id != victim && errors.As(err, &pd) {
									sawPeerDown = true
								}
							}
							if !sawPeerDown {
								t.Errorf("no survivor surfaced a *PeerDownError: %v", first)
							}
							checkRecovered(t, rs, wantInit, wantSetup, wantRes)
							checkCommittedFiles(t, dir, refDir)
						})
					}
				})
			}
		})
	}
}

// TestChaosCrashBeforeAnyCommit crashes a process at barrier 1 with a
// cadence (64) no run reaches: nothing is ever committed, the survivor
// fails typed instead of hanging, and the supervisor restarts the cluster
// from scratch to the uninterrupted result.
func TestChaosCrashBeforeAnyCommit(t *testing.T) {
	c := graph.Gnm(96, 288, 1).Compile()
	refDir := t.TempDir()
	wantInit, wantSetup, wantRes := refPeriodic(t, c, 64, refDir)
	dir := t.TempDir()
	plan := &FaultPlan{Seed: 5, CrashProc: 1, CrashRound: 1, CrashRun: 2}
	rs, history := superviseChaos(t, c, 2, 64, dir, plan)
	if len(history) < 2 {
		t.Fatal("fault schedule never fired")
	}
	first := history[0]
	var ice *InjectedCrashError
	if !errors.As(first[1], &ice) {
		t.Errorf("victim: got %v, want *InjectedCrashError", first[1])
	}
	var pd *PeerDownError
	if !errors.As(first[0], &pd) {
		t.Errorf("survivor: got %v, want *PeerDownError", first[0])
	}
	if _, _, ok, err := (&sim.CheckpointDir{Dir: dir}).Latest(); err != nil {
		t.Fatal(err)
	} else if len(history) >= 2 && ok && history[1] == nil {
		t.Error("a checkpoint was committed before the crash at barrier 1")
	}
	checkRecovered(t, rs, wantInit, wantSetup, wantRes)
	checkCommittedFiles(t, dir, refDir)
}

// TestChaosConnectionKill severs one direction of a connection at a fixed
// data frame. Wherever the kill lands — flood or improvement, before or
// after a commit — the supervised restart must converge to the reference.
func TestChaosConnectionKill(t *testing.T) {
	c := graph.Gnm(96, 288, 1).Compile()
	_, _, plainRes := runInProcess(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true})
	every := cadenceFor(plainRes.Report.CausalDepth)
	refDir := t.TempDir()
	wantInit, wantSetup, wantRes := refPeriodic(t, c, every, refDir)
	dir := t.TempDir()
	plan := &FaultPlan{Seed: 3, KillFrom: 1, KillTo: 0, KillAt: 10}
	rs, history := superviseChaos(t, c, 2, every, dir, plan)
	if len(history) >= 2 {
		var sawPeerDown bool
		for _, err := range history[0] {
			var pd *PeerDownError
			if errors.As(err, &pd) {
				sawPeerDown = true
			}
		}
		if !sawPeerDown {
			t.Errorf("killed connection surfaced no *PeerDownError: %v", history[0])
		}
	}
	checkRecovered(t, rs, wantInit, wantSetup, wantRes)
	checkCommittedFiles(t, dir, refDir)
}

// TestChaosLossyLink runs a seeded 2% frame-drop schedule. Lost frames can
// never corrupt a run — the receiver either gets every frame or starves,
// and starvation is converted into *PeerDownError by the claim-carrying
// heartbeats — so the supervised cluster must end bit-equal to the
// reference no matter which frames the seed condemns.
func TestChaosLossyLink(t *testing.T) {
	c := graph.Gnm(96, 288, 1).Compile()
	_, _, plainRes := runInProcess(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true})
	every := cadenceFor(plainRes.Report.CausalDepth)
	refDir := t.TempDir()
	wantInit, wantSetup, wantRes := refPeriodic(t, c, every, refDir)
	dir := t.TempDir()
	plan := &FaultPlan{Seed: 7, Drop: 0.02}
	rs, _ := superviseChaos(t, c, 2, every, dir, plan)
	checkRecovered(t, rs, wantInit, wantSetup, wantRes)
	checkCommittedFiles(t, dir, refDir)
}
