package net

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mdegst/internal/sim"
)

// Codec tests: framing, handshake and payload parsers must round-trip
// valid input and fail malformed input with typed errors — *FrameError or
// *HandshakeError — and never panic, no matter the bytes (FuzzFrameCodec).

func testFingerprint() Fingerprint { return Fingerprint{Procs: 3, N: 96, HalfEdges: 576} }

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := map[byte][]byte{
		frameHello:   []byte("hello body"),
		frameRound:   {},
		frameFinal:   bytes.Repeat([]byte{7}, 1000),
		frameCkpt:    {0},
		frameCkptAck: {1, 2, 3},
	}
	order := []byte{frameHello, frameRound, frameFinal, frameCkpt, frameCkptAck}
	for _, typ := range order {
		if err := writeFrame(&buf, typ, bodies[typ]); err != nil {
			t.Fatal(err)
		}
	}
	for _, typ := range order {
		got, payload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
		if got != typ || !bytes.Equal(payload, bodies[typ]) {
			t.Fatalf("type %d: got type %d payload %v", typ, got, payload)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("clean boundary: got %v, want io.EOF", err)
	}
}

func TestReadFrameMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"truncated header", []byte{1, 0}},
		{"empty frame", []byte{0, 0, 0, 0}},
		{"oversize frame", []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"truncated payload", []byte{5, 0, 0, 0, frameRound, 1}},
		{"unknown type", []byte{1, 0, 0, 0, 99}},
		{"type zero", []byte{1, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.in))
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("got %v, want *FrameError", err)
			}
		})
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	fp := testFingerprint()
	table := CanonicalTable()
	if table.Len() < 2 {
		t.Fatal("registry has no opcodes; protocol packages not linked into the test binary")
	}
	payload := appendHello(nil, 2, fp, table)
	h, err := parseHello(payload, fp, table)
	if err != nil {
		t.Fatal(err)
	}
	if h.self != 2 || h.fp != fp {
		t.Fatalf("round trip lost fields: %+v", h)
	}
}

func TestHandshakeRejections(t *testing.T) {
	fp := testFingerprint()
	table := CanonicalTable()
	good := appendHello(nil, 1, fp, table)
	badMagic := append([]byte("NOTMDST!"), good[8:]...)
	otherFp := appendHello(nil, 1, Fingerprint{Procs: 3, N: 97, HalfEdges: 576}, table)
	badID := appendHello(nil, 7, fp, table)
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"bad magic", badMagic},
		{"truncated", good[:len(good)/2]},
		{"fingerprint mismatch", otherFp},
		{"identity outside cluster", badID},
		{"trailing bytes", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseHello(tc.in, fp, table)
			var he *HandshakeError
			if !errors.As(err, &he) {
				t.Fatalf("got %v, want *HandshakeError", err)
			}
		})
	}
}

// wireSample builds a schema-conforming WireMsg from the table entry at
// the given index, filling the minimum payload width with marker words.
func wireSample(table *WireTable, idx uint64) sim.WireMsg {
	op, err := table.Dec(idx)
	if err != nil {
		return sim.WireMsg{}
	}
	row := table.specs[idx]
	m := sim.WireMsg{Op: op, Nw: row.minW}
	for i := uint8(0); i < row.minW; i++ {
		m.W[i] = int64(i) - 4
	}
	return m
}

// sampleIdx prefers a table entry that actually carries payload words.
func sampleIdx(table *WireTable) uint64 {
	for i := 1; i < table.Len(); i++ {
		if table.specs[i].minW > 0 && !table.specs[i].rounded {
			return uint64(i)
		}
	}
	return 1
}

func TestRoundMsgRoundTrip(t *testing.T) {
	table := CanonicalTable()
	counts := []sim.RankCount{{Rank: 0, Count: 2}, {Rank: 5, Count: 0}}
	batch := []sim.OutMsg{
		{Parent: 3, Pos: 1, From: 2, To: 9, Msg: wireSample(table, sampleIdx(table))},
	}
	payload := appendRoundMsg(nil, 11, 4, roundFlagStop, counts, batch, table)
	m, err := parseRoundMsg(payload, table)
	if err != nil {
		t.Fatal(err)
	}
	if m.seq != 11 || m.round != 4 || m.flags != roundFlagStop {
		t.Fatalf("header lost: %+v", m)
	}
	if len(m.counts) != 2 || m.counts[0] != counts[0] || m.counts[1] != counts[1] {
		t.Fatalf("counts lost: %+v", m.counts)
	}
	if len(m.batch) != 1 || m.batch[0] != batch[0] {
		t.Fatalf("batch lost: %+v", m.batch)
	}
}

func uvarintLen(v uint64) int { return len(appendUvarint(nil, v)) }

// TestRoundHeaderDeltaSizeBound pins the point of the delta header: a
// barrier's (rank, count) pairs are strictly ascending and usually
// consecutive, so after the absolute first entry every further entry
// costs one byte of rank delta plus the count — two bytes in the common
// case — regardless of how large the absolute ranks have grown. The
// absolute encoding the deltas replaced pays the full rank width on
// every entry.
func TestRoundHeaderDeltaSizeBound(t *testing.T) {
	const n = 512
	base := int64(1) << 40 // deep into a long run: absolute ranks cost 6 bytes
	counts := make([]sim.RankCount, n)
	for i := range counts {
		counts[i] = sim.RankCount{Rank: base + int64(i), Count: int64(i % 3)}
	}
	empty := len(appendRoundHeader(nil, 7, 9, 0, nil))
	hdr := len(appendRoundHeader(nil, 7, 9, 0, counts)) - empty
	// First entry absolute, every later consecutive entry 1 rank byte +
	// 1 count byte, plus the larger length prefix.
	bound := uvarintLen(uint64(base)) + 1 + (n-1)*2 + uvarintLen(n) - uvarintLen(0)
	if hdr > bound {
		t.Errorf("delta header for %d consecutive ranks is %d bytes, want <= %d", n, hdr, bound)
	}
	absolute := 0
	for _, c := range counts {
		absolute += uvarintLen(uint64(c.Rank)) + uvarintLen(uint64(c.Count))
	}
	if hdr*2 > absolute {
		t.Errorf("delta header %d bytes does not halve the absolute encoding's %d", hdr, absolute)
	}
	// And the compressed form round-trips unchanged.
	m, err := parseRoundMsg(appendRoundMsg(nil, 7, 9, 0, counts, nil, CanonicalTable()), CanonicalTable())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.counts {
		if c != counts[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, c, counts[i])
		}
	}
}

// badRoundPayloads are hand-crafted round frames violating the pre-ranked
// run invariants the decoders must enforce: both the materializing parser
// and the engine's streaming decoder reject each with a *FrameError —
// never a panic, never a silent mis-splice.
func badRoundPayloads(table *WireTable) map[string][]byte {
	wm := wireSample(table, sampleIdx(table))
	rec := func(b []byte, key ...uint64) []byte {
		for _, v := range key {
			b = appendUvarint(b, v)
		}
		b = appendUvarint(b, 0) // from
		b = appendUvarint(b, 1) // to
		return sim.AppendWire(b, wm, table.Enc)
	}
	prefix := func(ncounts uint64) []byte {
		b := appendUvarint(nil, 1) // seq
		b = appendVarint(b, 0)     // round
		b = appendUvarint(b, 0)    // flags
		return appendUvarint(b, ncounts)
	}
	dupRank := prefix(2)
	dupRank = appendUvarint(dupRank, 5) // rank 5, count 1
	dupRank = appendUvarint(dupRank, 1)
	dupRank = appendUvarint(dupRank, 0) // zero delta: rank 5 again
	dupRank = appendUvarint(dupRank, 1)
	dupRank = appendUvarint(dupRank, 0) // empty batch

	hugeRank := prefix(1)
	hugeRank = appendUvarint(hugeRank, uint64(limitRank)) // rank at the bound
	hugeRank = appendUvarint(hugeRank, 1)
	hugeRank = appendUvarint(hugeRank, 0)

	dupKey := appendUvarint(prefix(0), 2) // two batch records
	dupKey = rec(dupKey, 1, 0)            // (parent 1, pos 0)
	dupKey = rec(dupKey, 0, 0)            // same parent, zero pos delta: same key

	return map[string][]byte{
		"duplicate rank in counts": dupRank,
		"rank at the bound":        hugeRank,
		"duplicate batch key":      dupKey,
	}
}

func TestRoundMsgSortedRunViolations(t *testing.T) {
	table := CanonicalTable()
	for name, payload := range badRoundPayloads(table) {
		t.Run(name, func(t *testing.T) {
			_, err := parseRoundMsg(payload, table)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Errorf("parseRoundMsg: got %v, want *FrameError", err)
			}
			cnt := make([]int64, 64)
			var batch []sim.OutMsg
			_, _, err = decodeRound(payload, table, 64, cnt, &batch)
			if !errors.As(err, &fe) {
				t.Errorf("decodeRound: got %v, want *FrameError", err)
			}
		})
	}
}

func TestCkptAckRoundTrip(t *testing.T) {
	seq, round, err := parseCkptAck(appendCkptAck(nil, 9, -3))
	if err != nil || seq != 9 || round != -3 {
		t.Fatalf("got seq=%d round=%d err=%v", seq, round, err)
	}
	if _, _, err := parseCkptAck([]byte{0x80}); err == nil {
		t.Fatal("truncated ack parsed")
	}
}

// typedOrNil fails the fuzz run unless err is nil or one of the plane's
// typed errors.
func typedOrNil(t *testing.T, what string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var fe *FrameError
	var he *HandshakeError
	if !errors.As(err, &fe) && !errors.As(err, &he) {
		t.Errorf("%s: untyped error %T: %v", what, err, err)
	}
}

// FuzzFrameCodec feeds arbitrary bytes to every parser of the plane — the
// frame decoder, the handshake, and all payload codecs. The contract under
// fuzzing: a parser either succeeds or returns its typed error; it never
// panics, never allocates unboundedly (element counts are checked against
// the remaining payload before any make), and readFrame returns io.EOF
// only at a clean frame boundary.
func FuzzFrameCodec(f *testing.F) {
	fp := testFingerprint()
	table := CanonicalTable()
	wm := wireSample(table, sampleIdx(table))
	batch := []sim.OutMsg{{Parent: 1, Pos: 0, From: 0, To: 1, Msg: wm}}
	counters := &sim.Checkpoint{Messages: 10, Words: 30, MaxWords: 4, CausalDepth: 5}
	states := []ownedState{{dense: 0, blob: []byte{1, 2, 3}}}

	f.Add(appendFrame(nil, frameHello, appendHello(nil, 0, fp, table)))
	f.Add(appendFrame(nil, frameRound, appendRoundMsg(nil, 1, 0, 0, []sim.RankCount{{Rank: 0, Count: 1}}, batch, table)))
	f.Add(appendFrame(nil, frameFinal, appendFinalMsg(nil, 1, counters, states, table)))
	f.Add(appendFrame(nil, frameCkpt, appendCkptMsg(nil, 1, 2, counters, states, batch, table)))
	f.Add(appendFrame(nil, frameCkptAck, appendCkptAck(nil, 1, 2)))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(bytes.Repeat([]byte{0x80}, 32))
	// Pre-ranked run violations: non-ascending rank headers and
	// non-strictly-sorted batch keys must fail typed, never mis-splice.
	for _, payload := range badRoundPayloads(table) {
		f.Add(appendFrame(nil, frameRound, payload))
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		for {
			typ, payload, err := readFrame(r)
			if err != nil {
				if err != io.EOF {
					typedOrNil(t, "readFrame", err)
				}
				break
			}
			switch typ {
			case frameHello:
				_, err := parseHello(payload, fp, table)
				typedOrNil(t, "parseHello", err)
			case frameRound:
				_, err := parseRoundMsg(payload, table)
				typedOrNil(t, "parseRoundMsg", err)
			case frameFinal:
				_, err := parseFinalMsg(payload, table)
				typedOrNil(t, "parseFinalMsg", err)
			case frameCkpt:
				_, err := parseCkptMsg(payload, table)
				typedOrNil(t, "parseCkptMsg", err)
			case frameCkptAck:
				_, _, err := parseCkptAck(payload)
				typedOrNil(t, "parseCkptAck", err)
			}
		}
		// The raw bytes, interpreted directly as each payload, must also
		// fail typed: frames from a corrupt peer can declare any type.
		_, err := parseHello(b, fp, table)
		typedOrNil(t, "parseHello(raw)", err)
		_, err = parseRoundMsg(b, table)
		typedOrNil(t, "parseRoundMsg(raw)", err)
		_, err = parseFinalMsg(b, table)
		typedOrNil(t, "parseFinalMsg(raw)", err)
		_, err = parseCkptMsg(b, table)
		typedOrNil(t, "parseCkptMsg(raw)", err)
		_, _, err = parseCkptAck(b)
		typedOrNil(t, "parseCkptAck(raw)", err)
	})
}
