package net

import (
	"errors"
	"fmt"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// DistEngine executes a protocol run across the OS processes of an
// established Transport mesh: each process hosts the nodes its Owner table
// assigns to it and drives unit-delay rounds separated by an all-to-all
// barrier. The barrier reuses the sharded engine's determinism machinery
// (DESIGN.md §7) verbatim — deliveries keyed (parent rank, send position),
// rank offsets from a prefix sum over broadcast send counts — so the
// distributed run is tree-, report- and checkpoint-byte-equivalent to the
// in-process engines. DistEngine is a drop-in sim.SnapshotEngine: the
// spanning and mdst pipelines run on it unchanged.
//
// One barrier exchange per round, per peer: a single round frame carrying
// the sender's (rank, count) pairs and the delivery batch destined to that
// peer, coalesced and flushed once. Quiescence (a round with no sends
// anywhere) triggers the final all-gather: every process broadcasts its
// report counters and its owned nodes' encoded states, so every process
// finishes holding the complete final state plane and extracts the
// identical tree. The all-gather doubles as the run-closing barrier; a
// run-sequence number in every frame keeps the two pipeline phases (flood
// build, improvement) apart on the shared connections.
//
// All processes of one run must be constructed with identical Owner,
// MaxMessages and Checkpoint.Round configuration — the topology config
// file is that single source of truth for cmd/mdstd.
type DistEngine struct {
	// T is the established transport mesh.
	T *Transport
	// Owner maps every dense node to its owning process.
	Owner []int32
	// MaxMessages aborts the run when exceeded, checked at barrier
	// granularity exactly like the sharded engine (0 means
	// sim.DefaultMaxMessages).
	MaxMessages int64
	// Checkpoint, when non-nil, arms barrier checkpointing. Freeze mode
	// (Every == 0) stops the run at the barrier after round
	// Checkpoint.Round: the peers upload their shards to process 0, which
	// assembles and writes a file byte-identical to the in-process
	// engines' (Checkpoint.W is used on process 0 only) and acknowledges
	// the commit before anyone stops. Periodic mode (Every > 0) runs the
	// same commit protocol at every barrier whose round is a positive
	// multiple of Every, with process 0 writing through Checkpoint.Sink,
	// and the cluster keeps running — there is always a recent recovery
	// point.
	Checkpoint *sim.CheckpointSpec
	// Stop, polled at each barrier, requests a graceful cluster-wide stop:
	// the process latches the request into its round frames' stop flag,
	// every process ORs the barrier's K flags, and on agreement the run
	// commits a final checkpoint (when Checkpoint is armed) and returns
	// sim.ErrStopped at the same barrier everywhere — no process dies
	// mid-barrier.
	Stop func() bool

	// seq numbers the runs driven over this engine's transport, separating
	// the phases' frames on the shared connections.
	seq uint64
	// stopLatched makes the stop request sticky across barriers and runs.
	stopLatched bool
}

// Run compiles g and executes the protocol (see RunSnapshot).
func (e *DistEngine) Run(g *graph.Graph, f sim.Factory) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence across the mesh.
func (e *DistEngine) RunSnapshot(c *graph.CSR, f sim.Factory) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	return e.run(c, f, nil)
}

// ResumeSnapshot continues a checkpointed run: every process decodes the
// full frozen state plane from ck (each process reads the checkpoint file
// itself — there is no state redistribution), takes over the pending
// deliveries it owns, and the run proceeds exactly as if never stopped.
func (e *DistEngine) ResumeSnapshot(c *graph.CSR, f sim.Factory, ck *sim.Checkpoint) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	if ck == nil {
		return nil, nil, &sim.CheckpointError{Reason: "nil checkpoint"}
	}
	return e.run(c, f, ck)
}

func (e *DistEngine) run(c *graph.CSR, f sim.Factory, ck *sim.Checkpoint) (protos map[sim.NodeID]sim.Protocol, rep *sim.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			protos, rep = nil, nil
			err = fmt.Errorf("sim: protocol panic: %v", p)
		}
	}()
	start := time.Now()
	t := e.T
	if len(e.Owner) != c.N() {
		return nil, nil, fmt.Errorf("net: owner table covers %d nodes, snapshot has %d", len(e.Owner), c.N())
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = sim.DefaultMaxMessages
	}
	e.seq++
	seq := e.seq
	r := sim.NewDistRunner(c, e.Owner, t.Procs(), t.Self(), f)

	var (
		off       []int64
		total     int64
		streams   [][]sim.OutMsg
		round     int64
		delivered int64
		stop      bool
	)
	if ck == nil {
		r.PlayInit()
		off, total, streams, stop, err = e.barrier(r, seq, 0, int64(c.N()))
		if err != nil {
			return nil, nil, decorateBarrier(err, 0)
		}
	} else {
		// Reseed from the checkpoint: full state plane everywhere, the
		// counters on process 0 only (the final merge sums them back), and
		// the pending slab as one identity-keyed stream filtered to the
		// deliveries this process owns — the same reseeding the sharded
		// engine does, with processes for shards.
		if err := ck.ValidateAgainst(c); err != nil {
			return nil, nil, err
		}
		if err := ck.RestoreStates(r.Protos()); err != nil {
			return nil, nil, err
		}
		if t.Self() == 0 {
			ck.RestoreCounters(r.Report())
		}
		round = ck.Round
		delivered = ck.Messages
		total = int64(len(ck.Pending))
		off = make([]int64, len(ck.Pending))
		var mine []sim.OutMsg
		for i, p := range ck.Pending {
			off[i] = int64(i)
			if e.Owner[p.To] == int32(t.Self()) {
				mine = append(mine, sim.OutMsg{Parent: int64(i), From: p.From, To: p.To, Msg: p.Msg})
			}
		}
		streams = [][]sim.OutMsg{mine}
	}

	spec := e.Checkpoint
	for {
		// An armed crash fault is honoured first: the process abandons the
		// run abruptly, tearing its connections down mid-protocol — the
		// chaos tests' stand-in for a real crash.
		if t.Faults != nil && t.Faults.crashAt(t.Self(), int64(seq), round) {
			t.Close()
			return nil, nil, &InjectedCrashError{Run: int64(seq), Round: round}
		}
		// A barrier-agreed stop outranks everything but quiescence: commit
		// a final recovery point when checkpointing is armed, then stop
		// cleanly on every process at this same barrier.
		if stop && total > 0 {
			if spec != nil {
				if err := e.commit(r, c, seq, round, off, total); err != nil {
					return nil, nil, decorateBarrier(err, round)
				}
			}
			return nil, nil, sim.ErrStopped
		}
		if spec != nil && ck == nil {
			if spec.Every > 0 {
				// Periodic cadence: commit at every positive multiple of
				// Every and keep running.
				if round > 0 && round%spec.Every == 0 {
					if err := e.commit(r, c, seq, round, off, total); err != nil {
						return nil, nil, decorateBarrier(err, round)
					}
				}
			} else if round == spec.Round {
				if err := e.commit(r, c, seq, round, off, total); err != nil {
					return nil, nil, decorateBarrier(err, round)
				}
				return nil, nil, sim.ErrCheckpointed
			}
		}
		// The sharded cap predicate at barrier granularity: delivered and
		// total are barrier-agreed values, so every process takes the same
		// branch.
		if delivered > maxMsgs || (delivered >= maxMsgs && total > 0) {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		if total == 0 {
			break
		}
		round++
		r.PlayRound(round, off, streams)
		delivered += total
		off, total, streams, stop, err = e.barrier(r, seq, round, total)
		if err != nil {
			return nil, nil, decorateBarrier(err, round)
		}
		// A checkpoint barrier reached by replaying past a resume must not
		// re-commit; only barriers beyond the resume point fire above.
		if ck != nil && round > ck.Round {
			ck = nil
		}
	}
	return e.finish(r, c, seq, round, start)
}

// decorateBarrier stamps a liveness failure with the last barrier the
// local process completed, turning "peer down" into "peer down since
// barrier r" for the operator.
func decorateBarrier(err error, round int64) error {
	var pd *PeerDownError
	if errors.As(err, &pd) && pd.Barrier < 0 {
		pd.Barrier = round
	}
	return err
}

// barrier closes one phase: broadcast this process's rank counts, control
// flags and per-peer delivery batches, collect every peer's, scatter all
// counts into the rank slab and prefix-sum it into the next round's
// offsets. Returns the offsets, the next round's delivery total, the
// key-sorted incoming streams (the process's own loopback outbox, copied,
// plus one batch per peer) and the OR of the barrier's stop flags — the
// same value on every process, so a graceful stop is a cluster-wide
// agreement, not a race.
func (e *DistEngine) barrier(r *sim.DistRunner, seq uint64, round, rankSpace int64) ([]int64, int64, [][]sim.OutMsg, bool, error) {
	t := e.T
	self := t.Self()
	counts := r.Counts()
	if e.Stop != nil && e.Stop() {
		e.stopLatched = true
	}
	var flags uint64
	if e.stopLatched {
		flags |= roundFlagStop
	}
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		body := appendRoundMsg(nil, seq, round, flags, counts, r.Outbox(q), t.Table())
		if err := t.Send(q, frameRound, body); err != nil {
			return nil, 0, nil, false, err
		}
	}
	if err := t.FlushAll(); err != nil {
		return nil, 0, nil, false, err
	}

	// The loopback stream must outlive the next PlayRound's outbox reset.
	streams := make([][]sim.OutMsg, 0, t.Procs())
	streams = append(streams, append([]sim.OutMsg(nil), r.Outbox(self)...))

	cnt := make([]int64, rankSpace)
	covered := int64(0)
	scatter := func(cs []sim.RankCount) error {
		for _, c := range cs {
			if c.Rank < 0 || c.Rank >= rankSpace {
				return &FrameError{Type: frameRound, Reason: fmt.Sprintf("rank %d outside the round's %d-delivery rank space", c.Rank, rankSpace)}
			}
			cnt[c.Rank] = c.Count
		}
		covered += int64(len(cs))
		return nil
	}
	if err := scatter(counts); err != nil {
		return nil, 0, nil, false, err
	}
	stop := flags&roundFlagStop != 0
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		m, err := e.recvRound(q, seq, round)
		if err != nil {
			return nil, 0, nil, false, err
		}
		if err := scatter(m.counts); err != nil {
			return nil, 0, nil, false, err
		}
		stop = stop || m.flags&roundFlagStop != 0
		streams = append(streams, m.batch)
	}
	if covered != rankSpace {
		return nil, 0, nil, false, &FrameError{Type: frameRound, Reason: fmt.Sprintf("barrier covered %d of %d delivery ranks", covered, rankSpace)}
	}
	var total int64
	for i, c := range cnt {
		cnt[i] = total
		total += c
	}
	return cnt, total, streams, stop, nil
}

// recvRound reads the peer's round frame for (seq, round). Per-peer FIFO
// delivery and the all-gather barrier between runs guarantee it is the
// next frame on the connection; anything else is a protocol violation.
func (e *DistEngine) recvRound(q int, seq uint64, round int64) (*roundMsg, error) {
	typ, payload, err := e.T.Recv(q)
	if err != nil {
		return nil, err
	}
	if typ != frameRound {
		return nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at a round barrier", q, typ)}
	}
	m, err := parseRoundMsg(payload, e.T.Table())
	if err != nil {
		return nil, err
	}
	if m.seq != seq || m.round != round {
		return nil, &FrameError{Type: typ, Reason: fmt.Sprintf(
			"process %d is at run %d round %d, local barrier is run %d round %d", q, m.seq, m.round, seq, round)}
	}
	return m, nil
}

// ownedStates encodes the states of the nodes this process owns with the
// canonical wire table.
func (e *DistEngine) ownedStates(r *sim.DistRunner) ([]ownedState, error) {
	t := e.T
	states := make([]ownedState, 0, len(r.Owned()))
	for _, v := range r.Owned() {
		blob, err := r.EncodeOwnedState(v, t.Table().Enc)
		if err != nil {
			return nil, err
		}
		states = append(states, ownedState{dense: v, blob: blob})
	}
	return states, nil
}

// finish is the quiescence all-gather: broadcast counters and owned
// states, decode every peer's states into the local instances, merge the
// reports, and return the complete final state plane. Matching the
// single-process engines, the merged report carries Shards=1 (the
// distribution is a deployment detail, not a different execution) and
// VirtualTime = the final round.
func (e *DistEngine) finish(r *sim.DistRunner, c *graph.CSR, seq uint64, round int64, start time.Time) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	t := e.T
	self := t.Self()
	states, err := e.ownedStates(r)
	if err != nil {
		return nil, nil, err
	}
	var cb sim.Checkpoint
	cb.CaptureCounters(r.Report())
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		body := appendFinalMsg(nil, seq, &cb, states, t.Table())
		if err := t.Send(q, frameFinal, body); err != nil {
			return nil, nil, err
		}
	}
	if err := t.FlushAll(); err != nil {
		return nil, nil, err
	}

	merged := sim.NewReport()
	merged.MergeParallel(r.Report())
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		typ, payload, err := t.Recv(q)
		if err != nil {
			return nil, nil, err
		}
		if typ != frameFinal {
			return nil, nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at the final all-gather", q, typ)}
		}
		m, err := parseFinalMsg(payload, t.Table())
		if err != nil {
			return nil, nil, err
		}
		if m.seq != seq {
			return nil, nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d finished run %d, local run is %d", q, m.seq, seq)}
		}
		peerRep := sim.NewReport()
		m.counters.RestoreCounters(peerRep)
		merged.MergeParallel(peerRep)
		for _, s := range m.states {
			if int(s.dense) >= c.N() || e.Owner[s.dense] != int32(q) {
				return nil, nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent the state of node %d it does not own", q, s.dense)}
			}
			if err := r.DecodeStateInto(s.dense, s.blob, t.Table().Dec); err != nil {
				return nil, nil, err
			}
		}
	}
	merged.Shards = 1
	merged.VirtualTime = float64(round)
	merged.Finalize()
	merged.Wall = time.Since(start)
	return r.FinalProtos(), merged, nil
}

// commit runs the distributed checkpoint protocol at the just-closed
// barrier. Peers upload their shard — counters, owned states and the
// key-sorted stream of all deliveries they sent into the frozen round — to
// process 0, which decodes the full state plane, merges the counters,
// reconstructs the global pending slab by the canonical key merge, stores
// the file (byte-identical to the in-process engines' by construction —
// durably through the spec's Sink when set, else to its W) and
// acknowledges the commit. Returns nil on success; the caller decides
// whether the run stops (freeze, graceful stop) or continues (periodic
// cadence).
func (e *DistEngine) commit(r *sim.DistRunner, c *graph.CSR, seq uint64, round int64, off []int64, total int64) error {
	t := e.T
	self := t.Self()
	// This process's complete send set, merged across its per-destination
	// outboxes into one key-sorted stream.
	own := mergeByKey(collectOutboxes(r, t.Procs()))

	if self != 0 {
		states, err := e.ownedStates(r)
		if err != nil {
			return err
		}
		var cb sim.Checkpoint
		cb.CaptureCounters(r.Report())
		body := appendCkptMsg(nil, seq, round, &cb, states, own, t.Table())
		if err := t.Send(0, frameCkpt, body); err != nil {
			return err
		}
		if err := t.Flush(0); err != nil {
			return err
		}
		typ, payload, err := t.Recv(0)
		if err != nil {
			return err
		}
		if typ != frameCkptAck {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("coordinator sent frame type %d at a checkpoint barrier", typ)}
		}
		ackSeq, ackRound, err := parseCkptAck(payload)
		if err != nil {
			return err
		}
		if ackSeq != seq || ackRound != round {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("checkpoint ack for run %d round %d, expected run %d round %d", ackSeq, ackRound, seq, round)}
		}
		return nil
	}

	if e.Checkpoint.Sink == nil && e.Checkpoint.W == nil {
		return &sim.CheckpointError{Reason: "coordinator has no checkpoint writer"}
	}
	merged := sim.NewReport()
	merged.MergeParallel(r.Report())
	streams := make([][]sim.OutMsg, 0, t.Procs())
	streams = append(streams, own)
	for q := 1; q < t.Procs(); q++ {
		typ, payload, err := t.Recv(q)
		if err != nil {
			return err
		}
		if typ != frameCkpt {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at a checkpoint barrier", q, typ)}
		}
		m, err := parseCkptMsg(payload, t.Table())
		if err != nil {
			return err
		}
		if m.seq != seq || m.round != round {
			return &FrameError{Type: typ, Reason: fmt.Sprintf(
				"process %d checkpoints run %d round %d, coordinator is at run %d round %d", q, m.seq, m.round, seq, round)}
		}
		peerRep := sim.NewReport()
		m.counters.RestoreCounters(peerRep)
		merged.MergeParallel(peerRep)
		for _, s := range m.states {
			if int(s.dense) >= c.N() || e.Owner[s.dense] != int32(q) {
				return &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent the state of node %d it does not own", q, s.dense)}
			}
			if err := r.DecodeStateInto(s.dense, s.blob, t.Table().Dec); err != nil {
				return err
			}
		}
		streams = append(streams, m.pending)
	}

	// The exact in-process capture sequence, so the file's internal opcode
	// numbering — fixed by state-encoding order — matches byte for byte.
	ck := &sim.Checkpoint{Round: round, N: c.N(), HalfEdges: c.HalfEdges()}
	ck.CaptureCounters(merged)
	if err := ck.EncodeStates(r.Protos()); err != nil {
		return err
	}
	ck.Pending = make([]sim.PendingDelivery, total)
	placed := int64(0)
	for _, m := range mergeByKey(streams) {
		rank := off[m.Parent] + int64(m.Pos)
		if rank < 0 || rank >= total {
			return &FrameError{Type: frameCkpt, Reason: fmt.Sprintf("pending delivery rank %d outside [0, %d)", rank, total)}
		}
		ck.Pending[rank] = sim.PendingDelivery{From: m.From, To: m.To, Msg: m.Msg}
		placed++
	}
	if placed != total {
		return &FrameError{Type: frameCkpt, Reason: fmt.Sprintf("checkpoint gathered %d of %d pending deliveries", placed, total)}
	}
	if sink := e.Checkpoint.Sink; sink != nil {
		if err := sink.Commit(round, ck.Write); err != nil {
			return err
		}
	} else if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	for q := 1; q < t.Procs(); q++ {
		if err := t.Send(q, frameCkptAck, appendCkptAck(nil, seq, round)); err != nil {
			return err
		}
	}
	if err := t.FlushAll(); err != nil {
		return err
	}
	return nil
}

// collectOutboxes snapshots every per-destination outbox of the phase.
func collectOutboxes(r *sim.DistRunner, nprocs int) [][]sim.OutMsg {
	streams := make([][]sim.OutMsg, 0, nprocs)
	for d := 0; d < nprocs; d++ {
		streams = append(streams, r.Outbox(d))
	}
	return streams
}

// mergeByKey merges key-sorted delivery streams into one stream in
// canonical (Parent, Pos) order.
func mergeByKey(streams [][]sim.OutMsg) []sim.OutMsg {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]sim.OutMsg, 0, n)
	heads := make([]int, len(streams))
	for {
		best := -1
		for s, q := range streams {
			if heads[s] >= len(q) {
				continue
			}
			if best < 0 || q[heads[s]].KeyLess(streams[best][heads[best]]) {
				best = s
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, streams[best][heads[best]])
		heads[best]++
	}
}

var _ sim.SnapshotEngine = (*DistEngine)(nil)
var _ sim.ResumableEngine = (*DistEngine)(nil)
