package net

import (
	"errors"
	"fmt"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
)

// DistEngine executes a protocol run across the OS processes of an
// established Transport mesh: each process hosts the nodes its Owner table
// assigns to it and drives unit-delay rounds separated by an all-to-all
// barrier. The barrier reuses the sharded engine's determinism machinery
// (DESIGN.md §7) verbatim — deliveries keyed (parent rank, send position),
// rank offsets from a prefix sum over broadcast send counts — so the
// distributed run is tree-, report- and checkpoint-byte-equivalent to the
// in-process engines. DistEngine is a drop-in sim.SnapshotEngine: the
// spanning and mdst pipelines run on it unchanged.
//
// One barrier exchange per round, per peer: a single round frame carrying
// the sender's (rank, count) pairs and the delivery batch destined to that
// peer, coalesced and flushed once. Quiescence (a round with no sends
// anywhere) triggers the final all-gather: every process broadcasts its
// report counters and its owned nodes' encoded states, so every process
// finishes holding the complete final state plane and extracts the
// identical tree. The all-gather doubles as the run-closing barrier; a
// run-sequence number in every frame keeps the two pipeline phases (flood
// build, improvement) apart on the shared connections.
//
// All processes of one run must be constructed with identical Owner,
// MaxMessages and Checkpoint.Round configuration — the topology config
// file is that single source of truth for cmd/mdstd.
type DistEngine struct {
	// T is the established transport mesh.
	T *Transport
	// Owner maps every dense node to its owning process.
	Owner []int32
	// MaxMessages aborts the run when exceeded, checked at barrier
	// granularity exactly like the sharded engine (0 means
	// sim.DefaultMaxMessages).
	MaxMessages int64
	// Checkpoint, when non-nil, arms barrier checkpointing. Freeze mode
	// (Every == 0) stops the run at the barrier after round
	// Checkpoint.Round: the peers upload their shards to process 0, which
	// assembles and writes a file byte-identical to the in-process
	// engines' (Checkpoint.W is used on process 0 only) and acknowledges
	// the commit before anyone stops. Periodic mode (Every > 0) runs the
	// same commit protocol at every barrier whose round is a positive
	// multiple of Every, with process 0 writing through Checkpoint.Sink,
	// and the cluster keeps running — there is always a recent recovery
	// point.
	Checkpoint *sim.CheckpointSpec
	// Stop, polled at each barrier, requests a graceful cluster-wide stop:
	// the process latches the request into its round frames' stop flag,
	// every process ORs the barrier's K flags, and on agreement the run
	// commits a final checkpoint (when Checkpoint is armed) and returns
	// sim.ErrStopped at the same barrier everywhere — no process dies
	// mid-barrier.
	Stop func() bool
	// Stats, when non-nil, accumulates per-run wire and barrier counters
	// (frames, bytes, header share, flushes, barrier wait). Engine
	// goroutine only; nil costs one branch per barrier.
	Stats *NetStats

	// seq numbers the runs driven over this engine's transport, separating
	// the phases' frames on the shared connections.
	seq uint64
	// stopLatched makes the stop request sticky across barriers and runs.
	stopLatched bool
	// sc is the engine-instance round arena (DESIGN.md §13): every slab the
	// barrier needs, grown by amortised doubling and reused across rounds
	// and runs, so an unperturbed steady-state round allocates nothing.
	sc roundScratch
}

// roundScratch is the persistent round arena. All slabs are engine-
// goroutine-only and sized by the high-water mark of the rounds driven so
// far.
type roundScratch struct {
	cnt   []int64      // rank slab: counts scattered, prefix-summed into offsets
	base  []int64      // per-parent local placement cursors for the splice
	inbox []sim.OutMsg // spliced global-order delivery plane handed to PlayRound
	enc   [][]byte     // per-peer frame encode slabs
	rx    [][]sim.OutMsg // per-peer decoded-batch slabs

	states     []ownedState // owned-state headers for the all-gather / checkpoint
	stateBytes []byte       // arena behind the states' blobs

	runner sim.DistScratch // the runner's recycled slabs (protos, contexts, outboxes)
}

// slabs ensures the two rank-indexed slabs hold rankSpace entries (grown
// by doubling, never shrunk) and the per-peer slab tables cover procs,
// returning the zeroed cnt and base views for this barrier.
func (s *roundScratch) slabs(procs int, rankSpace int64) (cnt, base []int64) {
	if int64(cap(s.cnt)) < rankSpace {
		grow := 2 * int64(cap(s.cnt))
		if grow < rankSpace {
			grow = rankSpace
		}
		s.cnt = make([]int64, grow)
		s.base = make([]int64, grow)
	}
	if len(s.enc) < procs {
		s.enc = make([][]byte, procs)
		s.rx = make([][]sim.OutMsg, procs)
	}
	cnt, base = s.cnt[:rankSpace], s.base[:rankSpace]
	for i := range cnt {
		cnt[i] = 0
		base[i] = 0
	}
	return cnt, base
}

// grownInbox returns an n-record view of the inbox slab.
func (s *roundScratch) grownInbox(n int) []sim.OutMsg {
	if cap(s.inbox) < n {
		grow := 2 * cap(s.inbox)
		if grow < n {
			grow = n
		}
		s.inbox = make([]sim.OutMsg, grow)
	}
	return s.inbox[:n]
}

// Run compiles g and executes the protocol (see RunSnapshot).
func (e *DistEngine) Run(g *graph.Graph, f sim.Factory) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	return e.RunSnapshot(g.Compile(), f)
}

// RunSnapshot executes the protocol to quiescence across the mesh.
func (e *DistEngine) RunSnapshot(c *graph.CSR, f sim.Factory) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	r, rep, err := e.run(c, f, nil)
	if err != nil {
		return nil, nil, err
	}
	return r.FinalProtos(), rep, nil
}

// RunSnapshotDense is RunSnapshot returning the final protocol instances
// dense-indexed (sim.DenseSnapshotEngine): the runner already addresses
// every node's state densely and the final all-gather writes peer states
// into that same slice, so the dense result skips the identity-keyed map —
// on a large workload the single biggest allocation of a quiesced
// distributed run.
func (e *DistEngine) RunSnapshotDense(c *graph.CSR, f sim.Factory) ([]sim.Protocol, *sim.Report, error) {
	r, rep, err := e.run(c, f, nil)
	if err != nil {
		return nil, nil, err
	}
	return r.Protos(), rep, nil
}

// ResumeSnapshot continues a checkpointed run: every process decodes the
// full frozen state plane from ck (each process reads the checkpoint file
// itself — there is no state redistribution), takes over the pending
// deliveries it owns, and the run proceeds exactly as if never stopped.
func (e *DistEngine) ResumeSnapshot(c *graph.CSR, f sim.Factory, ck *sim.Checkpoint) (map[sim.NodeID]sim.Protocol, *sim.Report, error) {
	if ck == nil {
		return nil, nil, &sim.CheckpointError{Reason: "nil checkpoint"}
	}
	r, rep, err := e.run(c, f, ck)
	if err != nil {
		return nil, nil, err
	}
	return r.FinalProtos(), rep, nil
}

func (e *DistEngine) run(c *graph.CSR, f sim.Factory, ck *sim.Checkpoint) (r *sim.DistRunner, rep *sim.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, rep = nil, nil
			err = fmt.Errorf("sim: protocol panic: %v", p)
		}
	}()
	start := time.Now()
	t := e.T
	if len(e.Owner) != c.N() {
		return nil, nil, fmt.Errorf("net: owner table covers %d nodes, snapshot has %d", len(e.Owner), c.N())
	}
	maxMsgs := e.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = sim.DefaultMaxMessages
	}
	e.seq++
	seq := e.seq
	r = sim.NewDistRunnerScratch(c, e.Owner, t.Procs(), t.Self(), f, &e.sc.runner)
	// Harvest the runner's slabs for the next run once this one ends
	// (bound to the runner now, so the recover path's r=nil cannot skip
	// it). Results returned to the caller stay valid until that next run.
	defer r.Release(&e.sc.runner)

	var (
		off       []int64
		total     int64
		inbox     []sim.OutMsg
		round     int64
		delivered int64
		stop      bool
	)
	if ck == nil {
		r.PlayInit()
		off, total, inbox, stop, err = e.barrier(r, seq, 0, int64(c.N()))
		if err != nil {
			return nil, nil, decorateBarrier(err, 0)
		}
	} else {
		// Reseed from the checkpoint: full state plane everywhere, the
		// counters on process 0 only (the final merge sums them back), and
		// the pending slab replayed as an already-spliced inbox — rank i is
		// delivery i of the frozen round, so the offsets are the identity
		// and the owned records carry their rank directly. The same
		// reseeding the sharded engine does, with processes for shards.
		if err := ck.ValidateAgainst(c); err != nil {
			return nil, nil, err
		}
		if err := ck.RestoreStates(r.Protos()); err != nil {
			return nil, nil, err
		}
		if t.Self() == 0 {
			ck.RestoreCounters(r.Report())
		}
		round = ck.Round
		delivered = ck.Messages
		total = int64(len(ck.Pending))
		off = make([]int64, len(ck.Pending))
		for i := range off {
			off[i] = int64(i)
		}
		for i, p := range ck.Pending {
			if e.Owner[p.To] == int32(t.Self()) {
				inbox = append(inbox, sim.OutMsg{Parent: int64(i), From: p.From, To: p.To, Msg: p.Msg})
			}
		}
	}

	spec := e.Checkpoint
	for {
		// An armed crash fault is honoured first: the process abandons the
		// run abruptly, tearing its connections down mid-protocol — the
		// chaos tests' stand-in for a real crash.
		if t.Faults != nil && t.Faults.crashAt(t.Self(), int64(seq), round) {
			t.Close()
			return nil, nil, &InjectedCrashError{Run: int64(seq), Round: round}
		}
		// A barrier-agreed stop outranks everything but quiescence: commit
		// a final recovery point when checkpointing is armed, then stop
		// cleanly on every process at this same barrier.
		if stop && total > 0 {
			if spec != nil {
				if err := e.commit(r, c, seq, round, off, total); err != nil {
					return nil, nil, decorateBarrier(err, round)
				}
			}
			return nil, nil, sim.ErrStopped
		}
		if spec != nil && ck == nil {
			if spec.Every > 0 {
				// Periodic cadence: commit at every positive multiple of
				// Every and keep running.
				if round > 0 && round%spec.Every == 0 {
					if err := e.commit(r, c, seq, round, off, total); err != nil {
						return nil, nil, decorateBarrier(err, round)
					}
					// The commit's counter capture folded and detached the
					// report's dense sender slab; the run continues, so
					// re-arm it for the rounds after the recovery point.
					r.RearmFast()
				}
			} else if round == spec.Round {
				if err := e.commit(r, c, seq, round, off, total); err != nil {
					return nil, nil, decorateBarrier(err, round)
				}
				return nil, nil, sim.ErrCheckpointed
			}
		}
		// The sharded cap predicate at barrier granularity: delivered and
		// total are barrier-agreed values, so every process takes the same
		// branch.
		if delivered > maxMsgs || (delivered >= maxMsgs && total > 0) {
			return nil, nil, fmt.Errorf("sim: exceeded %d messages; protocol livelock?", maxMsgs)
		}
		if total == 0 {
			break
		}
		round++
		r.PlayRound(round, inbox)
		delivered += total
		off, total, inbox, stop, err = e.barrier(r, seq, round, total)
		if err != nil {
			return nil, nil, decorateBarrier(err, round)
		}
		// A checkpoint barrier reached by replaying past a resume must not
		// re-commit; only barriers beyond the resume point fire above.
		if ck != nil && round > ck.Round {
			ck = nil
		}
	}
	rep, err = e.finish(r, c, seq, round, start)
	return r, rep, err
}

// decorateBarrier stamps a liveness failure with the last barrier the
// local process completed, turning "peer down" into "peer down since
// barrier r" for the operator.
func decorateBarrier(err error, round int64) error {
	var pd *PeerDownError
	if errors.As(err, &pd) && pd.Barrier < 0 {
		pd.Barrier = round
	}
	return err
}

// barrier closes one phase: broadcast this process's rank counts, control
// flags and per-peer delivery batches, collect every peer's, scatter all
// counts into the rank slab and prefix-sum it into the next round's
// offsets, then splice the incoming runs (the process's own loopback
// outbox plus one decoded batch per peer) into the next round's inbox.
//
// The splice is a counting sort, not a merge (DESIGN.md §13): every
// parent rank's deliveries are played by exactly one process, so all of a
// parent's sends to this receiver arrive in exactly one run, already
// ascending in Pos. Counting the local records per parent and
// prefix-summing yields each parent's block start in the inbox; a second
// pass places every record at its block cursor and materialises its
// global rank (off[Parent] + Pos) into the Parent field. Block order
// follows parent rank and within-parent order follows the run, so the
// inbox is exactly the canonical (Parent, Pos) delivery order the old
// K-way merge produced — in O(records + rankSpace) with zero comparisons
// and, after warm-up, zero allocations.
//
// Returns the offsets, the next round's delivery total, the spliced inbox
// (aliasing engine scratch — valid until the next barrier) and the OR of
// the barrier's stop flags — the same value on every process, so a
// graceful stop is a cluster-wide agreement, not a race.
func (e *DistEngine) barrier(r *sim.DistRunner, seq uint64, round, rankSpace int64) ([]int64, int64, []sim.OutMsg, bool, error) {
	t := e.T
	self := t.Self()
	counts := r.Counts()
	if e.Stop != nil && e.Stop() {
		e.stopLatched = true
	}
	var flags uint64
	if e.stopLatched {
		flags |= roundFlagStop
	}
	cnt, base := e.sc.slabs(t.Procs(), rankSpace)
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		body := appendRoundHeader(e.sc.enc[q][:0], seq, round, flags, counts)
		hdr := len(body)
		body = appendRoundBatch(body, r.Outbox(q), t.Table())
		e.sc.enc[q] = body
		if st := e.Stats; st != nil {
			st.FramesSent++
			st.BytesSent += int64(len(body))
			st.HeaderBytes += int64(hdr)
		}
		if err := t.Send(q, frameRound, body); err != nil {
			return nil, 0, nil, false, err
		}
	}
	if err := t.FlushAll(); err != nil {
		return nil, 0, nil, false, err
	}
	if st := e.Stats; st != nil {
		st.Rounds++
		st.Flushes++
	}

	// Scatter the local counts (trusted: ranks come from this process's own
	// prefix sums), then each peer's — decodeRound scatters and
	// bounds-checks while parsing, straight into the slab.
	for _, c := range counts {
		cnt[c.Rank] = c.Count
	}
	covered := int64(len(counts))
	nrec := len(r.Outbox(self))
	stop := flags&roundFlagStop != 0
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		h, cov, err := e.recvRound(q, seq, round, rankSpace, cnt, &e.sc.rx[q])
		if err != nil {
			return nil, 0, nil, false, err
		}
		stop = stop || h.flags&roundFlagStop != 0
		covered += cov
		nrec += len(e.sc.rx[q])
	}
	if covered != rankSpace {
		return nil, 0, nil, false, &FrameError{Type: frameRound, Reason: fmt.Sprintf("barrier covered %d of %d delivery ranks", covered, rankSpace)}
	}
	var total int64
	for i, c := range cnt {
		cnt[i] = total
		total += c
	}

	// Splice. First pass: local records per parent; exclusive prefix sum
	// turns base into block cursors; second pass places each record and
	// materialises its global rank. Peer records are ownership-checked here
	// (their endpoints came off a socket); loopback records were routed by
	// the local owner table.
	for _, m := range r.Outbox(self) {
		base[m.Parent]++
	}
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		for _, m := range e.sc.rx[q] {
			base[m.Parent]++
		}
	}
	var at int64
	for i := range base {
		c := base[i]
		base[i] = at
		at += c
	}
	inbox := e.sc.grownInbox(nrec)
	place := func(m sim.OutMsg) {
		slot := base[m.Parent]
		base[m.Parent]++
		m.Parent = cnt[m.Parent] + int64(m.Pos)
		inbox[slot] = m
	}
	for _, m := range r.Outbox(self) {
		place(m)
	}
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		for _, m := range e.sc.rx[q] {
			if int(m.To) >= len(e.Owner) || e.Owner[m.To] != int32(self) || int(m.From) >= len(e.Owner) {
				return nil, 0, nil, false, &FrameError{Type: frameRound, Reason: fmt.Sprintf(
					"process %d sent a delivery %d->%d this process does not own", q, m.From, m.To)}
			}
			place(m)
		}
	}
	return cnt, total, inbox, stop, nil
}

// recvRound reads and stream-decodes the peer's round frame for (seq,
// round): counts scatter into cnt, the batch lands in the peer's reusable
// slab. Per-peer FIFO delivery and the all-gather barrier between runs
// guarantee it is the next frame on the connection; anything else is a
// protocol violation. Returns the frame's header and its count-entry
// total for the coverage cross-check.
func (e *DistEngine) recvRound(q int, seq uint64, round, rankSpace int64, cnt []int64, dst *[]sim.OutMsg) (roundHeader, int64, error) {
	var t0 time.Time
	if e.Stats != nil {
		t0 = time.Now()
	}
	typ, payload, err := e.T.Recv(q)
	if st := e.Stats; st != nil {
		st.BarrierWaitNs += int64(time.Since(t0))
		if err == nil {
			st.FramesRecv++
			st.BytesRecv += int64(len(payload))
		}
	}
	if err != nil {
		return roundHeader{}, 0, err
	}
	if typ != frameRound {
		return roundHeader{}, 0, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at a round barrier", q, typ)}
	}
	h, covered, err := decodeRound(payload, e.T.Table(), rankSpace, cnt, dst)
	if err != nil {
		return h, 0, err
	}
	if h.seq != seq || h.round != round {
		return h, 0, &FrameError{Type: typ, Reason: fmt.Sprintf(
			"process %d is at run %d round %d, local barrier is run %d round %d", q, h.seq, h.round, seq, round)}
	}
	return h, covered, nil
}

// ownedStates encodes the states of the nodes this process owns with the
// canonical wire table, into the engine's state arena (blobs alias
// sc.stateBytes; valid until the next ownedStates call).
func (e *DistEngine) ownedStates(r *sim.DistRunner) ([]ownedState, error) {
	t := e.T
	states := e.sc.states[:0]
	buf := e.sc.stateBytes[:0]
	for _, v := range r.Owned() {
		n0 := len(buf)
		var err error
		buf, err = r.AppendOwnedState(buf, v, t.Table().Enc)
		if err != nil {
			return nil, err
		}
		states = append(states, ownedState{dense: v, blob: buf[n0:len(buf):len(buf)]})
	}
	e.sc.states = states
	e.sc.stateBytes = buf
	return states, nil
}

// finish is the quiescence all-gather: broadcast counters and owned
// states, decode every peer's states into the local instances, merge the
// reports, and return the complete final state plane. Matching the
// single-process engines, the merged report carries Shards=1 (the
// distribution is a deployment detail, not a different execution) and
// VirtualTime = the final round.
func (e *DistEngine) finish(r *sim.DistRunner, c *graph.CSR, seq uint64, round int64, start time.Time) (*sim.Report, error) {
	t := e.T
	self := t.Self()
	states, err := e.ownedStates(r)
	if err != nil {
		return nil, err
	}
	var cb sim.Checkpoint
	cb.CaptureCounters(r.Report())
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		body := appendFinalMsg(nil, seq, &cb, states, t.Table())
		if err := t.Send(q, frameFinal, body); err != nil {
			return nil, err
		}
	}
	if err := t.FlushAll(); err != nil {
		return nil, err
	}

	merged := sim.NewReport()
	merged.MergeParallel(r.Report())
	for q := 0; q < t.Procs(); q++ {
		if q == self {
			continue
		}
		typ, payload, err := t.Recv(q)
		if err != nil {
			return nil, err
		}
		if typ != frameFinal {
			return nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at the final all-gather", q, typ)}
		}
		m, err := parseFinalMsg(payload, t.Table())
		if err != nil {
			return nil, err
		}
		if m.seq != seq {
			return nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d finished run %d, local run is %d", q, m.seq, seq)}
		}
		peerRep := sim.NewReport()
		m.counters.RestoreCounters(peerRep)
		merged.MergeParallel(peerRep)
		for _, s := range m.states {
			if int(s.dense) >= c.N() || e.Owner[s.dense] != int32(q) {
				return nil, &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent the state of node %d it does not own", q, s.dense)}
			}
			if err := r.DecodeStateInto(s.dense, s.blob, t.Table().Dec); err != nil {
				return nil, err
			}
		}
	}
	merged.Shards = 1
	merged.VirtualTime = float64(round)
	merged.Finalize()
	merged.Wall = time.Since(start)
	return merged, nil
}

// commit runs the distributed checkpoint protocol at the just-closed
// barrier. Peers upload their shard — counters, owned states and the
// key-sorted stream of all deliveries they sent into the frozen round — to
// process 0, which decodes the full state plane, merges the counters,
// reconstructs the global pending slab by placing every record directly
// at its global rank (each record's final slot is off[Parent] + Pos — the
// same arithmetic as the round splice, so no key merge is needed), stores
// the file (byte-identical to the in-process engines' by construction —
// durably through the spec's Sink when set, else to its W) and
// acknowledges the commit. Returns nil on success; the caller decides
// whether the run stops (freeze, graceful stop) or continues (periodic
// cadence).
func (e *DistEngine) commit(r *sim.DistRunner, c *graph.CSR, seq uint64, round int64, off []int64, total int64) error {
	t := e.T
	self := t.Self()

	if self != 0 {
		// The upload's delivery run must be one key-sorted stream (the
		// delta batch encoding requires it), so the peer merges its
		// per-destination outboxes here — the one surviving use of the
		// K-way merge, off the round path.
		own := mergeByKey(collectOutboxes(r, t.Procs()))
		states, err := e.ownedStates(r)
		if err != nil {
			return err
		}
		var cb sim.Checkpoint
		cb.CaptureCounters(r.Report())
		body := appendCkptMsg(nil, seq, round, &cb, states, own, t.Table())
		if err := t.Send(0, frameCkpt, body); err != nil {
			return err
		}
		if err := t.Flush(0); err != nil {
			return err
		}
		typ, payload, err := t.Recv(0)
		if err != nil {
			return err
		}
		if typ != frameCkptAck {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("coordinator sent frame type %d at a checkpoint barrier", typ)}
		}
		ackSeq, ackRound, err := parseCkptAck(payload)
		if err != nil {
			return err
		}
		if ackSeq != seq || ackRound != round {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("checkpoint ack for run %d round %d, expected run %d round %d", ackSeq, ackRound, seq, round)}
		}
		return nil
	}

	if e.Checkpoint.Sink == nil && e.Checkpoint.W == nil {
		return &sim.CheckpointError{Reason: "coordinator has no checkpoint writer"}
	}
	merged := sim.NewReport()
	merged.MergeParallel(r.Report())
	// The coordinator's own send set goes in unmerged: each per-destination
	// outbox is placed independently by rank below.
	streams := collectOutboxes(r, t.Procs())
	for q := 1; q < t.Procs(); q++ {
		typ, payload, err := t.Recv(q)
		if err != nil {
			return err
		}
		if typ != frameCkpt {
			return &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent frame type %d at a checkpoint barrier", q, typ)}
		}
		m, err := parseCkptMsg(payload, t.Table())
		if err != nil {
			return err
		}
		if m.seq != seq || m.round != round {
			return &FrameError{Type: typ, Reason: fmt.Sprintf(
				"process %d checkpoints run %d round %d, coordinator is at run %d round %d", q, m.seq, m.round, seq, round)}
		}
		peerRep := sim.NewReport()
		m.counters.RestoreCounters(peerRep)
		merged.MergeParallel(peerRep)
		for _, s := range m.states {
			if int(s.dense) >= c.N() || e.Owner[s.dense] != int32(q) {
				return &FrameError{Type: typ, Reason: fmt.Sprintf("process %d sent the state of node %d it does not own", q, s.dense)}
			}
			if err := r.DecodeStateInto(s.dense, s.blob, t.Table().Dec); err != nil {
				return err
			}
		}
		streams = append(streams, m.pending)
	}

	// The exact in-process capture sequence, so the file's internal opcode
	// numbering — fixed by state-encoding order — matches byte for byte.
	ck := &sim.Checkpoint{Round: round, N: c.N(), HalfEdges: c.HalfEdges()}
	ck.CaptureCounters(merged)
	if err := ck.EncodeStates(r.Protos()); err != nil {
		return err
	}
	ck.Pending = make([]sim.PendingDelivery, total)
	placed := int64(0)
	for _, s := range streams {
		for _, m := range s {
			if m.Parent < 0 || m.Parent >= int64(len(off)) {
				return &FrameError{Type: frameCkpt, Reason: fmt.Sprintf("pending delivery parent rank %d outside the %d-rank space", m.Parent, len(off))}
			}
			rank := off[m.Parent] + int64(m.Pos)
			if rank < 0 || rank >= total {
				return &FrameError{Type: frameCkpt, Reason: fmt.Sprintf("pending delivery rank %d outside [0, %d)", rank, total)}
			}
			ck.Pending[rank] = sim.PendingDelivery{From: m.From, To: m.To, Msg: m.Msg}
			placed++
		}
	}
	if placed != total {
		return &FrameError{Type: frameCkpt, Reason: fmt.Sprintf("checkpoint gathered %d of %d pending deliveries", placed, total)}
	}
	if sink := e.Checkpoint.Sink; sink != nil {
		if err := sink.Commit(round, ck.Write); err != nil {
			return err
		}
	} else if err := ck.Write(e.Checkpoint.W); err != nil {
		return err
	}
	for q := 1; q < t.Procs(); q++ {
		if err := t.Send(q, frameCkptAck, appendCkptAck(nil, seq, round)); err != nil {
			return err
		}
	}
	if err := t.FlushAll(); err != nil {
		return err
	}
	return nil
}

// collectOutboxes snapshots every per-destination outbox of the phase.
func collectOutboxes(r *sim.DistRunner, nprocs int) [][]sim.OutMsg {
	streams := make([][]sim.OutMsg, 0, nprocs)
	for d := 0; d < nprocs; d++ {
		streams = append(streams, r.Outbox(d))
	}
	return streams
}

// mergeByKey merges key-sorted delivery streams into one stream in
// canonical (Parent, Pos) order.
func mergeByKey(streams [][]sim.OutMsg) []sim.OutMsg {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]sim.OutMsg, 0, n)
	heads := make([]int, len(streams))
	for {
		best := -1
		for s, q := range streams {
			if heads[s] >= len(q) {
				continue
			}
			if best < 0 || q[heads[s]].KeyLess(streams[best][heads[best]]) {
				best = s
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, streams[best][heads[best]])
		heads[best]++
	}
}

var _ sim.SnapshotEngine = (*DistEngine)(nil)
var _ sim.ResumableEngine = (*DistEngine)(nil)
