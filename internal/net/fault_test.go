package net

import (
	"reflect"
	"testing"
	"time"
)

// FaultPlan contract: every decision is a pure function of (seed, sender,
// receiver, frame index) — rerunning a plan replays the identical schedule,
// which is what makes a chaos failure reproducible from its flag string.

func TestFaultPlanDeterminism(t *testing.T) {
	mk := func(seed uint64) *FaultPlan {
		return &FaultPlan{Seed: seed, Drop: 0.1, Dup: 0.1, Trunc: 0.05, Delay: 0.25, DelayMax: time.Millisecond}
	}
	a, b, other := mk(42), mk(42), mk(43)
	counts := map[faultAction]int{}
	var diverged int
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			for n := int64(1); n <= 300; n++ {
				act := a.frameAction(from, to, n)
				if act != b.frameAction(from, to, n) {
					t.Fatalf("same plan diverged at (%d,%d,%d)", from, to, n)
				}
				if act != other.frameAction(from, to, n) {
					diverged++
				}
				counts[act]++
				if d := a.delayFor(from, to, n); d != b.delayFor(from, to, n) || d < 0 || d >= time.Millisecond {
					t.Fatalf("delay at (%d,%d,%d): %v", from, to, n, d)
				}
			}
		}
	}
	if diverged == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, act := range []faultAction{faultNone, faultDrop, faultDup, faultTrunc, faultDelay} {
		if counts[act] == 0 {
			t.Errorf("action %d never drawn across 1800 frames", act)
		}
	}
	// The armed probabilities sum to 0.5: roughly half the frames fault.
	faulted := 1800 - counts[faultNone]
	if faulted < 600 || faulted > 1200 {
		t.Errorf("fault rate wildly off the configured 0.5: %d/1800", faulted)
	}
}

func TestFaultPlanKillAndCrash(t *testing.T) {
	p := &FaultPlan{KillFrom: 1, KillTo: 0, KillAt: 7, CrashProc: 2, CrashRound: 5, CrashRun: 2, RefuseDials: 2}
	if p.frameAction(1, 0, 7) != faultKill {
		t.Error("armed kill did not fire at its frame")
	}
	for _, n := range []int64{6, 8} {
		if p.frameAction(1, 0, n) == faultKill {
			t.Errorf("kill fired at frame %d", n)
		}
	}
	if p.frameAction(0, 1, 7) == faultKill {
		t.Error("kill fired on the reverse direction")
	}
	cases := []struct {
		self       int
		run, round int64
		want       bool
	}{
		{2, 2, 5, true}, {2, 1, 5, false}, {2, 2, 4, false}, {1, 2, 5, false},
	}
	for _, tc := range cases {
		if got := p.crashAt(tc.self, tc.run, tc.round); got != tc.want {
			t.Errorf("crashAt(%d,%d,%d) = %v, want %v", tc.self, tc.run, tc.round, got, tc.want)
		}
	}
	anyRun := &FaultPlan{CrashProc: 0, CrashRound: 1}
	if !anyRun.crashAt(0, 1, 1) || !anyRun.crashAt(0, 2, 1) {
		t.Error("CrashRun=0 should match any engine run")
	}
	if !p.refuseDial(0) || !p.refuseDial(1) || p.refuseDial(2) {
		t.Error("refuseDial should fail exactly the first RefuseDials attempts")
	}
}

func TestParseFaultPlan(t *testing.T) {
	got, err := ParseFaultPlan(" seed=7, drop=0.02 ,dup=0.01,trunc=0.005,delay=0.1,delaymax=2ms,refuse=3,kill=1>0@40,crash=2@5,crashrun=1")
	if err != nil {
		t.Fatal(err)
	}
	want := &FaultPlan{Seed: 7, Drop: 0.02, Dup: 0.01, Trunc: 0.005, Delay: 0.1,
		DelayMax: 2 * time.Millisecond, RefuseDials: 3,
		KillFrom: 1, KillTo: 0, KillAt: 40,
		CrashProc: 2, CrashRound: 5, CrashRun: 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed plan diverged:\n got: %+v\nwant: %+v", got, want)
	}

	// crashrun defaults to the pipeline's improvement run.
	got, err = ParseFaultPlan("crash=1@3")
	if err != nil || got.CrashProc != 1 || got.CrashRound != 3 || got.CrashRun != 2 {
		t.Fatalf("crash default: %+v, %v", got, err)
	}

	// An empty plan is explicitly no plan.
	if got, err := ParseFaultPlan("  "); got != nil || err != nil {
		t.Fatalf("empty plan: %+v, %v", got, err)
	}

	for _, bad := range []string{
		"nonsense",
		"drop=1.5",
		"drop=-0.1",
		"seed=abc",
		"kill=1@40",
		"kill=1>x@40",
		"crash=5",
		"crash=a@b",
		"frob=1",
		"delaymax=fast",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}
