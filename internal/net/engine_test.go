package net

import (
	"bytes"
	"errors"
	"fmt"
	gonet "net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// The differential loopback suite: K mdstd-shaped processes — real TCP
// over 127.0.0.1, one goroutine per process — must produce trees, reports
// and checkpoint files bit-identical to the in-process engines.

// runLoopback executes one distributed pipeline with k processes over
// loopback TCP and returns every process's result. pipe builds each
// process's Pipeline (so tests can hand a CheckpointW or Resume to
// individual processes).
func runLoopback(t *testing.T, c *graph.CSR, k int, pipe func(id int) Pipeline) ([]*PipelineResult, []error) {
	t.Helper()
	part, err := graph.PartitionNamed(c, "contiguous", k)
	if err != nil {
		t.Fatal(err)
	}
	owner := part.Owners()
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := Fingerprint{Procs: k, N: c.N(), HalfEdges: c.HalfEdges()}
	results := make([]*PipelineResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := NewTransport(lns[i], i, addrs, fp)
			defer tr.Close()
			if err := tr.Establish(10 * time.Second); err != nil {
				errs[i] = fmt.Errorf("establish: %w", err)
				return
			}
			results[i], errs[i] = RunPipeline(tr, c, owner, pipe(i))
		}(i)
	}
	waitOrFatal(t, &wg, 60*time.Second, "cluster did not finish")
	return results, errs
}

func waitOrFatal(t *testing.T, wg *sync.WaitGroup, d time.Duration, msg string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(msg)
	}
}

// runInProcess is the reference: the same pipeline on an in-process
// engine.
func runInProcess(t *testing.T, c *graph.CSR, eng sim.Engine) (*tree.Tree, *sim.Report, *mdst.Result) {
	t.Helper()
	root := c.Source().Nodes()[0]
	initial, setup, err := spanning.BuildCompiled(eng, c, spanning.NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mdst.RunTargetSnapshot(eng, c, initial, mdst.Single, 0)
	if err != nil {
		t.Fatal(err)
	}
	return initial, setup, res
}

// normalizeReport strips the fields that legitimately differ between
// runtime configurations of the same execution: wall-clock time and the
// shard count (a 4-shard in-process run reports Shards=4; the distributed
// engine reports the run as one logical shard).
func normalizeReport(r *sim.Report) *sim.Report {
	cp := *r
	cp.Wall = 0
	cp.Shards = 0
	return &cp
}

func checkReport(t *testing.T, what string, got, want *sim.Report) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil report (got %v, want %v)", what, got, want)
	}
	if !reflect.DeepEqual(normalizeReport(got), normalizeReport(want)) {
		t.Errorf("%s: report diverged\n got: %+v\nwant: %+v", what, normalizeReport(got), normalizeReport(want))
	}
}

func checkTree(t *testing.T, what string, got, want *tree.Tree) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: tree diverged (got root %v degree %v, want root %v degree %v)",
			what, got.Root, firstOf(got.MaxDegree()), want.Root, firstOf(want.MaxDegree()))
	}
}

func firstOf(d int, _ []graph.NodeID) int { return d }

func checkResult(t *testing.T, what string, got, want *mdst.Result) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", what)
	}
	checkTree(t, what+" final tree", got.Tree, want.Tree)
	checkReport(t, what+" improvement report", got.Report, want.Report)
	if got.Rounds != want.Rounds || got.Swaps != want.Swaps ||
		got.InitialDegree != want.InitialDegree || got.FinalDegree != want.FinalDegree {
		t.Errorf("%s: counters diverged: got rounds=%d swaps=%d k0=%d k*=%d, want rounds=%d swaps=%d k0=%d k*=%d",
			what, got.Rounds, got.Swaps, got.InitialDegree, got.FinalDegree,
			want.Rounds, want.Swaps, want.InitialDegree, want.FinalDegree)
	}
}

func testGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm-96", graph.Gnm(96, 288, 1)},
		{"grid-256", graph.Grid(16, 16)},
	}
}

// TestMdstdLoopbackEquivalence pins the acceptance bar: for gnm-96 and
// grid-256, a 1-, 2- and 4-process loopback cluster produces the tree and
// Report counters bit-identical to both the unit event engine and the
// 4-shard ShardedEngine, and every process of a cluster finishes holding
// the identical result.
func TestMdstdLoopbackEquivalence(t *testing.T) {
	for _, tg := range testGraphs() {
		t.Run(tg.name, func(t *testing.T) {
			c := tg.g.Compile()
			wantInit, wantSetup, wantRes := runInProcess(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true})
			shInit, shSetup, shRes := runInProcess(t, c, &sim.ShardedEngine{Shards: 4, Delay: sim.UnitDelay, FIFO: true})
			checkTree(t, "sharded initial", shInit, wantInit)
			checkReport(t, "sharded setup", shSetup, wantSetup)
			checkResult(t, "sharded", shRes, wantRes)
			for _, k := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("procs-%d", k), func(t *testing.T) {
					rs, errs := runLoopback(t, c, k, func(int) Pipeline { return Pipeline{CheckpointRound: -1} })
					for id := 0; id < k; id++ {
						if errs[id] != nil {
							t.Fatalf("process %d: %v", id, errs[id])
						}
						what := fmt.Sprintf("process %d/%d", id, k)
						checkTree(t, what+" initial", rs[id].Initial, wantInit)
						checkReport(t, what+" setup", rs[id].Setup, wantSetup)
						checkResult(t, what, rs[id].Result, wantRes)
					}
				})
			}
		})
	}
}

// readCheckpoints parses one checkpoint file once per process — each mdstd
// process reads the file itself, nothing is redistributed — so the
// per-process Checkpoint values must not be shared across goroutines.
func readCheckpoints(t *testing.T, file []byte, k int) []*sim.Checkpoint {
	t.Helper()
	cks := make([]*sim.Checkpoint, k)
	for i := range cks {
		ck, err := sim.ReadCheckpoint(bytes.NewReader(file))
		if err != nil {
			t.Fatalf("re-reading checkpoint: %v", err)
		}
		cks[i] = ck
	}
	return cks
}

// TestMdstdCheckpointKillRestart is the fault-injection path: freeze a
// 2-process improvement run at a checkpoint barrier (every process exits
// once the coordinator acknowledges the commit — the controlled crash
// point), verify the file is byte-identical to the in-process engines'
// checkpoint of the same run, then restart a fresh cluster from the file
// and require the resumed run to be bit-equal to one that was never
// interrupted.
func TestMdstdCheckpointKillRestart(t *testing.T) {
	const freezeRound = 3
	c := graph.Gnm(96, 288, 1).Compile()
	_, _, wantRes := runInProcess(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true})

	// In-process checkpoint bytes of the same run, unsharded and sharded.
	wantCk := inProcessCheckpoint(t, c, &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true}, freezeRound)
	shCk := inProcessCheckpoint(t, c, &sim.ShardedEngine{Shards: 4, Delay: sim.UnitDelay, FIFO: true}, freezeRound)
	if !bytes.Equal(wantCk, shCk) {
		t.Fatal("in-process engines disagree on checkpoint bytes (sharded vs unsharded)")
	}

	// Distributed run up to the armed barrier; process 0 holds the file.
	var ckFile bytes.Buffer
	rs, errs := runLoopback(t, c, 2, func(id int) Pipeline {
		p := Pipeline{CheckpointRound: freezeRound}
		if id == 0 {
			p.CheckpointW = &ckFile
		}
		return p
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("checkpointing process %d: %v", id, err)
		}
		if !rs[id].Checkpointed {
			t.Fatalf("process %d did not freeze at the barrier", id)
		}
	}
	if !bytes.Equal(ckFile.Bytes(), wantCk) {
		t.Fatalf("distributed checkpoint file differs from the in-process file (%d vs %d bytes)", ckFile.Len(), len(wantCk))
	}

	// Both processes are now dead (transports torn down). Restart a fresh
	// cluster from the durable file.
	cks := readCheckpoints(t, ckFile.Bytes(), 2)
	rs, errs = runLoopback(t, c, 2, func(id int) Pipeline {
		return Pipeline{CheckpointRound: -1, Resume: cks[id]}
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("resumed process %d: %v", id, err)
		}
	}
	checkResult(t, "resumed process 0", rs[0].Result, wantRes)
	checkResult(t, "resumed process 1", rs[1].Result, wantRes)
}

func inProcessCheckpoint(t *testing.T, c *graph.CSR, base sim.Engine, round int64) []byte {
	t.Helper()
	root := c.Source().Nodes()[0]
	initial, _, err := spanning.BuildCompiled(base, c, spanning.NewFloodFactory(root))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	spec := &sim.CheckpointSpec{Round: round, W: &buf}
	var armed sim.Engine
	switch base.(type) {
	case *sim.ShardedEngine:
		armed = &sim.ShardedEngine{Shards: 4, Delay: sim.UnitDelay, FIFO: true, Checkpoint: spec}
	default:
		armed = &sim.EventEngine{Delay: sim.UnitDelay, FIFO: true, Checkpoint: spec}
	}
	if _, err := mdst.RunTargetSnapshot(armed, c, initial, mdst.Single, 0); !errors.Is(err, sim.ErrCheckpointed) {
		t.Fatalf("in-process run did not freeze: %v", err)
	}
	return buf.Bytes()
}

// TestMdstdPeerCrashDetection kills one process of a 2-process cluster
// right after the mesh is up — an abrupt connection teardown, not a clean
// protocol exit — and requires the surviving process's pipeline to fail
// with an error instead of hanging or panicking.
func TestMdstdPeerCrashDetection(t *testing.T) {
	c := graph.Gnm(96, 288, 1).Compile()
	part, err := graph.PartitionNamed(c, "contiguous", 2)
	if err != nil {
		t.Fatal(err)
	}
	owner := part.Owners()
	lns := make([]gonet.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := Fingerprint{Procs: 2, N: c.N(), HalfEdges: c.HalfEdges()}
	var wg sync.WaitGroup
	var survivorErr error
	wg.Add(2)
	go func() { // the victim: establish, then die without a word
		defer wg.Done()
		tr := NewTransport(lns[1], 1, addrs, fp)
		if err := tr.Establish(10 * time.Second); err != nil {
			t.Errorf("victim establish: %v", err)
			return
		}
		tr.Close()
	}()
	go func() { // the survivor: run the full pipeline into the crash
		defer wg.Done()
		tr := NewTransport(lns[0], 0, addrs, fp)
		defer tr.Close()
		if err := tr.Establish(10 * time.Second); err != nil {
			survivorErr = err
			return
		}
		_, survivorErr = RunPipeline(tr, c, owner, Pipeline{CheckpointRound: -1})
	}()
	waitOrFatal(t, &wg, 30*time.Second, "survivor hung on the dead peer")
	if survivorErr == nil {
		t.Fatal("survivor completed a 2-process run without its peer")
	}
}
