// Package net is the networked deployment plane (DESIGN.md §9): a
// length-framed TCP transport for batched wire-format messages, a
// versioned handshake exchanging the opcode/schema table, and a
// distributed unit-delay round engine that lets OS processes — each
// hosting one partition shard of protocol nodes — execute a run that is
// tree-, report- and checkpoint-byte-equivalent to the in-process
// simulator. The cmd/mdstd daemon is its operational face.
//
// The plane deliberately reuses the sharded runtime's determinism
// machinery (DESIGN.md §7): deliveries are keyed (parent rank, send
// position), cross-process batches merge canonically, and round ranks come
// from a prefix sum over per-delivery send counts broadcast at each
// barrier. A K-process run over loopback therefore produces bit-identical
// results to the 1-shard engine — which is what the differential loopback
// suite pins.
package net

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types of the plane's wire protocol. Each frame is a 4-byte
// little-endian payload length followed by the payload; the payload's
// first byte is the type.
const (
	frameHello   = byte(1) // handshake: version, identity, fingerprint, opcode table
	frameRound   = byte(2) // one barrier contribution: run, round, rank counts, delivery batch
	frameFinal   = byte(3) // quiescence all-gather: report counters + owned states
	frameCkpt    = byte(4) // checkpoint shard upload to the coordinator
	frameCkptAck = byte(5) // coordinator's checkpoint commit acknowledgement
	frameHeart   = byte(6) // liveness beacon: sender's data-frame count for this peer
)

// MaxFrameSize bounds a single frame's payload. Large runs batch many
// deliveries per barrier, but a frame over this size on a loopback
// deployment indicates corruption, not load.
const MaxFrameSize = 1 << 26 // 64 MiB

// frameHeaderSize is the fixed length prefix.
const frameHeaderSize = 4

// FrameError is the typed error for malformed frames: truncated input,
// oversized or empty payloads, unknown frame types, or payloads that do
// not parse. Transport code returns it — never panics — on any byte-level
// violation, mirroring sim.WireError.
type FrameError struct {
	Type   byte // 0 when the violation precedes the type byte
	Reason string
}

func (e *FrameError) Error() string {
	if e.Type != 0 {
		return fmt.Sprintf("net: frame type %d: %s", e.Type, e.Reason)
	}
	return "net: frame: " + e.Reason
}

// appendFrame appends a complete frame (header + type + body) to b.
func appendFrame(b []byte, typ byte, body []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)+1))
	b = append(b, typ)
	return append(b, body...)
}

// writeFrame writes one frame to w. Allocates its header on the heap (a
// stack array would escape through the io.Writer call) — the handshake
// path, where frames are rare; the send loop uses writeFrameScratch.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	var hdr [frameHeaderSize + 1]byte
	return writeFrameScratch(w, &hdr, typ, body)
}

// writeFrameScratch is writeFrame over a caller-owned header buffer, so
// the steady-state send path performs zero allocations per frame. The
// caller must serialise uses of one scratch (the transport holds it under
// the peer's write mutex).
func writeFrameScratch(w io.Writer, hdr *[frameHeaderSize + 1]byte, typ byte, body []byte) error {
	if len(body)+1 > MaxFrameSize {
		return &FrameError{Type: typ, Reason: fmt.Sprintf("payload %d bytes exceeds MaxFrameSize", len(body)+1)}
	}
	binary.LittleEndian.PutUint32(hdr[:frameHeaderSize], uint32(len(body)+1))
	hdr[frameHeaderSize] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame from r, returning the type and payload body
// (without the type byte). io.EOF is returned untouched at a clean frame
// boundary so callers can distinguish orderly shutdown from truncation;
// any other byte-level violation is a *FrameError. Allocates a fresh
// buffer per frame — the handshake path, where frames are rare.
func readFrame(r io.Reader) (byte, []byte, error) {
	var buf []byte
	return readFrameReuse(r, &buf)
}

// readFrameReuse is readFrame over a caller-owned buffer: the payload is
// read into *buf, growing it only when a frame outsizes every previous
// occupant (the grown buffer is stored back for next time), so the
// steady-state read loop recycles one buffer per ring slot instead of
// allocating per frame. The returned payload aliases *buf and is valid
// until the caller reuses the slot.
func readFrameReuse(r io.Reader, buf *[]byte) (byte, []byte, error) {
	// The header is read into the reusable buffer too — a stack array
	// would escape through the io.Reader call and cost an allocation per
	// frame.
	b := *buf
	if cap(b) < frameHeaderSize {
		b = make([]byte, frameHeaderSize, 64)
		*buf = b
	}
	b = b[:frameHeaderSize]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, &FrameError{Reason: "truncated frame header"}
	}
	size := binary.LittleEndian.Uint32(b)
	if size == 0 {
		return 0, nil, &FrameError{Reason: "empty frame"}
	}
	if size > MaxFrameSize {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("frame of %d bytes exceeds MaxFrameSize", size)}
	}
	if uint32(cap(b)) < size {
		b = make([]byte, size)
		*buf = b
	}
	b = b[:size]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, &FrameError{Reason: "truncated frame payload"}
	}
	typ := b[0]
	if typ < frameHello || typ > frameHeart {
		return 0, nil, &FrameError{Type: typ, Reason: "unknown frame type"}
	}
	return typ, b[1:], nil
}

// frameReader is a cursor over a frame payload with typed-error truncation
// handling, mirroring sim's checkpoint reader.
type frameReader struct {
	typ byte
	buf []byte
	at  int
}

func (r *frameReader) fail(reason string) error {
	return &FrameError{Type: r.typ, Reason: reason}
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.at:])
	if n <= 0 {
		return 0, r.fail("truncated uvarint")
	}
	r.at += n
	return v, nil
}

func (r *frameReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.at:])
	if n <= 0 {
		return 0, r.fail("truncated varint")
	}
	r.at += n
	return v, nil
}

func (r *frameReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.at) {
		return nil, r.fail("truncated bytes")
	}
	b := r.buf[r.at : r.at+int(n)]
	r.at += int(n)
	return b, nil
}

// count reads an element count bounded by the remaining payload bytes
// (each element at least minBytes), so malformed frames cannot force
// unbounded allocation before parsing.
func (r *frameReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)-r.at)/uint64(minBytes) {
		return 0, r.fail(fmt.Sprintf("element count %d exceeds the frame's remaining %d bytes", v, len(r.buf)-r.at))
	}
	return int(v), nil
}

func (r *frameReader) done() error {
	if r.at != len(r.buf) {
		return r.fail(fmt.Sprintf("%d trailing bytes", len(r.buf)-r.at))
	}
	return nil
}

// appendUvarint/appendVarint keep the codec vocabulary local.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }
