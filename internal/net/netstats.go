package net

import (
	"fmt"
	"time"
)

// NetStats is the distributed plane's observability counterpart of
// sim.PhaseStats: per-run wire and barrier counters accumulated by a
// DistEngine when its Stats field is armed. The counters answer the two
// questions a round-dominated deployment always asks — how many bytes does
// a round cost on the wire, and how much of the wall clock is barrier wait
// rather than protocol work. Divide by Rounds for per-round costs.
//
// Arming is free when off: a nil Stats pointer costs one branch per
// barrier. All fields are written by the engine goroutine only; read them
// after the run returns.
type NetStats struct {
	// Rounds counts completed barriers (the Init exchange included).
	Rounds int64 `json:"rounds"`
	// FramesSent / BytesSent cover the round frames this process encoded,
	// BytesSent measuring payload bytes handed to the transport.
	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	// HeaderBytes is the share of BytesSent spent on the rank/count
	// headers — the broadcast the varint-delta encoding compresses.
	HeaderBytes int64 `json:"header_bytes"`
	// FramesRecv / BytesRecv cover the peer round frames consumed at
	// barriers.
	FramesRecv int64 `json:"frames_recv"`
	BytesRecv  int64 `json:"bytes_recv"`
	// Flushes counts write-coalescing flush sweeps (one FlushAll per
	// barrier in the steady state).
	Flushes int64 `json:"flushes"`
	// BarrierWaitNs is the time the engine goroutine spent blocked in Recv
	// at round barriers — the distributed sibling of PhaseStats' barrier
	// phase. Wire decode time is excluded.
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
}

// Add accumulates o into s (merging runs or processes).
func (s *NetStats) Add(o *NetStats) {
	s.Rounds += o.Rounds
	s.FramesSent += o.FramesSent
	s.BytesSent += o.BytesSent
	s.HeaderBytes += o.HeaderBytes
	s.FramesRecv += o.FramesRecv
	s.BytesRecv += o.BytesRecv
	s.Flushes += o.Flushes
	s.BarrierWaitNs += o.BarrierWaitNs
}

// String renders the counters for operator output (mdstd -phases).
func (s *NetStats) String() string {
	perRound := func(v int64) int64 {
		if s.Rounds == 0 {
			return 0
		}
		return v / s.Rounds
	}
	return fmt.Sprintf(
		"rounds=%d frames_sent=%d bytes_sent=%d (%d B/round, %d header) frames_recv=%d bytes_recv=%d flushes=%d barrier_wait=%v (%v/round)",
		s.Rounds, s.FramesSent, s.BytesSent, perRound(s.BytesSent), s.HeaderBytes,
		s.FramesRecv, s.BytesRecv, s.Flushes,
		time.Duration(s.BarrierWaitNs).Round(time.Microsecond),
		time.Duration(perRound(s.BarrierWaitNs)).Round(time.Nanosecond))
}
