package net

import (
	"errors"
	"fmt"
	"io"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

// The deployment pipeline: what one mdstd process executes once its mesh
// is established. Two engine runs back to back over the shared transport —
// the flood spanning-tree build, then the improvement protocol — exactly
// mirroring the in-process facade pipeline, with optional barrier
// checkpointing of the improvement phase as crash recovery. Every process
// runs the identical pipeline and finishes holding the identical result;
// the daemon just decides who prints it.

// Pipeline configures one distributed pipeline run. All processes of a
// deployment must use identical values (the topology config file is the
// single source of truth).
type Pipeline struct {
	// Mode is the improvement variant.
	Mode mdst.Mode
	// Target stops improvement at this maximum degree (0: full optimality).
	Target int
	// MaxMessages caps either phase (0: sim.DefaultMaxMessages).
	MaxMessages int64
	// CheckpointRound, when >= 0, freezes the improvement phase at that
	// round barrier; process 0 writes the file to CheckpointW and the
	// pipeline returns with Checkpointed set instead of a final tree.
	CheckpointRound int64
	// CheckpointW receives the checkpoint file on process 0.
	CheckpointW io.Writer
	// CheckpointEvery, when > 0, arms the periodic cadence instead: the
	// improvement phase commits a recovery point through CheckpointSink at
	// every barrier whose round is a positive multiple of Every and keeps
	// running. Composes with Resume — the recovered run re-commits its
	// later cadence barriers byte-identically.
	CheckpointEvery int64
	// CheckpointSink receives periodic commits on process 0 (a
	// *sim.CheckpointDir in production).
	CheckpointSink sim.CheckpointSink
	// Resume, when non-nil, continues a checkpointed improvement run
	// (every process must be handed the same checkpoint — each reads the
	// file itself; no state is redistributed).
	Resume *sim.Checkpoint
	// Stop, polled at round barriers, requests a graceful cluster-wide
	// stop: the pipeline finishes the round in flight, commits a final
	// checkpoint when checkpointing is armed, and returns with Stopped set.
	Stop func() bool
	// Stats, when non-nil, accumulates the engine's wire and barrier
	// counters across both pipeline phases (mdstd -phases prints them).
	Stats *NetStats
}

// PipelineResult is the outcome of one distributed pipeline run.
type PipelineResult struct {
	// Checkpointed reports that the improvement phase froze at the armed
	// barrier (Result is nil; Initial and Setup are still populated).
	Checkpointed bool
	// Stopped reports a graceful cluster-wide stop before completion
	// (Result is nil; Initial and Setup are populated when the stop hit
	// the improvement phase, nil when it hit the flood build).
	Stopped bool
	// Initial is the flood spanning tree, Setup its message accounting.
	Initial *tree.Tree
	Setup   *sim.Report
	// Result is the completed improvement run.
	Result *mdst.Result
}

// RunPipeline executes the distributed pipeline over an established mesh.
// The initial tree is the flood protocol from the minimum insertion-order
// node — the same deterministic choice as the facade default — because the
// final-state all-gather requires StateCodec, which of the spanning
// protocols only flood implements.
func RunPipeline(t *Transport, c *graph.CSR, owner []int32, p Pipeline) (*PipelineResult, error) {
	if p.Resume != nil && p.CheckpointRound >= 0 {
		return nil, fmt.Errorf("net: pipeline cannot freeze-checkpoint and resume at once")
	}
	if p.CheckpointEvery > 0 && p.CheckpointRound >= 0 {
		return nil, fmt.Errorf("net: pipeline cannot freeze and commit periodically at once")
	}
	eng := &DistEngine{T: t, Owner: owner, MaxMessages: p.MaxMessages, Stop: p.Stop, Stats: p.Stats}
	root := c.Source().Nodes()[0]
	initial, setup, err := spanning.BuildCompiled(eng, c, spanning.NewFloodFactory(root))
	if errors.Is(err, sim.ErrStopped) {
		return &PipelineResult{Stopped: true}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("net: flood phase: %w", err)
	}
	out := &PipelineResult{Initial: initial, Setup: setup}
	if p.CheckpointEvery > 0 {
		eng.Checkpoint = &sim.CheckpointSpec{Every: p.CheckpointEvery, Sink: p.CheckpointSink}
	} else if p.CheckpointRound >= 0 && p.Resume == nil {
		eng.Checkpoint = &sim.CheckpointSpec{Round: p.CheckpointRound, W: p.CheckpointW}
	}
	var res *mdst.Result
	if p.Resume != nil {
		res, err = mdst.ResumeTargetSnapshot(eng, c, initial, p.Mode, p.Target, p.Resume)
	} else {
		res, err = mdst.RunTargetSnapshot(eng, c, initial, p.Mode, p.Target)
	}
	switch {
	case err == nil:
		out.Result = res
		return out, nil
	case errors.Is(err, sim.ErrCheckpointed):
		out.Checkpointed = true
		return out, nil
	case errors.Is(err, sim.ErrStopped):
		out.Stopped = true
		return out, nil
	default:
		phase := "improvement phase"
		if p.Resume != nil {
			phase = "improvement resume"
		}
		return nil, fmt.Errorf("net: %s: %w", phase, err)
	}
}
