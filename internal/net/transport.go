package net

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"time"
)

// Transport is a full mesh of length-framed TCP connections between the K
// processes of one deployment. Each pair of processes shares exactly one
// multiplexed connection (the lower-id side accepts, the higher-id side
// dials), writes are coalesced in per-peer buffers until an explicit
// flush — the engine writes a whole barrier's frames, then flushes once —
// and a reader goroutine per peer delivers incoming frames in order
// through a bounded inbox, so a slow consumer exerts TCP backpressure
// instead of growing memory.
//
// Send, Flush and Recv must be called from one goroutine (the engine's);
// Close is safe from any goroutine, idempotent, and unblocks pending
// Recvs and reader goroutines — shutdown leaks nothing, which the
// transport's goroutine-accounting tests pin under -race.
type Transport struct {
	self  int
	addrs []string
	fp    Fingerprint
	table *WireTable
	ln    gonet.Listener
	peers []*peerConn // indexed by process id; nil at self

	done      chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup
}

// ErrTransportClosed reports an operation on a transport whose Close has
// begun.
var ErrTransportClosed = errors.New("net: transport closed")

// inboxDepth bounds buffered incoming frames per peer. The barrier
// protocol keeps at most one round in flight, so the bound is never the
// limiter in healthy runs; it exists so a wedged consumer degrades into
// TCP backpressure.
const inboxDepth = 128

type frame struct {
	typ     byte
	payload []byte
}

type peerConn struct {
	conn gonet.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	in   chan frame
	mu   sync.Mutex
	err  error
}

func (p *peerConn) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *peerConn) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return ErrTransportClosed
	}
	return p.err
}

// NewTransport wraps a bound listener as process self of the cluster
// described by addrs (addrs[self] is this process's own address) and the
// shared fingerprint. Establish must be called before any frame I/O.
func NewTransport(ln gonet.Listener, self int, addrs []string, fp Fingerprint) *Transport {
	return &Transport{
		self:  self,
		addrs: addrs,
		fp:    fp,
		table: CanonicalTable(),
		ln:    ln,
		peers: make([]*peerConn, len(addrs)),
		done:  make(chan struct{}),
	}
}

// Listen binds a TCP listener for NewTransport.
func Listen(addr string) (gonet.Listener, error) { return gonet.Listen("tcp", addr) }

// Self returns this process's id.
func (t *Transport) Self() int { return t.self }

// Procs returns the cluster's process count.
func (t *Transport) Procs() int { return len(t.addrs) }

// Table returns the canonical wire table the handshake agreed on.
func (t *Transport) Table() *WireTable { return t.table }

// Establish builds the full mesh: this process dials every lower id and
// accepts from every higher id, exchanging and verifying hello frames on
// each connection, all within the timeout. On success the per-peer reader
// goroutines are running and the listener is closed (the mesh is static);
// on failure everything opened so far is torn down.
func (t *Transport) Establish(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	if err := t.establish(deadline); err != nil {
		t.Close()
		return err
	}
	// The mesh is complete and static; no more accepts can arrive.
	if t.ln != nil {
		t.ln.Close()
	}
	for id, p := range t.peers {
		if p == nil {
			continue
		}
		p.conn.SetDeadline(time.Time{})
		t.readers.Add(1)
		go t.readLoop(id, p)
	}
	return nil
}

func (t *Transport) establish(deadline time.Time) error {
	// Dial the lower ids. TCP listen backlogs decouple the processes'
	// startup order: a dial succeeds as soon as the peer is bound, even
	// before it calls Accept, so sequential dialing cannot deadlock.
	for q := 0; q < t.self; q++ {
		conn, err := dialRetry(t.addrs[q], deadline)
		if err != nil {
			return fmt.Errorf("net: dialing process %d at %s: %w", q, t.addrs[q], err)
		}
		conn.SetDeadline(deadline)
		if err := writeFrame(conn, frameHello, appendHello(nil, t.self, t.fp, t.table)); err != nil {
			conn.Close()
			return fmt.Errorf("net: hello to process %d: %w", q, err)
		}
		h, err := t.readHello(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("net: hello from process %d: %w", q, err)
		}
		if h.self != q {
			conn.Close()
			return &HandshakeError{Reason: fmt.Sprintf("dialed process %d but peer identifies as %d", q, h.self)}
		}
		t.register(q, conn)
	}
	// Accept the higher ids, in whatever order they arrive.
	if need := len(t.addrs) - 1 - t.self; need > 0 {
		if t.ln == nil {
			return fmt.Errorf("net: process %d needs a listener to accept %d peers", t.self, need)
		}
		if d, ok := t.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
		}
		for got := 0; got < need; {
			conn, err := t.ln.Accept()
			if err != nil {
				return fmt.Errorf("net: accepting peers (%d of %d connected): %w", got, need, err)
			}
			conn.SetDeadline(deadline)
			h, err := t.readHello(conn)
			if err != nil {
				conn.Close()
				return err
			}
			if h.self <= t.self || h.self >= len(t.addrs) || t.peers[h.self] != nil {
				conn.Close()
				return &HandshakeError{Reason: fmt.Sprintf("unexpected hello from process %d at process %d", h.self, t.self)}
			}
			if err := writeFrame(conn, frameHello, appendHello(nil, t.self, t.fp, t.table)); err != nil {
				conn.Close()
				return fmt.Errorf("net: hello to process %d: %w", h.self, err)
			}
			t.register(h.self, conn)
			got++
		}
	}
	return nil
}

func (t *Transport) readHello(conn gonet.Conn) (*hello, error) {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, &HandshakeError{Reason: fmt.Sprintf("reading hello: %v", err)}
	}
	if typ != frameHello {
		return nil, &HandshakeError{Reason: fmt.Sprintf("first frame is type %d, want hello", typ)}
	}
	return parseHello(payload, t.fp, t.table)
}

func (t *Transport) register(id int, conn gonet.Conn) {
	t.peers[id] = &peerConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
		in:   make(chan frame, inboxDepth),
	}
}

func dialRetry(addr string, deadline time.Time) (gonet.Conn, error) {
	for {
		conn, err := gonet.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readLoop delivers one peer's frames in order until the connection or the
// transport closes. A read failure (including the peer's clean EOF) is
// recorded and the inbox closed so a pending Recv observes it; a transport
// close simply exits, leaving Recv to observe done.
func (t *Transport) readLoop(id int, p *peerConn) {
	defer t.readers.Done()
	for {
		typ, payload, err := readFrame(p.r)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("net: process %d closed the connection", id)
			}
			p.setErr(err)
			close(p.in)
			return
		}
		select {
		case p.in <- frame{typ: typ, payload: payload}:
		case <-t.done:
			p.setErr(ErrTransportClosed)
			return
		}
	}
}

// Send coalesces one frame into the peer's write buffer. Nothing reaches
// the socket until Flush (or the buffer fills).
func (t *Transport) Send(peer int, typ byte, body []byte) error {
	p := t.peers[peer]
	if p == nil {
		return fmt.Errorf("net: no connection to process %d", peer)
	}
	select {
	case <-t.done:
		return ErrTransportClosed
	default:
	}
	return writeFrame(p.w, typ, body)
}

// Flush pushes the peer's coalesced frames to the socket.
func (t *Transport) Flush(peer int) error {
	p := t.peers[peer]
	if p == nil {
		return fmt.Errorf("net: no connection to process %d", peer)
	}
	return p.w.Flush()
}

// FlushAll flushes every peer buffer — the end of a barrier's write phase.
func (t *Transport) FlushAll() error {
	for id, p := range t.peers {
		if p == nil {
			continue
		}
		if err := p.w.Flush(); err != nil {
			return fmt.Errorf("net: flushing to process %d: %w", id, err)
		}
	}
	return nil
}

// Recv returns the next frame from the peer, blocking until one arrives,
// the peer's connection fails, or the transport closes.
func (t *Transport) Recv(peer int) (byte, []byte, error) {
	p := t.peers[peer]
	if p == nil {
		return 0, nil, fmt.Errorf("net: no connection to process %d", peer)
	}
	select {
	case f, ok := <-p.in:
		if !ok {
			return 0, nil, p.getErr()
		}
		return f.typ, f.payload, nil
	case <-t.done:
		// Prefer a frame that raced the close: drain without blocking.
		select {
		case f, ok := <-p.in:
			if ok {
				return f.typ, f.payload, nil
			}
			return 0, nil, p.getErr()
		default:
			return 0, nil, ErrTransportClosed
		}
	}
}

// Close tears the mesh down: flushes nothing (callers flush at barriers),
// closes every connection and the listener, and waits for the reader
// goroutines to exit. Idempotent and safe from any goroutine; double
// Close is a no-op.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.readers.Wait()
	})
	return nil
}
