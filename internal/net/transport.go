package net

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is a full mesh of length-framed TCP connections between the K
// processes of one deployment. Each pair of processes shares exactly one
// multiplexed connection (the lower-id side accepts, the higher-id side
// dials), writes are coalesced in per-peer buffers until an explicit
// flush — the engine writes a whole barrier's frames, then flushes once —
// and a reader goroutine per peer delivers incoming frames in order
// through a bounded inbox, so a slow consumer exerts TCP backpressure
// instead of growing memory.
//
// Send, Flush and Recv must be called from one goroutine (the engine's);
// Close is safe from any goroutine, idempotent, and unblocks pending
// Recvs and reader goroutines — shutdown leaks nothing, which the
// transport's goroutine-accounting tests pin under -race.
type Transport struct {
	self  int
	addrs []string
	fp    Fingerprint
	table *WireTable
	ln    gonet.Listener
	peers []*peerConn // indexed by process id; nil at self

	// Heartbeat, when > 0, emits a liveness beacon to every peer at this
	// interval once the mesh is established. Each beacon carries the
	// sender's data-frame count for that peer, so the receiver can tell a
	// quiet-but-alive peer from a link that lost frames. Set before
	// Establish; off by default.
	Heartbeat time.Duration
	// Liveness, when > 0, bounds how long Recv blocks without evidence the
	// peer is healthy: total silence for Liveness, or heartbeats claiming
	// more frames than arrived while Recv starved for Liveness, yields a
	// *PeerDownError instead of hanging. Set before Establish; off by
	// default.
	Liveness time.Duration
	// Faults, when non-nil, arms deterministic send-side fault injection
	// (chaos tests only). Set before Establish; nil by default.
	Faults *FaultPlan

	done      chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup
	hbeats    sync.WaitGroup
}

// ErrTransportClosed reports an operation on a transport whose Close has
// begun.
var ErrTransportClosed = errors.New("net: transport closed")

// inboxDepth bounds buffered incoming frames per peer. The barrier
// protocol keeps at most one round in flight, so the bound is never the
// limiter in healthy runs; it exists so a wedged consumer degrades into
// TCP backpressure.
const inboxDepth = 128

// ringSlots is the per-peer count of reusable payload buffers backing the
// inbox: one per buffered frame, plus one for the frame a Recv may still
// hold (payloads are valid until the next Recv from the peer) and one for
// the frame the reader is filling. The reader reuses slot w%ringSlots for
// frame w only once the consumer has completed Recv number w-ringSlots+2,
// so a live payload is never scribbled over.
const ringSlots = inboxDepth + 2

type frame struct {
	typ     byte
	payload []byte
}

type peerConn struct {
	conn gonet.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	in   chan frame
	mu   sync.Mutex
	err  error
	live *time.Ticker // lazily built liveness ticker (under mu); stopped in Close

	// slots is the reader's payload ring (reader goroutine only); recvRet
	// counts completed Recvs, releasing slots, with released as the cap-1
	// wakeup the reader waits on when the ring is momentarily full.
	slots    [ringSlots][]byte
	recvRet  atomic.Int64
	released chan struct{}

	// wmu serialises the engine's buffered writes with heartbeat writes;
	// uncontended when heartbeats are off. whdr is the frame-header
	// scratch shared by every write under it.
	wmu  sync.Mutex
	whdr [frameHeaderSize + 1]byte
	// faultSeq numbers outgoing data frames for the fault plan (engine
	// goroutine only).
	faultSeq int64

	sent     atomic.Int64 // data frames sent (the heartbeat claim)
	recvData atomic.Int64 // data frames received
	claim    atomic.Int64 // peer's latest claimed sent count
	lastRecv atomic.Int64 // unix nanos of the last frame of any type
}

// release records one completed Recv and wakes the reader if it is
// waiting on a ring slot.
func (p *peerConn) release() {
	p.recvRet.Add(1)
	select {
	case p.released <- struct{}{}:
	default:
	}
}

func (p *peerConn) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *peerConn) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return ErrTransportClosed
	}
	return p.err
}

// NewTransport wraps a bound listener as process self of the cluster
// described by addrs (addrs[self] is this process's own address) and the
// shared fingerprint. Establish must be called before any frame I/O.
func NewTransport(ln gonet.Listener, self int, addrs []string, fp Fingerprint) *Transport {
	return &Transport{
		self:  self,
		addrs: addrs,
		fp:    fp,
		table: CanonicalTable(),
		ln:    ln,
		peers: make([]*peerConn, len(addrs)),
		done:  make(chan struct{}),
	}
}

// Listen binds a TCP listener for NewTransport.
func Listen(addr string) (gonet.Listener, error) { return gonet.Listen("tcp", addr) }

// Self returns this process's id.
func (t *Transport) Self() int { return t.self }

// Procs returns the cluster's process count.
func (t *Transport) Procs() int { return len(t.addrs) }

// Table returns the canonical wire table the handshake agreed on.
func (t *Transport) Table() *WireTable { return t.table }

// Establish builds the full mesh: this process dials every lower id and
// accepts from every higher id, exchanging and verifying hello frames on
// each connection, all within the timeout. On success the per-peer reader
// goroutines are running and the listener is closed (the mesh is static);
// on failure everything opened so far is torn down.
func (t *Transport) Establish(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	if err := t.establish(deadline); err != nil {
		t.Close()
		return err
	}
	// The mesh is complete and static; no more accepts can arrive.
	if t.ln != nil {
		t.ln.Close()
	}
	now := time.Now().UnixNano()
	for id, p := range t.peers {
		if p == nil {
			continue
		}
		p.conn.SetDeadline(time.Time{})
		p.lastRecv.Store(now)
		t.readers.Add(1)
		go t.readLoop(id, p)
		if t.Heartbeat > 0 {
			t.hbeats.Add(1)
			go t.heartbeatLoop(p)
		}
	}
	return nil
}

func (t *Transport) establish(deadline time.Time) error {
	// Dial the lower ids. TCP listen backlogs decouple the processes'
	// startup order: a dial succeeds as soon as the peer is bound, even
	// before it calls Accept, so sequential dialing cannot deadlock.
	for q := 0; q < t.self; q++ {
		conn, err := t.dialRetry(t.addrs[q], deadline)
		if err != nil {
			return fmt.Errorf("net: dialing process %d at %s: %w", q, t.addrs[q], err)
		}
		conn.SetDeadline(deadline)
		if err := writeFrame(conn, frameHello, appendHello(nil, t.self, t.fp, t.table)); err != nil {
			conn.Close()
			return fmt.Errorf("net: hello to process %d: %w", q, err)
		}
		h, err := t.readHello(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("net: hello from process %d: %w", q, err)
		}
		if h.self != q {
			conn.Close()
			return &HandshakeError{Reason: fmt.Sprintf("dialed process %d but peer identifies as %d", q, h.self)}
		}
		t.register(q, conn)
	}
	// Accept the higher ids, in whatever order they arrive.
	if need := len(t.addrs) - 1 - t.self; need > 0 {
		if t.ln == nil {
			return fmt.Errorf("net: process %d needs a listener to accept %d peers", t.self, need)
		}
		if d, ok := t.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
		}
		for got := 0; got < need; {
			conn, err := t.ln.Accept()
			if err != nil {
				return fmt.Errorf("net: accepting peers (%d of %d connected): %w", got, need, err)
			}
			conn.SetDeadline(deadline)
			h, err := t.readHello(conn)
			if err != nil {
				conn.Close()
				return err
			}
			if h.self <= t.self || h.self >= len(t.addrs) || t.peers[h.self] != nil {
				conn.Close()
				return &HandshakeError{Reason: fmt.Sprintf("unexpected hello from process %d at process %d", h.self, t.self)}
			}
			if err := writeFrame(conn, frameHello, appendHello(nil, t.self, t.fp, t.table)); err != nil {
				conn.Close()
				return fmt.Errorf("net: hello to process %d: %w", h.self, err)
			}
			t.register(h.self, conn)
			got++
		}
	}
	return nil
}

func (t *Transport) readHello(conn gonet.Conn) (*hello, error) {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, &HandshakeError{Reason: fmt.Sprintf("reading hello: %v", err)}
	}
	if typ != frameHello {
		return nil, &HandshakeError{Reason: fmt.Sprintf("first frame is type %d, want hello", typ)}
	}
	return parseHello(payload, t.fp, t.table)
}

func (t *Transport) register(id int, conn gonet.Conn) {
	t.peers[id] = &peerConn{
		conn:     conn,
		r:        bufio.NewReaderSize(conn, 1<<16),
		w:        bufio.NewWriterSize(conn, 1<<16),
		in:       make(chan frame, inboxDepth),
		released: make(chan struct{}, 1),
	}
}

// errDialRefused is an injected dial failure from the fault plan.
var errDialRefused = errors.New("net: dial refused (injected)")

// dialRetry dials addr until it succeeds or the overall deadline passes,
// with capped exponential backoff plus deterministic jitter between
// attempts. Every wait — including the dial's own timeout — is bounded by
// the remaining budget, so Establish never overshoots the caller's
// deadline no matter how many peers are slow.
func (t *Transport) dialRetry(addr string, deadline time.Time) (gonet.Conn, error) {
	backoff := 10 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline exceeded before first attempt")
			}
			return nil, fmt.Errorf("net: dial %s: deadline exceeded after %d attempts: %w", addr, attempt, lastErr)
		}
		if t.Faults != nil && t.Faults.refuseDial(attempt) {
			lastErr = errDialRefused
		} else {
			conn, err := gonet.DialTimeout("tcp", addr, remaining)
			if err == nil {
				return conn, nil
			}
			lastErr = err
		}
		// Jitter up to half the backoff, deterministic in (self, attempt) so
		// two processes dialing one listener desynchronise without shared
		// randomness.
		sleep := backoff + time.Duration(splitmix64(uint64(t.self)<<32|uint64(uint32(attempt)))%uint64(backoff/2+1))
		if backoff < maxBackoff {
			backoff *= 2
		}
		if rem := time.Until(deadline); sleep > rem {
			sleep = rem
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
}

// readLoop delivers one peer's frames in order until the connection or the
// transport closes. A read failure (including the peer's clean EOF) is
// recorded as a *PeerDownError and the inbox closed so a pending Recv
// observes it; a transport close simply exits, leaving Recv to observe
// done. Heartbeat frames are consumed here — they feed the liveness
// detector and never reach the engine.
//
// Payloads live in the peer's slot ring: frame w is read into slot
// w%ringSlots once the consumer's completed-Recv count shows the slot's
// previous occupant can no longer be referenced. In steady state the ring
// never grows and no per-frame buffers are allocated. A reader stalled on
// a slot implies at least inboxDepth undelivered frames, so the
// consumer's next Recv both succeeds and releases it — the wait cannot
// deadlock. Heartbeats reuse the current slot in place without advancing
// the ring.
func (t *Transport) readLoop(id int, p *peerConn) {
	defer t.readers.Done()
	var w int64 // data frames read into the ring
	for {
		for w >= ringSlots && p.recvRet.Load() < w-ringSlots+2 {
			select {
			case <-p.released:
			case <-t.done:
				return
			}
		}
		typ, payload, err := readFrameReuse(p.r, &p.slots[w%ringSlots])
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("net: process %d closed the connection", id)
			}
			p.setErr(&PeerDownError{Peer: id, Barrier: -1, Cause: err})
			close(p.in)
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		if typ == frameHeart {
			r := frameReader{typ: typ, buf: payload}
			if claim, err := r.uvarint(); err == nil && int64(claim) > p.claim.Load() {
				p.claim.Store(int64(claim))
			}
			continue
		}
		w++
		p.recvData.Add(1)
		select {
		case p.in <- frame{typ: typ, payload: payload}:
		case <-t.done:
			p.setErr(ErrTransportClosed)
			return
		}
	}
}

// heartbeatLoop emits liveness beacons to one peer until the transport
// closes or the connection dies (the readLoop owns surfacing that). The
// claim is read and the beacon written under the peer's write mutex, so a
// beacon never claims a frame that is not already ahead of it in the
// stream.
func (t *Transport) heartbeatLoop(p *peerConn) {
	defer t.hbeats.Done()
	tick := time.NewTicker(t.Heartbeat)
	defer tick.Stop()
	var body []byte
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			p.wmu.Lock()
			body = appendUvarint(body[:0], uint64(p.sent.Load()))
			err := writeFrameScratch(p.w, &p.whdr, frameHeart, body)
			if err == nil {
				err = p.w.Flush()
			}
			p.wmu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// Send coalesces one frame into the peer's write buffer. Nothing reaches
// the socket until Flush (or the buffer fills). With a FaultPlan armed the
// frame may be dropped, duplicated, truncated, delayed, or take the
// connection down — deterministically in the plan's seed.
func (t *Transport) Send(peer int, typ byte, body []byte) error {
	p := t.peers[peer]
	if p == nil {
		return fmt.Errorf("net: no connection to process %d", peer)
	}
	select {
	case <-t.done:
		return ErrTransportClosed
	default:
	}
	if f := t.Faults; f != nil && typ != frameHello {
		p.faultSeq++
		switch f.frameAction(t.self, peer, p.faultSeq) {
		case faultDrop:
			// The frame vanishes but the claim advances: that gap is exactly
			// what the receiver's liveness detector looks for.
			p.wmu.Lock()
			p.sent.Add(1)
			p.wmu.Unlock()
			return nil
		case faultDup:
			p.wmu.Lock()
			err := writeFrameScratch(p.w, &p.whdr, typ, body)
			if err == nil {
				err = writeFrameScratch(p.w, &p.whdr, typ, body)
			}
			p.sent.Add(1)
			p.wmu.Unlock()
			return err
		case faultTrunc:
			// A frame cut mid-payload: write the header and half the bytes,
			// then kill the connection — the receiver sees a truncated-
			// payload FrameError, never a silent parse of garbage.
			p.wmu.Lock()
			cut := appendFrame(nil, typ, body)
			p.conn.Write(cut[:frameHeaderSize+1+len(body)/2])
			p.conn.Close()
			p.wmu.Unlock()
			return nil
		case faultDelay:
			time.Sleep(f.delayFor(t.self, peer, p.faultSeq))
		case faultKill:
			p.wmu.Lock()
			p.conn.Close()
			p.wmu.Unlock()
			return nil
		}
	}
	p.wmu.Lock()
	err := writeFrameScratch(p.w, &p.whdr, typ, body)
	if err == nil {
		p.sent.Add(1)
	}
	p.wmu.Unlock()
	return err
}

// Flush pushes the peer's coalesced frames to the socket.
func (t *Transport) Flush(peer int) error {
	p := t.peers[peer]
	if p == nil {
		return fmt.Errorf("net: no connection to process %d", peer)
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.w.Flush()
}

// FlushAll flushes every peer buffer — the end of a barrier's write phase.
func (t *Transport) FlushAll() error {
	for id, p := range t.peers {
		if p == nil {
			continue
		}
		p.wmu.Lock()
		err := p.w.Flush()
		p.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("net: flushing to process %d: %w", id, err)
		}
	}
	return nil
}

// Recv returns the next frame from the peer, blocking until one arrives,
// the peer's connection fails, or the transport closes. With Liveness set
// the block is bounded: a peer silent for the whole window, or one whose
// heartbeats claim frames that never arrived while Recv starved, yields a
// *PeerDownError instead of a hang.
//
// The payload aliases a reusable transport buffer and is valid only until
// the next Recv from the same peer — consumers decode or copy before
// asking for the peer's next frame (the engine's streaming decode does).
func (t *Transport) Recv(peer int) (byte, []byte, error) {
	p := t.peers[peer]
	if p == nil {
		return 0, nil, fmt.Errorf("net: no connection to process %d", peer)
	}
	var timeout <-chan time.Time
	var start time.Time
	if t.Liveness > 0 {
		start = time.Now()
		// The ticker persists across Recvs (built lazily, stopped in Close)
		// so the steady-state round loop never allocates one. A stale tick
		// pending from a previous Recv only triggers a harmless re-check.
		p.mu.Lock()
		if p.live == nil {
			granularity := t.Liveness / 4
			if granularity < time.Millisecond {
				granularity = time.Millisecond
			}
			p.live = time.NewTicker(granularity)
		}
		timeout = p.live.C
		p.mu.Unlock()
	}
	for {
		select {
		case f, ok := <-p.in:
			if !ok {
				return 0, nil, p.getErr()
			}
			p.release()
			return f.typ, f.payload, nil
		case <-t.done:
			// Prefer a frame that raced the close: drain without blocking.
			select {
			case f, ok := <-p.in:
				if ok {
					p.release()
					return f.typ, f.payload, nil
				}
				return 0, nil, p.getErr()
			default:
				return 0, nil, ErrTransportClosed
			}
		case <-timeout:
			silent := time.Since(time.Unix(0, p.lastRecv.Load()))
			if silent >= t.Liveness {
				return 0, nil, &PeerDownError{Peer: peer, Barrier: -1,
					Cause: fmt.Errorf("no frames or heartbeats for %v (liveness %v)", silent.Round(time.Millisecond), t.Liveness)}
			}
			if claim, got := p.claim.Load(), p.recvData.Load(); time.Since(start) >= t.Liveness && claim > got {
				return 0, nil, &PeerDownError{Peer: peer, Barrier: -1,
					Cause: fmt.Errorf("peer claims %d frames sent, %d arrived after %v (liveness %v)", claim, got, time.Since(start).Round(time.Millisecond), t.Liveness)}
			}
		}
	}
}

// Close tears the mesh down: flushes nothing (callers flush at barriers),
// closes every connection and the listener, and waits for the reader
// goroutines to exit. Idempotent and safe from any goroutine; double
// Close is a no-op.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
				p.mu.Lock()
				if p.live != nil {
					p.live.Stop()
				}
				p.mu.Unlock()
			}
		}
		t.readers.Wait()
		t.hbeats.Wait()
	})
	return nil
}
